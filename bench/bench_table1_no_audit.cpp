// Experiment E1 — Table 1 and Observation 1 (Section 3).
//
// Regenerates the no-audit payoff matrix and verifies, by exhaustive
// equilibrium enumeration, that (C,C) is the unique Nash AND
// dominant-strategy equilibrium whenever F > B — for every loss value L,
// including those where cheating destroys value (F - L < B).

#include "bench_util.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"

namespace {

using namespace hsis;
using namespace hsis::game;

void PrintReproduction() {
  bench::PrintRule(
      "E1 / Table 1: two-player game without auditing (B=10, F=25, L=8)");

  NormalFormGame g = std::move(MakeNoAuditGame(10, 25, 8).value());
  std::printf("%s\n", FormatPayoffMatrix(g, "Rowi", "Colie").c_str());

  std::printf("Equilibria:  NE = {");
  for (const auto& ne : PureNashEquilibria(g)) {
    std::printf(" %s", ProfileLabel(ne).c_str());
  }
  auto dse = DominantStrategyEquilibrium(g);
  std::printf(" }   DSE = %s\n\n",
              dse ? ProfileLabel(*dse).c_str() : "(none)");

  std::printf("Observation 1 sweep: (C,C) must be the unique NE and DSE for\n"
              "every L >= 0 and every F > B.\n\n");
  std::printf("  %-8s %-8s %-8s %-14s %-10s %s\n", "B", "F", "L",
              "NE", "DSE", "F-L<B?");
  int checked = 0, confirmed = 0;
  for (double b : {5.0, 10.0, 20.0}) {
    for (double f : {1.5, 2.5, 5.0}) {   // F as multiple of B
      for (double l : {0.0, 4.0, 10.0, 30.0, 100.0}) {
        double cheat_gain = b * f;
        NormalFormGame game =
            std::move(MakeNoAuditGame(b, cheat_gain, l).value());
        auto ne = PureNashEquilibria(game);
        auto d = DominantStrategyEquilibrium(game);
        bool unique_cc = ne.size() == 1 && ProfileLabel(ne[0]) == "CC" &&
                         d && ProfileLabel(*d) == "CC";
        ++checked;
        confirmed += unique_cc;
        if (l == 0.0 || l == 100.0) {  // print the extremes only
          std::printf("  %-8.0f %-8.1f %-8.0f %-14s %-10s %s\n", b,
                      cheat_gain, l, ProfileLabel(ne[0]).c_str(),
                      d ? ProfileLabel(*d).c_str() : "-",
                      cheat_gain - l < b ? "yes (still cheats)" : "no");
        }
      }
    }
  }
  std::printf("\nObservation 1 confirmed on %d/%d parameter points.\n",
              confirmed, checked);
  std::printf("Paper's shape: dishonesty is the only rational outcome "
              "without enforcement. %s\n",
              confirmed == checked ? "REPRODUCED" : "MISMATCH");
}

void BM_BuildTable1Game(benchmark::State& state) {
  for (auto _ : state) {
    auto g = MakeNoAuditGame(10, 25, 8);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildTable1Game);

void BM_EnumerateNash2x2(benchmark::State& state) {
  NormalFormGame g = std::move(MakeNoAuditGame(10, 25, 8).value());
  for (auto _ : state) {
    auto ne = PureNashEquilibria(g);
    benchmark::DoNotOptimize(ne);
  }
}
BENCHMARK(BM_EnumerateNash2x2);

void BM_DominantStrategyCheck(benchmark::State& state) {
  NormalFormGame g = std::move(MakeNoAuditGame(10, 25, 8).value());
  for (auto _ : state) {
    auto dse = DominantStrategyEquilibrium(g);
    benchmark::DoNotOptimize(dse);
  }
}
BENCHMARK(BM_DominantStrategyCheck);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

// Sweep-service daemon overhead (PR 10, common/sweep_service.h).
// The daemon's job is coordination, not computation, so the question
// this bench answers is: what does a lease cost? Two measurements over
// a real daemon on a loopback socket:
//
//  * `status-rpc` — round-trips/sec of the cheapest RPC
//    (status-request → status-reply), the floor for any worker
//    interaction: one frame each way through the strict codec plus one
//    locked snapshot of the lease table.
//  * `lease-drain` — full lease cycles/sec: grant → ShardRunner
//    commit → SHA-256-checked complete, over a many-shard toy sweep
//    with near-zero compute per shard, so the daemon-side overhead
//    (validate, manifest parse, state transitions, event emission)
//    dominates. This bounds how fine-grained sharding can get before
//    coordination outweighs work.
//
// Both results are also emitted as hsis-bench-v1 records (`--json`,
// the `algo` field distinguishing the two paths; BENCH_10.json is the
// committed artifact).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <variant>

#include "bench_util.h"
#include "common/file.h"
#include "common/shard.h"
#include "common/sweep_service.h"

namespace {

using namespace hsis;

constexpr size_t kTotal = 4096;   // toy records in the drained sweep
constexpr int kShards = 128;      // leases granted per drain pass
constexpr int kStatusRpcs = 2000; // status round-trips timed

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

common::ShardSweepSpec ToySpec() {
  common::ShardSweepSpec spec;
  spec.name = "bench_toy";
  spec.total = kTotal;
  spec.seed = 11;
  spec.record = [](size_t i) -> Result<Bytes> {
    return ToBytes("r" + std::to_string(i) + "\n");
  };
  return spec;
}

[[noreturn]] void Die(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  std::exit(1);
}

void PrintMain() {
  bench::PrintRule("sweep-service daemon: coordination overhead per lease");

  const std::string dir =
      "/tmp/hsis_bench_sweepd." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  if (Status s = CreateDirectories(dir); !s.ok()) Die(s);

  common::ShardSweepSpec spec = ToySpec();
  auto plan = common::ShardPlan::Create(kTotal, kShards);
  if (!plan.ok()) Die(plan.status());
  if (Status s = common::WriteShardPlan(spec, *plan, dir); !s.ok()) Die(s);
  auto info = common::ReadShardPlan(dir);
  if (!info.ok()) Die(info.status());

  common::SweepServiceOptions options;
  options.lease.lease_ms = 60000;
  options.lease.retry_ms = 1;
  auto service = common::SweepService::Start(*info, dir, options);
  if (!service.ok()) Die(service.status());

  auto client = common::SweepServiceClient::Connect("127.0.0.1",
                                                    (*service)->port());
  if (!client.ok()) Die(client.status());

  // Status RPC floor: frame out, frame back, one table snapshot.
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kStatusRpcs; ++i) {
    auto snap = (*client)->QueryStatus();
    if (!snap.ok()) Die(snap.status());
  }
  const double rpc_ms = MsSince(start);
  const double rpc_per_sec = 1000.0 * kStatusRpcs / rpc_ms;
  std::printf("  status-rpc:  %8.1f ms  %10.0f rpc/s  (%d round-trips)\n",
              rpc_ms, rpc_per_sec, kStatusRpcs);

  // Full lease cycles: grant -> run -> sha-checked complete, one
  // worker, shards sized so coordination dominates compute.
  common::ShardRunner runner(spec, *plan);
  start = std::chrono::steady_clock::now();
  for (;;) {
    auto lease = (*client)->RequestLease("bench");
    if (!lease.ok()) Die(lease.status());
    if (const auto* none = std::get_if<common::SweepNoWork>(&*lease)) {
      if (none->drained != 0) break;
      continue;  // retry_ms=1: a second request is the cheapest wait
    }
    const auto& grant = std::get<common::SweepLeaseGrant>(*lease);
    const int shard = static_cast<int>(grant.shard);
    if (Status s = runner.Run(shard, dir, 1); !s.ok()) Die(s);
    auto text = ReadFile(common::ShardManifestPath(dir, shard));
    if (!text.ok()) Die(text.status());
    auto manifest = common::ParseShardManifest(*text);
    if (!manifest.ok()) Die(manifest.status());
    auto ack =
        (*client)->Complete(grant.lease_id, shard, manifest->payload_sha256);
    if (!ack.ok()) Die(ack.status());
  }
  const double drain_ms = MsSince(start);
  const double leases_per_sec = 1000.0 * kShards / drain_ms;
  std::printf("  lease-drain: %8.1f ms  %10.0f leases/s  (%d shards, %zu "
              "records)\n\n",
              drain_ms, leases_per_sec, kShards, kTotal);

  if (!(*service)->drained()) {
    std::fprintf(stderr, "drain did not complete\n");
    std::exit(1);
  }
  (*service)->Stop();

  // The coordination tax must stay small: merged bytes are pinned
  // byte-identical elsewhere (tests + CI); here we only assert the
  // drain actually exercised every shard.
  auto merged = common::MergeShards(dir, spec.name);
  if (!merged.ok()) Die(merged.status());
  std::printf("  merged %d shards, %zu bytes\n", kShards, merged->size());

  bench::WriteJsonRecordAlgo("sweep_service", 1, "status-rpc", rpc_per_sec,
                             rpc_ms);
  bench::WriteJsonRecordAlgo("sweep_service", 1, "lease-drain",
                             leases_per_sec, drain_ms);

  std::filesystem::remove_all(dir);
}

// google-benchmark micro for the RPC floor: one status round-trip
// against a daemon serving an undrained single-shard plan.
void BM_StatusRpc(benchmark::State& state) {
  const std::string dir =
      "/tmp/hsis_bench_sweepd_bm." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  if (Status s = CreateDirectories(dir); !s.ok()) Die(s);
  common::ShardSweepSpec spec = ToySpec();
  auto plan = common::ShardPlan::Create(kTotal, 1);
  if (!plan.ok()) Die(plan.status());
  if (Status s = common::WriteShardPlan(spec, *plan, dir); !s.ok()) Die(s);
  auto info = common::ReadShardPlan(dir);
  if (!info.ok()) Die(info.status());
  auto service =
      common::SweepService::Start(*info, dir, common::SweepServiceOptions{});
  if (!service.ok()) Die(service.status());
  auto client = common::SweepServiceClient::Connect("127.0.0.1",
                                                    (*service)->port());
  if (!client.ok()) Die(client.status());
  for (auto _ : state) {
    auto snap = (*client)->QueryStatus();
    if (!snap.ok()) Die(snap.status());
    benchmark::DoNotOptimize(snap->committed);
  }
  (*service)->Stop();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StatusRpc);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

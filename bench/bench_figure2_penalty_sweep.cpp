// Experiment E4 — Figure 2 (Section 4.1): equilibria of the symmetric
// audited game as the penalty P sweeps at fixed frequency f.
//
// The figure has two panels: for f > (F-B)/F honesty is the unique
// equilibrium from P = 0 on (frequent checking alone deters); for
// smaller f the landscape crosses from (C,C) to (H,H) at
// P* = ((1-f)F - B)/f (Observation 3).

#include "bench_util.h"
#include "game/landscape.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25, kL = 8;

void PrintPanel(double f, double max_penalty) {
  double p_star = CriticalPenalty(kB, kF, f);
  std::printf("--- panel f = %.2f  (zero-penalty frequency (F-B)/F = %.2f) ---\n",
              f, ZeroPenaltyFrequency(kB, kF));
  if (p_star < 0) {
    std::printf("f exceeds (F-B)/F: P* = %.2f < 0, honesty needs no penalty.\n",
                p_star);
  } else {
    std::printf("Analytic crossover (Observation 3): P* = ((1-f)F-B)/f = %.2f\n",
                p_star);
  }
  auto rows = SweepPenalty(kB, kF, kL, f, max_penalty, 11, bench::Threads()).value();
  std::printf("  %-8s %-34s %-10s %-8s %s\n", "P", "analytic region",
              "NE (enum)", "HH=DSE", "match");
  int mismatches = 0;
  for (const PenaltySweepRow& row : rows) {
    std::string ne;
    for (const std::string& e : row.nash_equilibria) ne += e + " ";
    std::printf("  %-8.1f %-34s %-10s %-8s %s\n", row.penalty,
                SymmetricRegionName(row.analytic_region), ne.c_str(),
                row.honest_is_dse ? "yes" : "no",
                row.analytic_matches_enumeration ? "ok" : "MISMATCH");
    mismatches += !row.analytic_matches_enumeration;
  }
  std::printf("Panel %s.\n\n", mismatches == 0 ? "REPRODUCED" : "MISMATCH");
}

void PrintReproduction() {
  bench::PrintRule(
      "E4 / Figure 2: equilibria vs penalty P (B=10, F=25, L=8)");
  // Lower panel of the figure: 0 <= f < (F-B)/F.
  PrintPanel(0.2, 80);
  // Upper panel: f > (F-B)/F — all-honest for every P >= 0.
  PrintPanel(0.7, 80);

  std::printf("Duality check: the Figure 1 and Figure 2 boundaries are the\n"
              "same curve — P*(f*(P)) == P:\n");
  for (double p : {10.0, 40.0, 160.0}) {
    double f_star = CriticalFrequency(kB, kF, p);
    std::printf("  P = %-6.0f f*(P) = %.4f  P*(f*) = %.2f\n", p, f_star,
                CriticalPenalty(kB, kF, f_star));
  }
}

void BM_SweepPenalty101(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = SweepPenalty(kB, kF, kL, 0.2, 100, 101);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SweepPenalty101);

void BM_CriticalPenaltyClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    double p = CriticalPenalty(kB, kF, 0.2);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_CriticalPenaltyClosedForm);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

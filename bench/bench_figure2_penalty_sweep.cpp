// Experiment E4 — Figure 2 (Section 4.1): equilibria of the symmetric
// audited game as the penalty P sweeps at fixed frequency f.
//
// The figure has two panels: for f > (F-B)/F honesty is the unique
// equilibrium from P = 0 on (frequent checking alone deters); for
// smaller f the landscape crosses from (C,C) to (H,H) at
// P* = ((1-f)F - B)/f (Observation 3).

#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "game/kernel.h"
#include "game/landscape.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25, kL = 8;

void PrintPanel(double f, double max_penalty) {
  double p_star = CriticalPenalty(kB, kF, f);
  std::printf("--- panel f = %.2f  (zero-penalty frequency (F-B)/F = %.2f) ---\n",
              f, ZeroPenaltyFrequency(kB, kF));
  if (p_star < 0) {
    std::printf("f exceeds (F-B)/F: P* = %.2f < 0, honesty needs no penalty.\n",
                p_star);
  } else {
    std::printf("Analytic crossover (Observation 3): P* = ((1-f)F-B)/f = %.2f\n",
                p_star);
  }
  auto rows = SweepPenalty(kB, kF, kL, f, max_penalty, 11, bench::Threads()).value();
  std::printf("  %-8s %-34s %-10s %-8s %s\n", "P", "analytic region",
              "NE (enum)", "HH=DSE", "match");
  int mismatches = 0;
  for (const PenaltySweepRow& row : rows) {
    std::string ne;
    for (const std::string& e : row.nash_equilibria) ne += e + " ";
    std::printf("  %-8.1f %-34s %-10s %-8s %s\n", row.penalty,
                SymmetricRegionName(row.analytic_region), ne.c_str(),
                row.honest_is_dse ? "yes" : "no",
                row.analytic_matches_enumeration ? "ok" : "MISMATCH");
    mismatches += !row.analytic_matches_enumeration;
  }
  std::printf("Panel %s.\n\n", mismatches == 0 ? "REPRODUCED" : "MISMATCH");
}

void PrintReproduction() {
  bench::PrintRule(
      "E4 / Figure 2: equilibria vs penalty P (B=10, F=25, L=8)");
  // Lower panel of the figure: 0 <= f < (F-B)/F.
  PrintPanel(0.2, 80);
  // Upper panel: f > (F-B)/F — all-honest for every P >= 0.
  PrintPanel(0.7, 80);

  std::printf("Duality check: the Figure 1 and Figure 2 boundaries are the\n"
              "same curve — P*(f*(P)) == P:\n");
  for (double p : {10.0, 40.0, 160.0}) {
    double f_star = CriticalFrequency(kB, kF, p);
    std::printf("  P = %-6.0f f*(P) = %.4f  P*(f*) = %.2f\n", p, f_star,
                CriticalPenalty(kB, kF, f_star));
  }
}

/// Times the kernel batch penalty evaluator on a fine sweep, once per
/// runtime-supported SIMD lane; each lane's cells/sec becomes one
/// `--json` record and `--min-speedup` gates the best vector lane
/// against the scalar lane.
void PrintKernelThroughput() {
  bench::PrintRule(
      "Figure 2 kernel throughput: batch penalty kernel per SIMD lane");
  const int kSteps = 20001;
  const double kFreq = 0.2, kMaxPenalty = 100;
  int threads = bench::Threads();
  using Clock = std::chrono::steady_clock;
  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Clock::time_point start = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - start).count());
    }
    return best;
  };

  std::printf("rows: %d, threads=%d (best of 3)\n\n", kSteps, threads);
  kernel::PenaltyRowsSoA rows;
  double scalar_cps = 0, best_vector_cps = 0;
  bench::ForEachSupportedLane([&](common::SimdLane lane) {
    double kernel_s = best_of([&] {
      Status s = kernel::EvalPenaltyRows(kB, kF, kL, kFreq, kMaxPenalty,
                                         kSteps, 0,
                                         static_cast<size_t>(kSteps), rows,
                                         threads);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        std::exit(1);
      }
      benchmark::DoNotOptimize(rows.nash_mask.data());
    });
    double kernel_cps = kSteps / kernel_s;
    std::printf("  kernel [%-6s]   %8.2f ms   %12.0f cells/sec\n",
                common::SimdLaneName(lane), kernel_s * 1e3, kernel_cps);
    bench::WriteJsonRecord("figure2_penalty_sweep_kernel", threads, lane,
                           kernel_cps, kernel_s * 1e3);
    if (lane == common::SimdLane::kScalar) {
      scalar_cps = kernel_cps;
    } else {
      best_vector_cps = std::max(best_vector_cps, kernel_cps);
    }
  });
  if (best_vector_cps > 0) {
    std::printf("\nbest vector lane vs scalar lane: %.2fx\n",
                best_vector_cps / scalar_cps);
  }
  bench::EnforceMinSpeedup("figure2 penalty kernel", scalar_cps,
                           best_vector_cps);
}

void PrintMain() {
  PrintReproduction();
  PrintKernelThroughput();
}

void BM_SweepPenalty101(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = SweepPenalty(kB, kF, kL, 0.2, 100, 101);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SweepPenalty101);

void BM_CriticalPenaltyClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    double p = CriticalPenalty(kB, kF, 0.2);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_CriticalPenaltyClosedForm);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

// Experiment E5 — Table 3 (Section 4.2): the asymmetric audited game.
//
// Regenerates the general payoff matrix with per-player (B_i, F_i, P_i,
// f_i) and the directional losses L21/L12, and demonstrates the paper's
// "poor Colie" example: lopsided audit frequencies force the players
// into a mixed (C,H) equilibrium.

#include "bench_util.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"
#include "game/thresholds.h"

namespace {

using namespace hsis;
using namespace hsis::game;

TwoPlayerGameParams BaseParams() {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};  // B1, F1
  params.player2 = {6, 20};   // B2, F2
  params.loss_to_1 = 4;       // L21
  params.loss_to_2 = 9;       // L12
  return params;
}

void PrintCase(TwoPlayerGameParams params, const char* note) {
  NormalFormGame g = std::move(MakeTwoPlayerHonestyGame(params).value());
  std::printf("--- %s ---\n", note);
  std::printf("f1 = %.2f P1 = %.0f | f2 = %.2f P2 = %.0f\n",
              params.audit1.frequency, params.audit1.penalty,
              params.audit2.frequency, params.audit2.penalty);
  std::printf("%s", FormatPayoffMatrix(g, "Rowi", "Colie").c_str());
  std::printf("NE = {");
  for (const auto& ne : PureNashEquilibria(g)) {
    std::printf(" %s", ProfileLabel(ne).c_str());
  }
  auto dse = DominantStrategyEquilibrium(g);
  std::printf(" }  DSE = %s\n",
              dse ? ProfileLabel(*dse).c_str() : "(none)");
  std::printf("analytic region: %s\n\n",
              AsymmetricRegionName(ClassifyAsymmetricRegion(
                  params.player1.benefit, params.player1.cheat_gain,
                  params.audit1.penalty, params.audit1.frequency,
                  params.player2.benefit, params.player2.cheat_gain,
                  params.audit2.penalty, params.audit2.frequency)));
}

void PrintReproduction() {
  bench::PrintRule(
      "E5 / Table 3: asymmetric audited game (B1=10,F1=30,L21=4 | "
      "B2=6,F2=20,L12=9)");

  double crit1 = CriticalFrequency(10, 30, 20);
  double crit2 = CriticalFrequency(6, 20, 15);
  std::printf("Per-player critical frequencies (P1=20, P2=15): f1* = %.4f, "
              "f2* = %.4f\n\n", crit1, crit2);

  TwoPlayerGameParams params = BaseParams();
  params.audit1 = {crit1 / 2, 20};
  params.audit2 = {crit2 / 2, 15};
  PrintCase(params, "both audited rarely: (C,C)");

  params.audit1 = {crit1 / 2, 20};
  params.audit2 = {(1 + crit2) / 2, 15};
  PrintCase(params,
            "Colie audited heavily, Rowi rarely: the paper's (C,H) corner");

  params.audit1 = {(1 + crit1) / 2, 20};
  params.audit2 = {crit2 / 2, 15};
  PrintCase(params, "mirror case: (H,C)");

  params.audit1 = {(1 + crit1) / 2, 20};
  params.audit2 = {(1 + crit2) / 2, 15};
  PrintCase(params, "both audited enough: (H,H) transformative");

  std::printf("Shape check: all four corner regions of Figure 3 realized,\n"
              "each with the predicted unique DSE/NE. REPRODUCED\n");
}

void BM_BuildAsymmetricGame(benchmark::State& state) {
  TwoPlayerGameParams params = BaseParams();
  params.audit1 = {0.3, 20};
  params.audit2 = {0.6, 15};
  for (auto _ : state) {
    auto g = MakeTwoPlayerHonestyGame(params);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildAsymmetricGame);

void BM_ClassifyAsymmetricRegion(benchmark::State& state) {
  for (auto _ : state) {
    auto r = ClassifyAsymmetricRegion(10, 30, 20, 0.3, 6, 20, 15, 0.6);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ClassifyAsymmetricRegion);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

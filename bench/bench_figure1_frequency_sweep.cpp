// Experiment E3 — Figure 1 (Section 4.1): equilibria of the symmetric
// audited game as the checking frequency f sweeps [0, 1] at fixed P.
//
// Three independent reproductions of the same landscape:
//   1. the closed form of Observation 2 (crossover at f* = (F-B)/(P+F));
//   2. brute-force equilibrium enumeration of the actual payoff matrix;
//   3. populations of learning agents playing the repeated game.

#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "game/kernel.h"
#include "game/landscape.h"
#include "landscape_baseline.h"
#include "sim/repeated_game.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25, kL = 8, kP = 40;

double SimulatedHonesty(double f, uint64_t seed) {
  NPlayerHonestyGame::Params params;
  params.n = 2;
  params.benefit = kB;
  params.gain = LinearGain(kF, 0);
  params.frequency = f;
  params.penalty = kP;
  params.uniform_loss = kL;
  NPlayerHonestyGame game =
      std::move(NPlayerHonestyGame::Create(params).value());
  std::vector<std::unique_ptr<sim::Agent>> agents;
  agents.push_back(sim::MakeFictitiousPlay(&game, seed));
  agents.push_back(sim::MakeFictitiousPlay(&game, seed + 1));
  sim::RepeatedGameConfig config;
  config.rounds = 120;
  return sim::RunRepeatedGame(game, agents, config)->honesty_rate_final;
}

void PrintReproduction() {
  bench::PrintRule(
      "E3 / Figure 1: equilibria vs checking frequency f (B=10, F=25, "
      "L=8, P=40)");

  double f_star = CriticalFrequency(kB, kF, kP);
  std::printf("Analytic crossover (Observation 2): f* = (F-B)/(P+F) = %.4f\n\n",
              f_star);

  auto rows = SweepFrequency(kB, kF, kL, kP, 21, bench::Threads()).value();
  std::printf("  %-6s %-34s %-10s %-8s %-10s %s\n", "f", "analytic region",
              "NE (enum)", "HH=DSE", "sim H-rate", "match");
  int mismatches = 0;
  for (const FrequencySweepRow& row : rows) {
    std::string ne;
    for (const std::string& e : row.nash_equilibria) ne += e + " ";
    double sim_rate = SimulatedHonesty(row.frequency, 77);
    std::printf("  %-6.2f %-34s %-10s %-8s %-10.2f %s\n", row.frequency,
                SymmetricRegionName(row.analytic_region), ne.c_str(),
                row.honest_is_dse ? "yes" : "no", sim_rate,
                row.analytic_matches_enumeration ? "ok" : "MISMATCH");
    mismatches += !row.analytic_matches_enumeration;
  }

  // Locate the crossover on a fine grid.
  auto fine = SweepFrequency(kB, kF, kL, kP, 1001, bench::Threads()).value();
  double measured = 1.0;
  for (const auto& row : fine) {
    if (row.analytic_region == SymmetricRegion::kAllHonestUniqueDse) {
      measured = row.frequency;
      break;
    }
  }
  std::printf("\nCrossover: analytic f* = %.4f, first all-honest grid point "
              "= %.4f (grid step 0.001)\n",
              f_star, measured);
  std::printf("Figure 1 shape %s: (C,C) unique below f*, (H,H) unique above;\n"
              "learning agents' honesty rate flips 0 -> 1 at the same point.\n",
              mismatches == 0 ? "REPRODUCED" : "MISMATCH");
}

/// Times the frozen pre-kernel per-row path (landscape_baseline.h)
/// against the kernel batch evaluator on a fine frequency sweep, once
/// per runtime-supported SIMD lane, and reports cells/sec; each lane's
/// kernel number becomes one `--json` record, and `--min-speedup`
/// gates the best vector lane against the scalar lane.
void PrintKernelThroughput() {
  bench::PrintRule(
      "Figure 1 kernel throughput: pre-kernel per-row path vs batch kernel "
      "per SIMD lane");
  const int kSteps = 20001;
  int threads = bench::Threads();
  using Clock = std::chrono::steady_clock;
  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Clock::time_point start = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - start).count());
    }
    return best;
  };

  double baseline_s = best_of([&] {
    common::ParallelFor(threads, static_cast<size_t>(kSteps), [&](size_t i) {
      FrequencySweepRow row =
          bench::baseline::FrequencyCell(kB, kF, kL, kP, kSteps, i);
      benchmark::DoNotOptimize(row);
    });
  });
  double baseline_cps = kSteps / baseline_s;
  std::printf("rows: %d, threads=%d (best of 3)\n\n", kSteps, threads);
  std::printf("  pre-kernel path   %8.2f ms   %12.0f cells/sec\n",
              baseline_s * 1e3, baseline_cps);

  kernel::FrequencyRowsSoA rows;
  double scalar_cps = 0, best_vector_cps = 0;
  bench::ForEachSupportedLane([&](common::SimdLane lane) {
    double kernel_s = best_of([&] {
      Status s = kernel::EvalFrequencyRows(kB, kF, kL, kP, kSteps, 0,
                                           static_cast<size_t>(kSteps), rows,
                                           threads);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        std::exit(1);
      }
      benchmark::DoNotOptimize(rows.nash_mask.data());
    });
    double kernel_cps = kSteps / kernel_s;
    std::printf("  kernel [%-6s]   %8.2f ms   %12.0f cells/sec   (%.2fx)\n",
                common::SimdLaneName(lane), kernel_s * 1e3, kernel_cps,
                kernel_cps / baseline_cps);
    bench::WriteJsonRecord("figure1_frequency_sweep_kernel", threads, lane,
                           kernel_cps, kernel_s * 1e3);
    if (lane == common::SimdLane::kScalar) {
      scalar_cps = kernel_cps;
    } else {
      best_vector_cps = std::max(best_vector_cps, kernel_cps);
    }
  });
  if (best_vector_cps > 0) {
    std::printf("\nbest vector lane vs scalar lane: %.2fx\n",
                best_vector_cps / scalar_cps);
  }
  bench::EnforceMinSpeedup("figure1 frequency kernel", scalar_cps,
                           best_vector_cps);
}

void PrintMain() {
  PrintReproduction();
  PrintKernelThroughput();
}

void BM_SweepFrequency101(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = SweepFrequency(kB, kF, kL, kP, 101);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SweepFrequency101);

void BM_BaselineFrequency101(benchmark::State& state) {
  for (auto _ : state) {
    for (size_t i = 0; i < 101; ++i) {
      FrequencySweepRow row =
          bench::baseline::FrequencyCell(kB, kF, kL, kP, 101, i);
      benchmark::DoNotOptimize(row);
    }
  }
}
BENCHMARK(BM_BaselineFrequency101);

void BM_KernelFrequencyRows101(benchmark::State& state) {
  kernel::FrequencyRowsSoA rows;
  for (auto _ : state) {
    Status s = kernel::EvalFrequencyRows(kB, kF, kL, kP, 101, 0, 101, rows, 1);
    benchmark::DoNotOptimize(s);
    benchmark::DoNotOptimize(rows.nash_mask.data());
  }
}
BENCHMARK(BM_KernelFrequencyRows101);

void BM_SimulateOnePoint(benchmark::State& state) {
  for (auto _ : state) {
    double r = SimulatedHonesty(0.5, 7);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimulateOnePoint);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

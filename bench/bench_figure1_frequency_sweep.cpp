// Experiment E3 — Figure 1 (Section 4.1): equilibria of the symmetric
// audited game as the checking frequency f sweeps [0, 1] at fixed P.
//
// Three independent reproductions of the same landscape:
//   1. the closed form of Observation 2 (crossover at f* = (F-B)/(P+F));
//   2. brute-force equilibrium enumeration of the actual payoff matrix;
//   3. populations of learning agents playing the repeated game.

#include "bench_util.h"
#include "game/landscape.h"
#include "sim/repeated_game.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25, kL = 8, kP = 40;

double SimulatedHonesty(double f, uint64_t seed) {
  NPlayerHonestyGame::Params params;
  params.n = 2;
  params.benefit = kB;
  params.gain = LinearGain(kF, 0);
  params.frequency = f;
  params.penalty = kP;
  params.uniform_loss = kL;
  NPlayerHonestyGame game =
      std::move(NPlayerHonestyGame::Create(params).value());
  std::vector<std::unique_ptr<sim::Agent>> agents;
  agents.push_back(sim::MakeFictitiousPlay(&game, seed));
  agents.push_back(sim::MakeFictitiousPlay(&game, seed + 1));
  sim::RepeatedGameConfig config;
  config.rounds = 120;
  return sim::RunRepeatedGame(game, agents, config)->honesty_rate_final;
}

void PrintReproduction() {
  bench::PrintRule(
      "E3 / Figure 1: equilibria vs checking frequency f (B=10, F=25, "
      "L=8, P=40)");

  double f_star = CriticalFrequency(kB, kF, kP);
  std::printf("Analytic crossover (Observation 2): f* = (F-B)/(P+F) = %.4f\n\n",
              f_star);

  auto rows = SweepFrequency(kB, kF, kL, kP, 21, bench::Threads()).value();
  std::printf("  %-6s %-34s %-10s %-8s %-10s %s\n", "f", "analytic region",
              "NE (enum)", "HH=DSE", "sim H-rate", "match");
  int mismatches = 0;
  for (const FrequencySweepRow& row : rows) {
    std::string ne;
    for (const std::string& e : row.nash_equilibria) ne += e + " ";
    double sim_rate = SimulatedHonesty(row.frequency, 77);
    std::printf("  %-6.2f %-34s %-10s %-8s %-10.2f %s\n", row.frequency,
                SymmetricRegionName(row.analytic_region), ne.c_str(),
                row.honest_is_dse ? "yes" : "no", sim_rate,
                row.analytic_matches_enumeration ? "ok" : "MISMATCH");
    mismatches += !row.analytic_matches_enumeration;
  }

  // Locate the crossover on a fine grid.
  auto fine = SweepFrequency(kB, kF, kL, kP, 1001, bench::Threads()).value();
  double measured = 1.0;
  for (const auto& row : fine) {
    if (row.analytic_region == SymmetricRegion::kAllHonestUniqueDse) {
      measured = row.frequency;
      break;
    }
  }
  std::printf("\nCrossover: analytic f* = %.4f, first all-honest grid point "
              "= %.4f (grid step 0.001)\n",
              f_star, measured);
  std::printf("Figure 1 shape %s: (C,C) unique below f*, (H,H) unique above;\n"
              "learning agents' honesty rate flips 0 -> 1 at the same point.\n",
              mismatches == 0 ? "REPRODUCED" : "MISMATCH");
}

void BM_SweepFrequency101(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = SweepFrequency(kB, kF, kL, kP, 101);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SweepFrequency101);

void BM_SimulateOnePoint(benchmark::State& state) {
  for (auto _ : state) {
    double r = SimulatedHonesty(0.5, 7);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimulateOnePoint);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

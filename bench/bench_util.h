#ifndef HSIS_BENCH_BENCH_UTIL_H_
#define HSIS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "common/parallel.h"
#include "common/perf_record.h"
#include "common/shard.h"
#include "common/simd_dispatch.h"

/// Shared main() for all reproduction benches: strip the hsis-specific
/// flags (`--threads=N`, `--speedup`, `--shards=K`, `--schedule`,
/// `--workers=N`, `--max-retries=R`, `--shard-timeout-ms=T`,
/// `--min-speedup=X`, `--json=PATH`), print the paper artifact first
/// (tables/series
/// exactly as DESIGN.md §4 specifies), then run the google-benchmark
/// timings registered by the binary.
#define HSIS_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                                 \
    ::hsis::bench::ConsumeFlags(&argc, argv);                       \
    print_fn();                                                     \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

namespace hsis::bench {

inline void PrintRule(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n\n");
}

namespace internal {
inline int& ThreadsStorage() {
  static int threads = 1;  // serial-compatible default; flags resolve 0
  return threads;
}
inline int& ShardsStorage() {
  static int shards = 1;  // single-shard default
  return shards;
}
inline bool& SpeedupStorage() {
  static bool speedup = false;
  return speedup;
}
inline std::string& JsonPathStorage() {
  static std::string path;  // empty = no machine-readable output requested
  return path;
}
inline std::string& JsonLinesStorage() {
  static std::string lines;  // accumulated records; file rewritten per call
  return lines;
}
inline double& MinSpeedupStorage() {
  static double min_speedup = 0;  // 0 = report only, no enforcement
  return min_speedup;
}
inline bool& ScheduleStorage() {
  static bool schedule = false;
  return schedule;
}
inline int& WorkersStorage() {
  static int workers = 1;
  return workers;
}
inline int& MaxRetriesStorage() {
  static int retries = 2;
  return retries;
}
inline long& ShardTimeoutMsStorage() {
  static long timeout_ms = 0;  // 0 = no per-shard timeout
  return timeout_ms;
}
}  // namespace internal

/// The resolved `--threads=N` flag value (default 1 = serial;
/// `--threads=0` resolves to hardware concurrency at parse time),
/// forwarded by the sweep benches into the parallel engine of
/// common/parallel.h.
inline int Threads() { return internal::ThreadsStorage(); }

/// The resolved `--shards=K` flag value (default 1; `--shards=0`
/// resolves to 1), forwarded into the sharded sweep subsystem of
/// common/shard.h by the benches that support shard mode.
inline int Shards() { return internal::ShardsStorage(); }

/// Whether `--speedup` was passed: benches supporting it time a
/// serial-vs-parallel comparison instead of the paper reproduction.
inline bool SpeedupRequested() { return internal::SpeedupStorage(); }

/// Whether `--schedule` was passed: sharded benches run their shards
/// under the fault-tolerant `ShardScheduler` (common/scheduler.h)
/// instead of a serial in-order loop.
inline bool ScheduleRequested() { return internal::ScheduleStorage(); }

/// The resolved `--workers=N` flag (default 1; 0 resolves to hardware
/// concurrency): concurrent shard jobs for `--schedule` runs.
inline int Workers() { return internal::WorkersStorage(); }

/// The `--max-retries=R` flag (default 2): extra attempts the scheduler
/// grants a failing shard before giving up.
inline int MaxRetries() { return internal::MaxRetriesStorage(); }

/// The `--shard-timeout-ms=T` flag (default 0 = unlimited): wall-clock
/// budget per shard attempt under `--schedule`.
inline long ShardTimeoutMs() { return internal::ShardTimeoutMsStorage(); }

/// The `--json=PATH` flag value, or "" when absent. Benches that
/// measure a headline throughput write `common::PerfRecord` lines there
/// via `WriteJsonRecord` so CI and EXPERIMENTS.md tooling can track
/// cells/sec across commits without scraping stdout.
inline const std::string& JsonPath() { return internal::JsonPathStorage(); }

/// The `--min-speedup=X` flag value (default 0 = report only). Benches
/// that measure a vectorized-vs-scalar kernel comparison pass their
/// ratio through `EnforceMinSpeedup` so CI can gate on SIMD wins.
inline double MinSpeedup() { return internal::MinSpeedupStorage(); }

/// The SIMD lane the kernel batch evaluators will use for the next
/// call, resolved exactly like the evaluators resolve it
/// (`common::ActiveSimdLane`: `HSIS_SIMD_LANE` override, else CPUID
/// probe). A bad override aborts here — at bench startup, with the
/// dispatcher's message — instead of mid-measurement.
inline common::SimdLane ActiveLaneOrDie() {
  hsis::Result<common::SimdLane> lane = common::ActiveSimdLane();
  if (!lane.ok()) {
    std::fprintf(stderr, "%s\n", lane.status().ToString().c_str());
    std::exit(1);
  }
  return *lane;
}

/// Runs `fn(lane)` once per runtime-supported SIMD lane (ascending, so
/// scalar first), forcing the kernel dispatcher to that lane through
/// the `HSIS_SIMD_LANE` override for the duration of each call and
/// restoring the caller's environment afterwards. This is how one
/// bench invocation produces a scalar baseline plus one perf record
/// per vector lane.
template <typename Fn>
inline void ForEachSupportedLane(Fn&& fn) {
  const char* saved = std::getenv(common::kSimdLaneEnvVar);
  const std::string saved_value = saved == nullptr ? "" : saved;
  for (common::SimdLane lane : common::SupportedSimdLanes()) {
    ::setenv(common::kSimdLaneEnvVar, common::SimdLaneName(lane), 1);
    fn(lane);
  }
  if (saved == nullptr) {
    ::unsetenv(common::kSimdLaneEnvVar);
  } else {
    ::setenv(common::kSimdLaneEnvVar, saved_value.c_str(), 1);
  }
}

/// Applies the `--min-speedup=X` gate to a measured vectorized-vs-
/// scalar kernel ratio: no-op when the flag is absent; otherwise exits
/// nonzero when the best vector lane failed to beat the scalar lane by
/// the required factor, or when no vector lane was available to
/// measure (a scalar-only build cannot honor an enforcement request —
/// failing loudly beats a silently green gate).
inline void EnforceMinSpeedup(const char* what, double scalar_cps,
                              double best_vector_cps) {
  if (MinSpeedup() <= 0) return;
  if (best_vector_cps <= 0) {
    std::fprintf(stderr,
                 "--min-speedup=%.2f requested but no vector lane is "
                 "available for %s\n",
                 MinSpeedup(), what);
    std::exit(1);
  }
  const double ratio = best_vector_cps / scalar_cps;
  if (ratio < MinSpeedup()) {
    std::fprintf(stderr,
                 "%s: vectorized speedup %.2fx below required minimum "
                 "%.2fx\n",
                 what, ratio, MinSpeedup());
    std::exit(1);
  }
  std::printf("--min-speedup gate: %.2fx >= %.2fx, ok\n",
              best_vector_cps / scalar_cps, MinSpeedup());
}

/// `git describe --always --dirty` of the built tree, stamped in by the
/// build (bench/CMakeLists.txt); "unknown" when built outside git.
inline const char* GitDescribe() {
#ifdef HSIS_GIT_DESCRIBE
  return HSIS_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Appends one hsis-bench-v1 JSON record to `JsonPath()` and rewrites
/// the file with every record accumulated so far (so the artifact is a
/// complete JSON-lines file after each call, and one bench invocation
/// can emit several records — e.g. one per SIMD lane). `lane` is the
/// kernel lane the measurement exercised. No-op when `--json` was not
/// passed. Aborts on an invalid record or unwritable path so CI smoke
/// runs fail loudly instead of silently producing no artifact.
inline void WriteJsonRecord(const char* bench, int threads,
                            common::SimdLane lane, double cells_per_sec,
                            double wall_ms) {
  if (internal::JsonPathStorage().empty()) return;
  common::PerfRecord record;
  record.bench = bench;
  record.threads = threads;
  record.lane = common::SimdLaneName(lane);
  record.cells_per_sec = cells_per_sec;
  record.wall_ms = wall_ms;
  record.git_describe = GitDescribe();
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "--json: %s\n", status.ToString().c_str());
    std::exit(1);
  };
  if (Status s = record.Validate(); !s.ok()) fail(s);
  internal::JsonLinesStorage() += common::PerfRecordToJson(record);
  if (Status s = hsis::WriteFile(internal::JsonPathStorage(),
                                 internal::JsonLinesStorage());
      !s.ok()) {
    fail(s);
  }
  std::printf("wrote perf record -> %s\n", internal::JsonPathStorage().c_str());
}

/// `WriteJsonRecord` stamped with the lane the dispatcher resolves for
/// this call — the right default for benches that measure whatever
/// lane the machine picked rather than forcing one.
inline void WriteJsonRecord(const char* bench, int threads,
                            double cells_per_sec, double wall_ms) {
  WriteJsonRecord(bench, threads, ActiveLaneOrDie(), cells_per_sec, wall_ms);
}

/// `WriteJsonRecord` variant for benches that compare algorithm
/// variants of one code path (e.g. bench_modexp's naive-vs-windowed
/// ladders): stamps the record's optional `algo` field and the scalar
/// lane (the modexp path has no SIMD lanes).
inline void WriteJsonRecordAlgo(const char* bench, int threads,
                                const char* algo, double cells_per_sec,
                                double wall_ms) {
  if (internal::JsonPathStorage().empty()) return;
  common::PerfRecord record;
  record.bench = bench;
  record.threads = threads;
  record.algo = algo;
  record.cells_per_sec = cells_per_sec;
  record.wall_ms = wall_ms;
  record.git_describe = GitDescribe();
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "--json: %s\n", status.ToString().c_str());
    std::exit(1);
  };
  if (Status s = record.Validate(); !s.ok()) fail(s);
  internal::JsonLinesStorage() += common::PerfRecordToJson(record);
  if (Status s = hsis::WriteFile(internal::JsonPathStorage(),
                                 internal::JsonLinesStorage());
      !s.ok()) {
    fail(s);
  }
  std::printf("wrote perf record -> %s\n", internal::JsonPathStorage().c_str());
}

/// Removes the hsis flags from argv so google-benchmark never sees
/// them; called by HSIS_BENCH_MAIN before anything else. Flag values
/// go through the uniform parsers (`ParseThreadsValue` /
/// `ParseShardsValue`): 0 resolves to hardware concurrency / 1 shard,
/// and negatives or junk abort with the InvalidArgument message.
inline void ConsumeFlags(int* argc, char** argv) {
  auto resolve = [](hsis::Result<int> parsed) {
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      std::exit(1);
    }
    return *parsed;
  };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      internal::ThreadsStorage() =
          resolve(hsis::common::ParseThreadsValue(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      internal::ShardsStorage() =
          resolve(hsis::common::ParseShardsValue(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--speedup") == 0) {
      internal::SpeedupStorage() = true;
    } else if (std::strcmp(argv[i], "--schedule") == 0) {
      internal::ScheduleStorage() = true;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      internal::WorkersStorage() =
          resolve(hsis::common::ParseThreadsValue(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--max-retries=", 14) == 0) {
      char* end = nullptr;
      long value = std::strtol(argv[i] + 14, &end, 10);
      if (end == argv[i] + 14 || *end != '\0' || value < 0) {
        std::fprintf(stderr, "bad --max-retries value: %s\n", argv[i] + 14);
        std::exit(1);
      }
      internal::MaxRetriesStorage() = static_cast<int>(value);
    } else if (std::strncmp(argv[i], "--shard-timeout-ms=", 19) == 0) {
      char* end = nullptr;
      long value = std::strtol(argv[i] + 19, &end, 10);
      if (end == argv[i] + 19 || *end != '\0' || value < 0) {
        std::fprintf(stderr, "bad --shard-timeout-ms value: %s\n",
                     argv[i] + 19);
        std::exit(1);
      }
      internal::ShardTimeoutMsStorage() = value;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      char* end = nullptr;
      double value = std::strtod(argv[i] + 14, &end);
      if (end == argv[i] + 14 || *end != '\0' || value < 0) {
        std::fprintf(stderr, "bad --min-speedup value: %s\n", argv[i] + 14);
        std::exit(1);
      }
      internal::MinSpeedupStorage() = value;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      internal::JsonPathStorage() = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace hsis::bench

#endif  // HSIS_BENCH_BENCH_UTIL_H_

#ifndef HSIS_BENCH_BENCH_UTIL_H_
#define HSIS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

/// Shared main() for all reproduction benches: strip the hsis-specific
/// flags (`--threads=N`, `--speedup`), print the paper artifact first
/// (tables/series exactly as DESIGN.md §4 specifies), then run the
/// google-benchmark timings registered by the binary.
#define HSIS_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                                 \
    ::hsis::bench::ConsumeFlags(&argc, argv);                       \
    print_fn();                                                     \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

namespace hsis::bench {

inline void PrintRule(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n\n");
}

namespace internal {
inline int& ThreadsStorage() {
  static int threads = 1;  // serial-compatible default; 0 = hardware
  return threads;
}
inline bool& SpeedupStorage() {
  static bool speedup = false;
  return speedup;
}
}  // namespace internal

/// The `--threads=N` flag value (1 = serial default, 0 = hardware
/// concurrency), forwarded by the sweep benches into the parallel
/// engine of common/parallel.h.
inline int Threads() { return internal::ThreadsStorage(); }

/// Whether `--speedup` was passed: benches supporting it time a
/// serial-vs-parallel comparison instead of the paper reproduction.
inline bool SpeedupRequested() { return internal::SpeedupStorage(); }

/// Removes the hsis flags from argv so google-benchmark never sees
/// them; called by HSIS_BENCH_MAIN before anything else.
inline void ConsumeFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      internal::ThreadsStorage() = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--speedup") == 0) {
      internal::SpeedupStorage() = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace hsis::bench

#endif  // HSIS_BENCH_BENCH_UTIL_H_

#ifndef HSIS_BENCH_BENCH_UTIL_H_
#define HSIS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "common/parallel.h"
#include "common/perf_record.h"
#include "common/shard.h"

/// Shared main() for all reproduction benches: strip the hsis-specific
/// flags (`--threads=N`, `--speedup`, `--shards=K`, `--schedule`,
/// `--workers=N`, `--max-retries=R`, `--shard-timeout-ms=T`,
/// `--json=PATH`), print the paper artifact first (tables/series
/// exactly as DESIGN.md §4 specifies), then run the google-benchmark
/// timings registered by the binary.
#define HSIS_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                                 \
    ::hsis::bench::ConsumeFlags(&argc, argv);                       \
    print_fn();                                                     \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

namespace hsis::bench {

inline void PrintRule(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n\n");
}

namespace internal {
inline int& ThreadsStorage() {
  static int threads = 1;  // serial-compatible default; flags resolve 0
  return threads;
}
inline int& ShardsStorage() {
  static int shards = 1;  // single-shard default
  return shards;
}
inline bool& SpeedupStorage() {
  static bool speedup = false;
  return speedup;
}
inline std::string& JsonPathStorage() {
  static std::string path;  // empty = no machine-readable output requested
  return path;
}
inline bool& ScheduleStorage() {
  static bool schedule = false;
  return schedule;
}
inline int& WorkersStorage() {
  static int workers = 1;
  return workers;
}
inline int& MaxRetriesStorage() {
  static int retries = 2;
  return retries;
}
inline long& ShardTimeoutMsStorage() {
  static long timeout_ms = 0;  // 0 = no per-shard timeout
  return timeout_ms;
}
}  // namespace internal

/// The resolved `--threads=N` flag value (default 1 = serial;
/// `--threads=0` resolves to hardware concurrency at parse time),
/// forwarded by the sweep benches into the parallel engine of
/// common/parallel.h.
inline int Threads() { return internal::ThreadsStorage(); }

/// The resolved `--shards=K` flag value (default 1; `--shards=0`
/// resolves to 1), forwarded into the sharded sweep subsystem of
/// common/shard.h by the benches that support shard mode.
inline int Shards() { return internal::ShardsStorage(); }

/// Whether `--speedup` was passed: benches supporting it time a
/// serial-vs-parallel comparison instead of the paper reproduction.
inline bool SpeedupRequested() { return internal::SpeedupStorage(); }

/// Whether `--schedule` was passed: sharded benches run their shards
/// under the fault-tolerant `ShardScheduler` (common/scheduler.h)
/// instead of a serial in-order loop.
inline bool ScheduleRequested() { return internal::ScheduleStorage(); }

/// The resolved `--workers=N` flag (default 1; 0 resolves to hardware
/// concurrency): concurrent shard jobs for `--schedule` runs.
inline int Workers() { return internal::WorkersStorage(); }

/// The `--max-retries=R` flag (default 2): extra attempts the scheduler
/// grants a failing shard before giving up.
inline int MaxRetries() { return internal::MaxRetriesStorage(); }

/// The `--shard-timeout-ms=T` flag (default 0 = unlimited): wall-clock
/// budget per shard attempt under `--schedule`.
inline long ShardTimeoutMs() { return internal::ShardTimeoutMsStorage(); }

/// The `--json=PATH` flag value, or "" when absent. Benches that
/// measure a headline throughput write one `common::PerfRecord` there
/// via `WriteJsonRecord` so CI and EXPERIMENTS.md tooling can track
/// cells/sec across commits without scraping stdout.
inline const std::string& JsonPath() { return internal::JsonPathStorage(); }

/// `git describe --always --dirty` of the built tree, stamped in by the
/// build (bench/CMakeLists.txt); "unknown" when built outside git.
inline const char* GitDescribe() {
#ifdef HSIS_GIT_DESCRIBE
  return HSIS_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Writes the headline measurement of this bench run to `JsonPath()` as
/// a one-line hsis-bench-v1 JSON record; no-op when `--json` was not
/// passed. Aborts on an invalid record or unwritable path so CI smoke
/// runs fail loudly instead of silently producing no artifact.
inline void WriteJsonRecord(const char* bench, int threads,
                            double cells_per_sec, double wall_ms) {
  if (internal::JsonPathStorage().empty()) return;
  common::PerfRecord record;
  record.bench = bench;
  record.threads = threads;
  record.cells_per_sec = cells_per_sec;
  record.wall_ms = wall_ms;
  record.git_describe = GitDescribe();
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "--json: %s\n", status.ToString().c_str());
    std::exit(1);
  };
  if (Status s = record.Validate(); !s.ok()) fail(s);
  if (Status s = hsis::WriteFile(internal::JsonPathStorage(),
                                 common::PerfRecordToJson(record));
      !s.ok()) {
    fail(s);
  }
  std::printf("wrote perf record -> %s\n", internal::JsonPathStorage().c_str());
}

/// Removes the hsis flags from argv so google-benchmark never sees
/// them; called by HSIS_BENCH_MAIN before anything else. Flag values
/// go through the uniform parsers (`ParseThreadsValue` /
/// `ParseShardsValue`): 0 resolves to hardware concurrency / 1 shard,
/// and negatives or junk abort with the InvalidArgument message.
inline void ConsumeFlags(int* argc, char** argv) {
  auto resolve = [](hsis::Result<int> parsed) {
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      std::exit(1);
    }
    return *parsed;
  };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      internal::ThreadsStorage() =
          resolve(hsis::common::ParseThreadsValue(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      internal::ShardsStorage() =
          resolve(hsis::common::ParseShardsValue(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--speedup") == 0) {
      internal::SpeedupStorage() = true;
    } else if (std::strcmp(argv[i], "--schedule") == 0) {
      internal::ScheduleStorage() = true;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      internal::WorkersStorage() =
          resolve(hsis::common::ParseThreadsValue(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--max-retries=", 14) == 0) {
      char* end = nullptr;
      long value = std::strtol(argv[i] + 14, &end, 10);
      if (end == argv[i] + 14 || *end != '\0' || value < 0) {
        std::fprintf(stderr, "bad --max-retries value: %s\n", argv[i] + 14);
        std::exit(1);
      }
      internal::MaxRetriesStorage() = static_cast<int>(value);
    } else if (std::strncmp(argv[i], "--shard-timeout-ms=", 19) == 0) {
      char* end = nullptr;
      long value = std::strtol(argv[i] + 19, &end, 10);
      if (end == argv[i] + 19 || *end != '\0' || value < 0) {
        std::fprintf(stderr, "bad --shard-timeout-ms value: %s\n",
                     argv[i] + 19);
        std::exit(1);
      }
      internal::ShardTimeoutMsStorage() = value;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      internal::JsonPathStorage() = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace hsis::bench

#endif  // HSIS_BENCH_BENCH_UTIL_H_

#ifndef HSIS_BENCH_BENCH_UTIL_H_
#define HSIS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

/// Shared main() for all reproduction benches: print the paper artifact
/// first (tables/series exactly as DESIGN.md §4 specifies), then run the
/// google-benchmark timings registered by the binary.
#define HSIS_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                                 \
    print_fn();                                                     \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

namespace hsis::bench {

inline void PrintRule(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n\n");
}

}  // namespace hsis::bench

#endif  // HSIS_BENCH_BENCH_UTIL_H_

// Experiment E10a — the sovereign set-intersection substrate (Section 2
// and footnote 3): protocol cost vs set size, full vs size-only
// variants, 64-bit test group vs the production 256-bit group.

#include <chrono>

#include "bench_util.h"
#include "sim/workload.h"
#include "sovereign/intersection_protocol.h"
#include "sovereign/multiparty.h"

namespace {

using namespace hsis;
using namespace hsis::sovereign;

crypto::MultisetHashFamily FamilyFor(const crypto::PrimeGroup& group) {
  return std::move(crypto::MultisetHashFamily::CreateMu(group).value());
}

Dataset MakeSet(size_t n, const char* prefix) {
  std::vector<std::string> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(std::string(prefix) + std::to_string(i));
  }
  return Dataset::FromStrings(values);
}

void PrintReproduction() {
  bench::PrintRule(
      "E10a / sovereign set intersection: wire and compute costs");

  std::printf("Two-party protocol on the production 256-bit safe-prime "
              "group;\n50%% overlap; wall time per run and sealed bytes on "
              "the wire:\n\n");
  std::printf("  %-8s %-12s %-14s %-12s %s\n", "|D|", "result", "bytes/party",
              "ms/run", "checks");
  Rng rng(1);
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  crypto::MultisetHashFamily family = FamilyFor(group);
  for (size_t n : {size_t{16}, size_t{64}, size_t{256}}) {
    Dataset a = MakeSet(n, "shared-");           // first n/2 shared
    Dataset b = MakeSet(n / 2, "shared-");
    Dataset b_extra = MakeSet(n / 2, "b-only-");
    b = b.Union(b_extra);

    auto t0 = std::chrono::steady_clock::now();
    auto outcomes =
        RunTwoPartyIntersection(a, b, group, family, rng).value();
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    bool correct = outcomes.first.intersection == a.Intersect(b);
    std::printf("  %-8zu %-12zu %-14zu %-12.1f %s\n", n,
                outcomes.first.intersection_size, outcomes.first.bytes_sent,
                ms, correct ? "correct" : "WRONG");
  }

  std::printf("\nSize-only variant (footnote 3): same cost shape, members "
              "hidden:\n\n");
  IntersectionOptions size_only;
  size_only.size_only = true;
  Dataset a = MakeSet(64, "shared-");
  Dataset b = MakeSet(32, "shared-").Union(MakeSet(32, "b-only-"));
  auto outcomes =
      RunTwoPartyIntersection(a, b, group, family, rng, size_only).value();
  std::printf("  |A| = 64, |B| = 64 -> |A ∩ B| = %zu, members learned: %zu\n",
              outcomes.first.intersection_size,
              outcomes.first.intersection.size());

  std::printf("\nMulti-party ring (64-bit test group), catalog 100, "
              "p(hold) = 0.8:\n\n");
  const crypto::PrimeGroup& small = crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily small_family = FamilyFor(small);
  for (int parties : {2, 4, 8}) {
    auto stocks = sim::MakeSupplyChainWorkload(parties, 100, 0.8, rng);
    std::vector<Dataset> reported;
    for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
    auto t0 = std::chrono::steady_clock::now();
    auto result =
        RunMultiPartyIntersection(reported, small, small_family, rng).value();
    auto t1 = std::chrono::steady_clock::now();
    Dataset truth = reported[0];
    for (size_t p = 1; p < reported.size(); ++p) {
      truth = truth.Intersect(reported[p]);
    }
    std::printf("  n = %d: global intersection %zu parts, %.1f ms, %s\n",
                parties, result[0].intersection.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                result[0].intersection == truth ? "correct" : "WRONG");
  }
  std::printf("\nCost model: O(|D|) commutative exponentiations per party "
              "per hop\n(2 hops for two-party, n hops for the ring) — "
              "matching AES03.\n");
}

void BM_TwoPartyIntersection(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool production = state.range(1) == 1;
  const crypto::PrimeGroup& group = production
                                        ? crypto::PrimeGroup::Default()
                                        : crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily family = FamilyFor(group);
  Dataset a = MakeSet(n, "shared-");
  Dataset b = MakeSet(n / 2, "shared-").Union(MakeSet(n / 2, "b-only-"));
  Rng rng(2);
  for (auto _ : state) {
    auto r = RunTwoPartyIntersection(a, b, group, family, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
  state.SetLabel(production ? "256-bit group" : "64-bit test group");
}
BENCHMARK(BM_TwoPartyIntersection)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({16, 1})
    ->Args({64, 1});

void BM_HashToElement(benchmark::State& state) {
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  Bytes value = ToBytes("customer-record");
  for (auto _ : state) {
    auto e = group.HashToElement(value);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_HashToElement);

void BM_MultiPartyRing(benchmark::State& state) {
  int parties = static_cast<int>(state.range(0));
  Rng rng(3);
  auto stocks = sim::MakeSupplyChainWorkload(parties, 64, 0.8, rng);
  std::vector<Dataset> reported;
  for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
  const crypto::PrimeGroup& group = crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily family = FamilyFor(group);
  for (auto _ : state) {
    auto r = RunMultiPartyIntersection(reported, group, family, rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MultiPartyRing)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

// Experiment E10a — the sovereign set-intersection substrate (Section 2
// and footnote 3): protocol cost vs set size, full vs size-only
// variants, 64-bit test group vs the production 256-bit group.
//
// Protocol-scale mode (`--tuples=N`): runs one N-tuples-per-party
// two-firm intersection (50% overlap, 64-bit test group so throughput
// measures the pipeline rather than 256-bit modexp) through the legacy
// whole-set path and the streamed pipeline
// (`--chunk-size=C --threads=T --pipeline-depth=D`; D >= 2 overlaps
// the crypto stage with the AEAD/wire stage), asserts the streamed
// outcome is bit-identical to the legacy one (exit 1 on any mismatch —
// this is CI's protocol-scale diff smoke, serial and pipelined legs),
// and reports tuples/sec for both.
// With `--shards=K` (K > 1) it also drives a K-session heavy-traffic
// campaign (mixed honest/withhold/probe behavior plus commitment
// audits) with K session workers. `--json=PATH` writes one
// hsis-bench-v1 record per measured path — intersection_legacy,
// intersection_streamed, and (under --shards) intersection_campaign —
// with tuples/sec as cells_per_sec.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/file.h"
#include "common/parallel.h"
#include "common/perf_record.h"
#include "sim/protocol_traffic.h"
#include "sim/workload.h"
#include "sovereign/intersection_protocol.h"
#include "sovereign/multiparty.h"

namespace {

using namespace hsis;
using namespace hsis::sovereign;

crypto::MultisetHashFamily FamilyFor(const crypto::PrimeGroup& group) {
  return std::move(crypto::MultisetHashFamily::CreateMu(group).value());
}

Dataset MakeSet(size_t n, const char* prefix) {
  std::vector<std::string> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(std::string(prefix) + std::to_string(i));
  }
  return Dataset::FromStrings(values);
}

void PrintReproduction() {
  bench::PrintRule(
      "E10a / sovereign set intersection: wire and compute costs");

  std::printf("Two-party protocol on the production 256-bit safe-prime "
              "group;\n50%% overlap; wall time per run and sealed bytes on "
              "the wire:\n\n");
  std::printf("  %-8s %-12s %-14s %-12s %s\n", "|D|", "result", "bytes/party",
              "ms/run", "checks");
  Rng rng(1);
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  crypto::MultisetHashFamily family = FamilyFor(group);
  for (size_t n : {size_t{16}, size_t{64}, size_t{256}}) {
    Dataset a = MakeSet(n, "shared-");           // first n/2 shared
    Dataset b = MakeSet(n / 2, "shared-");
    Dataset b_extra = MakeSet(n / 2, "b-only-");
    b = b.Union(b_extra);

    auto t0 = std::chrono::steady_clock::now();
    auto outcomes =
        RunTwoPartyIntersection(a, b, group, family, rng).value();
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    bool correct = outcomes.first.intersection == a.Intersect(b);
    std::printf("  %-8zu %-12zu %-14zu %-12.1f %s\n", n,
                outcomes.first.intersection_size, outcomes.first.bytes_sent,
                ms, correct ? "correct" : "WRONG");
  }

  std::printf("\nSize-only variant (footnote 3): same cost shape, members "
              "hidden:\n\n");
  IntersectionOptions size_only;
  size_only.size_only = true;
  Dataset a = MakeSet(64, "shared-");
  Dataset b = MakeSet(32, "shared-").Union(MakeSet(32, "b-only-"));
  auto outcomes =
      RunTwoPartyIntersection(a, b, group, family, rng, size_only).value();
  std::printf("  |A| = 64, |B| = 64 -> |A ∩ B| = %zu, members learned: %zu\n",
              outcomes.first.intersection_size,
              outcomes.first.intersection.size());

  std::printf("\nMulti-party ring (64-bit test group), catalog 100, "
              "p(hold) = 0.8, threads=%d:\n\n", bench::Threads());
  const crypto::PrimeGroup& small = crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily small_family = FamilyFor(small);
  MultiPartyOptions mp_options;
  mp_options.threads = bench::Threads();
  for (int parties : {2, 4, 8}) {
    auto stocks = sim::MakeSupplyChainWorkload(parties, 100, 0.8, rng);
    std::vector<Dataset> reported;
    for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
    auto t0 = std::chrono::steady_clock::now();
    auto result =
        RunMultiPartyIntersection(reported, small, small_family, rng,
                                  mp_options)
            .value();
    auto t1 = std::chrono::steady_clock::now();
    Dataset truth = reported[0];
    for (size_t p = 1; p < reported.size(); ++p) {
      truth = truth.Intersect(reported[p]);
    }
    std::printf("  n = %d: global intersection %zu parts, %.1f ms, %s\n",
                parties, result[0].intersection.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                result[0].intersection == truth ? "correct" : "WRONG");
  }
  std::printf("\nCost model: O(|D|) commutative exponentiations per party "
              "per hop\n(2 hops for two-party, n hops for the ring) — "
              "matching AES03.\n");
}

bool OutcomesIdentical(const std::vector<MultiPartyOutcome>& a,
                       const std::vector<MultiPartyOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].intersection == b[i].intersection) ||
        a[i].own_commitment != b[i].own_commitment) {
      return false;
    }
  }
  return true;
}

/// `--speedup` mode: times the 8-party ring (production 256-bit group,
/// catalog 96) serially and with `--threads=N` (default: hardware) and
/// verifies every party's intersection and commitment is bit-identical.
void PrintSpeedup() {
  bench::PrintRule(
      "Multi-party ring: serial vs parallel per-party encryption");
  int threads = bench::Threads() == 1 ? 0 : bench::Threads();
  int resolved = common::ResolveThreadCount(threads);

  Rng workload_rng(11);
  const int kParties = 8;
  auto stocks = sim::MakeSupplyChainWorkload(kParties, 96, 0.8, workload_rng);
  std::vector<Dataset> reported;
  for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  crypto::MultisetHashFamily family = FamilyFor(group);

  using Clock = std::chrono::steady_clock;
  auto time_run = [&](int t, std::vector<MultiPartyOutcome>* out) {
    MultiPartyOptions options;
    options.threads = t;
    Rng rng(23);  // fresh protocol stream per run: identical keys
    Clock::time_point start = Clock::now();
    *out = RunMultiPartyIntersection(reported, group, family, rng, options)
               .value();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  std::vector<MultiPartyOutcome> serial, two, parallel;
  double serial_s = time_run(1, &serial);
  double two_s = time_run(2, &two);
  double parallel_s = time_run(resolved, &parallel);

  size_t tuples = 0;
  for (const Dataset& d : reported) tuples += d.size();
  std::printf("ring: %d parties, %zu tuples, %d hops each (256-bit group)\n\n",
              kParties, tuples, kParties);
  std::printf("  threads=1   %8.3f s\n", serial_s);
  std::printf("  threads=2   %8.3f s   speedup %.2fx\n", two_s,
              serial_s / two_s);
  std::printf("  threads=%-3d %8.3f s   speedup %.2fx\n", resolved, parallel_s,
              serial_s / parallel_s);
  std::printf("\nbit-identical across thread counts: %s\n",
              OutcomesIdentical(serial, two) &&
                      OutcomesIdentical(serial, parallel)
                  ? "yes"
                  : "NO — DETERMINISM VIOLATION");
}

void PrintMain() {
  if (bench::SpeedupRequested()) {
    PrintSpeedup();
  } else {
    PrintReproduction();
  }
}

// --- Protocol-scale mode (--tuples=N) ------------------------------------

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool OutcomeMatches(const IntersectionOutcome& streamed,
                    const IntersectionOutcome& legacy) {
  return streamed.intersection == legacy.intersection &&
         streamed.intersection_size == legacy.intersection_size &&
         streamed.own_commitment == legacy.own_commitment &&
         streamed.peer_commitment == legacy.peer_commitment;
}

/// Runs the legacy and streamed paths on the same N-per-party workload,
/// enforces bit-identity, reports tuples/sec, and (with --shards=K > 1)
/// adds a K-session traffic campaign. Returns the process exit code.
int RunProtocolScale(size_t tuples, size_t chunk_size, size_t pipeline_depth) {
  const crypto::PrimeGroup& group = crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily family = FamilyFor(group);
  const int threads = bench::Threads();

  bench::PrintRule("protocol-scale: streamed vs legacy intersection");
  std::printf("workload: %zu tuples/party, 50%% overlap, 64-bit test group\n"
              "streamed: chunk-size %zu, threads %d, pipeline-depth %zu\n\n",
              tuples, chunk_size, threads, pipeline_depth);

  const size_t half = tuples / 2;
  Dataset a = MakeSet(half, "shared-").Union(MakeSet(tuples - half,
                                                     "a-only-"));
  Dataset b = MakeSet(half, "shared-").Union(MakeSet(tuples - half,
                                                     "b-only-"));
  const double total = static_cast<double>(a.size() + b.size());

  auto legacy_start = std::chrono::steady_clock::now();
  Rng legacy_rng(42);
  auto legacy = RunTwoPartyIntersection(a, b, group, family, legacy_rng);
  if (!legacy.ok()) {
    std::fprintf(stderr, "legacy run failed: %s\n",
                 legacy.status().ToString().c_str());
    return 1;
  }
  const double legacy_ms = MsSince(legacy_start);
  const double legacy_tps = 1000.0 * total / legacy_ms;
  std::printf("legacy whole-set:  %10.1f ms  %12.0f tuples/s\n", legacy_ms,
              legacy_tps);

  IntersectionOptions options;
  options.chunk_size = chunk_size;
  options.threads = threads;
  options.pipeline_depth = pipeline_depth;
  auto streamed_start = std::chrono::steady_clock::now();
  Rng streamed_rng(42);
  auto streamed = RunTwoPartyIntersectionStreamed(a, b, group, family,
                                                  streamed_rng, options);
  if (!streamed.ok()) {
    std::fprintf(stderr, "streamed run failed: %s\n",
                 streamed.status().ToString().c_str());
    return 1;
  }
  const double streamed_ms = MsSince(streamed_start);
  const double streamed_tps = 1000.0 * total / streamed_ms;
  std::printf("streamed pipeline: %10.1f ms  %12.0f tuples/s  "
              "(speedup %.2fx)\n",
              streamed_ms, streamed_tps, legacy_ms / streamed_ms);

  // The differential gate: the streamed outcome must be bit-identical
  // to the legacy one for both parties.
  if (!OutcomeMatches(streamed->first, legacy->first) ||
      !OutcomeMatches(streamed->second, legacy->second)) {
    std::fprintf(stderr,
                 "DIFFERENTIAL FAILURE: streamed outcome diverged from the "
                 "legacy path\n");
    return 1;
  }
  const size_t expected = half;
  std::printf("bit-identical to legacy: yes  (|A ∩ B| = %zu, expected %zu)\n",
              streamed->first.intersection_size, expected);
  if (streamed->first.intersection_size != expected) {
    std::fprintf(stderr, "wrong intersection size\n");
    return 1;
  }

  // Optional heavy-traffic campaign: --shards=K sessions, K workers.
  double campaign_tps = 0, campaign_ms = 0;
  const int sessions = bench::Shards();
  if (sessions > 1) {
    sim::ProtocolTrafficOptions traffic;
    traffic.sessions = static_cast<size_t>(sessions);
    traffic.tuples_per_party = std::min<size_t>(tuples, 512);
    traffic.common_tuples = traffic.tuples_per_party / 4;
    traffic.chunk_size = chunk_size;
    traffic.pipeline_depth = pipeline_depth;
    traffic.threads = 1;  // parallelism across sessions instead
    traffic.session_threads = sessions;
    auto campaign_start = std::chrono::steady_clock::now();
    auto stats = sim::RunProtocolTrafficCampaign(traffic, group, family);
    if (!stats.ok()) {
      std::fprintf(stderr, "campaign failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    campaign_ms = MsSince(campaign_start);
    campaign_tps =
        1000.0 * static_cast<double>(stats->tuples_processed) / campaign_ms;
    std::printf("\ncampaign: %zu sessions (%zu honest / %zu withheld / %zu "
                "probed), %zu audits -> %zu flags,\n          %zu tuples, "
                "%.1f ms, %.0f tuples/s, %zu protocol failures\n",
                stats->sessions, stats->honest, stats->withheld,
                stats->probed, stats->audited, stats->audit_flags,
                stats->tuples_processed, campaign_ms, campaign_tps,
                stats->protocol_failures);
    if (stats->protocol_failures != 0) {
      std::fprintf(stderr, "campaign sessions failed\n");
      return 1;
    }
  }

  if (!bench::JsonPath().empty()) {
    auto record = [&](const char* name, double tps, double wall_ms) {
      common::PerfRecord r;
      r.bench = name;
      r.threads = threads;
      r.cells_per_sec = tps;
      r.wall_ms = wall_ms;
      r.git_describe = bench::GitDescribe();
      if (Status s = r.Validate(); !s.ok()) {
        std::fprintf(stderr, "--json: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      return common::PerfRecordToJson(r);
    };
    std::string lines;
    lines += record("intersection_legacy", legacy_tps, legacy_ms);
    lines += record("intersection_streamed", streamed_tps, streamed_ms);
    if (sessions > 1) {
      lines += record("intersection_campaign", campaign_tps, campaign_ms);
    }
    if (Status s = hsis::WriteFile(bench::JsonPath(), lines); !s.ok()) {
      std::fprintf(stderr, "--json: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote perf records -> %s\n", bench::JsonPath().c_str());
  }
  return 0;
}

void BM_TwoPartyIntersection(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool production = state.range(1) == 1;
  const crypto::PrimeGroup& group = production
                                        ? crypto::PrimeGroup::Default()
                                        : crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily family = FamilyFor(group);
  Dataset a = MakeSet(n, "shared-");
  Dataset b = MakeSet(n / 2, "shared-").Union(MakeSet(n / 2, "b-only-"));
  Rng rng(2);
  for (auto _ : state) {
    auto r = RunTwoPartyIntersection(a, b, group, family, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
  state.SetLabel(production ? "256-bit group" : "64-bit test group");
}
BENCHMARK(BM_TwoPartyIntersection)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({16, 1})
    ->Args({64, 1});

void BM_HashToElement(benchmark::State& state) {
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  Bytes value = ToBytes("customer-record");
  for (auto _ : state) {
    auto e = group.HashToElement(value);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_HashToElement);

void BM_MultiPartyRing(benchmark::State& state) {
  int parties = static_cast<int>(state.range(0));
  Rng rng(3);
  auto stocks = sim::MakeSupplyChainWorkload(parties, 64, 0.8, rng);
  std::vector<Dataset> reported;
  for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
  const crypto::PrimeGroup& group = crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily family = FamilyFor(group);
  for (auto _ : state) {
    auto r = RunMultiPartyIntersection(reported, group, family, rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MultiPartyRing)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  size_t tuples = 0;       // 0 = reproduction mode, no scale run
  size_t chunk_size = kDefaultIntersectionChunkSize;
  size_t pipeline_depth = 1;

  // Strip the bench-specific flags, then let bench_util consume the
  // standard ones (--threads, --shards, --speedup, --json).
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    auto size_flag = [&](const char* prefix, const char* name) -> size_t {
      size_t len = std::strlen(prefix);
      char* end = nullptr;
      long value = std::strtol(argv[i] + len, &end, 10);
      if (end == argv[i] + len || *end != '\0' || value <= 0) {
        std::fprintf(stderr, "bad %s value: %s\n", name, argv[i] + len);
        std::exit(2);
      }
      return static_cast<size_t>(value);
    };
    if (std::strncmp(argv[i], "--tuples=", 9) == 0) {
      tuples = size_flag("--tuples=", "--tuples");
    } else if (std::strncmp(argv[i], "--chunk-size=", 13) == 0) {
      chunk_size = size_flag("--chunk-size=", "--chunk-size");
    } else if (std::strncmp(argv[i], "--pipeline-depth=", 17) == 0) {
      pipeline_depth = size_flag("--pipeline-depth=", "--pipeline-depth");
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  bench::ConsumeFlags(&argc, argv);

  if (tuples > 0) return RunProtocolScale(tuples, chunk_size, pipeline_depth);

  PrintMain();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

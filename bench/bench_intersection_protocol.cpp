// Experiment E10a — the sovereign set-intersection substrate (Section 2
// and footnote 3): protocol cost vs set size, full vs size-only
// variants, 64-bit test group vs the production 256-bit group.

#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "common/parallel.h"
#include "sim/workload.h"
#include "sovereign/intersection_protocol.h"
#include "sovereign/multiparty.h"

namespace {

using namespace hsis;
using namespace hsis::sovereign;

crypto::MultisetHashFamily FamilyFor(const crypto::PrimeGroup& group) {
  return std::move(crypto::MultisetHashFamily::CreateMu(group).value());
}

Dataset MakeSet(size_t n, const char* prefix) {
  std::vector<std::string> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(std::string(prefix) + std::to_string(i));
  }
  return Dataset::FromStrings(values);
}

void PrintReproduction() {
  bench::PrintRule(
      "E10a / sovereign set intersection: wire and compute costs");

  std::printf("Two-party protocol on the production 256-bit safe-prime "
              "group;\n50%% overlap; wall time per run and sealed bytes on "
              "the wire:\n\n");
  std::printf("  %-8s %-12s %-14s %-12s %s\n", "|D|", "result", "bytes/party",
              "ms/run", "checks");
  Rng rng(1);
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  crypto::MultisetHashFamily family = FamilyFor(group);
  for (size_t n : {size_t{16}, size_t{64}, size_t{256}}) {
    Dataset a = MakeSet(n, "shared-");           // first n/2 shared
    Dataset b = MakeSet(n / 2, "shared-");
    Dataset b_extra = MakeSet(n / 2, "b-only-");
    b = b.Union(b_extra);

    auto t0 = std::chrono::steady_clock::now();
    auto outcomes =
        RunTwoPartyIntersection(a, b, group, family, rng).value();
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    bool correct = outcomes.first.intersection == a.Intersect(b);
    std::printf("  %-8zu %-12zu %-14zu %-12.1f %s\n", n,
                outcomes.first.intersection_size, outcomes.first.bytes_sent,
                ms, correct ? "correct" : "WRONG");
  }

  std::printf("\nSize-only variant (footnote 3): same cost shape, members "
              "hidden:\n\n");
  IntersectionOptions size_only;
  size_only.size_only = true;
  Dataset a = MakeSet(64, "shared-");
  Dataset b = MakeSet(32, "shared-").Union(MakeSet(32, "b-only-"));
  auto outcomes =
      RunTwoPartyIntersection(a, b, group, family, rng, size_only).value();
  std::printf("  |A| = 64, |B| = 64 -> |A ∩ B| = %zu, members learned: %zu\n",
              outcomes.first.intersection_size,
              outcomes.first.intersection.size());

  std::printf("\nMulti-party ring (64-bit test group), catalog 100, "
              "p(hold) = 0.8, threads=%d:\n\n", bench::Threads());
  const crypto::PrimeGroup& small = crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily small_family = FamilyFor(small);
  MultiPartyOptions mp_options;
  mp_options.threads = bench::Threads();
  for (int parties : {2, 4, 8}) {
    auto stocks = sim::MakeSupplyChainWorkload(parties, 100, 0.8, rng);
    std::vector<Dataset> reported;
    for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
    auto t0 = std::chrono::steady_clock::now();
    auto result =
        RunMultiPartyIntersection(reported, small, small_family, rng,
                                  mp_options)
            .value();
    auto t1 = std::chrono::steady_clock::now();
    Dataset truth = reported[0];
    for (size_t p = 1; p < reported.size(); ++p) {
      truth = truth.Intersect(reported[p]);
    }
    std::printf("  n = %d: global intersection %zu parts, %.1f ms, %s\n",
                parties, result[0].intersection.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                result[0].intersection == truth ? "correct" : "WRONG");
  }
  std::printf("\nCost model: O(|D|) commutative exponentiations per party "
              "per hop\n(2 hops for two-party, n hops for the ring) — "
              "matching AES03.\n");
}

bool OutcomesIdentical(const std::vector<MultiPartyOutcome>& a,
                       const std::vector<MultiPartyOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].intersection == b[i].intersection) ||
        a[i].own_commitment != b[i].own_commitment) {
      return false;
    }
  }
  return true;
}

/// `--speedup` mode: times the 8-party ring (production 256-bit group,
/// catalog 96) serially and with `--threads=N` (default: hardware) and
/// verifies every party's intersection and commitment is bit-identical.
void PrintSpeedup() {
  bench::PrintRule(
      "Multi-party ring: serial vs parallel per-party encryption");
  int threads = bench::Threads() == 1 ? 0 : bench::Threads();
  int resolved = common::ResolveThreadCount(threads);

  Rng workload_rng(11);
  const int kParties = 8;
  auto stocks = sim::MakeSupplyChainWorkload(kParties, 96, 0.8, workload_rng);
  std::vector<Dataset> reported;
  for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  crypto::MultisetHashFamily family = FamilyFor(group);

  using Clock = std::chrono::steady_clock;
  auto time_run = [&](int t, std::vector<MultiPartyOutcome>* out) {
    MultiPartyOptions options;
    options.threads = t;
    Rng rng(23);  // fresh protocol stream per run: identical keys
    Clock::time_point start = Clock::now();
    *out = RunMultiPartyIntersection(reported, group, family, rng, options)
               .value();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  std::vector<MultiPartyOutcome> serial, two, parallel;
  double serial_s = time_run(1, &serial);
  double two_s = time_run(2, &two);
  double parallel_s = time_run(resolved, &parallel);

  size_t tuples = 0;
  for (const Dataset& d : reported) tuples += d.size();
  std::printf("ring: %d parties, %zu tuples, %d hops each (256-bit group)\n\n",
              kParties, tuples, kParties);
  std::printf("  threads=1   %8.3f s\n", serial_s);
  std::printf("  threads=2   %8.3f s   speedup %.2fx\n", two_s,
              serial_s / two_s);
  std::printf("  threads=%-3d %8.3f s   speedup %.2fx\n", resolved, parallel_s,
              serial_s / parallel_s);
  std::printf("\nbit-identical across thread counts: %s\n",
              OutcomesIdentical(serial, two) &&
                      OutcomesIdentical(serial, parallel)
                  ? "yes"
                  : "NO — DETERMINISM VIOLATION");
}

void PrintMain() {
  if (bench::SpeedupRequested()) {
    PrintSpeedup();
  } else {
    PrintReproduction();
  }
}

void BM_TwoPartyIntersection(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool production = state.range(1) == 1;
  const crypto::PrimeGroup& group = production
                                        ? crypto::PrimeGroup::Default()
                                        : crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily family = FamilyFor(group);
  Dataset a = MakeSet(n, "shared-");
  Dataset b = MakeSet(n / 2, "shared-").Union(MakeSet(n / 2, "b-only-"));
  Rng rng(2);
  for (auto _ : state) {
    auto r = RunTwoPartyIntersection(a, b, group, family, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
  state.SetLabel(production ? "256-bit group" : "64-bit test group");
}
BENCHMARK(BM_TwoPartyIntersection)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({16, 1})
    ->Args({64, 1});

void BM_HashToElement(benchmark::State& state) {
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  Bytes value = ToBytes("customer-record");
  for (auto _ : state) {
    auto e = group.HashToElement(value);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_HashToElement);

void BM_MultiPartyRing(benchmark::State& state) {
  int parties = static_cast<int>(state.range(0));
  Rng rng(3);
  auto stocks = sim::MakeSupplyChainWorkload(parties, 64, 0.8, rng);
  std::vector<Dataset> reported;
  for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
  const crypto::PrimeGroup& group = crypto::PrimeGroup::SmallTestGroup();
  crypto::MultisetHashFamily family = FamilyFor(group);
  for (auto _ : state) {
    auto r = RunMultiPartyIntersection(reported, group, family, rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MultiPartyRing)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

// Experiment E8a — Section 6.1 feasibility: the four incremental
// multiset hash constructions (Clarke et al.) behind the auditing
// device.
//
// Reproduces the design table — state size, update cost, deletion
// support, security model — and measures update/union/serialize
// throughput per scheme (the ablation for DESIGN.md §7: scheme choice).

#include "bench_util.h"
#include "crypto/multiset_hash.h"

namespace {

using namespace hsis;
using namespace hsis::crypto;

MultisetHashFamily Family(MultisetHashScheme scheme) {
  bool keyed = scheme == MultisetHashScheme::kXor ||
               scheme == MultisetHashScheme::kAdd;
  return std::move(
      MultisetHashFamily::Create(scheme, keyed ? ToBytes("bench-key") : Bytes{})
          .value());
}

const MultisetHashScheme kSchemes[] = {
    MultisetHashScheme::kXor, MultisetHashScheme::kAdd,
    MultisetHashScheme::kMu, MultisetHashScheme::kVAdd};

void PrintReproduction() {
  bench::PrintRule("E8a / Section 6.1: incremental multiset hash schemes");

  std::printf("  %-15s %-12s %-10s %-9s %s\n", "scheme", "state bytes",
              "keyed", "deletes", "collision resistance holds against");
  const char* security[] = {
      "parties without the key (set-CR)",
      "parties without the key (multiset-CR)",
      "everyone, under discrete log (multiset-CR)",
      "random inputs only (checksum grade)",
  };
  int i = 0;
  for (MultisetHashScheme scheme : kSchemes) {
    MultisetHashFamily family = Family(scheme);
    auto h = family.NewHash();
    h->Add(ToBytes("probe"));
    bool keyed = scheme == MultisetHashScheme::kXor ||
                 scheme == MultisetHashScheme::kAdd;
    std::printf("  %-15s %-12zu %-10s %-9s %s\n",
                MultisetHashSchemeName(scheme), h->Serialize().size(),
                keyed ? "yes" : "no", "yes", security[i++]);
  }
  std::printf(
      "\nIn this paper's threat model the hashing party itself is the\n"
      "adversary, so the unkeyed MSet-Mu-Hash is the default: its\n"
      "collision resistance does not depend on a secret the cheater\n"
      "holds. The benchmarks below quantify what that security costs in\n"
      "update throughput (Mu pays a 256-bit modular multiply per tuple).\n");

  // Compression + correctness spot check across schemes.
  std::printf("\nCompression: accumulator size after 10^5 elements:\n");
  for (MultisetHashScheme scheme : kSchemes) {
    MultisetHashFamily family = Family(scheme);
    auto h = family.NewHash();
    for (int k = 0; k < 100000; ++k) {
      h->Add(ToBytes("tuple-" + std::to_string(k)));
    }
    std::printf("  %-15s %zu bytes (count = %llu)\n",
                MultisetHashSchemeName(scheme), h->Serialize().size(),
                static_cast<unsigned long long>(h->count()));
  }
}

void BM_Add(benchmark::State& state) {
  MultisetHashFamily family = Family(kSchemes[state.range(0)]);
  auto h = family.NewHash();
  Bytes element = ToBytes("customer-record-0123456789");
  for (auto _ : state) {
    h->Add(element);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(MultisetHashSchemeName(kSchemes[state.range(0)]));
}
BENCHMARK(BM_Add)->DenseRange(0, 3);

void BM_Remove(benchmark::State& state) {
  MultisetHashFamily family = Family(kSchemes[state.range(0)]);
  auto h = family.NewHash();
  Bytes element = ToBytes("customer-record-0123456789");
  for (int i = 0; i < 4; ++i) h->Add(element);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->Remove(element));
    h->Add(element);
  }
  state.SetLabel(MultisetHashSchemeName(kSchemes[state.range(0)]));
}
BENCHMARK(BM_Remove)->DenseRange(0, 3);

void BM_Union(benchmark::State& state) {
  MultisetHashFamily family = Family(kSchemes[state.range(0)]);
  auto a = family.NewHash();
  auto b = family.NewHash();
  a->Add(ToBytes("x"));
  b->Add(ToBytes("y"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->Union(*b));
  }
  state.SetLabel(MultisetHashSchemeName(kSchemes[state.range(0)]));
}
BENCHMARK(BM_Union)->DenseRange(0, 3);

void BM_SerializeDeserialize(benchmark::State& state) {
  MultisetHashFamily family = Family(kSchemes[state.range(0)]);
  auto h = family.NewHash();
  h->Add(ToBytes("x"));
  for (auto _ : state) {
    Bytes wire = h->Serialize();
    auto back = family.Deserialize(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetLabel(MultisetHashSchemeName(kSchemes[state.range(0)]));
}
BENCHMARK(BM_SerializeDeserialize)->DenseRange(0, 3);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

// Extension — enforcement without (or with less) auditing: the folk
// theorem applied to the honesty game.
//
// Grim-trigger repetition sustains honesty in the *unaudited* game iff
// the collateral damage of mutual cheating exceeds the cheating gain
// (L >= F - B) and players are patient (delta >= (F-B)/L). Auditing and
// patience trade off along the generalized Observation 2 frontier
// f*(delta) = (F - delta L - B)/(F - delta L + P).

#include <cmath>

#include "bench_util.h"
#include "game/repeated_analysis.h"
#include "game/thresholds.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25;

void PrintReproduction() {
  bench::PrintRule(
      "Extension: repetition-based enforcement (folk-theorem analysis)");

  std::printf("(1) Can patience alone replace the auditing device?\n"
              "    delta* = (F - B)/L for the unaudited game (B=10, F=25):\n\n");
  std::printf("  %-8s %-14s %s\n", "L", "delta*", "verdict");
  for (double loss : {5.0, 10.0, 15.0, 20.0, 30.0, 60.0}) {
    double d = CriticalDiscount(kB, kF, loss);
    if (std::isinf(d)) {
      std::printf("  %-8.0f %-14s cheating damage too small — repetition "
                  "can never deter\n", loss, "unreachable");
    } else {
      std::printf("  %-8.0f %-14.3f honest iff players discount above this\n",
                  loss, d);
    }
  }
  std::printf("\n  -> The paper's device is *necessary* whenever L < F - B\n"
              "     or participants are impatient; otherwise repetition is\n"
              "     an audit-free alternative.\n\n");

  std::printf("(2) The audit/patience frontier f*(delta) at L = 12, P = 10\n"
              "    (delta = 0 is exactly Observation 2):\n\n");
  std::printf("  %-8s %-10s\n", "delta", "f*");
  for (double delta : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    std::printf("  %-8.2f %-10.4f\n", delta,
                CriticalFrequencyWithPatience(kB, kF, 12, 10, delta));
  }
  std::printf("\n  Consistency: delta = 0 gives %.4f = CriticalFrequency = "
              "%.4f\n\n",
              CriticalFrequencyWithPatience(kB, kF, 12, 10, 0),
              CriticalFrequency(kB, kF, 10));

  std::printf("(3) Value-function verification at L = 20, f = 0.1, P = 5:\n\n");
  const double loss = 20, f = 0.1, penalty = 5;
  double deviation = (1 - f) * kF - f * penalty;
  double punishment = deviation - (1 - f) * loss;
  double d_star = CriticalDiscount(kB, kF, loss, f, penalty);
  std::printf("  delta* = %.4f; discounted streams around it:\n", d_star);
  std::printf("  %-8s %-16s %-16s %s\n", "delta", "honest value",
              "deviate value", "honesty holds");
  for (double delta : {d_star - 0.1, d_star - 0.01, d_star + 0.01,
                       d_star + 0.1}) {
    double hv = DiscountedValue(kB, delta);
    double dv = DeviationValue(deviation, punishment, delta);
    std::printf("  %-8.3f %-16.2f %-16.2f %s\n", delta, hv, dv,
                hv >= dv ? "yes" : "no");
  }
  std::printf("\n  -> the incentive flips exactly at delta*, matching the\n"
              "     closed form. REPRODUCED (extension-internal check).\n");
}

void BM_CriticalDiscount(benchmark::State& state) {
  for (auto _ : state) {
    double d = CriticalDiscount(kB, kF, 20, 0.1, 5);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_CriticalDiscount);

void BM_FrontierSweep(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0;
    for (int i = 0; i <= 100; ++i) {
      acc += CriticalFrequencyWithPatience(kB, kF, 12, 10, i / 101.0);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel("101-point frontier");
}
BENCHMARK(BM_FrontierSweep);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

// Extension — enforcement without (or with less) auditing: the folk
// theorem applied to the honesty game.
//
// Grim-trigger repetition sustains honesty in the *unaudited* game iff
// the collateral damage of mutual cheating exceeds the cheating gain
// (L >= F - B) and players are patient (delta >= (F-B)/L). Auditing and
// patience trade off along the generalized Observation 2 frontier
// f*(delta) = (F - delta L - B)/(F - delta L + P).

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "bench_util.h"
#include "common/file.h"
#include "common/parallel.h"
#include "common/scheduler.h"
#include "common/shard.h"
#include "core/campaign.h"
#include "game/repeated_analysis.h"
#include "game/thresholds.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25;

// --- Campaign ensembles: repeated enforcement through the full stack ---

core::CampaignSessionFactory MakeSessionFactory(double frequency,
                                                double penalty) {
  return [frequency,
          penalty](uint64_t seed) -> Result<core::HonestSharingSession> {
    core::SessionConfig config;
    config.audit_frequency = frequency;
    config.penalty = penalty;
    config.group = &crypto::PrimeGroup::SmallTestGroup();
    config.seed = seed;
    HSIS_ASSIGN_OR_RETURN(core::HonestSharingSession s,
                          core::HonestSharingSession::Create(config));
    HSIS_RETURN_IF_ERROR(s.AddParty("alice"));
    HSIS_RETURN_IF_ERROR(s.AddParty("bob"));
    HSIS_RETURN_IF_ERROR(s.IssueTuples("alice", {"u", "v", "a1", "a2"}));
    HSIS_RETURN_IF_ERROR(s.IssueTuples("bob", {"u", "v", "b1", "b2", "b3"}));
    return s;
  };
}

std::vector<core::CampaignPolicyPair> PolicyGrid() {
  using core::CheatPolicy;
  std::vector<core::CampaignPolicyPair> policies;
  policies.push_back({"honest/honest", core::HonestPolicy,
                      core::HonestPolicy});
  policies.push_back({"prober/honest",
                      [] {
                        return core::PersistentProberPolicy(
                            {"b1", "b2", "miss"}, 2);
                      },
                      core::HonestPolicy});
  policies.push_back({"opportunist/honest",
                      [] {
                        return core::OpportunisticProberPolicy(
                            {"b1", "b2", "miss"}, 2, 0.3);
                      },
                      core::HonestPolicy});
  return policies;
}

void PrintCampaignEnsemble() {
  std::printf("(4) Campaign ensembles (policy x seed grid through the full\n"
              "    session stack; threads=%d):\n\n", bench::Threads());
  std::printf("  %-22s %-14s %-14s\n", "policy pair", "mean payoff A",
              "mean payoff B");
  core::CampaignEnsembleConfig config;
  config.rounds = 30;
  config.replicates = 8;
  config.base_seed = 20260806;
  config.economics.honest_benefit = 10;
  config.economics.gain_per_probe_hit = 5;
  config.economics.loss_per_leaked_tuple = 4;
  config.threads = bench::Threads();
  auto policies = PolicyGrid();
  auto ensemble = core::RunCampaignEnsemble(MakeSessionFactory(0.5, 30),
                                            "alice", "bob", policies, config);
  if (!ensemble.ok()) {
    std::printf("  ensemble failed: %s\n", ensemble.status().ToString().c_str());
    return;
  }
  for (size_t p = 0; p < policies.size(); ++p) {
    std::printf("  %-22s %-14.3f %-14.3f\n", policies[p].label.c_str(),
                ensemble->mean_payoff_a[p], ensemble->mean_payoff_b[p]);
  }
  std::printf("\n  -> at f = 0.5, P = 30 the expected penalty exceeds the\n"
              "     probe surplus: persistent probing earns less than\n"
              "     honest collaboration, round after round.\n");
}

bool EnsemblesIdentical(const core::CampaignEnsembleResult& a,
                        const core::CampaignEnsembleResult& b) {
  auto bits = [](double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  if (a.cells.size() != b.cells.size()) return false;
  for (size_t i = 0; i < a.cells.size(); ++i) {
    if (bits(a.cells[i].result.a.realized_payoff) !=
            bits(b.cells[i].result.a.realized_payoff) ||
        bits(a.cells[i].result.b.realized_payoff) !=
            bits(b.cells[i].result.b.realized_payoff) ||
        a.cells[i].result.a.times_detected !=
            b.cells[i].result.a.times_detected ||
        a.cells[i].session_seed != b.cells[i].session_seed) {
      return false;
    }
  }
  for (size_t p = 0; p < a.mean_payoff_a.size(); ++p) {
    if (bits(a.mean_payoff_a[p]) != bits(b.mean_payoff_a[p]) ||
        bits(a.mean_payoff_b[p]) != bits(b.mean_payoff_b[p])) {
      return false;
    }
  }
  return true;
}

/// `--speedup` mode: times the campaign-ensemble grid serially and with
/// the requested `--threads=N` (default: hardware concurrency) and
/// verifies bit-identity — the determinism contract, demonstrated on
/// the repeated-enforcement workload.
void PrintSpeedup() {
  bench::PrintRule(
      "Campaign ensemble engine: serial vs parallel, policy x seed grid");
  int threads = bench::Threads() == 1 ? 0 : bench::Threads();
  int resolved = common::ResolveThreadCount(threads);

  core::CampaignEnsembleConfig config;
  config.rounds = 60;
  config.replicates = 32;
  config.base_seed = 20260806;
  config.economics.honest_benefit = 10;
  config.economics.gain_per_probe_hit = 5;
  config.economics.loss_per_leaked_tuple = 4;
  auto policies = PolicyGrid();
  auto factory = MakeSessionFactory(0.5, 30);

  using Clock = std::chrono::steady_clock;
  auto time_run = [&](int t, core::CampaignEnsembleResult* out) {
    config.threads = t;
    Clock::time_point start = Clock::now();
    *out = core::RunCampaignEnsemble(factory, "alice", "bob", policies, config)
               .value();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  core::CampaignEnsembleResult serial, two, parallel;
  double serial_s = time_run(1, &serial);
  double two_s = time_run(2, &two);
  double parallel_s = time_run(resolved, &parallel);

  std::printf("grid: %zu policies x %d replicates x %d rounds = %zu cells\n\n",
              policies.size(), config.replicates, config.rounds,
              serial.cells.size());
  std::printf("  threads=1   %8.3f s\n", serial_s);
  std::printf("  threads=2   %8.3f s   speedup %.2fx\n", two_s,
              serial_s / two_s);
  std::printf("  threads=%-3d %8.3f s   speedup %.2fx\n", resolved, parallel_s,
              serial_s / parallel_s);
  std::printf("\nbit-identical across thread counts: %s\n",
              EnsemblesIdentical(serial, parallel) &&
                      EnsemblesIdentical(serial, two)
                  ? "yes"
                  : "NO — DETERMINISM VIOLATION");
}

void PrintReproduction() {
  bench::PrintRule(
      "Extension: repetition-based enforcement (folk-theorem analysis)");

  std::printf("(1) Can patience alone replace the auditing device?\n"
              "    delta* = (F - B)/L for the unaudited game (B=10, F=25):\n\n");
  std::printf("  %-8s %-14s %s\n", "L", "delta*", "verdict");
  for (double loss : {5.0, 10.0, 15.0, 20.0, 30.0, 60.0}) {
    double d = CriticalDiscount(kB, kF, loss);
    if (std::isinf(d)) {
      std::printf("  %-8.0f %-14s cheating damage too small — repetition "
                  "can never deter\n", loss, "unreachable");
    } else {
      std::printf("  %-8.0f %-14.3f honest iff players discount above this\n",
                  loss, d);
    }
  }
  std::printf("\n  -> The paper's device is *necessary* whenever L < F - B\n"
              "     or participants are impatient; otherwise repetition is\n"
              "     an audit-free alternative.\n\n");

  std::printf("(2) The audit/patience frontier f*(delta) at L = 12, P = 10\n"
              "    (delta = 0 is exactly Observation 2):\n\n");
  std::printf("  %-8s %-10s\n", "delta", "f*");
  for (double delta : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    std::printf("  %-8.2f %-10.4f\n", delta,
                CriticalFrequencyWithPatience(kB, kF, 12, 10, delta));
  }
  std::printf("\n  Consistency: delta = 0 gives %.4f = CriticalFrequency = "
              "%.4f\n\n",
              CriticalFrequencyWithPatience(kB, kF, 12, 10, 0),
              CriticalFrequency(kB, kF, 10));

  std::printf("(3) Value-function verification at L = 20, f = 0.1, P = 5:\n\n");
  const double loss = 20, f = 0.1, penalty = 5;
  double deviation = (1 - f) * kF - f * penalty;
  double punishment = deviation - (1 - f) * loss;
  double d_star = CriticalDiscount(kB, kF, loss, f, penalty);
  std::printf("  delta* = %.4f; discounted streams around it:\n", d_star);
  std::printf("  %-8s %-16s %-16s %s\n", "delta", "honest value",
              "deviate value", "honesty holds");
  for (double delta : {d_star - 0.1, d_star - 0.01, d_star + 0.01,
                       d_star + 0.1}) {
    double hv = DiscountedValue(kB, delta);
    double dv = DeviationValue(deviation, punishment, delta);
    std::printf("  %-8.3f %-16.2f %-16.2f %s\n", delta, hv, dv,
                hv >= dv ? "yes" : "no");
  }
  std::printf("\n  -> the incentive flips exactly at delta*, matching the\n"
              "     closed form. REPRODUCED (extension-internal check).\n\n");

  PrintCampaignEnsemble();
}

/// `--shards=K` mode: runs the campaign-ensemble grid through the full
/// multi-process shard lifecycle of common/shard.h (plan, K shard runs,
/// validated merge) in a scratch directory and verifies the merged
/// record stream is byte-identical to the serial single-process run.
/// With `--schedule` the K shard runs go through the fault-tolerant
/// ShardScheduler (`--workers` concurrent jobs, `--max-retries`,
/// `--shard-timeout-ms`) instead of a serial loop, and `--json=PATH`
/// records the scheduled throughput as the headline measurement.
void PrintSharded() {
  bench::PrintRule(
      bench::ScheduleRequested()
          ? "Campaign ensemble engine: scheduled shards vs serial, "
            "policy x seed grid"
          : "Campaign ensemble engine: sharded run vs serial, "
            "policy x seed grid");
  const int shards = bench::Shards();

  core::CampaignEnsembleConfig config;
  config.rounds = 60;
  config.replicates = 32;
  config.base_seed = 20260806;
  config.economics.honest_benefit = 10;
  config.economics.gain_per_probe_hit = 5;
  config.economics.loss_per_leaked_tuple = 4;
  auto policies = PolicyGrid();
  auto factory = MakeSessionFactory(0.5, 30);

  auto bits = [](double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  auto cell_record = [&](const core::CampaignCellResult& cell) {
    Bytes out;
    AppendUint64BE(out, cell.session_seed);
    AppendUint64BE(out, bits(cell.result.a.realized_payoff));
    AppendUint64BE(out, bits(cell.result.b.realized_payoff));
    AppendUint64BE(out, static_cast<uint64_t>(cell.result.a.times_detected));
    AppendUint64BE(out, static_cast<uint64_t>(cell.result.b.times_detected));
    return out;
  };

  common::ShardSweepSpec spec;
  spec.name = "campaign_ensemble";
  spec.total = policies.size() * static_cast<size_t>(config.replicates);
  spec.seed = config.base_seed;
  spec.record = [&](size_t i) -> Result<Bytes> {
    HSIS_ASSIGN_OR_RETURN(core::CampaignCellResult cell,
                          core::RunCampaignEnsembleCell(factory, "alice", "bob",
                                                        policies, config, i));
    return cell_record(cell);
  };

  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  config.threads = 1;
  auto serial =
      core::RunCampaignEnsemble(factory, "alice", "bob", policies, config);
  double serial_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!serial.ok()) {
    std::printf("serial ensemble failed: %s\n",
                serial.status().ToString().c_str());
    return;
  }
  Bytes serial_bytes;
  for (const core::CampaignCellResult& cell : serial->cells) {
    Append(serial_bytes, cell_record(cell));
  }

  std::string dir = (std::filesystem::temp_directory_path() /
                     ("hsis_bench_shards_" + std::to_string(::getpid())))
                        .string();
  auto fail = [&](const Status& status) {
    std::printf("shard lifecycle failed: %s\n", status.ToString().c_str());
    std::filesystem::remove_all(dir);
  };
  if (Status s = CreateDirectories(dir); !s.ok()) return fail(s);
  auto plan = common::ShardPlan::Create(spec.total, shards);
  if (!plan.ok()) return fail(plan.status());
  if (Status s = common::WriteShardPlan(spec, *plan, dir); !s.ok()) {
    return fail(s);
  }

  start = Clock::now();
  common::ShardScheduleSummary summary;
  if (bench::ScheduleRequested()) {
    auto info = common::ReadShardPlan(dir);
    if (!info.ok()) return fail(info.status());
    common::ShardScheduleOptions options;
    options.workers = bench::Workers();
    options.max_attempts = bench::MaxRetries() + 1;
    options.shard_timeout_ms = bench::ShardTimeoutMs();
    common::ShardScheduler scheduler(
        *info, dir, common::MakeRunnerShardExecutor(spec, *plan, dir),
        options);
    auto run = scheduler.Run();
    if (!run.ok()) return fail(run.status());
    summary = *std::move(run);
  } else {
    common::ShardRunner runner(spec, *plan);
    for (int k = 0; k < shards; ++k) {
      if (Status s = runner.Run(k, dir); !s.ok()) return fail(s);
    }
  }
  auto merged = common::MergeShards(dir, spec.name);
  double sharded_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!merged.ok()) return fail(merged.status());
  std::filesystem::remove_all(dir);

  std::printf("grid: %zu policies x %d replicates x %d rounds = %zu cells, "
              "%d shards\n\n",
              policies.size(), config.replicates, config.rounds, spec.total,
              shards);
  std::printf("  serial (1 process)        %8.3f s\n", serial_s);
  if (bench::ScheduleRequested()) {
    std::printf("  scheduled %d shards x %d workers + merge  %8.3f s\n",
                shards, bench::Workers(), sharded_s);
    std::printf("  (%d resumed, %d retries, %d quarantined, %d timeouts)\n",
                summary.resumed, summary.retries, summary.quarantined,
                summary.timeouts);
  } else {
    std::printf("  plan + %d shards + merge  %8.3f s\n", shards, sharded_s);
  }
  const bool identical = *merged == serial_bytes;
  std::printf("\nmerged output bit-identical to serial: %s\n",
              identical ? "yes" : "NO — SHARDING VIOLATION");
  if (identical && bench::ScheduleRequested()) {
    bench::WriteJsonRecord("campaign_ensemble_scheduled", bench::Workers(),
                           static_cast<double>(spec.total) / sharded_s,
                           sharded_s * 1e3);
  }
}

void PrintMain() {
  if (bench::Shards() > 1) {
    PrintSharded();
  } else if (bench::SpeedupRequested()) {
    PrintSpeedup();
  } else {
    PrintReproduction();
  }
}

void BM_CriticalDiscount(benchmark::State& state) {
  for (auto _ : state) {
    double d = CriticalDiscount(kB, kF, 20, 0.1, 5);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_CriticalDiscount);

void BM_FrontierSweep(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0;
    for (int i = 0; i <= 100; ++i) {
      acc += CriticalFrequencyWithPatience(kB, kF, 12, 10, i / 101.0);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel("101-point frontier");
}
BENCHMARK(BM_FrontierSweep);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

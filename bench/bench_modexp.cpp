// Modexp ladder comparison — the per-tuple cost every protocol path
// pays (PR 9). Measures the naive right-to-left square-and-multiply
// ladder (`MontgomeryContext::ModExp`) against the fixed-window
// per-key schedule (`FixedExponentContext`, crypto/modmath.h) on the
// production 256-bit group, single thread, and the two batch stages
// (`EncryptBatch` / `HashEncryptBatch`) that every protocol,
// multiparty, and audit path funnels through.
//
// Every windowed result is differentially checked against the naive
// ladder before it is timed — a divergence exits nonzero, so CI's
// bench smoke doubles as a correctness gate. `--min-speedup=X` exits
// nonzero unless windowed/naive >= X (CI pins 1.15x). `--json=PATH`
// writes one hsis-bench-v1 record per measured path with the `algo`
// field ("naive" vs "window4") distinguishing the ladders.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "crypto/commutative_cipher.h"
#include "crypto/group.h"
#include "crypto/modmath.h"
#include "crypto/parallel_modexp.h"

namespace {

using namespace hsis;

constexpr size_t kBases = 512;   // distinct group elements per pass
constexpr int kPasses = 3;       // timed passes; best-of wins
constexpr size_t kBatch = 2048;  // elements per batch-stage measurement

std::vector<U256> MakeBases(const crypto::PrimeGroup& group, size_t n) {
  std::vector<U256> bases;
  bases.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bases.push_back(group.HashToElement(ToBytes("modexp-" + std::to_string(i))));
  }
  return bases;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Times `fn()` over `kPasses` passes of `ops` exponentiations each and
/// returns the best pass's wall time — the standard best-of guard
/// against scheduler noise on the single-core CI container.
template <typename Fn>
double BestPassMs(size_t ops, const Fn& fn) {
  (void)ops;
  double best = 0;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double ms = MsSince(start);
    if (pass == 0 || ms < best) best = ms;
  }
  return best;
}

void PrintMain() {
  bench::PrintRule("modexp: naive ladder vs fixed-window per-key schedule");

  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  Rng rng(9);
  const U256 key = group.RandomExponent(rng);
  Result<crypto::FixedExponentContext> windowed = group.FixedExp(key);
  if (!windowed.ok()) {
    std::fprintf(stderr, "FixedExp failed: %s\n",
                 windowed.status().ToString().c_str());
    std::exit(1);
  }
  Result<crypto::CommutativeCipher> cipher =
      crypto::CommutativeCipher::CreateWithKey(group, key);
  if (!cipher.ok()) {
    std::fprintf(stderr, "CreateWithKey failed: %s\n",
                 cipher.status().ToString().c_str());
    std::exit(1);
  }

  const std::vector<U256> bases = MakeBases(group, kBases);

  // Differential gate first: the windowed schedule, the cipher built on
  // it, and the decrypt roundtrip must all agree with the naive ladder
  // on every base before anything is timed.
  for (const U256& base : bases) {
    const U256 naive = group.Exp(base, key);
    const U256 fast = windowed->ModExp(base);
    if (!(naive == fast) || !(cipher->Encrypt(base) == naive) ||
        !(cipher->Decrypt(naive) == base)) {
      std::fprintf(stderr,
                   "DIFFERENTIAL FAILURE: windowed modexp diverged from the "
                   "naive ladder\n");
      std::exit(1);
    }
  }

  std::printf("production 256-bit group, one fixed %zu-bit exponent, "
              "%zu bases,\nbest of %d passes, single thread:\n\n",
              key.BitLength(), kBases, kPasses);

  U256 sink(0);
  const double naive_ms = BestPassMs(kBases, [&] {
    for (const U256& base : bases) sink = sink ^ group.Exp(base, key);
  });
  const double naive_ops = 1000.0 * kBases / naive_ms;
  std::printf("  naive ladder:   %10.1f ms  %10.0f modexp/s\n", naive_ms,
              naive_ops);

  const double windowed_ms = BestPassMs(kBases, [&] {
    for (const U256& base : bases) sink = sink ^ windowed->ModExp(base);
  });
  const double windowed_ops = 1000.0 * kBases / windowed_ms;
  const double ratio = windowed_ops / naive_ops;
  const std::string algo = "window" + std::to_string(windowed->window_bits());
  std::printf("  %s ladder: %10.1f ms  %10.0f modexp/s  (speedup %.2fx)\n\n",
              algo.c_str(), windowed_ms, windowed_ops, ratio);
  // Both ladders ran kPasses (odd) times over the same bases, so the
  // xor sink cancels to zero iff the timed results were bit-identical
  // too — the differential gate applied to the measurement itself.
  if (!sink.IsZero()) {
    std::fprintf(stderr,
                 "DIFFERENTIAL FAILURE: timed ladder outputs diverged\n");
    std::exit(1);
  }

  // Batch stages on the same cipher: the throughput every protocol path
  // actually sees.
  const int threads = bench::Threads();
  std::vector<U256> batch_in = MakeBases(group, kBatch);
  std::vector<U256> batch_out(kBatch);
  const double batch_ms = BestPassMs(kBatch, [&] {
    crypto::EncryptBatch(*cipher, batch_in, batch_out, threads);
  });
  const double batch_tps = 1000.0 * kBatch / batch_ms;
  std::printf("  EncryptBatch:     %8.1f ms  %10.0f tuples/s  (threads=%d)\n",
              batch_ms, batch_tps, threads);

  std::vector<Bytes> tuples;
  tuples.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    tuples.push_back(ToBytes("tuple-" + std::to_string(i)));
  }
  const double hash_ms = BestPassMs(kBatch, [&] {
    crypto::HashEncryptBatch(
        *cipher, kBatch,
        [&tuples](size_t i) -> const Bytes& { return tuples[i]; }, batch_out,
        threads);
  });
  const double hash_tps = 1000.0 * kBatch / hash_ms;
  std::printf("  HashEncryptBatch: %8.1f ms  %10.0f tuples/s  (threads=%d)\n",
              hash_ms, hash_tps, threads);

  // `--min-speedup` gate: windowed vs naive, single thread. The SIMD
  // benches gate through EnforceMinSpeedup; this is the same contract
  // for algorithm variants instead of lanes.
  if (bench::MinSpeedup() > 0) {
    if (ratio < bench::MinSpeedup()) {
      std::fprintf(stderr,
                   "modexp: windowed speedup %.2fx below required minimum "
                   "%.2fx\n",
                   ratio, bench::MinSpeedup());
      std::exit(1);
    }
    std::printf("\n--min-speedup gate: %.2fx >= %.2fx, ok\n", ratio,
                bench::MinSpeedup());
  }

  bench::WriteJsonRecordAlgo("modexp_fixed_exponent", 1, "naive", naive_ops,
                             naive_ms);
  bench::WriteJsonRecordAlgo("modexp_fixed_exponent", 1, algo.c_str(),
                             windowed_ops, windowed_ms);
  bench::WriteJsonRecordAlgo("modexp_encrypt_batch", threads, algo.c_str(),
                             batch_tps, batch_ms);
  bench::WriteJsonRecordAlgo("modexp_hash_encrypt_batch", threads,
                             algo.c_str(), hash_tps, hash_ms);
}

void BM_ModExpNaive(benchmark::State& state) {
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  Rng rng(9);
  const U256 key = group.RandomExponent(rng);
  const U256 base = group.HashToElement(ToBytes("bench-base"));
  for (auto _ : state) {
    U256 r = group.Exp(base, key);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ModExpNaive);

void BM_ModExpWindowed(benchmark::State& state) {
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  Rng rng(9);
  const U256 key = group.RandomExponent(rng);
  crypto::FixedExponentContext ctx = group.FixedExp(key).value();
  const U256 base = group.HashToElement(ToBytes("bench-base"));
  for (auto _ : state) {
    U256 r = ctx.ModExp(base);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ModExpWindowed);

void BM_EncryptBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const crypto::PrimeGroup& group = crypto::PrimeGroup::Default();
  Rng rng(9);
  crypto::CommutativeCipher cipher =
      crypto::CommutativeCipher::Create(group, rng).value();
  std::vector<U256> in = MakeBases(group, n);
  std::vector<U256> out(n);
  for (auto _ : state) {
    crypto::EncryptBatch(cipher, in, out, bench::Threads());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EncryptBatch)->Arg(64)->Arg(256);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

// Ablation — the paper's multiset-hash auditing device vs a
// Merkle-accumulator baseline (DESIGN.md §7).
//
// Both catch every insertion/deletion/substitution. The difference is
// the systems bill: the multiset hash gives O(1) device state and O(1)
// updates/audits; the canonical (sorted-leaf) Merkle commitment needs
// O(n) device state, O(n) inserts, and O(n) audit-time recompute. The
// Merkle side's consolation prize — logarithmic membership proofs — is
// not something the paper's device ever needs.

#include <chrono>

#include "audit/audit_baseline.h"
#include "audit/auditing_device.h"
#include "audit/tuple_generator.h"
#include "bench_util.h"
#include "crypto/merkle_tree.h"

namespace {

using namespace hsis;
using namespace hsis::audit;
using sovereign::Dataset;
using sovereign::Tuple;

crypto::MultisetHashFamily MuFamily() {
  return std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
}

Bytes MultisetCommit(const crypto::MultisetHashFamily& family,
                     const Dataset& data) {
  auto h = family.NewHash();
  for (const Tuple& t : data.tuples()) h->Add(t.value);
  return h->Serialize();
}

void PrintReproduction() {
  bench::PrintRule(
      "Ablation: multiset-hash device (Section 6) vs Merkle baseline");

  std::printf("Device-side state after streaming N tuples:\n\n");
  std::printf("  %-10s %-22s %-22s\n", "N", "multiset hash (bytes)",
              "Merkle baseline (bytes)");
  for (size_t n : {size_t{100}, size_t{1000}, size_t{10000}, size_t{100000}}) {
    crypto::MultisetHashFamily family = MuFamily();
    AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
    TupleGenerator tg =
        std::move(TupleGenerator::Create("p", family, &device).value());
    MerkleAuditAccumulator baseline;
    for (size_t i = 0; i < n; ++i) {
      Bytes value = ToBytes("t" + std::to_string(i));
      (void)tg.Issue(value);
      baseline.Record(MerkleTupleHash(value));
    }
    std::printf("  %-10zu %-22zu %-22zu\n", n, device.StateBytes(),
                baseline.StateBytes());
  }

  std::printf("\nAudit latency against a fresh commitment at N tuples:\n\n");
  std::printf("  %-10s %-22s %-22s\n", "N", "multiset hash", "Merkle baseline");
  for (size_t n : {size_t{100}, size_t{1000}, size_t{10000}}) {
    crypto::MultisetHashFamily family = MuFamily();
    AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
    TupleGenerator tg =
        std::move(TupleGenerator::Create("p", family, &device).value());
    MerkleAuditAccumulator baseline;
    Dataset data;
    for (size_t i = 0; i < n; ++i) {
      Bytes value = ToBytes("t" + std::to_string(i));
      data.Add(tg.Issue(value).value());
      baseline.Record(MerkleTupleHash(value));
    }
    Bytes ms_commit = MultisetCommit(family, data);
    Bytes mk_commit = MerkleDatasetCommitment(data);

    auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < 100; ++k) {
      (void)device.Audit("p", ms_commit);
    }
    auto t1 = std::chrono::steady_clock::now();
    for (int k = 0; k < 100; ++k) {
      benchmark::DoNotOptimize(baseline.Matches(mk_commit));
    }
    auto t2 = std::chrono::steady_clock::now();
    std::printf("  %-10zu %-22s %-22s\n", n,
                (std::to_string(
                     std::chrono::duration<double, std::micro>(t1 - t0).count() /
                     100) +
                 " us")
                    .c_str(),
                (std::to_string(
                     std::chrono::duration<double, std::micro>(t2 - t1).count() /
                     100) +
                 " us")
                    .c_str());
  }

  std::printf("\nDetection parity (both must catch the same cheats):\n");
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("p", family, &device).value());
  MerkleAuditAccumulator baseline;
  Dataset data;
  for (const char* v : {"a", "b", "c", "d"}) {
    Bytes value = ToBytes(v);
    data.Add(tg.Issue(value).value());
    baseline.Record(MerkleTupleHash(value));
  }
  Dataset cheated = data;
  cheated.Add(Tuple::FromString("fake"));
  bool ms_detect =
      device.Audit("p", MultisetCommit(family, cheated))->cheating_detected;
  bool mk_detect = !baseline.Matches(MerkleDatasetCommitment(cheated));
  std::printf("  fabricated tuple: multiset device detects = %s, Merkle "
              "baseline detects = %s\n\n",
              ms_detect ? "yes" : "NO", mk_detect ? "yes" : "NO");
  std::printf("Conclusion: identical detection power; the multiset hash\n"
              "wins on every systems axis the paper cares about (constant\n"
              "state, constant update, constant audit).\n");
}

void BM_MultisetRecord(benchmark::State& state) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("p", family, &device).value());
  Bytes value = ToBytes("tuple-value");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg.Issue(value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultisetRecord);

void BM_MerkleRecord(benchmark::State& state) {
  size_t preload = static_cast<size_t>(state.range(0));
  MerkleAuditAccumulator baseline;
  for (size_t i = 0; i < preload; ++i) {
    baseline.Record(MerkleTupleHash(ToBytes("t" + std::to_string(i))));
  }
  Bytes h = MerkleTupleHash(ToBytes("new-tuple"));
  for (auto _ : state) {
    baseline.Record(h);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("sorted insert into " + std::to_string(preload) + " leaves");
}
BENCHMARK(BM_MerkleRecord)->Arg(1000)->Arg(10000);

void BM_MerkleAudit(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  MerkleAuditAccumulator baseline;
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    Bytes value = ToBytes("t" + std::to_string(i));
    data.Add(Tuple(value));
    baseline.Record(MerkleTupleHash(value));
  }
  Bytes commit = MerkleDatasetCommitment(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline.Matches(commit));
  }
  state.SetLabel("O(n) recompute per audit");
}
BENCHMARK(BM_MerkleAudit)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MerkleProof(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 4096; ++i) {
    leaves.push_back(ToBytes("leaf" + std::to_string(i)));
  }
  crypto::MerkleTree tree = crypto::MerkleTree::Build(leaves);
  for (auto _ : state) {
    auto proof = tree.Prove(2048);
    bool ok = crypto::MerkleTree::Verify(tree.root(), leaves[2048], *proof,
                                         leaves.size());
    benchmark::DoNotOptimize(ok);
  }
  state.SetLabel("what the baseline buys: O(log n) membership proofs");
}
BENCHMARK(BM_MerkleProof);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

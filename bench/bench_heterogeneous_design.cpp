// Extension — heterogeneous consortium design: Section 4.2's asymmetric
// analysis joined with Section 5's n players.
//
// A consortium's members differ in how much cheating tempts them; the
// device operator gets per-member audit frequencies and penalties.
// Reproduces per-member thresholds, equilibrium structure, a cost-
// optimal audit plan, and the budgeted variant (who to audit when you
// cannot afford everyone).

#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "common/parallel.h"
#include "game/heterogeneous.h"

namespace {

using namespace hsis;
using namespace hsis::game;
using Spec = HeterogeneousHonestyGame::PlayerSpec;

std::vector<Spec> Consortium() {
  // Six members: from barely-tempted regional partners to a ruthless
  // direct competitor.
  auto member = [](double b, double gain_base, double gain_slope,
                   double penalty) {
    Spec s;
    s.benefit = b;
    s.gain = LinearGain(gain_base, gain_slope);
    s.penalty = penalty;
    s.frequency = 0;  // to be designed
    return s;
  };
  return {
      member(20, 22, 0.5, 50),  // loyal: barely tempted
      member(15, 25, 1.0, 50),
      member(12, 28, 1.5, 40),
      member(10, 32, 2.0, 40),
      member(8, 40, 2.5, 30),
      member(6, 55, 3.0, 30),  // ruthless competitor
  };
}

void PrintReproduction() {
  bench::PrintRule("Extension: heterogeneous consortium audit design");

  std::vector<Spec> members = Consortium();
  const int n = static_cast<int>(members.size());
  DesignSearchOptions options;
  options.threads = bench::Threads();

  std::printf("Six members, per-member economics (F_i at worst case x = %d):\n\n",
              n - 1);
  std::printf("  %-8s %-8s %-10s %-10s %s\n", "member", "B_i", "F_i(n-1)",
              "P_i cap", "req. audit f_i");
  auto plan = std::move(
      MinCostFrequencies(members, std::vector<double>(6, 1.0), 1e-6, options)
          .value());
  for (int i = 0; i < n; ++i) {
    std::printf("  %-8d %-8.0f %-10.1f %-10.0f %.4f\n", i,
                members[static_cast<size_t>(i)].benefit,
                members[static_cast<size_t>(i)].gain(n - 1),
                members[static_cast<size_t>(i)].penalty,
                plan.frequencies[static_cast<size_t>(i)]);
  }
  std::printf("\nTotal audit load of the cost-optimal plan: %.3f "
              "(sum of f_i)\n\n", plan.total_cost);

  // Verify the plan makes all-honest dominant & the unique equilibrium.
  std::vector<Spec> deployed = members;
  for (int i = 0; i < n; ++i) {
    deployed[static_cast<size_t>(i)].frequency =
        plan.frequencies[static_cast<size_t>(i)];
  }
  HeterogeneousHonestyGame game =
      std::move(HeterogeneousHonestyGame::Create(deployed).value());
  auto equilibria = std::move(game.AllEquilibria().value());
  std::printf("Deployed plan: honest dominant for all = %s; equilibria = %zu",
              game.IsHonestDominantForAll() ? "yes" : "NO", equilibria.size());
  if (equilibria.size() == 1) {
    int honest = 0;
    for (bool h : equilibria[0]) honest += h;
    std::printf(" (all %d honest)", honest);
  }
  std::printf("\n\n");

  std::printf("Budgeted design (cannot audit everyone enough):\n\n");
  std::printf("  %-10s %-12s %s\n", "budget", "deterred", "who cheats");
  for (double budget : {0.2, 0.5, 0.9, 1.3, 2.0}) {
    auto alloc = std::move(
        MaxDeterredUnderBudget(members, budget, 1e-6, options).value());
    std::string cheaters;
    std::vector<Spec> funded = members;
    for (int i = 0; i < n; ++i) {
      funded[static_cast<size_t>(i)].frequency =
          alloc.frequencies[static_cast<size_t>(i)];
      if (!alloc.deterred[static_cast<size_t>(i)]) {
        cheaters += std::to_string(i) + " ";
      }
    }
    HeterogeneousHonestyGame budget_game =
        std::move(HeterogeneousHonestyGame::Create(funded).value());
    auto eq = std::move(budget_game.AllEquilibria().value());
    std::printf("  %-10.2f %-12d %-14s (equilibria: %zu)\n", budget,
                alloc.deterred_count,
                cheaters.empty() ? "nobody" : cheaters.c_str(), eq.size());
  }
  std::printf("\n  -> the greedy funds the cheapest-to-deter members first;\n"
              "     the most tempted member (5) is the last to come clean.\n");
}

/// A consortium of `n` synthetic members with varied economics — the
/// fine-grid workload for the parallel budget search.
std::vector<Spec> SyntheticPopulation(size_t n) {
  std::vector<Spec> players;
  players.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Spec s;
    s.benefit = 5.0 + static_cast<double>(i % 17);
    s.gain = LinearGain(20.0 + static_cast<double>(i % 41),
                        0.001 * static_cast<double>(i % 7));
    s.penalty = 10.0 + static_cast<double>(i % 29);
    s.frequency = 0.25;
    players.push_back(std::move(s));
  }
  return players;
}

bool AllocationsIdentical(const BudgetedAllocation& a,
                          const BudgetedAllocation& b) {
  auto bits = [](double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  if (a.deterred_count != b.deterred_count ||
      bits(a.budget_used) != bits(b.budget_used) ||
      a.frequencies.size() != b.frequencies.size()) {
    return false;
  }
  for (size_t i = 0; i < a.frequencies.size(); ++i) {
    if (bits(a.frequencies[i]) != bits(b.frequencies[i]) ||
        a.deterred[i] != b.deterred[i]) {
      return false;
    }
  }
  return true;
}

/// `--speedup` mode: times the budget search on a 200k-member synthetic
/// consortium serially and with `--threads=N` (default: hardware), and
/// verifies bit-identity across thread counts and batch sizes.
void PrintSpeedup() {
  bench::PrintRule(
      "Heterogeneous budget search: serial vs parallel, 200k members");
  int threads = bench::Threads() == 1 ? 0 : bench::Threads();
  int resolved = common::ResolveThreadCount(threads);
  std::vector<Spec> players = SyntheticPopulation(200000);
  const double budget = 20000;

  using Clock = std::chrono::steady_clock;
  auto time_search = [&](int t, size_t batch, BudgetedAllocation* out) {
    DesignSearchOptions options;
    options.threads = t;
    options.batch_size = batch;
    Clock::time_point start = Clock::now();
    *out = MaxDeterredUnderBudget(players, budget, 1e-6, options).value();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  BudgetedAllocation serial, two, parallel, batched;
  double serial_s = time_search(1, 1, &serial);
  double two_s = time_search(2, 64, &two);
  double parallel_s = time_search(resolved, 64, &parallel);
  double batched_s = time_search(resolved, 1024, &batched);

  std::printf("population: %zu members, budget %.0f (deterred: %d)\n\n",
              players.size(), budget, serial.deterred_count);
  std::printf("  threads=1             %8.3f s\n", serial_s);
  std::printf("  threads=2   batch=64  %8.3f s   speedup %.2fx\n", two_s,
              serial_s / two_s);
  std::printf("  threads=%-3d batch=64  %8.3f s   speedup %.2fx\n", resolved,
              parallel_s, serial_s / parallel_s);
  std::printf("  threads=%-3d batch=1k  %8.3f s   speedup %.2fx\n", resolved,
              batched_s, serial_s / batched_s);
  std::printf("\nbit-identical across thread counts and batch sizes: %s\n",
              AllocationsIdentical(serial, two) &&
                      AllocationsIdentical(serial, parallel) &&
                      AllocationsIdentical(serial, batched)
                  ? "yes"
                  : "NO — DETERMINISM VIOLATION");
}

void PrintMain() {
  if (bench::SpeedupRequested()) {
    PrintSpeedup();
  } else {
    PrintReproduction();
  }
}

void BM_AllEquilibriaHeterogeneous(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Spec> members;
  for (int i = 0; i < n; ++i) {
    Spec s;
    s.benefit = 10;
    s.gain = LinearGain(20 + i, 1);
    s.frequency = 0.3;
    s.penalty = 30;
    members.push_back(s);
  }
  HeterogeneousHonestyGame game =
      std::move(HeterogeneousHonestyGame::Create(members).value());
  for (auto _ : state) {
    auto eq = game.AllEquilibria();
    benchmark::DoNotOptimize(eq);
  }
  state.SetLabel("2^n subset enumeration");
}
BENCHMARK(BM_AllEquilibriaHeterogeneous)->Arg(8)->Arg(12)->Arg(16);

void BM_BudgetedAllocation(benchmark::State& state) {
  std::vector<Spec> members = Consortium();
  for (auto _ : state) {
    auto alloc = MaxDeterredUnderBudget(members, 1.0);
    benchmark::DoNotOptimize(alloc);
  }
}
BENCHMARK(BM_BudgetedAllocation);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

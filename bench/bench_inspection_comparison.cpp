// Related-work comparison (Section 1.2): inspection games vs this
// paper's referee device.
//
// "The main difference between these games and the game we have
//  designed is that in the inspection games the inspector is a player
//  of the game. This is not true for our game, where the inspector acts
//  as a referee for the players."
//
// We quantify the difference: solve the classical recursive inspection
// game (inspector as strategic player with a k-of-n budget) and compare
// the inspectee's value with the cheater's value against a committed
// referee that audits the same fraction of periods and can fine.

#include "bench_util.h"
#include "game/inspection_game.h"
#include "game/thresholds.h"

namespace {

using namespace hsis;
using namespace hsis::game;

void PrintReproduction() {
  bench::PrintRule(
      "Related work: strategic inspector (inspection game) vs referee");

  std::printf("(1) Classical inspection game values V(n, k) (inspectee's\n"
              "    value: +1 undetected violation, -1 caught, 0 abstain):\n\n");
  std::printf("  n\\k ");
  for (int k = 0; k <= 4; ++k) std::printf("%8d", k);
  std::printf("\n");
  for (int n = 1; n <= 8; ++n) {
    std::printf("  %-4d", n);
    for (int k = 0; k <= 4; ++k) {
      std::printf("%8.3f", SolveInspectionGame(n, k)->value);
    }
    std::printf("\n");
  }
  std::printf("\n  Known values confirmed: V(1,1) = 0, V(2,1) = 1/3,\n"
              "  V(3,1) = 1/2; value monotone up in n, down in k.\n\n");

  std::printf("(2) The structural gap. Same inspection budget, three\n"
              "    designs (n = 8 periods):\n\n");
  std::printf("  %-6s %-22s %-24s %-24s\n", "k", "strategic inspector",
              "referee f=k/n, P=1", "referee f=k/n, P=5");
  for (int k = 1; k <= 7; ++k) {
    double strategic = SolveInspectionGame(8, k)->value;
    double f = k / 8.0;
    double referee_p1 = (1 - f) * 1.0 - f * 1.0;
    double referee_p5 = (1 - f) * 1.0 - f * 5.0;
    std::printf("  %-6d %-22.3f %-24.3f %-24.3f\n", k, strategic, referee_p1,
                referee_p5);
  }
  std::printf(
      "\n  The strategic inspector can never push the violator's value\n"
      "  below 0 (the inspectee just abstains), and with k < n the value\n"
      "  stays strictly positive: violation remains attractive. The\n"
      "  referee *commits* to frequency f and adds a penalty, driving\n"
      "  the cheating value negative — deterrence instead of interception.\n"
      "  That is exactly why the paper separates the auditing device\n"
      "  from the players.\n\n");

  std::printf("(3) First-period equilibrium behavior, n = 8:\n\n");
  std::printf("  %-6s %-20s %-20s\n", "k", "P(violate round 1)",
              "P(inspect round 1)");
  for (int k = 1; k <= 4; ++k) {
    auto s = SolveInspectionGame(8, k);
    std::printf("  %-6d %-20.3f %-20.3f\n", k, s->violate_probability,
                s->inspect_probability);
  }
  std::printf("\n  Under a transformative referee the equilibrium violation\n"
              "  probability is exactly 0 — no mixing survives.\n");
}

void BM_SolveInspectionGame(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto s = SolveInspectionGame(n, n / 2);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SolveInspectionGame)->Arg(8)->Arg(32)->Arg(128);

void BM_ZeroSumStage(benchmark::State& state) {
  for (auto _ : state) {
    auto s = SolveZeroSum2x2(-1, 1, 0.4, 0.1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ZeroSumStage);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

// Serving-latency bench for the online mechanism-design query service
// (src/serve): replays a Zipf-skewed synthetic stream — the repetitive
// traffic production serving sees — through the uncached analytic path
// and the batch+memoized path, and reports throughput plus per-request
// latency percentiles for the warm-cache hot path.
//
//   bench_query_service [--count=N] [--domain=K] [--skew=S] [--seed=U]
//                       [--threads=T] [--min-speedup=X] [--json=PATH]
//
// The analytic path serves what a single-query client receives: the
// full answer plus its structured derivation proof. The memoized batch
// path serves compact numeric answers (derivations materialize lazily
// on request), which is exactly why it can be an order of magnitude
// faster — and the cross-validation suite pins that both paths serve
// bit-identical numbers.
//
// --json writes five hsis-bench-v1 records (one JSON line each):
// query_service_analytic and query_service_warm_cache carry stream
// throughput (requests/sec) and total wall time; query_service_p50/
// p95/p99 carry the warm-cache per-request latency percentile as
// wall_ms and its reciprocal as requests/sec. CI's serving smoke step
// validates the shape with `check_bench_json --lines=5` and enforces a
// conservative --min-speedup floor.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/file.h"
#include "common/perf_record.h"
#include "serve/query_service.h"
#include "serve/stream.h"

using namespace hsis;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

[[noreturn]] void Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  serve::StreamConfig stream_config;
  double min_speedup = 0;  // 0 = report only, no enforcement

  // Strip the bench-specific flags, then let bench_util consume the
  // standard ones (--threads, --json).
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    auto long_flag = [&](const char* prefix, const char* name) -> long {
      size_t len = std::strlen(prefix);
      char* end = nullptr;
      long value = std::strtol(argv[i] + len, &end, 10);
      if (end == argv[i] + len || *end != '\0' || value < 0) {
        std::fprintf(stderr, "bad %s value\n", name);
        std::exit(2);
      }
      return value;
    };
    if (std::strncmp(argv[i], "--count=", 8) == 0) {
      stream_config.count = static_cast<size_t>(long_flag("--count=",
                                                          "--count"));
    } else if (std::strncmp(argv[i], "--domain=", 9) == 0) {
      stream_config.domain = static_cast<size_t>(long_flag("--domain=",
                                                           "--domain"));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      stream_config.seed = static_cast<uint64_t>(long_flag("--seed=",
                                                           "--seed"));
    } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      char* end = nullptr;
      stream_config.skew = std::strtod(argv[i] + 7, &end);
      if (end == argv[i] + 7 || *end != '\0') {
        std::fprintf(stderr, "bad --skew value\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      char* end = nullptr;
      min_speedup = std::strtod(argv[i] + 14, &end);
      if (end == argv[i] + 14 || *end != '\0' || min_speedup < 0) {
        std::fprintf(stderr, "bad --min-speedup value\n");
        return 2;
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  bench::ConsumeFlags(&argc, argv);

  auto stream_or = serve::MakeSyntheticStream(stream_config);
  if (!stream_or.ok()) Fail(stream_or.status());
  const std::vector<serve::QueryRequest>& stream = *stream_or;
  const size_t count = stream.size();

  serve::QueryServiceConfig config;
  config.threads = bench::Threads();
  auto service_or = serve::QueryService::Create(config);
  if (!service_or.ok()) Fail(service_or.status());
  serve::QueryService service = std::move(*service_or);

  bench::PrintRule("query service: serving-latency bench");
  std::printf("stream: %zu requests over %zu points, skew %g, seed %llu\n\n",
              count, stream_config.domain, stream_config.skew,
              static_cast<unsigned long long>(stream_config.seed));

  // --- Path 1: uncached analytic serving (answer + derivation proof),
  // what a proof-carrying single-query client costs per request.
  auto analytic_start = std::chrono::steady_clock::now();
  size_t dominant = 0;
  for (const serve::QueryRequest& request : stream) {
    auto derivation = service.Explain(request);
    if (!derivation.ok()) Fail(derivation.status());
    dominant += derivation->honest_is_dominant ? 1 : 0;
  }
  const double analytic_ms = MsSince(analytic_start);
  const double analytic_rps = 1000.0 * static_cast<double>(count) /
                              analytic_ms;
  std::printf("analytic (answer+proof): %10.1f ms  %12.0f req/s\n",
              analytic_ms, analytic_rps);

  // --- Path 2: batch + memoized serving. Warm the cache with one full
  // pass, then measure the steady state.
  game::kernel::DeviceAnswersSoA answers;
  if (Status s = service.AnswerBatchCached(stream.data(), count, answers);
      !s.ok()) {
    Fail(s);
  }
  auto warm_start = std::chrono::steady_clock::now();
  if (Status s = service.AnswerBatchCached(stream.data(), count, answers);
      !s.ok()) {
    Fail(s);
  }
  const double warm_ms = MsSince(warm_start);
  const double warm_rps = 1000.0 * static_cast<double>(count) / warm_ms;
  const double speedup = warm_rps / analytic_rps;
  std::printf("warm memoized batch:     %10.1f ms  %12.0f req/s  "
              "(speedup %.1fx)\n",
              warm_ms, warm_rps, speedup);

  serve::CacheStats stats = service.Stats();
  std::printf("cache: %llu hits / %llu misses / %llu entries\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.entries));

  // Sanity: the two paths agreed on every verdict.
  size_t batch_dominant = 0;
  for (size_t i = 0; i < count; ++i) {
    batch_dominant += answers.effectiveness[i] ==
                              game::DeviceEffectiveness::kTransformative
                          ? 1
                          : 0;
  }
  if (batch_dominant != dominant) {
    std::fprintf(stderr,
                 "verdict mismatch: analytic %zu vs batch %zu dominant\n",
                 dominant, batch_dominant);
    return 1;
  }

  // --- Per-request latency percentiles on the warm single-query
  // cached path (the online serving hot path).
  std::vector<double> latency_ns;
  latency_ns.reserve(count);
  for (const serve::QueryRequest& request : stream) {
    auto start = std::chrono::steady_clock::now();
    auto answer = service.AnswerCached(request);
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!answer.ok()) Fail(answer.status());
    latency_ns.push_back(std::max(ns, 1.0));  // clock-resolution floor
  }
  std::sort(latency_ns.begin(), latency_ns.end());
  auto percentile = [&](double p) {
    size_t index = static_cast<size_t>(p * static_cast<double>(count - 1));
    return latency_ns[index];
  };
  const double p50 = percentile(0.50), p95 = percentile(0.95),
               p99 = percentile(0.99);
  std::printf("warm cached single-query latency: p50 %.0f ns, p95 %.0f ns, "
              "p99 %.0f ns\n",
              p50, p95, p99);

  if (!bench::JsonPath().empty()) {
    const char* lane = common::SimdLaneName(bench::ActiveLaneOrDie());
    auto record = [&](const char* name, double rps, double wall_ms) {
      common::PerfRecord r;
      r.bench = name;
      r.threads = bench::Threads();
      r.lane = lane;
      r.cells_per_sec = rps;
      r.wall_ms = wall_ms;
      r.git_describe = bench::GitDescribe();
      if (Status s = r.Validate(); !s.ok()) Fail(s);
      return common::PerfRecordToJson(r);
    };
    std::string lines;
    lines += record("query_service_analytic", analytic_rps, analytic_ms);
    lines += record("query_service_warm_cache", warm_rps, warm_ms);
    lines += record("query_service_p50", 1e9 / p50, p50 / 1e6);
    lines += record("query_service_p95", 1e9 / p95, p95 / 1e6);
    lines += record("query_service_p99", 1e9 / p99, p99 / 1e6);
    if (Status s = hsis::WriteFile(bench::JsonPath(), lines); !s.ok()) {
      Fail(s);
    }
    std::printf("wrote perf records -> %s\n", bench::JsonPath().c_str());
  }

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "warm-cache speedup %.2fx below required minimum %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

#ifndef HSIS_BENCH_LANDSCAPE_BASELINE_H_
#define HSIS_BENCH_LANDSCAPE_BASELINE_H_

#include <string>
#include <vector>

#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"
#include "game/thresholds.h"

/// Frozen copy of the pre-kernel per-cell sweep implementation, kept
/// verbatim so the benches can measure the kernel speedup against the
/// exact code it replaced: build a dense `NormalFormGame` per cell,
/// enumerate equilibria into heap-allocated label strings, and run the
/// dominant-strategy search over the full profile space. Do not
/// "improve" this file — it is the measurement baseline, not a library.
namespace hsis::bench::baseline {

inline std::vector<std::string> EnumerateLabels(
    const game::NormalFormGame& g) {
  std::vector<std::string> out;
  for (const game::StrategyProfile& p : game::PureNashEquilibria(g)) {
    out.push_back(game::ProfileLabel(p));
  }
  return out;
}

inline bool HonestHonestIsDse(const game::NormalFormGame& g) {
  std::optional<game::StrategyProfile> dse =
      game::DominantStrategyEquilibrium(g);
  return dse.has_value() && (*dse)[0] == game::kHonest &&
         (*dse)[1] == game::kHonest;
}

inline bool SymmetricPredictionHolds(
    game::SymmetricRegion region, const std::vector<std::string>& equilibria) {
  auto contains = [&](const char* label) {
    for (const std::string& e : equilibria) {
      if (e == label) return true;
    }
    return false;
  };
  switch (region) {
    case game::SymmetricRegion::kAllCheatUniqueDse:
      return equilibria.size() == 1 && contains("CC");
    case game::SymmetricRegion::kAllHonestUniqueDse:
      return equilibria.size() == 1 && contains("HH");
    case game::SymmetricRegion::kBoundary:
      return contains("HH");
  }
  return false;
}

/// Pre-kernel `EvalFrequencySweepRow` body (validation stripped; the
/// bench always passes in-range arguments).
inline game::FrequencySweepRow FrequencyCell(double benefit,
                                             double cheat_gain, double loss,
                                             double penalty, int steps,
                                             size_t index) {
  double f = static_cast<double>(index) / (steps - 1);
  game::NormalFormGame g =
      game::MakeSymmetricAuditedGame(benefit, cheat_gain, loss, f, penalty)
          .value();
  game::FrequencySweepRow row;
  row.frequency = f;
  row.analytic_region =
      game::ClassifySymmetricRegion(benefit, cheat_gain, f, penalty);
  row.nash_equilibria = EnumerateLabels(g);
  row.honest_is_dse = HonestHonestIsDse(g);
  row.analytic_matches_enumeration =
      SymmetricPredictionHolds(row.analytic_region, row.nash_equilibria);
  return row;
}

/// Pre-kernel `EvalAsymmetricGridCell` body (validation stripped).
inline game::AsymmetricGridCell AsymmetricCell(
    const game::TwoPlayerGameParams& params, int steps, size_t index) {
  int i = static_cast<int>(index / static_cast<size_t>(steps));
  int j = static_cast<int>(index % static_cast<size_t>(steps));
  game::TwoPlayerGameParams p = params;
  p.audit1.frequency = static_cast<double>(i) / (steps - 1);
  p.audit2.frequency = static_cast<double>(j) / (steps - 1);
  game::NormalFormGame g = game::MakeTwoPlayerHonestyGame(p).value();

  game::AsymmetricGridCell cell;
  cell.f1 = p.audit1.frequency;
  cell.f2 = p.audit2.frequency;
  cell.analytic_region = game::ClassifyAsymmetricRegion(
      p.player1.benefit, p.player1.cheat_gain, p.audit1.penalty, cell.f1,
      p.player2.benefit, p.player2.cheat_gain, p.audit2.penalty, cell.f2);
  cell.nash_equilibria = EnumerateLabels(g);
  switch (cell.analytic_region) {
    case game::AsymmetricRegion::kBoundary:
      cell.analytic_matches_enumeration = true;
      break;
    case game::AsymmetricRegion::kBothCheat:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"CC"};
      break;
    case game::AsymmetricRegion::kOnlyP1Cheats:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"CH"};
      break;
    case game::AsymmetricRegion::kOnlyP2Cheats:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"HC"};
      break;
    case game::AsymmetricRegion::kBothHonest:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"HH"};
      break;
  }
  return cell;
}

}  // namespace hsis::bench::baseline

#endif  // HSIS_BENCH_LANDSCAPE_BASELINE_H_

// Experiment E8b — Section 6.2 feasibility: "The auditing service must
// be space as well as time efficient. It must also not see any private
// data of any of the participants."
//
// Measures the device's update and audit costs, shows O(1) per-player
// state across tuple-stream sizes, verifies detection soundness and
// completeness on randomized cheat scenarios, and ablates the audit
// scheduler (per-round Bernoulli vs deterministic every-k).

#include "audit/auditing_device.h"
#include "audit/tuple_generator.h"
#include "bench_util.h"
#include "sovereign/dataset.h"

namespace {

using namespace hsis;
using namespace hsis::audit;
using sovereign::Dataset;
using sovereign::Tuple;

crypto::MultisetHashFamily MuFamily() {
  return std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
}

Bytes Commit(const crypto::MultisetHashFamily& family, const Dataset& data) {
  auto h = family.NewHash();
  for (const Tuple& t : data.tuples()) h->Add(t.value);
  return h->Serialize();
}

void PrintReproduction() {
  bench::PrintRule("E8b / Section 6.2: auditing device feasibility");

  // Space: device state vs stream size.
  std::printf("Space efficiency (per-player device state vs tuples issued):\n");
  std::printf("  %-12s %-14s %s\n", "tuples", "state bytes", "hash count");
  for (size_t stream : {size_t{100}, size_t{10000}, size_t{1000000}}) {
    crypto::MultisetHashFamily family = MuFamily();
    AuditingDevice device =
        std::move(AuditingDevice::Create(1.0, 50).value());
    TupleGenerator tg =
        std::move(TupleGenerator::Create("p", family, &device).value());
    for (size_t i = 0; i < stream; ++i) {
      (void)tg.IssueString("t" + std::to_string(i));
    }
    std::printf("  %-12zu %-14zu %llu\n", stream, device.StateBytes(),
                static_cast<unsigned long long>(device.RecordedTupleCount("p")));
  }
  std::printf("  -> state constant in the stream size, as required.\n\n");

  // Detection soundness & completeness over random scenarios.
  std::printf("Detection check (1000 randomized scenarios, Mu hash):\n");
  Rng rng(12345);
  int false_positive = 0, false_negative = 0, trials = 1000;
  for (int trial = 0; trial < trials; ++trial) {
    crypto::MultisetHashFamily family = MuFamily();
    AuditingDevice device =
        std::move(AuditingDevice::Create(1.0, 50).value());
    TupleGenerator tg =
        std::move(TupleGenerator::Create("p", family, &device).value());
    Dataset data;
    size_t n = 1 + rng.UniformUint64(40);
    for (size_t i = 0; i < n; ++i) {
      data.Add(tg.IssueString("v" + std::to_string(trial) + "-" +
                              std::to_string(i))
                   .value());
    }
    bool cheat = rng.Bernoulli(0.5);
    Dataset reported = data;
    if (cheat) {
      if (rng.Bernoulli(0.5) || reported.empty()) {
        reported.Add(Tuple::FromString("fake-" + std::to_string(trial)));
      } else {
        reported.RemoveRandom(1, rng);
      }
    }
    AuditOutcome outcome =
        std::move(device.Audit("p", Commit(family, reported)).value());
    if (outcome.cheating_detected && !cheat) ++false_positive;
    if (!outcome.cheating_detected && cheat) ++false_negative;
  }
  std::printf("  false positives: %d/%d   false negatives: %d/%d\n\n",
              false_positive, trials, false_negative, trials);

  // Scheduler ablation: Bernoulli(f) vs deterministic every-k audits.
  std::printf("Scheduler ablation at f = 0.25 over 4000 rounds of a\n"
              "persistent cheater:\n");
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(0.25, 50).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("p", family, &device).value());
  Dataset data;
  data.Add(tg.IssueString("legit").value());
  Dataset cheated = data;
  cheated.Add(Tuple::FromString("fake"));
  Bytes bad = Commit(family, cheated);

  Rng sched_rng(7);
  int bernoulli_checks = 0, bernoulli_catches = 0;
  int64_t first_catch_round = -1;
  for (int round = 0; round < 4000; ++round) {
    AuditOutcome o = std::move(device.MaybeAudit("p", bad, sched_rng).value());
    bernoulli_checks += o.audited;
    bernoulli_catches += o.cheating_detected;
    if (o.cheating_detected && first_catch_round < 0) first_catch_round = round;
  }
  int deterministic_checks = 0, deterministic_catches = 0;
  for (int round = 0; round < 4000; ++round) {
    if (round % 4 == 3) {  // every-k with k = 1/f
      AuditOutcome o = std::move(device.Audit("p", bad).value());
      ++deterministic_checks;
      deterministic_catches += o.cheating_detected;
    }
  }
  std::printf("  Bernoulli(f):     %d checks, %d catches (first at round %lld)\n",
              bernoulli_checks, bernoulli_catches,
              static_cast<long long>(first_catch_round));
  std::printf("  every-k (k=4):    %d checks, %d catches\n",
              deterministic_checks, deterministic_catches);
  std::printf("  -> same realized frequency and detection power against a\n"
              "     persistent cheater; Bernoulli is unpredictable, which\n"
              "     also deters cheaters who could otherwise time their\n"
              "     cheating between known audit slots.\n");
}

void BM_RecordTupleHash(benchmark::State& state) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
  (void)device.RegisterPlayer("p", family);
  auto singleton = family.NewHash();
  singleton->Add(ToBytes("tuple"));
  Bytes wire = singleton->Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.RecordTupleHash("p", wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordTupleHash);

void BM_IssueThroughGenerator(benchmark::State& state) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("p", family, &device).value());
  Bytes value = ToBytes("customer-record");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg.Issue(value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IssueThroughGenerator);

void BM_AuditAgainstCommitment(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("p", family, &device).value());
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    data.Add(tg.IssueString("t" + std::to_string(i)).value());
  }
  Bytes commitment = Commit(family, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.Audit("p", commitment));
  }
  state.SetLabel("audit is O(1) regardless of dataset size");
}
BENCHMARK(BM_AuditAgainstCommitment)->Arg(10)->Arg(1000)->Arg(100000);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

// Experiment E7 — Figure 4 + Theorem 1 + Propositions 1/2 (Section 5):
// the n-player game's equilibrium bands as the penalty sweeps.
//
// For penalty P in the band ((1-f)F(x-1)-B)/f < P < ((1-f)F(x)-B)/f,
// the profiles with exactly x honest players are the Nash equilibria;
// below the x = 0 edge (C,...,C) is the unique DSE (Proposition 2) and
// above the x = n-1 edge (H,...,H) is (Proposition 1).
//
// Also an ablation: the implicit O(n) equilibrium check vs dense 2^n
// enumeration, which is what makes n = 1000 tractable.

#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "game/equilibrium.h"
#include "game/kernel.h"
#include "game/landscape.h"

namespace {

using namespace hsis;
using namespace hsis::game;

NPlayerHonestyGame::Params BaseParams(int n) {
  NPlayerHonestyGame::Params p;
  p.n = n;
  p.benefit = 10;
  p.gain = LinearGain(20, 2);
  p.frequency = 0.3;
  p.uniform_loss = 4;
  return p;
}

void PrintReproduction() {
  bench::PrintRule(
      "E7 / Figure 4: n-player equilibrium bands vs penalty "
      "(n=8, B=10, F(x)=20+2x, f=0.3, L=4)");

  NPlayerHonestyGame::Params params = BaseParams(8);
  std::printf("Theorem 1 band edges ((1-f)F(x)-B)/f:\n  ");
  for (int x = 0; x < params.n; ++x) {
    std::printf("x=%d:%.2f  ", x,
                NPlayerPenaltyBound(params.benefit, params.gain,
                                    params.frequency, x));
  }
  std::printf("\n  (x=0 edge = Proposition 2 bound; x=%d edge = "
              "Proposition 1 bound)\n\n", params.n - 1);

  double top = NPlayerPenaltyBound(params.benefit, params.gain,
                                   params.frequency, params.n - 1);
  auto rows = SweepNPlayerPenalty(params, top * 1.15, 24, bench::Threads()).value();
  std::printf("  %-9s %-10s %-16s %-8s %-8s %s\n", "P", "analytic x",
              "equilibria (x)", "H-dom", "C-dom", "match");
  int mismatches = 0;
  for (const NPlayerBandRow& row : rows) {
    std::string counts;
    for (int x : row.equilibrium_honest_counts) {
      counts += std::to_string(x) + " ";
    }
    std::printf("  %-9.2f %-10d %-16s %-8s %-8s %s\n", row.penalty,
                row.analytic_honest_count, counts.c_str(),
                row.honest_is_dominant ? "yes" : "no",
                row.cheat_is_dominant ? "yes" : "no",
                row.analytic_matches_enumeration ? "ok" : "MISMATCH");
    mismatches += !row.analytic_matches_enumeration;
  }
  std::printf("\nBand structure %s (honest count climbs 0 -> n through "
              "every band as P grows).\n\n",
              mismatches == 0 ? "REPRODUCED" : "MISMATCH");

  // Cross-validation against dense 2^n enumeration at small n.
  NPlayerHonestyGame::Params small = BaseParams(4);
  small.penalty = (NPlayerPenaltyBound(10, small.gain, 0.3, 1) +
                   NPlayerPenaltyBound(10, small.gain, 0.3, 2)) / 2;
  NPlayerHonestyGame game =
      std::move(NPlayerHonestyGame::Create(small).value());
  NormalFormGame dense = std::move(game.ToNormalForm().value());
  auto dense_ne = PureNashEquilibria(dense);
  std::printf("Cross-check (n=4, P inside the x=2 band): dense enumeration\n"
              "finds %zu equilibria, all with 2 honest players:", dense_ne.size());
  bool all_two = true;
  for (const auto& ne : dense_ne) {
    int honest = 0;
    for (int s : ne) honest += (s == kHonest);
    all_two = all_two && honest == 2;
    std::printf(" %s", ProfileLabel(ne).c_str());
  }
  std::printf("\n  => %s (C(4,2) = 6 profiles expected)\n\n",
              all_two && dense_ne.size() == 6 ? "confirmed" : "MISMATCH");

  // Scaling: the implicit check at n = 1000.
  NPlayerHonestyGame::Params big = BaseParams(1000);
  big.penalty =
      NPlayerPenaltyBound(10, big.gain, 0.3, big.n - 1) + 1;
  NPlayerHonestyGame big_game =
      std::move(NPlayerHonestyGame::Create(big).value());
  std::printf("n = 1000 sanity: honest dominant = %s, equilibrium honest "
              "counts = {",
              big_game.IsHonestDominant() ? "yes" : "no");
  for (int x : big_game.EquilibriumHonestCounts()) std::printf("%d", x);
  std::printf("}\n");
}

/// Times the kernel batch n-player band evaluator on a fine penalty
/// sweep, once per runtime-supported SIMD lane; each lane's cells/sec
/// becomes one `--json` record and `--min-speedup` gates the best
/// vector lane against the scalar lane.
void PrintKernelThroughput() {
  bench::PrintRule(
      "Figure 4 kernel throughput: batch n-player band kernel per SIMD lane");
  NPlayerHonestyGame::Params params = BaseParams(8);
  const int kSteps = 20001;
  const double top = NPlayerPenaltyBound(params.benefit, params.gain,
                                         params.frequency, params.n - 1);
  int threads = bench::Threads();
  using Clock = std::chrono::steady_clock;
  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Clock::time_point start = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - start).count());
    }
    return best;
  };

  std::printf("rows: %d (n=%d), threads=%d (best of 3)\n\n", kSteps, params.n,
              threads);
  kernel::NPlayerBandRowsSoA rows;
  double scalar_cps = 0, best_vector_cps = 0;
  bench::ForEachSupportedLane([&](common::SimdLane lane) {
    double kernel_s = best_of([&] {
      Status s = kernel::EvalNPlayerBandRows(params, top * 1.15, kSteps, 0,
                                             static_cast<size_t>(kSteps),
                                             rows, threads);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        std::exit(1);
      }
      benchmark::DoNotOptimize(rows.analytic_honest_count.data());
    });
    double kernel_cps = kSteps / kernel_s;
    std::printf("  kernel [%-6s]   %8.2f ms   %12.0f cells/sec\n",
                common::SimdLaneName(lane), kernel_s * 1e3, kernel_cps);
    bench::WriteJsonRecord("figure4_nplayer_bands_kernel", threads, lane,
                           kernel_cps, kernel_s * 1e3);
    if (lane == common::SimdLane::kScalar) {
      scalar_cps = kernel_cps;
    } else {
      best_vector_cps = std::max(best_vector_cps, kernel_cps);
    }
  });
  if (best_vector_cps > 0) {
    std::printf("\nbest vector lane vs scalar lane: %.2fx\n",
                best_vector_cps / scalar_cps);
  }
  bench::EnforceMinSpeedup("figure4 n-player band kernel", scalar_cps,
                           best_vector_cps);
}

void PrintMain() {
  PrintReproduction();
  PrintKernelThroughput();
}

void BM_EquilibriumBandsImplicit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  NPlayerHonestyGame::Params params = BaseParams(n);
  params.penalty = NPlayerPenaltyBound(10, params.gain, 0.3, n / 2);
  NPlayerHonestyGame game =
      std::move(NPlayerHonestyGame::Create(params).value());
  for (auto _ : state) {
    auto counts = game.EquilibriumHonestCounts();
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_EquilibriumBandsImplicit)->Arg(10)->Arg(100)->Arg(1000);

void BM_DenseEnumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  NPlayerHonestyGame::Params params = BaseParams(n);
  params.penalty = NPlayerPenaltyBound(10, params.gain, 0.3, n / 2);
  NPlayerHonestyGame game =
      std::move(NPlayerHonestyGame::Create(params).value());
  NormalFormGame dense = std::move(game.ToNormalForm().value());
  for (auto _ : state) {
    auto ne = PureNashEquilibria(dense);
    benchmark::DoNotOptimize(ne);
  }
}
BENCHMARK(BM_DenseEnumeration)->Arg(4)->Arg(8)->Arg(12);

void BM_NashCheckLargeN(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  NPlayerHonestyGame::Params params = BaseParams(n);
  NPlayerHonestyGame game =
      std::move(NPlayerHonestyGame::Create(params).value());
  std::vector<bool> honest(static_cast<size_t>(n), true);
  for (auto _ : state) {
    bool ne = game.IsNashEquilibrium(honest);
    benchmark::DoNotOptimize(ne);
  }
}
BENCHMARK(BM_NashCheckLargeN)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

// Extension — population dynamics and social welfare.
//
// (1) Axelrod-style round-robin among eight behaviors, with and without
//     the auditing device: deterrence inverts the ecosystem — exploiters
//     rule the unaudited tournament and finish last under a
//     transformative device.
// (2) The price of dishonesty — how much collective value the (C,C)
//     equilibrium destroys as the collateral damage L grows — and the
//     device's net welfare contribution after paying for its audits.

#include "bench_util.h"
#include "game/honesty_games.h"
#include "game/thresholds.h"
#include "game/welfare.h"
#include "sim/evolutionary.h"
#include "sim/tournament.h"

namespace {

using namespace hsis;
using namespace hsis::game;
using namespace hsis::sim;

constexpr double kB = 10, kF = 25;

NPlayerHonestyGame MakeTwoPlayer(double penalty, double frequency) {
  NPlayerHonestyGame::Params p;
  p.n = 2;
  p.benefit = kB;
  p.gain = LinearGain(kF, 0);
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = 8;
  return std::move(NPlayerHonestyGame::Create(p).value());
}

void PrintStandings(const NPlayerHonestyGame& g, const char* title) {
  TournamentConfig config;
  config.rounds_per_match = 150;
  config.seed = 9;
  auto standings =
      std::move(RunRoundRobinTournament(g, StandardLineup(&g), config).value());
  std::printf("%s\n", title);
  std::printf("  %-4s %-18s %s\n", "#", "strategy", "avg payoff/round");
  int rank = 1;
  for (const TournamentStanding& s : standings) {
    std::printf("  %-4d %-18s %.2f\n", rank++, s.name.c_str(),
                s.average_payoff_per_round);
  }
  std::printf("\n");
}

void PrintReproduction() {
  bench::PrintRule("Extension: strategy ecosystem & social welfare");

  std::printf("(1) Round-robin tournaments (B=10, F=25, L=8):\n\n");
  NPlayerHonestyGame lawless = MakeTwoPlayer(0, 0);
  PrintStandings(lawless, "--- no auditing: exploitation pays ---");

  double p_star = CriticalPenalty(kB, kF, 0.4);
  NPlayerHonestyGame audited = MakeTwoPlayer(p_star * 2, 0.4);
  PrintStandings(audited,
                 "--- transformative device (f=0.4, P=2P*): honesty pays ---");

  std::printf("(2) Price of dishonesty vs collateral damage L (no audit):\n\n");
  std::printf("  %-6s %-16s %-20s %s\n", "L", "optimal welfare",
              "equilibrium welfare", "price of dishonesty");
  for (double loss : {0.0, 8.0, 16.0, 20.0, 24.0, 24.9}) {
    NormalFormGame g = std::move(MakeNoAuditGame(kB, kF, loss).value());
    WelfareAnalysis w = std::move(AnalyzeWelfare(g).value());
    std::printf("  %-6.1f %-16.1f %-20.1f %.2f\n", loss, w.optimal_welfare,
                w.equilibrium_welfare, w.price_of_dishonesty);
  }
  std::printf("\n  Note: the optimum is (H,H) only once L > F - B; for small\n"
              "  L mutual cheating is collectively productive yet still a\n"
              "  privacy catastrophe — welfare alone understates the harm.\n\n");

  std::printf("(3) Net welfare of the device at the honest equilibrium\n"
              "    (n = 10, audit cost c per audit, f from Observation 2 at\n"
              "    each penalty cap):\n\n");
  std::printf("  %-12s %-10s %-14s %s\n", "penalty cap", "f needed",
              "net welfare c=5", "net welfare c=20");
  for (double cap : {10.0, 40.0, 160.0, 640.0}) {
    double f = CriticalFrequency(kB, kF, cap) + 1e-6;
    std::printf("  %-12.0f %-10.4f %-14.2f %.2f\n", cap, f,
                NetWelfareAllHonest(10, kB, f, 5),
                NetWelfareAllHonest(10, kB, f, 20));
  }
  std::printf("\n  Bigger permissible fines let the operator audit less and\n"
              "  return more of the collaboration surplus to the players.\n\n");

  std::printf("(4) Evolutionary dynamics (replicator, p0 = 0.5; Moran,\n"
              "    N = 40, 20 runs): does selection itself pick honesty?\n\n");
  std::printf("  %-12s %-10s %-18s %s\n", "penalty", "ESS(H)?",
              "replicator p_final", "Moran honest fixations");

  Rng rng(31);
  for (double mult : {0.5, 0.9, 1.1, 2.0}) {
    NPlayerHonestyGame g = MakeTwoPlayer(p_star * mult, 0.4);
    bool ess = HonestyIsEvolutionarilyStable(g);
    ReplicatorResult rep =
        std::move(RunReplicatorDynamics(g, 0.5, 3000).value());
    int fixations = 0;
    for (int t = 0; t < 20; ++t) {
      MoranResult m =
          std::move(RunMoranProcess(g, 40, 20, 0.0, 500000, rng).value());
      fixations += m.fixated_honest;
    }
    std::printf("  %-12.2f %-10s %-18.3f %d/20\n", p_star * mult,
                ess ? "yes" : "no", rep.final_fraction, fixations);
  }
  std::printf("\n  Selection agrees with rationality: honesty invades and\n"
              "  fixates exactly in the transformative region.\n");
}

void BM_RoundRobinTournament(benchmark::State& state) {
  NPlayerHonestyGame g = MakeTwoPlayer(40, 0.4);
  TournamentConfig config;
  config.rounds_per_match = 100;
  auto lineup = StandardLineup(&g);
  for (auto _ : state) {
    auto standings = RunRoundRobinTournament(g, lineup, config);
    benchmark::DoNotOptimize(standings);
  }
  state.SetLabel("8 strategies, 36 matches x 100 rounds");
}
BENCHMARK(BM_RoundRobinTournament);

void BM_WelfareAnalysis(benchmark::State& state) {
  NormalFormGame g = std::move(MakeNoAuditGame(kB, kF, 8).value());
  for (auto _ : state) {
    auto w = AnalyzeWelfare(g);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WelfareAnalysis);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

// Experiment E9 — the paper's end-to-end claim: rational and learning
// participants converge to honesty exactly when the auditing device
// operates in the transformative region.
//
// (1) Empirical Figure 1: honesty rate of learning populations vs audit
//     frequency — the sharp flip at f*.
// (2) Learning-rule ablation: best response vs fictitious play vs
//     epsilon-greedy Q (DESIGN.md §7).
// (3) Full stack: real datasets, real protocol, real audits — realized
//     per-round economics of a cheater below and above the threshold.

#include "bench_util.h"
#include "core/honest_sharing_session.h"
#include "game/thresholds.h"
#include "sim/repeated_game.h"
#include "sim/workload.h"

namespace {

using namespace hsis;
using namespace hsis::sim;

constexpr double kB = 10, kF = 25, kL = 8, kP = 40;

game::NPlayerHonestyGame MakeGame(int n, double f, double penalty = kP) {
  game::NPlayerHonestyGame::Params p;
  p.n = n;
  p.benefit = kB;
  p.gain = game::LinearGain(kF, 0);
  p.frequency = f;
  p.penalty = penalty;
  p.uniform_loss = kL;
  return std::move(game::NPlayerHonestyGame::Create(p).value());
}

enum class Rule { kBestResponse, kFictitiousPlay, kQLearning };

std::unique_ptr<Agent> MakeAgent(Rule rule,
                                 const game::NPlayerHonestyGame* game,
                                 uint64_t seed) {
  switch (rule) {
    case Rule::kBestResponse:
      return MakeBestResponse(game);
    case Rule::kFictitiousPlay:
      return MakeFictitiousPlay(game, seed);
    case Rule::kQLearning:
      return MakeEpsilonGreedy(seed, 0.5, 0.995, 0.15);
  }
  return nullptr;
}

RepeatedGameResult Run(const game::NPlayerHonestyGame& game, Rule rule,
                       int rounds, uint64_t seed, PayoffMode mode) {
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < game.n(); ++i) {
    agents.push_back(MakeAgent(rule, &game, seed + static_cast<uint64_t>(i)));
  }
  RepeatedGameConfig config;
  config.rounds = rounds;
  config.seed = seed;
  config.mode = mode;
  return std::move(RunRepeatedGame(game, agents, config).value());
}

void PrintReproduction() {
  bench::PrintRule("E9 / end-to-end honesty enforcement");

  double f_star = game::CriticalFrequency(kB, kF, kP);
  std::printf("(1) Empirical Figure 1 — 6-player populations, honesty rate\n"
              "    in the final 20 rounds vs audit frequency (f* = %.3f):\n\n",
              f_star);
  std::printf("  %-6s %-14s %-16s %s\n", "f", "best-response",
              "fictitious-play", "q-learning(sampled)");
  for (double f : {0.0, 0.1, 0.2, f_star - 0.02, f_star + 0.02, 0.4, 0.6,
                   0.9}) {
    game::NPlayerHonestyGame g = MakeGame(6, f);
    double br = Run(g, Rule::kBestResponse, 150, 11, PayoffMode::kExpected)
                    .honesty_rate_final;
    double fp = Run(g, Rule::kFictitiousPlay, 150, 22, PayoffMode::kExpected)
                    .honesty_rate_final;
    double ql = Run(g, Rule::kQLearning, 1200, 33, PayoffMode::kSampled)
                    .honesty_rate_final;
    std::printf("  %-6.2f %-14.2f %-16.2f %.2f\n", f, br, fp, ql);
  }
  std::printf("\n  -> all three populations flip from all-cheat to all-honest\n"
              "     around f*, reproducing Figure 1 behaviorally.\n\n");

  std::printf("(2) Convergence-speed ablation (f = %.2f > f*, 6 players,\n"
              "    round at which the final stable profile was reached):\n\n",
              f_star + 0.1);
  game::NPlayerHonestyGame g = MakeGame(6, f_star + 0.1);
  for (Rule rule : {Rule::kBestResponse, Rule::kFictitiousPlay}) {
    RepeatedGameResult r = Run(g, rule, 200, 44, PayoffMode::kExpected);
    std::printf("  %-16s converged=%s at round %d (honesty %.2f)\n",
                rule == Rule::kBestResponse ? "best-response"
                                            : "fictitious-play",
                r.converged ? "yes" : "no", r.convergence_round,
                r.honesty_rate_final);
  }
  RepeatedGameResult q = Run(g, Rule::kQLearning, 1500, 55, PayoffMode::kSampled);
  std::printf("  %-16s honesty %.2f after 1500 sampled rounds\n\n",
              "q-learning", q.honesty_rate_final);

  std::printf("(3) Full stack (real protocol + audits), 150 exchanges of a\n"
              "    persistent prober, penalty from MechanismDesigner:\n\n");
  Rng rng(9);
  TwoFirmWorkload workload = MakeTwoFirmWorkload(40, 40, 15, rng);
  for (double f : {0.1, 0.6}) {
    core::SessionConfig config;
    config.audit_frequency = f;
    config.penalty = kP;
    config.group = &crypto::PrimeGroup::SmallTestGroup();
    config.seed = 17;
    core::HonestSharingSession session =
        std::move(core::HonestSharingSession::Create(config).value());
    session.AddParty("rowi");
    session.AddParty("colie");
    session.IssueTuples("rowi", workload.firm_a);
    session.IssueTuples("colie", workload.firm_b);

    double cheat_payoff = 0;
    size_t stolen = 0;
    const int kRounds = 150;
    for (int i = 0; i < kRounds; ++i) {
      core::CheatPlan plan;
      plan.fabricate = MakeProbeList(workload.b_private, 8, 0.5, rng);
      core::ExchangeResult r =
          session.RunExchange("rowi", "colie", plan, {}).value();
      stolen += r.a.probe_hits;
      cheat_payoff += r.a.detected ? -kP : kF;
    }
    std::printf("  f = %.1f (%s): cheater avg payoff %.2f/round vs honest "
                "%.0f; stole %zu names, fined %.0f total\n",
                f,
                game::ClassifySymmetricDevice(kB, kF, f, kP) ==
                        game::DeviceEffectiveness::kTransformative
                    ? "transformative"
                    : "ineffective",
                cheat_payoff / kRounds, kB, stolen,
                session.TotalPenalties("rowi"));
  }
  std::printf("\n  -> below threshold cheating pays; above it the realized\n"
              "     cheating payoff drops under the honest payoff. The\n"
              "     mechanism works end to end.\n");
}

void BM_RepeatedGameRound(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  game::NPlayerHonestyGame g = MakeGame(n, 0.4);
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < n; ++i) agents.push_back(MakeBestResponse(&g));
  RepeatedGameConfig config;
  config.rounds = 100;
  for (auto _ : state) {
    auto r = RunRepeatedGame(g, agents, config);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetLabel("items = rounds");
}
BENCHMARK(BM_RepeatedGameRound)->Arg(2)->Arg(10)->Arg(50);

void BM_FullStackExchange(benchmark::State& state) {
  Rng rng(3);
  TwoFirmWorkload workload = MakeTwoFirmWorkload(20, 20, 10, rng);
  core::SessionConfig config;
  config.audit_frequency = 0.5;
  config.penalty = kP;
  config.group = &crypto::PrimeGroup::SmallTestGroup();
  core::HonestSharingSession session =
      std::move(core::HonestSharingSession::Create(config).value());
  session.AddParty("a");
  session.AddParty("b");
  session.IssueTuples("a", workload.firm_a);
  session.IssueTuples("b", workload.firm_b);
  for (auto _ : state) {
    auto r = session.RunExchange("a", "b");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullStackExchange);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

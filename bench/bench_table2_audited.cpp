// Experiment E2 — Table 2 (Section 4.1): the symmetric audited game.
//
// Regenerates the payoff matrix with the auditing device's expected
// terms and shows the device classification at operating points in each
// of the three regimes of Observations 2/3.

#include "bench_util.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"
#include "game/thresholds.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25, kL = 8;

void PrintPoint(double f, double penalty, const char* note) {
  NormalFormGame g =
      std::move(MakeSymmetricAuditedGame(kB, kF, kL, f, penalty).value());
  std::printf("--- f = %.3f, P = %.2f  (%s) ---\n%s", f, penalty, note,
              FormatPayoffMatrix(g, "Rowi", "Colie").c_str());
  std::printf("NE = {");
  for (const auto& ne : PureNashEquilibria(g)) {
    std::printf(" %s", ProfileLabel(ne).c_str());
  }
  auto dse = DominantStrategyEquilibrium(g);
  std::printf(" }  DSE = %s  device: %s\n\n",
              dse ? ProfileLabel(*dse).c_str() : "(none)",
              DeviceEffectivenessName(
                  ClassifySymmetricDevice(kB, kF, f, penalty)));
}

void PrintReproduction() {
  bench::PrintRule(
      "E2 / Table 2: symmetric audited game (B=10, F=25, L=8)");
  std::printf(
      "Cell formulas: honest = B; cheat = (1-f)F - fP; an uncaught\n"
      "cheater costs the other player (1-f)L.\n\n");

  const double penalty = 40;
  double f_star = CriticalFrequency(kB, kF, penalty);
  std::printf("Critical frequency f* = (F-B)/(P+F) = %.4f at P = %.0f\n\n",
              f_star, penalty);

  PrintPoint(f_star / 2, penalty, "below f*: device ineffective");
  PrintPoint(f_star, penalty, "at f*: boundary, (H,H) among the NE");
  PrintPoint((1 + f_star) / 2, penalty,
             "above f*: transformative & highly effective");

  std::printf("Shape check: below f* the unique equilibrium is CC, above\n"
              "it HH — matching the paper's Table 2 analysis.\n");
}

void BM_BuildAuditedGame(benchmark::State& state) {
  for (auto _ : state) {
    auto g = MakeSymmetricAuditedGame(kB, kF, kL, 0.3, 40);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildAuditedGame);

void BM_ClassifyDevice(benchmark::State& state) {
  for (auto _ : state) {
    auto c = ClassifySymmetricDevice(kB, kF, 0.3, 40);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClassifyDevice);

void BM_FullAnalysisOnePoint(benchmark::State& state) {
  for (auto _ : state) {
    NormalFormGame g =
        std::move(MakeSymmetricAuditedGame(kB, kF, kL, 0.3, 40).value());
    auto ne = PureNashEquilibria(g);
    auto dse = DominantStrategyEquilibrium(g);
    benchmark::DoNotOptimize(ne);
    benchmark::DoNotOptimize(dse);
  }
}
BENCHMARK(BM_FullAnalysisOnePoint);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

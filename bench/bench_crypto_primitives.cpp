// Experiment E10b — crypto substrate microbenchmarks: every primitive
// the protocol and device stand on, all implemented in this repository.

#include "bench_util.h"
#include "crypto/authenticated_cipher.h"
#include "crypto/chacha20.h"
#include "crypto/commutative_cipher.h"
#include "crypto/hmac_sha256.h"
#include "crypto/prime.h"
#include "crypto/sha256.h"

namespace {

using namespace hsis;
using namespace hsis::crypto;

void PrintReproduction() {
  bench::PrintRule("E10b / crypto substrate microbenchmarks");
  std::printf(
      "All primitives below are implemented from scratch in src/crypto\n"
      "and validated against published test vectors (see tests/crypto).\n"
      "  SHA-256 / HMAC-SHA-256 / ChaCha20 — hashing, PRF, channel cipher\n"
      "  AEAD (encrypt-then-MAC)           — authenticated channels\n"
      "  256-bit Montgomery modexp         — commutative encryption\n"
      "  MSet hashes                       — see bench_multiset_hash\n");
}

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    Bytes digest = Sha256::Hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = ToBytes("prf-key");
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    Bytes mac = HmacSha256(key, data);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_ChaCha20(benchmark::State& state) {
  Bytes key(32, 0x42), nonce(12, 0x01);
  Bytes data(static_cast<size_t>(state.range(0)), 0xef);
  for (auto _ : state) {
    auto ct = ChaCha20::Apply(key, nonce, data);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(65536);

void BM_AeadSealOpen(benchmark::State& state) {
  AuthenticatedCipher cipher =
      std::move(AuthenticatedCipher::Create(Bytes(32, 0x11)).value());
  Bytes nonce(12, 0x02);
  Bytes msg(static_cast<size_t>(state.range(0)), 0x33);
  for (auto _ : state) {
    Bytes sealed = std::move(cipher.Seal(nonce, msg, {}).value());
    auto opened = cipher.Open(sealed, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSealOpen)->Arg(256)->Arg(16384);

void BM_MontgomeryModMul(benchmark::State& state) {
  MontgomeryContext ctx =
      std::move(MontgomeryContext::Create(DefaultSafePrime()).value());
  Rng rng(1);
  U256 a = DivMod(U256::FromBytesBE(rng.RandomBytes(32)), ctx.modulus()).remainder;
  U256 b = DivMod(U256::FromBytesBE(rng.RandomBytes(32)), ctx.modulus()).remainder;
  U256 am = ctx.ToMont(a), bm = ctx.ToMont(b);
  for (auto _ : state) {
    am = ctx.MontMul(am, bm);
    benchmark::DoNotOptimize(am);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MontgomeryModMul);

void BM_SlowModMul(benchmark::State& state) {
  Rng rng(2);
  U256 m = DefaultSafePrime();
  U256 a = DivMod(U256::FromBytesBE(rng.RandomBytes(32)), m).remainder;
  U256 b = DivMod(U256::FromBytesBE(rng.RandomBytes(32)), m).remainder;
  for (auto _ : state) {
    a = ModMulSlow(a, b, m);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("long-division baseline for the Montgomery ablation");
}
BENCHMARK(BM_SlowModMul);

void BM_ModExp256(benchmark::State& state) {
  MontgomeryContext ctx =
      std::move(MontgomeryContext::Create(DefaultSafePrime()).value());
  Rng rng(3);
  U256 base = DivMod(U256::FromBytesBE(rng.RandomBytes(32)), ctx.modulus()).remainder;
  U256 exp = U256::FromBytesBE(rng.RandomBytes(32));
  for (auto _ : state) {
    U256 r = ctx.ModExp(base, exp);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModExp256);

void BM_CommutativeEncrypt(benchmark::State& state) {
  Rng rng(4);
  const PrimeGroup& group = PrimeGroup::Default();
  CommutativeCipher cipher =
      std::move(CommutativeCipher::Create(group, rng).value());
  U256 element = group.HashToElement(ToBytes("tuple"));
  for (auto _ : state) {
    U256 ct = cipher.Encrypt(element);
    benchmark::DoNotOptimize(ct);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommutativeEncrypt);

void BM_MillerRabin128(benchmark::State& state) {
  Rng rng(5);
  // A fixed 128-bit prime: 2^127 - 1.
  U256 p = (U256(1) << 127) - U256(1);
  for (auto _ : state) {
    bool is_prime = IsProbablePrime(p, 8, rng);
    benchmark::DoNotOptimize(is_prime);
  }
}
BENCHMARK(BM_MillerRabin128);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

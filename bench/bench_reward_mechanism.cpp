// Extension — the paper's Section 7 future work, answered: incentives
// (rewards) instead of penalties.
//
// Result: rewards and penalties are perfect substitutes for the
// *players'* incentives — only f(R + P) matters, so every Observation
// 2/3 threshold carries over with R + P in P's place — but they are
// wildly different for the *operator*: at the honest equilibrium a
// penalty device is free while a reward device pays n f R forever.

#include "bench_util.h"
#include "game/equilibrium.h"
#include "game/landscape.h"
#include "game/reward_mechanism.h"

namespace {

using namespace hsis;
using namespace hsis::game;

constexpr double kB = 10, kF = 25, kL = 8;

void PrintReproduction() {
  bench::PrintRule(
      "Extension / Section 7: reward-based honesty enforcement");

  const double f = 0.3;
  double r_star = CriticalReward(kB, kF, f, 0);
  std::printf("Pure-reward device at f = %.2f: critical reward R* = %.2f\n"
              "(same closed form as Observation 3's P*).\n\n", f, r_star);

  std::printf("Equilibria across the reward sweep (enumeration-verified):\n\n");
  std::printf("  %-8s %-18s %-10s %s\n", "R", "device", "NE", "honest payoff");
  for (double reward : {0.0, r_star * 0.5, r_star * 0.9, r_star, r_star * 1.1,
                        r_star * 1.5}) {
    RewardTerms terms{f, reward, 0};
    NormalFormGame g =
        std::move(MakeRewardAuditedGame(kB, kF, kL, terms).value());
    std::string ne;
    for (const auto& e : PureNashEquilibria(g)) ne += ProfileLabel(e) + " ";
    std::printf("  %-8.2f %-18s %-10s %.2f\n", reward,
                DeviceEffectivenessName(ClassifyRewardDevice(kB, kF, terms)),
                ne.c_str(), kB + f * reward);
  }

  std::printf("\nSubstitution frontier: every (R, P) with R + P = %.2f is\n"
              "transformative — verified by enumeration:\n\n", r_star + 2);
  std::printf("  %-8s %-8s %-18s %s\n", "R", "P", "device", "NE");
  bool all_ok = true;
  for (double share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    double reward = share * (r_star + 2);
    RewardTerms terms{f, reward, (r_star + 2) - reward};
    NormalFormGame g =
        std::move(MakeRewardAuditedGame(kB, kF, kL, terms).value());
    auto ne = PureNashEquilibria(g);
    bool honest_unique = ne.size() == 1 && ProfileLabel(ne[0]) == "HH";
    all_ok = all_ok && honest_unique;
    std::printf("  %-8.2f %-8.2f %-18s %s\n", terms.reward, terms.penalty,
                DeviceEffectivenessName(ClassifyRewardDevice(kB, kF, terms)),
                honest_unique ? "HH (unique)" : "UNEXPECTED");
  }
  std::printf("  -> %s\n\n", all_ok ? "confirmed" : "MISMATCH");

  std::printf("Operator economics, n = 10 players, per round at the honest\n"
              "equilibrium (and off-equilibrium at x honest):\n\n");
  double total = r_star + 2;
  RewardTerms pure_reward{f, total, 0};
  RewardTerms hybrid{f, total / 2, total / 2};
  RewardTerms pure_penalty{f, 0, total};
  std::printf("  %-16s %-18s %-18s %-18s\n", "device", "cost @ x=10",
              "cost @ x=5", "cost @ x=0");
  struct Row { const char* name; RewardTerms terms; };
  for (Row row : {Row{"pure reward", pure_reward}, Row{"hybrid 50/50", hybrid},
                  Row{"pure penalty", pure_penalty}}) {
    std::printf("  %-16s %-18.2f %-18.2f %-18.2f\n", row.name,
                OperatorCostAtHonestCount(10, 10, row.terms),
                OperatorCostAtHonestCount(10, 5, row.terms),
                OperatorCostAtHonestCount(10, 0, row.terms));
  }
  std::printf("\n  -> Identical deterrence; the penalty device is free at\n"
              "     the equilibrium it creates, while rewards must be\n"
              "     funded forever. 'Appropriately designed incentives can\n"
              "     also lead to honesty' — yes, at a standing cost.\n");
}

void BM_BuildRewardGame(benchmark::State& state) {
  RewardTerms terms{0.3, 20, 10};
  for (auto _ : state) {
    auto g = MakeRewardAuditedGame(kB, kF, kL, terms);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildRewardGame);

void BM_ClassifyRewardDevice(benchmark::State& state) {
  RewardTerms terms{0.3, 20, 10};
  for (auto _ : state) {
    auto c = ClassifyRewardDevice(kB, kF, terms);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClassifyRewardDevice);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

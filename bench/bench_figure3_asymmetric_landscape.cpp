// Experiment E6 — Figure 3 (Section 4.2): the (f1, f2) equilibrium
// landscape of the asymmetric audited game at fixed penalties.
//
// Renders the 2-D region map the paper draws — (C,C) near the origin,
// (C,H)/(H,C) off-diagonal strips, (H,H) in the upper right — with the
// analytic boundaries f_i* = (F_i - B_i)/(F_i + P_i), and verifies every
// grid cell against brute-force equilibrium enumeration.

#include "bench_util.h"
#include "game/landscape.h"

namespace {

using namespace hsis;
using namespace hsis::game;

TwoPlayerGameParams BaseParams() {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};  // P1 = 20
  params.audit2 = {0, 15};  // P2 = 15
  return params;
}

char RegionChar(AsymmetricRegion r) {
  switch (r) {
    case AsymmetricRegion::kBothCheat: return '.';
    case AsymmetricRegion::kOnlyP1Cheats: return 'c';  // (C,H)
    case AsymmetricRegion::kOnlyP2Cheats: return 'k';  // (H,C)
    case AsymmetricRegion::kBothHonest: return 'H';
    case AsymmetricRegion::kBoundary: return '+';
  }
  return '?';
}

void PrintReproduction() {
  bench::PrintRule(
      "E6 / Figure 3: (f1, f2) equilibrium landscape, P1 = 20, P2 = 15");

  TwoPlayerGameParams params = BaseParams();
  double crit1 = CriticalFrequency(10, 30, 20);
  double crit2 = CriticalFrequency(6, 20, 15);
  std::printf("Analytic boundaries: f1* = (F1-B1)/(F1+P1) = %.4f,  "
              "f2* = (F2-B2)/(F2+P2) = %.4f\n\n", crit1, crit2);

  const int kSteps = 26;
  auto cells = SweepAsymmetricGrid(params, kSteps).value();

  std::printf("Legend: '.' (C,C)   'c' (C,H)   'k' (H,C)   'H' (H,H)   "
              "'+' boundary\n\n");
  // cells are in row-major (i = f1 index, j = f2 index); print f2 as the
  // vertical axis, top = 1.0 (as in the paper's figure).
  for (int j = kSteps - 1; j >= 0; --j) {
    std::printf("  f2=%.2f ", static_cast<double>(j) / (kSteps - 1));
    for (int i = 0; i < kSteps; ++i) {
      const AsymmetricGridCell& cell =
          cells[static_cast<size_t>(i) * kSteps + static_cast<size_t>(j)];
      std::printf("%c", RegionChar(cell.analytic_region));
    }
    std::printf("\n");
  }
  std::printf("          f1: 0.00 ... 1.00\n\n");

  int mismatches = 0, counts[5] = {0, 0, 0, 0, 0};
  for (const AsymmetricGridCell& cell : cells) {
    mismatches += !cell.analytic_matches_enumeration;
    counts[static_cast<int>(cell.analytic_region)]++;
  }
  std::printf("Grid cells: %zu   (C,C)=%d  (C,H)=%d  (H,C)=%d  (H,H)=%d  "
              "boundary=%d\n",
              cells.size(), counts[0], counts[1], counts[2], counts[3],
              counts[4]);
  std::printf("Brute-force enumeration agrees with the analytic region on "
              "every cell: %s\n",
              mismatches == 0 ? "yes — Figure 3 REPRODUCED" : "NO — MISMATCH");
  std::printf("\nNote the paper's warning realized: in the 'c' strip the\n"
              "heavily-audited Colie plays honestly while Rowi cheats —\n"
              "careless (f1, f2) choices force unintuitive behavior.\n");
}

void BM_SweepAsymmetricGrid26(benchmark::State& state) {
  TwoPlayerGameParams params = BaseParams();
  for (auto _ : state) {
    auto cells = SweepAsymmetricGrid(params, 26);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_SweepAsymmetricGrid26);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

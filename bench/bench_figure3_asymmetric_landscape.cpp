// Experiment E6 — Figure 3 (Section 4.2): the (f1, f2) equilibrium
// landscape of the asymmetric audited game at fixed penalties.
//
// Renders the 2-D region map the paper draws — (C,C) near the origin,
// (C,H)/(H,C) off-diagonal strips, (H,H) in the upper right — with the
// analytic boundaries f_i* = (F_i - B_i)/(F_i + P_i), and verifies every
// grid cell against brute-force equilibrium enumeration.

#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "common/parallel.h"
#include "game/kernel.h"
#include "game/landscape.h"
#include "landscape_baseline.h"

namespace {

using namespace hsis;
using namespace hsis::game;

TwoPlayerGameParams BaseParams() {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};  // P1 = 20
  params.audit2 = {0, 15};  // P2 = 15
  return params;
}

char RegionChar(AsymmetricRegion r) {
  switch (r) {
    case AsymmetricRegion::kBothCheat: return '.';
    case AsymmetricRegion::kOnlyP1Cheats: return 'c';  // (C,H)
    case AsymmetricRegion::kOnlyP2Cheats: return 'k';  // (H,C)
    case AsymmetricRegion::kBothHonest: return 'H';
    case AsymmetricRegion::kBoundary: return '+';
  }
  return '?';
}

void PrintReproduction() {
  bench::PrintRule(
      "E6 / Figure 3: (f1, f2) equilibrium landscape, P1 = 20, P2 = 15");

  TwoPlayerGameParams params = BaseParams();
  double crit1 = CriticalFrequency(10, 30, 20);
  double crit2 = CriticalFrequency(6, 20, 15);
  std::printf("Analytic boundaries: f1* = (F1-B1)/(F1+P1) = %.4f,  "
              "f2* = (F2-B2)/(F2+P2) = %.4f\n\n", crit1, crit2);

  const int kSteps = 26;
  auto cells = SweepAsymmetricGrid(params, kSteps, bench::Threads()).value();

  std::printf("Legend: '.' (C,C)   'c' (C,H)   'k' (H,C)   'H' (H,H)   "
              "'+' boundary\n\n");
  // cells are in row-major (i = f1 index, j = f2 index); print f2 as the
  // vertical axis, top = 1.0 (as in the paper's figure).
  for (int j = kSteps - 1; j >= 0; --j) {
    std::printf("  f2=%.2f ", static_cast<double>(j) / (kSteps - 1));
    for (int i = 0; i < kSteps; ++i) {
      const AsymmetricGridCell& cell =
          cells[static_cast<size_t>(i) * kSteps + static_cast<size_t>(j)];
      std::printf("%c", RegionChar(cell.analytic_region));
    }
    std::printf("\n");
  }
  std::printf("          f1: 0.00 ... 1.00\n\n");

  int mismatches = 0, counts[5] = {0, 0, 0, 0, 0};
  for (const AsymmetricGridCell& cell : cells) {
    mismatches += !cell.analytic_matches_enumeration;
    counts[static_cast<int>(cell.analytic_region)]++;
  }
  std::printf("Grid cells: %zu   (C,C)=%d  (C,H)=%d  (H,C)=%d  (H,H)=%d  "
              "boundary=%d\n",
              cells.size(), counts[0], counts[1], counts[2], counts[3],
              counts[4]);
  std::printf("Brute-force enumeration agrees with the analytic region on "
              "every cell: %s\n",
              mismatches == 0 ? "yes — Figure 3 REPRODUCED" : "NO — MISMATCH");
  std::printf("\nNote the paper's warning realized: in the 'c' strip the\n"
              "heavily-audited Colie plays honestly while Rowi cheats —\n"
              "careless (f1, f2) choices force unintuitive behavior.\n");
}

void BM_SweepAsymmetricGrid26(benchmark::State& state) {
  TwoPlayerGameParams params = BaseParams();
  for (auto _ : state) {
    auto cells = SweepAsymmetricGrid(params, 26);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_SweepAsymmetricGrid26);

void BM_SweepAsymmetricGrid200(benchmark::State& state) {
  TwoPlayerGameParams params = BaseParams();
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto cells = SweepAsymmetricGrid(params, 200, threads);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_SweepAsymmetricGrid200)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

bool CellsIdentical(const std::vector<AsymmetricGridCell>& a,
                    const std::vector<AsymmetricGridCell>& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k].f1 != b[k].f1 || a[k].f2 != b[k].f2 ||
        a[k].analytic_region != b[k].analytic_region ||
        a[k].nash_equilibria != b[k].nash_equilibria ||
        a[k].analytic_matches_enumeration !=
            b[k].analytic_matches_enumeration) {
      return false;
    }
  }
  return true;
}

/// `--speedup` mode: times the 200x200 Figure 3 grid serially and with
/// the requested `--threads=N` (default: hardware concurrency) and
/// verifies the outputs are bit-identical — the determinism contract of
/// the sweep engine, demonstrated on the acceptance workload.
void PrintSpeedup() {
  bench::PrintRule("Figure 3 sweep engine: serial vs parallel, 200x200 grid");
  TwoPlayerGameParams params = BaseParams();
  const int kGrid = 200;
  int threads = bench::Threads() == 1 ? 0 : bench::Threads();
  int resolved = common::ResolveThreadCount(threads);

  using Clock = std::chrono::steady_clock;
  auto time_sweep = [&](int t, std::vector<AsymmetricGridCell>* out) {
    Clock::time_point start = Clock::now();
    *out = SweepAsymmetricGrid(params, kGrid, t).value();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  std::vector<AsymmetricGridCell> serial_cells, parallel_cells, two_cells;
  double serial_s = time_sweep(1, &serial_cells);
  double two_s = time_sweep(2, &two_cells);
  double parallel_s = time_sweep(resolved, &parallel_cells);

  std::printf("grid cells: %d x %d = %d (each: game build + exact NE "
              "enumeration)\n\n", kGrid, kGrid, kGrid * kGrid);
  std::printf("  threads=1   %8.3f s\n", serial_s);
  std::printf("  threads=2   %8.3f s   speedup %.2fx\n", two_s,
              serial_s / two_s);
  std::printf("  threads=%-3d %8.3f s   speedup %.2fx\n", resolved,
              parallel_s, serial_s / parallel_s);
  std::printf("\nbit-identical across thread counts: %s\n",
              CellsIdentical(serial_cells, parallel_cells) &&
                      CellsIdentical(serial_cells, two_cells)
                  ? "yes"
                  : "NO — DETERMINISM VIOLATION");
}

/// Times the frozen pre-kernel per-cell path (landscape_baseline.h)
/// against the kernel batch evaluator on the 200x200 acceptance grid,
/// once per runtime-supported SIMD lane, and reports cells/sec; each
/// lane's kernel number becomes one `--json` record, and
/// `--min-speedup` gates the best vector lane against the scalar lane.
void PrintKernelThroughput() {
  bench::PrintRule(
      "Figure 3 kernel throughput: pre-kernel per-cell path vs batch kernel "
      "per SIMD lane");
  TwoPlayerGameParams params = BaseParams();
  const int kGrid = 200;
  const size_t kCells = static_cast<size_t>(kGrid) * kGrid;
  int threads = bench::Threads();
  using Clock = std::chrono::steady_clock;
  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Clock::time_point start = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - start).count());
    }
    return best;
  };

  double baseline_s = best_of([&] {
    common::ParallelFor(threads, kCells, [&](size_t idx) {
      AsymmetricGridCell cell =
          bench::baseline::AsymmetricCell(params, kGrid, idx);
      benchmark::DoNotOptimize(cell);
    });
  });
  double baseline_cps = static_cast<double>(kCells) / baseline_s;
  std::printf("cells: %zu, threads=%d (best of 3)\n\n", kCells, threads);
  std::printf("  pre-kernel path   %8.2f ms   %12.0f cells/sec\n",
              baseline_s * 1e3, baseline_cps);

  kernel::AsymmetricCellsSoA cells;
  double scalar_cps = 0, best_vector_cps = 0;
  bench::ForEachSupportedLane([&](common::SimdLane lane) {
    double kernel_s = best_of([&] {
      Status s =
          kernel::EvalAsymmetricCells(params, kGrid, 0, kCells, cells, threads);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        std::exit(1);
      }
      benchmark::DoNotOptimize(cells.nash_mask.data());
    });
    double kernel_cps = static_cast<double>(kCells) / kernel_s;
    std::printf("  kernel [%-6s]   %8.2f ms   %12.0f cells/sec   (%.2fx)\n",
                common::SimdLaneName(lane), kernel_s * 1e3, kernel_cps,
                kernel_cps / baseline_cps);
    bench::WriteJsonRecord("figure3_asymmetric_grid_kernel", threads, lane,
                           kernel_cps, kernel_s * 1e3);
    if (lane == common::SimdLane::kScalar) {
      scalar_cps = kernel_cps;
    } else {
      best_vector_cps = std::max(best_vector_cps, kernel_cps);
    }
  });
  if (best_vector_cps > 0) {
    std::printf("\nbest vector lane vs scalar lane: %.2fx\n",
                best_vector_cps / scalar_cps);
  }
  bench::EnforceMinSpeedup("figure3 asymmetric kernel", scalar_cps,
                           best_vector_cps);
}

void PrintMain() {
  if (bench::SpeedupRequested()) {
    PrintSpeedup();
  } else {
    PrintReproduction();
    PrintKernelThroughput();
  }
}

}  // namespace

HSIS_BENCH_MAIN(PrintMain)

// Related-work comparison (Section 1.2, [Zhang & Zhao VLDB'05]):
// defending against malicious probes by perturbing one's *own* input vs
// the paper's approach of making cheating irrational.
//
// Perturbation couples privacy to accuracy (block a fraction q of
// probes <=> lose a fraction q of the result); the audit mechanism
// keeps the result exact and suppresses probing at its origin.

#include "bench_util.h"
#include "core/campaign.h"
#include "game/thresholds.h"
#include "sim/workload.h"
#include "sovereign/perturbation_defense.h"

namespace {

using namespace hsis;
using namespace hsis::sovereign;

crypto::MultisetHashFamily MuFamily() {
  return std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
}

void PrintReproduction() {
  bench::PrintRule(
      "Related work: input-perturbation defense vs audit mechanism");

  Rng rng(42);
  sim::TwoFirmWorkload w = sim::MakeTwoFirmWorkload(40, 40, 30, rng);
  Dataset defender = Dataset::FromStrings(w.firm_a);
  Dataset adversary = Dataset::FromStrings(w.firm_b);
  std::vector<std::string> probes =
      sim::MakeProbeList(w.a_private, 15, 1.0, rng);

  std::printf("Defender holds %zu tuples (30 shared); adversary probes 15\n"
              "of the defender's private tuples every exchange.\n\n",
              defender.size());

  std::printf("Perturbation sweep (averaged over 20 runs each):\n\n");
  std::printf("  %-12s %-18s %-18s\n", "withhold q", "result recall",
              "probe hit rate");
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    PerturbationPolicy policy;
    policy.withhold_probability = q;
    double recall = 0, hits = 0;
    const int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      auto eval = EvaluatePerturbationDefense(
          defender, adversary, probes, policy,
          crypto::PrimeGroup::SmallTestGroup(), MuFamily(), rng);
      recall += eval->intersection_recall;
      hits += eval->probe_hit_rate;
    }
    std::printf("  %-12.2f %-18.2f %-18.2f\n", q, recall / kTrials,
                hits / kTrials);
  }
  std::printf("\n  -> recall ≈ hit rate ≈ 1 - q: every unit of privacy is\n"
              "     paid for with a unit of result accuracy. And the\n"
              "     defense punishes *honest* counterparties identically —\n"
              "     the defender now cheats in every exchange.\n\n");

  std::printf("The paper's alternative at the same threat level:\n\n");
  const double kB = 10, kF = 25;
  double f = 0.4;
  double p_star = game::CriticalPenalty(kB, kF, f);
  std::printf("  audit f = %.1f, P = %.1f (> P* = %.1f): result recall 1.00\n"
              "  by construction, and the probing strategy has expected\n"
              "  payoff %.2f < honest %.0f — a rational adversary stops\n"
              "  probing, so the realized probe hit rate is 0.\n",
              f, p_star + 5, p_star,
              (1 - f) * kF - f * (p_star + 5), kB);
  std::printf("\n  Exactness + deterrence vs a coupled accuracy/privacy\n"
              "  trade-off: the two designs are not interchangeable, which\n"
              "  is the contrast Section 1.2 draws.\n");
}

void BM_PerturbDataset(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back("t" + std::to_string(i));
  Dataset data = Dataset::FromStrings(values);
  PerturbationPolicy policy;
  policy.withhold_probability = 0.3;
  policy.decoy_count = 50;
  for (auto _ : state) {
    Dataset d = PerturbDataset(data, policy, rng);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_PerturbDataset);

void BM_DefendedExchange(benchmark::State& state) {
  Rng rng(2);
  sim::TwoFirmWorkload w = sim::MakeTwoFirmWorkload(20, 20, 10, rng);
  Dataset defender = Dataset::FromStrings(w.firm_a);
  Dataset adversary = Dataset::FromStrings(w.firm_b);
  std::vector<std::string> probes = sim::MakeProbeList(w.a_private, 5, 1.0, rng);
  PerturbationPolicy policy;
  policy.withhold_probability = 0.3;
  crypto::MultisetHashFamily family = MuFamily();
  for (auto _ : state) {
    auto eval = EvaluatePerturbationDefense(
        defender, adversary, probes, policy,
        crypto::PrimeGroup::SmallTestGroup(), family, rng);
    benchmark::DoNotOptimize(eval);
  }
}
BENCHMARK(BM_DefendedExchange);

}  // namespace

HSIS_BENCH_MAIN(PrintReproduction)

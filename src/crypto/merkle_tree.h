#ifndef HSIS_CRYPTO_MERKLE_TREE_H_
#define HSIS_CRYPTO_MERKLE_TREE_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace hsis::crypto {

/// A binary SHA-256 Merkle tree over a list of byte-string leaves.
///
/// Built as the comparison baseline for the auditing device: committing
/// to a dataset with a Merkle root is the standard alternative to an
/// incremental multiset hash, but it is *ordered* (the same multiset in
/// a different leaf order yields a different root) and updating it
/// requires the whole tree (O(n) state) or a full O(n) recompute from
/// the leaves — exactly the costs Section 6's multiset hashes avoid.
/// It does offer something multiset hashes do not: logarithmic
/// membership proofs.
///
/// Domain separation: leaves are hashed as SHA256(0x00 || leaf) and
/// interior nodes as SHA256(0x01 || left || right), preventing
/// leaf/node confusion attacks. Odd nodes are promoted unchanged.
class MerkleTree {
 public:
  /// Builds a tree over `leaves` (order-sensitive). An empty leaf list
  /// yields the well-defined empty root SHA256(0x02).
  static MerkleTree Build(const std::vector<Bytes>& leaves);

  /// The root commitment.
  const Bytes& root() const { return levels_.back()[0]; }

  size_t leaf_count() const { return leaf_count_; }

  /// Total bytes held across all tree levels — the state an updatable
  /// Merkle commitment must keep.
  size_t StateBytes() const;

  /// A membership proof: sibling hashes bottom-up plus position bits.
  struct Proof {
    size_t leaf_index = 0;
    std::vector<Bytes> siblings;  // one per level, bottom-up
  };

  /// Produces a proof for the leaf at `index`; fails when out of range.
  Result<Proof> Prove(size_t index) const;

  /// Verifies that `leaf` sits at `proof.leaf_index` under `root`.
  static bool Verify(const Bytes& root, const Bytes& leaf, const Proof& proof,
                     size_t leaf_count);

  /// Replaces the leaf at `index` and updates the O(log n) path —
  /// the *incremental update* a Merkle-based device would use.
  Status UpdateLeaf(size_t index, const Bytes& new_leaf);

  /// Appends a leaf; rebuilds affected path(s). Amortized O(log n) but
  /// O(n) when the tree level structure grows.
  void AppendLeaf(const Bytes& leaf);

 private:
  MerkleTree() = default;

  static Bytes LeafHash(const Bytes& leaf);
  static Bytes NodeHash(const Bytes& left, const Bytes& right);
  void Rebuild();

  // levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<Bytes>> levels_;
  std::vector<Bytes> leaves_;
  size_t leaf_count_ = 0;
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_MERKLE_TREE_H_

#ifndef HSIS_CRYPTO_MODMATH_H_
#define HSIS_CRYPTO_MODMATH_H_

#include "common/result.h"
#include "common/u256.h"

namespace hsis::crypto {

/// (a + b) mod m; inputs must already be reduced (< m).
U256 ModAdd(const U256& a, const U256& b, const U256& m);

/// (a - b) mod m; inputs must already be reduced (< m).
U256 ModSub(const U256& a, const U256& b, const U256& m);

/// (a * b) mod m via full 512-bit product and long division. Correct for
/// any nonzero modulus; the Montgomery context below is ~50x faster for
/// repeated work modulo one odd modulus.
U256 ModMulSlow(const U256& a, const U256& b, const U256& m);

/// gcd(a, b) by Euclid's algorithm.
U256 Gcd(const U256& a, const U256& b);

/// Precomputed context for fast arithmetic modulo a fixed odd modulus,
/// using Montgomery multiplication (CIOS reduction).
class MontgomeryContext {
 public:
  /// Builds a context; fails unless `modulus` is odd and > 1.
  static Result<MontgomeryContext> Create(const U256& modulus);

  const U256& modulus() const { return n_; }

  /// Converts into / out of the Montgomery domain.
  U256 ToMont(const U256& a) const;
  U256 FromMont(const U256& a) const;

  /// Product of two Montgomery-domain values (result in the domain).
  U256 MontMul(const U256& a, const U256& b) const;

  /// (a * b) mod n for plain-domain inputs (< n).
  U256 ModMul(const U256& a, const U256& b) const;

  /// base^exp mod n (plain domain, base < n), square-and-multiply.
  U256 ModExp(const U256& base, const U256& exp) const;

  /// a^(n-2) mod n — the inverse of `a` when n is prime and a != 0 mod n.
  /// Fails on a == 0. The library only ever inverts modulo primes (the
  /// quadratic-residue subgroup order q and the field prime p).
  Result<U256> ModInversePrime(const U256& a) const;

 private:
  MontgomeryContext(const U256& n, uint64_t n0inv, const U256& r2)
      : n_(n), n0inv_(n0inv), r2_(r2) {}

  U256 n_;         // modulus
  uint64_t n0inv_; // -n^{-1} mod 2^64
  U256 r2_;        // (2^256)^2 mod n
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_MODMATH_H_

#ifndef HSIS_CRYPTO_MODMATH_H_
#define HSIS_CRYPTO_MODMATH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/u256.h"

namespace hsis::crypto {

/// (a + b) mod m; inputs must already be reduced (< m).
U256 ModAdd(const U256& a, const U256& b, const U256& m);

/// (a - b) mod m; inputs must already be reduced (< m).
U256 ModSub(const U256& a, const U256& b, const U256& m);

/// (a * b) mod m via full 512-bit product and long division. Correct for
/// any nonzero modulus; the Montgomery context below is ~50x faster for
/// repeated work modulo one odd modulus.
U256 ModMulSlow(const U256& a, const U256& b, const U256& m);

/// gcd(a, b) by Euclid's algorithm.
U256 Gcd(const U256& a, const U256& b);

/// Precomputed context for fast arithmetic modulo a fixed odd modulus,
/// using Montgomery multiplication (CIOS reduction).
class MontgomeryContext {
 public:
  /// Builds a context; fails unless `modulus` is odd and > 1.
  static Result<MontgomeryContext> Create(const U256& modulus);

  const U256& modulus() const { return n_; }

  /// Converts into / out of the Montgomery domain.
  U256 ToMont(const U256& a) const;
  U256 FromMont(const U256& a) const;

  /// Product of two Montgomery-domain values (result in the domain).
  U256 MontMul(const U256& a, const U256& b) const;

  /// Square of a Montgomery-domain value. Returns exactly
  /// `MontMul(a, a)` — same integer, same reduction — but computes the
  /// 512-bit square with the symmetric schoolbook (10 limb products
  /// instead of 16) before a separate Montgomery reduction pass.
  U256 MontSqr(const U256& a) const;

  /// (a * b) mod n for plain-domain inputs (< n).
  U256 ModMul(const U256& a, const U256& b) const;

  /// base^exp mod n (plain domain), square-and-multiply. A base >= n is
  /// pre-reduced mod n first (the same convention as `ModInversePrime`),
  /// so ModExp(base, e) == ModExp(base mod n, e) for every base. exp == 0
  /// returns 1 for every base (including 0) and exp == 1 returns the
  /// reduced base, both without entering the ladder.
  U256 ModExp(const U256& base, const U256& exp) const;

  /// a^(n-2) mod n — the inverse of `a` when n is prime and a != 0 mod n.
  /// Fails on a == 0. The library only ever inverts modulo primes (the
  /// quadratic-residue subgroup order q and the field prime p).
  Result<U256> ModInversePrime(const U256& a) const;

 private:
  MontgomeryContext(const U256& n, uint64_t n0inv, const U256& r2)
      : n_(n), n0inv_(n0inv), r2_(r2) {}

  U256 n_;         // modulus
  uint64_t n0inv_; // -n^{-1} mod 2^64
  U256 r2_;        // (2^256)^2 mod n
};

/// Fixed-window modular exponentiation for one fixed exponent.
///
/// The commutative cipher raises millions of bases to the *same* secret
/// exponent, so everything that depends only on the exponent — the
/// left-to-right window digit schedule — is computed once here and
/// replayed for every base. Each `ModExp` call builds a 2^w-entry table
/// of base powers in the Montgomery domain, then walks the schedule with
/// w Montgomery squarings per window and one table multiplication per
/// nonzero digit. Exactly one `ToMont` and one `FromMont` happen per
/// call; everything in between stays in the Montgomery domain.
///
/// Results are bit-identical to `MontgomeryContext::ModExp(base, e)` for
/// every (base, exponent, modulus): both paths compute the same exact
/// integer base^e mod n, and both pre-reduce a base >= n. This is pinned
/// by the differential suite in tests/crypto/fixed_exponent_test.cc.
class FixedExponentContext {
 public:
  /// Largest accepted window width. w=6 already needs a 64-entry table
  /// per call; wider windows only pay off for exponents far beyond 256
  /// bits.
  static constexpr int kMaxWindowBits = 6;

  /// Builds the per-exponent schedule. `window_bits` 0 picks the width
  /// automatically from the exponent's bit length (w=4 for the 256-bit
  /// production exponents); explicit values outside [1, kMaxWindowBits]
  /// are InvalidArgument. The Montgomery context is captured by value so
  /// the schedule stays valid when its owner (e.g. a PrimeGroup inside a
  /// moved CommutativeCipher) relocates.
  static Result<FixedExponentContext> Create(const MontgomeryContext& ctx,
                                             const U256& exponent,
                                             int window_bits = 0);

  /// base^exponent mod n; bit-identical to the naive ladder. A base >= n
  /// is pre-reduced mod n first.
  U256 ModExp(const U256& base) const;

  const U256& exponent() const { return exp_; }
  int window_bits() const { return window_bits_; }

 private:
  FixedExponentContext(const MontgomeryContext& ctx, const U256& exponent,
                       int window_bits);

  MontgomeryContext ctx_;
  U256 exp_;
  int window_bits_;
  size_t table_size_;            // 1 + max digit in the schedule
  U256 mont_one_;                // ToMont(1), the table's 0th power
  std::vector<uint8_t> digits_;  // window digits, most significant first
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_MODMATH_H_

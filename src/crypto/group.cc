#include "crypto/group.h"

#include "common/logging.h"
#include "crypto/prime.h"
#include "crypto/sha256.h"

namespace hsis::crypto {

Result<PrimeGroup> PrimeGroup::Create(const U256& safe_prime,
                                      bool check_primality) {
  if (!safe_prime.IsOdd() || safe_prime < U256(7)) {
    return Status::InvalidArgument("safe prime must be odd and >= 7");
  }
  U256 q = (safe_prime - U256(1)) >> 1;
  if (!q.IsOdd()) {
    return Status::InvalidArgument("(p-1)/2 must be odd (p = 2q+1, q prime)");
  }
  if (check_primality) {
    Rng rng(0xC0FFEE);
    if (!IsProbablePrime(safe_prime, 32, rng) || !IsProbablePrime(q, 32, rng)) {
      return Status::InvalidArgument("modulus is not a safe prime");
    }
  }
  HSIS_ASSIGN_OR_RETURN(MontgomeryContext ctx,
                        MontgomeryContext::Create(safe_prime));
  HSIS_ASSIGN_OR_RETURN(MontgomeryContext order_ctx,
                        MontgomeryContext::Create(q));
  return PrimeGroup(std::move(ctx), std::move(order_ctx), q);
}

const PrimeGroup& PrimeGroup::Default() {
  static Result<PrimeGroup>* group =
      new Result<PrimeGroup>(Create(DefaultSafePrime()));
  HSIS_CHECK(group->ok());
  return group->value();
}

const PrimeGroup& PrimeGroup::SmallTestGroup() {
  static Result<PrimeGroup>* group =
      new Result<PrimeGroup>(Create(SmallSafePrime()));
  HSIS_CHECK(group->ok());
  return group->value();
}

U256 PrimeGroup::HashToElement(const Bytes& data) const {
  Bytes input = data;
  for (int attempt = 0; attempt < 16; ++attempt) {
    Bytes digest = Sha256::Hash(input);
    U256 x = U256::FromBytesBE(digest);
    x = DivMod(x, modulus()).remainder;
    if (!x.IsZero()) {
      return ctx_.ModMul(x, x);  // square into the QR subgroup
    }
    input.push_back(0x01);  // re-derive on the (improbable) zero
  }
  HSIS_LOG_FATAL << "HashToElement failed to find a nonzero residue";
  return U256(1);
}

bool PrimeGroup::IsElement(const U256& a) const {
  if (a.IsZero() || a >= modulus()) return false;
  return ctx_.ModExp(a, order_) == U256(1);
}

U256 PrimeGroup::RandomExponent(Rng& rng) const {
  for (;;) {
    U256 e = U256::FromBytesBE(rng.RandomBytes(32));
    e = DivMod(e, order_).remainder;
    if (!e.IsZero()) return e;
  }
}

Result<U256> PrimeGroup::InverseExponent(const U256& e) const {
  return order_ctx_.ModInversePrime(e);
}

}  // namespace hsis::crypto

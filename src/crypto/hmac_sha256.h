#ifndef HSIS_CRYPTO_HMAC_SHA256_H_
#define HSIS_CRYPTO_HMAC_SHA256_H_

#include "common/bytes.h"

namespace hsis::crypto {

/// HMAC-SHA-256 (RFC 2104). Keys longer than the block size are hashed
/// first; shorter keys are zero-padded, per the spec.
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// HMAC keyed pseudo-random function with a domain-separation tag byte —
/// the keyed hash H_K(tag, b) used by the MSet-XOR / MSet-Add multiset
/// hashes (Clarke et al., Asiacrypt 2003).
Bytes HmacPrf(const Bytes& key, uint8_t tag, const Bytes& message);

/// HKDF-style key derivation: HMAC(master, label) truncated/expanded to
/// `out_len` bytes by counter-mode iteration. Used to split one session
/// master secret into independent encryption and MAC keys.
Bytes DeriveKey(const Bytes& master, std::string_view label, size_t out_len);

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_HMAC_SHA256_H_

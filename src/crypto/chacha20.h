#ifndef HSIS_CRYPTO_CHACHA20_H_
#define HSIS_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace hsis::crypto {

/// ChaCha20 stream cipher (RFC 8439). 256-bit key, 96-bit nonce, 32-bit
/// block counter. Encryption and decryption are the same XOR operation.
class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  /// Creates a cipher; fails unless key is 32 bytes and nonce 12 bytes.
  static Result<ChaCha20> Create(const Bytes& key, const Bytes& nonce,
                                 uint32_t initial_counter = 0);

  /// XORs the keystream into `data` in place, advancing the stream.
  void Process(Bytes& data);

  /// One-shot: returns `data` XOR keystream(key, nonce, counter).
  static Result<Bytes> Apply(const Bytes& key, const Bytes& nonce,
                             const Bytes& data, uint32_t initial_counter = 0);

  /// The raw 64-byte block function, exposed for test vectors.
  static std::array<uint8_t, 64> Block(const std::array<uint32_t, 8>& key,
                                       const std::array<uint32_t, 3>& nonce,
                                       uint32_t counter);

 private:
  ChaCha20(std::array<uint32_t, 8> key, std::array<uint32_t, 3> nonce,
           uint32_t counter)
      : key_(key), nonce_(nonce), counter_(counter) {}

  std::array<uint32_t, 8> key_;
  std::array<uint32_t, 3> nonce_;
  uint32_t counter_;
  std::array<uint8_t, 64> keystream_{};
  size_t keystream_pos_ = 64;  // exhausted; fetch on first use
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_CHACHA20_H_

#ifndef HSIS_CRYPTO_PRIME_H_
#define HSIS_CRYPTO_PRIME_H_

#include "common/random.h"
#include "common/result.h"
#include "common/u256.h"

namespace hsis::crypto {

/// Miller–Rabin probabilistic primality test with `rounds` random bases
/// (error probability <= 4^-rounds). Handles small inputs exactly via a
/// trial-division pre-pass.
bool IsProbablePrime(const U256& n, int rounds, Rng& rng);

/// Generates a random prime with exactly `bits` bits (top bit set).
/// `bits` must be in [8, 256].
Result<U256> GeneratePrime(size_t bits, int rounds, Rng& rng);

/// Generates a safe prime p = 2q + 1 (q also prime) with exactly `bits`
/// bits. Intended for small/medium test groups — safe primes are sparse,
/// so 256-bit generation can take a while; production code should use
/// `DefaultSafePrime()` below.
Result<U256> GenerateSafePrime(size_t bits, int rounds, Rng& rng);

/// The library's default 256-bit safe prime p (generated offline with 48
/// Miller–Rabin rounds on both p and (p-1)/2).
const U256& DefaultSafePrime();

/// q = (p - 1) / 2 for `DefaultSafePrime()` — the (prime) order of the
/// quadratic-residue subgroup.
const U256& DefaultSubgroupOrder();

/// A 64-bit safe prime for fast unit tests.
const U256& SmallSafePrime();

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_PRIME_H_

#include "crypto/authenticated_cipher.h"

#include "crypto/chacha20.h"
#include "crypto/hmac_sha256.h"

namespace hsis::crypto {

Result<AuthenticatedCipher> AuthenticatedCipher::Create(
    const Bytes& master_key) {
  if (master_key.size() != kKeySize) {
    return Status::InvalidArgument("master key must be 32 bytes");
  }
  Bytes enc_key = DeriveKey(master_key, "hsis.aead.enc", kKeySize);
  Bytes mac_key = DeriveKey(master_key, "hsis.aead.mac", kKeySize);
  return AuthenticatedCipher(std::move(enc_key), std::move(mac_key));
}

Bytes AuthenticatedCipher::ComputeTag(const Bytes& nonce,
                                      const Bytes& ciphertext,
                                      const Bytes& aad) const {
  Bytes mac_input;
  AppendUint64BE(mac_input, aad.size());
  Append(mac_input, aad);
  Append(mac_input, nonce);
  Append(mac_input, ciphertext);
  return HmacSha256(mac_key_, mac_input);
}

Result<Bytes> AuthenticatedCipher::Seal(const Bytes& nonce,
                                        const Bytes& plaintext,
                                        const Bytes& aad) const {
  if (nonce.size() != kNonceSize) {
    return Status::InvalidArgument("nonce must be 12 bytes");
  }
  HSIS_ASSIGN_OR_RETURN(Bytes ciphertext,
                        ChaCha20::Apply(enc_key_, nonce, plaintext));
  Bytes tag = ComputeTag(nonce, ciphertext, aad);

  Bytes sealed;
  sealed.reserve(nonce.size() + ciphertext.size() + tag.size());
  Append(sealed, nonce);
  Append(sealed, ciphertext);
  Append(sealed, tag);
  return sealed;
}

Result<Bytes> AuthenticatedCipher::Open(const Bytes& sealed,
                                        const Bytes& aad) const {
  if (sealed.size() < kNonceSize + kTagSize) {
    return Status::IntegrityViolation("sealed message truncated");
  }
  Bytes nonce(sealed.begin(), sealed.begin() + kNonceSize);
  Bytes ciphertext(sealed.begin() + kNonceSize, sealed.end() - kTagSize);
  Bytes tag(sealed.end() - kTagSize, sealed.end());

  Bytes expected = ComputeTag(nonce, ciphertext, aad);
  if (!ConstantTimeEqual(tag, expected)) {
    return Status::IntegrityViolation("authentication tag mismatch");
  }
  return ChaCha20::Apply(enc_key_, nonce, ciphertext);
}

}  // namespace hsis::crypto

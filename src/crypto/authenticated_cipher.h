#ifndef HSIS_CRYPTO_AUTHENTICATED_CIPHER_H_
#define HSIS_CRYPTO_AUTHENTICATED_CIPHER_H_

#include "common/bytes.h"
#include "common/result.h"

namespace hsis::crypto {

/// Authenticated encryption with associated data, built as
/// ChaCha20 + HMAC-SHA-256 encrypt-then-MAC.
///
/// The paper's communication model calls for authenticated encryption
/// providing "both message privacy and message authenticity" (it cites
/// OCB). We substitute the generically-secure encrypt-then-MAC
/// composition, implemented entirely from the primitives in this
/// directory; the contract — confidentiality plus ciphertext integrity —
/// is the one the paper relies on.
///
/// Wire format of a sealed message: nonce (12) || ciphertext || tag (32).
/// The MAC covers aad_len || aad || nonce || ciphertext.
class AuthenticatedCipher {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kTagSize = 32;

  /// Creates a cipher from a 32-byte master key; independent encryption
  /// and MAC subkeys are derived internally.
  static Result<AuthenticatedCipher> Create(const Bytes& master_key);

  /// Encrypts and authenticates. `nonce` must be 12 bytes and unique per
  /// message under this key; `aad` is authenticated but not encrypted.
  Result<Bytes> Seal(const Bytes& nonce, const Bytes& plaintext,
                     const Bytes& aad) const;

  /// Verifies and decrypts a message produced by `Seal`. Returns
  /// `IntegrityViolation` on any tamper (tag mismatch, truncation).
  Result<Bytes> Open(const Bytes& sealed, const Bytes& aad) const;

 private:
  AuthenticatedCipher(Bytes enc_key, Bytes mac_key)
      : enc_key_(std::move(enc_key)), mac_key_(std::move(mac_key)) {}

  Bytes ComputeTag(const Bytes& nonce, const Bytes& ciphertext,
                   const Bytes& aad) const;

  Bytes enc_key_;
  Bytes mac_key_;
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_AUTHENTICATED_CIPHER_H_

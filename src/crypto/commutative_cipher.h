#ifndef HSIS_CRYPTO_COMMUTATIVE_CIPHER_H_
#define HSIS_CRYPTO_COMMUTATIVE_CIPHER_H_

#include "common/random.h"
#include "common/result.h"
#include "common/u256.h"
#include "crypto/group.h"

namespace hsis::crypto {

/// SRA / Pohlig–Hellman commutative encryption over a safe-prime
/// quadratic-residue group: E_e(x) = x^e mod p.
///
/// For any two keys e1, e2: E_e1(E_e2(x)) == E_e2(E_e1(x)) — the property
/// the Agrawal–Evfimievski–Srikant sovereign set-intersection protocol is
/// built on. Because the subgroup order q is prime, every key in [1, q)
/// is valid and decryption uses d = e^{-1} mod q.
class CommutativeCipher {
 public:
  /// Creates a cipher with a uniformly random key drawn from `rng`.
  static Result<CommutativeCipher> Create(const PrimeGroup& group, Rng& rng);

  /// Creates a cipher with an explicit key e; fails unless 1 <= e < q.
  static Result<CommutativeCipher> CreateWithKey(const PrimeGroup& group,
                                                 const U256& key);

  /// Encrypts a group element: element^e mod p. Runs on the cached
  /// fixed-window schedule for e (bit-identical to `group().Exp`).
  U256 Encrypt(const U256& element) const;

  /// Inverts `Encrypt`: element^{e^{-1} mod q} mod p, also windowed.
  U256 Decrypt(const U256& element) const;

  /// Convenience: hash arbitrary bytes into the group, then encrypt.
  U256 EncryptBytes(const Bytes& data) const;

  const PrimeGroup& group() const { return group_; }
  const U256& key() const { return key_; }

 private:
  CommutativeCipher(PrimeGroup group, U256 key, U256 inverse_key,
                    FixedExponentContext encrypt_ctx,
                    FixedExponentContext decrypt_ctx)
      : group_(std::move(group)),
        key_(key),
        inverse_key_(inverse_key),
        encrypt_ctx_(std::move(encrypt_ctx)),
        decrypt_ctx_(std::move(decrypt_ctx)) {}

  PrimeGroup group_;
  U256 key_;
  U256 inverse_key_;
  // Per-key window schedules, computed once at creation and replayed for
  // every element of every stream the cipher touches. Self-contained
  // (they copy the Montgomery context), so moving the cipher is safe.
  FixedExponentContext encrypt_ctx_;
  FixedExponentContext decrypt_ctx_;
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_COMMUTATIVE_CIPHER_H_

#include "crypto/chacha20.h"

namespace hsis::crypto {

namespace {

uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl(d ^ a, 16);
  c += d;
  b = Rotl(b ^ c, 12);
  a += b;
  d = Rotl(d ^ a, 8);
  c += d;
  b = Rotl(b ^ c, 7);
}

uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<uint8_t, 64> ChaCha20::Block(const std::array<uint32_t, 8>& key,
                                        const std::array<uint32_t, 3>& nonce,
                                        uint32_t counter) {
  uint32_t state[16] = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,  // "expand 32-byte k"
      key[0],     key[1],     key[2],     key[3],
      key[4],     key[5],     key[6],     key[7],
      counter,    nonce[0],   nonce[1],   nonce[2],
  };
  uint32_t working[16];
  for (int i = 0; i < 16; ++i) working[i] = state[i];

  for (int round = 0; round < 10; ++round) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }

  std::array<uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
  return out;
}

Result<ChaCha20> ChaCha20::Create(const Bytes& key, const Bytes& nonce,
                                  uint32_t initial_counter) {
  if (key.size() != kKeySize) {
    return Status::InvalidArgument("ChaCha20 key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    return Status::InvalidArgument("ChaCha20 nonce must be 12 bytes");
  }
  std::array<uint32_t, 8> k;
  for (int i = 0; i < 8; ++i) k[i] = LoadLE32(&key[4 * static_cast<size_t>(i)]);
  std::array<uint32_t, 3> n;
  for (int i = 0; i < 3; ++i) n[i] = LoadLE32(&nonce[4 * static_cast<size_t>(i)]);
  return ChaCha20(k, n, initial_counter);
}

void ChaCha20::Process(Bytes& data) {
  for (uint8_t& byte : data) {
    if (keystream_pos_ == 64) {
      keystream_ = Block(key_, nonce_, counter_++);
      keystream_pos_ = 0;
    }
    byte ^= keystream_[keystream_pos_++];
  }
}

Result<Bytes> ChaCha20::Apply(const Bytes& key, const Bytes& nonce,
                              const Bytes& data, uint32_t initial_counter) {
  HSIS_ASSIGN_OR_RETURN(ChaCha20 cipher, Create(key, nonce, initial_counter));
  Bytes out = data;
  cipher.Process(out);
  return out;
}

}  // namespace hsis::crypto

#include "crypto/merkle_tree.h"

#include "common/logging.h"
#include "crypto/sha256.h"

namespace hsis::crypto {

Bytes MerkleTree::LeafHash(const Bytes& leaf) {
  Bytes input;
  input.reserve(leaf.size() + 1);
  input.push_back(0x00);
  Append(input, leaf);
  return Sha256::Hash(input);
}

Bytes MerkleTree::NodeHash(const Bytes& left, const Bytes& right) {
  Bytes input;
  input.reserve(left.size() + right.size() + 1);
  input.push_back(0x01);
  Append(input, left);
  Append(input, right);
  return Sha256::Hash(input);
}

MerkleTree MerkleTree::Build(const std::vector<Bytes>& leaves) {
  MerkleTree tree;
  tree.leaves_ = leaves;
  tree.leaf_count_ = leaves.size();
  tree.Rebuild();
  return tree;
}

void MerkleTree::Rebuild() {
  levels_.clear();
  if (leaves_.empty()) {
    levels_.push_back({Sha256::Hash(Bytes{0x02})});
    return;
  }
  std::vector<Bytes> level;
  level.reserve(leaves_.size());
  for (const Bytes& leaf : leaves_) level.push_back(LeafHash(leaf));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const std::vector<Bytes>& below = levels_.back();
    std::vector<Bytes> above;
    above.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i < below.size(); i += 2) {
      if (i + 1 < below.size()) {
        above.push_back(NodeHash(below[i], below[i + 1]));
      } else {
        above.push_back(below[i]);  // odd node promoted
      }
    }
    levels_.push_back(std::move(above));
  }
}

size_t MerkleTree::StateBytes() const {
  size_t total = 0;
  for (const auto& level : levels_) {
    for (const Bytes& node : level) total += node.size();
  }
  return total;
}

Result<MerkleTree::Proof> MerkleTree::Prove(size_t index) const {
  if (index >= leaf_count_) {
    return Status::OutOfRange("leaf index out of range");
  }
  Proof proof;
  proof.leaf_index = index;
  size_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    size_t sibling = pos ^ 1;
    if (sibling < levels_[level].size()) {
      proof.siblings.push_back(levels_[level][sibling]);
    } else {
      proof.siblings.push_back(Bytes{});  // odd promotion: no sibling
    }
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Bytes& root, const Bytes& leaf,
                        const Proof& proof, size_t leaf_count) {
  if (proof.leaf_index >= leaf_count) return false;
  Bytes hash = LeafHash(leaf);
  size_t pos = proof.leaf_index;
  size_t width = leaf_count;
  for (const Bytes& sibling : proof.siblings) {
    if (sibling.empty()) {
      // odd promotion: hash moves up unchanged
    } else if (pos % 2 == 0) {
      hash = NodeHash(hash, sibling);
    } else {
      hash = NodeHash(sibling, hash);
    }
    pos /= 2;
    width = (width + 1) / 2;
  }
  return width == 1 && ConstantTimeEqual(hash, root);
}

Status MerkleTree::UpdateLeaf(size_t index, const Bytes& new_leaf) {
  if (index >= leaf_count_) {
    return Status::OutOfRange("leaf index out of range");
  }
  leaves_[index] = new_leaf;
  // Recompute the root-ward path only: O(log n).
  levels_[0][index] = LeafHash(new_leaf);
  size_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    size_t parent = pos / 2;
    size_t left = parent * 2;
    size_t right = left + 1;
    if (right < levels_[level].size()) {
      levels_[level + 1][parent] =
          NodeHash(levels_[level][left], levels_[level][right]);
    } else {
      levels_[level + 1][parent] = levels_[level][left];
    }
    pos = parent;
  }
  return Status::OK();
}

void MerkleTree::AppendLeaf(const Bytes& leaf) {
  leaves_.push_back(leaf);
  leaf_count_ = leaves_.size();
  Rebuild();
}

}  // namespace hsis::crypto

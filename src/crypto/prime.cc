#include "crypto/prime.h"

#include "common/logging.h"
#include "crypto/modmath.h"

namespace hsis::crypto {

namespace {

constexpr uint64_t kSmallPrimes[] = {
    2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
    59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113};

/// Returns 0 = composite, 1 = prime, 2 = unknown (needs Miller–Rabin).
int TrialDivision(const U256& n) {
  for (uint64_t p : kSmallPrimes) {
    U256 prime(p);
    if (n == prime) return 1;
    if (DivMod(n, prime).remainder.IsZero()) return 0;
  }
  return 2;
}

}  // namespace

bool IsProbablePrime(const U256& n, int rounds, Rng& rng) {
  if (n < U256(2)) return false;
  int td = TrialDivision(n);
  if (td != 2) return td == 1;
  if (!n.IsOdd()) return false;

  // Write n - 1 = d * 2^r with d odd.
  U256 n_minus_1 = n - U256(1);
  U256 d = n_minus_1;
  size_t r = 0;
  while (!d.IsOdd()) {
    d = d >> 1;
    ++r;
  }

  Result<MontgomeryContext> ctx = MontgomeryContext::Create(n);
  HSIS_CHECK(ctx.ok());

  for (int round = 0; round < rounds; ++round) {
    // Random base a in [2, n-2].
    U256 a;
    do {
      Bytes raw = rng.RandomBytes(32);
      a = U256::FromBytesBE(raw);
      a = DivMod(a, n - U256(3)).remainder + U256(2);  // [2, n-2]
    } while (a.IsZero());

    U256 x = ctx->ModExp(a, d);
    if (x == U256(1) || x == n_minus_1) continue;
    bool witness = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      x = ctx->ModMul(x, x);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

Result<U256> GeneratePrime(size_t bits, int rounds, Rng& rng) {
  if (bits < 8 || bits > 256) {
    return Status::InvalidArgument("prime size must be in [8, 256] bits");
  }
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Bytes raw = rng.RandomBytes(32);
    U256 candidate = U256::FromBytesBE(raw);
    // Mask to exactly `bits` bits, set top bit and low bit.
    if (bits < 256) {
      U256 mask = (U256(1) << bits) - U256(1);
      candidate = candidate & mask;
    }
    candidate = candidate | (U256(1) << (bits - 1)) | U256(1);
    if (IsProbablePrime(candidate, rounds, rng)) return candidate;
  }
  return Status::Internal("prime generation did not converge");
}

Result<U256> GenerateSafePrime(size_t bits, int rounds, Rng& rng) {
  if (bits < 9 || bits > 256) {
    return Status::InvalidArgument("safe-prime size must be in [9, 256] bits");
  }
  for (int attempt = 0; attempt < 1000000; ++attempt) {
    HSIS_ASSIGN_OR_RETURN(U256 q, GeneratePrime(bits - 1, 8, rng));
    uint64_t carry = 0;
    U256 p = U256::AddWithCarry(q + q, U256(1), &carry);
    if (carry != 0 || p.BitLength() != bits) continue;
    if (IsProbablePrime(p, rounds, rng) && IsProbablePrime(q, rounds, rng)) {
      return p;
    }
  }
  return Status::Internal("safe-prime generation did not converge");
}

const U256& DefaultSafePrime() {
  // p = 2q + 1, both prime; generated offline (seed 20060707, 48 MR rounds).
  static const U256 kP = [] {
    Result<U256> p = U256::FromHex(
        "cde05cf0f12d7461bba3b68e5d42296d5d4865b7487d53d4702d9d40c60f68d7");
    HSIS_CHECK(p.ok());
    return *p;
  }();
  return kP;
}

const U256& DefaultSubgroupOrder() {
  static const U256 kQ = [] {
    Result<U256> q = U256::FromHex(
        "66f02e787896ba30ddd1db472ea114b6aea432dba43ea9ea3816cea06307b46b");
    HSIS_CHECK(q.ok());
    return *q;
  }();
  return kQ;
}

const U256& SmallSafePrime() {
  static const U256 kP(0x9390aa633eae9f7fULL);
  return kP;
}

}  // namespace hsis::crypto

#ifndef HSIS_CRYPTO_SHA256_H_
#define HSIS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace hsis::crypto {

/// Incremental SHA-256 (FIPS 180-4). Implemented from scratch — the
/// project uses no external crypto libraries. Verified against the NIST
/// test vectors in tests/crypto/sha256_test.cc.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs `data` into the running hash.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The object may not be
  /// updated afterwards; construct a fresh instance for a new message.
  Bytes Finish();

  /// One-shot convenience.
  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_SHA256_H_

#include "crypto/modmath.h"

#include <algorithm>

#include "common/logging.h"

namespace hsis::crypto {

using uint128 = unsigned __int128;

U256 ModAdd(const U256& a, const U256& b, const U256& m) {
  uint64_t carry = 0;
  U256 sum = U256::AddWithCarry(a, b, &carry);
  if (carry != 0 || sum >= m) sum = sum - m;
  return sum;
}

U256 ModSub(const U256& a, const U256& b, const U256& m) {
  uint64_t borrow = 0;
  U256 diff = U256::SubWithBorrow(a, b, &borrow);
  if (borrow != 0) diff = diff + m;
  return diff;
}

U256 ModMulSlow(const U256& a, const U256& b, const U256& m) {
  return U256::MulFull(a, b).Mod(m);
}

U256 Gcd(const U256& a, const U256& b) {
  U256 x = a, y = b;
  while (!y.IsZero()) {
    U256 r = DivMod(x, y).remainder;
    x = y;
    y = r;
  }
  return x;
}

Result<MontgomeryContext> MontgomeryContext::Create(const U256& modulus) {
  if (!modulus.IsOdd() || modulus <= U256(1)) {
    return Status::InvalidArgument(
        "Montgomery context requires an odd modulus > 1");
  }
  // n0inv = -n^{-1} mod 2^64 by Newton–Hensel lifting: each iteration
  // doubles the number of correct low bits of the inverse.
  uint64_t n0 = modulus.limb[0];
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  uint64_t n0inv = ~inv + 1;  // negate mod 2^64

  // r2 = 2^512 mod n, computed by doubling 2^256 mod n 256 times would be
  // slow; instead reduce the 512-bit value (1 << 512 is not representable,
  // so reduce (2^256 mod n)^2 with the generic divider).
  U512 r = U512(1) << 256;
  U256 r_mod_n = r.Mod(modulus);
  U256 r2 = U256::MulFull(r_mod_n, r_mod_n).Mod(modulus);

  return MontgomeryContext(modulus, n0inv, r2);
}

U256 MontgomeryContext::MontMul(const U256& a, const U256& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  // t has 4 + 2 limbs of headroom.
  uint64_t t[6] = {0, 0, 0, 0, 0, 0};

  for (size_t i = 0; i < 4; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < 4; ++j) {
      uint128 cur = static_cast<uint128>(a.limb[i]) * b.limb[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 cur = static_cast<uint128>(t[4]) + carry;
    t[4] = static_cast<uint64_t>(cur);
    t[5] = static_cast<uint64_t>(cur >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
    uint64_t m = t[0] * n0inv_;
    carry = 0;
    for (size_t j = 0; j < 4; ++j) {
      uint128 c2 = static_cast<uint128>(m) * n_.limb[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(c2);
      carry = static_cast<uint64_t>(c2 >> 64);
    }
    cur = static_cast<uint128>(t[4]) + carry;
    t[4] = static_cast<uint64_t>(cur);
    t[5] += static_cast<uint64_t>(cur >> 64);

    // shift t right by one limb
    for (size_t j = 0; j < 5; ++j) t[j] = t[j + 1];
    t[5] = 0;
  }

  U256 result(t[0], t[1], t[2], t[3]);
  if (t[4] != 0 || result >= n_) result = result - n_;
  return result;
}

U256 MontgomeryContext::MontSqr(const U256& a) const {
  // Symmetric schoolbook square into 8 limbs: the 6 cross products are
  // computed once and doubled, then the 4 diagonal squares are added.
  uint64_t t[9] = {0};

  for (size_t i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (size_t j = i + 1; j < 4; ++j) {
      uint128 cur =
          static_cast<uint128>(a.limb[i]) * a.limb[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    t[i + 4] = carry;
  }

  // Double the cross products. The cross sum is (a^2 - sum a[i]^2) / 2
  // < 2^511, so the doubled value still fits in 8 limbs.
  uint64_t top = 0;
  for (size_t k = 0; k < 8; ++k) {
    uint64_t next = t[k] >> 63;
    t[k] = (t[k] << 1) | top;
    top = next;
  }

  uint64_t carry = 0;
  for (size_t i = 0; i < 4; ++i) {
    uint128 sq = static_cast<uint128>(a.limb[i]) * a.limb[i];
    uint128 lo = static_cast<uint128>(t[2 * i]) + static_cast<uint64_t>(sq) +
                 carry;
    t[2 * i] = static_cast<uint64_t>(lo);
    uint128 hi = static_cast<uint128>(t[2 * i + 1]) +
                 static_cast<uint64_t>(sq >> 64) +
                 static_cast<uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<uint64_t>(hi);
    carry = static_cast<uint64_t>(hi >> 64);
  }

  // Separate (SOS) Montgomery reduction of the 512-bit square: zero the
  // low limbs one at a time with multiples of n, then take the high half.
  for (size_t i = 0; i < 4; ++i) {
    uint64_t m = t[i] * n0inv_;
    carry = 0;
    for (size_t j = 0; j < 4; ++j) {
      uint128 cur = static_cast<uint128>(m) * n_.limb[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    for (size_t k = i + 4; carry != 0 && k < 9; ++k) {
      uint128 cur = static_cast<uint128>(t[k]) + carry;
      t[k] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
  }

  U256 result(t[4], t[5], t[6], t[7]);
  if (t[8] != 0 || result >= n_) result = result - n_;
  return result;
}

U256 MontgomeryContext::ToMont(const U256& a) const { return MontMul(a, r2_); }

U256 MontgomeryContext::FromMont(const U256& a) const {
  return MontMul(a, U256(1));
}

U256 MontgomeryContext::ModMul(const U256& a, const U256& b) const {
  return FromMont(MontMul(ToMont(a), ToMont(b)));
}

U256 MontgomeryContext::ModExp(const U256& base, const U256& exp) const {
  // Pre-reduce like ModInversePrime so base >= n and base mod n agree.
  U256 b = (base >= n_) ? DivMod(base, n_).remainder : base;
  size_t bits = exp.BitLength();
  if (bits == 0) return U256(1);  // x^0 == 1, including 0^0 by convention
  if (bits == 1) return b;        // exp == 1
  U256 result = ToMont(U256(1));
  U256 acc = ToMont(b);
  for (size_t i = 0; i < bits; ++i) {
    if (exp.Bit(i)) result = MontMul(result, acc);
    acc = MontMul(acc, acc);
  }
  return FromMont(result);
}

Result<U256> MontgomeryContext::ModInversePrime(const U256& a) const {
  U256 reduced = (a >= n_) ? DivMod(a, n_).remainder : a;
  if (reduced.IsZero()) {
    return Status::InvalidArgument("zero has no modular inverse");
  }
  return ModExp(reduced, n_ - U256(2));
}

namespace {

// Window width minimizing squarings + table mults for an exponent of the
// given bit length; every production exponent (256-bit) lands on w=4.
int AutoWindowBits(size_t bits) {
  if (bits <= 6) return 2;
  if (bits <= 24) return 3;
  if (bits <= 336) return 4;
  return 5;
}

}  // namespace

Result<FixedExponentContext> FixedExponentContext::Create(
    const MontgomeryContext& ctx, const U256& exponent, int window_bits) {
  if (window_bits == 0) window_bits = AutoWindowBits(exponent.BitLength());
  if (window_bits < 1 || window_bits > kMaxWindowBits) {
    return Status::InvalidArgument(
        "fixed-exponent window width must be in [1, 6] (0 = auto)");
  }
  return FixedExponentContext(ctx, exponent, window_bits);
}

FixedExponentContext::FixedExponentContext(const MontgomeryContext& ctx,
                                           const U256& exponent,
                                           int window_bits)
    : ctx_(ctx),
      exp_(exponent),
      window_bits_(window_bits),
      table_size_(1),
      mont_one_(ctx.ToMont(U256(1))) {
  // Slice the exponent into w-bit digits from the most significant bit
  // down; the top digit absorbs the ragged remainder, so every later
  // window is exactly w squarings. An exponent of 0 yields an empty
  // schedule.
  const size_t bits = exp_.BitLength();
  const size_t w = static_cast<size_t>(window_bits_);
  const size_t windows = (bits + w - 1) / w;
  digits_.reserve(windows);
  for (size_t i = 0; i < windows; ++i) {
    const size_t lo = (windows - 1 - i) * w;
    const size_t hi = std::min(lo + w, bits);
    uint8_t digit = 0;
    for (size_t b = hi; b-- > lo;) {
      digit = static_cast<uint8_t>((digit << 1) | (exp_.Bit(b) ? 1 : 0));
    }
    digits_.push_back(digit);
    table_size_ = std::max(table_size_, static_cast<size_t>(digit) + 1);
  }
}

U256 FixedExponentContext::ModExp(const U256& base) const {
  // Same pre-reduction and exp==0/1 short-circuits as the naive ladder.
  U256 b = (base >= ctx_.modulus()) ? DivMod(base, ctx_.modulus()).remainder
                                    : base;
  if (digits_.empty()) return U256(1);
  if (digits_.size() == 1 && digits_[0] == 1) return b;

  // Power table in the Montgomery domain, built only up to the largest
  // digit the schedule actually uses (<= 2^w entries).
  U256 table[size_t{1} << kMaxWindowBits];
  table[0] = mont_one_;
  if (table_size_ > 1) table[1] = ctx_.ToMont(b);
  for (size_t i = 2; i < table_size_; ++i) {
    table[i] = ctx_.MontMul(table[i - 1], table[1]);
  }

  // Left-to-right walk: the leading digit seeds the accumulator, every
  // later window costs w Montgomery squarings plus one table product
  // when its digit is nonzero.
  U256 acc = table[digits_[0]];
  for (size_t i = 1; i < digits_.size(); ++i) {
    for (int s = 0; s < window_bits_; ++s) acc = ctx_.MontSqr(acc);
    if (digits_[i] != 0) acc = ctx_.MontMul(acc, table[digits_[i]]);
  }
  return ctx_.FromMont(acc);
}

}  // namespace hsis::crypto

#include "crypto/modmath.h"

#include "common/logging.h"

namespace hsis::crypto {

using uint128 = unsigned __int128;

U256 ModAdd(const U256& a, const U256& b, const U256& m) {
  uint64_t carry = 0;
  U256 sum = U256::AddWithCarry(a, b, &carry);
  if (carry != 0 || sum >= m) sum = sum - m;
  return sum;
}

U256 ModSub(const U256& a, const U256& b, const U256& m) {
  uint64_t borrow = 0;
  U256 diff = U256::SubWithBorrow(a, b, &borrow);
  if (borrow != 0) diff = diff + m;
  return diff;
}

U256 ModMulSlow(const U256& a, const U256& b, const U256& m) {
  return U256::MulFull(a, b).Mod(m);
}

U256 Gcd(const U256& a, const U256& b) {
  U256 x = a, y = b;
  while (!y.IsZero()) {
    U256 r = DivMod(x, y).remainder;
    x = y;
    y = r;
  }
  return x;
}

Result<MontgomeryContext> MontgomeryContext::Create(const U256& modulus) {
  if (!modulus.IsOdd() || modulus <= U256(1)) {
    return Status::InvalidArgument(
        "Montgomery context requires an odd modulus > 1");
  }
  // n0inv = -n^{-1} mod 2^64 by Newton–Hensel lifting: each iteration
  // doubles the number of correct low bits of the inverse.
  uint64_t n0 = modulus.limb[0];
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  uint64_t n0inv = ~inv + 1;  // negate mod 2^64

  // r2 = 2^512 mod n, computed by doubling 2^256 mod n 256 times would be
  // slow; instead reduce the 512-bit value (1 << 512 is not representable,
  // so reduce (2^256 mod n)^2 with the generic divider).
  U512 r = U512(1) << 256;
  U256 r_mod_n = r.Mod(modulus);
  U256 r2 = U256::MulFull(r_mod_n, r_mod_n).Mod(modulus);

  return MontgomeryContext(modulus, n0inv, r2);
}

U256 MontgomeryContext::MontMul(const U256& a, const U256& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  // t has 4 + 2 limbs of headroom.
  uint64_t t[6] = {0, 0, 0, 0, 0, 0};

  for (size_t i = 0; i < 4; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < 4; ++j) {
      uint128 cur = static_cast<uint128>(a.limb[i]) * b.limb[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 cur = static_cast<uint128>(t[4]) + carry;
    t[4] = static_cast<uint64_t>(cur);
    t[5] = static_cast<uint64_t>(cur >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
    uint64_t m = t[0] * n0inv_;
    carry = 0;
    for (size_t j = 0; j < 4; ++j) {
      uint128 c2 = static_cast<uint128>(m) * n_.limb[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(c2);
      carry = static_cast<uint64_t>(c2 >> 64);
    }
    cur = static_cast<uint128>(t[4]) + carry;
    t[4] = static_cast<uint64_t>(cur);
    t[5] += static_cast<uint64_t>(cur >> 64);

    // shift t right by one limb
    for (size_t j = 0; j < 5; ++j) t[j] = t[j + 1];
    t[5] = 0;
  }

  U256 result(t[0], t[1], t[2], t[3]);
  if (t[4] != 0 || result >= n_) result = result - n_;
  return result;
}

U256 MontgomeryContext::ToMont(const U256& a) const { return MontMul(a, r2_); }

U256 MontgomeryContext::FromMont(const U256& a) const {
  return MontMul(a, U256(1));
}

U256 MontgomeryContext::ModMul(const U256& a, const U256& b) const {
  return FromMont(MontMul(ToMont(a), ToMont(b)));
}

U256 MontgomeryContext::ModExp(const U256& base, const U256& exp) const {
  U256 result = ToMont(U256(1));
  U256 acc = ToMont(base);
  size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.Bit(i)) result = MontMul(result, acc);
    acc = MontMul(acc, acc);
  }
  return FromMont(result);
}

Result<U256> MontgomeryContext::ModInversePrime(const U256& a) const {
  U256 reduced = (a >= n_) ? DivMod(a, n_).remainder : a;
  if (reduced.IsZero()) {
    return Status::InvalidArgument("zero has no modular inverse");
  }
  return ModExp(reduced, n_ - U256(2));
}

}  // namespace hsis::crypto

#ifndef HSIS_CRYPTO_PARALLEL_MODEXP_H_
#define HSIS_CRYPTO_PARALLEL_MODEXP_H_

#include <functional>
#include <span>

#include "common/bytes.h"
#include "common/u256.h"
#include "crypto/commutative_cipher.h"

/// \file
/// \brief Deterministic parallel batch stages for the commutative
/// cipher — the modexp hot loop of the streamed intersection pipeline.
///
/// Per-tuple SRA encryption is a full 256-bit modular exponentiation, so
/// at production data sizes (10^5–10^6 tuples) the crypto throughput,
/// not the set logic, bounds the protocol. Both stages here follow the
/// batched-crypto idiom: amortize the fixed per-batch cost, fan the
/// independent exponentiations out over `common::ParallelFor`, and write
/// each result into its ordered output slot, so a batch is bit-identical
/// for every thread count (the determinism contract of
/// common/parallel.h). Encryption itself is deterministic — no RNG is
/// consumed — which is what makes the fan-out safe.

namespace hsis::crypto {

/// out[i] = cipher.Encrypt(in[i]) for every i, fanned out over
/// `threads` workers (0 = hardware concurrency; resolved via
/// `common::ResolveThreadCount`). `out.size()` must equal `in.size()`;
/// `out` must not alias `in`.
void EncryptBatch(const CommutativeCipher& cipher, std::span<const U256> in,
                  std::span<U256> out, int threads);

/// Fused hash-to-group + encrypt over a batch of opaque byte strings:
/// out[i] = cipher.Encrypt(HashToElement(get(i))). `get(i)` must be safe
/// to call concurrently for distinct i (a read-only indexed view such as
/// a dataset chunk).
void HashEncryptBatch(const CommutativeCipher& cipher, size_t n,
                      const std::function<const Bytes&(size_t)>& get,
                      std::span<U256> out, int threads);

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_PARALLEL_MODEXP_H_

#ifndef HSIS_CRYPTO_PARALLEL_MODEXP_H_
#define HSIS_CRYPTO_PARALLEL_MODEXP_H_

#include <cassert>
#include <span>

#include "common/bytes.h"
#include "common/parallel.h"
#include "common/u256.h"
#include "crypto/commutative_cipher.h"

/// \file
/// \brief Deterministic parallel batch stages for the commutative
/// cipher — the modexp hot loop of the streamed intersection pipeline.
///
/// Per-tuple SRA encryption is a full 256-bit modular exponentiation, so
/// at production data sizes (10^5–10^6 tuples) the crypto throughput,
/// not the set logic, bounds the protocol. Both stages here follow the
/// batched-crypto idiom: amortize the fixed per-batch cost, fan the
/// independent exponentiations out over `common::ParallelForTiles`, and
/// write each result into its ordered output slot, so a batch is
/// bit-identical for every thread count (the determinism contract of
/// common/parallel.h). Encryption itself is deterministic — no RNG is
/// consumed — which is what makes the fan-out safe.
///
/// The element accessor of `HashEncryptBatch` is a template parameter
/// (not `std::function`), and both stages hand the pool whole tiles of
/// `kModexpBatchTile` elements: the only indirect call is the per-tile
/// dispatch into the worker body, never per element.

namespace hsis::crypto {

/// Elements per scheduling unit. One modexp is microseconds of work, so
/// a tile this size makes the per-tile dispatch cost invisible while
/// still splitting a 4096-element protocol chunk across every worker.
inline constexpr size_t kModexpBatchTile = 64;

/// out[i] = cipher.Encrypt(in[i]) for every i, fanned out over
/// `threads` workers (0 = hardware concurrency; resolved via
/// `common::ResolveThreadCount`). `out.size()` must equal `in.size()`;
/// `out` must not alias `in`.
void EncryptBatch(const CommutativeCipher& cipher, std::span<const U256> in,
                  std::span<U256> out, int threads);

/// Fused hash-to-group + encrypt over a batch of opaque byte strings:
/// out[i] = cipher.Encrypt(HashToElement(get(i))). `Get` is any callable
/// `size_t -> const Bytes&` (a read-only indexed view such as a dataset
/// chunk); it is instantiated directly into the tile loop, and must be
/// safe to call concurrently for distinct i.
template <typename Get>
void HashEncryptBatch(const CommutativeCipher& cipher, size_t n,
                      const Get& get, std::span<U256> out, int threads) {
  assert(out.size() == n);
  const PrimeGroup& group = cipher.group();
  common::ParallelForTiles(threads, n, kModexpBatchTile,
                           [&](size_t lo, size_t hi) {
                             for (size_t i = lo; i < hi; ++i) {
                               out[i] = cipher.Encrypt(
                                   group.HashToElement(get(i)));
                             }
                           });
}

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_PARALLEL_MODEXP_H_

#ifndef HSIS_CRYPTO_GROUP_H_
#define HSIS_CRYPTO_GROUP_H_

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "common/u256.h"
#include "crypto/modmath.h"

namespace hsis::crypto {

/// The group of quadratic residues modulo a safe prime p = 2q + 1.
///
/// Because q is prime, the QR subgroup has prime order q: every element
/// except 1 generates it, every exponent in [1, q) is invertible, and
/// exponentiation x -> x^e is a bijection — exactly the structure the
/// SRA/Pohlig–Hellman commutative cipher (and the MSet-Mu-Hash) need.
class PrimeGroup {
 public:
  /// Creates a group from a safe prime. Verifies oddness and, when
  /// `check_primality` is set, runs Miller–Rabin on p and q.
  static Result<PrimeGroup> Create(const U256& safe_prime,
                                   bool check_primality = false);

  /// The library default: a fixed 256-bit safe-prime group.
  static const PrimeGroup& Default();

  /// A 64-bit safe-prime group for fast unit tests. Not secure.
  static const PrimeGroup& SmallTestGroup();

  const U256& modulus() const { return ctx_.modulus(); }
  const U256& order() const { return order_; }

  /// Deterministically maps arbitrary bytes to a group element:
  /// x = SHA-256-derived value mod p, squared to land in the QR subgroup
  /// (re-derived in the vanishingly unlikely event x == 0).
  U256 HashToElement(const Bytes& data) const;

  /// True iff `a` is in [1, p) and a^q == 1 (i.e. a is in the subgroup).
  bool IsElement(const U256& a) const;

  /// Group operations. Inputs must be group elements.
  U256 Mul(const U256& a, const U256& b) const { return ctx_.ModMul(a, b); }
  U256 Exp(const U256& base, const U256& e) const { return ctx_.ModExp(base, e); }
  Result<U256> Inverse(const U256& a) const { return ctx_.ModInversePrime(a); }

  /// Windowed exponentiation context for a fixed exponent over the field
  /// modulus p. `FixedExp(e).ModExp(x)` returns exactly `Exp(x, e)` for
  /// every x, with the per-exponent window schedule amortized across
  /// calls — the fast path for the commutative cipher's per-key streams.
  Result<FixedExponentContext> FixedExp(const U256& e) const {
    return FixedExponentContext::Create(ctx_, e);
  }

  /// Uniform exponent in [1, q).
  U256 RandomExponent(Rng& rng) const;

  /// Inverse of exponent e modulo the (prime) group order q.
  Result<U256> InverseExponent(const U256& e) const;

  /// Identity element.
  static U256 One() { return U256(1); }

 private:
  PrimeGroup(MontgomeryContext ctx, MontgomeryContext order_ctx, U256 order)
      : ctx_(std::move(ctx)),
        order_ctx_(std::move(order_ctx)),
        order_(order) {}

  MontgomeryContext ctx_;        // arithmetic mod p
  MontgomeryContext order_ctx_;  // arithmetic mod q (for exponent inverses)
  U256 order_;                   // q = (p - 1) / 2
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_GROUP_H_

#include "crypto/hmac_sha256.h"

#include "crypto/sha256.h"

namespace hsis::crypto {

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  constexpr size_t kBlock = Sha256::kBlockSize;

  Bytes k = key;
  if (k.size() > kBlock) k = Sha256::Hash(k);
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  Bytes inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

Bytes HmacPrf(const Bytes& key, uint8_t tag, const Bytes& message) {
  Bytes tagged;
  tagged.reserve(message.size() + 1);
  tagged.push_back(tag);
  Append(tagged, message);
  return HmacSha256(key, tagged);
}

Bytes DeriveKey(const Bytes& master, std::string_view label, size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  uint32_t counter = 1;
  while (out.size() < out_len) {
    Bytes input = ToBytes(label);
    AppendUint32BE(input, counter++);
    Bytes block = HmacSha256(master, input);
    size_t take = std::min(block.size(), out_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<ptrdiff_t>(take));
  }
  return out;
}

}  // namespace hsis::crypto

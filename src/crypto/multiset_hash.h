#ifndef HSIS_CRYPTO_MULTISET_HASH_H_
#define HSIS_CRYPTO_MULTISET_HASH_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "common/u256.h"
#include "crypto/group.h"

namespace hsis::crypto {

/// The four incremental multiset hash constructions of Clarke, Devadas,
/// van Dijk, Gassend & Suh (Asiacrypt 2003), which the paper's auditing
/// device is built on (Section 6.1).
enum class MultisetHashScheme : uint8_t {
  /// Keyed, randomized: h = H_K(0,r) XOR (XOR over H_K(1,b)). Set-collision
  /// resistant against parties without K.
  kXor = 1,
  /// Keyed, randomized: h = H_K(0,r) + sum H_K(1,b) mod 2^256.
  /// Multiset-collision resistant against parties without K.
  kAdd = 2,
  /// Unkeyed: h = product of hash-to-group(b) in the QR subgroup mod a
  /// 256-bit safe prime. Multiset-collision resistant against *everyone*
  /// under the discrete-log assumption — the right choice when the hashing
  /// party itself is the adversary, as in this paper. Library default.
  kMu = 3,
  /// Unkeyed: h = per-word vector sum of SHA-256(b) in (Z_2^64)^4.
  /// Cheapest updates; collision resistance only against random inputs.
  kVAdd = 4,
};

/// Returns a stable display name ("MSet-Mu-Hash", ...).
const char* MultisetHashSchemeName(MultisetHashScheme scheme);

/// An incremental multiset hash accumulator: the triple (H, +H, ==H) of
/// Definition 3 in the paper.
///
/// * Compression — state is O(1) (<= 48 bytes + nonce) regardless of the
///   multiset size.
/// * Comparability — `Equivalent` implements ==H, derandomizing the
///   keyed randomized schemes before comparing.
/// * Incrementality — `Add` folds in one element; `Union` implements +H.
class MultisetHash {
 public:
  virtual ~MultisetHash() = default;

  virtual MultisetHashScheme scheme() const = 0;

  /// H(M ∪ {element}) from H(M): folds one element into the accumulator.
  virtual void Add(const Bytes& element) = 0;

  /// Inverse of `Add` where the scheme supports deletion. All four
  /// schemes here do (XOR is self-inverse; Add/VAdd subtract; Mu
  /// multiplies by the group inverse).
  virtual Status Remove(const Bytes& element) = 0;

  /// +H: folds another accumulator of the same scheme (and key) in,
  /// yielding H(M ∪ M').
  virtual Status Union(const MultisetHash& other) = 0;

  /// ==H: true iff both accumulators hash the same multiset (up to the
  /// scheme's collision resistance).
  virtual bool Equivalent(const MultisetHash& other) const = 0;

  /// Number of elements folded in (tracked mod 2^64).
  virtual uint64_t count() const = 0;

  /// Serialized accumulator: scheme byte, count, state, nonce. This is
  /// the "hash value H_i(D_i)" a party reports alongside its encrypted
  /// dataset, and what the auditing device stores as HV_i.
  virtual Bytes Serialize() const = 0;

  virtual std::unique_ptr<MultisetHash> Clone() const = 0;
};

/// A concrete choice of scheme + key material; corresponds to the paper's
/// "TG_i picks H_i and announces it publicly". All accumulators that must
/// interoperate (tuple generator, player, auditing device, judge) are
/// created from the same family.
class MultisetHashFamily {
 public:
  /// Creates a family. Keyed schemes (kXor, kAdd) require a non-empty
  /// key; unkeyed schemes (kMu, kVAdd) require an empty one. kMu uses
  /// `group` (defaults to the library's 256-bit safe-prime group).
  static Result<MultisetHashFamily> Create(MultisetHashScheme scheme,
                                           Bytes key = {});
  static Result<MultisetHashFamily> CreateMu(const PrimeGroup& group);

  MultisetHashScheme scheme() const { return scheme_; }

  /// A fresh accumulator for the empty multiset (zero nonce).
  std::unique_ptr<MultisetHash> NewHash() const;

  /// A fresh accumulator with a random nonce (keyed randomized schemes;
  /// for unkeyed schemes this is identical to `NewHash`).
  std::unique_ptr<MultisetHash> NewHashRandomized(Rng& rng) const;

  /// Reconstructs an accumulator from `Serialize()` output. Fails on
  /// scheme mismatch or malformed bytes.
  Result<std::unique_ptr<MultisetHash>> Deserialize(const Bytes& data) const;

  /// One-shot convenience: hash a whole multiset.
  std::unique_ptr<MultisetHash> HashMultiset(
      const std::vector<Bytes>& elements) const;

 private:
  MultisetHashFamily(MultisetHashScheme scheme, Bytes key, PrimeGroup group)
      : scheme_(scheme), key_(std::move(key)), group_(std::move(group)) {}

  MultisetHashScheme scheme_;
  Bytes key_;
  PrimeGroup group_;
};

}  // namespace hsis::crypto

#endif  // HSIS_CRYPTO_MULTISET_HASH_H_

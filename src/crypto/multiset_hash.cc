#include "crypto/multiset_hash.h"

#include "common/logging.h"
#include "crypto/hmac_sha256.h"
#include "crypto/sha256.h"

namespace hsis::crypto {

namespace {

constexpr size_t kNonceSize = 16;

// ---------------------------------------------------------------------------
// MSet-XOR-Hash / MSet-Add-Hash (keyed, randomized)
//
// State: (h, count, r) with
//   kXor: h = H_K(0, r) XOR XOR_{b in M} H_K(1, b)
//   kAdd: h = H_K(0, r) + SUM_{b in M} H_K(1, b)   (mod 2^256)
// where H_K(tag, x) = HMAC-SHA256(K, tag || x) read as a U256.
// ---------------------------------------------------------------------------

class KeyedMultisetHash final : public MultisetHash {
 public:
  KeyedMultisetHash(MultisetHashScheme scheme, Bytes key, Bytes nonce)
      : scheme_(scheme), key_(std::move(key)), nonce_(std::move(nonce)) {
    h_ = NonceMask();
  }

  KeyedMultisetHash(MultisetHashScheme scheme, Bytes key, Bytes nonce,
                    U256 h, uint64_t count)
      : scheme_(scheme),
        key_(std::move(key)),
        nonce_(std::move(nonce)),
        h_(h),
        count_(count) {}

  MultisetHashScheme scheme() const override { return scheme_; }

  void Add(const Bytes& element) override {
    U256 e = ElementHash(element);
    h_ = (scheme_ == MultisetHashScheme::kXor) ? (h_ ^ e) : (h_ + e);
    ++count_;
  }

  Status Remove(const Bytes& element) override {
    U256 e = ElementHash(element);
    h_ = (scheme_ == MultisetHashScheme::kXor) ? (h_ ^ e) : (h_ - e);
    --count_;
    return Status::OK();
  }

  Status Union(const MultisetHash& other) override {
    if (other.scheme() != scheme_) {
      return Status::InvalidArgument("multiset hash scheme mismatch in Union");
    }
    const auto& rhs = static_cast<const KeyedMultisetHash&>(other);
    // Strip the other accumulator's nonce mask so that exactly one mask
    // (ours) remains — this is the +H operator for the randomized schemes.
    U256 other_core = rhs.Derandomized();
    if (scheme_ == MultisetHashScheme::kXor) {
      h_ = h_ ^ other_core;
    } else {
      h_ = h_ + other_core;
    }
    count_ += rhs.count_;
    return Status::OK();
  }

  bool Equivalent(const MultisetHash& other) const override {
    if (other.scheme() != scheme_) return false;
    const auto& rhs = static_cast<const KeyedMultisetHash&>(other);
    return count_ == rhs.count_ && Derandomized() == rhs.Derandomized();
  }

  uint64_t count() const override { return count_; }

  Bytes Serialize() const override {
    Bytes out;
    out.push_back(static_cast<uint8_t>(scheme_));
    AppendUint64BE(out, count_);
    Append(out, h_.ToBytesBE());
    AppendLengthPrefixed(out, nonce_);
    return out;
  }

  std::unique_ptr<MultisetHash> Clone() const override {
    return std::make_unique<KeyedMultisetHash>(scheme_, key_, nonce_, h_,
                                               count_);
  }

 private:
  U256 ElementHash(const Bytes& element) const {
    return U256::FromBytesBE(HmacPrf(key_, 0x01, element));
  }

  U256 NonceMask() const {
    if (nonce_.empty()) return U256();  // zero nonce => zero mask
    return U256::FromBytesBE(HmacPrf(key_, 0x00, nonce_));
  }

  U256 Derandomized() const {
    U256 mask = NonceMask();
    return (scheme_ == MultisetHashScheme::kXor) ? (h_ ^ mask) : (h_ - mask);
  }

  MultisetHashScheme scheme_;
  Bytes key_;
  Bytes nonce_;
  U256 h_;
  uint64_t count_ = 0;
};

// ---------------------------------------------------------------------------
// MSet-Mu-Hash (unkeyed, multiplicative in the QR subgroup mod p)
// ---------------------------------------------------------------------------

class MuMultisetHash final : public MultisetHash {
 public:
  explicit MuMultisetHash(PrimeGroup group)
      : group_(std::move(group)), h_(PrimeGroup::One()) {}

  MuMultisetHash(PrimeGroup group, U256 h, uint64_t count)
      : group_(std::move(group)), h_(h), count_(count) {}

  MultisetHashScheme scheme() const override {
    return MultisetHashScheme::kMu;
  }

  void Add(const Bytes& element) override {
    h_ = group_.Mul(h_, group_.HashToElement(element));
    ++count_;
  }

  Status Remove(const Bytes& element) override {
    Result<U256> inv = group_.Inverse(group_.HashToElement(element));
    HSIS_RETURN_IF_ERROR(inv.status());
    h_ = group_.Mul(h_, *inv);
    --count_;
    return Status::OK();
  }

  Status Union(const MultisetHash& other) override {
    if (other.scheme() != MultisetHashScheme::kMu) {
      return Status::InvalidArgument("multiset hash scheme mismatch in Union");
    }
    const auto& rhs = static_cast<const MuMultisetHash&>(other);
    if (rhs.group_.modulus() != group_.modulus()) {
      return Status::InvalidArgument("Mu-hash group mismatch in Union");
    }
    h_ = group_.Mul(h_, rhs.h_);
    count_ += rhs.count_;
    return Status::OK();
  }

  bool Equivalent(const MultisetHash& other) const override {
    if (other.scheme() != MultisetHashScheme::kMu) return false;
    const auto& rhs = static_cast<const MuMultisetHash&>(other);
    return count_ == rhs.count_ && h_ == rhs.h_ &&
           group_.modulus() == rhs.group_.modulus();
  }

  uint64_t count() const override { return count_; }

  Bytes Serialize() const override {
    Bytes out;
    out.push_back(static_cast<uint8_t>(MultisetHashScheme::kMu));
    AppendUint64BE(out, count_);
    Append(out, h_.ToBytesBE());
    AppendLengthPrefixed(out, Bytes{});  // no nonce
    return out;
  }

  std::unique_ptr<MultisetHash> Clone() const override {
    return std::make_unique<MuMultisetHash>(group_, h_, count_);
  }

 private:
  PrimeGroup group_;
  U256 h_;
  uint64_t count_ = 0;
};

// ---------------------------------------------------------------------------
// MSet-VAdd-Hash (unkeyed, per-word vector addition)
// ---------------------------------------------------------------------------

class VAddMultisetHash final : public MultisetHash {
 public:
  VAddMultisetHash() = default;
  VAddMultisetHash(std::array<uint64_t, 4> words, uint64_t count)
      : words_(words), count_(count) {}

  MultisetHashScheme scheme() const override {
    return MultisetHashScheme::kVAdd;
  }

  void Add(const Bytes& element) override {
    std::array<uint64_t, 4> e = ElementWords(element);
    for (size_t i = 0; i < 4; ++i) words_[i] += e[i];
    ++count_;
  }

  Status Remove(const Bytes& element) override {
    std::array<uint64_t, 4> e = ElementWords(element);
    for (size_t i = 0; i < 4; ++i) words_[i] -= e[i];
    --count_;
    return Status::OK();
  }

  Status Union(const MultisetHash& other) override {
    if (other.scheme() != MultisetHashScheme::kVAdd) {
      return Status::InvalidArgument("multiset hash scheme mismatch in Union");
    }
    const auto& rhs = static_cast<const VAddMultisetHash&>(other);
    for (size_t i = 0; i < 4; ++i) words_[i] += rhs.words_[i];
    count_ += rhs.count_;
    return Status::OK();
  }

  bool Equivalent(const MultisetHash& other) const override {
    if (other.scheme() != MultisetHashScheme::kVAdd) return false;
    const auto& rhs = static_cast<const VAddMultisetHash&>(other);
    return count_ == rhs.count_ && words_ == rhs.words_;
  }

  uint64_t count() const override { return count_; }

  Bytes Serialize() const override {
    Bytes out;
    out.push_back(static_cast<uint8_t>(MultisetHashScheme::kVAdd));
    AppendUint64BE(out, count_);
    for (uint64_t w : words_) AppendUint64BE(out, w);
    AppendLengthPrefixed(out, Bytes{});
    return out;
  }

  std::unique_ptr<MultisetHash> Clone() const override {
    return std::make_unique<VAddMultisetHash>(words_, count_);
  }

 private:
  static std::array<uint64_t, 4> ElementWords(const Bytes& element) {
    Bytes digest = Sha256::Hash(element);
    std::array<uint64_t, 4> out;
    for (size_t i = 0; i < 4; ++i) out[i] = ReadUint64BE(digest, 8 * i);
    return out;
  }

  std::array<uint64_t, 4> words_{0, 0, 0, 0};
  uint64_t count_ = 0;
};

}  // namespace

const char* MultisetHashSchemeName(MultisetHashScheme scheme) {
  switch (scheme) {
    case MultisetHashScheme::kXor:
      return "MSet-XOR-Hash";
    case MultisetHashScheme::kAdd:
      return "MSet-Add-Hash";
    case MultisetHashScheme::kMu:
      return "MSet-Mu-Hash";
    case MultisetHashScheme::kVAdd:
      return "MSet-VAdd-Hash";
  }
  return "?";
}

Result<MultisetHashFamily> MultisetHashFamily::Create(
    MultisetHashScheme scheme, Bytes key) {
  bool keyed = scheme == MultisetHashScheme::kXor ||
               scheme == MultisetHashScheme::kAdd;
  if (keyed && key.empty()) {
    return Status::InvalidArgument(
        "keyed multiset hash scheme requires a non-empty key");
  }
  if (!keyed && !key.empty()) {
    return Status::InvalidArgument(
        "unkeyed multiset hash scheme takes no key");
  }
  return MultisetHashFamily(scheme, std::move(key), PrimeGroup::Default());
}

Result<MultisetHashFamily> MultisetHashFamily::CreateMu(
    const PrimeGroup& group) {
  return MultisetHashFamily(MultisetHashScheme::kMu, Bytes{}, group);
}

std::unique_ptr<MultisetHash> MultisetHashFamily::NewHash() const {
  switch (scheme_) {
    case MultisetHashScheme::kXor:
    case MultisetHashScheme::kAdd:
      return std::make_unique<KeyedMultisetHash>(scheme_, key_, Bytes{});
    case MultisetHashScheme::kMu:
      return std::make_unique<MuMultisetHash>(group_);
    case MultisetHashScheme::kVAdd:
      return std::make_unique<VAddMultisetHash>();
  }
  HSIS_LOG_FATAL << "unknown multiset hash scheme";
  return nullptr;
}

std::unique_ptr<MultisetHash> MultisetHashFamily::NewHashRandomized(
    Rng& rng) const {
  switch (scheme_) {
    case MultisetHashScheme::kXor:
    case MultisetHashScheme::kAdd:
      return std::make_unique<KeyedMultisetHash>(scheme_, key_,
                                                 rng.RandomBytes(kNonceSize));
    default:
      return NewHash();
  }
}

Result<std::unique_ptr<MultisetHash>> MultisetHashFamily::Deserialize(
    const Bytes& data) const {
  if (data.size() < 1 + 8) return Status::InvalidArgument("truncated hash");
  auto scheme = static_cast<MultisetHashScheme>(data[0]);
  if (scheme != scheme_) {
    return Status::InvalidArgument("serialized scheme does not match family");
  }
  uint64_t count = ReadUint64BE(data, 1);
  size_t offset = 9;

  switch (scheme_) {
    case MultisetHashScheme::kXor:
    case MultisetHashScheme::kAdd: {
      if (data.size() < offset + 32) {
        return Status::InvalidArgument("truncated keyed hash state");
      }
      Bytes state(data.begin() + static_cast<ptrdiff_t>(offset),
                  data.begin() + static_cast<ptrdiff_t>(offset + 32));
      offset += 32;
      HSIS_ASSIGN_OR_RETURN(Bytes nonce, ReadLengthPrefixed(data, &offset));
      return std::unique_ptr<MultisetHash>(new KeyedMultisetHash(
          scheme_, key_, std::move(nonce), U256::FromBytesBE(state), count));
    }
    case MultisetHashScheme::kMu: {
      if (data.size() < offset + 32) {
        return Status::InvalidArgument("truncated Mu hash state");
      }
      Bytes state(data.begin() + static_cast<ptrdiff_t>(offset),
                  data.begin() + static_cast<ptrdiff_t>(offset + 32));
      U256 h = U256::FromBytesBE(state);
      if (!h.IsZero() && h >= group_.modulus()) {
        return Status::InvalidArgument("Mu hash state out of range");
      }
      return std::unique_ptr<MultisetHash>(
          new MuMultisetHash(group_, h, count));
    }
    case MultisetHashScheme::kVAdd: {
      if (data.size() < offset + 32) {
        return Status::InvalidArgument("truncated VAdd hash state");
      }
      std::array<uint64_t, 4> words;
      for (size_t i = 0; i < 4; ++i) {
        words[i] = ReadUint64BE(data, offset + 8 * i);
      }
      return std::unique_ptr<MultisetHash>(
          new VAddMultisetHash(words, count));
    }
  }
  return Status::InvalidArgument("unknown multiset hash scheme");
}

std::unique_ptr<MultisetHash> MultisetHashFamily::HashMultiset(
    const std::vector<Bytes>& elements) const {
  std::unique_ptr<MultisetHash> h = NewHash();
  for (const Bytes& e : elements) h->Add(e);
  return h;
}

}  // namespace hsis::crypto

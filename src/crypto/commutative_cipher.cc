#include "crypto/commutative_cipher.h"

namespace hsis::crypto {

Result<CommutativeCipher> CommutativeCipher::Create(const PrimeGroup& group,
                                                    Rng& rng) {
  U256 key = group.RandomExponent(rng);
  return CreateWithKey(group, key);
}

Result<CommutativeCipher> CommutativeCipher::CreateWithKey(
    const PrimeGroup& group, const U256& key) {
  if (key.IsZero() || key >= group.order()) {
    return Status::InvalidArgument("commutative key must be in [1, q)");
  }
  HSIS_ASSIGN_OR_RETURN(U256 inverse, group.InverseExponent(key));
  HSIS_ASSIGN_OR_RETURN(FixedExponentContext encrypt_ctx, group.FixedExp(key));
  HSIS_ASSIGN_OR_RETURN(FixedExponentContext decrypt_ctx,
                        group.FixedExp(inverse));
  return CommutativeCipher(group, key, inverse, std::move(encrypt_ctx),
                           std::move(decrypt_ctx));
}

U256 CommutativeCipher::Encrypt(const U256& element) const {
  return encrypt_ctx_.ModExp(element);
}

U256 CommutativeCipher::Decrypt(const U256& element) const {
  return decrypt_ctx_.ModExp(element);
}

U256 CommutativeCipher::EncryptBytes(const Bytes& data) const {
  return Encrypt(group_.HashToElement(data));
}

}  // namespace hsis::crypto

#include "crypto/commutative_cipher.h"

namespace hsis::crypto {

Result<CommutativeCipher> CommutativeCipher::Create(const PrimeGroup& group,
                                                    Rng& rng) {
  U256 key = group.RandomExponent(rng);
  return CreateWithKey(group, key);
}

Result<CommutativeCipher> CommutativeCipher::CreateWithKey(
    const PrimeGroup& group, const U256& key) {
  if (key.IsZero() || key >= group.order()) {
    return Status::InvalidArgument("commutative key must be in [1, q)");
  }
  HSIS_ASSIGN_OR_RETURN(U256 inverse, group.InverseExponent(key));
  return CommutativeCipher(group, key, inverse);
}

U256 CommutativeCipher::Encrypt(const U256& element) const {
  return group_.Exp(element, key_);
}

U256 CommutativeCipher::Decrypt(const U256& element) const {
  return group_.Exp(element, inverse_key_);
}

U256 CommutativeCipher::EncryptBytes(const Bytes& data) const {
  return Encrypt(group_.HashToElement(data));
}

}  // namespace hsis::crypto

#include "crypto/parallel_modexp.h"

#include <cassert>

#include "common/parallel.h"

namespace hsis::crypto {

void EncryptBatch(const CommutativeCipher& cipher, std::span<const U256> in,
                  std::span<U256> out, int threads) {
  assert(in.size() == out.size());
  common::ParallelFor(threads, in.size(),
                      [&](size_t i) { out[i] = cipher.Encrypt(in[i]); });
}

void HashEncryptBatch(const CommutativeCipher& cipher, size_t n,
                      const std::function<const Bytes&(size_t)>& get,
                      std::span<U256> out, int threads) {
  assert(out.size() == n);
  const PrimeGroup& group = cipher.group();
  common::ParallelFor(threads, n, [&](size_t i) {
    out[i] = cipher.Encrypt(group.HashToElement(get(i)));
  });
}

}  // namespace hsis::crypto

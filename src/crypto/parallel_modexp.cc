#include "crypto/parallel_modexp.h"

namespace hsis::crypto {

void EncryptBatch(const CommutativeCipher& cipher, std::span<const U256> in,
                  std::span<U256> out, int threads) {
  assert(in.size() == out.size());
  common::ParallelForTiles(threads, in.size(), kModexpBatchTile,
                           [&](size_t lo, size_t hi) {
                             for (size_t i = lo; i < hi; ++i) {
                               out[i] = cipher.Encrypt(in[i]);
                             }
                           });
}

}  // namespace hsis::crypto

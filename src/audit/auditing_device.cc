#include "audit/auditing_device.h"

namespace hsis::audit {

Result<AuditingDevice> AuditingDevice::Create(double audit_frequency,
                                              double penalty) {
  if (audit_frequency < 0 || audit_frequency > 1) {
    return Status::InvalidArgument("audit frequency must be in [0, 1]");
  }
  if (penalty < 0) {
    return Status::InvalidArgument("penalty must be non-negative");
  }
  return AuditingDevice(audit_frequency, penalty);
}

Status AuditingDevice::RegisterPlayer(
    const std::string& player, const crypto::MultisetHashFamily& family) {
  if (players_.count(player) != 0) {
    return Status::AlreadyExists("player already registered: " + player);
  }
  PlayerState state;
  state.family = std::make_unique<crypto::MultisetHashFamily>(family);
  state.accumulated = family.NewHash();
  players_.emplace(player, std::move(state));
  return Status::OK();
}

bool AuditingDevice::IsRegistered(const std::string& player) const {
  return players_.count(player) != 0;
}

Status AuditingDevice::RecordTupleHash(const std::string& player,
                                       const Bytes& singleton_hash) {
  auto it = players_.find(player);
  if (it == players_.end()) {
    return Status::NotFound("unknown player: " + player);
  }
  Result<std::unique_ptr<crypto::MultisetHash>> incoming =
      it->second.family->Deserialize(singleton_hash);
  HSIS_RETURN_IF_ERROR(incoming.status());
  return it->second.accumulated->Union(**incoming);
}

Result<AuditOutcome> AuditingDevice::Audit(const std::string& player,
                                           const Bytes& reported_commitment) {
  auto it = players_.find(player);
  if (it == players_.end()) {
    return Status::NotFound("unknown player: " + player);
  }
  Result<std::unique_ptr<crypto::MultisetHash>> reported =
      it->second.family->Deserialize(reported_commitment);

  AuditOutcome outcome;
  outcome.audited = true;
  // A malformed commitment counts as cheating: the player was required
  // to report a valid H_i(D̂_i) alongside its data.
  outcome.cheating_detected =
      !reported.ok() || !it->second.accumulated->Equivalent(**reported);
  if (outcome.cheating_detected) {
    outcome.penalty_applied = penalty_;
    it->second.total_penalties += penalty_;
  }
  log_.push_back({next_sequence_++, player, outcome.cheating_detected,
                  outcome.penalty_applied});
  return outcome;
}

Result<AuditOutcome> AuditingDevice::MaybeAudit(
    const std::string& player, const Bytes& reported_commitment, Rng& rng) {
  if (!rng.Bernoulli(audit_frequency_)) {
    if (players_.count(player) == 0) {
      return Status::NotFound("unknown player: " + player);
    }
    return AuditOutcome{};
  }
  return Audit(player, reported_commitment);
}

double AuditingDevice::TotalPenalties(const std::string& player) const {
  auto it = players_.find(player);
  return it == players_.end() ? 0.0 : it->second.total_penalties;
}

uint64_t AuditingDevice::RecordedTupleCount(const std::string& player) const {
  auto it = players_.find(player);
  return it == players_.end() ? 0 : it->second.accumulated->count();
}

size_t AuditingDevice::StateBytes() const {
  size_t total = 0;
  for (const auto& [name, state] : players_) {
    total += state.accumulated->Serialize().size();
  }
  return total;
}

Bytes AuditingDevice::SerializeState() const {
  Bytes out;
  AppendUint64BE(out, next_sequence_);
  AppendUint32BE(out, static_cast<uint32_t>(players_.size()));
  for (const auto& [name, state] : players_) {
    AppendLengthPrefixed(out, ToBytes(name));
    AppendLengthPrefixed(out, state.accumulated->Serialize());
    // Store the penalty total as a scaled integer (milli-units) to keep
    // the wire format byte-exact.
    AppendUint64BE(out,
                   static_cast<uint64_t>(state.total_penalties * 1000.0 + 0.5));
  }
  return out;
}

Status AuditingDevice::RestoreState(const Bytes& state) {
  if (state.size() < 12) {
    return Status::InvalidArgument("truncated device state");
  }
  uint64_t sequence = ReadUint64BE(state, 0);
  uint32_t count = ReadUint32BE(state, 8);
  size_t offset = 12;
  // Stage into a scratch map so a malformed blob cannot half-apply.
  std::map<std::string, std::pair<std::unique_ptr<crypto::MultisetHash>, double>>
      staged;
  for (uint32_t i = 0; i < count; ++i) {
    HSIS_ASSIGN_OR_RETURN(Bytes name_bytes, ReadLengthPrefixed(state, &offset));
    HSIS_ASSIGN_OR_RETURN(Bytes hash_bytes, ReadLengthPrefixed(state, &offset));
    if (offset + 8 > state.size()) {
      return Status::InvalidArgument("truncated device state");
    }
    uint64_t penalties_milli = ReadUint64BE(state, offset);
    offset += 8;

    std::string name = BytesToString(name_bytes);
    auto it = players_.find(name);
    if (it == players_.end()) {
      return Status::NotFound("state references unregistered player: " + name);
    }
    HSIS_ASSIGN_OR_RETURN(std::unique_ptr<crypto::MultisetHash> accumulated,
                          it->second.family->Deserialize(hash_bytes));
    staged.emplace(std::move(name),
                   std::make_pair(std::move(accumulated),
                                  static_cast<double>(penalties_milli) / 1000.0));
  }
  for (auto& [name, payload] : staged) {
    PlayerState& player = players_.at(name);
    player.accumulated = std::move(payload.first);
    player.total_penalties = payload.second;
  }
  next_sequence_ = sequence;
  return Status::OK();
}

}  // namespace hsis::audit

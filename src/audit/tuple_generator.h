#ifndef HSIS_AUDIT_TUPLE_GENERATOR_H_
#define HSIS_AUDIT_TUPLE_GENERATOR_H_

#include <string>

#include "audit/auditing_device.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::audit {

/// The tuple generator TG_i of Section 6.2 — the trusted process through
/// which legal tuples enter player i's database (e.g. customer
/// registration).
///
/// On construction it "picks H_i and announces it publicly" (the hash
/// family). For each new tuple it (a) computes the singleton hash
/// H_i({t}), (b) sends (H_i(t), i) to the auditing device, and (c) hands
/// the tuple to the player. The player cannot influence TG_i — tuples
/// fabricated by the player never pass through here, which is exactly
/// what makes them detectable at audit time.
class TupleGenerator {
 public:
  /// Creates a generator for `player`, announcing `family`, wired to the
  /// auditing device (registers the player there).
  static Result<TupleGenerator> Create(std::string player,
                                       crypto::MultisetHashFamily family,
                                       AuditingDevice* device);

  /// The announced hash family H_i (public).
  const crypto::MultisetHashFamily& family() const { return family_; }

  const std::string& player() const { return player_; }

  /// Issues one legal tuple: updates the device's HV_i and returns the
  /// tuple for delivery to the player.
  Result<sovereign::Tuple> Issue(Bytes value);

  /// Convenience for string-valued tuples.
  Result<sovereign::Tuple> IssueString(std::string_view value);

  /// Number of tuples issued so far.
  uint64_t issued() const { return issued_; }

 private:
  TupleGenerator(std::string player, crypto::MultisetHashFamily family,
                 AuditingDevice* device)
      : player_(std::move(player)),
        family_(std::move(family)),
        device_(device) {}

  std::string player_;
  crypto::MultisetHashFamily family_;
  AuditingDevice* device_;  // not owned
  uint64_t issued_ = 0;
};

}  // namespace hsis::audit

#endif  // HSIS_AUDIT_TUPLE_GENERATOR_H_

#ifndef HSIS_AUDIT_SECURE_COPROCESSOR_H_
#define HSIS_AUDIT_SECURE_COPROCESSOR_H_

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"

namespace hsis::audit {

/// Simulation of the secure coprocessor (IBM 4758-class) that hosts the
/// auditing device in Section 6.2.
///
/// What the paper relies on: (a) certified application code can be
/// installed and then executes untampered, and (b) remote attestation
/// proves to the participants that the device runs a known, trusted
/// version of that code. We model attestation with a MAC under the
/// device's endorsement key over the measured code hash and a
/// verifier-chosen challenge nonce. (Real hardware signs with a
/// certified asymmetric key; the shared-key MAC preserves the property
/// that matters here — unforgeability by the participants — without
/// pulling a signature scheme into the substrate.) Sealed storage wraps
/// device state with an internal AEAD key that never leaves the device.
class SecureCoprocessor {
 public:
  /// A remote-attestation report for a challenge nonce.
  struct AttestationReport {
    Bytes code_hash;  // measurement of the installed application
    Bytes nonce;      // verifier's challenge
    Bytes mac;        // MAC_ek(code_hash || nonce)
  };

  /// Creates a device with fresh internal keys.
  static SecureCoprocessor Manufacture(Rng& rng);

  /// Installs (measures) application code. Only one application at a
  /// time; reinstalling changes the measurement.
  void InstallApplication(const Bytes& code);

  /// True once an application is installed.
  bool HasApplication() const { return !code_hash_.empty(); }

  /// Produces an attestation report for the verifier's challenge.
  /// Requires an installed application.
  Result<AttestationReport> Attest(const Bytes& challenge_nonce) const;

  /// Verifies a report against the code hash the verifier trusts.
  /// `endorsement_key` models the device certificate chain.
  static bool VerifyAttestation(const AttestationReport& report,
                                const Bytes& expected_code_hash,
                                const Bytes& endorsement_key);

  /// Measurement helper so verifiers can compute the expected hash of
  /// the code they trust.
  static Bytes MeasureCode(const Bytes& code);

  /// Seals device state so it can only be restored by this device.
  Result<Bytes> Seal(const Bytes& state, Rng& rng) const;
  Result<Bytes> Unseal(const Bytes& sealed) const;

  /// The endorsement (attestation) key. Exposed to stand in for the
  /// manufacturer's certificate verification path.
  const Bytes& endorsement_key() const { return endorsement_key_; }

 private:
  SecureCoprocessor(Bytes endorsement_key, Bytes storage_key)
      : endorsement_key_(std::move(endorsement_key)),
        storage_key_(std::move(storage_key)) {}

  Bytes endorsement_key_;
  Bytes storage_key_;
  Bytes code_hash_;
};

}  // namespace hsis::audit

#endif  // HSIS_AUDIT_SECURE_COPROCESSOR_H_

#ifndef HSIS_AUDIT_JUDGE_H_
#define HSIS_AUDIT_JUDGE_H_

#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::audit {

/// The "court" check from Section 6.2: a player is reluctant to report
/// D_i alongside a hash H_i(D_i') with D_i' != D_i because "the judge
/// will be able to decide in polynomial time whether the hash value
/// H_i(D_i') ==H H_i(D_i)".
///
/// `VerifyCommitment` recomputes the multiset hash of `disclosed_data`
/// (linear in the dataset) and compares it with the reported commitment.
/// Returns true iff the commitment is well formed and matches.
bool VerifyCommitment(const sovereign::Dataset& disclosed_data,
                      const Bytes& reported_commitment,
                      const crypto::MultisetHashFamily& family);

}  // namespace hsis::audit

#endif  // HSIS_AUDIT_JUDGE_H_

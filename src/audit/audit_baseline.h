#ifndef HSIS_AUDIT_AUDIT_BASELINE_H_
#define HSIS_AUDIT_AUDIT_BASELINE_H_

#include <vector>

#include "common/bytes.h"
#include "crypto/merkle_tree.h"
#include "sovereign/dataset.h"

namespace hsis::audit {

/// Baseline audit accumulator built on a Merkle tree, for the ablation
/// against the paper's incremental-multiset-hash device.
///
/// To be order-insensitive (a dataset is a multiset, not a sequence)
/// the accumulator canonicalizes: leaves are the sorted per-tuple
/// hashes. That forces the device to retain *all* leaf hashes — O(n)
/// state — and makes each new tuple a sorted insert plus a tree
/// recompute at audit time, versus the multiset hash's O(1) state and
/// O(1) update. The redeeming feature (not needed by the paper's
/// device) is logarithmic membership proofs.
///
/// Privacy is preserved the same way: the accumulator sees only hashes
/// of tuples, never tuple values.
class MerkleAuditAccumulator {
 public:
  /// Folds in one issued tuple's hash (32 bytes, from the tuple
  /// generator). Sorted insert: O(n) movement.
  void Record(const Bytes& tuple_hash);

  /// Current commitment (root over the sorted leaf hashes). Rebuilds
  /// the tree: O(n) hashing.
  Bytes Commitment() const;

  /// True iff `reported_root` equals the current commitment.
  bool Matches(const Bytes& reported_root) const;

  /// Device-side retained bytes (the sorted leaf list).
  size_t StateBytes() const;

  uint64_t count() const { return leaves_.size(); }

 private:
  std::vector<Bytes> leaves_;  // sorted tuple hashes
};

/// Party-side commitment for a reported dataset under the Merkle
/// baseline: root over the sorted per-tuple hashes.
Bytes MerkleDatasetCommitment(const sovereign::Dataset& data);

/// The per-tuple hash both sides use (SHA-256 of the tuple value).
Bytes MerkleTupleHash(const Bytes& tuple_value);

}  // namespace hsis::audit

#endif  // HSIS_AUDIT_AUDIT_BASELINE_H_

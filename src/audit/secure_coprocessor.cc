#include "audit/secure_coprocessor.h"

#include "crypto/authenticated_cipher.h"
#include "crypto/hmac_sha256.h"
#include "crypto/sha256.h"

namespace hsis::audit {

SecureCoprocessor SecureCoprocessor::Manufacture(Rng& rng) {
  return SecureCoprocessor(rng.RandomBytes(32), rng.RandomBytes(32));
}

void SecureCoprocessor::InstallApplication(const Bytes& code) {
  code_hash_ = MeasureCode(code);
}

Bytes SecureCoprocessor::MeasureCode(const Bytes& code) {
  return crypto::Sha256::Hash(code);
}

Result<SecureCoprocessor::AttestationReport> SecureCoprocessor::Attest(
    const Bytes& challenge_nonce) const {
  if (code_hash_.empty()) {
    return Status::FailedPrecondition("no application installed");
  }
  Bytes payload = code_hash_;
  Append(payload, challenge_nonce);
  AttestationReport report;
  report.code_hash = code_hash_;
  report.nonce = challenge_nonce;
  report.mac = crypto::HmacSha256(endorsement_key_, payload);
  return report;
}

bool SecureCoprocessor::VerifyAttestation(const AttestationReport& report,
                                          const Bytes& expected_code_hash,
                                          const Bytes& endorsement_key) {
  if (!ConstantTimeEqual(report.code_hash, expected_code_hash)) return false;
  Bytes payload = report.code_hash;
  Append(payload, report.nonce);
  Bytes expected_mac = crypto::HmacSha256(endorsement_key, payload);
  return ConstantTimeEqual(report.mac, expected_mac);
}

Result<Bytes> SecureCoprocessor::Seal(const Bytes& state, Rng& rng) const {
  Result<crypto::AuthenticatedCipher> cipher =
      crypto::AuthenticatedCipher::Create(storage_key_);
  HSIS_RETURN_IF_ERROR(cipher.status());
  Bytes nonce = rng.RandomBytes(crypto::AuthenticatedCipher::kNonceSize);
  return cipher->Seal(nonce, state, ToBytes("hsis.sealed-state"));
}

Result<Bytes> SecureCoprocessor::Unseal(const Bytes& sealed) const {
  Result<crypto::AuthenticatedCipher> cipher =
      crypto::AuthenticatedCipher::Create(storage_key_);
  HSIS_RETURN_IF_ERROR(cipher.status());
  return cipher->Open(sealed, ToBytes("hsis.sealed-state"));
}

}  // namespace hsis::audit

#include "audit/judge.h"

namespace hsis::audit {

bool VerifyCommitment(const sovereign::Dataset& disclosed_data,
                      const Bytes& reported_commitment,
                      const crypto::MultisetHashFamily& family) {
  Result<std::unique_ptr<crypto::MultisetHash>> reported =
      family.Deserialize(reported_commitment);
  if (!reported.ok()) return false;
  std::unique_ptr<crypto::MultisetHash> recomputed = family.NewHash();
  for (const sovereign::Tuple& t : disclosed_data.tuples()) {
    recomputed->Add(t.value);
  }
  return recomputed->Equivalent(**reported);
}

}  // namespace hsis::audit

#include "audit/tuple_generator.h"

namespace hsis::audit {

Result<TupleGenerator> TupleGenerator::Create(
    std::string player, crypto::MultisetHashFamily family,
    AuditingDevice* device) {
  if (device == nullptr) {
    return Status::InvalidArgument("tuple generator needs an auditing device");
  }
  HSIS_RETURN_IF_ERROR(device->RegisterPlayer(player, family));
  return TupleGenerator(std::move(player), std::move(family), device);
}

Result<sovereign::Tuple> TupleGenerator::Issue(Bytes value) {
  // H_i({t}): singleton accumulator — the (H_i(t), i) message of the
  // paper, carrying no information about t beyond its hash.
  std::unique_ptr<crypto::MultisetHash> singleton = family_.NewHash();
  singleton->Add(value);
  HSIS_RETURN_IF_ERROR(
      device_->RecordTupleHash(player_, singleton->Serialize()));
  ++issued_;
  return sovereign::Tuple(std::move(value));
}

Result<sovereign::Tuple> TupleGenerator::IssueString(std::string_view value) {
  return Issue(ToBytes(value));
}

}  // namespace hsis::audit

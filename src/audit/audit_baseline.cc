#include "audit/audit_baseline.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace hsis::audit {

Bytes MerkleTupleHash(const Bytes& tuple_value) {
  return crypto::Sha256::Hash(tuple_value);
}

void MerkleAuditAccumulator::Record(const Bytes& tuple_hash) {
  auto it = std::lower_bound(leaves_.begin(), leaves_.end(), tuple_hash);
  leaves_.insert(it, tuple_hash);
}

Bytes MerkleAuditAccumulator::Commitment() const {
  return crypto::MerkleTree::Build(leaves_).root();
}

bool MerkleAuditAccumulator::Matches(const Bytes& reported_root) const {
  return ConstantTimeEqual(Commitment(), reported_root);
}

size_t MerkleAuditAccumulator::StateBytes() const {
  size_t total = 0;
  for (const Bytes& leaf : leaves_) total += leaf.size();
  return total;
}

Bytes MerkleDatasetCommitment(const sovereign::Dataset& data) {
  std::vector<Bytes> leaves;
  leaves.reserve(data.size());
  for (const sovereign::Tuple& t : data.tuples()) {
    leaves.push_back(MerkleTupleHash(t.value));
  }
  std::sort(leaves.begin(), leaves.end());
  return crypto::MerkleTree::Build(leaves).root();
}

}  // namespace hsis::audit

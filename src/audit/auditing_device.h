#ifndef HSIS_AUDIT_AUDITING_DEVICE_H_
#define HSIS_AUDIT_AUDITING_DEVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "crypto/multiset_hash.h"

namespace hsis::audit {

/// Result of one audit decision.
struct AuditOutcome {
  bool audited = false;            // did the device check this time?
  bool cheating_detected = false;  // commitment failed to match HV_i
  double penalty_applied = 0.0;    // P when detected, else 0
};

/// One line of the device's tamper-evident audit log.
struct AuditLogEntry {
  uint64_t sequence = 0;
  std::string player;
  bool cheating_detected = false;
  double penalty_applied = 0.0;
};

/// The auditing device (AD) of Section 6.2.
///
/// For each registered player i the device maintains HV_i — the
/// incremental multiset hash of every legal tuple the player's tuple
/// generator TG_i has issued. At audit time it compares HV_i with the
/// commitment H_i(D̂_i) the player reported during the sovereign
/// computation; any insertion or deletion makes the comparison fail.
///
/// Privacy and efficiency, per the paper's requirements:
///  * the device's API accepts only serialized hash values — no tuple
///    ever reaches it;
///  * per-player state is one accumulator (O(1) space) and each update
///    is one +H operation (O(1) time).
class AuditingDevice {
 public:
  /// Creates a device that audits with relative frequency
  /// `audit_frequency` in [0,1] and fines detected cheaters `penalty`.
  static Result<AuditingDevice> Create(double audit_frequency, double penalty);

  /// Registers player i with the hash family its TG_i announced.
  /// Initializes HV_i to the hash of the empty multiset.
  Status RegisterPlayer(const std::string& player,
                        const crypto::MultisetHashFamily& family);

  bool IsRegistered(const std::string& player) const;

  /// TG_i -> AD message (H_i(t), i): folds the singleton hash of a newly
  /// issued tuple into HV_i. `singleton_hash` is a serialized one-element
  /// accumulator from the player's family.
  Status RecordTupleHash(const std::string& player,
                         const Bytes& singleton_hash);

  /// Unconditionally audits `player` against its reported commitment
  /// H_i(D̂_i): checks HV_i ==H H_i(D̂_i), fines on mismatch, and logs.
  Result<AuditOutcome> Audit(const std::string& player,
                             const Bytes& reported_commitment);

  /// The per-round audit decision: with probability `audit_frequency`
  /// (drawn from `rng`), performs `Audit`; otherwise returns an
  /// un-audited outcome.
  Result<AuditOutcome> MaybeAudit(const std::string& player,
                                  const Bytes& reported_commitment, Rng& rng);

  double audit_frequency() const { return audit_frequency_; }
  double penalty() const { return penalty_; }

  /// Cumulative fines charged to `player` (0 if unknown).
  double TotalPenalties(const std::string& player) const;

  /// Number of tuples folded into HV_i so far (0 if unknown).
  uint64_t RecordedTupleCount(const std::string& player) const;

  const std::vector<AuditLogEntry>& log() const { return log_; }

  /// Serialized size of all per-player accumulators — the device's
  /// entire data-dependent state (for the space-efficiency benches).
  size_t StateBytes() const;

  /// Serializes the device's data-dependent state (per-player HV_i,
  /// penalty totals, log cursor) for sealed storage in the secure
  /// coprocessor. Hash *families* (scheme choice, keys, group) are
  /// configuration, not state, and are re-supplied at restore time.
  Bytes SerializeState() const;

  /// Restores state produced by `SerializeState` into a device whose
  /// players are already registered with the same families. Fails on
  /// unknown players or malformed bytes.
  Status RestoreState(const Bytes& state);

 private:
  AuditingDevice(double audit_frequency, double penalty)
      : audit_frequency_(audit_frequency), penalty_(penalty) {}

  struct PlayerState {
    std::unique_ptr<crypto::MultisetHashFamily> family;
    std::unique_ptr<crypto::MultisetHash> accumulated;  // HV_i
    double total_penalties = 0.0;
  };

  double audit_frequency_;
  double penalty_;
  std::map<std::string, PlayerState> players_;
  std::vector<AuditLogEntry> log_;
  uint64_t next_sequence_ = 0;
};

}  // namespace hsis::audit

#endif  // HSIS_AUDIT_AUDITING_DEVICE_H_

// SSE2 kernel lane: 2-wide double vectors, part of the x86-64
// baseline so it needs no extra -m flags. Compiled with
// -ffp-contract=off (src/game/CMakeLists.txt) so the bit-identity
// contract of kernel_simd_impl.h holds.

#ifdef HSIS_HAVE_SSE2_LANE

#define HSIS_SIMD_IMPL_SSE2 1
#define HSIS_SIMD_LANE_NS lane_sse2
#include "game/kernel_simd_impl.h"

#endif  // HSIS_HAVE_SSE2_LANE

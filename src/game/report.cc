#include "game/report.h"

#include <cstdio>

namespace hsis::game {

namespace {

/// All serializers append into one growing string through these
/// helpers — a stack snprintf buffer for doubles and interned label
/// lookups for equilibrium sets — so a row costs at most the final
/// string growth, never intermediate temporaries.

void AppendDouble(std::string& out, double v) {
  char buf[32];
  int len = std::snprintf(buf, sizeof(buf), "%.6g", v);
  out.append(buf, static_cast<size_t>(len));
}

void AppendInt(std::string& out, long long v) {
  char buf[24];
  int len = std::snprintf(buf, sizeof(buf), "%lld", v);
  out.append(buf, static_cast<size_t>(len));
}

void AppendJoined(std::string& out, const std::vector<std::string>& parts) {
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ';';
    out += parts[i];
  }
}

void AppendJoinedInts(std::string& out, const std::vector<int>& parts) {
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ';';
    AppendInt(out, parts[i]);
  }
}

void AppendJoinedCounts(std::string& out, kernel::HonestCountMask mask) {
  bool first = true;
  for (int x = 0; x <= kernel::kMaxKernelPlayers; ++x) {
    if ((mask & (kernel::HonestCountMask{1} << x)) == 0) continue;
    if (!first) out += ';';
    first = false;
    AppendInt(out, x);
  }
}

const char* AsymmetricRegionSlug(AsymmetricRegion region) {
  switch (region) {
    case AsymmetricRegion::kBothCheat:
      return "CC";
    case AsymmetricRegion::kOnlyP1Cheats:
      return "CH";
    case AsymmetricRegion::kOnlyP2Cheats:
      return "HC";
    case AsymmetricRegion::kBothHonest:
      return "HH";
    case AsymmetricRegion::kBoundary:
      return "boundary";
  }
  return "?";
}

const char* RegionSlug(SymmetricRegion region) {
  switch (region) {
    case SymmetricRegion::kAllCheatUniqueDse:
      return "all_cheat";
    case SymmetricRegion::kBoundary:
      return "boundary";
    case SymmetricRegion::kAllHonestUniqueDse:
      return "all_honest";
  }
  return "?";
}

void AppendSymmetricRowCsv(std::string& out, double lead,
                           SymmetricRegion region, kernel::ProfileMask2x2 mask,
                           bool honest_is_dse, bool matches) {
  AppendDouble(out, lead);
  out += ',';
  out += RegionSlug(region);
  out += ',';
  out += kernel::NashMaskJoined(mask);
  out += ',';
  out += honest_is_dse ? "1" : "0";
  out += ',';
  out += matches ? "1" : "0";
  out += '\n';
}

void AppendAsymmetricCellCsv(std::string& out,
                             const kernel::AsymmetricCellKernel& cell) {
  AppendDouble(out, cell.f1);
  out += ',';
  AppendDouble(out, cell.f2);
  out += ',';
  out += AsymmetricRegionSlug(cell.region);
  out += ',';
  out += kernel::NashMaskJoined(cell.nash_mask);
  out += ',';
  out += cell.matches ? "1" : "0";
  out += '\n';
}

void AppendNPlayerRowCsv(std::string& out,
                         const kernel::NPlayerBandRowKernel& row) {
  AppendDouble(out, row.penalty);
  out += ',';
  AppendInt(out, row.analytic_honest_count);
  out += ',';
  AppendJoinedCounts(out, row.count_mask);
  out += ',';
  out += row.honest_is_dominant ? "1" : "0";
  out += ',';
  out += row.cheat_is_dominant ? "1" : "0";
  out += ',';
  out += row.matches ? "1" : "0";
  out += '\n';
}

/// Rough per-row byte budget for the whole-sweep reserves.
constexpr size_t kRowReserve = 48;

}  // namespace

std::string FrequencySweepCsvHeader() {
  return "frequency,region,nash_equilibria,honest_is_dse,"
         "matches_enumeration\n";
}

std::string FrequencySweepRowToCsv(const FrequencySweepRow& row) {
  std::string out;
  AppendDouble(out, row.frequency);
  out += ',';
  out += RegionSlug(row.analytic_region);
  out += ',';
  AppendJoined(out, row.nash_equilibria);
  out += ',';
  out += row.honest_is_dse ? "1" : "0";
  out += ',';
  out += row.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string FrequencySweepToCsv(const std::vector<FrequencySweepRow>& rows) {
  std::string out = FrequencySweepCsvHeader();
  out.reserve(out.size() + rows.size() * kRowReserve);
  for (const FrequencySweepRow& row : rows) out += FrequencySweepRowToCsv(row);
  return out;
}

std::string PenaltySweepCsvHeader() {
  return "penalty,region,nash_equilibria,honest_is_dse,matches_enumeration\n";
}

std::string PenaltySweepRowToCsv(const PenaltySweepRow& row) {
  std::string out;
  AppendDouble(out, row.penalty);
  out += ',';
  out += RegionSlug(row.analytic_region);
  out += ',';
  AppendJoined(out, row.nash_equilibria);
  out += ',';
  out += row.honest_is_dse ? "1" : "0";
  out += ',';
  out += row.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string PenaltySweepToCsv(const std::vector<PenaltySweepRow>& rows) {
  std::string out = PenaltySweepCsvHeader();
  out.reserve(out.size() + rows.size() * kRowReserve);
  for (const PenaltySweepRow& row : rows) out += PenaltySweepRowToCsv(row);
  return out;
}

std::string AsymmetricGridCsvHeader() {
  return "f1,f2,region,nash_equilibria,matches_enumeration\n";
}

std::string AsymmetricGridCellToCsv(const AsymmetricGridCell& cell) {
  std::string out;
  AppendDouble(out, cell.f1);
  out += ',';
  AppendDouble(out, cell.f2);
  out += ',';
  out += AsymmetricRegionSlug(cell.analytic_region);
  out += ',';
  AppendJoined(out, cell.nash_equilibria);
  out += ',';
  out += cell.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string AsymmetricGridToCsv(const std::vector<AsymmetricGridCell>& cells) {
  std::string out = AsymmetricGridCsvHeader();
  out.reserve(out.size() + cells.size() * kRowReserve);
  for (const AsymmetricGridCell& cell : cells) {
    out += AsymmetricGridCellToCsv(cell);
  }
  return out;
}

std::string NPlayerBandsCsvHeader() {
  return "penalty,analytic_honest_count,equilibrium_honest_counts,"
         "honest_dominant,cheat_dominant,matches_enumeration\n";
}

std::string NPlayerBandRowToCsv(const NPlayerBandRow& row) {
  std::string out;
  AppendDouble(out, row.penalty);
  out += ',';
  AppendInt(out, row.analytic_honest_count);
  out += ',';
  AppendJoinedInts(out, row.equilibrium_honest_counts);
  out += ',';
  out += row.honest_is_dominant ? "1" : "0";
  out += ',';
  out += row.cheat_is_dominant ? "1" : "0";
  out += ',';
  out += row.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string NPlayerBandsToCsv(const std::vector<NPlayerBandRow>& rows) {
  std::string out = NPlayerBandsCsvHeader();
  out.reserve(out.size() + rows.size() * kRowReserve);
  for (const NPlayerBandRow& row : rows) out += NPlayerBandRowToCsv(row);
  return out;
}

std::string FrequencyKernelRowToCsv(const kernel::FrequencyRowKernel& row) {
  std::string out;
  AppendSymmetricRowCsv(out, row.frequency, row.region, row.nash_mask,
                        row.honest_is_dse, row.matches);
  return out;
}

std::string PenaltyKernelRowToCsv(const kernel::PenaltyRowKernel& row) {
  std::string out;
  AppendSymmetricRowCsv(out, row.penalty, row.region, row.nash_mask,
                        row.honest_is_dse, row.matches);
  return out;
}

std::string AsymmetricKernelCellToCsv(
    const kernel::AsymmetricCellKernel& cell) {
  std::string out;
  AppendAsymmetricCellCsv(out, cell);
  return out;
}

std::string NPlayerKernelRowToCsv(const kernel::NPlayerBandRowKernel& row) {
  std::string out;
  AppendNPlayerRowCsv(out, row);
  return out;
}

std::string FrequencySweepToCsv(const kernel::FrequencyRowsSoA& rows) {
  std::string out = FrequencySweepCsvHeader();
  out.reserve(out.size() + rows.size() * kRowReserve);
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendSymmetricRowCsv(out, rows.frequency[i], rows.region[i],
                          rows.nash_mask[i], rows.honest_is_dse[i] != 0,
                          rows.matches[i] != 0);
  }
  return out;
}

std::string PenaltySweepToCsv(const kernel::PenaltyRowsSoA& rows) {
  std::string out = PenaltySweepCsvHeader();
  out.reserve(out.size() + rows.size() * kRowReserve);
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendSymmetricRowCsv(out, rows.penalty[i], rows.region[i],
                          rows.nash_mask[i], rows.honest_is_dse[i] != 0,
                          rows.matches[i] != 0);
  }
  return out;
}

std::string AsymmetricGridToCsv(const kernel::AsymmetricCellsSoA& cells) {
  std::string out = AsymmetricGridCsvHeader();
  out.reserve(out.size() + cells.size() * kRowReserve);
  for (size_t i = 0; i < cells.size(); ++i) {
    kernel::AsymmetricCellKernel cell;
    cell.f1 = cells.f1[i];
    cell.f2 = cells.f2[i];
    cell.region = cells.region[i];
    cell.nash_mask = cells.nash_mask[i];
    cell.matches = cells.matches[i] != 0;
    AppendAsymmetricCellCsv(out, cell);
  }
  return out;
}

std::string NPlayerBandsToCsv(const kernel::NPlayerBandRowsSoA& rows) {
  std::string out = NPlayerBandsCsvHeader();
  out.reserve(out.size() + rows.size() * kRowReserve);
  for (size_t i = 0; i < rows.size(); ++i) {
    kernel::NPlayerBandRowKernel row;
    row.penalty = rows.penalty[i];
    row.analytic_honest_count = rows.analytic_honest_count[i];
    row.count_mask = rows.count_mask[i];
    row.honest_is_dominant = rows.honest_is_dominant[i] != 0;
    row.cheat_is_dominant = rows.cheat_is_dominant[i] != 0;
    row.matches = rows.matches[i] != 0;
    AppendNPlayerRowCsv(out, row);
  }
  return out;
}

}  // namespace hsis::game

#include "game/report.h"

#include <cstdio>

namespace hsis::game {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Join(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ';';
    out += parts[i];
  }
  return out;
}

std::string JoinInts(const std::vector<int>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(parts[i]);
  }
  return out;
}

const char* AsymmetricRegionSlug(AsymmetricRegion region) {
  switch (region) {
    case AsymmetricRegion::kBothCheat:
      return "CC";
    case AsymmetricRegion::kOnlyP1Cheats:
      return "CH";
    case AsymmetricRegion::kOnlyP2Cheats:
      return "HC";
    case AsymmetricRegion::kBothHonest:
      return "HH";
    case AsymmetricRegion::kBoundary:
      return "boundary";
  }
  return "?";
}

const char* RegionSlug(SymmetricRegion region) {
  switch (region) {
    case SymmetricRegion::kAllCheatUniqueDse:
      return "all_cheat";
    case SymmetricRegion::kBoundary:
      return "boundary";
    case SymmetricRegion::kAllHonestUniqueDse:
      return "all_honest";
  }
  return "?";
}

}  // namespace

std::string FrequencySweepCsvHeader() {
  return "frequency,region,nash_equilibria,honest_is_dse,"
         "matches_enumeration\n";
}

std::string FrequencySweepRowToCsv(const FrequencySweepRow& row) {
  std::string out = FormatDouble(row.frequency);
  out += ',';
  out += RegionSlug(row.analytic_region);
  out += ',';
  out += Join(row.nash_equilibria);
  out += ',';
  out += row.honest_is_dse ? "1" : "0";
  out += ',';
  out += row.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string FrequencySweepToCsv(const std::vector<FrequencySweepRow>& rows) {
  std::string out = FrequencySweepCsvHeader();
  for (const FrequencySweepRow& row : rows) out += FrequencySweepRowToCsv(row);
  return out;
}

std::string PenaltySweepCsvHeader() {
  return "penalty,region,nash_equilibria,honest_is_dse,matches_enumeration\n";
}

std::string PenaltySweepRowToCsv(const PenaltySweepRow& row) {
  std::string out = FormatDouble(row.penalty);
  out += ',';
  out += RegionSlug(row.analytic_region);
  out += ',';
  out += Join(row.nash_equilibria);
  out += ',';
  out += row.honest_is_dse ? "1" : "0";
  out += ',';
  out += row.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string PenaltySweepToCsv(const std::vector<PenaltySweepRow>& rows) {
  std::string out = PenaltySweepCsvHeader();
  for (const PenaltySweepRow& row : rows) out += PenaltySweepRowToCsv(row);
  return out;
}

std::string AsymmetricGridCsvHeader() {
  return "f1,f2,region,nash_equilibria,matches_enumeration\n";
}

std::string AsymmetricGridCellToCsv(const AsymmetricGridCell& cell) {
  std::string out = FormatDouble(cell.f1);
  out += ',';
  out += FormatDouble(cell.f2);
  out += ',';
  out += AsymmetricRegionSlug(cell.analytic_region);
  out += ',';
  out += Join(cell.nash_equilibria);
  out += ',';
  out += cell.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string AsymmetricGridToCsv(const std::vector<AsymmetricGridCell>& cells) {
  std::string out = AsymmetricGridCsvHeader();
  for (const AsymmetricGridCell& cell : cells) {
    out += AsymmetricGridCellToCsv(cell);
  }
  return out;
}

std::string NPlayerBandsCsvHeader() {
  return "penalty,analytic_honest_count,equilibrium_honest_counts,"
         "honest_dominant,cheat_dominant,matches_enumeration\n";
}

std::string NPlayerBandRowToCsv(const NPlayerBandRow& row) {
  std::string out = FormatDouble(row.penalty);
  out += ',';
  out += std::to_string(row.analytic_honest_count);
  out += ',';
  out += JoinInts(row.equilibrium_honest_counts);
  out += ',';
  out += row.honest_is_dominant ? "1" : "0";
  out += ',';
  out += row.cheat_is_dominant ? "1" : "0";
  out += ',';
  out += row.analytic_matches_enumeration ? "1" : "0";
  out += '\n';
  return out;
}

std::string NPlayerBandsToCsv(const std::vector<NPlayerBandRow>& rows) {
  std::string out = NPlayerBandsCsvHeader();
  for (const NPlayerBandRow& row : rows) out += NPlayerBandRowToCsv(row);
  return out;
}

}  // namespace hsis::game

#include "game/support_enumeration.h"

#include <cmath>

#include "common/logging.h"

namespace hsis::game {

namespace {

constexpr double kTol = 1e-9;

/// Solves the square linear system `a` x = b by Gaussian elimination
/// with partial pivoting. Returns false when (numerically) singular.
bool SolveLinearSystem(std::vector<std::vector<double>> a,
                       std::vector<double> b, std::vector<double>& x) {
  const size_t n = a.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (size_t k = row + 1; k < n; ++k) acc -= a[row][k] * x[k];
    x[row] = acc / a[row][row];
  }
  return true;
}

/// Given the opponent support `support` and the payoffs of `player`,
/// finds the opponent mixture over `support` that makes `player`
/// indifferent across `own_support` (plus the normalization row).
/// Returns false if the system is singular or the mixture infeasible.
bool SolveIndifference(const NormalFormGame& game, int player,
                       const std::vector<int>& own_support,
                       const std::vector<int>& opp_support,
                       std::vector<double>& mixture, double& value) {
  const size_t k = own_support.size();
  HSIS_CHECK(k == opp_support.size());
  // Unknowns: mixture over opp_support (k of them) + the common value v.
  // Equations: for each i in own_support: sum_j q_j u(i, j) - v = 0;
  // plus sum_j q_j = 1.
  std::vector<std::vector<double>> a(k + 1, std::vector<double>(k + 1, 0.0));
  std::vector<double> b(k + 1, 0.0);
  for (size_t row = 0; row < k; ++row) {
    for (size_t col = 0; col < k; ++col) {
      StrategyProfile profile(2);
      profile[static_cast<size_t>(player)] = own_support[row];
      profile[static_cast<size_t>(1 - player)] = opp_support[col];
      a[row][col] = game.Payoff(profile, player);
    }
    a[row][k] = -1.0;  // -v
  }
  for (size_t col = 0; col < k; ++col) a[k][col] = 1.0;
  b[k] = 1.0;

  std::vector<double> solution;
  if (!SolveLinearSystem(std::move(a), std::move(b), solution)) return false;
  mixture.assign(solution.begin(), solution.begin() + static_cast<ptrdiff_t>(k));
  value = solution[k];
  for (double q : mixture) {
    if (q < -kTol) return false;
  }
  return true;
}

/// Expands a support mixture to a full distribution.
std::vector<double> Expand(const std::vector<int>& support,
                           const std::vector<double>& mixture,
                           int num_strategies) {
  std::vector<double> out(static_cast<size_t>(num_strategies), 0.0);
  for (size_t i = 0; i < support.size(); ++i) {
    out[static_cast<size_t>(support[i])] = std::max(0.0, mixture[i]);
  }
  // Renormalize tiny numeric drift.
  double sum = 0;
  for (double v : out) sum += v;
  if (sum > 0) {
    for (double& v : out) v /= sum;
  }
  return out;
}

void EnumerateSupports(int num_strategies, size_t size,
                       std::vector<std::vector<int>>& out) {
  std::vector<int> current;
  // Iterative subset enumeration by bitmask keeps this simple; counts
  // are small (<= 16 strategies).
  for (uint32_t mask = 1; mask < (1u << num_strategies); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != size) continue;
    current.clear();
    for (int s = 0; s < num_strategies; ++s) {
      if (mask & (1u << s)) current.push_back(s);
    }
    out.push_back(current);
  }
}

bool SameProfile(const MixedStrategyProfile& a, const MixedStrategyProfile& b) {
  for (size_t i = 0; i < a.p1.size(); ++i) {
    if (std::abs(a.p1[i] - b.p1[i]) > 1e-6) return false;
  }
  for (size_t i = 0; i < a.p2.size(); ++i) {
    if (std::abs(a.p2[i] - b.p2[i]) > 1e-6) return false;
  }
  return true;
}

}  // namespace

bool MixedStrategyProfile::IsPure(double tol) const {
  auto pure = [tol](const std::vector<double>& p) {
    for (double v : p) {
      if (v > tol && v < 1 - tol) return false;
    }
    return true;
  };
  return pure(p1) && pure(p2);
}

double ExpectedPayoff(const NormalFormGame& game, int player,
                      const std::vector<double>& p1,
                      const std::vector<double>& p2) {
  double total = 0;
  for (int i = 0; i < game.num_strategies(0); ++i) {
    if (p1[static_cast<size_t>(i)] == 0) continue;
    for (int j = 0; j < game.num_strategies(1); ++j) {
      if (p2[static_cast<size_t>(j)] == 0) continue;
      total += p1[static_cast<size_t>(i)] * p2[static_cast<size_t>(j)] *
               game.Payoff({i, j}, player);
    }
  }
  return total;
}

bool IsMixedNashEquilibrium(const NormalFormGame& game,
                            const std::vector<double>& p1,
                            const std::vector<double>& p2, double tol) {
  double u1 = ExpectedPayoff(game, 0, p1, p2);
  double u2 = ExpectedPayoff(game, 1, p1, p2);
  for (int i = 0; i < game.num_strategies(0); ++i) {
    std::vector<double> pure(p1.size(), 0.0);
    pure[static_cast<size_t>(i)] = 1.0;
    if (ExpectedPayoff(game, 0, pure, p2) > u1 + tol) return false;
  }
  for (int j = 0; j < game.num_strategies(1); ++j) {
    std::vector<double> pure(p2.size(), 0.0);
    pure[static_cast<size_t>(j)] = 1.0;
    if (ExpectedPayoff(game, 1, p1, pure) > u2 + tol) return false;
  }
  return true;
}

Result<std::vector<MixedStrategyProfile>> SupportEnumerationEquilibria(
    const NormalFormGame& game) {
  if (game.num_players() != 2) {
    return Status::InvalidArgument("support enumeration handles 2 players");
  }
  const int m = game.num_strategies(0);
  const int n = game.num_strategies(1);
  if (m > 16 || n > 16) {
    return Status::OutOfRange("support enumeration limited to 16 strategies");
  }

  std::vector<MixedStrategyProfile> found;
  size_t max_size = static_cast<size_t>(std::min(m, n));
  for (size_t size = 1; size <= max_size; ++size) {
    std::vector<std::vector<int>> supports1, supports2;
    EnumerateSupports(m, size, supports1);
    EnumerateSupports(n, size, supports2);
    for (const auto& s1 : supports1) {
      for (const auto& s2 : supports2) {
        // Player 1 indifferent across s1 given player 2's mixture on s2,
        // and symmetrically.
        std::vector<double> q2, q1;
        double v1 = 0, v2 = 0;
        if (!SolveIndifference(game, 0, s1, s2, q2, v1)) continue;
        if (!SolveIndifference(game, 1, s2, s1, q1, v2)) continue;

        MixedStrategyProfile profile;
        profile.p1 = Expand(s1, q1, m);
        profile.p2 = Expand(s2, q2, n);
        if (!IsMixedNashEquilibrium(game, profile.p1, profile.p2)) continue;
        profile.payoff1 = ExpectedPayoff(game, 0, profile.p1, profile.p2);
        profile.payoff2 = ExpectedPayoff(game, 1, profile.p1, profile.p2);

        bool duplicate = false;
        for (const MixedStrategyProfile& existing : found) {
          if (SameProfile(existing, profile)) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) found.push_back(std::move(profile));
      }
    }
  }
  return found;
}

}  // namespace hsis::game

// Width-generic vector implementation of the kernel lane tile
// evaluators (game/kernel_lanes.h). This header is the single source
// of truth for every vector lane: each lane translation unit defines
// its ISA macro plus a namespace name and includes this file once —
//
//   #define HSIS_SIMD_IMPL_SSE2 1      (or HSIS_SIMD_IMPL_AVX2)
//   #define HSIS_SIMD_LANE_NS lane_sse2
//   #include "game/kernel_simd_impl.h"
//
// so SSE2 and AVX2 compile the *same* expressions and can only differ
// in vector width, never in arithmetic.
//
// Bit-identity contract (what makes lane choice a pure throughput
// decision):
//  * Only elementwise IEEE-754 operations are used — add, sub, mul,
//    div, ordered compares, sign-bit masking for abs — each of which
//    is required by IEEE 754 to produce exactly the scalar result per
//    element. No rsqrt/rcp approximations, no horizontal reductions.
//  * The lane TUs compile with -ffp-contract=off (and -mno-fma on
//    AVX2), so the compiler cannot contract the mul/add pairs below
//    into FMAs the scalar path does not perform.
//  * std::max / std::clamp are reproduced with explicit compare +
//    select in the scalar functions' exact operand order instead of
//    max_pd/min_pd, whose ±0.0 behavior differs from the C++ ternary.
//  * CriticalPenalty's early return of +inf at f == 0 is reproduced
//    with a select on f == 0.0 *before* trusting the vector division:
//    f may be -0.0 (passes [0,1] validation), and num / -0.0 is -inf
//    while the scalar path returns +inf without ever dividing.
//  * Per-row enums/bitmasks are assembled scalar-per-element from
//    movemask bits; doubles are written with vector stores. Tile
//    remainders (hi - lo not a multiple of kWidth) run the same
//    per-row scalar functions as the scalar lane.

#if !defined(HSIS_SIMD_LANE_NS) || \
    !(defined(HSIS_SIMD_IMPL_SSE2) || defined(HSIS_SIMD_IMPL_AVX2))
#error "kernel_simd_impl.h must be included from a lane TU (see header)"
#endif

#if defined(HSIS_SIMD_IMPL_AVX2)
#include <immintrin.h>
#else
#include <emmintrin.h>
#endif

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#include "game/equilibrium.h"
#include "game/kernel_lanes.h"
#include "game/thresholds.h"

namespace hsis::game::kernel::detail {
namespace HSIS_SIMD_LANE_NS {
namespace {

/// File-local twin of the private 1e-12 boundary epsilon of
/// thresholds.cc (and kBandEps of kernel.cc) — the vector paths must
/// reproduce BoundaryTolerance, the asymmetric critical-line test and
/// the n-player band bound bit-for-bit, epsilon included.
constexpr double kBoundaryEps = 1e-12;

#if defined(HSIS_SIMD_IMPL_AVX2)

/// 4-wide double vector (AVX2). Compares use the ordered, non-signaling
/// _CMP_*_OQ predicates — identical truth table to the scalar C++
/// operators for the non-NaN operands these kernels see.
struct Vec {
  static constexpr size_t kWidth = 4;
  __m256d v;
};
inline Vec VBroadcast(double x) { return {_mm256_set1_pd(x)}; }
inline Vec VLoad(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void VStore(double* p, Vec a) { _mm256_storeu_pd(p, a.v); }
inline Vec VAdd(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
inline Vec VSub(Vec a, Vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline Vec VMul(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline Vec VDiv(Vec a, Vec b) { return {_mm256_div_pd(a.v, b.v)}; }
inline Vec VGt(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)}; }
inline Vec VGe(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
inline Vec VLt(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
inline Vec VLe(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }
inline Vec VEq(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)}; }
inline Vec VOr(Vec a, Vec b) { return {_mm256_or_pd(a.v, b.v)}; }
/// Per-element `mask ? a : b`; compare results are all-ones/all-zeros,
/// so blendv's sign-bit semantics select exactly per element.
inline Vec VSelect(Vec mask, Vec a, Vec b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}
/// |a| as the scalar std::abs: clear the sign bit.
inline Vec VAbs(Vec a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
/// One bit per element (bit w = element w's compare result).
inline uint32_t VBits(Vec mask) {
  return static_cast<uint32_t>(_mm256_movemask_pd(mask.v));
}

#else  // HSIS_SIMD_IMPL_SSE2

/// 2-wide double vector (x86-64 baseline SSE2).
struct Vec {
  static constexpr size_t kWidth = 2;
  __m128d v;
};
inline Vec VBroadcast(double x) { return {_mm_set1_pd(x)}; }
inline Vec VLoad(const double* p) { return {_mm_loadu_pd(p)}; }
inline void VStore(double* p, Vec a) { _mm_storeu_pd(p, a.v); }
inline Vec VAdd(Vec a, Vec b) { return {_mm_add_pd(a.v, b.v)}; }
inline Vec VSub(Vec a, Vec b) { return {_mm_sub_pd(a.v, b.v)}; }
inline Vec VMul(Vec a, Vec b) { return {_mm_mul_pd(a.v, b.v)}; }
inline Vec VDiv(Vec a, Vec b) { return {_mm_div_pd(a.v, b.v)}; }
inline Vec VGt(Vec a, Vec b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
inline Vec VGe(Vec a, Vec b) { return {_mm_cmpge_pd(a.v, b.v)}; }
inline Vec VLt(Vec a, Vec b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline Vec VLe(Vec a, Vec b) { return {_mm_cmple_pd(a.v, b.v)}; }
inline Vec VEq(Vec a, Vec b) { return {_mm_cmpeq_pd(a.v, b.v)}; }
inline Vec VOr(Vec a, Vec b) { return {_mm_or_pd(a.v, b.v)}; }
inline Vec VSelect(Vec mask, Vec a, Vec b) {
  return {_mm_or_pd(_mm_and_pd(mask.v, a.v), _mm_andnot_pd(mask.v, b.v))};
}
inline Vec VAbs(Vec a) { return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)}; }
inline uint32_t VBits(Vec mask) {
  return static_cast<uint32_t>(_mm_movemask_pd(mask.v));
}

#endif

/// std::max(a, b) per element in the library's exact form
/// `(a < b) ? b : a` — NOT max_pd, whose result for (+0.0, -0.0)
/// differs from the ternary.
inline Vec VMaxStd(Vec a, Vec b) { return VSelect(VLt(a, b), b, a); }

/// BoundaryTolerance of thresholds.cc, vectorized verbatim:
/// kEps * max(1.0, max(|a|, |b|)).
inline Vec BoundaryToleranceVec(Vec a, Vec b) {
  return VMul(VBroadcast(kBoundaryEps),
              VMaxStd(VBroadcast(1.0), VMaxStd(VAbs(a), VAbs(b))));
}

/// The element index vector {base, base+1, ...} as doubles — the
/// GridPoint numerator. Built through the same size_t → double
/// conversion the scalar path performs. The sweep tiles advance this
/// vector incrementally (idx += kWidth per block), which is
/// bit-identical to re-converting because every sweep index fits in an
/// int (< 2^31), far below the 2^53 bound where double addition of
/// small integers is exact.
inline Vec VIndices(size_t base) {
  double idx[Vec::kWidth];
  for (size_t w = 0; w < Vec::kWidth; ++w) {
    idx[w] = static_cast<double>(base + w);
  }
  return VLoad(idx);
}

/// Spreads the low kWidth bits of `bits` into one byte per element
/// (bit w -> byte w, value 0 or 1), so a whole block of uint8 flags
/// becomes shifts + ors + one small store instead of per-element
/// read-modify-write.
inline constexpr uint32_t kSpreadBitsToBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u};
inline uint32_t SpreadBits(uint32_t bits) {
  return kSpreadBitsToBytes[bits & 0xFu];
}

/// Stores the low kWidth bytes of `packed` at `dst` (little-endian
/// byte w = element w).
inline void StorePackedBytes(uint8_t* dst, uint32_t packed) {
  if constexpr (Vec::kWidth == 4) {
    std::memcpy(dst, &packed, 4);
  } else {
    const uint16_t low = static_cast<uint16_t>(packed);
    std::memcpy(dst, &low, 2);
  }
}

/// ClassifySymmetricDevice, vectorized: bit w of `transformative`
/// (resp. `effective`) is the corresponding scalar branch for element
/// w. Expression-for-expression: ep = f P, ncg = (1-f) F - B,
/// tol = BoundaryTolerance(ep, ncg).
struct RegionBits {
  uint32_t transformative = 0;
  uint32_t effective = 0;
};
inline RegionBits SymmetricRegionBits(Vec benefit, Vec cheat_gain, Vec f,
                                      Vec p) {
  const Vec ep = VMul(f, p);
  const Vec ncg = VSub(VMul(VSub(VBroadcast(1.0), f), cheat_gain), benefit);
  const Vec tol = BoundaryToleranceVec(ep, ncg);
  RegionBits bits;
  bits.transformative = VBits(VGt(ep, VAdd(ncg, tol)));
  bits.effective = VBits(VLe(VAbs(VSub(ep, ncg)), tol));
  return bits;
}

/// The eight payoff columns of an audited 2x2 game, one vector per
/// (row, col, player) — MakeAudited2x2 in SoA form.
struct Payoffs2x2 {
  Vec u00_0, u00_1;  ///< (H,H)
  Vec u01_0, u01_1;  ///< (H,C)
  Vec u10_0, u10_1;  ///< (C,H)
  Vec u11_0, u11_1;  ///< (C,C)
};

/// MakeAudited2x2 payoff arithmetic from per-element cheat payoffs and
/// spillovers (each already computed in the scalar expression order).
inline Payoffs2x2 MakePayoffs2x2(Vec b1, Vec b2, Vec cheat1, Vec cheat2,
                                 Vec spill_on_1, Vec spill_on_2) {
  Payoffs2x2 u;
  u.u00_0 = b1;
  u.u00_1 = b2;
  u.u01_0 = VSub(b1, spill_on_1);
  u.u01_1 = cheat2;
  u.u10_0 = cheat1;
  u.u10_1 = VSub(b2, spill_on_2);
  u.u11_0 = VSub(cheat1, spill_on_1);
  u.u11_1 = VSub(cheat2, spill_on_2);
  return u;
}

/// PureNashMask's deviation test per element: excl[r*2+c] bit w set
/// iff profile (r, c) of element w is rejected (some unilateral flip
/// pays more than current + kPayoffEpsilon).
struct NashBits {
  uint32_t excl[4] = {0, 0, 0, 0};
};
inline NashBits NashExclusionBits(const Payoffs2x2& u) {
  const Vec eps = VBroadcast(kPayoffEpsilon);
  const auto excl = [&](Vec cur0, Vec alt0, Vec cur1, Vec alt1) {
    return VBits(
        VOr(VGt(alt0, VAdd(cur0, eps)), VGt(alt1, VAdd(cur1, eps))));
  };
  NashBits bits;
  bits.excl[0] = excl(u.u00_0, u.u10_0, u.u00_1, u.u01_1);  // (H,H)
  bits.excl[1] = excl(u.u01_0, u.u11_0, u.u01_1, u.u00_1);  // (H,C)
  bits.excl[2] = excl(u.u10_0, u.u00_0, u.u10_1, u.u11_1);  // (C,H)
  bits.excl[3] = excl(u.u11_0, u.u01_0, u.u11_1, u.u10_1);  // (C,C)
  return bits;
}

/// HonestIsDse2x2 per element: bit w set iff honesty FAILS weak
/// dominance for element w (some column/row has
/// honest < cheat - kPayoffEpsilon).
inline uint32_t DseFailBits(const Payoffs2x2& u) {
  const Vec eps = VBroadcast(kPayoffEpsilon);
  const auto fail = [&](Vec honest, Vec cheat) {
    return VGt(VSub(cheat, eps), honest);
  };
  // Scalar test is honest < cheat - eps; a < b and b > a are the same
  // ordered predicate, so the operand swap is bit-exact.
  return VBits(VOr(VOr(fail(u.u00_0, u.u10_0), fail(u.u01_0, u.u11_0)),
                   VOr(fail(u.u00_1, u.u01_1), fail(u.u10_1, u.u11_1))));
}

/// Precomputed classification tables: region keys are
/// `transformative << 1 | effective` (mutually exclusive branches of
/// ClassifySymmetricDevice, so key 3 never occurs) and the matches
/// flag is tabulated from the real SymmetricMaskMatches over all
/// region x mask combinations — a per-element table lookup instead of
/// a cross-TU call per row. Built once on first use (thread-safe magic
/// static; batch dispatch reaches the lane only through ParallelFor,
/// whose first tile always runs before any sibling thread exists for
/// n < threads, and the guard is safe regardless).
struct SymmetricTables {
  SymmetricRegion region[4];
  uint8_t matches[4 * 16];
};
inline const SymmetricTables& GetSymmetricTables() {
  static const SymmetricTables tables = [] {
    SymmetricTables t;
    t.region[0] = SymmetricRegion::kAllCheatUniqueDse;
    t.region[1] = SymmetricRegion::kBoundary;
    t.region[2] = SymmetricRegion::kAllHonestUniqueDse;
    t.region[3] = SymmetricRegion::kAllHonestUniqueDse;  // unreachable
    for (int key = 0; key < 4; ++key) {
      for (int mask = 0; mask < 16; ++mask) {
        t.matches[key * 16 + mask] =
            SymmetricMaskMatches(t.region[key],
                                 static_cast<ProfileMask2x2>(mask))
                ? 1
                : 0;
      }
    }
    return t;
  }();
  return tables;
}

/// ClassifyAsymmetricRegion as an 8-entry table over
/// `boundary << 2 | p1_cheats << 1 | p2_cheats` (boundary wins
/// regardless of the cheat bits), with AsymmetricMaskMatches tabulated
/// per key x mask like the symmetric tables.
struct AsymmetricTables {
  AsymmetricRegion region[8];
  uint8_t matches[8 * 16];
};
inline const AsymmetricTables& GetAsymmetricTables() {
  static const AsymmetricTables tables = [] {
    AsymmetricTables t;
    for (int key = 0; key < 8; ++key) {
      const bool boundary = (key & 4) != 0;
      const bool c1 = (key & 2) != 0;
      const bool c2 = (key & 1) != 0;
      t.region[key] = boundary ? AsymmetricRegion::kBoundary
                      : c1 && c2 ? AsymmetricRegion::kBothCheat
                      : c1       ? AsymmetricRegion::kOnlyP1Cheats
                      : c2       ? AsymmetricRegion::kOnlyP2Cheats
                                 : AsymmetricRegion::kBothHonest;
      for (int mask = 0; mask < 16; ++mask) {
        t.matches[key * 16 + mask] =
            AsymmetricMaskMatches(t.region[key],
                                  static_cast<ProfileMask2x2>(mask))
                ? 1
                : 0;
      }
    }
    return t;
  }();
  return tables;
}

/// Scatter one vector block of symmetric-row classification results:
/// region enum from the region bits, nash mask from the exclusion
/// bits, DSE flag, and the region/mask agreement flag.
inline void WriteSymmetricBlock(const RegionBits& region_bits,
                                const NashBits& nash_bits, uint32_t dse_fail,
                                SymmetricRegion* region,
                                ProfileMask2x2* nash_mask, uint8_t* dse,
                                uint8_t* matches, size_t k) {
  const SymmetricTables& tables = GetSymmetricTables();
  // Byte w of packed_mask is element w's profile mask; assembled from
  // the four per-profile inclusion bit-planes in three shifted spreads.
  const uint32_t packed_mask = SpreadBits(~nash_bits.excl[0]) |
                               (SpreadBits(~nash_bits.excl[1]) << 1) |
                               (SpreadBits(~nash_bits.excl[2]) << 2) |
                               (SpreadBits(~nash_bits.excl[3]) << 3);
  StorePackedBytes(&nash_mask[k], packed_mask);
  StorePackedBytes(&dse[k], SpreadBits(~dse_fail));
  uint32_t packed_matches = 0;
  for (size_t w = 0; w < Vec::kWidth; ++w) {
    const unsigned mask = (packed_mask >> (8 * w)) & 0xFu;
    const unsigned key = (((region_bits.transformative >> w) & 1u) << 1) |
                         ((region_bits.effective >> w) & 1u);
    region[k + w] = tables.region[key];
    packed_matches |= static_cast<uint32_t>(tables.matches[key * 16 + mask])
                      << (8 * w);
  }
  StorePackedBytes(&matches[k], packed_matches);
}

}  // namespace

void EvalFrequencyRowsTile(const FrequencyBatchArgs& args, size_t lo,
                           size_t hi, FrequencyRowsSoA& out) {
  constexpr size_t W = Vec::kWidth;
  size_t k = lo;
  if (args.steps > 1) {
    const Vec one = VBroadcast(1.0);
    const Vec b = VBroadcast(args.benefit);
    const Vec cg = VBroadcast(args.cheat_gain);
    const Vec loss = VBroadcast(args.loss);
    const Vec p = VBroadcast(args.penalty);
    const Vec denom = VBroadcast(static_cast<double>(args.steps - 1));
    const Vec wstep = VBroadcast(static_cast<double>(W));
    Vec idx = VIndices(args.begin + k);
    for (; k + W <= hi; k += W, idx = VAdd(idx, wstep)) {
      const Vec f = VDiv(idx, denom);  // GridPoint
      VStore(&out.frequency[k], f);
      const RegionBits region = SymmetricRegionBits(b, cg, f, p);
      // MakeAudited2x2 on the symmetric parameterization.
      const Vec one_minus_f = VSub(one, f);
      const Vec cheat = VSub(VMul(one_minus_f, cg), VMul(f, p));
      const Vec spill = VMul(one_minus_f, loss);
      const Payoffs2x2 u = MakePayoffs2x2(b, b, cheat, cheat, spill, spill);
      WriteSymmetricBlock(region, NashExclusionBits(u), DseFailBits(u),
                          out.region.data(), out.nash_mask.data(),
                          out.honest_is_dse.data(), out.matches.data(), k);
    }
  }
  for (; k < hi; ++k) {
    StoreFrequencyRow(FrequencyRowAt(args.benefit, args.cheat_gain, args.loss,
                                     args.penalty, args.steps, args.begin + k),
                      out, k);
  }
}

void EvalPenaltyRowsTile(const PenaltyBatchArgs& args, size_t lo, size_t hi,
                         PenaltyRowsSoA& out) {
  constexpr size_t W = Vec::kWidth;
  size_t k = lo;
  if (args.steps > 1) {
    const Vec one = VBroadcast(1.0);
    const Vec b = VBroadcast(args.benefit);
    const Vec cg = VBroadcast(args.cheat_gain);
    const Vec loss = VBroadcast(args.loss);
    const Vec f = VBroadcast(args.frequency);
    const Vec maxp = VBroadcast(args.max_penalty);
    const Vec denom = VBroadcast(static_cast<double>(args.steps - 1));
    // Loop invariants of the scalar row: (1-f), cheat's first term and
    // the spillover are row-independent but still computed with vector
    // ops on the same values, so every element stays bit-identical.
    const Vec one_minus_f = VSub(one, f);
    const Vec cheat_gain_term = VMul(one_minus_f, cg);
    const Vec spill = VMul(one_minus_f, loss);
    const Vec wstep = VBroadcast(static_cast<double>(W));
    Vec idx = VIndices(args.begin + k);
    for (; k + W <= hi; k += W, idx = VAdd(idx, wstep)) {
      // row.penalty = max_penalty * index / (steps - 1), left-to-right.
      const Vec p = VDiv(VMul(maxp, idx), denom);
      VStore(&out.penalty[k], p);
      const RegionBits region = SymmetricRegionBits(b, cg, f, p);
      const Vec cheat = VSub(cheat_gain_term, VMul(f, p));
      const Payoffs2x2 u = MakePayoffs2x2(b, b, cheat, cheat, spill, spill);
      WriteSymmetricBlock(region, NashExclusionBits(u), DseFailBits(u),
                          out.region.data(), out.nash_mask.data(),
                          out.honest_is_dse.data(), out.matches.data(), k);
    }
  }
  for (; k < hi; ++k) {
    StorePenaltyRow(
        PenaltyRowAt(args.benefit, args.cheat_gain, args.loss, args.frequency,
                     args.max_penalty, args.steps, args.begin + k),
        out, k);
  }
}

void EvalAsymmetricCellsTile(const AsymmetricBatchArgs& args, size_t lo,
                             size_t hi, AsymmetricCellsSoA& out) {
  constexpr size_t W = Vec::kWidth;
  const TwoPlayerGameParams& prm = args.params;
  size_t k = lo;
  if (args.steps > 1) {
    const size_t steps = static_cast<size_t>(args.steps);
    // The critical frequencies are cell-independent; computing them
    // once per tile runs the exact CriticalFrequency expressions the
    // scalar path evaluates per cell.
    const double crit1_s = CriticalFrequency(
        prm.player1.benefit, prm.player1.cheat_gain, prm.audit1.penalty);
    const double crit2_s = CriticalFrequency(
        prm.player2.benefit, prm.player2.cheat_gain, prm.audit2.penalty);
    const Vec crit1 = VBroadcast(crit1_s);
    const Vec crit2 = VBroadcast(crit2_s);
    const Vec eps = VBroadcast(kBoundaryEps);
    const Vec one = VBroadcast(1.0);
    const Vec b1 = VBroadcast(prm.player1.benefit);
    const Vec b2 = VBroadcast(prm.player2.benefit);
    const Vec cg1 = VBroadcast(prm.player1.cheat_gain);
    const Vec cg2 = VBroadcast(prm.player2.cheat_gain);
    const Vec p1 = VBroadcast(prm.audit1.penalty);
    const Vec p2 = VBroadcast(prm.audit2.penalty);
    const Vec l_to_1 = VBroadcast(prm.loss_to_1);
    const Vec l_to_2 = VBroadcast(prm.loss_to_2);
    const Vec denom = VBroadcast(static_cast<double>(args.steps - 1));
    for (; k + W <= hi; k += W) {
      // Row-major grid decode: i = index / steps, j = index % steps.
      double fi[W], fj[W];
      for (size_t w = 0; w < W; ++w) {
        const size_t index = args.begin + k + w;
        fi[w] = static_cast<double>(index / steps);
        fj[w] = static_cast<double>(index % steps);
      }
      const Vec f1 = VDiv(VLoad(fi), denom);  // GridPoint(steps, i)
      const Vec f2 = VDiv(VLoad(fj), denom);  // GridPoint(steps, j)
      VStore(&out.f1[k], f1);
      VStore(&out.f2[k], f2);

      // ClassifyAsymmetricRegion per element.
      const uint32_t boundary =
          VBits(VOr(VLe(VAbs(VSub(f1, crit1)), eps),
                    VLe(VAbs(VSub(f2, crit2)), eps)));
      const uint32_t p1_cheats = VBits(VLt(f1, crit1));
      const uint32_t p2_cheats = VBits(VLt(f2, crit2));

      // MakeAudited2x2 with per-player frequencies.
      const Vec cheat1 = VSub(VMul(VSub(one, f1), cg1), VMul(f1, p1));
      const Vec cheat2 = VSub(VMul(VSub(one, f2), cg2), VMul(f2, p2));
      const Vec spill_on_1 = VMul(VSub(one, f2), l_to_1);
      const Vec spill_on_2 = VMul(VSub(one, f1), l_to_2);
      const Payoffs2x2 u =
          MakePayoffs2x2(b1, b2, cheat1, cheat2, spill_on_1, spill_on_2);
      const NashBits nash_bits = NashExclusionBits(u);
      const AsymmetricTables& tables = GetAsymmetricTables();
      const uint32_t packed_mask = SpreadBits(~nash_bits.excl[0]) |
                                   (SpreadBits(~nash_bits.excl[1]) << 1) |
                                   (SpreadBits(~nash_bits.excl[2]) << 2) |
                                   (SpreadBits(~nash_bits.excl[3]) << 3);
      StorePackedBytes(&out.nash_mask[k], packed_mask);
      uint32_t packed_matches = 0;
      for (size_t w = 0; w < W; ++w) {
        const unsigned mask = (packed_mask >> (8 * w)) & 0xFu;
        const unsigned key = (((boundary >> w) & 1u) << 2) |
                             (((p1_cheats >> w) & 1u) << 1) |
                             ((p2_cheats >> w) & 1u);
        out.region[k + w] = tables.region[key];
        packed_matches |=
            static_cast<uint32_t>(tables.matches[key * 16 + mask]) << (8 * w);
      }
      StorePackedBytes(&out.matches[k], packed_matches);
    }
  }
  for (; k < hi; ++k) {
    StoreAsymmetricCell(AsymmetricCellAt(prm, args.steps, args.begin + k), out,
                        k);
  }
}

void EvalNPlayerBandRowsTile(const NPlayerBatchArgs& args, size_t lo,
                             size_t hi, NPlayerBandRowsSoA& out) {
  constexpr size_t W = Vec::kWidth;
  const NPlayerKernelParams& prm = args.params;
  size_t k = lo;
  if (args.steps > 1) {
    const int n = prm.n;
    const double f = prm.frequency;
    const double b = prm.benefit;
    // Penalty-independent per-x tables, in the scalar expression
    // order: gain_term[x] = (1-f) F(x) feeds both the band bound
    // ((1-f) F(x) - B)/f - eps and CheatAdvantage's first term.
    double gain_term[kMaxKernelPlayers];
    double band_bound[kMaxKernelPlayers];
    for (int x = 0; x < n; ++x) {
      gain_term[x] = (1 - f) * prm.gain_table[static_cast<size_t>(x)];
      band_bound[x] = (gain_term[x] - b) / f - kBoundaryEps;
    }
    const Vec fv = VBroadcast(f);
    const Vec bv = VBroadcast(b);
    const Vec maxp = VBroadcast(args.max_penalty);
    const Vec denom = VBroadcast(static_cast<double>(args.steps - 1));
    const Vec eps = VBroadcast(kPayoffEpsilon);
    const Vec neg_eps = VBroadcast(-kPayoffEpsilon);
    const Vec wstep = VBroadcast(static_cast<double>(W));
    Vec idx = VIndices(args.begin + k);
    for (; k + W <= hi; k += W, idx = VAdd(idx, wstep)) {
      const Vec p = VDiv(VMul(maxp, idx), denom);
      VStore(&out.penalty[k], p);
      const Vec fp = VMul(fv, p);

      // NPlayerEquilibriumHonestCount: first x whose band bound the
      // penalty does NOT exceed. Pure compares against the precomputed
      // bounds — no arithmetic left to diverge.
      double pvals[W];
      VStore(pvals, p);
      int analytic[W];
      for (size_t w = 0; w < W; ++w) {
        int x = 0;
        while (x < n && pvals[w] > band_bound[x]) ++x;
        analytic[w] = x;
        out.analytic_honest_count[k + w] = x;
      }

      // Nash band membership per candidate count x, vectorized over
      // rows: advantage(x) = ((1-f) F(x) - f P) - B, exactly
      // CheatAdvantage's (1-f) F(x) - f P - B left-to-right.
      HonestCountMask mask[W] = {};
      int count_size[W] = {};
      bool analytic_in[W] = {};
      uint32_t gt_prev = 0;   // advantage(x-1) >  eps bits
      uint32_t ge_first = 0;  // advantage(0)   >= -eps bits
      uint32_t le_last = 0;   // advantage(n-1) <=  eps bits
      for (int x = 0; x <= n; ++x) {
        uint32_t lt_cur = 0;
        uint32_t gt_cur = 0;
        if (x < n) {
          const Vec adv = VSub(VSub(VBroadcast(gain_term[x]), fp), bv);
          lt_cur = VBits(VLt(adv, neg_eps));
          gt_cur = VBits(VGt(adv, eps));
          if (x == 0) ge_first = VBits(VGe(adv, neg_eps));
          if (x == n - 1) le_last = VBits(VLe(adv, eps));
        }
        const uint32_t excluded = gt_prev | lt_cur;
        for (size_t w = 0; w < W; ++w) {
          if (((excluded >> w) & 1u) != 0) continue;
          mask[w] |= HonestCountMask{1} << x;
          ++count_size[w];
          if (x == analytic[w]) analytic_in[w] = true;
        }
        gt_prev = gt_cur;
      }
      for (size_t w = 0; w < W; ++w) {
        out.count_mask[k + w] = mask[w];
        out.honest_is_dominant[k + w] = ((le_last >> w) & 1u) != 0 ? 1 : 0;
        out.cheat_is_dominant[k + w] = ((ge_first >> w) & 1u) != 0 ? 1 : 0;
        out.matches[k + w] = (analytic_in[w] && count_size[w] <= 2) ? 1 : 0;
      }
    }
  }
  for (; k < hi; ++k) {
    StoreNPlayerBandRow(
        NPlayerBandRowAt(prm, args.max_penalty, args.steps, args.begin + k),
        out, k);
  }
}

void EvalDevicePointsTile(const DeviceBatchArgs& args, size_t lo, size_t hi,
                          DeviceAnswersSoA& out) {
  constexpr size_t W = Vec::kWidth;
  const DevicePointsSoA& in = *args.in;
  const Vec one = VBroadcast(1.0);
  const Vec zero = VBroadcast(0.0);
  const Vec margin = VBroadcast(args.margin);
  const Vec inf = VBroadcast(std::numeric_limits<double>::infinity());
  size_t k = lo;
  for (; k + W <= hi; k += W) {
    const size_t src = args.begin + k;
    const Vec b = VLoad(&in.benefit[src]);
    const Vec cg = VLoad(&in.cheat_gain[src]);
    const Vec f = VLoad(&in.frequency[src]);
    const Vec p = VLoad(&in.penalty[src]);

    // ClassifySymmetricDevice.
    const RegionBits region = SymmetricRegionBits(b, cg, f, p);

    // MinFrequency = clamp(CriticalFrequency + margin, 0, 1); the
    // clamp is std::clamp's exact `v < lo ? lo : (hi < v ? hi : v)`.
    const Vec crit_f = VDiv(VSub(cg, b), VAdd(p, cg));
    const Vec mf_raw = VAdd(crit_f, margin);
    const Vec mf = VSelect(VLt(mf_raw, zero), zero,
                           VSelect(VLt(one, mf_raw), one, mf_raw));
    VStore(&out.min_frequency[k], mf);

    // CriticalPenalty: +inf at f == 0 selected *before* the division
    // result is trusted — f may be -0.0, where num / f is -inf but the
    // scalar path returns +inf without dividing.
    const Vec cp_num = VSub(VMul(VSub(one, f), cg), b);
    const Vec cp = VSelect(VEq(f, zero), inf, VDiv(cp_num, f));
    const Vec mp = VSelect(VLt(cp, zero), zero, VAdd(cp, margin));
    VStore(&out.min_penalty[k], mp);

    // ZeroPenaltyFrequency = (F - B) / F.
    VStore(&out.zero_penalty_frequency[k], VDiv(VSub(cg, b), cg));

    for (size_t w = 0; w < W; ++w) {
      out.effectiveness[k + w] =
          ((region.transformative >> w) & 1u) != 0
              ? DeviceEffectiveness::kTransformative
              : (((region.effective >> w) & 1u) != 0
                     ? DeviceEffectiveness::kEffective
                     : DeviceEffectiveness::kIneffective);
    }
  }
  for (; k < hi; ++k) {
    const size_t src = args.begin + k;
    StoreDeviceAnswer(DeviceAnswerAt(in.benefit[src], in.cheat_gain[src],
                                     in.frequency[src], in.penalty[src],
                                     args.margin),
                      out, k);
  }
}

}  // namespace HSIS_SIMD_LANE_NS
}  // namespace hsis::game::kernel::detail

#include "game/kernel.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/simd_dispatch.h"
#include "game/equilibrium.h"
#include "game/kernel_lanes.h"

namespace hsis::game::kernel {

namespace {

/// Tile of the batch evaluators: the scheduling unit of
/// common::ParallelForTiles and the working-set unit of the SIMD
/// lanes. 256 rows keeps the widest SoA tile (~14 KB for the n-player
/// evaluator, ~4 KB double columns elsewhere) L1-resident, amortizes
/// the per-tile std::function dispatch across microsecond rows, and is
/// deliberately shaped like a GPU thread block (256 = 8 warps of 32),
/// so a future device port can map one tile to one block without
/// re-deriving batch geometry.
constexpr size_t kTileRows = 256;

/// File-local twin of the private boundary epsilon in thresholds.cc —
/// the n-player band loop must reproduce `NPlayerEquilibriumHonestCount`
/// bit-for-bit, `- kEps` included.
constexpr double kBandEps = 1e-12;

Status ValidateSteps(int steps) {
  if (steps < 1) return Status::InvalidArgument("steps must be >= 1");
  return Status::OK();
}

Status ValidateRange(int steps, size_t span, size_t begin, size_t count) {
  if (begin > span || count > span - begin) {
    return Status::InvalidArgument("row range exceeds sweep index space");
  }
  (void)steps;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scalar lane + per-lane tile selection.
//
// The scalar tiles below run the unvectorized per-row functions over a
// whole tile; they are the reference lane every vector lane
// (kernel_lane_sse2.cc / kernel_lane_avx2.cc, via kernel_simd_impl.h)
// must match bit-for-bit. Selection happens once per batch from
// common::ActiveSimdLane(); unsupported cases fall through to scalar
// only for lanes that were never compiled in (the dispatcher already
// rejected overrides naming them).
// ---------------------------------------------------------------------------

void ScalarFrequencyTile(const detail::FrequencyBatchArgs& args, size_t lo,
                         size_t hi, FrequencyRowsSoA& out) {
  for (size_t k = lo; k < hi; ++k) {
    detail::StoreFrequencyRow(
        FrequencyRowAt(args.benefit, args.cheat_gain, args.loss, args.penalty,
                       args.steps, args.begin + k),
        out, k);
  }
}

void ScalarPenaltyTile(const detail::PenaltyBatchArgs& args, size_t lo,
                       size_t hi, PenaltyRowsSoA& out) {
  for (size_t k = lo; k < hi; ++k) {
    detail::StorePenaltyRow(
        PenaltyRowAt(args.benefit, args.cheat_gain, args.loss, args.frequency,
                     args.max_penalty, args.steps, args.begin + k),
        out, k);
  }
}

void ScalarAsymmetricTile(const detail::AsymmetricBatchArgs& args, size_t lo,
                          size_t hi, AsymmetricCellsSoA& out) {
  for (size_t k = lo; k < hi; ++k) {
    detail::StoreAsymmetricCell(
        AsymmetricCellAt(args.params, args.steps, args.begin + k), out, k);
  }
}

void ScalarNPlayerTile(const detail::NPlayerBatchArgs& args, size_t lo,
                       size_t hi, NPlayerBandRowsSoA& out) {
  for (size_t k = lo; k < hi; ++k) {
    detail::StoreNPlayerBandRow(
        NPlayerBandRowAt(args.params, args.max_penalty, args.steps,
                         args.begin + k),
        out, k);
  }
}

void ScalarDeviceTile(const detail::DeviceBatchArgs& args, size_t lo,
                      size_t hi, DeviceAnswersSoA& out) {
  const DevicePointsSoA& in = *args.in;
  for (size_t k = lo; k < hi; ++k) {
    const size_t src = args.begin + k;
    detail::StoreDeviceAnswer(
        DeviceAnswerAt(in.benefit[src], in.cheat_gain[src], in.frequency[src],
                       in.penalty[src], args.margin),
        out, k);
  }
}

/// Maps the active lane to one of the five tile-function families.
/// Plain function-pointer dispatch: resolved once per batch, zero
/// allocations, and the TSan-covered parallel loop only ever sees the
/// already-selected pointer.
#define HSIS_SELECT_TILE(fn_suffix, scalar_fn)                        \
  switch (lane) {                                                     \
    case common::SimdLane::kSse2:                                     \
      HSIS_IF_SSE2(return detail::lane_sse2::Eval##fn_suffix;)        \
      break;                                                          \
    case common::SimdLane::kAvx2:                                     \
      HSIS_IF_AVX2(return detail::lane_avx2::Eval##fn_suffix;)        \
      break;                                                          \
    case common::SimdLane::kScalar:                                   \
      break;                                                          \
  }                                                                   \
  return scalar_fn

#ifdef HSIS_HAVE_SSE2_LANE
#define HSIS_IF_SSE2(stmt) stmt
#else
#define HSIS_IF_SSE2(stmt)
#endif
#ifdef HSIS_HAVE_AVX2_LANE
#define HSIS_IF_AVX2(stmt) stmt
#else
#define HSIS_IF_AVX2(stmt)
#endif

using FrequencyTileFn = void (*)(const detail::FrequencyBatchArgs&, size_t,
                                 size_t, FrequencyRowsSoA&);
using PenaltyTileFn = void (*)(const detail::PenaltyBatchArgs&, size_t,
                               size_t, PenaltyRowsSoA&);
using AsymmetricTileFn = void (*)(const detail::AsymmetricBatchArgs&, size_t,
                                  size_t, AsymmetricCellsSoA&);
using NPlayerTileFn = void (*)(const detail::NPlayerBatchArgs&, size_t,
                               size_t, NPlayerBandRowsSoA&);
using DeviceTileFn = void (*)(const detail::DeviceBatchArgs&, size_t, size_t,
                              DeviceAnswersSoA&);

FrequencyTileFn SelectFrequencyTile(common::SimdLane lane) {
  HSIS_SELECT_TILE(FrequencyRowsTile, ScalarFrequencyTile);
}
PenaltyTileFn SelectPenaltyTile(common::SimdLane lane) {
  HSIS_SELECT_TILE(PenaltyRowsTile, ScalarPenaltyTile);
}
AsymmetricTileFn SelectAsymmetricTile(common::SimdLane lane) {
  HSIS_SELECT_TILE(AsymmetricCellsTile, ScalarAsymmetricTile);
}
NPlayerTileFn SelectNPlayerTile(common::SimdLane lane) {
  HSIS_SELECT_TILE(NPlayerBandRowsTile, ScalarNPlayerTile);
}
DeviceTileFn SelectDeviceTile(common::SimdLane lane) {
  HSIS_SELECT_TILE(DevicePointsTile, ScalarDeviceTile);
}

#undef HSIS_SELECT_TILE
#undef HSIS_IF_SSE2
#undef HSIS_IF_AVX2

}  // namespace

Game2x2 MakeAudited2x2(const TwoPlayerGameParams& params) {
  // Exactly the payoff arithmetic of MakeTwoPlayerHonestyGame — same
  // expressions in the same order, so every double is bit-identical to
  // the generic path (which the golden CSV pins rely on).
  const double b1 = params.player1.benefit;
  const double b2 = params.player2.benefit;
  const double f1 = params.audit1.frequency;
  const double f2 = params.audit2.frequency;
  const double cheat1 =
      (1 - f1) * params.player1.cheat_gain - f1 * params.audit1.penalty;
  const double cheat2 =
      (1 - f2) * params.player2.cheat_gain - f2 * params.audit2.penalty;
  const double spill_on_1 = (1 - f2) * params.loss_to_1;  // (1-f2) L21
  const double spill_on_2 = (1 - f1) * params.loss_to_2;  // (1-f1) L12

  Game2x2 game;
  game.SetPayoffs(kHonest, kHonest, b1, b2);
  game.SetPayoffs(kHonest, kCheat, b1 - spill_on_1, cheat2);
  game.SetPayoffs(kCheat, kHonest, cheat1, b2 - spill_on_2);
  game.SetPayoffs(kCheat, kCheat, cheat1 - spill_on_1, cheat2 - spill_on_2);
  return game;
}

ProfileMask2x2 PureNashMask(const Game2x2& game) {
  // The IsNashEquilibrium deviation test of game/equilibrium.cc: reject
  // a profile iff some unilateral alternative pays strictly more than
  // current + kPayoffEpsilon. With two strategies the only alternative
  // is the flipped one.
  ProfileMask2x2 mask = 0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      if (game.Payoff(1 - r, c, 0) > game.Payoff(r, c, 0) + kPayoffEpsilon) {
        continue;
      }
      if (game.Payoff(r, 1 - c, 1) > game.Payoff(r, c, 1) + kPayoffEpsilon) {
        continue;
      }
      mask |= static_cast<ProfileMask2x2>(1u << (r * 2 + c));
    }
  }
  return mask;
}

bool HonestIsDse2x2(const Game2x2& game) {
  // H has the lowest strategy index, so DominantStrategyEquilibrium
  // returns (H, H) exactly when H is weakly dominant for both players —
  // the IsDominantStrategy test: fail iff payoff_s < payoff_alt - eps
  // against some opponent choice.
  for (int c = 0; c < 2; ++c) {
    if (game.Payoff(kHonest, c, 0) <
        game.Payoff(kCheat, c, 0) - kPayoffEpsilon) {
      return false;
    }
  }
  for (int r = 0; r < 2; ++r) {
    if (game.Payoff(r, kHonest, 1) <
        game.Payoff(r, kCheat, 1) - kPayoffEpsilon) {
      return false;
    }
  }
  return true;
}

int MaskCount(ProfileMask2x2 mask) {
  int count = 0;
  for (ProfileMask2x2 m = mask; m != 0; m &= static_cast<ProfileMask2x2>(m - 1)) {
    ++count;
  }
  return count;
}

const std::string& NashMaskJoined(ProfileMask2x2 mask) {
  // All 16 possible ';'-joined label sets in profile order, materialized
  // once: serialization reads a static string, never builds one.
  static const std::array<std::string, 16> kJoined = [] {
    const char* labels[4] = {"HH", "HC", "CH", "CC"};
    std::array<std::string, 16> out;
    for (unsigned m = 0; m < 16; ++m) {
      for (int bit = 0; bit < 4; ++bit) {
        if ((m & (1u << bit)) == 0) continue;
        if (!out[m].empty()) out[m] += ';';
        out[m] += labels[bit];
      }
    }
    return out;
  }();
  return kJoined[mask & 0xF];
}

void AppendNashLabels(ProfileMask2x2 mask, std::vector<std::string>& out) {
  static const char* kLabels[4] = {"HH", "HC", "CH", "CC"};
  for (int bit = 0; bit < 4; ++bit) {
    if (mask & (1u << bit)) out.emplace_back(kLabels[bit]);
  }
}

bool SymmetricMaskMatches(SymmetricRegion region, ProfileMask2x2 mask) {
  // SymmetricPredictionHolds on bitmasks: interior regions predict a
  // unique equilibrium, the boundary only requires (H,H) among the NE.
  switch (region) {
    case SymmetricRegion::kAllCheatUniqueDse:
      return mask == kMaskCC;
    case SymmetricRegion::kAllHonestUniqueDse:
      return mask == kMaskHH;
    case SymmetricRegion::kBoundary:
      return (mask & kMaskHH) != 0;
  }
  return false;
}

bool AsymmetricMaskMatches(AsymmetricRegion region, ProfileMask2x2 mask) {
  switch (region) {
    case AsymmetricRegion::kBoundary:
      return true;  // boundary cells are vacuously consistent
    case AsymmetricRegion::kBothCheat:
      return mask == kMaskCC;
    case AsymmetricRegion::kOnlyP1Cheats:
      return mask == kMaskCH;
    case AsymmetricRegion::kOnlyP2Cheats:
      return mask == kMaskHC;
    case AsymmetricRegion::kBothHonest:
      return mask == kMaskHH;
  }
  return false;
}

FrequencyRowKernel FrequencyRowAt(double benefit, double cheat_gain,
                                  double loss, double penalty, int steps,
                                  size_t index) {
  FrequencyRowKernel row;
  row.frequency = GridPoint(steps, index);
  const Game2x2 game = MakeAudited2x2(TwoPlayerGameParams::Symmetric(
      benefit, cheat_gain, loss, row.frequency, penalty));
  row.region =
      ClassifySymmetricRegion(benefit, cheat_gain, row.frequency, penalty);
  row.nash_mask = PureNashMask(game);
  row.honest_is_dse = HonestIsDse2x2(game);
  row.matches = SymmetricMaskMatches(row.region, row.nash_mask);
  return row;
}

PenaltyRowKernel PenaltyRowAt(double benefit, double cheat_gain, double loss,
                              double frequency, double max_penalty, int steps,
                              size_t index) {
  PenaltyRowKernel row;
  row.penalty = steps == 1
                    ? 0.0
                    : max_penalty * static_cast<double>(index) / (steps - 1);
  const Game2x2 game = MakeAudited2x2(TwoPlayerGameParams::Symmetric(
      benefit, cheat_gain, loss, frequency, row.penalty));
  row.region =
      ClassifySymmetricRegion(benefit, cheat_gain, frequency, row.penalty);
  row.nash_mask = PureNashMask(game);
  row.honest_is_dse = HonestIsDse2x2(game);
  row.matches = SymmetricMaskMatches(row.region, row.nash_mask);
  return row;
}

AsymmetricCellKernel AsymmetricCellAt(const TwoPlayerGameParams& params,
                                      int steps, size_t index) {
  const size_t i = index / static_cast<size_t>(steps);
  const size_t j = index % static_cast<size_t>(steps);
  TwoPlayerGameParams p = params;
  p.audit1.frequency = GridPoint(steps, i);
  p.audit2.frequency = GridPoint(steps, j);

  AsymmetricCellKernel cell;
  cell.f1 = p.audit1.frequency;
  cell.f2 = p.audit2.frequency;
  const Game2x2 game = MakeAudited2x2(p);
  cell.region = ClassifyAsymmetricRegion(
      p.player1.benefit, p.player1.cheat_gain, p.audit1.penalty, cell.f1,
      p.player2.benefit, p.player2.cheat_gain, p.audit2.penalty, cell.f2);
  cell.nash_mask = PureNashMask(game);
  cell.matches = AsymmetricMaskMatches(cell.region, cell.nash_mask);
  return cell;
}

Result<FrequencyRowKernel> EvalFrequencyRow(double benefit, double cheat_gain,
                                            double loss, double penalty,
                                            int steps, size_t index) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  if (index >= static_cast<size_t>(steps)) {
    return Status::InvalidArgument("row index out of range");
  }
  HSIS_RETURN_IF_ERROR(
      TwoPlayerGameParams::Symmetric(benefit, cheat_gain, loss,
                                     GridPoint(steps, index), penalty)
          .Validate());
  return FrequencyRowAt(benefit, cheat_gain, loss, penalty, steps, index);
}

Result<PenaltyRowKernel> EvalPenaltyRow(double benefit, double cheat_gain,
                                        double loss, double frequency,
                                        double max_penalty, int steps,
                                        size_t index) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  if (index >= static_cast<size_t>(steps)) {
    return Status::InvalidArgument("row index out of range");
  }
  const double p = steps == 1
                       ? 0.0
                       : max_penalty * static_cast<double>(index) / (steps - 1);
  HSIS_RETURN_IF_ERROR(TwoPlayerGameParams::Symmetric(benefit, cheat_gain,
                                                      loss, frequency, p)
                           .Validate());
  return PenaltyRowAt(benefit, cheat_gain, loss, frequency, max_penalty, steps,
                      index);
}

Result<AsymmetricCellKernel> EvalAsymmetricCell(
    const TwoPlayerGameParams& params, int steps, size_t index) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  if (index >= static_cast<size_t>(steps) * static_cast<size_t>(steps)) {
    return Status::InvalidArgument("cell index out of range");
  }
  TwoPlayerGameParams p = params;
  p.audit1.frequency = 0;
  p.audit2.frequency = 0;
  HSIS_RETURN_IF_ERROR(p.Validate());
  return AsymmetricCellAt(params, steps, index);
}

Result<NPlayerKernelParams> MakeNPlayerKernelParams(
    const NPlayerHonestyGame::Params& params) {
  // The validation of NPlayerHonestyGame::Create, performed once per
  // batch instead of once per row, plus the sweep's Theorem 1
  // requirement (frequency > 0) and the fixed-capacity bound.
  if (params.n < 2) {
    return Status::InvalidArgument("n-player game needs n >= 2");
  }
  if (params.n > kMaxKernelPlayers) {
    return Status::OutOfRange("n-player kernel limited to n <= 63");
  }
  if (!params.gain) {
    return Status::InvalidArgument("gain function F is required");
  }
  if (params.frequency <= 0 || params.frequency > 1) {
    return Status::InvalidArgument(
        "n-player penalty sweep requires frequency in (0, 1] (Theorem 1)");
  }
  if (params.penalty < 0 || params.uniform_loss < 0 || params.benefit < 0) {
    return Status::InvalidArgument("B, P and L must be non-negative");
  }
  if (!params.loss_matrix.empty()) {
    if (params.loss_matrix.size() != static_cast<size_t>(params.n)) {
      return Status::InvalidArgument("loss matrix must be n x n");
    }
    for (const auto& row : params.loss_matrix) {
      if (row.size() != static_cast<size_t>(params.n)) {
        return Status::InvalidArgument("loss matrix must be n x n");
      }
      for (double v : row) {
        if (v < 0) return Status::InvalidArgument("losses must be >= 0");
      }
    }
  }
  NPlayerKernelParams out;
  out.n = params.n;
  out.benefit = params.benefit;
  out.frequency = params.frequency;
  for (int x = 0; x < params.n; ++x) {
    out.gain_table[static_cast<size_t>(x)] = params.gain(x);
  }
  for (int x = 0; x + 1 < params.n; ++x) {
    if (out.gain_table[static_cast<size_t>(x + 1)] <
        out.gain_table[static_cast<size_t>(x)] - 1e-12) {
      return Status::InvalidArgument(
          "gain function F must be monotone increasing in the number of "
          "honest players");
    }
  }
  return out;
}

NPlayerBandRowKernel NPlayerBandRowAt(const NPlayerKernelParams& params,
                                      double max_penalty, int steps,
                                      size_t index) {
  NPlayerBandRowKernel row;
  row.penalty = steps == 1
                    ? 0.0
                    : max_penalty * static_cast<double>(index) / (steps - 1);

  const int n = params.n;
  const double f = params.frequency;
  const double b = params.benefit;
  const double p = row.penalty;

  // NPlayerEquilibriumHonestCount: largest x with
  // P > ((1-f) F(x-1) - B)/f — the band loop of thresholds.cc with its
  // private 1e-12 epsilon, gain table in place of the std::function.
  int analytic = 0;
  while (analytic < n &&
         p > ((1 - f) * params.gain_table[static_cast<size_t>(analytic)] - b) /
                     f -
                 kBandEps) {
    ++analytic;
  }
  row.analytic_honest_count = analytic;

  // CheatAdvantage(x) = (1-f) F(x) - f P - B, exactly as in
  // nplayer_game.cc; the symmetric-class Nash check compares against
  // kPayoffEpsilon on both edges.
  const auto advantage = [&](int x) {
    return (1 - f) * params.gain_table[static_cast<size_t>(x)] - f * p - b;
  };
  HonestCountMask mask = 0;
  int count_size = 0;
  bool analytic_in_counts = false;
  for (int x = 0; x <= n; ++x) {
    if (x > 0 && advantage(x - 1) > kPayoffEpsilon) continue;
    if (x < n && advantage(x) < -kPayoffEpsilon) continue;
    mask |= HonestCountMask{1} << x;
    ++count_size;
    if (x == analytic) analytic_in_counts = true;
  }
  row.count_mask = mask;
  row.honest_is_dominant = advantage(n - 1) <= kPayoffEpsilon;
  row.cheat_is_dominant = advantage(0) >= -kPayoffEpsilon;
  row.matches = analytic_in_counts && count_size <= 2;
  return row;
}

Result<NPlayerBandRowKernel> EvalNPlayerBandRow(
    const NPlayerKernelParams& params, double max_penalty, int steps,
    size_t index) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  if (index >= static_cast<size_t>(steps)) {
    return Status::InvalidArgument("row index out of range");
  }
  const double p = steps == 1
                       ? 0.0
                       : max_penalty * static_cast<double>(index) / (steps - 1);
  if (p < 0) {
    return Status::InvalidArgument("B, P and L must be non-negative");
  }
  return NPlayerBandRowAt(params, max_penalty, steps, index);
}

int CountMaskSize(HonestCountMask mask) {
  int count = 0;
  for (HonestCountMask m = mask; m != 0; m &= m - 1) ++count;
  return count;
}

void AppendHonestCounts(HonestCountMask mask, std::vector<int>& out) {
  for (int x = 0; x <= kMaxKernelPlayers; ++x) {
    if (mask & (HonestCountMask{1} << x)) out.push_back(x);
  }
}

void FrequencyRowsSoA::Resize(size_t n) {
  frequency.resize(n);
  region.resize(n);
  nash_mask.resize(n);
  honest_is_dse.resize(n);
  matches.resize(n);
}

void PenaltyRowsSoA::Resize(size_t n) {
  penalty.resize(n);
  region.resize(n);
  nash_mask.resize(n);
  honest_is_dse.resize(n);
  matches.resize(n);
}

void AsymmetricCellsSoA::Resize(size_t n) {
  f1.resize(n);
  f2.resize(n);
  region.resize(n);
  nash_mask.resize(n);
  matches.resize(n);
}

void NPlayerBandRowsSoA::Resize(size_t n) {
  penalty.resize(n);
  analytic_honest_count.resize(n);
  count_mask.resize(n);
  honest_is_dominant.resize(n);
  cheat_is_dominant.resize(n);
  matches.resize(n);
}

Status EvalFrequencyRows(double benefit, double cheat_gain, double loss,
                         double penalty, int steps, size_t begin, size_t count,
                         FrequencyRowsSoA& out, int threads) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  HSIS_RETURN_IF_ERROR(
      ValidateRange(steps, static_cast<size_t>(steps), begin, count));
  // One validation covers the whole batch: only the audit frequency
  // varies across rows and every grid point lies in [0, 1].
  HSIS_RETURN_IF_ERROR(
      TwoPlayerGameParams::Symmetric(benefit, cheat_gain, loss, 0.0, penalty)
          .Validate());
  HSIS_ASSIGN_OR_RETURN(const common::SimdLane lane,
                        common::ActiveSimdLane());
  out.Resize(count);
  const detail::FrequencyBatchArgs args{benefit, cheat_gain, loss,
                                        penalty, steps,      begin};
  const FrequencyTileFn tile = SelectFrequencyTile(lane);
  common::ParallelForTiles(threads, count, kTileRows,
                           [&](size_t lo, size_t hi) {
                             tile(args, lo, hi, out);
                           });
  return Status::OK();
}

Status EvalPenaltyRows(double benefit, double cheat_gain, double loss,
                       double frequency, double max_penalty, int steps,
                       size_t begin, size_t count, PenaltyRowsSoA& out,
                       int threads) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  HSIS_RETURN_IF_ERROR(
      ValidateRange(steps, static_cast<size_t>(steps), begin, count));
  // The largest sampled penalty validates the whole batch (penalties
  // scale linearly from 0): max_penalty < 0 fails here exactly as the
  // per-row legacy path would on its first negative sample.
  HSIS_RETURN_IF_ERROR(TwoPlayerGameParams::Symmetric(
                           benefit, cheat_gain, loss, frequency,
                           steps == 1 ? 0.0 : max_penalty)
                           .Validate());
  HSIS_ASSIGN_OR_RETURN(const common::SimdLane lane,
                        common::ActiveSimdLane());
  out.Resize(count);
  const detail::PenaltyBatchArgs args{benefit,     cheat_gain, loss, frequency,
                                      max_penalty, steps,      begin};
  const PenaltyTileFn tile = SelectPenaltyTile(lane);
  common::ParallelForTiles(threads, count, kTileRows,
                           [&](size_t lo, size_t hi) {
                             tile(args, lo, hi, out);
                           });
  return Status::OK();
}

Status EvalAsymmetricCells(const TwoPlayerGameParams& params, int steps,
                           size_t begin, size_t count, AsymmetricCellsSoA& out,
                           int threads) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  HSIS_RETURN_IF_ERROR(ValidateRange(
      steps, static_cast<size_t>(steps) * static_cast<size_t>(steps), begin,
      count));
  TwoPlayerGameParams probe = params;
  probe.audit1.frequency = 0;
  probe.audit2.frequency = 0;
  HSIS_RETURN_IF_ERROR(probe.Validate());
  HSIS_ASSIGN_OR_RETURN(const common::SimdLane lane,
                        common::ActiveSimdLane());
  out.Resize(count);
  const detail::AsymmetricBatchArgs args{params, steps, begin};
  const AsymmetricTileFn tile = SelectAsymmetricTile(lane);
  common::ParallelForTiles(threads, count, kTileRows,
                           [&](size_t lo, size_t hi) {
                             tile(args, lo, hi, out);
                           });
  return Status::OK();
}

Status EvalNPlayerBandRows(const NPlayerHonestyGame::Params& base_params,
                           double max_penalty, int steps, size_t begin,
                           size_t count, NPlayerBandRowsSoA& out,
                           int threads) {
  HSIS_RETURN_IF_ERROR(ValidateSteps(steps));
  HSIS_RETURN_IF_ERROR(
      ValidateRange(steps, static_cast<size_t>(steps), begin, count));
  HSIS_ASSIGN_OR_RETURN(NPlayerKernelParams params,
                        MakeNPlayerKernelParams(base_params));
  if (steps > 1 && max_penalty < 0) {
    return Status::InvalidArgument("B, P and L must be non-negative");
  }
  HSIS_ASSIGN_OR_RETURN(const common::SimdLane lane,
                        common::ActiveSimdLane());
  out.Resize(count);
  const detail::NPlayerBatchArgs args{params, max_penalty, steps, begin};
  const NPlayerTileFn tile = SelectNPlayerTile(lane);
  common::ParallelForTiles(threads, count, kTileRows,
                           [&](size_t lo, size_t hi) {
                             tile(args, lo, hi, out);
                           });
  return Status::OK();
}

DeviceAnswerKernel DeviceAnswerAt(double benefit, double cheat_gain,
                                  double frequency, double penalty,
                                  double margin) {
  // Exactly the MechanismDesigner analytic layer, expression for
  // expression: Classify == ClassifySymmetricDevice, MinFrequency ==
  // clamp(f* + margin, 0, 1), MinPenalty == (P* < 0 ? 0 : P* + margin)
  // with CriticalPenalty's +infinity at f == 0 propagating through, and
  // ZeroPenaltyFrequency verbatim. The serve-layer cross-validation
  // suite pins bit-equality on a dense grid.
  DeviceAnswerKernel answer;
  answer.effectiveness =
      ClassifySymmetricDevice(benefit, cheat_gain, frequency, penalty);
  answer.min_frequency = std::clamp(
      CriticalFrequency(benefit, cheat_gain, penalty) + margin, 0.0, 1.0);
  const double critical_penalty =
      CriticalPenalty(benefit, cheat_gain, frequency);
  answer.min_penalty = critical_penalty < 0 ? 0.0 : critical_penalty + margin;
  answer.zero_penalty_frequency = ZeroPenaltyFrequency(benefit, cheat_gain);
  return answer;
}

void DevicePointsSoA::Resize(size_t n) {
  benefit.resize(n);
  cheat_gain.resize(n);
  frequency.resize(n);
  penalty.resize(n);
}

void DeviceAnswersSoA::Resize(size_t n) {
  effectiveness.resize(n);
  min_frequency.resize(n);
  min_penalty.resize(n);
  zero_penalty_frequency.resize(n);
}

Status EvalDevicePoints(const DevicePointsSoA& in, double margin,
                        size_t begin, size_t count, DeviceAnswersSoA& out,
                        int threads) {
  if (in.cheat_gain.size() != in.size() || in.frequency.size() != in.size() ||
      in.penalty.size() != in.size()) {
    return Status::InvalidArgument("device point columns disagree on size");
  }
  if (begin > in.size() || count > in.size() - begin) {
    return Status::InvalidArgument("point range exceeds the request vector");
  }
  if (!std::isfinite(margin)) {
    return Status::InvalidArgument("margin must be finite");
  }
  // Per-point validation up front (requests carry independent
  // economics, unlike the single-parameterization sweeps), so the
  // answer loop below runs unchecked and allocation-free.
  for (size_t k = begin; k < begin + count; ++k) {
    const double b = in.benefit[k], f = in.cheat_gain[k];
    const double freq = in.frequency[k], p = in.penalty[k];
    if (!std::isfinite(b) || !std::isfinite(f) || !std::isfinite(freq) ||
        !std::isfinite(p)) {
      return Status::InvalidArgument("device point " + std::to_string(k) +
                                     ": parameters must be finite");
    }
    if (b < 0) {
      return Status::InvalidArgument("device point " + std::to_string(k) +
                                     ": benefit B must be non-negative");
    }
    if (f <= b) {
      return Status::InvalidArgument(
          "device point " + std::to_string(k) +
          ": cheating gain F must exceed honest benefit B");
    }
    if (freq < 0 || freq > 1) {
      return Status::InvalidArgument("device point " + std::to_string(k) +
                                     ": frequency must be in [0, 1]");
    }
    if (p < 0) {
      return Status::InvalidArgument("device point " + std::to_string(k) +
                                     ": penalty must be non-negative");
    }
  }
  HSIS_ASSIGN_OR_RETURN(const common::SimdLane lane,
                        common::ActiveSimdLane());
  out.Resize(count);
  const detail::DeviceBatchArgs args{&in, margin, begin};
  const DeviceTileFn tile = SelectDeviceTile(lane);
  common::ParallelForTiles(threads, count, kTileRows,
                           [&](size_t lo, size_t hi) {
                             tile(args, lo, hi, out);
                           });
  return Status::OK();
}

}  // namespace hsis::game::kernel

#ifndef HSIS_GAME_KERNEL_LANES_H_
#define HSIS_GAME_KERNEL_LANES_H_

#include <cstddef>

#include "game/kernel.h"

/// \file
/// \brief Internal per-lane entry points of the batch row evaluators.
///
/// Each SIMD lane (common/simd_dispatch.h) ships the five batch
/// evaluators as free functions over a **tile** `[lo, hi)` of output
/// slots. The public `Eval*` wrappers in kernel.cc validate once,
/// resolve the active lane, and hand fixed-size tiles to the selected
/// lane under the common/parallel.h contract; every lane writes slot
/// `k` from global row `begin + k`, so lanes are interchangeable
/// row-for-row and — because they run the same IEEE-754 operations in
/// the same order, with FMA contraction disabled on the vector
/// translation units — bit-for-bit.
///
/// Vector lanes process `kWidth` rows per step and finish the tile's
/// remainder (`hi - lo` not a multiple of the width) through the same
/// scalar per-row functions the scalar lane uses, which is why
/// remainder tails are a focus of the differential/property suites.
///
/// The batch-argument structs carry everything that is constant across
/// one batch (validated economics, grid geometry, the global `begin`
/// offset), so lane bodies touch no `Result`/`Status` machinery and
/// allocate nothing.

namespace hsis::game::kernel::detail {

/// Batch constants of `EvalFrequencyRows`.
struct FrequencyBatchArgs {
  double benefit = 0;     ///< Honest-sharing benefit B.
  double cheat_gain = 0;  ///< Cheating gain F.
  double loss = 0;        ///< Spillover loss L.
  double penalty = 0;     ///< Fixed penalty P.
  int steps = 1;          ///< Sweep resolution.
  size_t begin = 0;       ///< Global row of output slot 0.
};

/// Batch constants of `EvalPenaltyRows`.
struct PenaltyBatchArgs {
  double benefit = 0;      ///< Honest-sharing benefit B.
  double cheat_gain = 0;   ///< Cheating gain F.
  double loss = 0;         ///< Spillover loss L.
  double frequency = 0;    ///< Fixed audit frequency f.
  double max_penalty = 0;  ///< Top of the sampled penalty range.
  int steps = 1;           ///< Sweep resolution.
  size_t begin = 0;        ///< Global row of output slot 0.
};

/// Batch constants of `EvalAsymmetricCells`.
struct AsymmetricBatchArgs {
  TwoPlayerGameParams params;  ///< Validated base economics.
  int steps = 1;               ///< Grid resolution per axis.
  size_t begin = 0;            ///< Global cell of output slot 0.
};

/// Batch constants of `EvalNPlayerBandRows`.
struct NPlayerBatchArgs {
  NPlayerKernelParams params;  ///< Validated fixed-capacity game.
  double max_penalty = 0;      ///< Top of the sampled penalty range.
  int steps = 1;               ///< Sweep resolution.
  size_t begin = 0;            ///< Global row of output slot 0.
};

/// Batch constants of `EvalDevicePoints`. `in` outlives the batch call
/// (the wrapper borrows the caller's SoA request vector).
struct DeviceBatchArgs {
  const DevicePointsSoA* in = nullptr;  ///< Validated request columns.
  double margin = 0;                    ///< Designer safety margin.
  size_t begin = 0;                     ///< Global point of output slot 0.
};

/// Scatter helpers shared by every lane: one classified row into its
/// SoA slot. The scalar lane and every vector lane's remainder tail go
/// through these, so "store row k" means the same thing everywhere.
inline void StoreFrequencyRow(const FrequencyRowKernel& row,
                              FrequencyRowsSoA& out, size_t k) {
  out.frequency[k] = row.frequency;
  out.region[k] = row.region;
  out.nash_mask[k] = row.nash_mask;
  out.honest_is_dse[k] = row.honest_is_dse ? 1 : 0;
  out.matches[k] = row.matches ? 1 : 0;
}

inline void StorePenaltyRow(const PenaltyRowKernel& row, PenaltyRowsSoA& out,
                            size_t k) {
  out.penalty[k] = row.penalty;
  out.region[k] = row.region;
  out.nash_mask[k] = row.nash_mask;
  out.honest_is_dse[k] = row.honest_is_dse ? 1 : 0;
  out.matches[k] = row.matches ? 1 : 0;
}

inline void StoreAsymmetricCell(const AsymmetricCellKernel& cell,
                                AsymmetricCellsSoA& out, size_t k) {
  out.f1[k] = cell.f1;
  out.f2[k] = cell.f2;
  out.region[k] = cell.region;
  out.nash_mask[k] = cell.nash_mask;
  out.matches[k] = cell.matches ? 1 : 0;
}

inline void StoreNPlayerBandRow(const NPlayerBandRowKernel& row,
                                NPlayerBandRowsSoA& out, size_t k) {
  out.penalty[k] = row.penalty;
  out.analytic_honest_count[k] = row.analytic_honest_count;
  out.count_mask[k] = row.count_mask;
  out.honest_is_dominant[k] = row.honest_is_dominant ? 1 : 0;
  out.cheat_is_dominant[k] = row.cheat_is_dominant ? 1 : 0;
  out.matches[k] = row.matches ? 1 : 0;
}

inline void StoreDeviceAnswer(const DeviceAnswerKernel& answer,
                              DeviceAnswersSoA& out, size_t k) {
  out.effectiveness[k] = answer.effectiveness;
  out.min_frequency[k] = answer.min_frequency;
  out.min_penalty[k] = answer.min_penalty;
  out.zero_penalty_frequency[k] = answer.zero_penalty_frequency;
}

// Per-lane tile evaluators: fill output slots [lo, hi) from global
// rows begin + lo .. begin + hi. Declared per lane namespace; only the
// lanes this build compiles (HSIS_HAVE_*_LANE) have definitions.

#define HSIS_DECLARE_KERNEL_LANE(ns)                                          \
  namespace ns {                                                              \
  void EvalFrequencyRowsTile(const FrequencyBatchArgs& args, size_t lo,       \
                             size_t hi, FrequencyRowsSoA& out);               \
  void EvalPenaltyRowsTile(const PenaltyBatchArgs& args, size_t lo,           \
                           size_t hi, PenaltyRowsSoA& out);                   \
  void EvalAsymmetricCellsTile(const AsymmetricBatchArgs& args, size_t lo,    \
                               size_t hi, AsymmetricCellsSoA& out);           \
  void EvalNPlayerBandRowsTile(const NPlayerBatchArgs& args, size_t lo,       \
                               size_t hi, NPlayerBandRowsSoA& out);           \
  void EvalDevicePointsTile(const DeviceBatchArgs& args, size_t lo,           \
                            size_t hi, DeviceAnswersSoA& out);                \
  }

#ifdef HSIS_HAVE_SSE2_LANE
HSIS_DECLARE_KERNEL_LANE(lane_sse2)
#endif
#ifdef HSIS_HAVE_AVX2_LANE
HSIS_DECLARE_KERNEL_LANE(lane_avx2)
#endif

#undef HSIS_DECLARE_KERNEL_LANE

}  // namespace hsis::game::kernel::detail

#endif  // HSIS_GAME_KERNEL_LANES_H_

#ifndef HSIS_GAME_INSPECTION_GAME_H_
#define HSIS_GAME_INSPECTION_GAME_H_

#include "common/result.h"

namespace hsis::game {

/// The classical recursive inspection game (Dresher; Ferguson &
/// Melolidakis — the related work the paper contrasts itself with in
/// Section 1.2).
///
/// An inspectee has `periods` opportunities and wants to commit one
/// violation undetected; the inspector has `inspections` inspections to
/// distribute and both move simultaneously each period. The game is
/// zero-sum from the inspectee's perspective: `undetected_payoff` for a
/// violation in an uninspected period (then the game ends),
/// `caught_payoff` for violating into an inspection, 0 for never
/// violating.
///
/// The key structural difference from this paper's model: here the
/// inspector is a *player* optimizing against the inspectee, so the
/// equilibrium inspection rate varies per period and the inspectee
/// retains positive value whenever inspections < periods. The paper's
/// auditing device is a *referee* with a committed frequency f — by
/// committing (and by fining), it can drive the cheating value strictly
/// negative, which no equilibrium inspector can.
struct InspectionGameSolution {
  /// Game value to the inspectee under optimal play.
  double value = 0;
  /// First-period equilibrium mixed strategies.
  double violate_probability = 0;
  double inspect_probability = 0;
};

/// Solves the game by backward induction over (periods, inspections),
/// solving a 2x2 zero-sum stage game at each state. `periods` >= 0,
/// 0 <= `inspections`, payoffs with caught < 0 <= undetected.
Result<InspectionGameSolution> SolveInspectionGame(
    int periods, int inspections, double caught_payoff = -1.0,
    double undetected_payoff = 1.0);

/// Value of a 2x2 zero-sum game for the row maximizer with payoff
/// matrix {{a, b}, {c, d}}, plus the optimal row/column mixtures
/// (probability of the first row / first column).
struct ZeroSum2x2Solution {
  double value = 0;
  double row_first_probability = 0;
  double col_first_probability = 0;
};

ZeroSum2x2Solution SolveZeroSum2x2(double a, double b, double c, double d);

}  // namespace hsis::game

#endif  // HSIS_GAME_INSPECTION_GAME_H_

#ifndef HSIS_GAME_THRESHOLDS_H_
#define HSIS_GAME_THRESHOLDS_H_

#include <functional>
#include <string>

#include "common/result.h"

namespace hsis::game {

/// The paper's taxonomy of auditing devices (Section 4), ordered from
/// weakest to strongest guarantee.
enum class DeviceEffectiveness {
  /// Cannot induce any all-honest equilibrium: (C,...,C) prevails.
  kIneffective = 0,
  /// All-honest is among the Nash equilibria (the boundary case).
  kEffective = 1,
  /// All-honest is the *only* Nash equilibrium.
  kHighlyEffective = 2,
  /// All-honest is a dominant-strategy equilibrium (and, per the paper's
  /// observations, in these games also the only NE — the device is then
  /// both transformative and highly effective).
  kTransformative = 3,
};

const char* DeviceEffectivenessName(DeviceEffectiveness e);

/// Observation 2: for fixed penalty P, honesty becomes the unique
/// DSE/NE once f exceeds f* = (F - B) / (P + F). Requires F > B; the
/// result is in (0, 1].
double CriticalFrequency(double benefit, double cheat_gain, double penalty);

/// Observation 3: for fixed frequency f > 0, honesty becomes the unique
/// DSE/NE once P exceeds P* = ((1-f) F - B) / f. May be negative — any
/// penalty (even zero) then suffices. Returns +infinity for f == 0.
double CriticalPenalty(double benefit, double cheat_gain, double frequency);

/// Observation 3 (special case): for f > (F - B)/F the device needs no
/// penalty at all — the expected cheating gain (1-f)F already falls
/// below B.
double ZeroPenaltyFrequency(double benefit, double cheat_gain);

/// Classifies the symmetric audited two-player game of Table 2 at a
/// given operating point, per Observations 2 and 3.
DeviceEffectiveness ClassifySymmetricDevice(double benefit, double cheat_gain,
                                            double frequency, double penalty);

/// The equilibrium set of the symmetric two-player game at an operating
/// point, as region labels for the Figure 1 / Figure 2 landscapes.
enum class SymmetricRegion {
  kAllCheatUniqueDse,   // (C,C) the only DSE and NE
  kBoundary,            // f == f* (resp. P == P*): (H,H) among the NE
  kAllHonestUniqueDse,  // (H,H) the only DSE and NE
};

const char* SymmetricRegionName(SymmetricRegion r);

SymmetricRegion ClassifySymmetricRegion(double benefit, double cheat_gain,
                                        double frequency, double penalty);

/// The four corner regions of the asymmetric (f1, f2) landscape of
/// Figure 3. Player i cheats iff f_i < (F_i - B_i)/(F_i + P_i).
enum class AsymmetricRegion {
  kBothCheat,    // (C,C)
  kOnlyP1Cheats, // (C,H)
  kOnlyP2Cheats, // (H,C)
  kBothHonest,   // (H,H)
  kBoundary,     // on a critical line
};

const char* AsymmetricRegionName(AsymmetricRegion r);

AsymmetricRegion ClassifyAsymmetricRegion(double b1, double cg1, double p1,
                                          double f1, double b2, double cg2,
                                          double p2, double f2);

/// The n-player gain function F(x): the cheater's expected gross gain
/// when x of the other n-1 players are honest. The paper requires it to
/// be monotonically increasing in x.
using GainFunction = std::function<double(int honest_others)>;

/// F(x) = base + slope * x — the canonical linear instantiation used by
/// the benchmarks ("the more honest players, the more a cheater gains").
GainFunction LinearGain(double base, double slope);

/// F(x) = base + scale * (1 - exp(-rate x)): saturating gains.
GainFunction SaturatingGain(double base, double scale, double rate);

/// Theorem 1 band edge x -> ((1-f) F(x) - B) / f: for penalty P strictly
/// between the x-1 and x edges, the profiles with exactly x honest
/// players are the equilibria. x = n-1 gives the Proposition 1
/// transformative bound; x = 0 gives the Proposition 2 bound.
double NPlayerPenaltyBound(double benefit, const GainFunction& gain,
                           double frequency, int honest_others);

/// Number of honest players x in the unique equilibrium band containing
/// penalty P (Theorem 1); returns n when P exceeds the Proposition 1
/// bound and 0 below the Proposition 2 bound. `frequency` must be > 0.
int NPlayerEquilibriumHonestCount(int n, double benefit,
                                  const GainFunction& gain, double frequency,
                                  double penalty);

}  // namespace hsis::game

#endif  // HSIS_GAME_THRESHOLDS_H_

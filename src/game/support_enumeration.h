#ifndef HSIS_GAME_SUPPORT_ENUMERATION_H_
#define HSIS_GAME_SUPPORT_ENUMERATION_H_

#include <vector>

#include "common/result.h"
#include "game/normal_form_game.h"

namespace hsis::game {

/// A (possibly mixed) strategy profile of a two-player game.
struct MixedStrategyProfile {
  std::vector<double> p1;  // player 1's distribution over its strategies
  std::vector<double> p2;  // player 2's distribution
  double payoff1 = 0;      // expected payoffs at the profile
  double payoff2 = 0;

  /// True when both distributions are degenerate (a pure profile).
  bool IsPure(double tol = 1e-9) const;
};

/// All Nash equilibria of a two-player game by support enumeration.
///
/// For every pair of equal-size supports, solves the indifference
/// system (each player must be indifferent across its support given the
/// other's mixture), then checks feasibility (non-negative
/// probabilities) and optimality (no strategy outside the support does
/// better). Complete for nondegenerate games — which all the honesty
/// games off their threshold boundaries are; on boundaries (where a
/// continuum of equilibria exists) it returns the vertex equilibria.
///
/// Exponential in the strategy counts by nature; intended for the small
/// games this library analyzes (fails above 16 strategies per player).
Result<std::vector<MixedStrategyProfile>> SupportEnumerationEquilibria(
    const NormalFormGame& game);

/// Expected payoff of `player` (0 or 1) at mixed profile (p1, p2).
double ExpectedPayoff(const NormalFormGame& game, int player,
                      const std::vector<double>& p1,
                      const std::vector<double>& p2);

/// True iff (p1, p2) is a (mixed) Nash equilibrium within tolerance:
/// no pure deviation improves either player's expected payoff.
bool IsMixedNashEquilibrium(const NormalFormGame& game,
                            const std::vector<double>& p1,
                            const std::vector<double>& p2,
                            double tol = 1e-7);

}  // namespace hsis::game

#endif  // HSIS_GAME_SUPPORT_ENUMERATION_H_

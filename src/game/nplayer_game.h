#ifndef HSIS_GAME_NPLAYER_GAME_H_
#define HSIS_GAME_NPLAYER_GAME_H_

#include <vector>

#include "common/result.h"
#include "game/normal_form_game.h"
#include "game/thresholds.h"

namespace hsis::game {

/// The n-player honesty game of Section 5, with per-player payoff
/// (equation 1):
///
///   u_i(h) = h_i B + (1-h_i)(1-f) F(||h_-i||) - (1-h_i) f P
///            - sum_{j != i} (1-h_j)(1-f) L_ji
///
/// where h_i = 1 iff player i is honest, F is a gain function monotone
/// increasing in the number of honest others, and L_ji is the loss player
/// j's undetected cheating inflicts on player i.
///
/// The payoff is evaluated implicitly (no 2^n tensor), so equilibrium
/// questions stay tractable for thousands of players: a unilateral
/// deviation only moves the own-action terms, which makes the Nash check
/// O(n) given the honest count.
class NPlayerHonestyGame {
 public:
  struct Params {
    int n = 0;               // number of players (>= 2)
    double benefit = 0.0;    // B
    GainFunction gain;       // F(x), x = number of honest others
    double frequency = 0.0;  // audit frequency f in [0, 1]
    double penalty = 0.0;    // penalty P >= 0
    /// Loss L (uniform across ordered pairs) unless `loss_matrix` is
    /// provided, in which case loss_matrix[j][i] = L_ji (diagonal ignored).
    double uniform_loss = 0.0;
    std::vector<std::vector<double>> loss_matrix;
  };

  static Result<NPlayerHonestyGame> Create(Params params);

  int n() const { return params_.n; }
  const Params& params() const { return params_; }

  /// u_i(h) per equation (1). `honest.size()` must equal n.
  double Payoff(const std::vector<bool>& honest, int player) const;

  /// Pure-strategy Nash check for an arbitrary profile, O(n).
  bool IsNashEquilibrium(const std::vector<bool>& honest) const;

  /// Nash check for the symmetric class "exactly x players honest"
  /// (valid for any loss structure — losses do not depend on one's own
  /// action, so they cancel in every unilateral-deviation comparison).
  bool IsEquilibriumHonestCount(int x) const;

  /// All x in [0, n] whose symmetric profiles are Nash equilibria.
  std::vector<int> EquilibriumHonestCounts() const;

  /// True iff honesty (resp. cheating) is a weakly dominant strategy for
  /// every player. Honest dominance is the Proposition 1 condition
  /// evaluated at the worst case (all others honest).
  bool IsHonestDominant() const;
  bool IsCheatDominant() const;

  /// Dense expansion for cross-validation at small n (n <= 20).
  Result<NormalFormGame> ToNormalForm() const;

  /// Net expected gain of cheating over honesty for a player facing
  /// `honest_others` honest peers: (1-f) F(x) - f P - B. The quantity
  /// every rational-agent decision in the simulator reduces to.
  double CheatAdvantage(int honest_others) const;

 private:
  explicit NPlayerHonestyGame(Params params) : params_(std::move(params)) {}

  /// L_ji — loss that j's cheating inflicts on i.
  double Loss(int j, int i) const;

  Params params_;
};

}  // namespace hsis::game

#endif  // HSIS_GAME_NPLAYER_GAME_H_

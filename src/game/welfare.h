#ifndef HSIS_GAME_WELFARE_H_
#define HSIS_GAME_WELFARE_H_

#include <vector>

#include "common/result.h"
#include "game/normal_form_game.h"
#include "game/nplayer_game.h"

namespace hsis::game {

/// Social-welfare analysis of the honesty games: how much collective
/// value does rational cheating destroy, and how much of it does the
/// auditing device recover (net of its own running cost)?
///
/// In the no-audit game the social optimum is (H,H) with welfare 2B
/// while the unique equilibrium (C,C) yields 2(F - L) — the "price of
/// dishonesty". A transformative device moves the equilibrium to the
/// optimum; its operating cost (expected audits) is the price paid.

/// Sum of all players' payoffs at a pure profile.
double SocialWelfare(const NormalFormGame& game, const StrategyProfile& profile);

/// Welfare summary of a two-player game.
struct WelfareAnalysis {
  StrategyProfile optimal_profile;   // welfare-maximizing pure profile
  double optimal_welfare = 0;
  double equilibrium_welfare = 0;    // worst welfare among pure NE
  StrategyProfile worst_equilibrium;
  /// optimal / equilibrium welfare (the price-of-anarchy convention;
  /// +inf when the equilibrium welfare is <= 0 while the optimum is
  /// positive, 1 when they coincide).
  double price_of_dishonesty = 1.0;
  bool has_pure_equilibrium = true;
};

/// Analyzes any dense game (enumerates profiles and pure equilibria).
Result<WelfareAnalysis> AnalyzeWelfare(const NormalFormGame& game);

/// Welfare of the n-player honesty game's symmetric profile with x
/// honest players (sum of equation-(1) payoffs; O(1) via closed form
/// for the uniform-loss case, O(n^2) otherwise).
double NPlayerWelfareAtHonestCount(const NPlayerHonestyGame& game, int x);

/// Net social welfare of running the audited system at the all-honest
/// equilibrium, charging the device's expected cost: n*B - n*f*audit_cost.
double NetWelfareAllHonest(int n, double benefit, double frequency,
                           double audit_cost);

}  // namespace hsis::game

#endif  // HSIS_GAME_WELFARE_H_

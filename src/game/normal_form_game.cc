#include "game/normal_form_game.h"

#include "common/logging.h"

namespace hsis::game {

Result<NormalFormGame> NormalFormGame::Create(
    std::vector<int> strategy_counts) {
  if (strategy_counts.empty()) {
    return Status::InvalidArgument("game needs at least one player");
  }
  size_t profiles = 1;
  for (int c : strategy_counts) {
    if (c < 1) {
      return Status::InvalidArgument("each player needs at least one strategy");
    }
    profiles *= static_cast<size_t>(c);
    if (profiles > (1u << 26)) {
      return Status::OutOfRange(
          "profile space too large for dense storage; use SymmetricBinaryGame");
    }
  }
  return NormalFormGame(std::move(strategy_counts));
}

NormalFormGame::NormalFormGame(std::vector<int> strategy_counts)
    : strategy_counts_(std::move(strategy_counts)) {
  num_profiles_ = 1;
  for (int c : strategy_counts_) num_profiles_ *= static_cast<size_t>(c);
  payoffs_.assign(num_profiles_ * strategy_counts_.size(), 0.0);
  int max_strategies = 0;
  for (int c : strategy_counts_) max_strategies = std::max(max_strategies, c);
  for (int s = 0; s < max_strategies; ++s) {
    strategy_names_.push_back("s" + std::to_string(s));
  }
}

size_t NormalFormGame::ProfileIndex(const StrategyProfile& profile) const {
  HSIS_CHECK(profile.size() == strategy_counts_.size());
  size_t index = 0;
  for (size_t i = 0; i < profile.size(); ++i) {
    HSIS_CHECK(profile[i] >= 0 && profile[i] < strategy_counts_[i]);
    index = index * static_cast<size_t>(strategy_counts_[i]) +
            static_cast<size_t>(profile[i]);
  }
  return index;
}

StrategyProfile NormalFormGame::ProfileFromIndex(size_t index) const {
  StrategyProfile profile;
  ProfileFromIndex(index, profile);
  return profile;
}

void NormalFormGame::ProfileFromIndex(size_t index, StrategyProfile& out) const {
  HSIS_CHECK(index < num_profiles_);
  out.resize(strategy_counts_.size());
  for (size_t i = strategy_counts_.size(); i-- > 0;) {
    size_t c = static_cast<size_t>(strategy_counts_[i]);
    out[i] = static_cast<int>(index % c);
    index /= c;
  }
}

void NormalFormGame::SetPayoff(const StrategyProfile& profile, int player,
                               double value) {
  payoffs_[ProfileIndex(profile) * static_cast<size_t>(num_players()) +
           static_cast<size_t>(player)] = value;
}

void NormalFormGame::SetPayoffs(const StrategyProfile& profile,
                                const std::vector<double>& values) {
  HSIS_CHECK(values.size() == strategy_counts_.size());
  for (int p = 0; p < num_players(); ++p) {
    SetPayoff(profile, p, values[static_cast<size_t>(p)]);
  }
}

double NormalFormGame::Payoff(const StrategyProfile& profile,
                              int player) const {
  return payoffs_[ProfileIndex(profile) * static_cast<size_t>(num_players()) +
                  static_cast<size_t>(player)];
}

void NormalFormGame::SetStrategyNames(std::vector<std::string> names) {
  HSIS_CHECK(names.size() >= strategy_names_.size());
  strategy_names_ = std::move(names);
}

const std::string& NormalFormGame::StrategyName(int strategy) const {
  HSIS_CHECK(strategy >= 0 &&
             static_cast<size_t>(strategy) < strategy_names_.size());
  return strategy_names_[static_cast<size_t>(strategy)];
}

}  // namespace hsis::game

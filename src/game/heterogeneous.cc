#include "game/heterogeneous.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "game/equilibrium.h"

namespace hsis::game {

Result<HeterogeneousHonestyGame> HeterogeneousHonestyGame::Create(
    std::vector<PlayerSpec> players) {
  if (players.size() < 2) {
    return Status::InvalidArgument("need at least 2 players");
  }
  for (const PlayerSpec& p : players) {
    if (!p.gain) return Status::InvalidArgument("every player needs a gain F_i");
    if (p.frequency < 0 || p.frequency > 1) {
      return Status::InvalidArgument("frequency must be in [0, 1]");
    }
    if (p.penalty < 0 || p.benefit < 0) {
      return Status::InvalidArgument("B_i and P_i must be non-negative");
    }
    for (size_t x = 0; x + 1 < players.size(); ++x) {
      if (p.gain(static_cast<int>(x) + 1) < p.gain(static_cast<int>(x)) - 1e-12) {
        return Status::InvalidArgument("gain functions must be monotone");
      }
    }
  }
  return HeterogeneousHonestyGame(std::move(players));
}

double HeterogeneousHonestyGame::CheatAdvantage(int player,
                                                int honest_others) const {
  const PlayerSpec& p = players_[static_cast<size_t>(player)];
  return (1 - p.frequency) * p.gain(honest_others) -
         p.frequency * p.penalty - p.benefit;
}

bool HeterogeneousHonestyGame::IsEquilibrium(
    const std::vector<bool>& honest) const {
  HSIS_CHECK(honest.size() == players_.size());
  int honest_total = 0;
  for (bool h : honest) honest_total += h;
  for (int i = 0; i < n(); ++i) {
    bool is_honest = honest[static_cast<size_t>(i)];
    int others = honest_total - (is_honest ? 1 : 0);
    double adv = CheatAdvantage(i, others);
    if (is_honest && adv > kPayoffEpsilon) return false;
    if (!is_honest && adv < -kPayoffEpsilon) return false;
  }
  return true;
}

Result<std::vector<std::vector<bool>>> HeterogeneousHonestyGame::AllEquilibria()
    const {
  if (n() > 20) {
    return Status::OutOfRange("subset enumeration limited to n <= 20");
  }
  std::vector<std::vector<bool>> out;
  std::vector<bool> profile(players_.size());
  for (uint32_t mask = 0; mask < (1u << n()); ++mask) {
    for (int i = 0; i < n(); ++i) {
      profile[static_cast<size_t>(i)] = (mask >> i) & 1;
    }
    if (IsEquilibrium(profile)) out.push_back(profile);
  }
  return out;
}

bool HeterogeneousHonestyGame::IsHonestDominantForAll() const {
  for (int i = 0; i < n(); ++i) {
    if (CheatAdvantage(i, n() - 1) > kPayoffEpsilon) return false;
  }
  return true;
}

namespace {

/// Rejects NaN/inf economics before they can propagate into a search:
/// a non-finite bound would silently turn the whole landscape into NaN.
Status ValidateSearchInputs(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double margin) {
  if (!std::isfinite(margin)) {
    return Status::InvalidArgument("margin must be finite");
  }
  for (const auto& p : players) {
    if (!p.gain) {
      return Status::InvalidArgument("every player needs a gain F_i");
    }
    if (!std::isfinite(p.frequency) || !std::isfinite(p.penalty) ||
        !std::isfinite(p.benefit)) {
      return Status::InvalidArgument(
          "player frequency/penalty/benefit bounds must be finite");
    }
  }
  return Status::OK();
}

/// The frequency that makes honesty dominant for one player at its
/// given penalty: f_i >= (F_i(n-1) - B_i) / (F_i(n-1) + P_i).
Result<double> RequiredFrequency(
    const HeterogeneousHonestyGame::PlayerSpec& p, int worst_case,
    double margin) {
  double gain = p.gain(worst_case);
  if (!std::isfinite(gain)) {
    return Status::InvalidArgument("gain F_i(n-1) must be finite");
  }
  if (gain <= p.benefit) return 0.0;  // no temptation at all
  double denom = gain + p.penalty;
  if (denom <= 0) return Status::Internal("non-positive threshold denominator");
  return std::min(1.0, (gain - p.benefit) / denom + margin);
}

/// Per-player required frequencies into ordered slots, fanned out over
/// `options.threads` in `options.batch_size` batches.
Result<std::vector<double>> RequiredFrequencies(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double margin, const DesignSearchOptions& options) {
  int worst_case = static_cast<int>(players.size()) - 1;
  std::vector<double> out(players.size());
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      options.threads, players.size(), options.batch_size,
      [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(
            out[i], RequiredFrequency(players[i], worst_case, margin));
        return Status::OK();
      }));
  return out;
}

}  // namespace

Result<std::vector<double>> MinPenaltiesForAllHonest(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double margin, const DesignSearchOptions& options) {
  HSIS_RETURN_IF_ERROR(ValidateSearchInputs(players, margin));
  int worst_case = static_cast<int>(players.size()) - 1;
  std::vector<double> out(players.size());
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      options.threads, players.size(), options.batch_size,
      [&](size_t i) -> Status {
        const auto& p = players[i];
        if (p.frequency <= 0) {
          return Status::InvalidArgument(
              "penalties cannot deter a never-audited player (f_i = 0)");
        }
        double gain = p.gain(worst_case);
        if (!std::isfinite(gain)) {
          return Status::InvalidArgument("gain F_i(n-1) must be finite");
        }
        double needed = ((1 - p.frequency) * gain - p.benefit) / p.frequency;
        out[i] = std::max(0.0, needed) + margin;
        return Status::OK();
      }));
  return out;
}

Result<AuditAllocation> MinCostFrequencies(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    const std::vector<double>& audit_costs, double margin,
    const DesignSearchOptions& options) {
  HSIS_RETURN_IF_ERROR(ValidateSearchInputs(players, margin));
  if (audit_costs.size() != players.size()) {
    return Status::InvalidArgument("one audit cost per player required");
  }
  for (double cost : audit_costs) {
    if (!std::isfinite(cost)) {
      return Status::InvalidArgument("audit costs must be finite");
    }
    if (cost < 0) {
      return Status::InvalidArgument("audit costs must be non-negative");
    }
  }
  AuditAllocation out;
  HSIS_ASSIGN_OR_RETURN(out.frequencies,
                        RequiredFrequencies(players, margin, options));
  // The cost reduction runs serially in player order — the historical
  // FP accumulation order, independent of thread count.
  for (size_t i = 0; i < players.size(); ++i) {
    out.total_cost += out.frequencies[i] * audit_costs[i];
  }
  return out;
}

Result<BudgetedAllocation> MaxDeterredUnderBudget(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double total_frequency_budget, double margin,
    const DesignSearchOptions& options) {
  HSIS_RETURN_IF_ERROR(ValidateSearchInputs(players, margin));
  if (!std::isfinite(total_frequency_budget)) {
    return Status::InvalidArgument("budget must be finite");
  }
  if (total_frequency_budget < 0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  HSIS_ASSIGN_OR_RETURN(std::vector<double> frequencies,
                        RequiredFrequencies(players, margin, options));
  std::vector<std::pair<double, size_t>> required;  // (f_i, player index)
  required.reserve(players.size());
  for (size_t i = 0; i < players.size(); ++i) {
    required.push_back({frequencies[i], i});
  }
  // Ties broken by player index — the sort is fully deterministic.
  std::sort(required.begin(), required.end());

  BudgetedAllocation out;
  out.frequencies.assign(players.size(), 0.0);
  out.deterred.assign(players.size(), false);
  double remaining = total_frequency_budget;
  for (const auto& [f, idx] : required) {
    if (f <= remaining) {
      remaining -= f;
      out.frequencies[idx] = f;
      out.deterred[idx] = true;
      ++out.deterred_count;
    }
  }
  out.budget_used = total_frequency_budget - remaining;
  return out;
}

}  // namespace hsis::game

#include "game/heterogeneous.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "game/equilibrium.h"

namespace hsis::game {

Result<HeterogeneousHonestyGame> HeterogeneousHonestyGame::Create(
    std::vector<PlayerSpec> players) {
  if (players.size() < 2) {
    return Status::InvalidArgument("need at least 2 players");
  }
  for (const PlayerSpec& p : players) {
    if (!p.gain) return Status::InvalidArgument("every player needs a gain F_i");
    if (p.frequency < 0 || p.frequency > 1) {
      return Status::InvalidArgument("frequency must be in [0, 1]");
    }
    if (p.penalty < 0 || p.benefit < 0) {
      return Status::InvalidArgument("B_i and P_i must be non-negative");
    }
    for (size_t x = 0; x + 1 < players.size(); ++x) {
      if (p.gain(static_cast<int>(x) + 1) < p.gain(static_cast<int>(x)) - 1e-12) {
        return Status::InvalidArgument("gain functions must be monotone");
      }
    }
  }
  return HeterogeneousHonestyGame(std::move(players));
}

double HeterogeneousHonestyGame::CheatAdvantage(int player,
                                                int honest_others) const {
  const PlayerSpec& p = players_[static_cast<size_t>(player)];
  return (1 - p.frequency) * p.gain(honest_others) -
         p.frequency * p.penalty - p.benefit;
}

bool HeterogeneousHonestyGame::IsEquilibrium(
    const std::vector<bool>& honest) const {
  HSIS_CHECK(honest.size() == players_.size());
  int honest_total = 0;
  for (bool h : honest) honest_total += h;
  for (int i = 0; i < n(); ++i) {
    bool is_honest = honest[static_cast<size_t>(i)];
    int others = honest_total - (is_honest ? 1 : 0);
    double adv = CheatAdvantage(i, others);
    if (is_honest && adv > kPayoffEpsilon) return false;
    if (!is_honest && adv < -kPayoffEpsilon) return false;
  }
  return true;
}

Result<std::vector<std::vector<bool>>> HeterogeneousHonestyGame::AllEquilibria()
    const {
  if (n() > 20) {
    return Status::OutOfRange("subset enumeration limited to n <= 20");
  }
  std::vector<std::vector<bool>> out;
  std::vector<bool> profile(players_.size());
  for (uint32_t mask = 0; mask < (1u << n()); ++mask) {
    for (int i = 0; i < n(); ++i) {
      profile[static_cast<size_t>(i)] = (mask >> i) & 1;
    }
    if (IsEquilibrium(profile)) out.push_back(profile);
  }
  return out;
}

bool HeterogeneousHonestyGame::IsHonestDominantForAll() const {
  for (int i = 0; i < n(); ++i) {
    if (CheatAdvantage(i, n() - 1) > kPayoffEpsilon) return false;
  }
  return true;
}

Result<std::vector<double>> MinPenaltiesForAllHonest(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double margin) {
  std::vector<double> out;
  out.reserve(players.size());
  int worst_case = static_cast<int>(players.size()) - 1;
  for (const auto& p : players) {
    if (p.frequency <= 0) {
      return Status::InvalidArgument(
          "penalties cannot deter a never-audited player (f_i = 0)");
    }
    double needed = ((1 - p.frequency) * p.gain(worst_case) - p.benefit) /
                    p.frequency;
    out.push_back(std::max(0.0, needed) + margin);
  }
  return out;
}

namespace {

/// The frequency that makes honesty dominant for one player at its
/// given penalty: f_i >= (F_i(n-1) - B_i) / (F_i(n-1) + P_i).
Result<double> RequiredFrequency(
    const HeterogeneousHonestyGame::PlayerSpec& p, int worst_case,
    double margin) {
  double gain = p.gain(worst_case);
  if (gain <= p.benefit) return 0.0;  // no temptation at all
  double denom = gain + p.penalty;
  if (denom <= 0) return Status::Internal("non-positive threshold denominator");
  return std::min(1.0, (gain - p.benefit) / denom + margin);
}

}  // namespace

Result<AuditAllocation> MinCostFrequencies(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    const std::vector<double>& audit_costs, double margin) {
  if (audit_costs.size() != players.size()) {
    return Status::InvalidArgument("one audit cost per player required");
  }
  AuditAllocation out;
  out.frequencies.reserve(players.size());
  int worst_case = static_cast<int>(players.size()) - 1;
  for (size_t i = 0; i < players.size(); ++i) {
    if (audit_costs[i] < 0) {
      return Status::InvalidArgument("audit costs must be non-negative");
    }
    HSIS_ASSIGN_OR_RETURN(double f,
                          RequiredFrequency(players[i], worst_case, margin));
    out.frequencies.push_back(f);
    out.total_cost += f * audit_costs[i];
  }
  return out;
}

Result<BudgetedAllocation> MaxDeterredUnderBudget(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double total_frequency_budget, double margin) {
  if (total_frequency_budget < 0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  int worst_case = static_cast<int>(players.size()) - 1;
  std::vector<std::pair<double, size_t>> required;  // (f_i, player index)
  for (size_t i = 0; i < players.size(); ++i) {
    HSIS_ASSIGN_OR_RETURN(double f,
                          RequiredFrequency(players[i], worst_case, margin));
    required.push_back({f, i});
  }
  std::sort(required.begin(), required.end());

  BudgetedAllocation out;
  out.frequencies.assign(players.size(), 0.0);
  out.deterred.assign(players.size(), false);
  double remaining = total_frequency_budget;
  for (const auto& [f, idx] : required) {
    if (f <= remaining) {
      remaining -= f;
      out.frequencies[idx] = f;
      out.deterred[idx] = true;
      ++out.deterred_count;
    }
  }
  out.budget_used = total_frequency_budget - remaining;
  return out;
}

}  // namespace hsis::game

#ifndef HSIS_GAME_REWARD_MECHANISM_H_
#define HSIS_GAME_REWARD_MECHANISM_H_

#include "common/result.h"
#include "game/normal_form_game.h"
#include "game/thresholds.h"

namespace hsis::game {

/// The paper's Section 7 future work: "study if appropriately designed
/// incentives (rather than penalties) can also lead to honesty."
///
/// This module answers it. The device still audits with frequency f,
/// but now *pays a reward R* to a player whose audit verifies, while
/// (optionally) still fining P on a detected cheat. Expected payoffs:
///
///   honest: B + f R               cheat: (1-f) F - f P
///
/// so honesty is the unique DSE/NE iff f (R + P) > (1-f) F - B — the
/// Observation 3 condition with R + P in the penalty's place. Rewards
/// and penalties are perfect substitutes for *incentives*; they differ
/// sharply in *operator economics*: at the all-honest equilibrium a
/// penalty regime collects (and pays) nothing, while a reward regime
/// pays n f R every round, forever.

/// Audit terms of the reward/hybrid device.
struct RewardTerms {
  double frequency = 0.0;  // f in [0, 1]
  double reward = 0.0;     // R >= 0, paid on a verified-honest audit
  double penalty = 0.0;    // P >= 0, charged on a detected cheat
};

/// Builds the symmetric two-player reward-audited game.
Result<NormalFormGame> MakeRewardAuditedGame(double benefit, double cheat_gain,
                                             double loss,
                                             const RewardTerms& terms);

/// The minimum reward that (with penalty P already in place) makes
/// honesty the unique DSE/NE at frequency f > 0:
/// R* = ((1-f)F - B)/f - P, floored at 0.
double CriticalReward(double benefit, double cheat_gain, double frequency,
                      double penalty);

/// Section 4 taxonomy applied to the reward/hybrid device.
DeviceEffectiveness ClassifyRewardDevice(double benefit, double cheat_gain,
                                         const RewardTerms& terms);

/// Expected per-round cost to the device operator when all n players
/// are honest: n * f * R (penalties collect nothing at that point).
double OperatorCostAtHonestEquilibrium(int n, const RewardTerms& terms);

/// Expected per-round operator cost at an arbitrary honest count x (out
/// of n): pays rewards to audited-honest players, collects penalties
/// from audited cheaters. Negative = the operator profits.
double OperatorCostAtHonestCount(int n, int honest_count,
                                 const RewardTerms& terms);

}  // namespace hsis::game

#endif  // HSIS_GAME_REWARD_MECHANISM_H_

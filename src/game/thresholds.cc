#include "game/thresholds.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace hsis::game {

namespace {
constexpr double kEps = 1e-12;

/// Magnitude-relative boundary tolerance: an absolute 1e-12 is far below
/// one ulp once payoffs reach ~1e5, so boundary operating points with
/// large F, P (say 1e9) would be misclassified as interior purely from
/// rounding. Scale the epsilon by the operands (floored at 1 to keep
/// the historical behavior for O(1) payoffs).
double BoundaryTolerance(double a, double b) {
  return kEps * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}
}

const char* DeviceEffectivenessName(DeviceEffectiveness e) {
  switch (e) {
    case DeviceEffectiveness::kIneffective:
      return "ineffective";
    case DeviceEffectiveness::kEffective:
      return "effective";
    case DeviceEffectiveness::kHighlyEffective:
      return "highly effective";
    case DeviceEffectiveness::kTransformative:
      return "transformative";
  }
  return "?";
}

double CriticalFrequency(double benefit, double cheat_gain, double penalty) {
  HSIS_CHECK(cheat_gain > benefit) << "requires F > B";
  HSIS_CHECK(penalty >= 0);
  return (cheat_gain - benefit) / (penalty + cheat_gain);
}

double CriticalPenalty(double benefit, double cheat_gain, double frequency) {
  HSIS_CHECK(frequency >= 0 && frequency <= 1);
  if (frequency == 0) return std::numeric_limits<double>::infinity();
  return ((1 - frequency) * cheat_gain - benefit) / frequency;
}

double ZeroPenaltyFrequency(double benefit, double cheat_gain) {
  HSIS_CHECK(cheat_gain > benefit) << "requires F > B";
  return (cheat_gain - benefit) / cheat_gain;
}

DeviceEffectiveness ClassifySymmetricDevice(double benefit, double cheat_gain,
                                            double frequency, double penalty) {
  // Key quantity (Observation 2): compare the expected penalty f P with
  // the net expected cheating gain (1-f) F - B.
  double expected_penalty = frequency * penalty;
  double net_cheat_gain = (1 - frequency) * cheat_gain - benefit;
  double tolerance = BoundaryTolerance(expected_penalty, net_cheat_gain);
  if (expected_penalty > net_cheat_gain + tolerance) {
    // (H,H) unique DSE and NE: transformative (and highly effective).
    return DeviceEffectiveness::kTransformative;
  }
  if (std::abs(expected_penalty - net_cheat_gain) <= tolerance) {
    return DeviceEffectiveness::kEffective;
  }
  return DeviceEffectiveness::kIneffective;
}

const char* SymmetricRegionName(SymmetricRegion r) {
  switch (r) {
    case SymmetricRegion::kAllCheatUniqueDse:
      return "(C,C) is the only DSE and NE";
    case SymmetricRegion::kBoundary:
      return "(H,H) is among the NE";
    case SymmetricRegion::kAllHonestUniqueDse:
      return "(H,H) is the only DSE and NE";
  }
  return "?";
}

SymmetricRegion ClassifySymmetricRegion(double benefit, double cheat_gain,
                                        double frequency, double penalty) {
  switch (ClassifySymmetricDevice(benefit, cheat_gain, frequency, penalty)) {
    case DeviceEffectiveness::kIneffective:
      return SymmetricRegion::kAllCheatUniqueDse;
    case DeviceEffectiveness::kEffective:
      return SymmetricRegion::kBoundary;
    default:
      return SymmetricRegion::kAllHonestUniqueDse;
  }
}

const char* AsymmetricRegionName(AsymmetricRegion r) {
  switch (r) {
    case AsymmetricRegion::kBothCheat:
      return "(C,C)";
    case AsymmetricRegion::kOnlyP1Cheats:
      return "(C,H)";
    case AsymmetricRegion::kOnlyP2Cheats:
      return "(H,C)";
    case AsymmetricRegion::kBothHonest:
      return "(H,H)";
    case AsymmetricRegion::kBoundary:
      return "boundary";
  }
  return "?";
}

AsymmetricRegion ClassifyAsymmetricRegion(double b1, double cg1, double p1,
                                          double f1, double b2, double cg2,
                                          double p2, double f2) {
  // Player i's choice is dominant and decoupled: cheat iff
  // (1-f_i) F_i - f_i P_i > B_i, i.e. f_i < (F_i - B_i)/(F_i + P_i).
  double crit1 = CriticalFrequency(b1, cg1, p1);
  double crit2 = CriticalFrequency(b2, cg2, p2);
  if (std::abs(f1 - crit1) <= kEps || std::abs(f2 - crit2) <= kEps) {
    return AsymmetricRegion::kBoundary;
  }
  bool p1_cheats = f1 < crit1;
  bool p2_cheats = f2 < crit2;
  if (p1_cheats && p2_cheats) return AsymmetricRegion::kBothCheat;
  if (p1_cheats) return AsymmetricRegion::kOnlyP1Cheats;
  if (p2_cheats) return AsymmetricRegion::kOnlyP2Cheats;
  return AsymmetricRegion::kBothHonest;
}

GainFunction LinearGain(double base, double slope) {
  HSIS_CHECK(slope >= 0) << "gain function must be monotone increasing";
  return [base, slope](int honest_others) {
    return base + slope * honest_others;
  };
}

GainFunction SaturatingGain(double base, double scale, double rate) {
  HSIS_CHECK(scale >= 0 && rate >= 0);
  return [base, scale, rate](int honest_others) {
    return base + scale * (1 - std::exp(-rate * honest_others));
  };
}

double NPlayerPenaltyBound(double benefit, const GainFunction& gain,
                           double frequency, int honest_others) {
  HSIS_CHECK(frequency > 0 && frequency <= 1)
      << "penalty bounds need f in (0, 1]";
  return ((1 - frequency) * gain(honest_others) - benefit) / frequency;
}

int NPlayerEquilibriumHonestCount(int n, double benefit,
                                  const GainFunction& gain, double frequency,
                                  double penalty) {
  HSIS_CHECK(n >= 1);
  // Bands are ordered by monotonicity of F; find the largest x with
  // P > ((1-f) F(x-1) - B) / f, i.e. cheating with x honest peers is
  // not worth it for the x-th honest player.
  int x = 0;
  while (x < n &&
         penalty > NPlayerPenaltyBound(benefit, gain, frequency, x) - kEps) {
    ++x;
  }
  return x;
}

}  // namespace hsis::game

#include "game/equilibrium.h"

#include <cmath>

#include "common/logging.h"

namespace hsis::game {

std::vector<int> BestResponses(const NormalFormGame& game, int player,
                               const StrategyProfile& profile) {
  StrategyProfile p = profile;
  double best = -std::numeric_limits<double>::infinity();
  for (int s = 0; s < game.num_strategies(player); ++s) {
    p[static_cast<size_t>(player)] = s;
    best = std::max(best, game.Payoff(p, player));
  }
  std::vector<int> out;
  for (int s = 0; s < game.num_strategies(player); ++s) {
    p[static_cast<size_t>(player)] = s;
    if (game.Payoff(p, player) >= best - kPayoffEpsilon) out.push_back(s);
  }
  return out;
}

bool IsNashEquilibrium(const NormalFormGame& game,
                       const StrategyProfile& profile) {
  for (int player = 0; player < game.num_players(); ++player) {
    double current = game.Payoff(profile, player);
    StrategyProfile p = profile;
    for (int s = 0; s < game.num_strategies(player); ++s) {
      p[static_cast<size_t>(player)] = s;
      if (game.Payoff(p, player) > current + kPayoffEpsilon) return false;
    }
  }
  return true;
}

std::vector<StrategyProfile> PureNashEquilibria(const NormalFormGame& game) {
  std::vector<StrategyProfile> out;
  StrategyProfile profile;
  for (size_t i = 0; i < game.num_profiles(); ++i) {
    game.ProfileFromIndex(i, profile);
    if (IsNashEquilibrium(game, profile)) out.push_back(profile);
  }
  return out;
}

bool IsDominantStrategy(const NormalFormGame& game, int player, int s,
                        bool strict) {
  // `s` must beat every alternative s' against every full profile of the
  // other players. Iterate all profiles and compare the two slices.
  StrategyProfile profile;
  for (size_t i = 0; i < game.num_profiles(); ++i) {
    game.ProfileFromIndex(i, profile);
    if (profile[static_cast<size_t>(player)] != 0) continue;  // canonicalize others' loop
    profile[static_cast<size_t>(player)] = s;
    double payoff_s = game.Payoff(profile, player);
    for (int alt = 0; alt < game.num_strategies(player); ++alt) {
      if (alt == s) continue;
      profile[static_cast<size_t>(player)] = alt;
      double payoff_alt = game.Payoff(profile, player);
      if (strict) {
        if (payoff_s <= payoff_alt + kPayoffEpsilon) return false;
      } else {
        if (payoff_s < payoff_alt - kPayoffEpsilon) return false;
      }
    }
  }
  return true;
}

std::optional<StrategyProfile> DominantStrategyEquilibrium(
    const NormalFormGame& game, bool strict) {
  StrategyProfile out(static_cast<size_t>(game.num_players()), -1);
  for (int player = 0; player < game.num_players(); ++player) {
    for (int s = 0; s < game.num_strategies(player); ++s) {
      if (IsDominantStrategy(game, player, s, strict)) {
        out[static_cast<size_t>(player)] = s;
        break;
      }
    }
    if (out[static_cast<size_t>(player)] < 0) return std::nullopt;
  }
  return out;
}

namespace {

/// Invokes `fn` for every profile in which opponents of `player` play
/// only strategies listed in `surviving` and `player` plays `own`.
template <typename Fn>
void ForEachRestrictedProfile(const NormalFormGame& game, int player, int own,
                              const std::vector<std::vector<int>>& surviving,
                              Fn&& fn) {
  int n = game.num_players();
  StrategyProfile profile(static_cast<size_t>(n));
  profile[static_cast<size_t>(player)] = own;
  std::vector<size_t> cursor(static_cast<size_t>(n), 0);
  for (;;) {
    for (int p = 0; p < n; ++p) {
      if (p == player) continue;
      profile[static_cast<size_t>(p)] =
          surviving[static_cast<size_t>(p)][cursor[static_cast<size_t>(p)]];
    }
    fn(profile);
    // Odometer increment over opponents.
    int p = n - 1;
    for (; p >= 0; --p) {
      if (p == player) continue;
      size_t& c = cursor[static_cast<size_t>(p)];
      if (++c < surviving[static_cast<size_t>(p)].size()) break;
      c = 0;
    }
    if (p < 0) break;
  }
}

}  // namespace

bool IsStrictlyDominated(const NormalFormGame& game, int player, int s,
                         const std::vector<std::vector<int>>& surviving) {
  for (int alt : surviving[static_cast<size_t>(player)]) {
    if (alt == s) continue;
    bool dominates = true;
    ForEachRestrictedProfile(game, player, s, surviving,
                             [&](StrategyProfile& profile) {
                               double u_s = game.Payoff(profile, player);
                               profile[static_cast<size_t>(player)] = alt;
                               double u_alt = game.Payoff(profile, player);
                               profile[static_cast<size_t>(player)] = s;
                               if (u_alt <= u_s + kPayoffEpsilon) {
                                 dominates = false;
                               }
                             });
    if (dominates) return true;
  }
  return false;
}

std::vector<std::vector<int>> IteratedStrictDominance(
    const NormalFormGame& game) {
  std::vector<std::vector<int>> surviving(
      static_cast<size_t>(game.num_players()));
  for (int p = 0; p < game.num_players(); ++p) {
    for (int s = 0; s < game.num_strategies(p); ++s) {
      surviving[static_cast<size_t>(p)].push_back(s);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int p = 0; p < game.num_players(); ++p) {
      auto& mine = surviving[static_cast<size_t>(p)];
      if (mine.size() <= 1) continue;
      for (size_t i = 0; i < mine.size(); ++i) {
        if (IsStrictlyDominated(game, p, mine[i], surviving)) {
          mine.erase(mine.begin() + static_cast<ptrdiff_t>(i));
          changed = true;
          break;
        }
      }
    }
  }
  return surviving;
}

bool MixedProfile2x2::IsPure() const {
  auto pure = [](double v) {
    return std::abs(v) < kPayoffEpsilon || std::abs(v - 1.0) < kPayoffEpsilon;
  };
  return pure(p1_strategy0) && pure(p2_strategy0);
}

std::vector<MixedProfile2x2> AllEquilibria2x2(const NormalFormGame& game) {
  HSIS_CHECK(game.num_players() == 2 && game.num_strategies(0) == 2 &&
             game.num_strategies(1) == 2)
      << "AllEquilibria2x2 requires a 2x2 game";

  std::vector<MixedProfile2x2> out;

  // Pure equilibria from enumeration.
  for (const StrategyProfile& p : PureNashEquilibria(game)) {
    out.push_back({p[0] == 0 ? 1.0 : 0.0, p[1] == 0 ? 1.0 : 0.0});
  }

  // Interior mixed equilibrium: each player mixes so the *other* player
  // is indifferent between its two strategies.
  auto u = [&](int player, int s1, int s2) {
    return game.Payoff({s1, s2}, player);
  };
  // Player 2 indifferent given player 1 plays strategy 0 w.p. x:
  //   x u2(0,0) + (1-x) u2(1,0) = x u2(0,1) + (1-x) u2(1,1)
  double d2 = (u(1, 0, 0) - u(1, 0, 1)) - (u(1, 1, 0) - u(1, 1, 1));
  // Player 1 indifferent given player 2 plays strategy 0 w.p. y:
  double d1 = (u(0, 0, 0) - u(0, 1, 0)) - (u(0, 0, 1) - u(0, 1, 1));
  if (std::abs(d2) > kPayoffEpsilon && std::abs(d1) > kPayoffEpsilon) {
    double x = (u(1, 1, 1) - u(1, 1, 0)) / d2;
    double y = (u(0, 1, 1) - u(0, 0, 1)) / d1;
    if (x > kPayoffEpsilon && x < 1.0 - kPayoffEpsilon &&
        y > kPayoffEpsilon && y < 1.0 - kPayoffEpsilon) {
      out.push_back({x, y});
    }
  }
  return out;
}

}  // namespace hsis::game

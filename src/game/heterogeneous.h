#ifndef HSIS_GAME_HETEROGENEOUS_H_
#define HSIS_GAME_HETEROGENEOUS_H_

#include <vector>

#include "common/result.h"
#include "game/thresholds.h"

namespace hsis::game {

/// The n-player honesty game with fully heterogeneous participants —
/// the natural join of Section 4.2 (asymmetric players) and Section 5
/// (n players). Player i has its own benefit B_i, gain function F_i(x)
/// (monotone in the number of honest others), audit frequency f_i, and
/// penalty P_i.
///
/// As in the homogeneous game, losses L_ji shift payoffs but never
/// enter a unilateral-deviation comparison, so equilibrium structure is
/// fully determined by each player's cheating advantage
///   A_i(x) = (1 - f_i) F_i(x) - f_i P_i - B_i .
class HeterogeneousHonestyGame {
 public:
  struct PlayerSpec {
    double benefit = 0.0;     // B_i
    GainFunction gain;        // F_i(x)
    double frequency = 0.0;   // f_i in [0, 1]
    double penalty = 0.0;     // P_i >= 0
  };

  /// Validates and builds; needs >= 2 players, monotone gains.
  static Result<HeterogeneousHonestyGame> Create(
      std::vector<PlayerSpec> players);

  int n() const { return static_cast<int>(players_.size()); }
  const PlayerSpec& player(int i) const {
    return players_[static_cast<size_t>(i)];
  }

  /// (1 - f_i) F_i(x) - f_i P_i - B_i.
  double CheatAdvantage(int player, int honest_others) const;

  /// Nash check in O(n) given the profile.
  bool IsEquilibrium(const std::vector<bool>& honest) const;

  /// All pure equilibria by subset enumeration (n <= 20).
  Result<std::vector<std::vector<bool>>> AllEquilibria() const;

  /// True iff honesty is dominant for every player (the heterogeneous
  /// Proposition 1 condition: A_i(n-1) <= 0 for all i).
  bool IsHonestDominantForAll() const;

 private:
  explicit HeterogeneousHonestyGame(std::vector<PlayerSpec> players)
      : players_(std::move(players)) {}

  std::vector<PlayerSpec> players_;
};

/// Design helpers for the heterogeneous device.

/// Execution knobs for the design searches. The per-player inner loops
/// honor the determinism contract of common/parallel.h — each player's
/// cell is computed into its ordered output slot and cross-player
/// reductions stay serial — so every knob combination produces
/// bit-identical results.
struct DesignSearchOptions {
  /// 1 = serial (default), 0 = hardware concurrency, N = exactly N.
  int threads = 1;
  /// Players per dispatch batch: on fine grids (tens of thousands of
  /// cheap cells) batching cuts the per-index dispatch overhead.
  size_t batch_size = 64;
};

/// Per-player minimum penalties that make all-honest the dominant
/// profile at the players' given frequencies (each f_i must be > 0):
/// P_i = ((1 - f_i) F_i(n-1) - B_i) / f_i + margin, floored at 0.
Result<std::vector<double>> MinPenaltiesForAllHonest(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double margin = 1e-6, const DesignSearchOptions& options = {});

/// A per-player audit-frequency plan and its expected cost.
struct AuditAllocation {
  std::vector<double> frequencies;
  double total_cost = 0.0;
};

/// The cheapest frequency plan that makes all-honest dominant when each
/// audit of player i costs `audit_costs[i]` and penalties are fixed in
/// the specs: players decouple, so f_i = (F_i(n-1) - B_i)/(F_i(n-1) +
/// P_i) + margin independently.
Result<AuditAllocation> MinCostFrequencies(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    const std::vector<double>& audit_costs, double margin = 1e-6,
    const DesignSearchOptions& options = {});

/// With a cap on the *total* audit frequency budget (sum of f_i), keeps
/// as many players honest as possible: sorts players by required
/// frequency and funds the cheapest first (a provably optimal greedy for
/// this separable constraint — each player needs a fixed f_i regardless
/// of who else is funded, since F_i(n-1) is the worst case either way).
struct BudgetedAllocation {
  std::vector<double> frequencies;  // 0 for unfunded players
  std::vector<bool> deterred;       // player made honest-dominant?
  int deterred_count = 0;
  double budget_used = 0.0;
};

Result<BudgetedAllocation> MaxDeterredUnderBudget(
    const std::vector<HeterogeneousHonestyGame::PlayerSpec>& players,
    double total_frequency_budget, double margin = 1e-6,
    const DesignSearchOptions& options = {});

}  // namespace hsis::game

#endif  // HSIS_GAME_HETEROGENEOUS_H_

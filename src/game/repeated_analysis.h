#ifndef HSIS_GAME_REPEATED_ANALYSIS_H_
#define HSIS_GAME_REPEATED_ANALYSIS_H_

#include "common/result.h"

namespace hsis::game {

/// Folk-theorem analysis of the infinitely repeated honesty game: can
/// *repetition* (the shadow of the future) substitute for — or combine
/// with — the auditing device?
///
/// Stage game = the symmetric audited game of Table 2 (Table 1 when
/// f = P = 0). Strategy: grim trigger — play H until the opponent ever
/// plays C, then play C forever. Because (C,C) is a stage-game Nash
/// equilibrium (Observation 1), the punishment path is credible
/// (subgame perfect).
///
/// With discount factor delta, a one-shot deviation yields
/// d = (1-f)F - fP now and the mutual-cheat payoff m = d - (1-f)L
/// forever after, against B forever on the path. Honesty is
/// sustainable iff
///
///     delta >= (d - B) / (d - m) = ((1-f)F - fP - B) / ((1-f)L).
///
/// Setting f = P = 0 gives the pure-repetition condition
/// delta* = (F - B)/L: patience alone deters exactly when the
/// collateral damage L of mutual cheating exceeds the cheating gain
/// F - B (and players are patient enough).

/// The critical discount factor delta*. Returns 0 when the stage game
/// already deters (d <= B); +infinity when punishment has no bite
/// (L = 0, or the required delta exceeds 1 — repetition cannot help).
double CriticalDiscount(double benefit, double cheat_gain, double loss,
                        double frequency = 0.0, double penalty = 0.0);

/// True iff grim trigger sustains (H,H) as a subgame-perfect outcome at
/// discount `delta`.
bool GrimTriggerSustainsHonesty(double benefit, double cheat_gain, double loss,
                                double frequency, double penalty,
                                double delta);

/// The generalized Observation 2: the minimum audit frequency when
/// players discount at `delta` and punish by grim trigger —
///
///     f*(delta) = max(0, (F - delta L - B) / (F - delta L + P)).
///
/// delta = 0 recovers CriticalFrequency exactly; patience shrinks the
/// effective temptation from F to F - delta L.
double CriticalFrequencyWithPatience(double benefit, double cheat_gain,
                                     double loss, double penalty,
                                     double delta);

/// Discounted value of receiving `per_round` forever: per_round/(1-delta).
/// Requires delta in [0, 1).
double DiscountedValue(double per_round, double delta);

/// Discounted value of a one-shot deviation followed by punishment
/// forever: deviation_payoff + delta * punishment_per_round/(1-delta).
double DeviationValue(double deviation_payoff, double punishment_per_round,
                      double delta);

}  // namespace hsis::game

#endif  // HSIS_GAME_REPEATED_ANALYSIS_H_

#ifndef HSIS_GAME_HONESTY_GAMES_H_
#define HSIS_GAME_HONESTY_GAMES_H_

#include <string>

#include "common/result.h"
#include "game/normal_form_game.h"

namespace hsis::game {

/// Strategy indices used by every honesty game in the library.
inline constexpr int kHonest = 0;
inline constexpr int kCheat = 1;

/// Returns "H" or "C".
const char* ActionName(int strategy);

/// Economic parameters of one player in the two-player sharing game
/// (Section 3): B is the benefit from honest collaboration, F > B the
/// increased benefit the player expects from cheating.
struct PlayerEconomics {
  double benefit = 0.0;     // B_i
  double cheat_gain = 0.0;  // F_i, must exceed benefit for the dilemma
};

/// Audit parameters applied to one player (Section 4): the device checks
/// the player with relative frequency `frequency` in [0,1] and fines a
/// detected cheater `penalty` >= 0.
struct AuditTerms {
  double frequency = 0.0;  // f_i
  double penalty = 0.0;    // P_i
};

/// Full parameterization of the (possibly asymmetric) audited two-player
/// game of Table 3. Table 1 is the special case frequency = penalty = 0;
/// Table 2 is the symmetric case.
struct TwoPlayerGameParams {
  PlayerEconomics player1;  // Rowi
  PlayerEconomics player2;  // Colie
  /// loss_to_1 (the paper's L21): the loss player 2's undetected cheating
  /// inflicts on player 1; loss_to_2 (L12) symmetric.
  double loss_to_1 = 0.0;
  double loss_to_2 = 0.0;
  AuditTerms audit1;  // device's terms for player 1
  AuditTerms audit2;  // device's terms for player 2

  /// Convenience: the symmetric instance (B, F, L) with shared audit
  /// terms (f, P) of Tables 1 and 2.
  static TwoPlayerGameParams Symmetric(double benefit, double cheat_gain,
                                       double loss, double frequency = 0.0,
                                       double penalty = 0.0);

  /// Validates ranges: F_i > B_i >= 0, L >= 0, f in [0,1], P >= 0.
  Status Validate() const;
};

/// Builds the Table 3 payoff matrix (player 1 = Rowi rows, player 2 =
/// Colie columns, strategies {H, C}):
///
///   u1(H,H) = B1                u1(H,C) = B1 - (1-f2) L21
///   u1(C,H) = (1-f1)F1 - f1 P1  u1(C,C) = (1-f1)F1 - f1 P1 - (1-f2) L21
///   (player 2 symmetric with indices swapped)
///
/// With audit terms zeroed this reduces exactly to Table 1; symmetric
/// parameters give Table 2.
Result<NormalFormGame> MakeTwoPlayerHonestyGame(
    const TwoPlayerGameParams& params);

/// The Section 3 no-audit game (Table 1), symmetric form.
Result<NormalFormGame> MakeNoAuditGame(double benefit, double cheat_gain,
                                       double loss);

/// The Section 4.1 symmetric audited game (Table 2).
Result<NormalFormGame> MakeSymmetricAuditedGame(double benefit,
                                                double cheat_gain, double loss,
                                                double frequency,
                                                double penalty);

/// Renders the payoff matrix in the paper's layout (each cell lists
/// player 1 bottom-left, player 2 top-right) for table reproductions.
std::string FormatPayoffMatrix(const NormalFormGame& game,
                               const std::string& row_player,
                               const std::string& col_player);

}  // namespace hsis::game

#endif  // HSIS_GAME_HONESTY_GAMES_H_

#ifndef HSIS_GAME_LANDSCAPE_H_
#define HSIS_GAME_LANDSCAPE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "game/honesty_games.h"
#include "game/nplayer_game.h"
#include "game/thresholds.h"

namespace hsis::game {

/// Compact label for a 2-player pure profile, e.g. "HC" (player 1
/// honest, player 2 cheating).
std::string ProfileLabel(const StrategyProfile& profile);

/// One sample of the Figure 1 landscape (equilibria vs audit frequency
/// at fixed penalty, symmetric game).
struct FrequencySweepRow {
  double frequency;
  SymmetricRegion analytic_region;        // closed-form prediction
  std::vector<std::string> nash_equilibria;  // brute-force enumeration
  bool honest_is_dse;                     // (H,H) is a DSE
  bool analytic_matches_enumeration;      // cross-check result
};

/// Sweeps f over [0, 1] in `steps` uniform samples of the symmetric
/// audited game (Table 2) and cross-checks Observation 2 against exact
/// equilibrium enumeration.
///
/// All sweeps in this header take a `threads` knob (1 = serial, the
/// default; 0 = hardware concurrency) and honor the determinism
/// contract of common/parallel.h: each row/cell is computed into its
/// ordered output slot independently, so the result is bit-identical
/// across thread counts.
Result<std::vector<FrequencySweepRow>> SweepFrequency(double benefit,
                                                      double cheat_gain,
                                                      double loss,
                                                      double penalty,
                                                      int steps,
                                                      int threads = 1);

/// One sample of the Figure 2 landscape (equilibria vs penalty at fixed
/// frequency).
struct PenaltySweepRow {
  double penalty;
  SymmetricRegion analytic_region;
  std::vector<std::string> nash_equilibria;
  bool honest_is_dse;
  bool analytic_matches_enumeration;
};

/// Sweeps P over [0, max_penalty] in `steps` samples; cross-checks
/// Observation 3.
Result<std::vector<PenaltySweepRow>> SweepPenalty(double benefit,
                                                  double cheat_gain,
                                                  double loss,
                                                  double frequency,
                                                  double max_penalty,
                                                  int steps,
                                                  int threads = 1);

/// One cell of the Figure 3 (f1, f2) grid for the asymmetric game.
struct AsymmetricGridCell {
  double f1;
  double f2;
  AsymmetricRegion analytic_region;
  std::vector<std::string> nash_equilibria;
  bool analytic_matches_enumeration = false;
};

/// Evaluates the asymmetric audited game on a `steps` x `steps` grid
/// over [0,1]^2 of audit frequencies (penalties fixed in `params`).
Result<std::vector<AsymmetricGridCell>> SweepAsymmetricGrid(
    const TwoPlayerGameParams& params, int steps, int threads = 1);

/// One sample of the Figure 4 landscape (n-player equilibria vs P).
struct NPlayerBandRow {
  double penalty;
  int analytic_honest_count;       // Theorem 1 prediction
  std::vector<int> equilibrium_honest_counts;  // game-theoretic check
  bool honest_is_dominant;         // Proposition 1 regime
  bool cheat_is_dominant;          // Proposition 2 regime
  bool analytic_matches_enumeration;
};

/// Sweeps P over [0, max_penalty] for the n-player game and cross-checks
/// Theorem 1's band structure.
Result<std::vector<NPlayerBandRow>> SweepNPlayerPenalty(
    const NPlayerHonestyGame::Params& base_params, double max_penalty,
    int steps, int threads = 1);

/// Single-row evaluators: the exact per-index arithmetic of the
/// corresponding sweeps, exposed so sharded runs (common/shard.h) can
/// compute any subset of a sweep in any process. `Sweep*` is equivalent
/// to evaluating every index of `[0, steps)` (or `[0, steps*steps)` for
/// the grid) in order; a shard evaluates its contiguous slice and the
/// merged output is bit-identical to the full sweep.
Result<FrequencySweepRow> EvalFrequencySweepRow(double benefit,
                                                double cheat_gain, double loss,
                                                double penalty, int steps,
                                                size_t index);
Result<PenaltySweepRow> EvalPenaltySweepRow(double benefit, double cheat_gain,
                                            double loss, double frequency,
                                            double max_penalty, int steps,
                                            size_t index);
Result<AsymmetricGridCell> EvalAsymmetricGridCell(
    const TwoPlayerGameParams& params, int steps, size_t index);
Result<NPlayerBandRow> EvalNPlayerBandRow(
    const NPlayerHonestyGame::Params& base_params, double max_penalty,
    int steps, size_t index);

}  // namespace hsis::game

#endif  // HSIS_GAME_LANDSCAPE_H_

#include "game/honesty_games.h"

#include <cstdio>

#include "common/logging.h"

namespace hsis::game {

const char* ActionName(int strategy) {
  return strategy == kHonest ? "H" : "C";
}

TwoPlayerGameParams TwoPlayerGameParams::Symmetric(double benefit,
                                                   double cheat_gain,
                                                   double loss,
                                                   double frequency,
                                                   double penalty) {
  TwoPlayerGameParams params;
  params.player1 = {benefit, cheat_gain};
  params.player2 = {benefit, cheat_gain};
  params.loss_to_1 = loss;
  params.loss_to_2 = loss;
  params.audit1 = {frequency, penalty};
  params.audit2 = {frequency, penalty};
  return params;
}

Status TwoPlayerGameParams::Validate() const {
  for (const PlayerEconomics* e : {&player1, &player2}) {
    if (e->benefit < 0) {
      return Status::InvalidArgument("benefit B must be non-negative");
    }
    if (e->cheat_gain <= e->benefit) {
      return Status::InvalidArgument(
          "cheating gain F must exceed honest benefit B (F > B)");
    }
  }
  if (loss_to_1 < 0 || loss_to_2 < 0) {
    return Status::InvalidArgument("losses L must be non-negative");
  }
  for (const AuditTerms* a : {&audit1, &audit2}) {
    if (a->frequency < 0 || a->frequency > 1) {
      return Status::InvalidArgument("audit frequency f must be in [0, 1]");
    }
    if (a->penalty < 0) {
      return Status::InvalidArgument("penalty P must be non-negative");
    }
  }
  return Status::OK();
}

Result<NormalFormGame> MakeTwoPlayerHonestyGame(
    const TwoPlayerGameParams& params) {
  HSIS_RETURN_IF_ERROR(params.Validate());
  HSIS_ASSIGN_OR_RETURN(NormalFormGame game, NormalFormGame::Create({2, 2}));
  game.SetStrategyNames({"H", "C"});

  const double b1 = params.player1.benefit;
  const double b2 = params.player2.benefit;
  const double f1 = params.audit1.frequency;
  const double f2 = params.audit2.frequency;
  // Expected cheating payoff of player i: caught with probability f_i.
  const double cheat1 =
      (1 - f1) * params.player1.cheat_gain - f1 * params.audit1.penalty;
  const double cheat2 =
      (1 - f2) * params.player2.cheat_gain - f2 * params.audit2.penalty;
  // Expected externality: an undetected cheater damages the other player.
  const double spill_on_1 = (1 - f2) * params.loss_to_1;  // (1-f2) L21
  const double spill_on_2 = (1 - f1) * params.loss_to_2;  // (1-f1) L12

  game.SetPayoffs({kHonest, kHonest}, {b1, b2});
  game.SetPayoffs({kHonest, kCheat}, {b1 - spill_on_1, cheat2});
  game.SetPayoffs({kCheat, kHonest}, {cheat1, b2 - spill_on_2});
  game.SetPayoffs({kCheat, kCheat}, {cheat1 - spill_on_1, cheat2 - spill_on_2});
  return game;
}

Result<NormalFormGame> MakeNoAuditGame(double benefit, double cheat_gain,
                                       double loss) {
  return MakeTwoPlayerHonestyGame(
      TwoPlayerGameParams::Symmetric(benefit, cheat_gain, loss));
}

Result<NormalFormGame> MakeSymmetricAuditedGame(double benefit,
                                                double cheat_gain, double loss,
                                                double frequency,
                                                double penalty) {
  return MakeTwoPlayerHonestyGame(TwoPlayerGameParams::Symmetric(
      benefit, cheat_gain, loss, frequency, penalty));
}

std::string FormatPayoffMatrix(const NormalFormGame& game,
                               const std::string& row_player,
                               const std::string& col_player) {
  HSIS_CHECK(game.num_players() == 2);
  auto cell = [&](int r, int c) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "(%.3g, %.3g)", game.Payoff({r, c}, 0),
                  game.Payoff({r, c}, 1));
    return std::string(buf);
  };
  std::string out;
  out += row_player + " \\ " + col_player + "\n";
  out += "            ";
  for (int c = 0; c < game.num_strategies(1); ++c) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%-22s", game.StrategyName(c).c_str());
    out += buf;
  }
  out += "\n";
  for (int r = 0; r < game.num_strategies(0); ++r) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%-12s", game.StrategyName(r).c_str());
    out += buf;
    for (int c = 0; c < game.num_strategies(1); ++c) {
      std::snprintf(buf, sizeof(buf), "%-22s", cell(r, c).c_str());
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace hsis::game

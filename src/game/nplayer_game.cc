#include "game/nplayer_game.h"

#include <cmath>

#include "common/logging.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"

namespace hsis::game {

Result<NPlayerHonestyGame> NPlayerHonestyGame::Create(Params params) {
  if (params.n < 2) {
    return Status::InvalidArgument("n-player game needs n >= 2");
  }
  if (!params.gain) {
    return Status::InvalidArgument("gain function F is required");
  }
  if (params.frequency < 0 || params.frequency > 1) {
    return Status::InvalidArgument("frequency f must be in [0, 1]");
  }
  if (params.penalty < 0 || params.uniform_loss < 0 || params.benefit < 0) {
    return Status::InvalidArgument("B, P and L must be non-negative");
  }
  if (!params.loss_matrix.empty()) {
    if (params.loss_matrix.size() != static_cast<size_t>(params.n)) {
      return Status::InvalidArgument("loss matrix must be n x n");
    }
    for (const auto& row : params.loss_matrix) {
      if (row.size() != static_cast<size_t>(params.n)) {
        return Status::InvalidArgument("loss matrix must be n x n");
      }
      for (double v : row) {
        if (v < 0) return Status::InvalidArgument("losses must be >= 0");
      }
    }
  }
  // Monotonicity spot check over the relevant domain.
  for (int x = 0; x + 1 < params.n; ++x) {
    if (params.gain(x + 1) < params.gain(x) - 1e-12) {
      return Status::InvalidArgument(
          "gain function F must be monotone increasing in the number of "
          "honest players");
    }
  }
  return NPlayerHonestyGame(std::move(params));
}

double NPlayerHonestyGame::Loss(int j, int i) const {
  if (params_.loss_matrix.empty()) return params_.uniform_loss;
  return params_.loss_matrix[static_cast<size_t>(j)][static_cast<size_t>(i)];
}

double NPlayerHonestyGame::CheatAdvantage(int honest_others) const {
  return (1 - params_.frequency) * params_.gain(honest_others) -
         params_.frequency * params_.penalty - params_.benefit;
}

double NPlayerHonestyGame::Payoff(const std::vector<bool>& honest,
                                  int player) const {
  HSIS_CHECK(honest.size() == static_cast<size_t>(params_.n));
  HSIS_CHECK(player >= 0 && player < params_.n);

  int honest_others = 0;
  double loss_sum = 0.0;
  for (int j = 0; j < params_.n; ++j) {
    if (j == player) continue;
    if (honest[static_cast<size_t>(j)]) {
      ++honest_others;
    } else {
      loss_sum += Loss(j, player);
    }
  }

  double u = -(1 - params_.frequency) * loss_sum;
  if (honest[static_cast<size_t>(player)]) {
    u += params_.benefit;
  } else {
    u += (1 - params_.frequency) * params_.gain(honest_others) -
         params_.frequency * params_.penalty;
  }
  return u;
}

bool NPlayerHonestyGame::IsNashEquilibrium(
    const std::vector<bool>& honest) const {
  HSIS_CHECK(honest.size() == static_cast<size_t>(params_.n));
  int honest_total = 0;
  for (bool h : honest) honest_total += h;

  // A unilateral deviation leaves the loss terms unchanged (they depend
  // only on the others' actions), so player i prefers honesty iff
  // CheatAdvantage(x_i) <= 0, where x_i is its count of honest others.
  for (int i = 0; i < params_.n; ++i) {
    bool is_honest = honest[static_cast<size_t>(i)];
    int honest_others = honest_total - (is_honest ? 1 : 0);
    double adv = CheatAdvantage(honest_others);
    if (is_honest && adv > kPayoffEpsilon) return false;
    if (!is_honest && adv < -kPayoffEpsilon) return false;
  }
  return true;
}

bool NPlayerHonestyGame::IsEquilibriumHonestCount(int x) const {
  HSIS_CHECK(x >= 0 && x <= params_.n);
  // Honest players (x of them) each face x-1 honest others; cheaters face x.
  if (x > 0 && CheatAdvantage(x - 1) > kPayoffEpsilon) return false;
  if (x < params_.n && CheatAdvantage(x) < -kPayoffEpsilon) return false;
  return true;
}

std::vector<int> NPlayerHonestyGame::EquilibriumHonestCounts() const {
  std::vector<int> out;
  for (int x = 0; x <= params_.n; ++x) {
    if (IsEquilibriumHonestCount(x)) out.push_back(x);
  }
  return out;
}

bool NPlayerHonestyGame::IsHonestDominant() const {
  // Worst case for honesty is everyone else honest (F monotone): if
  // honesty beats cheating there, it does everywhere (Proposition 1).
  return CheatAdvantage(params_.n - 1) <= kPayoffEpsilon;
}

bool NPlayerHonestyGame::IsCheatDominant() const {
  // Worst case for cheating is nobody else honest: F(0).
  return CheatAdvantage(0) >= -kPayoffEpsilon;
}

Result<NormalFormGame> NPlayerHonestyGame::ToNormalForm() const {
  if (params_.n > 20) {
    return Status::OutOfRange("dense expansion limited to n <= 20");
  }
  HSIS_ASSIGN_OR_RETURN(
      NormalFormGame game,
      NormalFormGame::Create(std::vector<int>(static_cast<size_t>(params_.n), 2)));
  game.SetStrategyNames({"H", "C"});
  std::vector<bool> honest(static_cast<size_t>(params_.n));
  for (size_t idx = 0; idx < game.num_profiles(); ++idx) {
    StrategyProfile profile = game.ProfileFromIndex(idx);
    for (int i = 0; i < params_.n; ++i) {
      honest[static_cast<size_t>(i)] = (profile[static_cast<size_t>(i)] == kHonest);
    }
    for (int i = 0; i < params_.n; ++i) {
      game.SetPayoff(profile, i, Payoff(honest, i));
    }
  }
  return game;
}

}  // namespace hsis::game

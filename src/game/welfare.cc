#include "game/welfare.h"

#include <limits>

#include "game/equilibrium.h"

namespace hsis::game {

double SocialWelfare(const NormalFormGame& game,
                     const StrategyProfile& profile) {
  double total = 0;
  for (int p = 0; p < game.num_players(); ++p) {
    total += game.Payoff(profile, p);
  }
  return total;
}

Result<WelfareAnalysis> AnalyzeWelfare(const NormalFormGame& game) {
  WelfareAnalysis out;
  out.optimal_welfare = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < game.num_profiles(); ++i) {
    StrategyProfile profile = game.ProfileFromIndex(i);
    double welfare = SocialWelfare(game, profile);
    if (welfare > out.optimal_welfare) {
      out.optimal_welfare = welfare;
      out.optimal_profile = profile;
    }
  }

  std::vector<StrategyProfile> equilibria = PureNashEquilibria(game);
  if (equilibria.empty()) {
    out.has_pure_equilibrium = false;
    out.equilibrium_welfare = 0;
    out.price_of_dishonesty = std::numeric_limits<double>::quiet_NaN();
    return out;
  }
  out.equilibrium_welfare = std::numeric_limits<double>::infinity();
  for (const StrategyProfile& eq : equilibria) {
    double welfare = SocialWelfare(game, eq);
    if (welfare < out.equilibrium_welfare) {
      out.equilibrium_welfare = welfare;
      out.worst_equilibrium = eq;
    }
  }
  if (out.equilibrium_welfare > 0) {
    out.price_of_dishonesty = out.optimal_welfare / out.equilibrium_welfare;
  } else if (out.optimal_welfare > 0) {
    out.price_of_dishonesty = std::numeric_limits<double>::infinity();
  } else {
    out.price_of_dishonesty = 1.0;
  }
  return out;
}

double NPlayerWelfareAtHonestCount(const NPlayerHonestyGame& game, int x) {
  const int n = game.n();
  std::vector<bool> profile(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) profile[static_cast<size_t>(i)] = i < x;
  double total = 0;
  for (int i = 0; i < n; ++i) total += game.Payoff(profile, i);
  return total;
}

double NetWelfareAllHonest(int n, double benefit, double frequency,
                           double audit_cost) {
  return n * benefit - n * frequency * audit_cost;
}

}  // namespace hsis::game

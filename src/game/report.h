#ifndef HSIS_GAME_REPORT_H_
#define HSIS_GAME_REPORT_H_

#include <string>
#include <vector>

#include "game/kernel.h"
#include "game/landscape.h"

namespace hsis::game {

/// CSV serializers for the landscape sweeps — plot-ready data for the
/// paper's four figures. Each returns a header row followed by one line
/// per sample; fields containing commas are not produced by these
/// sweeps so no quoting is needed.

/// Each `*ToCsv(rows)` is exactly `*CsvHeader() + concat(*RowToCsv(row))`;
/// the per-row forms exist so sharded runs (common/shard.h) can emit one
/// row per record and reassemble the byte-identical CSV.

/// Columns: frequency, region, nash_equilibria (';'-joined), honest_is_dse,
/// matches_enumeration.
std::string FrequencySweepCsvHeader();
std::string FrequencySweepRowToCsv(const FrequencySweepRow& row);
std::string FrequencySweepToCsv(const std::vector<FrequencySweepRow>& rows);

/// Columns: penalty, region, nash_equilibria, honest_is_dse,
/// matches_enumeration.
std::string PenaltySweepCsvHeader();
std::string PenaltySweepRowToCsv(const PenaltySweepRow& row);
std::string PenaltySweepToCsv(const std::vector<PenaltySweepRow>& rows);

/// Columns: f1, f2, region, nash_equilibria, matches_enumeration.
std::string AsymmetricGridCsvHeader();
std::string AsymmetricGridCellToCsv(const AsymmetricGridCell& cell);
std::string AsymmetricGridToCsv(const std::vector<AsymmetricGridCell>& cells);

/// Columns: penalty, analytic_honest_count, equilibrium_honest_counts
/// (';'-joined), honest_dominant, cheat_dominant, matches_enumeration.
std::string NPlayerBandsCsvHeader();
std::string NPlayerBandRowToCsv(const NPlayerBandRow& row);
std::string NPlayerBandsToCsv(const std::vector<NPlayerBandRow>& rows);

/// Kernel-row serializers — the exact bytes of the legacy per-row forms,
/// with equilibrium labels read from the interned bitmask table
/// (kernel::NashMaskJoined) instead of joining a vector<string>. This is
/// the label-interning boundary: bitmasks stay bitmasks until here.
std::string FrequencyKernelRowToCsv(const kernel::FrequencyRowKernel& row);
std::string PenaltyKernelRowToCsv(const kernel::PenaltyRowKernel& row);
std::string AsymmetricKernelCellToCsv(const kernel::AsymmetricCellKernel& cell);
std::string NPlayerKernelRowToCsv(const kernel::NPlayerBandRowKernel& row);

/// Structure-of-arrays serializers: header + every slot of the buffer,
/// byte-identical to the legacy `*ToCsv(rows)` over the same sweep. The
/// kernel fast path (`LandscapeCsv`) renders whole figures through these
/// without materializing per-row structs.
std::string FrequencySweepToCsv(const kernel::FrequencyRowsSoA& rows);
std::string PenaltySweepToCsv(const kernel::PenaltyRowsSoA& rows);
std::string AsymmetricGridToCsv(const kernel::AsymmetricCellsSoA& cells);
std::string NPlayerBandsToCsv(const kernel::NPlayerBandRowsSoA& rows);

}  // namespace hsis::game

#endif  // HSIS_GAME_REPORT_H_

#include "game/landscape.h"

#include <cmath>

#include "common/parallel.h"
#include "game/equilibrium.h"

namespace hsis::game {

namespace {

std::vector<std::string> EnumerateLabels(const NormalFormGame& game) {
  std::vector<std::string> out;
  for (const StrategyProfile& p : PureNashEquilibria(game)) {
    out.push_back(ProfileLabel(p));
  }
  return out;
}

bool HonestHonestIsDse(const NormalFormGame& game) {
  std::optional<StrategyProfile> dse = DominantStrategyEquilibrium(game);
  return dse.has_value() && (*dse)[0] == kHonest && (*dse)[1] == kHonest;
}

/// Checks that the enumerated equilibria agree with the symmetric-region
/// prediction. On the boundary both (H,H) and (C,C) (and possibly the
/// off-diagonal profiles) can be equilibria; interior regions must be a
/// single profile.
bool SymmetricPredictionHolds(SymmetricRegion region,
                              const std::vector<std::string>& equilibria) {
  auto contains = [&](const char* label) {
    for (const std::string& e : equilibria) {
      if (e == label) return true;
    }
    return false;
  };
  switch (region) {
    case SymmetricRegion::kAllCheatUniqueDse:
      return equilibria.size() == 1 && contains("CC");
    case SymmetricRegion::kAllHonestUniqueDse:
      return equilibria.size() == 1 && contains("HH");
    case SymmetricRegion::kBoundary:
      return contains("HH");
  }
  return false;
}

}  // namespace

std::string ProfileLabel(const StrategyProfile& profile) {
  std::string out;
  for (int s : profile) out += ActionName(s);
  return out;
}

Result<FrequencySweepRow> EvalFrequencySweepRow(double benefit,
                                                double cheat_gain, double loss,
                                                double penalty, int steps,
                                                size_t index) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  if (index >= static_cast<size_t>(steps)) {
    return Status::InvalidArgument("row index out of range");
  }
  double f = static_cast<double>(index) / (steps - 1);
  HSIS_ASSIGN_OR_RETURN(
      NormalFormGame game,
      MakeSymmetricAuditedGame(benefit, cheat_gain, loss, f, penalty));
  FrequencySweepRow row;
  row.frequency = f;
  row.analytic_region =
      ClassifySymmetricRegion(benefit, cheat_gain, f, penalty);
  row.nash_equilibria = EnumerateLabels(game);
  row.honest_is_dse = HonestHonestIsDse(game);
  row.analytic_matches_enumeration =
      SymmetricPredictionHolds(row.analytic_region, row.nash_equilibria);
  return row;
}

Result<std::vector<FrequencySweepRow>> SweepFrequency(double benefit,
                                                      double cheat_gain,
                                                      double loss,
                                                      double penalty,
                                                      int steps,
                                                      int threads) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  std::vector<FrequencySweepRow> rows(static_cast<size_t>(steps));
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      threads, rows.size(), [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(rows[i], EvalFrequencySweepRow(benefit,
                                                             cheat_gain, loss,
                                                             penalty, steps,
                                                             i));
        return Status::OK();
      }));
  return rows;
}

Result<PenaltySweepRow> EvalPenaltySweepRow(double benefit, double cheat_gain,
                                            double loss, double frequency,
                                            double max_penalty, int steps,
                                            size_t index) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  if (index >= static_cast<size_t>(steps)) {
    return Status::InvalidArgument("row index out of range");
  }
  double p = max_penalty * static_cast<double>(index) / (steps - 1);
  HSIS_ASSIGN_OR_RETURN(
      NormalFormGame game,
      MakeSymmetricAuditedGame(benefit, cheat_gain, loss, frequency, p));
  PenaltySweepRow row;
  row.penalty = p;
  row.analytic_region =
      ClassifySymmetricRegion(benefit, cheat_gain, frequency, p);
  row.nash_equilibria = EnumerateLabels(game);
  row.honest_is_dse = HonestHonestIsDse(game);
  row.analytic_matches_enumeration =
      SymmetricPredictionHolds(row.analytic_region, row.nash_equilibria);
  return row;
}

Result<std::vector<PenaltySweepRow>> SweepPenalty(double benefit,
                                                  double cheat_gain,
                                                  double loss,
                                                  double frequency,
                                                  double max_penalty,
                                                  int steps,
                                                  int threads) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  std::vector<PenaltySweepRow> rows(static_cast<size_t>(steps));
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      threads, rows.size(), [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(
            rows[i], EvalPenaltySweepRow(benefit, cheat_gain, loss, frequency,
                                         max_penalty, steps, i));
        return Status::OK();
      }));
  return rows;
}

Result<AsymmetricGridCell> EvalAsymmetricGridCell(
    const TwoPlayerGameParams& params, int steps, size_t index) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  if (index >= static_cast<size_t>(steps) * static_cast<size_t>(steps)) {
    return Status::InvalidArgument("cell index out of range");
  }
  int i = static_cast<int>(index / static_cast<size_t>(steps));
  int j = static_cast<int>(index % static_cast<size_t>(steps));
  TwoPlayerGameParams p = params;
  p.audit1.frequency = static_cast<double>(i) / (steps - 1);
  p.audit2.frequency = static_cast<double>(j) / (steps - 1);
  HSIS_ASSIGN_OR_RETURN(NormalFormGame game, MakeTwoPlayerHonestyGame(p));

  AsymmetricGridCell cell;
  cell.f1 = p.audit1.frequency;
  cell.f2 = p.audit2.frequency;
  cell.analytic_region = ClassifyAsymmetricRegion(
      p.player1.benefit, p.player1.cheat_gain, p.audit1.penalty, cell.f1,
      p.player2.benefit, p.player2.cheat_gain, p.audit2.penalty, cell.f2);
  cell.nash_equilibria = EnumerateLabels(game);

  // Interior regions predict a unique equilibrium with the
  // corresponding label; boundary cells are vacuously consistent.
  switch (cell.analytic_region) {
    case AsymmetricRegion::kBoundary:
      cell.analytic_matches_enumeration = true;
      break;
    case AsymmetricRegion::kBothCheat:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"CC"};
      break;
    case AsymmetricRegion::kOnlyP1Cheats:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"CH"};
      break;
    case AsymmetricRegion::kOnlyP2Cheats:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"HC"};
      break;
    case AsymmetricRegion::kBothHonest:
      cell.analytic_matches_enumeration =
          cell.nash_equilibria == std::vector<std::string>{"HH"};
      break;
  }
  return cell;
}

Result<std::vector<AsymmetricGridCell>> SweepAsymmetricGrid(
    const TwoPlayerGameParams& params, int steps, int threads) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  std::vector<AsymmetricGridCell> cells(static_cast<size_t>(steps) *
                                        static_cast<size_t>(steps));
  // Row-major: cell (i, j) lives in slot i * steps + j, exactly the
  // order the serial nested loop produced.
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      threads, cells.size(), [&](size_t idx) -> Status {
        HSIS_ASSIGN_OR_RETURN(cells[idx],
                              EvalAsymmetricGridCell(params, steps, idx));
        return Status::OK();
      }));
  return cells;
}

Result<NPlayerBandRow> EvalNPlayerBandRow(
    const NPlayerHonestyGame::Params& base_params, double max_penalty,
    int steps, size_t index) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  if (base_params.frequency <= 0) {
    return Status::InvalidArgument(
        "n-player penalty sweep requires frequency > 0 (Theorem 1)");
  }
  if (index >= static_cast<size_t>(steps)) {
    return Status::InvalidArgument("row index out of range");
  }
  NPlayerHonestyGame::Params p = base_params;
  p.penalty = max_penalty * static_cast<double>(index) / (steps - 1);
  HSIS_ASSIGN_OR_RETURN(NPlayerHonestyGame game, NPlayerHonestyGame::Create(p));
  NPlayerBandRow row;
  row.penalty = p.penalty;
  row.analytic_honest_count = NPlayerEquilibriumHonestCount(
      p.n, p.benefit, p.gain, p.frequency, p.penalty);
  row.equilibrium_honest_counts = game.EquilibriumHonestCounts();
  row.honest_is_dominant = game.IsHonestDominant();
  row.cheat_is_dominant = game.IsCheatDominant();
  // In band interiors there is exactly one equilibrium class and it
  // matches Theorem 1; at band edges the enumeration may contain two
  // adjacent classes, either of which may be the analytic pick.
  bool match = false;
  for (int x : row.equilibrium_honest_counts) {
    if (x == row.analytic_honest_count) match = true;
  }
  row.analytic_matches_enumeration =
      match && row.equilibrium_honest_counts.size() <= 2;
  return row;
}

Result<std::vector<NPlayerBandRow>> SweepNPlayerPenalty(
    const NPlayerHonestyGame::Params& base_params, double max_penalty,
    int steps, int threads) {
  if (steps < 2) return Status::InvalidArgument("steps must be >= 2");
  if (base_params.frequency <= 0) {
    return Status::InvalidArgument(
        "n-player penalty sweep requires frequency > 0 (Theorem 1)");
  }
  std::vector<NPlayerBandRow> rows(static_cast<size_t>(steps));
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      threads, rows.size(), [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(
            rows[i], EvalNPlayerBandRow(base_params, max_penalty, steps, i));
        return Status::OK();
      }));
  return rows;
}

}  // namespace hsis::game

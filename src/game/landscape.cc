#include "game/landscape.h"

#include "common/parallel.h"
#include "game/kernel.h"

namespace hsis::game {

// The sweeps and per-row evaluators run on the allocation-free kernel
// layer (game/kernel.h) and materialize the legacy label-carrying
// structs only at the API boundary; the label bytes are the interned
// bitmask images, so output is bit-identical to the historical
// NormalFormGame + PureNashEquilibria path (pinned by the golden CSV
// suites). Sweeps accept the degenerate `steps == 1` (a single row at
// the range start) through both the batch and per-row entry points.

namespace {

FrequencySweepRow MaterializeFrequencyRow(const kernel::FrequencyRowKernel& k) {
  FrequencySweepRow row;
  row.frequency = k.frequency;
  row.analytic_region = k.region;
  row.nash_equilibria.reserve(
      static_cast<size_t>(kernel::MaskCount(k.nash_mask)));
  kernel::AppendNashLabels(k.nash_mask, row.nash_equilibria);
  row.honest_is_dse = k.honest_is_dse;
  row.analytic_matches_enumeration = k.matches;
  return row;
}

PenaltySweepRow MaterializePenaltyRow(const kernel::PenaltyRowKernel& k) {
  PenaltySweepRow row;
  row.penalty = k.penalty;
  row.analytic_region = k.region;
  row.nash_equilibria.reserve(
      static_cast<size_t>(kernel::MaskCount(k.nash_mask)));
  kernel::AppendNashLabels(k.nash_mask, row.nash_equilibria);
  row.honest_is_dse = k.honest_is_dse;
  row.analytic_matches_enumeration = k.matches;
  return row;
}

AsymmetricGridCell MaterializeAsymmetricCell(
    const kernel::AsymmetricCellKernel& k) {
  AsymmetricGridCell cell;
  cell.f1 = k.f1;
  cell.f2 = k.f2;
  cell.analytic_region = k.region;
  cell.nash_equilibria.reserve(
      static_cast<size_t>(kernel::MaskCount(k.nash_mask)));
  kernel::AppendNashLabels(k.nash_mask, cell.nash_equilibria);
  cell.analytic_matches_enumeration = k.matches;
  return cell;
}

NPlayerBandRow MaterializeNPlayerRow(const kernel::NPlayerBandRowKernel& k) {
  NPlayerBandRow row;
  row.penalty = k.penalty;
  row.analytic_honest_count = k.analytic_honest_count;
  row.equilibrium_honest_counts.reserve(
      static_cast<size_t>(kernel::CountMaskSize(k.count_mask)));
  kernel::AppendHonestCounts(k.count_mask, row.equilibrium_honest_counts);
  row.honest_is_dominant = k.honest_is_dominant;
  row.cheat_is_dominant = k.cheat_is_dominant;
  row.analytic_matches_enumeration = k.matches;
  return row;
}

/// The pre-kernel n-player row (NPlayerHonestyGame enumeration) —
/// retained as the fallback for games beyond the kernel's fixed
/// capacity (n > kernel::kMaxKernelPlayers).
Result<NPlayerBandRow> LegacyEvalNPlayerBandRow(
    const NPlayerHonestyGame::Params& base_params, double max_penalty,
    int steps, size_t index) {
  NPlayerHonestyGame::Params p = base_params;
  p.penalty = steps == 1
                  ? 0.0
                  : max_penalty * static_cast<double>(index) / (steps - 1);
  HSIS_ASSIGN_OR_RETURN(NPlayerHonestyGame game, NPlayerHonestyGame::Create(p));
  NPlayerBandRow row;
  row.penalty = p.penalty;
  row.analytic_honest_count = NPlayerEquilibriumHonestCount(
      p.n, p.benefit, p.gain, p.frequency, p.penalty);
  row.equilibrium_honest_counts = game.EquilibriumHonestCounts();
  row.honest_is_dominant = game.IsHonestDominant();
  row.cheat_is_dominant = game.IsCheatDominant();
  // In band interiors there is exactly one equilibrium class and it
  // matches Theorem 1; at band edges the enumeration may contain two
  // adjacent classes, either of which may be the analytic pick.
  bool match = false;
  for (int x : row.equilibrium_honest_counts) {
    if (x == row.analytic_honest_count) match = true;
  }
  row.analytic_matches_enumeration =
      match && row.equilibrium_honest_counts.size() <= 2;
  return row;
}

Status ValidateNPlayerSweep(const NPlayerHonestyGame::Params& base_params,
                            int steps) {
  if (steps < 1) return Status::InvalidArgument("steps must be >= 1");
  if (base_params.frequency <= 0) {
    return Status::InvalidArgument(
        "n-player penalty sweep requires frequency > 0 (Theorem 1)");
  }
  return Status::OK();
}

}  // namespace

std::string ProfileLabel(const StrategyProfile& profile) {
  std::string out;
  out.reserve(profile.size());
  for (int s : profile) out.push_back(ActionName(s)[0]);
  return out;
}

Result<FrequencySweepRow> EvalFrequencySweepRow(double benefit,
                                                double cheat_gain, double loss,
                                                double penalty, int steps,
                                                size_t index) {
  HSIS_ASSIGN_OR_RETURN(
      kernel::FrequencyRowKernel row,
      kernel::EvalFrequencyRow(benefit, cheat_gain, loss, penalty, steps,
                               index));
  return MaterializeFrequencyRow(row);
}

Result<std::vector<FrequencySweepRow>> SweepFrequency(double benefit,
                                                      double cheat_gain,
                                                      double loss,
                                                      double penalty,
                                                      int steps,
                                                      int threads) {
  kernel::FrequencyRowsSoA soa;
  HSIS_RETURN_IF_ERROR(kernel::EvalFrequencyRows(
      benefit, cheat_gain, loss, penalty, steps, 0,
      static_cast<size_t>(steps), soa, threads));
  std::vector<FrequencySweepRow> rows(soa.size());
  for (size_t i = 0; i < soa.size(); ++i) {
    kernel::FrequencyRowKernel k;
    k.frequency = soa.frequency[i];
    k.region = soa.region[i];
    k.nash_mask = soa.nash_mask[i];
    k.honest_is_dse = soa.honest_is_dse[i] != 0;
    k.matches = soa.matches[i] != 0;
    rows[i] = MaterializeFrequencyRow(k);
  }
  return rows;
}

Result<PenaltySweepRow> EvalPenaltySweepRow(double benefit, double cheat_gain,
                                            double loss, double frequency,
                                            double max_penalty, int steps,
                                            size_t index) {
  HSIS_ASSIGN_OR_RETURN(
      kernel::PenaltyRowKernel row,
      kernel::EvalPenaltyRow(benefit, cheat_gain, loss, frequency, max_penalty,
                             steps, index));
  return MaterializePenaltyRow(row);
}

Result<std::vector<PenaltySweepRow>> SweepPenalty(double benefit,
                                                  double cheat_gain,
                                                  double loss,
                                                  double frequency,
                                                  double max_penalty,
                                                  int steps,
                                                  int threads) {
  kernel::PenaltyRowsSoA soa;
  HSIS_RETURN_IF_ERROR(kernel::EvalPenaltyRows(
      benefit, cheat_gain, loss, frequency, max_penalty, steps, 0,
      static_cast<size_t>(steps), soa, threads));
  std::vector<PenaltySweepRow> rows(soa.size());
  for (size_t i = 0; i < soa.size(); ++i) {
    kernel::PenaltyRowKernel k;
    k.penalty = soa.penalty[i];
    k.region = soa.region[i];
    k.nash_mask = soa.nash_mask[i];
    k.honest_is_dse = soa.honest_is_dse[i] != 0;
    k.matches = soa.matches[i] != 0;
    rows[i] = MaterializePenaltyRow(k);
  }
  return rows;
}

Result<AsymmetricGridCell> EvalAsymmetricGridCell(
    const TwoPlayerGameParams& params, int steps, size_t index) {
  HSIS_ASSIGN_OR_RETURN(kernel::AsymmetricCellKernel cell,
                        kernel::EvalAsymmetricCell(params, steps, index));
  return MaterializeAsymmetricCell(cell);
}

Result<std::vector<AsymmetricGridCell>> SweepAsymmetricGrid(
    const TwoPlayerGameParams& params, int steps, int threads) {
  kernel::AsymmetricCellsSoA soa;
  const size_t total = steps < 1 ? 0
                                 : static_cast<size_t>(steps) *
                                       static_cast<size_t>(steps);
  HSIS_RETURN_IF_ERROR(
      kernel::EvalAsymmetricCells(params, steps, 0, total, soa, threads));
  std::vector<AsymmetricGridCell> cells(soa.size());
  for (size_t i = 0; i < soa.size(); ++i) {
    kernel::AsymmetricCellKernel k;
    k.f1 = soa.f1[i];
    k.f2 = soa.f2[i];
    k.region = soa.region[i];
    k.nash_mask = soa.nash_mask[i];
    k.matches = soa.matches[i] != 0;
    cells[i] = MaterializeAsymmetricCell(k);
  }
  return cells;
}

Result<NPlayerBandRow> EvalNPlayerBandRow(
    const NPlayerHonestyGame::Params& base_params, double max_penalty,
    int steps, size_t index) {
  HSIS_RETURN_IF_ERROR(ValidateNPlayerSweep(base_params, steps));
  if (index >= static_cast<size_t>(steps)) {
    return Status::InvalidArgument("row index out of range");
  }
  Result<kernel::NPlayerKernelParams> params =
      kernel::MakeNPlayerKernelParams(base_params);
  if (!params.ok()) {
    if (params.status().code() == StatusCode::kOutOfRange) {
      return LegacyEvalNPlayerBandRow(base_params, max_penalty, steps, index);
    }
    return params.status();
  }
  HSIS_ASSIGN_OR_RETURN(
      kernel::NPlayerBandRowKernel row,
      kernel::EvalNPlayerBandRow(*params, max_penalty, steps, index));
  return MaterializeNPlayerRow(row);
}

Result<std::vector<NPlayerBandRow>> SweepNPlayerPenalty(
    const NPlayerHonestyGame::Params& base_params, double max_penalty,
    int steps, int threads) {
  HSIS_RETURN_IF_ERROR(ValidateNPlayerSweep(base_params, steps));
  Result<kernel::NPlayerKernelParams> params =
      kernel::MakeNPlayerKernelParams(base_params);
  if (params.ok()) {
    kernel::NPlayerBandRowsSoA soa;
    HSIS_RETURN_IF_ERROR(kernel::EvalNPlayerBandRows(
        base_params, max_penalty, steps, 0, static_cast<size_t>(steps), soa,
        threads));
    std::vector<NPlayerBandRow> rows(soa.size());
    for (size_t i = 0; i < soa.size(); ++i) {
      kernel::NPlayerBandRowKernel k;
      k.penalty = soa.penalty[i];
      k.analytic_honest_count = soa.analytic_honest_count[i];
      k.count_mask = soa.count_mask[i];
      k.honest_is_dominant = soa.honest_is_dominant[i] != 0;
      k.cheat_is_dominant = soa.cheat_is_dominant[i] != 0;
      k.matches = soa.matches[i] != 0;
      rows[i] = MaterializeNPlayerRow(k);
    }
    return rows;
  }
  if (params.status().code() != StatusCode::kOutOfRange) {
    return params.status();
  }
  // Beyond the kernel's fixed capacity: the legacy per-row path, still
  // parallel with ordered slots.
  std::vector<NPlayerBandRow> rows(static_cast<size_t>(steps));
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      threads, rows.size(), [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(
            rows[i],
            LegacyEvalNPlayerBandRow(base_params, max_penalty, steps, i));
        return Status::OK();
      }));
  return rows;
}

}  // namespace hsis::game

#include "game/repeated_analysis.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace hsis::game {

double CriticalDiscount(double benefit, double cheat_gain, double loss,
                        double frequency, double penalty) {
  HSIS_CHECK(frequency >= 0 && frequency <= 1);
  HSIS_CHECK(loss >= 0 && penalty >= 0);
  double deviation = (1 - frequency) * cheat_gain - frequency * penalty;
  if (deviation <= benefit) return 0.0;  // stage game already deters
  double bite = (1 - frequency) * loss;  // per-round punishment depth
  if (bite <= 0) return std::numeric_limits<double>::infinity();
  double delta = (deviation - benefit) / bite;
  if (delta > 1.0) return std::numeric_limits<double>::infinity();
  return delta;
}

bool GrimTriggerSustainsHonesty(double benefit, double cheat_gain, double loss,
                                double frequency, double penalty,
                                double delta) {
  HSIS_CHECK(delta >= 0 && delta < 1);
  return delta >= CriticalDiscount(benefit, cheat_gain, loss, frequency,
                                   penalty);
}

double CriticalFrequencyWithPatience(double benefit, double cheat_gain,
                                     double loss, double penalty,
                                     double delta) {
  HSIS_CHECK(delta >= 0 && delta < 1);
  double effective_temptation = cheat_gain - delta * loss;
  if (effective_temptation <= benefit) return 0.0;  // patience suffices
  double denom = effective_temptation + penalty;
  HSIS_CHECK(denom > 0);
  return std::min(1.0, (effective_temptation - benefit) / denom);
}

double DiscountedValue(double per_round, double delta) {
  HSIS_CHECK(delta >= 0 && delta < 1);
  return per_round / (1 - delta);
}

double DeviationValue(double deviation_payoff, double punishment_per_round,
                      double delta) {
  HSIS_CHECK(delta >= 0 && delta < 1);
  return deviation_payoff + delta * punishment_per_round / (1 - delta);
}

}  // namespace hsis::game

#ifndef HSIS_GAME_EQUILIBRIUM_H_
#define HSIS_GAME_EQUILIBRIUM_H_

#include <optional>
#include <vector>

#include "game/normal_form_game.h"

namespace hsis::game {

/// Numerical tolerance for payoff comparisons throughout the solvers.
inline constexpr double kPayoffEpsilon = 1e-9;

/// The strategies of `player` that maximize its payoff holding the other
/// players' strategies in `profile` fixed (ties all returned).
std::vector<int> BestResponses(const NormalFormGame& game, int player,
                               const StrategyProfile& profile);

/// True iff no player can strictly gain by a unilateral deviation
/// (Definition 1, Nash equilibrium).
bool IsNashEquilibrium(const NormalFormGame& game,
                       const StrategyProfile& profile);

/// Exhaustive enumeration of all pure-strategy Nash equilibria.
std::vector<StrategyProfile> PureNashEquilibria(const NormalFormGame& game);

/// True iff strategy `s` is weakly dominant for `player`: at least as
/// good as every alternative against every opponent profile (Definition
/// 2). With `strict`, requires strictly better against every opponent
/// profile.
bool IsDominantStrategy(const NormalFormGame& game, int player, int s,
                        bool strict = false);

/// The profile of (weakly) dominant strategies, if every player has one
/// (Definition 2, dominant-strategy equilibrium). When a player has
/// several weakly-dominant strategies the lowest index is chosen.
std::optional<StrategyProfile> DominantStrategyEquilibrium(
    const NormalFormGame& game, bool strict = false);

/// True iff strategy `s` of `player` is strictly dominated by some other
/// pure strategy, restricted to opponents playing within `surviving`.
bool IsStrictlyDominated(const NormalFormGame& game, int player, int s,
                         const std::vector<std::vector<int>>& surviving);

/// Iterated elimination of strictly dominated strategies. Returns, for
/// each player, the set of surviving strategy indices (order preserved).
std::vector<std::vector<int>> IteratedStrictDominance(
    const NormalFormGame& game);

/// A mixed-strategy equilibrium of a 2-player, 2-strategy game: each
/// entry is the probability the player assigns to strategy 0.
struct MixedProfile2x2 {
  double p1_strategy0;
  double p2_strategy0;
  /// True when both probabilities are 0 or 1.
  bool IsPure() const;
};

/// All equilibria (pure corners plus the interior mixed equilibrium when
/// it exists) of a 2x2 game, via support enumeration / the
/// indifference condition.
std::vector<MixedProfile2x2> AllEquilibria2x2(const NormalFormGame& game);

}  // namespace hsis::game

#endif  // HSIS_GAME_EQUILIBRIUM_H_

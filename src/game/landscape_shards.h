#ifndef HSIS_GAME_LANDSCAPE_SHARDS_H_
#define HSIS_GAME_LANDSCAPE_SHARDS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/shard.h"

/// \file
/// \brief Sharded forms of the figure landscape sweeps and the named
/// sweep registry.
///
/// Every sweep here runs under the canonical `export_landscapes`
/// parameterization (B = 10, F = 25, L = 8, the asymmetric Figure 3
/// economics, the 8-player Figure 4 band sweep). Each named sweep maps
/// global index `i` to one CSV row, so merging a K-shard run and
/// prepending the header reproduces the serial CSV byte-for-byte.
///
/// Builtin names, in export order: "figure1", "figure2_f02",
/// "figure2_f07", "figure3", "figure4". Additional sweeps join the
/// registry through `RegisterNamedSweep` (e.g. the design-search sweeps
/// below, or the campaign ensemble from core/campaign_shards.h) and are
/// then drivable from `shard_worker` exactly like a figure.
///
/// \par Usage
/// \code
///   HSIS_ASSIGN_OR_RETURN(common::ShardSweepSpec spec,
///                         LandscapeSweepSpec("figure1"));
///   HSIS_ASSIGN_OR_RETURN(common::ShardPlan plan,
///                         common::ShardPlan::Create(spec.total, shards));
///   // ... run shards (common/shard.h), then:
///   HSIS_ASSIGN_OR_RETURN(Bytes rows, common::MergeShards(dir, "figure1"));
///   HSIS_ASSIGN_OR_RETURN(std::string header, LandscapeCsvHeader("figure1"));
///   std::string csv = header + BytesToString(rows);  // == LandscapeCsv()
/// \endcode

/// \namespace hsis::game
/// \brief The paper's game-theoretic layer: honesty games, equilibrium
/// analysis, figure landscapes, and mechanism design searches.

namespace hsis::game {

/// All currently known sweep names: builtins first, then registered
/// sweeps in registration order.
const std::vector<std::string>& LandscapeSweepNames();

/// Shardable spec for the named sweep: `record(i)` is CSV row `i`
/// (with trailing newline) as bytes. NotFound for unknown names.
Result<common::ShardSweepSpec> LandscapeSweepSpec(const std::string& name);

/// The named sweep's CSV header line (with trailing newline).
Result<std::string> LandscapeCsvHeader(const std::string& name);

/// The filename `export_landscapes` writes the named sweep to, e.g.
/// "figure1_frequency_sweep.csv".
Result<std::string> LandscapeCsvFilename(const std::string& name);

/// Full serial-equivalent CSV (header + all rows) computed in-process
/// with `threads` workers — the single-process reference a sharded run
/// must reproduce byte-for-byte. Figure sweeps render through the
/// allocation-free kernel layer (game/kernel.h) into structure-of-arrays
/// buffers; registered sweeps run their per-row records with ordered
/// output slots.
Result<std::string> LandscapeCsv(const std::string& name, int threads = 1);

/// An externally-registered named sweep.
struct NamedSweep {
  /// Builds the shardable spec; `record(i)` must be CSV row `i` with a
  /// trailing newline so merged shards + `header` reproduce the CSV.
  std::function<Result<common::ShardSweepSpec>()> make_spec;
  /// CSV header line with trailing newline.
  std::string header;
  /// Filename export-style drivers write the sweep to.
  std::string filename;
};

/// Registers `sweep` under `name`, extending the name list, spec,
/// header, filename, and CSV lookups uniformly. InvalidArgument on
/// empty name/fields, AlreadyExists for duplicates (builtin or
/// registered). Registration is not synchronized against concurrent
/// lookups — register during startup, before sweeps run.
Status RegisterNamedSweep(const std::string& name, NamedSweep sweep);

/// Registers the heterogeneous design-search sweeps over the canonical
/// 48-player mixed population: "design_min_penalties" (per-player
/// minimum penalty making all-honest dominant, game/heterogeneous.h
/// MinPenaltiesForAllHonest), "design_min_cost_frequencies" (cheapest
/// per-player audit frequencies, MinCostFrequencies), and
/// "design_budget_deterrence" (greedy budgeted allocation,
/// MaxDeterredUnderBudget). Idempotent: re-registration is a no-op.
Status RegisterHeterogeneousDesignSweeps();

}  // namespace hsis::game

#endif  // HSIS_GAME_LANDSCAPE_SHARDS_H_

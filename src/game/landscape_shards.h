#ifndef HSIS_GAME_LANDSCAPE_SHARDS_H_
#define HSIS_GAME_LANDSCAPE_SHARDS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/shard.h"

namespace hsis::game {

/// Sharded forms of the figure landscape sweeps, under the canonical
/// `export_landscapes` parameterization (B = 10, F = 25, L = 8, the
/// asymmetric Figure 3 economics, the 8-player Figure 4 band sweep).
/// Each named sweep maps global index `i` to one CSV row, so merging a
/// K-shard run and prepending the header reproduces the serial CSV
/// byte-for-byte.
///
/// Names, in export order: "figure1", "figure2_f02", "figure2_f07",
/// "figure3", "figure4".

/// All canonical sweep names.
const std::vector<std::string>& LandscapeSweepNames();

/// Shardable spec for the named sweep: `record(i)` is CSV row `i`
/// (with trailing newline) as bytes. NotFound for unknown names.
Result<common::ShardSweepSpec> LandscapeSweepSpec(const std::string& name);

/// The named sweep's CSV header line (with trailing newline).
Result<std::string> LandscapeCsvHeader(const std::string& name);

/// The filename `export_landscapes` writes the named sweep to, e.g.
/// "figure1_frequency_sweep.csv".
Result<std::string> LandscapeCsvFilename(const std::string& name);

/// Full serial-equivalent CSV (header + all rows) computed in-process
/// with `threads` workers — the single-process reference a sharded run
/// must reproduce byte-for-byte.
Result<std::string> LandscapeCsv(const std::string& name, int threads = 1);

}  // namespace hsis::game

#endif  // HSIS_GAME_LANDSCAPE_SHARDS_H_

#include "game/inspection_game.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace hsis::game {

ZeroSum2x2Solution SolveZeroSum2x2(double a, double b, double c, double d) {
  // Row player maximizes, column player minimizes, matrix {{a,b},{c,d}}.
  ZeroSum2x2Solution out;

  // Check for a saddle point (pure equilibrium) first.
  double row_min[2] = {std::min(a, b), std::min(c, d)};
  double col_max[2] = {std::max(a, c), std::max(b, d)};
  double maximin = std::max(row_min[0], row_min[1]);
  double minimax = std::min(col_max[0], col_max[1]);
  if (maximin >= minimax - 1e-12) {
    out.value = maximin;
    out.row_first_probability = (row_min[0] >= row_min[1]) ? 1.0 : 0.0;
    out.col_first_probability = (col_max[0] <= col_max[1]) ? 1.0 : 0.0;
    return out;
  }

  // Interior mixed equilibrium of a 2x2 zero-sum game.
  double denom = a + d - b - c;
  out.value = (a * d - b * c) / denom;
  out.row_first_probability = (d - c) / denom;
  out.col_first_probability = (d - b) / denom;
  out.row_first_probability = std::clamp(out.row_first_probability, 0.0, 1.0);
  out.col_first_probability = std::clamp(out.col_first_probability, 0.0, 1.0);
  return out;
}

Result<InspectionGameSolution> SolveInspectionGame(int periods,
                                                   int inspections,
                                                   double caught_payoff,
                                                   double undetected_payoff) {
  if (periods < 0 || inspections < 0) {
    return Status::InvalidArgument("periods and inspections must be >= 0");
  }
  if (!(caught_payoff < 0) || undetected_payoff < 0) {
    return Status::InvalidArgument(
        "expect caught_payoff < 0 <= undetected_payoff");
  }

  // values[{n, k}] = game value with n periods and k inspections left.
  std::map<std::pair<int, int>, ZeroSum2x2Solution> solved;
  // Backward induction; k never exceeds n usefully (extra inspections
  // are idle), but we solve the full rectangle for simplicity.
  for (int n = 0; n <= periods; ++n) {
    for (int k = 0; k <= inspections; ++k) {
      ZeroSum2x2Solution solution;
      if (n == 0) {
        solution.value = 0;  // never violated
      } else if (k == 0) {
        // No inspections left: violate now, undetected for sure.
        solution.value = undetected_payoff;
        solution.row_first_probability = 1.0;  // violate
        solution.col_first_probability = 0.0;
      } else {
        double wait_inspect = solved[{n - 1, k - 1}].value;
        double wait_pass = solved[{n - 1, k}].value;
        // Rows: violate / wait. Columns: inspect / pass.
        solution = SolveZeroSum2x2(caught_payoff, undetected_payoff,
                                   wait_inspect, wait_pass);
      }
      solved[{n, k}] = solution;
    }
  }

  const ZeroSum2x2Solution& root = solved[{periods, inspections}];
  InspectionGameSolution out;
  out.value = root.value;
  out.violate_probability = root.row_first_probability;
  out.inspect_probability = root.col_first_probability;
  if (periods == 0) {
    out.violate_probability = 0;
    out.inspect_probability = 0;
  }
  return out;
}

}  // namespace hsis::game

// AVX2 kernel lane: 4-wide double vectors. Compiled with
// -mavx2 -mno-fma -ffp-contract=off (src/game/CMakeLists.txt): AVX2
// enabled for this one translation unit only, FMA disabled both at
// the ISA and the contraction level so the compiler cannot fuse the
// mul/add pairs the scalar path evaluates as two roundings.

#ifdef HSIS_HAVE_AVX2_LANE

#define HSIS_SIMD_IMPL_AVX2 1
#define HSIS_SIMD_LANE_NS lane_avx2
#include "game/kernel_simd_impl.h"

#endif  // HSIS_HAVE_AVX2_LANE

#include "game/landscape_shards.h"

#include <map>

#include "common/parallel.h"
#include "game/heterogeneous.h"
#include "game/kernel.h"
#include "game/report.h"

namespace hsis::game {

namespace {

// The canonical export_landscapes economics.
constexpr double kB = 10, kF = 25, kL = 8;
constexpr int kLineSteps = 201;   // Figures 1, 2, 4
constexpr int kGridSteps = 41;    // Figure 3
constexpr double kFigure1Penalty = 40;
constexpr double kFigure2MaxPenalty = 120;

TwoPlayerGameParams Figure3Params() {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};
  params.audit2 = {0, 15};
  return params;
}

NPlayerHonestyGame::Params Figure4Params() {
  NPlayerHonestyGame::Params params;
  params.n = 8;
  params.benefit = kB;
  params.gain = LinearGain(20, 2);
  params.frequency = 0.3;
  params.uniform_loss = 4;
  return params;
}

double Figure4MaxPenalty() {
  NPlayerHonestyGame::Params params = Figure4Params();
  return NPlayerPenaltyBound(kB, params.gain, params.frequency, params.n - 1) *
         1.2;
}

/// Registered (non-builtin) sweeps, in registration order. Lookups and
/// registrations are expected to happen at startup, before concurrent
/// sweep execution.
std::map<std::string, NamedSweep>& Registry() {
  static std::map<std::string, NamedSweep> registry;
  return registry;
}

std::vector<std::string>& KnownNames() {
  static std::vector<std::string> names = {
      "figure1", "figure2_f02", "figure2_f07", "figure3", "figure4"};
  return names;
}

bool IsBuiltin(const std::string& name) {
  return name == "figure1" || name == "figure2_f02" || name == "figure2_f07" ||
         name == "figure3" || name == "figure4";
}

Status UnknownSweep(const std::string& name) {
  std::string known;
  for (const std::string& n : LandscapeSweepNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("unknown landscape sweep '" + name + "' (known: " +
                          known + ")");
}

const NamedSweep* FindRegistered(const std::string& name) {
  auto it = Registry().find(name);
  return it == Registry().end() ? nullptr : &it->second;
}

/// Header + every record of `spec` with `threads` workers and ordered
/// output slots — the serial-equivalent CSV of a registered sweep.
Result<std::string> RegisteredSweepCsv(const NamedSweep& sweep, int threads) {
  HSIS_ASSIGN_OR_RETURN(common::ShardSweepSpec spec, sweep.make_spec());
  std::vector<Bytes> rows(spec.total);
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      threads, spec.total, [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(rows[i], spec.record(i));
        return Status::OK();
      }));
  std::string out = sweep.header;
  for (const Bytes& row : rows) out.append(row.begin(), row.end());
  return out;
}

// ---------------------------------------------------------------------------
// Heterogeneous design-search sweeps
// ---------------------------------------------------------------------------

constexpr int kDesignPlayers = 48;
constexpr double kDesignMargin = 1e-6;
constexpr double kDesignBudget = 0.12 * kDesignPlayers;

/// The canonical mixed population: deterministic, spans weak and strong
/// economics, every frequency strictly positive (MinPenaltiesForAllHonest
/// requires it).
std::vector<HeterogeneousHonestyGame::PlayerSpec> DesignPopulation() {
  std::vector<HeterogeneousHonestyGame::PlayerSpec> players;
  players.reserve(kDesignPlayers);
  for (int i = 0; i < kDesignPlayers; ++i) {
    HeterogeneousHonestyGame::PlayerSpec spec;
    spec.benefit = 6 + i % 7;
    spec.gain = LinearGain(16 + i % 9, 1 + i % 4);
    spec.frequency = 0.1 + 0.8 * i / (kDesignPlayers - 1);
    spec.penalty = 5 + i % 11;
    players.push_back(std::move(spec));
  }
  return players;
}

std::vector<double> DesignAuditCosts() {
  std::vector<double> costs(kDesignPlayers);
  for (int i = 0; i < kDesignPlayers; ++i) {
    costs[static_cast<size_t>(i)] = 1 + i % 5;
  }
  return costs;
}

std::string AppendCsvDouble(std::string out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
  return out;
}

Result<Bytes> MinPenaltiesRecord(size_t i) {
  if (i >= static_cast<size_t>(kDesignPlayers)) {
    return Status::InvalidArgument("design row index out of range");
  }
  const auto players = DesignPopulation();
  HSIS_ASSIGN_OR_RETURN(std::vector<double> penalties,
                        MinPenaltiesForAllHonest(players, kDesignMargin));
  std::string row = std::to_string(i);
  row += ',';
  row = AppendCsvDouble(std::move(row), players[i].frequency);
  row += ',';
  row = AppendCsvDouble(std::move(row), penalties[i]);
  row += '\n';
  return ToBytes(row);
}

Result<Bytes> MinCostFrequenciesRecord(size_t i) {
  if (i >= static_cast<size_t>(kDesignPlayers)) {
    return Status::InvalidArgument("design row index out of range");
  }
  const auto players = DesignPopulation();
  const auto costs = DesignAuditCosts();
  HSIS_ASSIGN_OR_RETURN(AuditAllocation alloc,
                        MinCostFrequencies(players, costs, kDesignMargin));
  std::string row = std::to_string(i);
  row += ',';
  row = AppendCsvDouble(std::move(row), costs[i]);
  row += ',';
  row = AppendCsvDouble(std::move(row), alloc.frequencies[i]);
  row += ',';
  row = AppendCsvDouble(std::move(row), alloc.frequencies[i] * costs[i]);
  row += '\n';
  return ToBytes(row);
}

Result<Bytes> BudgetDeterrenceRecord(size_t i) {
  if (i >= static_cast<size_t>(kDesignPlayers)) {
    return Status::InvalidArgument("design row index out of range");
  }
  HSIS_ASSIGN_OR_RETURN(
      BudgetedAllocation alloc,
      MaxDeterredUnderBudget(DesignPopulation(), kDesignBudget, kDesignMargin));
  std::string row = std::to_string(i);
  row += ',';
  row = AppendCsvDouble(std::move(row), alloc.frequencies[i]);
  row += ',';
  row += alloc.deterred[i] ? "1" : "0";
  row += '\n';
  return ToBytes(row);
}

}  // namespace

const std::vector<std::string>& LandscapeSweepNames() { return KnownNames(); }

Status RegisterNamedSweep(const std::string& name, NamedSweep sweep) {
  if (name.empty()) {
    return Status::InvalidArgument("sweep name must be non-empty");
  }
  if (!sweep.make_spec) {
    return Status::InvalidArgument("sweep '" + name + "' needs a spec factory");
  }
  if (sweep.header.empty() || sweep.header.back() != '\n') {
    return Status::InvalidArgument(
        "sweep '" + name + "' needs a newline-terminated CSV header");
  }
  if (sweep.filename.empty()) {
    return Status::InvalidArgument("sweep '" + name + "' needs a filename");
  }
  if (IsBuiltin(name) || Registry().count(name) != 0) {
    return Status::AlreadyExists("sweep '" + name + "' already registered");
  }
  Registry().emplace(name, std::move(sweep));
  KnownNames().push_back(name);
  return Status::OK();
}

Result<common::ShardSweepSpec> LandscapeSweepSpec(const std::string& name) {
  common::ShardSweepSpec spec;
  spec.name = name;
  spec.seed = 0;  // analytic sweeps draw no randomness
  if (name == "figure1") {
    spec.total = kLineSteps;
    spec.record = [](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(
          kernel::FrequencyRowKernel row,
          kernel::EvalFrequencyRow(kB, kF, kL, kFigure1Penalty, kLineSteps,
                                   i));
      return ToBytes(FrequencyKernelRowToCsv(row));
    };
  } else if (name == "figure2_f02" || name == "figure2_f07") {
    double frequency = name == "figure2_f02" ? 0.2 : 0.7;
    spec.total = kLineSteps;
    spec.record = [frequency](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(
          kernel::PenaltyRowKernel row,
          kernel::EvalPenaltyRow(kB, kF, kL, frequency, kFigure2MaxPenalty,
                                 kLineSteps, i));
      return ToBytes(PenaltyKernelRowToCsv(row));
    };
  } else if (name == "figure3") {
    spec.total = static_cast<size_t>(kGridSteps) * kGridSteps;
    spec.record = [](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(
          kernel::AsymmetricCellKernel cell,
          kernel::EvalAsymmetricCell(Figure3Params(), kGridSteps, i));
      return ToBytes(AsymmetricKernelCellToCsv(cell));
    };
  } else if (name == "figure4") {
    spec.total = kLineSteps;
    spec.record = [](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(
          kernel::NPlayerKernelParams params,
          kernel::MakeNPlayerKernelParams(Figure4Params()));
      HSIS_ASSIGN_OR_RETURN(
          kernel::NPlayerBandRowKernel row,
          kernel::EvalNPlayerBandRow(params, Figure4MaxPenalty(), kLineSteps,
                                     i));
      return ToBytes(NPlayerKernelRowToCsv(row));
    };
  } else if (const NamedSweep* registered = FindRegistered(name)) {
    return registered->make_spec();
  } else {
    return UnknownSweep(name);
  }
  return spec;
}

Result<std::string> LandscapeCsvHeader(const std::string& name) {
  if (name == "figure1") return FrequencySweepCsvHeader();
  if (name == "figure2_f02" || name == "figure2_f07") {
    return PenaltySweepCsvHeader();
  }
  if (name == "figure3") return AsymmetricGridCsvHeader();
  if (name == "figure4") return NPlayerBandsCsvHeader();
  if (const NamedSweep* registered = FindRegistered(name)) {
    return registered->header;
  }
  return UnknownSweep(name);
}

Result<std::string> LandscapeCsvFilename(const std::string& name) {
  if (name == "figure1") return std::string("figure1_frequency_sweep.csv");
  if (name == "figure2_f02") {
    return std::string("figure2_penalty_sweep_f02.csv");
  }
  if (name == "figure2_f07") {
    return std::string("figure2_penalty_sweep_f07.csv");
  }
  if (name == "figure3") return std::string("figure3_asymmetric_grid.csv");
  if (name == "figure4") return std::string("figure4_nplayer_bands.csv");
  if (const NamedSweep* registered = FindRegistered(name)) {
    return registered->filename;
  }
  return UnknownSweep(name);
}

Result<std::string> LandscapeCsv(const std::string& name, int threads) {
  // Figure sweeps render through the kernel layer: classify into SoA
  // buffers (zero allocations per cell), then serialize via the interned
  // label table — byte-identical to the historical per-row path.
  if (name == "figure1") {
    kernel::FrequencyRowsSoA rows;
    HSIS_RETURN_IF_ERROR(kernel::EvalFrequencyRows(
        kB, kF, kL, kFigure1Penalty, kLineSteps, 0, kLineSteps, rows,
        threads));
    return FrequencySweepToCsv(rows);
  }
  if (name == "figure2_f02" || name == "figure2_f07") {
    double frequency = name == "figure2_f02" ? 0.2 : 0.7;
    kernel::PenaltyRowsSoA rows;
    HSIS_RETURN_IF_ERROR(kernel::EvalPenaltyRows(
        kB, kF, kL, frequency, kFigure2MaxPenalty, kLineSteps, 0, kLineSteps,
        rows, threads));
    return PenaltySweepToCsv(rows);
  }
  if (name == "figure3") {
    kernel::AsymmetricCellsSoA cells;
    HSIS_RETURN_IF_ERROR(kernel::EvalAsymmetricCells(
        Figure3Params(), kGridSteps, 0,
        static_cast<size_t>(kGridSteps) * kGridSteps, cells, threads));
    return AsymmetricGridToCsv(cells);
  }
  if (name == "figure4") {
    kernel::NPlayerBandRowsSoA rows;
    HSIS_RETURN_IF_ERROR(kernel::EvalNPlayerBandRows(
        Figure4Params(), Figure4MaxPenalty(), kLineSteps, 0, kLineSteps, rows,
        threads));
    return NPlayerBandsToCsv(rows);
  }
  if (const NamedSweep* registered = FindRegistered(name)) {
    return RegisteredSweepCsv(*registered, threads);
  }
  return UnknownSweep(name);
}

Status RegisterHeterogeneousDesignSweeps() {
  if (FindRegistered("design_min_penalties") != nullptr) {
    return Status::OK();  // idempotent
  }
  NamedSweep min_penalties;
  min_penalties.make_spec = []() -> Result<common::ShardSweepSpec> {
    common::ShardSweepSpec spec;
    spec.name = "design_min_penalties";
    spec.total = kDesignPlayers;
    spec.seed = 0;
    spec.record = MinPenaltiesRecord;
    return spec;
  };
  min_penalties.header = "player,frequency,min_penalty\n";
  min_penalties.filename = "design_min_penalties.csv";
  HSIS_RETURN_IF_ERROR(
      RegisterNamedSweep("design_min_penalties", std::move(min_penalties)));

  NamedSweep min_cost;
  min_cost.make_spec = []() -> Result<common::ShardSweepSpec> {
    common::ShardSweepSpec spec;
    spec.name = "design_min_cost_frequencies";
    spec.total = kDesignPlayers;
    spec.seed = 0;
    spec.record = MinCostFrequenciesRecord;
    return spec;
  };
  min_cost.header = "player,audit_cost,frequency,cost\n";
  min_cost.filename = "design_min_cost_frequencies.csv";
  HSIS_RETURN_IF_ERROR(RegisterNamedSweep("design_min_cost_frequencies",
                                          std::move(min_cost)));

  NamedSweep budget;
  budget.make_spec = []() -> Result<common::ShardSweepSpec> {
    common::ShardSweepSpec spec;
    spec.name = "design_budget_deterrence";
    spec.total = kDesignPlayers;
    spec.seed = 0;
    spec.record = BudgetDeterrenceRecord;
    return spec;
  };
  budget.header = "player,frequency,deterred\n";
  budget.filename = "design_budget_deterrence.csv";
  return RegisterNamedSweep("design_budget_deterrence", std::move(budget));
}

}  // namespace hsis::game

#include "game/landscape_shards.h"

#include "game/report.h"

namespace hsis::game {

namespace {

// The canonical export_landscapes economics.
constexpr double kB = 10, kF = 25, kL = 8;
constexpr int kLineSteps = 201;   // Figures 1, 2, 4
constexpr int kGridSteps = 41;    // Figure 3
constexpr double kFigure1Penalty = 40;
constexpr double kFigure2MaxPenalty = 120;

TwoPlayerGameParams Figure3Params() {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};
  params.audit2 = {0, 15};
  return params;
}

NPlayerHonestyGame::Params Figure4Params() {
  NPlayerHonestyGame::Params params;
  params.n = 8;
  params.benefit = kB;
  params.gain = LinearGain(20, 2);
  params.frequency = 0.3;
  params.uniform_loss = 4;
  return params;
}

double Figure4MaxPenalty() {
  NPlayerHonestyGame::Params params = Figure4Params();
  return NPlayerPenaltyBound(kB, params.gain, params.frequency, params.n - 1) *
         1.2;
}

Status UnknownSweep(const std::string& name) {
  std::string known;
  for (const std::string& n : LandscapeSweepNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("unknown landscape sweep '" + name + "' (known: " +
                          known + ")");
}

}  // namespace

const std::vector<std::string>& LandscapeSweepNames() {
  static const std::vector<std::string> kNames = {
      "figure1", "figure2_f02", "figure2_f07", "figure3", "figure4"};
  return kNames;
}

Result<common::ShardSweepSpec> LandscapeSweepSpec(const std::string& name) {
  common::ShardSweepSpec spec;
  spec.name = name;
  spec.seed = 0;  // analytic sweeps draw no randomness
  if (name == "figure1") {
    spec.total = kLineSteps;
    spec.record = [](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(
          FrequencySweepRow row,
          EvalFrequencySweepRow(kB, kF, kL, kFigure1Penalty, kLineSteps, i));
      return ToBytes(FrequencySweepRowToCsv(row));
    };
  } else if (name == "figure2_f02" || name == "figure2_f07") {
    double frequency = name == "figure2_f02" ? 0.2 : 0.7;
    spec.total = kLineSteps;
    spec.record = [frequency](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(
          PenaltySweepRow row,
          EvalPenaltySweepRow(kB, kF, kL, frequency, kFigure2MaxPenalty,
                              kLineSteps, i));
      return ToBytes(PenaltySweepRowToCsv(row));
    };
  } else if (name == "figure3") {
    spec.total = static_cast<size_t>(kGridSteps) * kGridSteps;
    spec.record = [](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(AsymmetricGridCell cell,
                            EvalAsymmetricGridCell(Figure3Params(), kGridSteps,
                                                   i));
      return ToBytes(AsymmetricGridCellToCsv(cell));
    };
  } else if (name == "figure4") {
    spec.total = kLineSteps;
    spec.record = [](size_t i) -> Result<Bytes> {
      HSIS_ASSIGN_OR_RETURN(
          NPlayerBandRow row,
          EvalNPlayerBandRow(Figure4Params(), Figure4MaxPenalty(), kLineSteps,
                             i));
      return ToBytes(NPlayerBandRowToCsv(row));
    };
  } else {
    return UnknownSweep(name);
  }
  return spec;
}

Result<std::string> LandscapeCsvHeader(const std::string& name) {
  if (name == "figure1") return FrequencySweepCsvHeader();
  if (name == "figure2_f02" || name == "figure2_f07") {
    return PenaltySweepCsvHeader();
  }
  if (name == "figure3") return AsymmetricGridCsvHeader();
  if (name == "figure4") return NPlayerBandsCsvHeader();
  return UnknownSweep(name);
}

Result<std::string> LandscapeCsvFilename(const std::string& name) {
  if (name == "figure1") return std::string("figure1_frequency_sweep.csv");
  if (name == "figure2_f02") {
    return std::string("figure2_penalty_sweep_f02.csv");
  }
  if (name == "figure2_f07") {
    return std::string("figure2_penalty_sweep_f07.csv");
  }
  if (name == "figure3") return std::string("figure3_asymmetric_grid.csv");
  if (name == "figure4") return std::string("figure4_nplayer_bands.csv");
  return UnknownSweep(name);
}

Result<std::string> LandscapeCsv(const std::string& name, int threads) {
  if (name == "figure1") {
    HSIS_ASSIGN_OR_RETURN(
        std::vector<FrequencySweepRow> rows,
        SweepFrequency(kB, kF, kL, kFigure1Penalty, kLineSteps, threads));
    return FrequencySweepToCsv(rows);
  }
  if (name == "figure2_f02" || name == "figure2_f07") {
    double frequency = name == "figure2_f02" ? 0.2 : 0.7;
    HSIS_ASSIGN_OR_RETURN(
        std::vector<PenaltySweepRow> rows,
        SweepPenalty(kB, kF, kL, frequency, kFigure2MaxPenalty, kLineSteps,
                     threads));
    return PenaltySweepToCsv(rows);
  }
  if (name == "figure3") {
    HSIS_ASSIGN_OR_RETURN(
        std::vector<AsymmetricGridCell> cells,
        SweepAsymmetricGrid(Figure3Params(), kGridSteps, threads));
    return AsymmetricGridToCsv(cells);
  }
  if (name == "figure4") {
    HSIS_ASSIGN_OR_RETURN(
        std::vector<NPlayerBandRow> rows,
        SweepNPlayerPenalty(Figure4Params(), Figure4MaxPenalty(), kLineSteps,
                            threads));
    return NPlayerBandsToCsv(rows);
  }
  return UnknownSweep(name);
}

}  // namespace hsis::game

#ifndef HSIS_GAME_NORMAL_FORM_GAME_H_
#define HSIS_GAME_NORMAL_FORM_GAME_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace hsis::game {

/// One pure strategy index per player.
using StrategyProfile = std::vector<int>;

/// A finite n-player strategic (normal-form) game with dense payoff
/// storage: payoffs are a tensor indexed by the strategy profile.
///
/// Suitable for the paper's 2-player games and for cross-validating the
/// n-player honesty game at small n; `SymmetricBinaryGame` handles the
/// large-n symmetric case without exponential blowup.
class NormalFormGame {
 public:
  /// Creates a game with `strategy_counts[i]` strategies for player i.
  /// All payoffs start at 0. Fails if any count is < 1, there are fewer
  /// than 1 players, or the profile space exceeds ~64M entries.
  static Result<NormalFormGame> Create(std::vector<int> strategy_counts);

  int num_players() const { return static_cast<int>(strategy_counts_.size()); }
  int num_strategies(int player) const { return strategy_counts_[static_cast<size_t>(player)]; }
  size_t num_profiles() const { return num_profiles_; }

  /// Sets player `player`'s payoff at `profile`.
  void SetPayoff(const StrategyProfile& profile, int player, double value);

  /// Sets all players' payoffs at `profile`.
  void SetPayoffs(const StrategyProfile& profile,
                  const std::vector<double>& values);

  double Payoff(const StrategyProfile& profile, int player) const;

  /// Mixed-radix encoding of a profile into [0, num_profiles()).
  size_t ProfileIndex(const StrategyProfile& profile) const;

  /// Inverse of `ProfileIndex`.
  StrategyProfile ProfileFromIndex(size_t index) const;

  /// In-place form for enumeration loops: decodes into `out` (resized
  /// as needed) so a scan over all profiles reuses one buffer instead
  /// of allocating per index.
  void ProfileFromIndex(size_t index, StrategyProfile& out) const;

  /// Names used in reports and table printers; default "s0", "s1", ...
  void SetStrategyNames(std::vector<std::string> names);
  const std::string& StrategyName(int strategy) const;

 private:
  explicit NormalFormGame(std::vector<int> strategy_counts);

  std::vector<int> strategy_counts_;
  size_t num_profiles_;
  std::vector<double> payoffs_;  // [profile_index * n + player]
  std::vector<std::string> strategy_names_;
};

}  // namespace hsis::game

#endif  // HSIS_GAME_NORMAL_FORM_GAME_H_

#include "game/reward_mechanism.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "game/honesty_games.h"

namespace hsis::game {

namespace {
constexpr double kEps = 1e-12;
}

Result<NormalFormGame> MakeRewardAuditedGame(double benefit, double cheat_gain,
                                             double loss,
                                             const RewardTerms& terms) {
  if (benefit < 0 || cheat_gain <= benefit || loss < 0) {
    return Status::InvalidArgument("require F > B >= 0 and L >= 0");
  }
  if (terms.frequency < 0 || terms.frequency > 1 || terms.reward < 0 ||
      terms.penalty < 0) {
    return Status::InvalidArgument("require f in [0,1], R >= 0, P >= 0");
  }
  HSIS_ASSIGN_OR_RETURN(NormalFormGame game, NormalFormGame::Create({2, 2}));
  game.SetStrategyNames({"H", "C"});

  const double f = terms.frequency;
  const double honest = benefit + f * terms.reward;
  const double cheat = (1 - f) * cheat_gain - f * terms.penalty;
  const double spill = (1 - f) * loss;

  game.SetPayoffs({kHonest, kHonest}, {honest, honest});
  game.SetPayoffs({kHonest, kCheat}, {honest - spill, cheat});
  game.SetPayoffs({kCheat, kHonest}, {cheat, honest - spill});
  game.SetPayoffs({kCheat, kCheat}, {cheat - spill, cheat - spill});
  return game;
}

double CriticalReward(double benefit, double cheat_gain, double frequency,
                      double penalty) {
  HSIS_CHECK(frequency > 0 && frequency <= 1);
  double r = ((1 - frequency) * cheat_gain - benefit) / frequency - penalty;
  return std::max(0.0, r);
}

DeviceEffectiveness ClassifyRewardDevice(double benefit, double cheat_gain,
                                         const RewardTerms& terms) {
  // Honesty dominant iff B + fR > (1-f)F - fP, i.e. the expected swing
  // f(R + P) exceeds the net expected cheating gain.
  double swing = terms.frequency * (terms.reward + terms.penalty);
  double net_cheat_gain = (1 - terms.frequency) * cheat_gain - benefit;
  if (swing > net_cheat_gain + kEps) {
    return DeviceEffectiveness::kTransformative;
  }
  if (std::abs(swing - net_cheat_gain) <= kEps) {
    return DeviceEffectiveness::kEffective;
  }
  return DeviceEffectiveness::kIneffective;
}

double OperatorCostAtHonestEquilibrium(int n, const RewardTerms& terms) {
  return n * terms.frequency * terms.reward;
}

double OperatorCostAtHonestCount(int n, int honest_count,
                                 const RewardTerms& terms) {
  HSIS_CHECK(honest_count >= 0 && honest_count <= n);
  double pays = honest_count * terms.frequency * terms.reward;
  double collects = (n - honest_count) * terms.frequency * terms.penalty;
  return pays - collects;
}

}  // namespace hsis::game

#ifndef HSIS_GAME_KERNEL_H_
#define HSIS_GAME_KERNEL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "game/honesty_games.h"
#include "game/nplayer_game.h"
#include "game/thresholds.h"

/// \file
/// \brief Allocation-free fast path for the landscape sweeps.
///
/// The generic solver stack (NormalFormGame -> PureNashEquilibria ->
/// vector<string> labels) heap-allocates half a dozen times per cell;
/// at landscape scale (10^4..10^7 cells) that dominates wall-clock. The
/// kernel layer replaces it cell-for-cell:
///
///  * `Game2x2` — a stack-only 2x2 payoff matrix (flat
///    `std::array<double, 8>`), built with exactly the arithmetic of
///    `MakeTwoPlayerHonestyGame` so every payoff double is bit-identical
///    to the generic path;
///  * equilibrium and dominance sets as **bitmasks** (`ProfileMask2x2`,
///    `HonestCountMask`) instead of `vector<string>` labels, computed
///    with exactly the `kPayoffEpsilon` comparison semantics of
///    game/equilibrium.h;
///  * batch row evaluators (`EvalFrequencyRows`, `EvalPenaltyRows`,
///    `EvalAsymmetricCells`, `EvalNPlayerBandRows`) classifying whole
///    index ranges into caller-owned structure-of-arrays buffers with
///    **zero heap allocations per cell** inside the loop (guarded by an
///    operator-new counter test in tests/game/kernel_test.cc).
///
/// Bitmasks become label strings only at CSV-serialization time
/// (game/report.h interns the 16 possible 2x2 label joins), so the
/// figure CSVs stay byte-identical to the pre-kernel serial path —
/// pinned by the SHA-256 goldens in tests/game/kernel_golden_test.cc
/// and tests/game/shard_golden_test.cc.
///
/// \par Usage
/// \code
///   FrequencyRowsSoA rows;
///   // Classify rows [begin, begin + count) of a `steps`-point sweep.
///   HSIS_RETURN_IF_ERROR(EvalFrequencyRows(
///       /*benefit=*/10, /*cheat_gain=*/15, /*loss=*/12, /*penalty=*/10,
///       steps, begin, count, rows, threads));
///   for (size_t k = 0; k < rows.size(); ++k) {
///     csv += FormatRow(rows.frequency[k],
///                      kernel::NashMaskJoined(rows.nash_mask[k]));
///   }
/// \endcode

/// \namespace hsis::game::kernel
/// \brief Allocation-free batch evaluators and bitmask equilibrium
/// representations behind the landscape sweeps.

namespace hsis::game::kernel {

/// Pure-profile bitmask of a 2x2 game. Bit order is the
/// `NormalFormGame::ProfileIndex` order of a {2, 2} game — index
/// r * 2 + c with H = 0, C = 1 — so ascending bit position matches the
/// label order the generic enumeration emits: HH, HC, CH, CC.
using ProfileMask2x2 = uint8_t;

inline constexpr ProfileMask2x2 kMaskHH = 1u << 0;  ///< Profile (H, H).
inline constexpr ProfileMask2x2 kMaskHC = 1u << 1;  ///< Profile (H, C).
inline constexpr ProfileMask2x2 kMaskCH = 1u << 2;  ///< Profile (C, H).
inline constexpr ProfileMask2x2 kMaskCC = 1u << 3;  ///< Profile (C, C).

/// A 2-player, 2-strategy game on the stack: payoffs in a flat array,
/// no heap, no names, no validation. Index layout mirrors the dense
/// payoff tensor of NormalFormGame: `payoffs[(r * 2 + c) * 2 + player]`.
struct Game2x2 {
  /// Dense payoff tensor, `(r * 2 + c) * 2 + player` layout.
  std::array<double, 8> payoffs;

  /// Payoff of `player` (0 or 1) at profile (row `r`, column `c`).
  double Payoff(int r, int c, int player) const {
    return payoffs[static_cast<size_t>((r * 2 + c) * 2 + player)];
  }
  /// Sets both players' payoffs at profile (row `r`, column `c`).
  void SetPayoffs(int r, int c, double u1, double u2) {
    payoffs[static_cast<size_t>((r * 2 + c) * 2)] = u1;
    payoffs[static_cast<size_t>((r * 2 + c) * 2 + 1)] = u2;
  }
};

/// Builds the Table 3 payoff matrix with exactly the arithmetic of
/// `MakeTwoPlayerHonestyGame` (same expressions, same evaluation order,
/// bit-identical doubles) but no validation and no allocation. The
/// caller validates `params` once per batch, not once per cell.
Game2x2 MakeAudited2x2(const TwoPlayerGameParams& params);

/// All pure-strategy Nash equilibria of `game` as a bitmask — the exact
/// `kPayoffEpsilon` deviation test of `IsNashEquilibrium`, profile for
/// profile.
ProfileMask2x2 PureNashMask(const Game2x2& game);

/// True iff (H, H) is a weakly-dominant-strategy equilibrium — the
/// `DominantStrategyEquilibrium(game) == (kHonest, kHonest)` predicate
/// of the generic path (H has the lowest strategy index, so it is the
/// chosen DSE component exactly when it is weakly dominant).
bool HonestIsDse2x2(const Game2x2& game);

/// Number of set profile bits.
int MaskCount(ProfileMask2x2 mask);

/// The interned ';'-joined label image of a mask in profile order
/// ("HH;CC" for kMaskHH | kMaskCC) — one of 16 static strings, no
/// allocation. This is the only place bitmasks meet label text; CSV
/// serializers (game/report) call it at write time.
const std::string& NashMaskJoined(ProfileMask2x2 mask);

/// Appends the individual profile labels of `mask` in profile order —
/// the `EnumerateLabels` image for legacy struct materialization.
void AppendNashLabels(ProfileMask2x2 mask, std::vector<std::string>& out);

/// Uniform grid sample `index` of `steps` points over [0, 1]: the
/// `index / (steps - 1)` formula of the sweeps, with the degenerate
/// single-sample sweep (`steps == 1`) pinned to the range start so
/// kernel and legacy entry points agree on the same single row.
inline double GridPoint(int steps, size_t index) {
  return steps == 1 ? 0.0 : static_cast<double>(index) / (steps - 1);
}

/// True iff the equilibrium bitmask agrees with the analytic symmetric
/// region — `SymmetricPredictionHolds` on bitmasks.
bool SymmetricMaskMatches(SymmetricRegion region, ProfileMask2x2 mask);
/// True iff the equilibrium bitmask agrees with the analytic asymmetric
/// region — the `AsymmetricGridCell` cross-check switch on bitmasks.
bool AsymmetricMaskMatches(AsymmetricRegion region, ProfileMask2x2 mask);

// ---------------------------------------------------------------------------
// Per-row kernels: pure functions of the sweep parameters and the global
// index. No validation, no allocation — callers check preconditions
// (steps >= 1, index < steps resp. steps * steps, validated economics)
// once per batch via the `Eval*` wrappers below.
// ---------------------------------------------------------------------------

/// One classified row of the Figure 1 frequency sweep.
struct FrequencyRowKernel {
  double frequency = 0;  ///< Sampled audit frequency of this row.
  /// Analytic region of the (frequency, penalty) point.
  SymmetricRegion region = SymmetricRegion::kAllCheatUniqueDse;
  ProfileMask2x2 nash_mask = 0;  ///< Enumerated pure Nash profiles.
  bool honest_is_dse = false;    ///< (H, H) weakly dominant?
  bool matches = false;          ///< Enumeration agrees with the region?
};

/// One classified row of the Figure 2 penalty sweep.
struct PenaltyRowKernel {
  double penalty = 0;  ///< Sampled penalty of this row.
  /// Analytic region of the (frequency, penalty) point.
  SymmetricRegion region = SymmetricRegion::kAllCheatUniqueDse;
  ProfileMask2x2 nash_mask = 0;  ///< Enumerated pure Nash profiles.
  bool honest_is_dse = false;    ///< (H, H) weakly dominant?
  bool matches = false;          ///< Enumeration agrees with the region?
};

/// One classified cell of the Figure 3 asymmetric (f1, f2) grid.
struct AsymmetricCellKernel {
  double f1 = 0;  ///< Player 1's sampled audit frequency.
  double f2 = 0;  ///< Player 2's sampled audit frequency.
  /// Analytic region of the (f1, f2) point.
  AsymmetricRegion region = AsymmetricRegion::kBoundary;
  ProfileMask2x2 nash_mask = 0;  ///< Enumerated pure Nash profiles.
  bool matches = false;          ///< Enumeration agrees with the region?
};

/// Unvalidated frequency-sweep row `index` of `steps` — precondition
/// checks live in `EvalFrequencyRow` / `EvalFrequencyRows`.
FrequencyRowKernel FrequencyRowAt(double benefit, double cheat_gain,
                                  double loss, double penalty, int steps,
                                  size_t index);
/// Unvalidated penalty-sweep row `index` of `steps`.
PenaltyRowKernel PenaltyRowAt(double benefit, double cheat_gain, double loss,
                              double frequency, double max_penalty, int steps,
                              size_t index);
/// Unvalidated asymmetric-grid cell `index` of `steps * steps`.
AsymmetricCellKernel AsymmetricCellAt(const TwoPlayerGameParams& params,
                                      int steps, size_t index);

/// Validated single-row frequency-sweep form — the shard `record(i)`
/// entry point.
Result<FrequencyRowKernel> EvalFrequencyRow(double benefit, double cheat_gain,
                                            double loss, double penalty,
                                            int steps, size_t index);
/// Validated single-row penalty-sweep form — the shard `record(i)`
/// entry point.
Result<PenaltyRowKernel> EvalPenaltyRow(double benefit, double cheat_gain,
                                        double loss, double frequency,
                                        double max_penalty, int steps,
                                        size_t index);
/// Validated single-cell asymmetric-grid form — the shard `record(i)`
/// entry point.
Result<AsymmetricCellKernel> EvalAsymmetricCell(
    const TwoPlayerGameParams& params, int steps, size_t index);

// ---------------------------------------------------------------------------
// n-player band kernel
// ---------------------------------------------------------------------------

/// Capacity of the fixed-size n-player kernel: the honest-count mask
/// needs n + 1 bits of a uint64_t. Larger games take the legacy
/// NPlayerHonestyGame path (game/landscape.h falls back automatically).
inline constexpr int kMaxKernelPlayers = 63;

/// Bit x (0 <= x <= n) set iff the symmetric class "exactly x players
/// honest" is a Nash equilibrium.
using HonestCountMask = uint64_t;

/// Fixed-capacity n-player parameterization: the gain function sampled
/// once into a flat table (`gain_table[x] = F(x)` for x in [0, n - 1]),
/// so band rows never touch the `std::function` per cell. Build once
/// per batch with `MakeNPlayerKernelParams`.
struct NPlayerKernelParams {
  int n = 0;             ///< Number of players (<= kMaxKernelPlayers).
  double benefit = 0;    ///< Honest-participation benefit B.
  double frequency = 0;  ///< Audit frequency f (> 0 per Theorem 1).
  /// Sampled gain function: `gain_table[x] = F(x)`, x in [0, n - 1].
  std::array<double, kMaxKernelPlayers> gain_table{};
};

/// Validates `params` with the checks of `NPlayerHonestyGame::Create`
/// plus the sweep's `frequency > 0` requirement (Theorem 1) and samples
/// the gain table. OutOfRange when n > kMaxKernelPlayers — callers fall
/// back to the legacy path.
Result<NPlayerKernelParams> MakeNPlayerKernelParams(
    const NPlayerHonestyGame::Params& params);

/// One classified row of the Figure 4 n-player penalty band sweep.
struct NPlayerBandRowKernel {
  double penalty = 0;  ///< Sampled penalty of this row.
  /// Analytic equilibrium honest count at this penalty.
  int analytic_honest_count = 0;
  HonestCountMask count_mask = 0;   ///< Enumerated equilibrium counts.
  bool honest_is_dominant = false;  ///< Honesty weakly dominant for all?
  bool cheat_is_dominant = false;   ///< Cheating weakly dominant for all?
  bool matches = false;             ///< Enumeration agrees with analytic count?
};

/// Unvalidated band row `index` of `steps` — precondition checks live
/// in `EvalNPlayerBandRow` / `EvalNPlayerBandRows`.
NPlayerBandRowKernel NPlayerBandRowAt(const NPlayerKernelParams& params,
                                      double max_penalty, int steps,
                                      size_t index);

/// Validated single-row band form — the shard `record(i)` entry point.
Result<NPlayerBandRowKernel> EvalNPlayerBandRow(
    const NPlayerKernelParams& params, double max_penalty, int steps,
    size_t index);

/// Number of set count bits.
int CountMaskSize(HonestCountMask mask);

/// Appends the honest counts of `mask` in ascending order — the
/// `EquilibriumHonestCounts` image.
void AppendHonestCounts(HonestCountMask mask, std::vector<int>& out);

// ---------------------------------------------------------------------------
// Structure-of-arrays row buffers + batch evaluators
// ---------------------------------------------------------------------------
//
// Caller-owned SoA buffers. `Resize` happens before the batch loop;
// inside the loop every slot write is a plain store. Flags are uint8_t
// (not vector<bool>) so slots stay independently addressable across
// threads.

/// SoA buffer of classified frequency-sweep rows (`FrequencyRowKernel`
/// split field-by-field; slot k of every vector belongs to row k).
struct FrequencyRowsSoA {
  std::vector<double> frequency;          ///< Sampled audit frequencies.
  std::vector<SymmetricRegion> region;    ///< Analytic regions.
  std::vector<ProfileMask2x2> nash_mask;  ///< Enumerated Nash profiles.
  std::vector<uint8_t> honest_is_dse;     ///< (H, H) weakly dominant flags.
  std::vector<uint8_t> matches;           ///< Cross-check flags.

  /// Resizes every column to `n` slots.
  void Resize(size_t n);
  /// Number of rows currently held.
  size_t size() const { return frequency.size(); }
};

/// SoA buffer of classified penalty-sweep rows.
struct PenaltyRowsSoA {
  std::vector<double> penalty;            ///< Sampled penalties.
  std::vector<SymmetricRegion> region;    ///< Analytic regions.
  std::vector<ProfileMask2x2> nash_mask;  ///< Enumerated Nash profiles.
  std::vector<uint8_t> honest_is_dse;     ///< (H, H) weakly dominant flags.
  std::vector<uint8_t> matches;           ///< Cross-check flags.

  /// Resizes every column to `n` slots.
  void Resize(size_t n);
  /// Number of rows currently held.
  size_t size() const { return penalty.size(); }
};

/// SoA buffer of classified asymmetric-grid cells.
struct AsymmetricCellsSoA {
  std::vector<double> f1;                 ///< Player 1 frequencies.
  std::vector<double> f2;                 ///< Player 2 frequencies.
  std::vector<AsymmetricRegion> region;   ///< Analytic regions.
  std::vector<ProfileMask2x2> nash_mask;  ///< Enumerated Nash profiles.
  std::vector<uint8_t> matches;           ///< Cross-check flags.

  /// Resizes every column to `n` slots.
  void Resize(size_t n);
  /// Number of cells currently held.
  size_t size() const { return f1.size(); }
};

/// SoA buffer of classified n-player band rows.
struct NPlayerBandRowsSoA {
  std::vector<double> penalty;             ///< Sampled penalties.
  std::vector<int> analytic_honest_count;  ///< Analytic honest counts.
  std::vector<HonestCountMask> count_mask; ///< Enumerated count masks.
  std::vector<uint8_t> honest_is_dominant; ///< All-honest dominance flags.
  std::vector<uint8_t> cheat_is_dominant;  ///< All-cheat dominance flags.
  std::vector<uint8_t> matches;            ///< Cross-check flags.

  /// Resizes every column to `n` slots.
  void Resize(size_t n);
  /// Number of rows currently held.
  size_t size() const { return penalty.size(); }
};

// ---------------------------------------------------------------------------
// Mechanism-design device points: the serving-tier kernel
// ---------------------------------------------------------------------------

/// The analytic answer at one (B, F, f, P) operating point — exactly
/// the quantities of the `core::MechanismDesigner` analytic layer
/// (same `game/thresholds.h` expressions in the same order, so every
/// double is bit-identical to `Classify`/`MinFrequency`/`MinPenalty`/
/// `ZeroPenaltyFrequency`), computed without the designer object or
/// any allocation. The serving tier (src/serve) classifies whole
/// request vectors through this kernel.
struct DeviceAnswerKernel {
  /// Section 4 taxonomy of the device at (f, P).
  DeviceEffectiveness effectiveness = DeviceEffectiveness::kIneffective;
  /// Minimum deterring frequency at the request's penalty, clamped to
  /// [0, 1] (`MechanismDesigner::MinFrequency`).
  double min_frequency = 0;
  /// Minimum deterring penalty at the request's frequency
  /// (`MechanismDesigner::MinPenalty`); +infinity when f == 0 — no
  /// finite penalty deters a player who is never audited.
  double min_penalty = 0;
  /// Frequency above which no penalty is needed at all
  /// (`MechanismDesigner::ZeroPenaltyFrequency`).
  double zero_penalty_frequency = 0;
};

/// Unvalidated single-point evaluator — precondition checks (finite
/// economics, F > B, f in [0, 1], P >= 0) live in `EvalDevicePoints`
/// and the serve-layer request validation.
DeviceAnswerKernel DeviceAnswerAt(double benefit, double cheat_gain,
                                  double frequency, double penalty,
                                  double margin);

/// SoA buffer of mechanism-design query points (one request per slot).
struct DevicePointsSoA {
  std::vector<double> benefit;     ///< Honest-sharing benefits B.
  std::vector<double> cheat_gain;  ///< Cheating gains F.
  std::vector<double> frequency;   ///< Audit frequencies f.
  std::vector<double> penalty;     ///< Penalties P.

  /// Resizes every column to `n` slots.
  void Resize(size_t n);
  /// Number of points currently held.
  size_t size() const { return benefit.size(); }
};

/// SoA buffer of analytic device answers (`DeviceAnswerKernel` split
/// field-by-field; slot k of every vector answers point k).
struct DeviceAnswersSoA {
  std::vector<DeviceEffectiveness> effectiveness;  ///< Regime labels.
  std::vector<double> min_frequency;           ///< Min deterring frequencies.
  std::vector<double> min_penalty;             ///< Min deterring penalties.
  std::vector<double> zero_penalty_frequency;  ///< Zero-penalty frequencies.

  /// Resizes every column to `n` slots.
  void Resize(size_t n);
  /// Number of answers currently held.
  size_t size() const { return effectiveness.size(); }
};

/// Batch device-point evaluator: validates every point in
/// [begin, begin + count) of `in` (finite economics, F > B, f in
/// [0, 1], P >= 0 — InvalidArgument names the first offending slot),
/// resizes `out` to `count`, then answers point begin + k into slot k
/// with `threads` workers (common/parallel.h determinism contract:
/// bit-identical for every thread count) and zero heap allocations per
/// point inside the loop.
Status EvalDevicePoints(const DevicePointsSoA& in, double margin,
                        size_t begin, size_t count, DeviceAnswersSoA& out,
                        int threads = 1);

/// Batch frequency-sweep evaluator: validates once, resizes `out` to
/// `count`, then classifies global rows [begin, begin + count) into the
/// SoA slots with `threads` workers (common/parallel.h determinism
/// contract: slot k holds row begin + k, bit-identical for every thread
/// count) and zero heap allocations per cell inside the loop.
/// `begin + count` must not exceed the sweep's index space (`steps`, or
/// `steps * steps` for the grid).
Status EvalFrequencyRows(double benefit, double cheat_gain, double loss,
                         double penalty, int steps, size_t begin, size_t count,
                         FrequencyRowsSoA& out, int threads = 1);
/// Batch penalty-sweep evaluator; `EvalFrequencyRows` contract.
Status EvalPenaltyRows(double benefit, double cheat_gain, double loss,
                       double frequency, double max_penalty, int steps,
                       size_t begin, size_t count, PenaltyRowsSoA& out,
                       int threads = 1);
/// Batch asymmetric-grid evaluator; `EvalFrequencyRows` contract.
Status EvalAsymmetricCells(const TwoPlayerGameParams& params, int steps,
                           size_t begin, size_t count, AsymmetricCellsSoA& out,
                           int threads = 1);
/// Batch n-player band evaluator; `EvalFrequencyRows` contract.
Status EvalNPlayerBandRows(const NPlayerHonestyGame::Params& base_params,
                           double max_penalty, int steps, size_t begin,
                           size_t count, NPlayerBandRowsSoA& out,
                           int threads = 1);

}  // namespace hsis::game::kernel

#endif  // HSIS_GAME_KERNEL_H_

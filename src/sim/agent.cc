#include "sim/agent.h"

#include "common/logging.h"

namespace hsis::sim {

namespace {

class AlwaysHonestAgent final : public Agent {
 public:
  std::string name() const override { return "always-honest"; }
  bool ChooseHonest(int, const std::vector<bool>&, int) override {
    return true;
  }
};

class AlwaysCheatAgent final : public Agent {
 public:
  std::string name() const override { return "always-cheat"; }
  bool ChooseHonest(int, const std::vector<bool>&, int) override {
    return false;
  }
};

class BestResponseAgent final : public Agent {
 public:
  explicit BestResponseAgent(const game::NPlayerHonestyGame* game)
      : game_(game) {
    HSIS_CHECK(game != nullptr);
  }

  std::string name() const override { return "best-response"; }

  bool ChooseHonest(int round, const std::vector<bool>& last_profile,
                    int self) override {
    if (round == 0 || last_profile.empty()) return true;
    int honest_others = 0;
    for (size_t j = 0; j < last_profile.size(); ++j) {
      if (static_cast<int>(j) != self && last_profile[j]) ++honest_others;
    }
    return game_->CheatAdvantage(honest_others) <= 0;
  }

 private:
  const game::NPlayerHonestyGame* game_;
};

class FictitiousPlayAgent final : public Agent {
 public:
  FictitiousPlayAgent(const game::NPlayerHonestyGame* game, uint64_t seed)
      : game_(game), rng_(seed) {
    HSIS_CHECK(game != nullptr);
  }

  std::string name() const override { return "fictitious-play"; }

  bool ChooseHonest(int round, const std::vector<bool>&, int self) override {
    if (round == 0 || observations_ == 0) return true;
    // Monte Carlo estimate of E[CheatAdvantage(X)] where X counts honest
    // opponents drawn from the empirical belief.
    constexpr int kSamples = 64;
    double total = 0;
    for (int s = 0; s < kSamples; ++s) {
      int honest_others = 0;
      for (size_t j = 0; j < honest_counts_.size(); ++j) {
        if (static_cast<int>(j) == self) continue;
        double p = static_cast<double>(honest_counts_[j]) / observations_;
        if (rng_.Bernoulli(p)) ++honest_others;
      }
      total += game_->CheatAdvantage(honest_others);
    }
    return total / kSamples <= 0;
  }

  void Observe(const std::vector<bool>& profile, int, double) override {
    if (honest_counts_.size() != profile.size()) {
      honest_counts_.assign(profile.size(), 0);
      observations_ = 0;
    }
    for (size_t j = 0; j < profile.size(); ++j) {
      honest_counts_[j] += profile[j] ? 1 : 0;
    }
    ++observations_;
  }

 private:
  const game::NPlayerHonestyGame* game_;
  Rng rng_;
  std::vector<uint64_t> honest_counts_;
  uint64_t observations_ = 0;
};

class EpsilonGreedyAgent final : public Agent {
 public:
  EpsilonGreedyAgent(uint64_t seed, double epsilon, double epsilon_decay,
                     double learning_rate)
      : rng_(seed),
        epsilon_(epsilon),
        epsilon_decay_(epsilon_decay),
        learning_rate_(learning_rate) {}

  std::string name() const override { return "epsilon-greedy-q"; }

  bool ChooseHonest(int, const std::vector<bool>&, int) override {
    bool honest;
    if (rng_.Bernoulli(epsilon_)) {
      honest = rng_.Bernoulli(0.5);  // explore
    } else {
      honest = q_[1] >= q_[0];  // exploit (ties favor honesty)
    }
    last_action_honest_ = honest;
    epsilon_ *= epsilon_decay_;
    return honest;
  }

  void Observe(const std::vector<bool>&, int, double payoff) override {
    size_t a = last_action_honest_ ? 1 : 0;
    q_[a] += learning_rate_ * (payoff - q_[a]);
  }

 private:
  Rng rng_;
  double epsilon_;
  double epsilon_decay_;
  double learning_rate_;
  double q_[2] = {0.0, 0.0};  // [cheat, honest]
  bool last_action_honest_ = true;
};

class GrimTriggerAgent final : public Agent {
 public:
  std::string name() const override { return "grim-trigger"; }

  bool ChooseHonest(int, const std::vector<bool>&, int) override {
    return !triggered_;
  }

  void Observe(const std::vector<bool>& profile, int self, double) override {
    for (size_t j = 0; j < profile.size(); ++j) {
      if (static_cast<int>(j) != self && !profile[j]) triggered_ = true;
    }
  }

 private:
  bool triggered_ = false;
};

class TitForTatAgent final : public Agent {
 public:
  std::string name() const override { return "tit-for-tat"; }

  bool ChooseHonest(int round, const std::vector<bool>& last_profile,
                    int self) override {
    if (round == 0 || last_profile.empty()) return true;
    for (size_t j = 0; j < last_profile.size(); ++j) {
      if (static_cast<int>(j) != self && !last_profile[j]) return false;
    }
    return true;
  }
};

class PavlovAgent final : public Agent {
 public:
  explicit PavlovAgent(double aspiration) : aspiration_(aspiration) {}

  std::string name() const override { return "pavlov"; }

  bool ChooseHonest(int, const std::vector<bool>&, int) override {
    return next_honest_;
  }

  void Observe(const std::vector<bool>& profile, int self, double payoff) override {
    bool played_honest = profile[static_cast<size_t>(self)];
    next_honest_ = (payoff >= aspiration_) ? played_honest : !played_honest;
  }

 private:
  double aspiration_;
  bool next_honest_ = true;
};

class NoisyBestResponseAgent final : public Agent {
 public:
  NoisyBestResponseAgent(const game::NPlayerHonestyGame* game, uint64_t seed,
                         double tremble)
      : game_(game), rng_(seed), tremble_(tremble) {
    HSIS_CHECK(game != nullptr);
    HSIS_CHECK(tremble >= 0 && tremble <= 1);
  }

  std::string name() const override { return "noisy-best-response"; }

  bool ChooseHonest(int round, const std::vector<bool>& last_profile,
                    int self) override {
    bool choice = true;
    if (round > 0 && !last_profile.empty()) {
      int honest_others = 0;
      for (size_t j = 0; j < last_profile.size(); ++j) {
        if (static_cast<int>(j) != self && last_profile[j]) ++honest_others;
      }
      choice = game_->CheatAdvantage(honest_others) <= 0;
    }
    if (rng_.Bernoulli(tremble_)) choice = !choice;
    return choice;
  }

 private:
  const game::NPlayerHonestyGame* game_;
  Rng rng_;
  double tremble_;
};

}  // namespace

std::unique_ptr<Agent> MakeAlwaysHonest() {
  return std::make_unique<AlwaysHonestAgent>();
}

std::unique_ptr<Agent> MakeAlwaysCheat() {
  return std::make_unique<AlwaysCheatAgent>();
}

std::unique_ptr<Agent> MakeBestResponse(const game::NPlayerHonestyGame* game) {
  return std::make_unique<BestResponseAgent>(game);
}

std::unique_ptr<Agent> MakeFictitiousPlay(const game::NPlayerHonestyGame* game,
                                          uint64_t seed) {
  return std::make_unique<FictitiousPlayAgent>(game, seed);
}

std::unique_ptr<Agent> MakeEpsilonGreedy(uint64_t seed, double epsilon,
                                         double epsilon_decay,
                                         double learning_rate) {
  return std::make_unique<EpsilonGreedyAgent>(seed, epsilon, epsilon_decay,
                                              learning_rate);
}

std::unique_ptr<Agent> MakeGrimTrigger() {
  return std::make_unique<GrimTriggerAgent>();
}

std::unique_ptr<Agent> MakeTitForTat() {
  return std::make_unique<TitForTatAgent>();
}

std::unique_ptr<Agent> MakePavlov(double aspiration) {
  return std::make_unique<PavlovAgent>(aspiration);
}

std::unique_ptr<Agent> MakeNoisyBestResponse(
    const game::NPlayerHonestyGame* game, uint64_t seed, double tremble) {
  return std::make_unique<NoisyBestResponseAgent>(game, seed, tremble);
}

}  // namespace hsis::sim

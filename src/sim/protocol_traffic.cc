#include "sim/protocol_traffic.h"

#include <algorithm>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "sim/workload.h"
#include "sovereign/intersection_protocol.h"

namespace hsis::sim {

namespace {

using sovereign::Dataset;
using sovereign::Tuple;

/// One session's contribution to the campaign stats.
ProtocolTrafficStats RunOneSession(const ProtocolTrafficOptions& opt,
                                   const crypto::PrimeGroup& group,
                                   const crypto::MultisetHashFamily& family,
                                   size_t session) {
  ProtocolTrafficStats s;
  s.sessions = 1;
  Rng rng = Rng::ForIndex(opt.seed, session);

  const size_t common = std::min(opt.common_tuples, opt.tuples_per_party);
  const size_t priv = opt.tuples_per_party - common;
  TwoFirmWorkload workload = MakeTwoFirmWorkload(priv, priv, common, rng);
  Dataset true_a = Dataset::FromStrings(workload.firm_a);
  Dataset true_b = Dataset::FromStrings(workload.firm_b);

  // Party B's (possibly dishonest) reported dataset. Behavior draws
  // come before the protocol run so the session stays a pure function
  // of (seed, session).
  const bool withhold = rng.Bernoulli(opt.withhold_fraction);
  const bool probe = rng.Bernoulli(opt.probe_fraction);
  const bool audit = rng.Bernoulli(opt.audit_fraction);
  Dataset reported_b = true_b;
  if (withhold) {
    reported_b.RemoveRandom(std::max<size_t>(1, true_b.size() / 10), rng);
    s.withheld = 1;
  }
  if (probe) {
    for (const std::string& guess : MakeProbeList(
             workload.a_private, std::max<size_t>(1, true_a.size() / 10),
             0.5, rng)) {
      reported_b.Add(Tuple::FromString(guess));
    }
    s.probed = 1;
  }
  if (!withhold && !probe) s.honest = 1;

  sovereign::IntersectionOptions options;
  options.size_only = opt.size_only;
  options.chunk_size = opt.chunk_size;
  options.pipeline_depth = opt.pipeline_depth;
  options.threads = opt.threads;
  Result<std::pair<sovereign::IntersectionOutcome,
                   sovereign::IntersectionOutcome>>
      run = sovereign::RunTwoPartyIntersectionStreamed(
          true_a, reported_b, group, family, rng, options);
  if (!run.ok()) {
    s.protocol_failures = 1;
    return s;
  }
  s.tuples_processed = true_a.size() + reported_b.size();
  s.intersections_total = run->first.intersection_size;
  s.bytes_on_wire = run->first.bytes_sent + run->second.bytes_sent;

  if (audit) {
    // The auditing device's check (Section 6): B's in-protocol
    // commitment vs the multiset hash of B's *true* dataset. Any
    // withholding or probing makes the reported multiset differ, so the
    // commitment cannot match.
    s.audited = 1;
    std::unique_ptr<crypto::MultisetHash> truth = family.NewHash();
    for (const Tuple& t : true_b.tuples()) truth->Add(t.value);
    if (run->first.peer_commitment != truth->Serialize()) s.audit_flags = 1;
  }
  return s;
}

void Accumulate(ProtocolTrafficStats& into, const ProtocolTrafficStats& s) {
  into.sessions += s.sessions;
  into.honest += s.honest;
  into.withheld += s.withheld;
  into.probed += s.probed;
  into.audited += s.audited;
  into.audit_flags += s.audit_flags;
  into.tuples_processed += s.tuples_processed;
  into.intersections_total += s.intersections_total;
  into.bytes_on_wire += s.bytes_on_wire;
  into.protocol_failures += s.protocol_failures;
}

}  // namespace

Result<ProtocolTrafficStats> RunProtocolTrafficCampaign(
    const ProtocolTrafficOptions& options, const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family) {
  sovereign::IntersectionOptions session_options;
  session_options.chunk_size = options.chunk_size;
  session_options.pipeline_depth = options.pipeline_depth;
  session_options.threads = options.threads;
  HSIS_RETURN_IF_ERROR(
      sovereign::ValidateIntersectionOptions(session_options));
  if (options.session_threads < 0) {
    return Status::InvalidArgument(
        "ProtocolTrafficOptions.session_threads must be >= 0");
  }

  // Sessions land in ordered slots and are reduced in session order, so
  // the aggregate is independent of the worker-thread count.
  std::vector<ProtocolTrafficStats> per_session(options.sessions);
  common::ParallelFor(options.session_threads, options.sessions,
                      [&](size_t i) {
                        per_session[i] = RunOneSession(
                            options, group, commitment_family, i);
                      });
  ProtocolTrafficStats total;
  for (const ProtocolTrafficStats& s : per_session) Accumulate(total, s);
  return total;
}

}  // namespace hsis::sim

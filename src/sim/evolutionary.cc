#include "sim/evolutionary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace hsis::sim {

namespace {

/// Payoff of action a against action b in the symmetric 2-player game.
double PairPayoff(const game::NPlayerHonestyGame& g, bool self_honest,
                  bool other_honest) {
  return g.Payoff({self_honest, other_honest}, 0);
}

Status CheckTwoPlayer(const game::NPlayerHonestyGame& g) {
  if (g.n() != 2) {
    return Status::InvalidArgument(
        "evolutionary dynamics use the symmetric 2-player game");
  }
  return Status::OK();
}

}  // namespace

MeanFieldPayoffs MeanFieldAt(const game::NPlayerHonestyGame& g,
                             double honest_fraction) {
  double p = std::clamp(honest_fraction, 0.0, 1.0);
  MeanFieldPayoffs out;
  out.honest = p * PairPayoff(g, true, true) +
               (1 - p) * PairPayoff(g, true, false);
  out.cheat = p * PairPayoff(g, false, true) +
              (1 - p) * PairPayoff(g, false, false);
  return out;
}

Result<ReplicatorResult> RunReplicatorDynamics(
    const game::NPlayerHonestyGame& g, double initial_fraction,
    int generations) {
  HSIS_RETURN_IF_ERROR(CheckTwoPlayer(g));
  if (initial_fraction < 0 || initial_fraction > 1) {
    return Status::InvalidArgument("initial fraction must be in [0, 1]");
  }
  if (generations < 1) {
    return Status::InvalidArgument("generations must be >= 1");
  }

  // Shift all payoffs positive; affine shifts preserve replicator
  // fixed points and stability.
  double min_payoff = 0;
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      min_payoff = std::min(min_payoff, PairPayoff(g, a, b));
    }
  }
  double shift = -min_payoff + 1.0;

  ReplicatorResult out;
  double p = initial_fraction;
  out.trajectory.reserve(static_cast<size_t>(generations) + 1);
  out.trajectory.push_back(p);
  for (int gen = 0; gen < generations; ++gen) {
    MeanFieldPayoffs u = MeanFieldAt(g, p);
    double fit_h = u.honest + shift;
    double fit_c = u.cheat + shift;
    double mean = p * fit_h + (1 - p) * fit_c;
    p = mean > 0 ? p * fit_h / mean : p;
    out.trajectory.push_back(p);
  }
  out.final_fraction = p;
  out.fixated_honest = p > 1 - 1e-6;
  out.fixated_cheat = p < 1e-6;
  return out;
}

Result<MoranResult> RunMoranProcess(const game::NPlayerHonestyGame& g,
                                    int population_size, int initial_honest,
                                    double mutation_rate, int64_t max_steps,
                                    Rng& rng) {
  HSIS_RETURN_IF_ERROR(CheckTwoPlayer(g));
  if (population_size < 2) {
    return Status::InvalidArgument("population must have >= 2 individuals");
  }
  if (initial_honest < 0 || initial_honest > population_size) {
    return Status::InvalidArgument("initial honest count out of range");
  }
  if (mutation_rate < 0 || mutation_rate > 1) {
    return Status::InvalidArgument("mutation rate must be in [0, 1]");
  }

  double min_payoff = 0;
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      min_payoff = std::min(min_payoff, PairPayoff(g, a, b));
    }
  }
  double shift = -min_payoff + 1.0;

  int honest = initial_honest;
  const int n = population_size;
  MoranResult out;
  for (out.steps = 0; out.steps < max_steps; ++out.steps) {
    if (mutation_rate == 0 && (honest == 0 || honest == n)) break;

    // Mean-field fitness against the rest of the population.
    double p_other_honest_for_h =
        n > 1 ? static_cast<double>(honest - 1) / (n - 1) : 0;
    double p_other_honest_for_c =
        n > 1 ? static_cast<double>(honest) / (n - 1) : 0;
    double fit_h = shift + p_other_honest_for_h * PairPayoff(g, true, true) +
                   (1 - p_other_honest_for_h) * PairPayoff(g, true, false);
    double fit_c = shift + p_other_honest_for_c * PairPayoff(g, false, true) +
                   (1 - p_other_honest_for_c) * PairPayoff(g, false, false);

    double total = honest * fit_h + (n - honest) * fit_c;
    bool parent_honest = rng.UniformDouble() * total < honest * fit_h;
    if (rng.Bernoulli(mutation_rate)) parent_honest = !parent_honest;
    // The offspring replaces a uniformly random individual.
    bool victim_honest =
        rng.UniformDouble() * n < static_cast<double>(honest);
    honest += (parent_honest ? 1 : 0) - (victim_honest ? 1 : 0);
    honest = std::clamp(honest, 0, n);
  }
  out.final_honest_fraction = static_cast<double>(honest) / n;
  out.fixated_honest = honest == n;
  out.fixated_cheat = honest == 0;
  return out;
}

bool HonestyIsEvolutionarilyStable(const game::NPlayerHonestyGame& g,
                                   double epsilon) {
  MeanFieldPayoffs u = MeanFieldAt(g, 1.0 - epsilon);
  return u.honest > u.cheat;
}

Result<MoranEnsembleResult> RunMoranEnsemble(
    const game::NPlayerHonestyGame& g, int population_size, int initial_honest,
    double mutation_rate, int64_t max_steps, int replicates, uint64_t seed,
    int threads) {
  HSIS_RETURN_IF_ERROR(CheckTwoPlayer(g));
  if (replicates < 1) {
    return Status::InvalidArgument("need at least one replicate");
  }
  MoranEnsembleResult out;
  out.replicates.resize(static_cast<size_t>(replicates));
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      threads, out.replicates.size(), [&](size_t r) -> Status {
        Rng rng = Rng::ForIndex(seed, r);
        HSIS_ASSIGN_OR_RETURN(
            out.replicates[r],
            RunMoranProcess(g, population_size, initial_honest, mutation_rate,
                            max_steps, rng));
        return Status::OK();
      }));
  for (const MoranResult& r : out.replicates) {
    out.honest_fixation_rate += r.fixated_honest ? 1.0 : 0.0;
    out.cheat_fixation_rate += r.fixated_cheat ? 1.0 : 0.0;
    out.mean_final_honest_fraction += r.final_honest_fraction;
  }
  out.honest_fixation_rate /= replicates;
  out.cheat_fixation_rate /= replicates;
  out.mean_final_honest_fraction /= replicates;
  return out;
}

}  // namespace hsis::sim

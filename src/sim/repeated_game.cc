#include "sim/repeated_game.h"

namespace hsis::sim {

namespace {

/// Stochastic single-round realization whose expectation matches
/// equation (1): caught-with-probability-f, full gain/penalty amounts.
void SampleRoundPayoffs(const game::NPlayerHonestyGame& game,
                        const std::vector<bool>& honest, Rng& rng,
                        std::vector<double>& payoffs, int64_t& cheats,
                        int64_t& caught,
                        std::vector<bool>& caught_this_round) {
  const auto& params = game.params();
  const int n = params.n;
  caught_this_round.assign(static_cast<size_t>(n), false);

  std::vector<int> honest_others(static_cast<size_t>(n), 0);
  int honest_total = 0;
  for (bool h : honest) honest_total += h;

  for (int i = 0; i < n; ++i) {
    honest_others[static_cast<size_t>(i)] =
        honest_total - (honest[static_cast<size_t>(i)] ? 1 : 0);
  }

  for (int i = 0; i < n; ++i) {
    if (!honest[static_cast<size_t>(i)]) {
      ++cheats;
      if (rng.Bernoulli(params.frequency)) {
        caught_this_round[static_cast<size_t>(i)] = true;
        ++caught;
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    double u = 0;
    if (honest[static_cast<size_t>(i)]) {
      u += params.benefit;
    } else if (caught_this_round[static_cast<size_t>(i)]) {
      u -= params.penalty;
    } else {
      u += params.gain(honest_others[static_cast<size_t>(i)]);
    }
    // Losses from other players' *uncaught* cheating.
    for (int j = 0; j < n; ++j) {
      if (j == i || honest[static_cast<size_t>(j)] ||
          caught_this_round[static_cast<size_t>(j)]) {
        continue;
      }
      u -= params.loss_matrix.empty()
               ? params.uniform_loss
               : params.loss_matrix[static_cast<size_t>(j)][static_cast<size_t>(i)];
    }
    payoffs[static_cast<size_t>(i)] += u;
  }
}

}  // namespace

Result<RepeatedGameResult> RunRepeatedGame(
    const game::NPlayerHonestyGame& game,
    const std::vector<std::unique_ptr<Agent>>& agents,
    const RepeatedGameConfig& config) {
  const int n = game.n();
  if (agents.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("agent count must match player count");
  }
  if (config.rounds < 1) {
    return Status::InvalidArgument("rounds must be >= 1");
  }

  if (config.discount < 0 || config.discount > 1) {
    return Status::InvalidArgument("discount must be in [0, 1]");
  }
  if (config.observation == ObservationMode::kDetectedCheatsOnly &&
      config.mode != PayoffMode::kSampled) {
    return Status::InvalidArgument(
        "detected-cheats-only observation requires sampled payoffs");
  }

  Rng rng(config.seed);
  RepeatedGameResult result;
  result.cumulative_payoffs.assign(static_cast<size_t>(n), 0.0);
  result.discounted_payoffs.assign(static_cast<size_t>(n), 0.0);
  double discount_weight = 1.0;
  result.honest_counts.reserve(static_cast<size_t>(config.rounds));

  std::vector<bool> last_profile;
  std::vector<bool> profile(static_cast<size_t>(n), true);
  int64_t honest_actions = 0;

  std::vector<std::vector<bool>> profile_history;
  profile_history.reserve(static_cast<size_t>(config.rounds));

  for (int round = 0; round < config.rounds; ++round) {
    for (int i = 0; i < n; ++i) {
      profile[static_cast<size_t>(i)] =
          agents[static_cast<size_t>(i)]->ChooseHonest(round, last_profile, i);
    }

    int honest_count = 0;
    for (bool h : profile) honest_count += h;
    honest_actions += honest_count;
    result.honest_counts.push_back(honest_count);

    std::vector<double> round_payoffs(static_cast<size_t>(n), 0.0);
    std::vector<bool> caught_this_round(static_cast<size_t>(n), false);
    if (config.mode == PayoffMode::kExpected) {
      for (int i = 0; i < n; ++i) {
        round_payoffs[static_cast<size_t>(i)] = game.Payoff(profile, i);
        result.cumulative_payoffs[static_cast<size_t>(i)] +=
            round_payoffs[static_cast<size_t>(i)];
      }
      for (bool h : profile) result.total_cheats += h ? 0 : 1;
    } else {
      std::vector<double> before = result.cumulative_payoffs;
      SampleRoundPayoffs(game, profile, rng, result.cumulative_payoffs,
                         result.total_cheats, result.caught_cheats,
                         caught_this_round);
      for (int i = 0; i < n; ++i) {
        round_payoffs[static_cast<size_t>(i)] =
            result.cumulative_payoffs[static_cast<size_t>(i)] -
            before[static_cast<size_t>(i)];
      }
    }

    // Under partial observability, agents see others' cheats only when
    // the device caught them; uncaught cheats appear honest.
    std::vector<bool> observed = profile;
    if (config.observation == ObservationMode::kDetectedCheatsOnly) {
      for (int i = 0; i < n; ++i) {
        if (!profile[static_cast<size_t>(i)] &&
            !caught_this_round[static_cast<size_t>(i)]) {
          observed[static_cast<size_t>(i)] = true;
        }
      }
    }

    for (int i = 0; i < n; ++i) {
      result.discounted_payoffs[static_cast<size_t>(i)] +=
          discount_weight * round_payoffs[static_cast<size_t>(i)];
      std::vector<bool> view = observed;
      view[static_cast<size_t>(i)] = profile[static_cast<size_t>(i)];
      agents[static_cast<size_t>(i)]->Observe(
          view, i, round_payoffs[static_cast<size_t>(i)]);
    }
    discount_weight *= config.discount;
    last_profile = observed;
    profile_history.push_back(profile);
  }

  result.final_profile = profile;
  result.honesty_rate_overall =
      static_cast<double>(honest_actions) /
      (static_cast<double>(config.rounds) * n);

  // Convergence: final `convergence_window` rounds share one profile.
  int window_rounds = std::min(config.convergence_window, config.rounds);
  int64_t final_honest = 0;
  for (int r = config.rounds - window_rounds; r < config.rounds; ++r) {
    final_honest += result.honest_counts[static_cast<size_t>(r)];
  }
  result.honesty_rate_final =
      static_cast<double>(final_honest) /
      (static_cast<double>(window_rounds) * n);
  result.converged = true;
  for (int r = config.rounds - window_rounds; r < config.rounds; ++r) {
    if (profile_history[static_cast<size_t>(r)] != profile_history.back()) {
      result.converged = false;
      break;
    }
  }
  if (result.converged) {
    result.convergence_round = config.rounds - 1;
    for (int r = config.rounds - 1; r >= 0; --r) {
      if (profile_history[static_cast<size_t>(r)] != profile_history.back()) {
        break;
      }
      result.convergence_round = r;
    }
  }
  return result;
}

}  // namespace hsis::sim

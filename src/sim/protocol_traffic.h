#ifndef HSIS_SIM_PROTOCOL_TRAFFIC_H_
#define HSIS_SIM_PROTOCOL_TRAFFIC_H_

#include <cstdint>
#include <cstddef>

#include "common/result.h"
#include "crypto/group.h"
#include "crypto/multiset_hash.h"

/// \file
/// \brief Heavy-traffic campaigns over the streamed intersection pipeline.
///
/// Drives many concurrent two-party sessions — a mixed population of
/// honest parties, withholders, probers (Section 1's "inserting some
/// additional names"), and post-hoc commitment audits — through
/// `RunTwoPartyIntersectionStreamed`. The campaign is the sim-layer
/// stress harness for the protocol path: every session is seeded by
/// `Rng::ForIndex(seed, session)`, so the aggregate statistics are a
/// pure function of the options, independent of how many worker threads
/// execute the sessions.

namespace hsis::sim {

/// Knobs for one traffic campaign.
struct ProtocolTrafficOptions {
  /// Number of two-party intersection sessions to run.
  size_t sessions = 8;
  /// True tuples per party per session (private + common).
  size_t tuples_per_party = 64;
  /// Ground-truth overlap per session (must be <= tuples_per_party).
  size_t common_tuples = 16;
  /// Probability that party B withholds ~10% of its set in a session.
  double withhold_fraction = 0.25;
  /// Probability that party B pads its set with a probe list.
  double probe_fraction = 0.25;
  /// Probability that the session's commitments are audited afterwards.
  double audit_fraction = 0.5;
  /// Streamed-path frame size (IntersectionOptions.chunk_size).
  size_t chunk_size = 32;
  /// Crypto/wire overlap per session (IntersectionOptions.pipeline_depth,
  /// >= 1). Statistics are bit-identical for every depth.
  size_t pipeline_depth = 1;
  /// Modexp worker threads inside each session (0 = hardware).
  int threads = 1;
  /// Worker threads across sessions (0 = hardware). Statistics are
  /// bit-identical for every value.
  int session_threads = 1;
  /// Run the intersection-size-only protocol variant.
  bool size_only = false;
  /// Campaign seed; session i derives `Rng::ForIndex(seed, i)`.
  uint64_t seed = 7;
};

/// Aggregate results of a campaign.
struct ProtocolTrafficStats {
  size_t sessions = 0;          ///< Sessions completed (incl. failures).
  size_t honest = 0;            ///< Sessions where B reported truthfully.
  size_t withheld = 0;          ///< Sessions where B withheld tuples.
  size_t probed = 0;            ///< Sessions where B inserted probes.
  size_t audited = 0;           ///< Sessions whose commitments were audited.
  size_t audit_flags = 0;       ///< Audits where B's commitment mismatched
                                ///< the multiset hash of B's true dataset.
  size_t tuples_processed = 0;  ///< Reported tuples pushed through the pipe.
  size_t intersections_total = 0;  ///< Sum of intersection sizes (A's view).
  size_t bytes_on_wire = 0;     ///< Sealed bytes, both directions, all runs.
  size_t protocol_failures = 0;  ///< Sessions that ended in an error status.
};

/// Runs `options.sessions` independent streamed-intersection sessions
/// and aggregates their statistics. Sessions run under
/// `options.session_threads` workers; per-session seeding makes the
/// returned stats thread-count invariant. Individual session protocol
/// errors are *counted* (`protocol_failures`), not returned; only
/// invalid options fail the campaign itself.
Result<ProtocolTrafficStats> RunProtocolTrafficCampaign(
    const ProtocolTrafficOptions& options, const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family);

}  // namespace hsis::sim

#endif  // HSIS_SIM_PROTOCOL_TRAFFIC_H_

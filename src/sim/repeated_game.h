#ifndef HSIS_SIM_REPEATED_GAME_H_
#define HSIS_SIM_REPEATED_GAME_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "game/nplayer_game.h"
#include "sim/agent.h"

namespace hsis::sim {

/// What agents see of each other after a round.
enum class ObservationMode {
  /// Agents observe the true action profile (the standard
  /// complete-information setting for convergence dynamics).
  kFullProfile,
  /// The paper's information model: actions are private; an agent's
  /// cheat becomes visible to others only when the auditing device
  /// catches it. Uncaught cheats are observed as "honest". Requires
  /// PayoffMode::kSampled (catches are realized events). Each agent
  /// still observes its own true action and payoff.
  kDetectedCheatsOnly,
};

/// How per-round payoffs are realized.
enum class PayoffMode {
  /// Expected payoffs straight from equation (1) — deterministic.
  kExpected,
  /// Stochastic realization: each cheater is independently caught with
  /// probability f (paying the full penalty P) and gains the full F when
  /// uncaught; losses hit victims only for uncaught cheats. Expectation
  /// equals the kExpected payoff.
  kSampled,
};

/// Configuration of a repeated-game run.
struct RepeatedGameConfig {
  int rounds = 200;
  PayoffMode mode = PayoffMode::kExpected;
  uint64_t seed = 1;
  /// A run is converged once the action profile is unchanged for this
  /// many final consecutive rounds.
  int convergence_window = 20;
  ObservationMode observation = ObservationMode::kFullProfile;
  /// Discount factor applied to `discounted_payoffs` (round t weighted
  /// by discount^t). 1.0 = undiscounted. Agents still observe raw
  /// per-round payoffs; discounting is an accounting lens used by the
  /// folk-theorem experiments (game/repeated_analysis.h).
  double discount = 1.0;
};

/// Aggregate results of a repeated-game run.
struct RepeatedGameResult {
  /// Last round's profile (true = honest).
  std::vector<bool> final_profile;
  /// Fraction of honest actions over all rounds / over the final window.
  double honesty_rate_overall = 0;
  double honesty_rate_final = 0;
  /// Whether the profile was stable over the final window.
  bool converged = false;
  /// Round at which the final stable profile first appeared (or -1).
  int convergence_round = -1;
  /// Per-agent cumulative payoffs.
  std::vector<double> cumulative_payoffs;
  /// Per-agent discounted payoff streams (sum of discount^t * u_t).
  std::vector<double> discounted_payoffs;
  /// Per-round honest-player counts (the convergence trace).
  std::vector<int> honest_counts;
  /// Sampled mode: how many cheats occurred and how many were caught.
  int64_t total_cheats = 0;
  int64_t caught_cheats = 0;
};

/// Plays `game` repeatedly with the given agents and reports convergence
/// behavior. `agents.size()` must equal the game's player count.
Result<RepeatedGameResult> RunRepeatedGame(
    const game::NPlayerHonestyGame& game,
    const std::vector<std::unique_ptr<Agent>>& agents,
    const RepeatedGameConfig& config);

}  // namespace hsis::sim

#endif  // HSIS_SIM_REPEATED_GAME_H_

#ifndef HSIS_SIM_WORKLOAD_H_
#define HSIS_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace hsis::sim {

/// The Rowi/Colie scenario of Section 3: two competing firms with
/// partially overlapping customer lists.
struct TwoFirmWorkload {
  std::vector<std::string> firm_a;   // all of A's customers
  std::vector<std::string> firm_b;   // all of B's customers
  std::vector<std::string> common;   // ground-truth overlap
  std::vector<std::string> a_private;  // A-only customers
  std::vector<std::string> b_private;  // B-only customers
};

/// Generates disjoint private pools plus a shared pool of the requested
/// sizes, with globally unique customer identifiers.
TwoFirmWorkload MakeTwoFirmWorkload(size_t a_private, size_t b_private,
                                    size_t common, Rng& rng);

/// n-party supply-chain workload: a catalog of `catalog_size` part
/// numbers; each party stocks each part independently with probability
/// `hold_probability`. Returns one part list per party.
std::vector<std::vector<std::string>> MakeSupplyChainWorkload(
    int parties, size_t catalog_size, double hold_probability, Rng& rng);

/// Draws `draws` raw item indices (with duplicates) from a Zipf(s)
/// distribution over `[0, domain_size)` — the skew engine behind
/// `MakeZipfDraws`, exposed directly for consumers that index into
/// their own catalogs (e.g. the serving tier's repetitive query
/// streams) instead of materializing name strings.
std::vector<size_t> MakeZipfIndexDraws(size_t draws, size_t domain_size,
                                       double s, Rng& rng);

/// Draws `draws` values (with duplicates) from a Zipf(s) distribution
/// over a domain of `domain_size` items — skewed workloads for the
/// protocol benchmarks. Consumes the RNG identically to
/// `MakeZipfIndexDraws`; draw i is `"item-" + index_i`.
std::vector<std::string> MakeZipfDraws(size_t draws, size_t domain_size,
                                       double s, Rng& rng);

/// The cheater's probe list (Section 1: "inserting some additional
/// names"): `count` guesses about the peer's private data, of which a
/// `hit_rate` fraction are actual members of `peer_private` and the rest
/// are misses that exist nowhere.
std::vector<std::string> MakeProbeList(
    const std::vector<std::string>& peer_private, size_t count,
    double hit_rate, Rng& rng);

}  // namespace hsis::sim

#endif  // HSIS_SIM_WORKLOAD_H_

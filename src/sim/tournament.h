#ifndef HSIS_SIM_TOURNAMENT_H_
#define HSIS_SIM_TOURNAMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/repeated_game.h"

namespace hsis::sim {

/// A named agent recipe for tournaments (agents are stateful, so each
/// pairing needs fresh instances).
struct StrategyEntry {
  std::string name;
  std::function<std::unique_ptr<Agent>(uint64_t seed)> make;
};

/// Standings of one strategy after a round-robin.
struct TournamentStanding {
  std::string name;
  double total_payoff = 0;
  double average_payoff_per_round = 0;
  int matches = 0;
};

/// Axelrod-style round-robin: every strategy meets every strategy
/// (including itself) in a repeated two-player honesty game; standings
/// are ranked by total payoff. Used to study which behaviors thrive
/// under a given audit regime — the population-dynamics complement to
/// the equilibrium analysis.
struct TournamentConfig {
  int rounds_per_match = 200;
  PayoffMode mode = PayoffMode::kExpected;
  uint64_t seed = 1;
  /// Parallelism over pairings (common/parallel.h): 1 = serial (the
  /// default), 0 = hardware concurrency. Each pairing's seeds are a
  /// pure function of its position in the round-robin enumeration and
  /// standings are accumulated in enumeration order afterwards, so the
  /// standings are bit-identical for every thread count (and to the
  /// historical serial implementation).
  int threads = 1;
};

Result<std::vector<TournamentStanding>> RunRoundRobinTournament(
    const game::NPlayerHonestyGame& two_player_game,
    const std::vector<StrategyEntry>& strategies,
    const TournamentConfig& config);

/// The standard lineup used by the benches: always-honest, always-cheat,
/// best-response, fictitious play, grim trigger, tit-for-tat, Pavlov,
/// epsilon-greedy Q.
std::vector<StrategyEntry> StandardLineup(const game::NPlayerHonestyGame* game);

}  // namespace hsis::sim

#endif  // HSIS_SIM_TOURNAMENT_H_

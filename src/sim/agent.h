#ifndef HSIS_SIM_AGENT_H_
#define HSIS_SIM_AGENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "game/nplayer_game.h"

namespace hsis::sim {

/// A repeated-game player strategy. Each round the simulator asks every
/// agent for an action (honest / cheat), realizes payoffs, and feeds the
/// observed profile back. The convergence experiments assume observable
/// actions, the standard setting for best-response and fictitious-play
/// dynamics.
class Agent {
 public:
  virtual ~Agent() = default;

  virtual std::string name() const = 0;

  /// Chooses this round's action. `last_profile` is the previous round's
  /// action profile (empty on round 0); `self` is this agent's index.
  virtual bool ChooseHonest(int round, const std::vector<bool>& last_profile,
                            int self) = 0;

  /// Post-round feedback: the realized profile and this agent's payoff.
  virtual void Observe(const std::vector<bool>& profile, int self,
                       double payoff) {
    (void)profile;
    (void)self;
    (void)payoff;
  }
};

/// Always reports truthfully, whatever the incentives.
std::unique_ptr<Agent> MakeAlwaysHonest();

/// Always cheats.
std::unique_ptr<Agent> MakeAlwaysCheat();

/// Myopic best response: plays the action with the higher expected
/// payoff against the opponents' previous-round profile (honest on round
/// 0). The rational-player model the paper's equilibrium analysis is
/// about.
std::unique_ptr<Agent> MakeBestResponse(const game::NPlayerHonestyGame* game);

/// Fictitious play: tracks each opponent's empirical honesty frequency
/// and best-responds to that belief (Monte Carlo over the belief
/// distribution, since F may be nonlinear).
std::unique_ptr<Agent> MakeFictitiousPlay(const game::NPlayerHonestyGame* game,
                                          uint64_t seed);

/// Epsilon-greedy Q-learner over the two actions: no knowledge of the
/// game's parameters, learns purely from realized payoffs. `epsilon`
/// decays by `epsilon_decay` per round.
std::unique_ptr<Agent> MakeEpsilonGreedy(uint64_t seed, double epsilon = 0.2,
                                         double epsilon_decay = 0.995,
                                         double learning_rate = 0.1);

/// Grim trigger: honest until it ever observes a cheat, then cheats
/// forever.
std::unique_ptr<Agent> MakeGrimTrigger();

/// Tit-for-tat (defined for any n: cheats iff any opponent cheated last
/// round; honest on round 0).
std::unique_ptr<Agent> MakeTitForTat();

/// Pavlov / win-stay-lose-shift: repeats its previous action when the
/// last payoff reached `aspiration`, switches otherwise. Starts honest.
std::unique_ptr<Agent> MakePavlov(double aspiration);

/// Best response with a trembling hand: plays the myopic best response
/// but flips the action with probability `tremble` — for testing that
/// convergence in the transformative region is robust to noise.
std::unique_ptr<Agent> MakeNoisyBestResponse(
    const game::NPlayerHonestyGame* game, uint64_t seed, double tremble);

}  // namespace hsis::sim

#endif  // HSIS_SIM_AGENT_H_

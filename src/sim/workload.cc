#include "sim/workload.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace hsis::sim {

namespace {
std::string CustomerName(const char* pool, size_t i) {
  return std::string(pool) + "-" + std::to_string(i);
}
}  // namespace

TwoFirmWorkload MakeTwoFirmWorkload(size_t a_private, size_t b_private,
                                    size_t common, Rng& rng) {
  TwoFirmWorkload w;
  for (size_t i = 0; i < common; ++i) {
    w.common.push_back(CustomerName("shared", i));
  }
  for (size_t i = 0; i < a_private; ++i) {
    w.a_private.push_back(CustomerName("a-only", i));
  }
  for (size_t i = 0; i < b_private; ++i) {
    w.b_private.push_back(CustomerName("b-only", i));
  }
  w.firm_a = w.a_private;
  w.firm_a.insert(w.firm_a.end(), w.common.begin(), w.common.end());
  w.firm_b = w.b_private;
  w.firm_b.insert(w.firm_b.end(), w.common.begin(), w.common.end());
  rng.Shuffle(w.firm_a);
  rng.Shuffle(w.firm_b);
  return w;
}

std::vector<std::vector<std::string>> MakeSupplyChainWorkload(
    int parties, size_t catalog_size, double hold_probability, Rng& rng) {
  HSIS_CHECK(parties >= 1);
  HSIS_CHECK(hold_probability >= 0.0 && hold_probability <= 1.0)
      << "hold_probability must be in [0, 1], got " << hold_probability;
  std::vector<std::vector<std::string>> out(static_cast<size_t>(parties));
  for (size_t part = 0; part < catalog_size; ++part) {
    std::string id = "part-" + std::to_string(part);
    for (int p = 0; p < parties; ++p) {
      if (rng.Bernoulli(hold_probability)) {
        out[static_cast<size_t>(p)].push_back(id);
      }
    }
  }
  return out;
}

std::vector<size_t> MakeZipfIndexDraws(size_t draws, size_t domain_size,
                                       double s, Rng& rng) {
  HSIS_CHECK(domain_size >= 1);
  std::vector<size_t> out;
  out.reserve(draws);
  for (size_t i = 0; i < draws; ++i) {
    out.push_back(rng.Zipf(domain_size, s));
  }
  return out;
}

std::vector<std::string> MakeZipfDraws(size_t draws, size_t domain_size,
                                       double s, Rng& rng) {
  std::vector<std::string> out;
  out.reserve(draws);
  for (size_t index : MakeZipfIndexDraws(draws, domain_size, s, rng)) {
    out.push_back("item-" + std::to_string(index));
  }
  return out;
}

std::vector<std::string> MakeProbeList(
    const std::vector<std::string>& peer_private, size_t count,
    double hit_rate, Rng& rng) {
  std::vector<std::string> hits = peer_private;
  rng.Shuffle(hits);
  size_t n_hits =
      std::min(hits.size(), static_cast<size_t>(
                                static_cast<double>(count) * hit_rate + 0.5));
  std::vector<std::string> out(hits.begin(),
                               hits.begin() + static_cast<ptrdiff_t>(n_hits));
  // Filler misses must be unique — among themselves (duplicates would
  // silently shrink the effective probe count below `count`) and
  // against the whole peer set (a peer may hold probe-shaped names, and
  // a colliding "miss" would really be an extra hit). The counter
  // guarantees termination and uniqueness; the random tag keeps the
  // misses unguessable-looking.
  std::unordered_set<std::string> used(peer_private.begin(),
                                       peer_private.end());
  used.insert(out.begin(), out.end());
  size_t miss = 0;
  while (out.size() < count) {
    std::string id = "guess-" + std::to_string(miss++) + "-" +
                     std::to_string(rng.NextUint64() % 100000);
    if (!used.insert(id).second) continue;
    out.push_back(std::move(id));
  }
  rng.Shuffle(out);
  return out;
}

}  // namespace hsis::sim

#ifndef HSIS_SIM_EVOLUTIONARY_H_
#define HSIS_SIM_EVOLUTIONARY_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "game/nplayer_game.h"

namespace hsis::sim {

/// Evolutionary dynamics over the honest/cheat dichotomy: instead of
/// asking what a *rational* player computes (the equilibrium analysis)
/// or what a *learning* player converges to (the repeated-game
/// simulator), ask what *selection* does to a population where payoff
/// is fitness. The paper's thresholds reappear as stability conditions:
/// in the transformative region honesty is the unique evolutionarily
/// stable state; below it, cheating fixates.
///
/// Both dynamics use the symmetric two-player honesty game: a player
/// meeting an honest partner vs a cheating partner (the game's n must
/// be 2; losses matter here, since fitness is the *total* payoff, not a
/// best-response comparison).

/// Expected payoffs of an honest / cheating individual in a population
/// with honest fraction p (random matching).
struct MeanFieldPayoffs {
  double honest = 0;
  double cheat = 0;
};
MeanFieldPayoffs MeanFieldAt(const game::NPlayerHonestyGame& two_player_game,
                             double honest_fraction);

/// Discrete-time replicator dynamics on the honest fraction p:
///   p' = p * u_H / (p u_H + (1-p) u_C)
/// run for `generations` steps from `initial_fraction`. Payoffs are
/// shifted to be positive (replicator needs positive fitness); the
/// shift does not change fixed points or their stability.
struct ReplicatorResult {
  std::vector<double> trajectory;  // honest fraction per generation
  double final_fraction = 0;
  bool fixated_honest = false;     // p > 1 - 1e-6
  bool fixated_cheat = false;      // p < 1e-6
};

Result<ReplicatorResult> RunReplicatorDynamics(
    const game::NPlayerHonestyGame& two_player_game, double initial_fraction,
    int generations);

/// Finite-population Moran process: N individuals, each step one
/// individual reproduces with probability proportional to fitness and
/// replaces a uniformly chosen individual. With `mutation_rate` > 0 the
/// process never fixates; with 0 it ends at fixation (or the step cap).
struct MoranResult {
  double final_honest_fraction = 0;
  bool fixated_honest = false;
  bool fixated_cheat = false;
  int64_t steps = 0;
};

Result<MoranResult> RunMoranProcess(
    const game::NPlayerHonestyGame& two_player_game, int population_size,
    int initial_honest, double mutation_rate, int64_t max_steps, Rng& rng);

/// True iff all-honest is evolutionarily stable: u_H(p) > u_C(p) in a
/// neighborhood of p = 1 (checked at p = 1 - epsilon).
bool HonestyIsEvolutionarilyStable(
    const game::NPlayerHonestyGame& two_player_game, double epsilon = 1e-3);

/// Aggregate of `replicates` independent Moran runs — the estimator the
/// evolutionary benches actually need (fixation probabilities are only
/// meaningful across an ensemble).
struct MoranEnsembleResult {
  std::vector<MoranResult> replicates;  // indexed by replicate
  double honest_fixation_rate = 0;      // fraction fixating all-honest
  double cheat_fixation_rate = 0;       // fraction fixating all-cheat
  double mean_final_honest_fraction = 0;
};

/// Runs `replicates` independent Moran processes. Replicate r draws
/// from its own stream `Rng::ForIndex(seed, r)` and writes into slot r,
/// so the ensemble follows the determinism contract of
/// common/parallel.h: results are bit-identical for every `threads`
/// value (1 = serial default, 0 = hardware concurrency).
Result<MoranEnsembleResult> RunMoranEnsemble(
    const game::NPlayerHonestyGame& two_player_game, int population_size,
    int initial_honest, double mutation_rate, int64_t max_steps,
    int replicates, uint64_t seed, int threads = 1);

}  // namespace hsis::sim

#endif  // HSIS_SIM_EVOLUTIONARY_H_

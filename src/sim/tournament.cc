#include "sim/tournament.h"

#include <algorithm>

#include "common/parallel.h"

namespace hsis::sim {

namespace {

/// One round-robin pairing with the seeds the historical serial loop
/// would have handed it (three consecutive draws per pairing, in
/// enumeration order), precomputed so pairings can run concurrently.
struct Pairing {
  size_t i = 0;
  size_t j = 0;
  uint64_t seed_i = 0;
  uint64_t seed_j = 0;
  uint64_t match_seed = 0;
};

}  // namespace

Result<std::vector<TournamentStanding>> RunRoundRobinTournament(
    const game::NPlayerHonestyGame& two_player_game,
    const std::vector<StrategyEntry>& strategies,
    const TournamentConfig& config) {
  if (two_player_game.n() != 2) {
    return Status::InvalidArgument("tournaments run on the 2-player game");
  }
  if (strategies.empty()) {
    return Status::InvalidArgument("need at least one strategy");
  }
  for (const StrategyEntry& s : strategies) {
    if (!s.make) return Status::InvalidArgument("strategy factory missing");
  }

  std::vector<TournamentStanding> standings(strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    standings[i].name = strategies[i].name;
  }

  uint64_t seed = config.seed;
  std::vector<Pairing> pairings;
  pairings.reserve(strategies.size() * (strategies.size() + 1) / 2);
  for (size_t i = 0; i < strategies.size(); ++i) {
    for (size_t j = i; j < strategies.size(); ++j) {
      pairings.push_back({i, j, seed, seed + 1, seed + 2});
      seed += 3;
    }
  }

  std::vector<RepeatedGameResult> results(pairings.size());
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      config.threads, pairings.size(), [&](size_t k) -> Status {
        const Pairing& pairing = pairings[k];
        std::vector<std::unique_ptr<Agent>> agents;
        agents.push_back(strategies[pairing.i].make(pairing.seed_i));
        agents.push_back(strategies[pairing.j].make(pairing.seed_j));
        RepeatedGameConfig match;
        match.rounds = config.rounds_per_match;
        match.mode = config.mode;
        match.seed = pairing.match_seed;
        HSIS_ASSIGN_OR_RETURN(
            results[k], RunRepeatedGame(two_player_game, agents, match));
        return Status::OK();
      }));

  // Accumulate in enumeration order — the same floating-point addition
  // order as the serial loop, hence bit-identical standings.
  for (size_t k = 0; k < pairings.size(); ++k) {
    const Pairing& pairing = pairings[k];
    const RepeatedGameResult& result = results[k];
    standings[pairing.i].total_payoff += result.cumulative_payoffs[0];
    standings[pairing.i].matches += 1;
    standings[pairing.j].total_payoff += result.cumulative_payoffs[1];
    standings[pairing.j].matches += 1;
  }
  for (TournamentStanding& s : standings) {
    s.average_payoff_per_round =
        s.total_payoff / (static_cast<double>(s.matches) *
                          config.rounds_per_match);
  }
  std::sort(standings.begin(), standings.end(),
            [](const TournamentStanding& a, const TournamentStanding& b) {
              return a.total_payoff > b.total_payoff;
            });
  return standings;
}

std::vector<StrategyEntry> StandardLineup(
    const game::NPlayerHonestyGame* game) {
  return {
      {"always-honest", [](uint64_t) { return MakeAlwaysHonest(); }},
      {"always-cheat", [](uint64_t) { return MakeAlwaysCheat(); }},
      {"best-response", [game](uint64_t) { return MakeBestResponse(game); }},
      {"fictitious-play",
       [game](uint64_t seed) { return MakeFictitiousPlay(game, seed); }},
      {"grim-trigger", [](uint64_t) { return MakeGrimTrigger(); }},
      {"tit-for-tat", [](uint64_t) { return MakeTitForTat(); }},
      {"pavlov",
       [game](uint64_t) { return MakePavlov(game->params().benefit - 0.5); }},
      {"epsilon-greedy-q",
       [](uint64_t seed) { return MakeEpsilonGreedy(seed, 0.4, 0.995, 0.15); }},
  };
}

}  // namespace hsis::sim

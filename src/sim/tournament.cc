#include "sim/tournament.h"

#include <algorithm>

namespace hsis::sim {

Result<std::vector<TournamentStanding>> RunRoundRobinTournament(
    const game::NPlayerHonestyGame& two_player_game,
    const std::vector<StrategyEntry>& strategies,
    const TournamentConfig& config) {
  if (two_player_game.n() != 2) {
    return Status::InvalidArgument("tournaments run on the 2-player game");
  }
  if (strategies.empty()) {
    return Status::InvalidArgument("need at least one strategy");
  }
  for (const StrategyEntry& s : strategies) {
    if (!s.make) return Status::InvalidArgument("strategy factory missing");
  }

  std::vector<TournamentStanding> standings(strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    standings[i].name = strategies[i].name;
  }

  uint64_t seed = config.seed;
  for (size_t i = 0; i < strategies.size(); ++i) {
    for (size_t j = i; j < strategies.size(); ++j) {
      std::vector<std::unique_ptr<Agent>> agents;
      agents.push_back(strategies[i].make(seed++));
      agents.push_back(strategies[j].make(seed++));
      RepeatedGameConfig match;
      match.rounds = config.rounds_per_match;
      match.mode = config.mode;
      match.seed = seed++;
      HSIS_ASSIGN_OR_RETURN(RepeatedGameResult result,
                            RunRepeatedGame(two_player_game, agents, match));
      standings[i].total_payoff += result.cumulative_payoffs[0];
      standings[i].matches += 1;
      standings[j].total_payoff += result.cumulative_payoffs[1];
      standings[j].matches += 1;
    }
  }
  for (TournamentStanding& s : standings) {
    s.average_payoff_per_round =
        s.total_payoff / (static_cast<double>(s.matches) *
                          config.rounds_per_match);
  }
  std::sort(standings.begin(), standings.end(),
            [](const TournamentStanding& a, const TournamentStanding& b) {
              return a.total_payoff > b.total_payoff;
            });
  return standings;
}

std::vector<StrategyEntry> StandardLineup(
    const game::NPlayerHonestyGame* game) {
  return {
      {"always-honest", [](uint64_t) { return MakeAlwaysHonest(); }},
      {"always-cheat", [](uint64_t) { return MakeAlwaysCheat(); }},
      {"best-response", [game](uint64_t) { return MakeBestResponse(game); }},
      {"fictitious-play",
       [game](uint64_t seed) { return MakeFictitiousPlay(game, seed); }},
      {"grim-trigger", [](uint64_t) { return MakeGrimTrigger(); }},
      {"tit-for-tat", [](uint64_t) { return MakeTitForTat(); }},
      {"pavlov",
       [game](uint64_t) { return MakePavlov(game->params().benefit - 0.5); }},
      {"epsilon-greedy-q",
       [](uint64_t seed) { return MakeEpsilonGreedy(seed, 0.4, 0.995, 0.15); }},
  };
}

}  // namespace hsis::sim

#include "core/campaign_shards.h"

#include <cstdio>
#include <vector>

#include "common/shard.h"
#include "core/campaign.h"
#include "crypto/group.h"
#include "game/landscape_shards.h"

namespace hsis::core {

namespace {

constexpr int kRounds = 40;
constexpr int kReplicates = 16;
constexpr uint64_t kBaseSeed = 20260806;

CampaignSessionFactory MakeCanonicalSessionFactory() {
  return [](uint64_t seed) -> Result<HonestSharingSession> {
    SessionConfig config;
    config.audit_frequency = 0.5;
    config.penalty = 30;
    config.group = &crypto::PrimeGroup::SmallTestGroup();
    config.seed = seed;
    HSIS_ASSIGN_OR_RETURN(HonestSharingSession s,
                          HonestSharingSession::Create(config));
    HSIS_RETURN_IF_ERROR(s.AddParty("alice"));
    HSIS_RETURN_IF_ERROR(s.AddParty("bob"));
    HSIS_RETURN_IF_ERROR(s.IssueTuples("alice", {"u", "v", "a1", "a2"}));
    HSIS_RETURN_IF_ERROR(s.IssueTuples("bob", {"u", "v", "b1", "b2", "b3"}));
    return s;
  };
}

std::vector<CampaignPolicyPair> CanonicalPolicyGrid() {
  std::vector<CampaignPolicyPair> policies;
  policies.push_back({"honest/honest", HonestPolicy, HonestPolicy});
  policies.push_back({"prober/honest",
                      [] {
                        return PersistentProberPolicy({"b1", "b2", "miss"}, 2);
                      },
                      HonestPolicy});
  policies.push_back(
      {"opportunist/honest",
       [] { return OpportunisticProberPolicy({"b1", "b2", "miss"}, 2, 0.3); },
       HonestPolicy});
  return policies;
}

CampaignEnsembleConfig CanonicalConfig() {
  CampaignEnsembleConfig config;
  config.rounds = kRounds;
  config.replicates = kReplicates;
  config.base_seed = kBaseSeed;
  config.economics.honest_benefit = 10;
  config.economics.gain_per_probe_hit = 5;
  config.economics.loss_per_leaked_tuple = 4;
  return config;
}

void AppendCsvDouble(std::string& out, double v) {
  char buf[32];
  int len = std::snprintf(buf, sizeof(buf), "%.6g", v);
  out.append(buf, static_cast<size_t>(len));
}

Result<Bytes> CampaignCellRecord(size_t cell) {
  const auto policies = CanonicalPolicyGrid();
  const auto config = CanonicalConfig();
  HSIS_ASSIGN_OR_RETURN(
      CampaignCellResult result,
      RunCampaignEnsembleCell(MakeCanonicalSessionFactory(), "alice", "bob",
                              policies, config, cell));
  std::string row = policies[result.policy_index].label;
  row += ',';
  row += std::to_string(result.replicate);
  row += ',';
  row += std::to_string(result.session_seed);
  row += ',';
  AppendCsvDouble(row, result.result.a.realized_payoff);
  row += ',';
  AppendCsvDouble(row, result.result.b.realized_payoff);
  row += ',';
  row += std::to_string(result.result.a.times_detected);
  row += ',';
  row += std::to_string(result.result.b.times_detected);
  row += '\n';
  return ToBytes(row);
}

}  // namespace

Status RegisterCampaignEnsembleSweep() {
  game::NamedSweep sweep;
  sweep.make_spec = []() -> Result<common::ShardSweepSpec> {
    common::ShardSweepSpec spec;
    spec.name = "campaign_ensemble";
    spec.total = CanonicalPolicyGrid().size() * kReplicates;
    spec.seed = kBaseSeed;
    spec.record = CampaignCellRecord;
    return spec;
  };
  sweep.header =
      "policy,replicate,session_seed,payoff_a,payoff_b,"
      "detections_a,detections_b\n";
  sweep.filename = "campaign_ensemble.csv";
  Status status = game::RegisterNamedSweep("campaign_ensemble", std::move(sweep));
  if (status.code() == StatusCode::kAlreadyExists) return Status::OK();
  return status;
}

}  // namespace hsis::core

#ifndef HSIS_CORE_CAMPAIGN_H_
#define HSIS_CORE_CAMPAIGN_H_

#include <functional>
#include <string>
#include <vector>

#include "core/honest_sharing_session.h"

namespace hsis::core {

/// Per-round behavior of one party in a campaign: produces this round's
/// cheat plan (empty plan = honest) given the round index and the
/// caller's RNG.
using CheatPolicy = std::function<CheatPlan(int round, Rng& rng)>;

/// A policy that always reports honestly.
CheatPolicy HonestPolicy();

/// A policy that probes every round: `probes_per_round` fabricated
/// values drawn without replacement from `probe_pool` (cycling).
CheatPolicy PersistentProberPolicy(std::vector<std::string> probe_pool,
                                   size_t probes_per_round);

/// A policy that cheats with probability `cheat_probability` per round,
/// probing like `PersistentProberPolicy` when it does.
CheatPolicy OpportunisticProberPolicy(std::vector<std::string> probe_pool,
                                      size_t probes_per_round,
                                      double cheat_probability);

/// Economic model translating exchange outcomes into per-round payoffs,
/// mirroring the paper's B / F / L semantics at the systems level.
struct CampaignEconomics {
  /// Collaboration value realized from an exchange (B).
  double honest_benefit = 0.0;
  /// Value of each private peer tuple learned through a probe (the
  /// "F - B" surplus, per stolen tuple).
  double gain_per_probe_hit = 0.0;
  /// Damage per own tuple leaked to a probing peer (L, per tuple).
  double loss_per_leaked_tuple = 0.0;
};

/// Aggregated campaign statistics for one party.
struct PartyCampaignStats {
  int exchanges = 0;
  int times_audited = 0;
  int times_detected = 0;
  double penalties_paid = 0.0;
  size_t tuples_stolen = 0;   // probe hits
  size_t tuples_leaked = 0;   // own tuples exposed to the peer
  double realized_payoff = 0.0;

  double average_payoff() const {
    return exchanges == 0 ? 0.0 : realized_payoff / exchanges;
  }
};

struct CampaignResult {
  PartyCampaignStats a;
  PartyCampaignStats b;
};

/// Runs `rounds` audited exchanges between two registered parties of
/// `session`, applying each party's policy per round and accounting
/// per-round payoffs as
///
///   honest_benefit + gain_per_probe_hit * probe_hits
///   - loss_per_leaked_tuple * leaked - penalty_paid.
Result<CampaignResult> RunCampaign(HonestSharingSession& session,
                                   const std::string& party_a,
                                   const std::string& party_b, int rounds,
                                   const CheatPolicy& policy_a,
                                   const CheatPolicy& policy_b,
                                   const CampaignEconomics& economics,
                                   Rng& rng);

/// One row of an ensemble grid: a labelled pair of policy *factories*.
/// Policies are stateful closures (probe cursors, learned state), so
/// every replicate builds fresh instances from the factories instead of
/// sharing one policy across cells.
struct CampaignPolicyPair {
  std::string label;
  std::function<CheatPolicy()> make_a;
  std::function<CheatPolicy()> make_b;
};

/// Builds the session one replicate runs in, from that replicate's
/// derived seed. Replicates never share a session, so the factory must
/// only be safe to call concurrently (any captured state read-only).
using CampaignSessionFactory =
    std::function<Result<HonestSharingSession>(uint64_t session_seed)>;

struct CampaignEnsembleConfig {
  /// Exchanges per replicate campaign.
  int rounds = 1;
  /// Independent seeds per policy pair.
  int replicates = 1;
  /// Base of the per-cell seed grid; cell `i` derives everything from
  /// `Rng::ForIndex(base_seed, i)`.
  uint64_t base_seed = 1;
  CampaignEconomics economics;
  /// common/parallel.h knob: 1 = serial (default), 0 = hardware.
  int threads = 1;
};

/// One grid cell's campaign outcome.
struct CampaignCellResult {
  size_t policy_index = 0;
  int replicate = 0;
  /// The session seed this cell derived from `(base_seed, cell index)`.
  uint64_t session_seed = 0;
  CampaignResult result;
};

struct CampaignEnsembleResult {
  /// Policy-major, replicate-minor: cell `i` ran policy pair
  /// `i / replicates` with replicate `i % replicates`.
  std::vector<CampaignCellResult> cells;
  /// Per-policy means of the parties' average per-round payoffs,
  /// reduced serially in cell order (fixed FP addition order).
  std::vector<double> mean_payoff_a;
  std::vector<double> mean_payoff_b;
};

/// Runs grid cell `cell` of the policy × replicate grid — the exact
/// per-cell arithmetic of `RunCampaignEnsemble`, exposed so sharded
/// runs (common/shard.h) can execute any subset of the grid in any
/// process. `cell` indexes policy-major, replicate-minor and must be
/// `< policies.size() * config.replicates`.
Result<CampaignCellResult> RunCampaignEnsembleCell(
    const CampaignSessionFactory& make_session, const std::string& party_a,
    const std::string& party_b,
    const std::vector<CampaignPolicyPair>& policies,
    const CampaignEnsembleConfig& config, size_t cell);

/// Runs the full policy × seed grid of independent `RunCampaign`
/// replicates across `config.threads` workers with ordered output
/// slots. Cell `i` is a pure function of `(config, i)`: its RNG is
/// `Rng::ForIndex(base_seed, i)`, its session comes from
/// `make_session` seeded by that stream's first draw, and its policies
/// are fresh from the factories — so results are bit-identical for
/// every thread count (the parallel.h determinism contract).
Result<CampaignEnsembleResult> RunCampaignEnsemble(
    const CampaignSessionFactory& make_session, const std::string& party_a,
    const std::string& party_b,
    const std::vector<CampaignPolicyPair>& policies,
    const CampaignEnsembleConfig& config);

}  // namespace hsis::core

#endif  // HSIS_CORE_CAMPAIGN_H_

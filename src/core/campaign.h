#ifndef HSIS_CORE_CAMPAIGN_H_
#define HSIS_CORE_CAMPAIGN_H_

#include <functional>
#include <string>
#include <vector>

#include "core/honest_sharing_session.h"

namespace hsis::core {

/// Per-round behavior of one party in a campaign: produces this round's
/// cheat plan (empty plan = honest) given the round index and the
/// caller's RNG.
using CheatPolicy = std::function<CheatPlan(int round, Rng& rng)>;

/// A policy that always reports honestly.
CheatPolicy HonestPolicy();

/// A policy that probes every round: `probes_per_round` fabricated
/// values drawn without replacement from `probe_pool` (cycling).
CheatPolicy PersistentProberPolicy(std::vector<std::string> probe_pool,
                                   size_t probes_per_round);

/// A policy that cheats with probability `cheat_probability` per round,
/// probing like `PersistentProberPolicy` when it does.
CheatPolicy OpportunisticProberPolicy(std::vector<std::string> probe_pool,
                                      size_t probes_per_round,
                                      double cheat_probability);

/// Economic model translating exchange outcomes into per-round payoffs,
/// mirroring the paper's B / F / L semantics at the systems level.
struct CampaignEconomics {
  /// Collaboration value realized from an exchange (B).
  double honest_benefit = 0.0;
  /// Value of each private peer tuple learned through a probe (the
  /// "F - B" surplus, per stolen tuple).
  double gain_per_probe_hit = 0.0;
  /// Damage per own tuple leaked to a probing peer (L, per tuple).
  double loss_per_leaked_tuple = 0.0;
};

/// Aggregated campaign statistics for one party.
struct PartyCampaignStats {
  int exchanges = 0;
  int times_audited = 0;
  int times_detected = 0;
  double penalties_paid = 0.0;
  size_t tuples_stolen = 0;   // probe hits
  size_t tuples_leaked = 0;   // own tuples exposed to the peer
  double realized_payoff = 0.0;

  double average_payoff() const {
    return exchanges == 0 ? 0.0 : realized_payoff / exchanges;
  }
};

struct CampaignResult {
  PartyCampaignStats a;
  PartyCampaignStats b;
};

/// Runs `rounds` audited exchanges between two registered parties of
/// `session`, applying each party's policy per round and accounting
/// per-round payoffs as
///
///   honest_benefit + gain_per_probe_hit * probe_hits
///   - loss_per_leaked_tuple * leaked - penalty_paid.
Result<CampaignResult> RunCampaign(HonestSharingSession& session,
                                   const std::string& party_a,
                                   const std::string& party_b, int rounds,
                                   const CheatPolicy& policy_a,
                                   const CheatPolicy& policy_b,
                                   const CampaignEconomics& economics,
                                   Rng& rng);

}  // namespace hsis::core

#endif  // HSIS_CORE_CAMPAIGN_H_

#include "core/campaign.h"

#include "common/parallel.h"

namespace hsis::core {

CheatPolicy HonestPolicy() {
  return [](int, Rng&) { return CheatPlan{}; };
}

CheatPolicy PersistentProberPolicy(std::vector<std::string> probe_pool,
                                   size_t probes_per_round) {
  return [pool = std::move(probe_pool), probes_per_round,
          cursor = size_t{0}](int, Rng&) mutable {
    CheatPlan plan;
    if (pool.empty()) return plan;
    for (size_t i = 0; i < probes_per_round; ++i) {
      plan.fabricate.push_back(pool[cursor % pool.size()]);
      ++cursor;
    }
    return plan;
  };
}

CheatPolicy OpportunisticProberPolicy(std::vector<std::string> probe_pool,
                                      size_t probes_per_round,
                                      double cheat_probability) {
  CheatPolicy prober =
      PersistentProberPolicy(std::move(probe_pool), probes_per_round);
  return [prober = std::move(prober), cheat_probability](int round,
                                                         Rng& rng) mutable {
    if (!rng.Bernoulli(cheat_probability)) return CheatPlan{};
    return prober(round, rng);
  };
}

Result<CampaignResult> RunCampaign(HonestSharingSession& session,
                                   const std::string& party_a,
                                   const std::string& party_b, int rounds,
                                   const CheatPolicy& policy_a,
                                   const CheatPolicy& policy_b,
                                   const CampaignEconomics& economics,
                                   Rng& rng) {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (!policy_a || !policy_b) {
    return Status::InvalidArgument("both cheat policies are required");
  }

  CampaignResult result;
  auto account = [&economics](PartyCampaignStats& stats,
                              const ExchangeStats& round) {
    ++stats.exchanges;
    stats.times_audited += round.audited;
    stats.times_detected += round.detected;
    stats.penalties_paid += round.penalty_paid;
    stats.tuples_stolen += round.probe_hits;
    stats.tuples_leaked += round.leaked_tuples;
    stats.realized_payoff +=
        economics.honest_benefit +
        economics.gain_per_probe_hit * static_cast<double>(round.probe_hits) -
        economics.loss_per_leaked_tuple *
            static_cast<double>(round.leaked_tuples) -
        round.penalty_paid;
  };

  for (int round = 0; round < rounds; ++round) {
    CheatPlan plan_a = policy_a(round, rng);
    CheatPlan plan_b = policy_b(round, rng);
    HSIS_ASSIGN_OR_RETURN(
        ExchangeResult exchange,
        session.RunExchange(party_a, party_b, plan_a, plan_b));
    account(result.a, exchange.a);
    account(result.b, exchange.b);
  }
  return result;
}

namespace {

Status ValidateEnsembleArgs(const CampaignSessionFactory& make_session,
                            const std::vector<CampaignPolicyPair>& policies,
                            const CampaignEnsembleConfig& config) {
  if (!make_session) {
    return Status::InvalidArgument("a session factory is required");
  }
  if (policies.empty()) {
    return Status::InvalidArgument("at least one policy pair is required");
  }
  for (const CampaignPolicyPair& pair : policies) {
    if (!pair.make_a || !pair.make_b) {
      return Status::InvalidArgument("every policy pair needs both factories");
    }
  }
  if (config.rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (config.replicates < 1) {
    return Status::InvalidArgument("replicates must be >= 1");
  }
  return Status::OK();
}

}  // namespace

Result<CampaignCellResult> RunCampaignEnsembleCell(
    const CampaignSessionFactory& make_session, const std::string& party_a,
    const std::string& party_b,
    const std::vector<CampaignPolicyPair>& policies,
    const CampaignEnsembleConfig& config, size_t cell_index) {
  HSIS_RETURN_IF_ERROR(ValidateEnsembleArgs(make_session, policies, config));
  const size_t replicates = static_cast<size_t>(config.replicates);
  if (cell_index >= policies.size() * replicates) {
    return Status::InvalidArgument("cell index out of range");
  }
  CampaignCellResult cell;
  cell.policy_index = cell_index / replicates;
  cell.replicate = static_cast<int>(cell_index % replicates);
  // Everything stochastic about the cell flows from this stream,
  // a pure function of (base_seed, cell_index).
  Rng rng = Rng::ForIndex(config.base_seed, cell_index);
  cell.session_seed = rng.NextUint64();
  HSIS_ASSIGN_OR_RETURN(HonestSharingSession session,
                        make_session(cell.session_seed));
  const CampaignPolicyPair& pair = policies[cell.policy_index];
  CheatPolicy policy_a = pair.make_a();
  CheatPolicy policy_b = pair.make_b();
  HSIS_ASSIGN_OR_RETURN(
      cell.result,
      RunCampaign(session, party_a, party_b, config.rounds, policy_a, policy_b,
                  config.economics, rng));
  return cell;
}

Result<CampaignEnsembleResult> RunCampaignEnsemble(
    const CampaignSessionFactory& make_session, const std::string& party_a,
    const std::string& party_b,
    const std::vector<CampaignPolicyPair>& policies,
    const CampaignEnsembleConfig& config) {
  HSIS_RETURN_IF_ERROR(ValidateEnsembleArgs(make_session, policies, config));

  const size_t replicates = static_cast<size_t>(config.replicates);
  const size_t cells = policies.size() * replicates;
  CampaignEnsembleResult out;
  out.cells.resize(cells);
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      config.threads, cells, [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(
            out.cells[i], RunCampaignEnsembleCell(make_session, party_a,
                                                  party_b, policies, config,
                                                  i));
        return Status::OK();
      }));

  // Cross-cell reduction stays serial in cell order so the FP addition
  // order never depends on scheduling.
  out.mean_payoff_a.assign(policies.size(), 0.0);
  out.mean_payoff_b.assign(policies.size(), 0.0);
  for (const CampaignCellResult& cell : out.cells) {
    out.mean_payoff_a[cell.policy_index] += cell.result.a.average_payoff();
    out.mean_payoff_b[cell.policy_index] += cell.result.b.average_payoff();
  }
  for (size_t p = 0; p < policies.size(); ++p) {
    out.mean_payoff_a[p] /= static_cast<double>(replicates);
    out.mean_payoff_b[p] /= static_cast<double>(replicates);
  }
  return out;
}

}  // namespace hsis::core

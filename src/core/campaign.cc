#include "core/campaign.h"

namespace hsis::core {

CheatPolicy HonestPolicy() {
  return [](int, Rng&) { return CheatPlan{}; };
}

CheatPolicy PersistentProberPolicy(std::vector<std::string> probe_pool,
                                   size_t probes_per_round) {
  return [pool = std::move(probe_pool), probes_per_round,
          cursor = size_t{0}](int, Rng&) mutable {
    CheatPlan plan;
    if (pool.empty()) return plan;
    for (size_t i = 0; i < probes_per_round; ++i) {
      plan.fabricate.push_back(pool[cursor % pool.size()]);
      ++cursor;
    }
    return plan;
  };
}

CheatPolicy OpportunisticProberPolicy(std::vector<std::string> probe_pool,
                                      size_t probes_per_round,
                                      double cheat_probability) {
  CheatPolicy prober =
      PersistentProberPolicy(std::move(probe_pool), probes_per_round);
  return [prober = std::move(prober), cheat_probability](int round,
                                                         Rng& rng) mutable {
    if (!rng.Bernoulli(cheat_probability)) return CheatPlan{};
    return prober(round, rng);
  };
}

Result<CampaignResult> RunCampaign(HonestSharingSession& session,
                                   const std::string& party_a,
                                   const std::string& party_b, int rounds,
                                   const CheatPolicy& policy_a,
                                   const CheatPolicy& policy_b,
                                   const CampaignEconomics& economics,
                                   Rng& rng) {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (!policy_a || !policy_b) {
    return Status::InvalidArgument("both cheat policies are required");
  }

  CampaignResult result;
  auto account = [&economics](PartyCampaignStats& stats,
                              const ExchangeStats& round) {
    ++stats.exchanges;
    stats.times_audited += round.audited;
    stats.times_detected += round.detected;
    stats.penalties_paid += round.penalty_paid;
    stats.tuples_stolen += round.probe_hits;
    stats.tuples_leaked += round.leaked_tuples;
    stats.realized_payoff +=
        economics.honest_benefit +
        economics.gain_per_probe_hit * static_cast<double>(round.probe_hits) -
        economics.loss_per_leaked_tuple *
            static_cast<double>(round.leaked_tuples) -
        round.penalty_paid;
  };

  for (int round = 0; round < rounds; ++round) {
    CheatPlan plan_a = policy_a(round, rng);
    CheatPlan plan_b = policy_b(round, rng);
    HSIS_ASSIGN_OR_RETURN(
        ExchangeResult exchange,
        session.RunExchange(party_a, party_b, plan_a, plan_b));
    account(result.a, exchange.a);
    account(result.b, exchange.b);
  }
  return result;
}

}  // namespace hsis::core

#ifndef HSIS_CORE_MECHANISM_DESIGNER_H_
#define HSIS_CORE_MECHANISM_DESIGNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "game/thresholds.h"

namespace hsis::core {

/// A recommended auditing-device operating point.
struct OperatingPoint {
  double frequency = 0.0;
  double penalty = 0.0;
  /// What the device achieves there.
  game::DeviceEffectiveness effectiveness =
      game::DeviceEffectiveness::kIneffective;
  /// Expected per-round auditing cost at this point (frequency x
  /// audit_cost), when a cost was supplied.
  double expected_audit_cost = 0.0;
};

/// The game-designer API the paper's observations culminate in: "decide,
/// based on estimations of the players' losses and gains, the minimum
/// checking frequencies or penalty amounts that can guarantee the
/// desired level of honesty in the system."
///
/// All recommendations include a small safety margin above the exact
/// threshold, since at the boundary itself honesty is only *among* the
/// equilibria (the device is merely "effective").
class MechanismDesigner {
 public:
  /// `benefit` = B, `cheat_gain` = F with F > B (validated).
  static Result<MechanismDesigner> Create(double benefit, double cheat_gain);

  /// Observation 2: the minimum audit frequency that makes honesty the
  /// unique DSE/NE for a fixed penalty. The result is clamped to
  /// [0, 1]: normally f* + margin, but never negative (a large penalty
  /// plus a negative margin would otherwise escape the valid range) and
  /// never above 1.
  double MinFrequency(double penalty, double margin = 1e-6) const;

  /// Observation 3: the minimum penalty for a fixed frequency f > 0.
  /// Returns 0 when the frequency alone deters cheating (f > (F-B)/F).
  Result<double> MinPenalty(double frequency, double margin = 1e-6) const;

  /// The frequency above which no penalty is needed at all.
  double ZeroPenaltyFrequency() const;

  /// Classification of an arbitrary operating point (Section 4 taxonomy).
  game::DeviceEffectiveness Classify(double frequency, double penalty) const;

  /// The cheapest transformative operating point when each audit costs
  /// `audit_cost` and the penalty may not exceed `max_penalty`: audit as
  /// rarely as the maximum penalty allows. Fails if no frequency in
  /// [0, 1] works (cannot happen for max_penalty >= 0 since f = 1 always
  /// deters, but kept for interface robustness).
  Result<OperatingPoint> CheapestTransformative(double audit_cost,
                                                double max_penalty,
                                                double margin = 1e-6) const;

  /// Configuration of the exhaustive (f, P) operating-point grid
  /// search. Frequencies sample [0, 1] and penalties [0, max_penalty]
  /// uniformly. `cost_per_unit_penalty` lets the caller charge for the
  /// liability a large penalty creates (enforcement, insurance, legal
  /// exposure); with the default 0 the objective is the expected audit
  /// cost alone, tie-broken toward lower penalty.
  struct GridSearchConfig {
    int frequency_steps = 101;
    int penalty_steps = 101;
    double max_penalty = 0.0;
    double audit_cost = 0.0;
    double cost_per_unit_penalty = 0.0;
    /// Parallelism over grid cells (common/parallel.h): 1 = serial
    /// (default), 0 = hardware concurrency. The selected point is
    /// identical for every thread count.
    int threads = 1;
  };

  /// Exhaustively classifies every (f, P) grid cell and returns the
  /// cheapest transformative operating point under
  ///   cost(f, P) = f * audit_cost + P * cost_per_unit_penalty.
  /// Ties break toward lower penalty, then lower frequency, so the
  /// result is a deterministic function of the config. Fails when no
  /// grid cell is transformative (e.g. max_penalty and frequency
  /// resolution both too small).
  Result<OperatingPoint> GridSearchCheapestTransformative(
      const GridSearchConfig& config) const;

  /// N-player version of `MinPenalty` (Proposition 1): the minimum
  /// penalty making all-honest the unique DSE/NE for `n` players with
  /// gain function `gain`.
  Result<double> MinPenaltyNPlayer(int n, const game::GainFunction& gain,
                                   double frequency,
                                   double margin = 1e-6) const;

  double benefit() const { return benefit_; }
  double cheat_gain() const { return cheat_gain_; }

 private:
  MechanismDesigner(double benefit, double cheat_gain)
      : benefit_(benefit), cheat_gain_(cheat_gain) {}

  double benefit_;
  double cheat_gain_;
};

}  // namespace hsis::core

#endif  // HSIS_CORE_MECHANISM_DESIGNER_H_

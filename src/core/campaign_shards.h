#ifndef HSIS_CORE_CAMPAIGN_SHARDS_H_
#define HSIS_CORE_CAMPAIGN_SHARDS_H_

#include "common/status.h"

namespace hsis::core {

/// Registers the canonical campaign-ensemble sweep ("campaign_ensemble")
/// in the named-sweep registry (game/landscape_shards.h), making the
/// full-session policy × replicate grid drivable from `shard_worker`
/// like a figure landscape: one CSV row per grid cell, produced by
/// `RunCampaignEnsembleCell`, so a merged K-shard run is byte-identical
/// to the serial CSV.
///
/// Canonical parameterization: the bench_repeated_enforcement economics
/// (B = 10 honest benefit, 5 per probe hit, 4 per leaked tuple) at
/// audit frequency 0.5 and penalty 30, three policy pairs
/// (honest/honest, prober/honest, opportunist/honest), 40 rounds and
/// 16 replicates per pair, base seed 20260806.
///
/// Lives in hsis_core (the registry itself is in hsis_game, which cannot
/// depend on core), so drivers that want the sweep call this explicitly
/// at startup — `shard_worker` does. Idempotent: re-registration is a
/// no-op.
Status RegisterCampaignEnsembleSweep();

}  // namespace hsis::core

#endif  // HSIS_CORE_CAMPAIGN_SHARDS_H_

#include "core/honest_sharing_session.h"

#include "sovereign/multiparty.h"

namespace hsis::core {

namespace {

/// Stand-in for the certified audit-application binary the secure
/// coprocessor measures; participants pin its hash.
const char kAuditApplicationCode[] =
    "hsis-auditing-device v1.0: maintain HV_i via incremental multiset "
    "hash; audit with frequency f; fine P on mismatch";

}  // namespace

Result<HonestSharingSession> HonestSharingSession::Create(
    const SessionConfig& config) {
  const crypto::PrimeGroup& group =
      config.group != nullptr ? *config.group : crypto::PrimeGroup::Default();

  Result<crypto::MultisetHashFamily> family =
      config.hash_scheme == crypto::MultisetHashScheme::kMu
          ? crypto::MultisetHashFamily::CreateMu(group)
          : crypto::MultisetHashFamily::Create(config.hash_scheme,
                                               config.scheme_key);
  HSIS_RETURN_IF_ERROR(family.status());

  Result<audit::AuditingDevice> device =
      audit::AuditingDevice::Create(config.audit_frequency, config.penalty);
  HSIS_RETURN_IF_ERROR(device.status());

  Rng rng(config.seed);
  audit::SecureCoprocessor coprocessor =
      audit::SecureCoprocessor::Manufacture(rng);
  Bytes code = ToBytes(kAuditApplicationCode);
  coprocessor.InstallApplication(code);

  SessionConfig resolved = config;
  resolved.group = &group;
  return HonestSharingSession(
      resolved, std::move(*family), std::move(coprocessor),
      std::make_unique<audit::AuditingDevice>(std::move(*device)),
      audit::SecureCoprocessor::MeasureCode(code), std::move(rng));
}

Status HonestSharingSession::AddParty(const std::string& name) {
  if (parties_.count(name) != 0) {
    return Status::AlreadyExists("party already exists: " + name);
  }
  Result<audit::TupleGenerator> generator =
      audit::TupleGenerator::Create(name, family_, device_.get());
  HSIS_RETURN_IF_ERROR(generator.status());
  PartyState state;
  state.generator =
      std::make_unique<audit::TupleGenerator>(std::move(*generator));
  parties_.emplace(name, std::move(state));
  return Status::OK();
}

Status HonestSharingSession::IssueTuples(
    const std::string& party, const std::vector<std::string>& values) {
  auto it = parties_.find(party);
  if (it == parties_.end()) {
    return Status::NotFound("unknown party: " + party);
  }
  for (const std::string& v : values) {
    Result<sovereign::Tuple> tuple = it->second.generator->IssueString(v);
    HSIS_RETURN_IF_ERROR(tuple.status());
    it->second.data.Add(std::move(*tuple));
  }
  return Status::OK();
}

Result<sovereign::Dataset> HonestSharingSession::TrueData(
    const std::string& party) const {
  auto it = parties_.find(party);
  if (it == parties_.end()) {
    return Status::NotFound("unknown party: " + party);
  }
  return it->second.data;
}

Result<audit::SecureCoprocessor::AttestationReport>
HonestSharingSession::Attest(const Bytes& challenge) const {
  return coprocessor_.Attest(challenge);
}

const Bytes& HonestSharingSession::device_endorsement_key() const {
  return coprocessor_.endorsement_key();
}

Result<ExchangeResult> HonestSharingSession::RunExchange(
    const std::string& party_a, const std::string& party_b,
    const CheatPlan& cheat_a, const CheatPlan& cheat_b) {
  auto it_a = parties_.find(party_a);
  auto it_b = parties_.find(party_b);
  if (it_a == parties_.end() || it_b == parties_.end()) {
    return Status::NotFound("unknown party in exchange");
  }
  if (party_a == party_b) {
    return Status::InvalidArgument("a party cannot exchange with itself");
  }

  auto apply_cheat = [&](const sovereign::Dataset& data,
                         const CheatPlan& plan) {
    sovereign::Dataset reported = data;
    reported.RemoveRandom(plan.withhold, rng_);
    for (const std::string& f : plan.fabricate) {
      reported.Add(sovereign::Tuple::FromString(f));
    }
    return reported;
  };
  sovereign::Dataset reported_a = apply_cheat(it_a->second.data, cheat_a);
  sovereign::Dataset reported_b = apply_cheat(it_b->second.data, cheat_b);

  HSIS_ASSIGN_OR_RETURN(
      auto outcomes,
      sovereign::RunTwoPartyIntersection(reported_a, reported_b,
                                         *config_.group, family_, rng_));

  ExchangeResult result;
  result.a.reported_size = reported_a.size();
  result.b.reported_size = reported_b.size();
  result.a.intersection = std::move(outcomes.first.intersection);
  result.b.intersection = std::move(outcomes.second.intersection);
  result.a.intersection_size = outcomes.first.intersection_size;
  result.b.intersection_size = outcomes.second.intersection_size;

  // Audits: the device checks each party's reported commitment against
  // HV_i with probability f.
  auto audit_party = [&](const std::string& name, const Bytes& commitment,
                         ExchangeStats& stats) -> Status {
    Result<audit::AuditOutcome> outcome =
        device_->MaybeAudit(name, commitment, rng_);
    HSIS_RETURN_IF_ERROR(outcome.status());
    stats.audited = outcome->audited;
    stats.detected = outcome->cheating_detected;
    stats.penalty_paid = outcome->penalty_applied;
    return Status::OK();
  };
  HSIS_RETURN_IF_ERROR(
      audit_party(party_a, outcomes.first.own_commitment, result.a));
  HSIS_RETURN_IF_ERROR(
      audit_party(party_b, outcomes.second.own_commitment, result.b));

  // Probe accounting: a fabricated tuple that shows up in the cheater's
  // intersection is a peer tuple the cheater illegitimately learned.
  auto count_probe_hits = [](const CheatPlan& plan,
                             const sovereign::Dataset& intersection) {
    size_t hits = 0;
    for (const std::string& f : plan.fabricate) {
      if (intersection.Contains(sovereign::Tuple::FromString(f))) ++hits;
    }
    return hits;
  };
  result.a.probe_hits = count_probe_hits(cheat_a, result.a.intersection);
  result.b.probe_hits = count_probe_hits(cheat_b, result.b.intersection);
  result.a.leaked_tuples = result.b.probe_hits;
  result.b.leaked_tuples = result.a.probe_hits;
  return result;
}

Result<MultiExchangeResult> HonestSharingSession::RunMultiPartyExchange(
    const std::vector<std::string>& names,
    const std::vector<CheatPlan>& cheats) {
  if (names.size() < 2) {
    return Status::InvalidArgument("multi-party exchange needs >= 2 parties");
  }
  if (!cheats.empty() && cheats.size() != names.size()) {
    return Status::InvalidArgument(
        "cheat plans must be empty or one per party");
  }
  std::vector<const PartyState*> states;
  states.reserve(names.size());
  for (const std::string& name : names) {
    auto it = parties_.find(name);
    if (it == parties_.end()) {
      return Status::NotFound("unknown party: " + name);
    }
    states.push_back(&it->second);
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        return Status::InvalidArgument("duplicate party in exchange");
      }
    }
  }

  static const CheatPlan kHonestPlan;
  auto plan_for = [&](size_t i) -> const CheatPlan& {
    return cheats.empty() ? kHonestPlan : cheats[i];
  };

  std::vector<sovereign::Dataset> reported;
  reported.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    sovereign::Dataset r = states[i]->data;
    r.RemoveRandom(plan_for(i).withhold, rng_);
    for (const std::string& f : plan_for(i).fabricate) {
      r.Add(sovereign::Tuple::FromString(f));
    }
    reported.push_back(std::move(r));
  }

  HSIS_ASSIGN_OR_RETURN(
      std::vector<sovereign::MultiPartyOutcome> outcomes,
      sovereign::RunMultiPartyIntersection(reported, *config_.group, family_,
                                           rng_));

  MultiExchangeResult result;
  result.parties.resize(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    ExchangeStats& stats = result.parties[i];
    stats.reported_size = reported[i].size();
    stats.intersection = std::move(outcomes[i].intersection);
    stats.intersection_size = stats.intersection.size();

    HSIS_ASSIGN_OR_RETURN(
        audit::AuditOutcome audit,
        device_->MaybeAudit(names[i], outcomes[i].own_commitment, rng_));
    stats.audited = audit.audited;
    stats.detected = audit.cheating_detected;
    stats.penalty_paid = audit.penalty_applied;

    for (const std::string& f : plan_for(i).fabricate) {
      if (stats.intersection.Contains(sovereign::Tuple::FromString(f))) {
        ++stats.probe_hits;
      }
    }
  }
  // Leakage: party p's true tuples exposed by any other party's probes
  // that survived into the global intersection.
  for (size_t p = 0; p < names.size(); ++p) {
    for (size_t q = 0; q < names.size(); ++q) {
      if (p == q) continue;
      for (const std::string& f : plan_for(q).fabricate) {
        sovereign::Tuple probe = sovereign::Tuple::FromString(f);
        if (states[p]->data.Contains(probe) &&
            result.parties[q].intersection.Contains(probe)) {
          ++result.parties[p].leaked_tuples;
        }
      }
    }
  }
  return result;
}

namespace {
constexpr uint32_t kSessionStateVersion = 1;
}  // namespace

Bytes HonestSharingSession::SaveState() const {
  Bytes out;
  AppendUint32BE(out, kSessionStateVersion);
  AppendUint32BE(out, static_cast<uint32_t>(parties_.size()));
  for (const auto& [name, state] : parties_) {
    AppendLengthPrefixed(out, ToBytes(name));
    AppendUint32BE(out, static_cast<uint32_t>(state.data.size()));
    for (const sovereign::Tuple& t : state.data.tuples()) {
      AppendLengthPrefixed(out, t.value);
    }
  }
  AppendLengthPrefixed(out, device_->SerializeState());
  return out;
}

Status HonestSharingSession::LoadState(const Bytes& state) {
  if (!parties_.empty()) {
    return Status::FailedPrecondition(
        "LoadState requires a fresh session with no parties");
  }
  if (state.size() < 8) {
    return Status::InvalidArgument("truncated session state");
  }
  uint32_t version = ReadUint32BE(state, 0);
  if (version != kSessionStateVersion) {
    return Status::InvalidArgument("unsupported session state version");
  }
  uint32_t party_count = ReadUint32BE(state, 4);
  size_t offset = 8;

  // Parse fully before mutating the session.
  std::vector<std::pair<std::string, sovereign::Dataset>> parsed;
  for (uint32_t p = 0; p < party_count; ++p) {
    HSIS_ASSIGN_OR_RETURN(Bytes name_bytes, ReadLengthPrefixed(state, &offset));
    if (offset + 4 > state.size()) {
      return Status::InvalidArgument("truncated session state");
    }
    uint32_t tuple_count = ReadUint32BE(state, offset);
    offset += 4;
    sovereign::Dataset data;
    for (uint32_t t = 0; t < tuple_count; ++t) {
      HSIS_ASSIGN_OR_RETURN(Bytes value, ReadLengthPrefixed(state, &offset));
      data.Add(sovereign::Tuple(std::move(value)));
    }
    std::string name = BytesToString(name_bytes);
    for (const auto& [existing, unused] : parsed) {
      if (existing == name) {
        return Status::InvalidArgument("duplicate party in session state");
      }
    }
    parsed.emplace_back(std::move(name), std::move(data));
  }
  HSIS_ASSIGN_OR_RETURN(Bytes device_state, ReadLengthPrefixed(state, &offset));

  for (auto& [name, data] : parsed) {
    HSIS_RETURN_IF_ERROR(AddParty(name));
    parties_.at(name).data = std::move(data);
  }
  Status restored = device_->RestoreState(device_state);
  if (!restored.ok()) {
    for (auto& [name, data] : parsed) parties_.erase(name);
    return restored;
  }
  return Status::OK();
}

}  // namespace hsis::core

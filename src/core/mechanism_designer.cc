#include "core/mechanism_designer.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace hsis::core {

Result<MechanismDesigner> MechanismDesigner::Create(double benefit,
                                                    double cheat_gain) {
  if (benefit < 0) {
    return Status::InvalidArgument("benefit B must be non-negative");
  }
  if (cheat_gain <= benefit) {
    return Status::InvalidArgument(
        "cheating gain F must exceed honest benefit B");
  }
  return MechanismDesigner(benefit, cheat_gain);
}

double MechanismDesigner::MinFrequency(double penalty, double margin) const {
  // Clamp to [0, 1] on both sides: a large penalty shrinks f* toward 0,
  // and a negative caller margin (or one larger in magnitude than f*)
  // would otherwise return a negative "minimum frequency".
  double f = game::CriticalFrequency(benefit_, cheat_gain_, penalty) + margin;
  return std::clamp(f, 0.0, 1.0);
}

Result<double> MechanismDesigner::MinPenalty(double frequency,
                                             double margin) const {
  if (frequency <= 0 || frequency > 1) {
    return Status::InvalidArgument(
        "a positive audit frequency is required to deter with penalties");
  }
  double p = game::CriticalPenalty(benefit_, cheat_gain_, frequency);
  if (p < 0) return 0.0;  // frequency alone already deters
  return p + margin;
}

double MechanismDesigner::ZeroPenaltyFrequency() const {
  return game::ZeroPenaltyFrequency(benefit_, cheat_gain_);
}

game::DeviceEffectiveness MechanismDesigner::Classify(double frequency,
                                                      double penalty) const {
  return game::ClassifySymmetricDevice(benefit_, cheat_gain_, frequency,
                                       penalty);
}

Result<OperatingPoint> MechanismDesigner::CheapestTransformative(
    double audit_cost, double max_penalty, double margin) const {
  if (audit_cost < 0 || max_penalty < 0) {
    return Status::InvalidArgument("costs must be non-negative");
  }
  OperatingPoint point;
  // Expected audit cost is increasing in f, so run at the minimum
  // frequency the largest allowed penalty supports.
  point.penalty = max_penalty;
  point.frequency = MinFrequency(max_penalty, margin);
  point.effectiveness = Classify(point.frequency, point.penalty);
  point.expected_audit_cost = point.frequency * audit_cost;
  if (point.effectiveness != game::DeviceEffectiveness::kTransformative) {
    return Status::Internal("no transformative operating point found");
  }
  return point;
}

Result<OperatingPoint> MechanismDesigner::GridSearchCheapestTransformative(
    const GridSearchConfig& config) const {
  if (config.frequency_steps < 2 || config.penalty_steps < 2) {
    return Status::InvalidArgument("grid needs >= 2 steps per axis");
  }
  if (config.max_penalty < 0 || config.audit_cost < 0 ||
      config.cost_per_unit_penalty < 0) {
    return Status::InvalidArgument("costs must be non-negative");
  }

  // Evaluate every cell into its ordered slot; the argmin reduction
  // below is serial and index-ordered, so the selected point does not
  // depend on the thread count.
  const size_t cells = static_cast<size_t>(config.frequency_steps) *
                       static_cast<size_t>(config.penalty_steps);
  std::vector<OperatingPoint> grid = common::ParallelMap(
      config.threads, cells, [&](size_t idx) {
        size_t i = idx / static_cast<size_t>(config.penalty_steps);
        size_t j = idx % static_cast<size_t>(config.penalty_steps);
        OperatingPoint point;
        point.frequency =
            static_cast<double>(i) / (config.frequency_steps - 1);
        point.penalty = config.max_penalty * static_cast<double>(j) /
                        (config.penalty_steps - 1);
        point.effectiveness = Classify(point.frequency, point.penalty);
        point.expected_audit_cost = point.frequency * config.audit_cost;
        return point;
      });

  const OperatingPoint* best = nullptr;
  double best_cost = 0;
  for (const OperatingPoint& point : grid) {
    if (point.effectiveness != game::DeviceEffectiveness::kTransformative) {
      continue;
    }
    double cost = point.expected_audit_cost +
                  point.penalty * config.cost_per_unit_penalty;
    // Strict `<` keeps the first minimizer; grid order (f-major, P
    // ascending) makes the lower-penalty, then lower-frequency point
    // win ties only when cost-per-penalty is zero, so break penalty
    // ties explicitly.
    if (best == nullptr || cost < best_cost ||
        (cost == best_cost && point.penalty < best->penalty)) {
      best = &point;
      best_cost = cost;
    }
  }
  if (best == nullptr) {
    return Status::Internal("no transformative operating point on the grid");
  }
  return *best;
}

Result<double> MechanismDesigner::MinPenaltyNPlayer(
    int n, const game::GainFunction& gain, double frequency,
    double margin) const {
  if (n < 2) return Status::InvalidArgument("need n >= 2");
  if (!gain) return Status::InvalidArgument("gain function required");
  if (frequency <= 0 || frequency > 1) {
    return Status::InvalidArgument("frequency must be in (0, 1]");
  }
  double p = game::NPlayerPenaltyBound(benefit_, gain, frequency, n - 1);
  return std::max(0.0, p) + margin;
}

}  // namespace hsis::core

#ifndef HSIS_CORE_HONEST_SHARING_SESSION_H_
#define HSIS_CORE_HONEST_SHARING_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/auditing_device.h"
#include "audit/secure_coprocessor.h"
#include "audit/tuple_generator.h"
#include "common/random.h"
#include "common/result.h"
#include "crypto/group.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"
#include "sovereign/intersection_protocol.h"

namespace hsis::core {

/// Configuration of an audited sovereign-sharing deployment.
struct SessionConfig {
  /// Audit terms (f, P) — pick them with `MechanismDesigner`.
  double audit_frequency = 1.0;
  double penalty = 0.0;
  /// Multiset hash scheme the tuple generators announce. kMu (default)
  /// is the right choice against cheating *participants*; keyed schemes
  /// need `scheme_key`.
  crypto::MultisetHashScheme hash_scheme = crypto::MultisetHashScheme::kMu;
  Bytes scheme_key;
  /// Group for the intersection protocol and the Mu hash; null = the
  /// library's 256-bit safe-prime group.
  const crypto::PrimeGroup* group = nullptr;
  uint64_t seed = 1;
};

/// How a party alters its report this exchange (empty plan = honest).
struct CheatPlan {
  /// Fabricated tuples inserted to probe the peer (Section 1's attack).
  std::vector<std::string> fabricate;
  /// Number of true tuples withheld, chosen at random.
  size_t withhold = 0;

  bool IsHonest() const { return fabricate.empty() && withhold == 0; }
};

/// One party's view of an exchange.
struct ExchangeStats {
  size_t reported_size = 0;
  size_t intersection_size = 0;
  sovereign::Dataset intersection;
  /// Audit outcome for this party.
  bool audited = false;
  bool detected = false;
  double penalty_paid = 0.0;
  /// Fabricated probes that matched the peer's report — private peer
  /// tuples this party illegitimately learned.
  size_t probe_hits = 0;
  /// This party's tuples exposed to the peer through the peer's probes.
  size_t leaked_tuples = 0;
};

/// Both parties' views.
struct ExchangeResult {
  ExchangeStats a;
  ExchangeStats b;
};

/// Result of an n-party exchange; `parties` is aligned with the name
/// list passed to `RunMultiPartyExchange`.
struct MultiExchangeResult {
  std::vector<ExchangeStats> parties;
};

/// The library's one-stop orchestration of the paper's full system:
/// tuple generators feeding an auditing device hosted in a (simulated)
/// secure coprocessor, sovereign set intersections over authenticated
/// channels, Bernoulli audits at frequency f, and penalties P.
///
/// Typical use:
///   1. Create with audit terms from `MechanismDesigner`.
///   2. `AddParty` each participant; parties verify the device via
///      `Attest` / `expected_code_hash`.
///   3. Feed legal tuples through `IssueTuples` (the TG_i path).
///   4. `RunExchange` per sharing round, with optional `CheatPlan`s to
///      model adversarial behavior.
class HonestSharingSession {
 public:
  static Result<HonestSharingSession> Create(const SessionConfig& config);

  /// Registers a participant and its tuple generator.
  Status AddParty(const std::string& name);

  /// Issues legal tuples to `party` through its TG (updates HV_i).
  Status IssueTuples(const std::string& party,
                     const std::vector<std::string>& values);

  /// The party's true database (everything its TG issued).
  Result<sovereign::Dataset> TrueData(const std::string& party) const;

  /// Remote attestation of the audit application, for participants to
  /// verify before trusting the device.
  Result<audit::SecureCoprocessor::AttestationReport> Attest(
      const Bytes& challenge) const;
  const Bytes& expected_code_hash() const { return code_hash_; }
  const Bytes& device_endorsement_key() const;

  /// Runs one audited sovereign intersection between two registered
  /// parties, applying the given cheat plans to their reports.
  Result<ExchangeResult> RunExchange(const std::string& party_a,
                                     const std::string& party_b,
                                     const CheatPlan& cheat_a = {},
                                     const CheatPlan& cheat_b = {});

  /// Runs one audited n-party sovereign intersection (ring protocol,
  /// Section 5's setting). `cheats` is either empty (everyone honest)
  /// or one plan per party, aligned with `names`. Each party's
  /// `leaked_tuples` counts its own true tuples that some *other*
  /// party's probe exposed through the global intersection.
  Result<MultiExchangeResult> RunMultiPartyExchange(
      const std::vector<std::string>& names,
      const std::vector<CheatPlan>& cheats = {});

  const audit::AuditingDevice& device() const { return *device_; }
  double TotalPenalties(const std::string& party) const {
    return device_->TotalPenalties(party);
  }

  /// Serializes the session's durable state — every party's issued
  /// dataset plus the auditing device's state — so a deployment can
  /// restart. Configuration (audit terms, hash scheme, group) is not
  /// part of the state; the restoring session must be created with the
  /// same configuration.
  Bytes SaveState() const;

  /// Restores state produced by `SaveState` into a freshly created
  /// session (no parties added yet). Recreates parties, datasets, and
  /// device accumulators; fails without partial effects on malformed
  /// input or when parties already exist.
  Status LoadState(const Bytes& state);

 private:
  HonestSharingSession(const SessionConfig& config,
                       crypto::MultisetHashFamily family,
                       audit::SecureCoprocessor coprocessor,
                       std::unique_ptr<audit::AuditingDevice> device,
                       Bytes code_hash, Rng rng)
      : config_(config),
        family_(std::move(family)),
        coprocessor_(std::move(coprocessor)),
        device_(std::move(device)),
        code_hash_(std::move(code_hash)),
        rng_(std::move(rng)) {}

  struct PartyState {
    std::unique_ptr<audit::TupleGenerator> generator;
    sovereign::Dataset data;
  };

  SessionConfig config_;
  crypto::MultisetHashFamily family_;
  audit::SecureCoprocessor coprocessor_;
  std::unique_ptr<audit::AuditingDevice> device_;
  Bytes code_hash_;
  Rng rng_;
  std::map<std::string, PartyState> parties_;
};

}  // namespace hsis::core

#endif  // HSIS_CORE_HONEST_SHARING_SESSION_H_

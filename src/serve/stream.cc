#include "serve/stream.h"

#include <cmath>

#include "common/random.h"
#include "sim/workload.h"

namespace hsis::serve {

Result<std::vector<QueryRequest>> MakeSyntheticStream(
    const StreamConfig& config) {
  if (config.count == 0) {
    return Status::InvalidArgument("stream: need at least one request");
  }
  if (config.domain == 0) {
    return Status::InvalidArgument("stream: need at least one catalog point");
  }
  if (!std::isfinite(config.skew) || config.skew < 0) {
    return Status::InvalidArgument(
        "stream: skew must be finite and non-negative");
  }
  if (config.n < 2) {
    return Status::InvalidArgument("stream: need n >= 2 sharing parties");
  }

  Rng rng(config.seed);
  std::vector<QueryRequest> catalog;
  catalog.reserve(config.domain);
  for (size_t i = 0; i < config.domain; ++i) {
    QueryRequest request;
    request.benefit = 50.0 * rng.UniformDouble();
    // Gap strictly positive so F > B holds for every catalog point.
    request.cheat_gain = request.benefit + 0.5 + 50.0 * rng.UniformDouble();
    request.frequency = rng.UniformDouble();
    request.penalty = 100.0 * rng.UniformDouble();
    request.n = config.n;
    catalog.push_back(request);
  }

  std::vector<size_t> indices =
      sim::MakeZipfIndexDraws(config.count, config.domain, config.skew, rng);
  std::vector<QueryRequest> stream;
  stream.reserve(config.count);
  for (size_t index : indices) {
    stream.push_back(catalog[index]);
  }
  return stream;
}

}  // namespace hsis::serve

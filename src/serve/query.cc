#include "serve/query.h"

#include <cmath>
#include <limits>

#include "core/mechanism_designer.h"

namespace hsis::serve {

Status ValidateQueryRequest(const QueryRequest& request) {
  if (!std::isfinite(request.benefit) || !std::isfinite(request.cheat_gain) ||
      !std::isfinite(request.frequency) || !std::isfinite(request.penalty)) {
    return Status::InvalidArgument("query: parameters must be finite");
  }
  if (request.benefit < 0) {
    return Status::InvalidArgument("query: benefit B must be non-negative");
  }
  if (request.cheat_gain <= request.benefit) {
    return Status::InvalidArgument(
        "query: cheating gain F must exceed honest benefit B");
  }
  if (request.frequency < 0 || request.frequency > 1) {
    return Status::InvalidArgument("query: frequency f must be in [0, 1]");
  }
  if (request.penalty < 0) {
    return Status::InvalidArgument("query: penalty P must be non-negative");
  }
  if (request.n < 2) {
    return Status::InvalidArgument("query: need n >= 2 sharing parties");
  }
  return Status::OK();
}

Result<QueryAnswer> AnswerQuery(const QueryRequest& request, double margin) {
  HSIS_RETURN_IF_ERROR(ValidateQueryRequest(request));
  if (!std::isfinite(margin)) {
    return Status::InvalidArgument("query: margin must be finite");
  }
  HSIS_ASSIGN_OR_RETURN(
      core::MechanismDesigner designer,
      core::MechanismDesigner::Create(request.benefit, request.cheat_gain));
  QueryAnswer answer;
  answer.effectiveness =
      designer.Classify(request.frequency, request.penalty);
  answer.honest_is_dominant =
      answer.effectiveness == game::DeviceEffectiveness::kTransformative;
  answer.min_frequency = designer.MinFrequency(request.penalty, margin);
  if (request.frequency > 0) {
    HSIS_ASSIGN_OR_RETURN(answer.min_penalty,
                          designer.MinPenalty(request.frequency, margin));
  } else {
    // CriticalPenalty(f = 0) is +infinity: never-audited players cannot
    // be deterred by any finite penalty. The kernel path propagates the
    // same infinity through its unconditional arithmetic.
    answer.min_penalty = std::numeric_limits<double>::infinity();
  }
  answer.zero_penalty_frequency = designer.ZeroPenaltyFrequency();
  return answer;
}

QueryAnswer AnswerFromKernel(const game::kernel::DeviceAnswerKernel& kernel) {
  QueryAnswer answer;
  answer.effectiveness = kernel.effectiveness;
  answer.honest_is_dominant =
      kernel.effectiveness == game::DeviceEffectiveness::kTransformative;
  answer.min_frequency = kernel.min_frequency;
  answer.min_penalty = kernel.min_penalty;
  answer.zero_penalty_frequency = kernel.zero_penalty_frequency;
  return answer;
}

}  // namespace hsis::serve

#include "serve/derivation.h"

#include <cmath>
#include <cstdio>

#include "game/thresholds.h"

namespace hsis::serve {

namespace {

/// Human-readable number: %g (deterministic shortest-ish form), with
/// infinities spelled out so proofs read as prose, not as "inf".
std::string Num(double value) {
  if (std::isinf(value)) return value > 0 ? "infinity" : "-infinity";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

Derivation BuildDerivation(const QueryRequest& request,
                           const QueryAnswer& answer, double margin) {
  const double b = request.benefit;
  const double cheat_gain = request.cheat_gain;
  const double f = request.frequency;
  const double p = request.penalty;

  Derivation derivation;
  derivation.honest_is_dominant = answer.honest_is_dominant;

  // Step 1: the two sides of the deterrence inequality, instantiated.
  const double expected_penalty = f * p;
  const double net_cheat_gain = (1 - f) * cheat_gain - b;
  derivation.steps.push_back(
      {"a cheating party keeps the gross gain F = " + Num(cheat_gain) +
           " only when the audit misses (probability 1 - f = " + Num(1 - f) +
           ") and forfeits honesty's benefit B = " + Num(b) +
           "; detection (probability f = " + Num(f) +
           ") costs the penalty P = " + Num(p),
       "net cheating gain (1 - f)*F - B = " + Num(net_cheat_gain) +
           ", expected penalty f*P = " + Num(expected_penalty),
       "cheating is deterred exactly when the expected penalty exceeds "
       "the net cheating gain"});

  // Step 2: the regime comparison — the same quantities and boundary
  // semantics ClassifySymmetricDevice uses.
  const char* relation = "=";
  switch (answer.effectiveness) {
    case game::DeviceEffectiveness::kTransformative:
    case game::DeviceEffectiveness::kHighlyEffective:
      relation = ">";
      break;
    case game::DeviceEffectiveness::kIneffective:
      relation = "<";
      break;
    case game::DeviceEffectiveness::kEffective:
      relation = "=";
      break;
  }
  std::string regime_conclusion;
  switch (answer.effectiveness) {
    case game::DeviceEffectiveness::kTransformative:
    case game::DeviceEffectiveness::kHighlyEffective:
      regime_conclusion =
          "honesty is the unique dominant-strategy equilibrium for all " +
          std::to_string(request.n) + " parties: the device is transformative";
      break;
    case game::DeviceEffectiveness::kEffective:
      regime_conclusion =
          "the operating point lies on the critical boundary: all-honest is "
          "among the equilibria, but so is cheating — the device is merely "
          "effective";
      break;
    case game::DeviceEffectiveness::kIneffective:
      regime_conclusion =
          "cheating dominates for every party: the device is ineffective "
          "at this operating point";
      break;
  }
  derivation.steps.push_back(
      {"Observation 2/3 regime test at (f = " + Num(f) + ", P = " + Num(p) +
           ")",
       "f*P = " + Num(expected_penalty) + " " + relation +
           " (1 - f)*F - B = " + Num(net_cheat_gain),
       regime_conclusion});

  // Step 3: minimum deterring penalty at the request's frequency
  // (Observation 3).
  std::string penalty_conclusion;
  if (f <= 0) {
    penalty_conclusion =
        "a party that is never audited cannot be deterred by any finite "
        "penalty";
  } else if (answer.min_penalty == 0) {
    penalty_conclusion =
        "the frequency alone already deters cheating — no penalty is needed";
  } else {
    penalty_conclusion = "any penalty of at least " + Num(answer.min_penalty) +
                         " (margin " + Num(margin) +
                         " included) makes honesty dominant at f = " + Num(f);
  }
  derivation.steps.push_back(
      {"Observation 3: at fixed frequency f the critical penalty is "
       "P* = ((1 - f)*F - B) / f",
       "P* = " + Num(game::CriticalPenalty(b, cheat_gain, f)) +
           ", served minimum " + Num(answer.min_penalty),
       penalty_conclusion});

  // Step 4: minimum deterring frequency at the request's penalty
  // (Observation 2), clamped to [0, 1] by the designer.
  derivation.steps.push_back(
      {"Observation 2: at fixed penalty P the critical frequency is "
       "f* = (F - B) / (P + F)",
       "f* = " + Num(game::CriticalFrequency(b, cheat_gain, p)) +
           ", served minimum clamp(f* + " + Num(margin) +
           ", [0, 1]) = " + Num(answer.min_frequency),
       "auditing at frequency " + Num(answer.min_frequency) +
           " or above makes honesty dominant at P = " + Num(p)});

  // Step 5: the zero-penalty frequency (Observation 3, special case).
  derivation.steps.push_back(
      {"above f0 = (F - B) / F the expected cheating gain falls below B "
       "with no penalty at all",
       "f0 = " + Num(answer.zero_penalty_frequency),
       "auditing more often than " + Num(answer.zero_penalty_frequency) +
           " needs no penalty whatsoever"});

  derivation.conclusion = regime_conclusion;
  return derivation;
}

std::string DerivationToText(const Derivation& derivation) {
  std::string out;
  for (size_t i = 0; i < derivation.steps.size(); ++i) {
    const DerivationStep& step = derivation.steps[i];
    out += "step " + std::to_string(i + 1) + ":\n";
    out += "  premise:    " + step.premise + "\n";
    out += "  inequality: " + step.inequality + "\n";
    out += "  conclusion: " + step.conclusion + "\n";
  }
  out += "verdict: " + derivation.conclusion + "\n";
  return out;
}

}  // namespace hsis::serve

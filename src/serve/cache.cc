#include "serve/cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace hsis::serve {

namespace {

/// splitmix64 finalizer — cheap, well-distributed mixing for shard
/// selection and the per-shard hash table.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashKey(const QueryKey& key) {
  uint64_t h = Mix64(key.benefit);
  h = Mix64(h ^ key.cheat_gain);
  h = Mix64(h ^ key.frequency);
  h = Mix64(h ^ key.penalty);
  h = Mix64(h ^ static_cast<uint64_t>(key.n));
  return h;
}

struct KeyHasher {
  size_t operator()(const QueryKey& key) const {
    return static_cast<size_t>(HashKey(key));
  }
};

/// Quantized image of one parameter. quantum == 0: the exact bit
/// pattern (with -0.0 folded into +0.0 so the two spellings of zero
/// share an entry); quantum > 0: the nearest lattice index, saturated
/// at the int64 range so absurd magnitudes cannot overflow into UB.
uint64_t QuantizeComponent(double value, double quantum) {
  if (quantum == 0) {
    return std::bit_cast<uint64_t>(value == 0.0 ? 0.0 : value);
  }
  double index = std::nearbyint(value / quantum);
  index = std::clamp(index, -9.0e18, 9.0e18);
  return static_cast<uint64_t>(static_cast<int64_t>(index));
}

}  // namespace

QueryKey MakeQueryKey(const QueryRequest& request, double quantum) {
  QueryKey key;
  key.benefit = QuantizeComponent(request.benefit, quantum);
  key.cheat_gain = QuantizeComponent(request.cheat_gain, quantum);
  key.frequency = QuantizeComponent(request.frequency, quantum);
  key.penalty = QuantizeComponent(request.penalty, quantum);
  key.n = request.n;
  return key;
}

QueryRequest SnapRequest(const QueryRequest& request, double quantum) {
  if (quantum == 0) return request;
  auto snap = [quantum](double value) {
    return std::nearbyint(value / quantum) * quantum;
  };
  QueryRequest snapped = request;
  snapped.benefit = std::max(0.0, snap(request.benefit));
  snapped.cheat_gain = snap(request.cheat_gain);
  snapped.frequency = std::clamp(snap(request.frequency), 0.0, 1.0);
  snapped.penalty = std::max(0.0, snap(request.penalty));
  // Snapping can collapse the F > B gap (both land on the same lattice
  // point); bump F to the next lattice point above B so every
  // equivalence class stays servable.
  if (snapped.cheat_gain <= snapped.benefit) {
    snapped.cheat_gain = snapped.benefit + quantum;
  }
  return snapped;
}

struct AnswerCache::Shard {
  std::mutex mutex;
  std::unordered_map<QueryKey, QueryAnswer, KeyHasher> entries;
  std::deque<QueryKey> fifo;  ///< Insertion order, oldest first.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

Result<AnswerCache> AnswerCache::Create(const CacheConfig& config) {
  if (!std::isfinite(config.quantum) || config.quantum < 0) {
    return Status::InvalidArgument(
        "cache: quantum must be finite and non-negative");
  }
  if (config.shards < 1) {
    return Status::InvalidArgument("cache: need at least one shard");
  }
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(static_cast<size_t>(config.shards));
  for (int i = 0; i < config.shards; ++i) {
    shards.push_back(std::make_unique<Shard>());
  }
  return AnswerCache(config.quantum, config.capacity_per_shard,
                     std::move(shards));
}

AnswerCache::AnswerCache(double quantum, size_t capacity_per_shard,
                         std::vector<std::unique_ptr<Shard>> shards)
    : quantum_(quantum),
      capacity_per_shard_(capacity_per_shard),
      shards_(std::move(shards)) {}

AnswerCache::AnswerCache(AnswerCache&&) noexcept = default;
AnswerCache& AnswerCache::operator=(AnswerCache&&) noexcept = default;
AnswerCache::~AnswerCache() = default;

AnswerCache::Shard& AnswerCache::ShardFor(const QueryKey& key) {
  return *shards_[static_cast<size_t>(HashKey(key) ^ 0xa5a5a5a5a5a5a5a5ULL) %
                  shards_.size()];
}

bool AnswerCache::Lookup(const QueryKey& key, QueryAnswer* answer) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  *answer = it->second;
  return true;
}

void AnswerCache::Insert(const QueryKey& key, const QueryAnswer& answer) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.entries.try_emplace(key, answer);
  if (!inserted) {
    it->second = answer;  // refresh — no FIFO movement
    return;
  }
  shard.fifo.push_back(key);
  if (capacity_per_shard_ != 0 && shard.entries.size() > capacity_per_shard_) {
    // FIFO eviction: drop the oldest still-resident entry.
    while (!shard.fifo.empty()) {
      QueryKey oldest = shard.fifo.front();
      shard.fifo.pop_front();
      if (oldest == key) continue;  // never evict the entry just added
      if (shard.entries.erase(oldest) > 0) {
        ++shard.evictions;
        break;
      }
    }
  }
}

CacheStats AnswerCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->entries.size();
  }
  return stats;
}

void AnswerCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
    shard->fifo.clear();
  }
}

}  // namespace hsis::serve

#ifndef HSIS_SERVE_CACHE_H_
#define HSIS_SERVE_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "serve/query.h"

/// \file
/// \brief Sharded memo-cache for served query answers.
///
/// Production query streams are heavily repetitive — the same tariff
/// points, the same contract templates — so the serving tier memoizes
/// answers keyed on the request's parameter point. Keys are built by
/// `MakeQueryKey`: with the default `quantum == 0` the key is the
/// exact bit pattern of each parameter (lossless — a hit returns the
/// bit-identical answer the analytic path would compute, including at
/// points within `kPayoffEpsilon` of a regime flip), while a positive
/// quantum snaps parameters to a lattice and the cache stores the
/// answer *of the snapped point* (`SnapRequest`), so lossy mode is
/// deterministic and arrival-order independent.
///
/// The cache is sharded: each shard owns an independent mutex, map,
/// and FIFO eviction ring, so concurrent batch workers contend only
/// 1/shards of the time. Hit/miss/eviction counters aggregate into a
/// `CacheStats` snapshot for the service's stats endpoint.

namespace hsis::serve {

/// Tuning knobs of an `AnswerCache`.
struct CacheConfig {
  /// Key quantization step. 0 (default) keys on exact double bit
  /// patterns; q > 0 snaps every parameter to the lattice q*Z (and the
  /// answer is computed at the snapped point). Must be finite, >= 0.
  double quantum = 0.0;
  /// Number of independently locked shards (>= 1).
  int shards = 16;
  /// Entries per shard before FIFO eviction kicks in; 0 = unbounded.
  size_t capacity_per_shard = 4096;
};

/// Aggregated counters across all shards, as of one `Stats()` call.
struct CacheStats {
  uint64_t hits = 0;       ///< Lookups answered from the cache.
  uint64_t misses = 0;     ///< Lookups that found nothing.
  uint64_t evictions = 0;  ///< Entries displaced by capacity pressure.
  uint64_t entries = 0;    ///< Entries currently resident.
};

/// Cache key of one request: quantized parameter images plus the party
/// count. Equality is exact — two requests collide iff every quantized
/// component matches.
struct QueryKey {
  uint64_t benefit = 0;     ///< Quantized image of B.
  uint64_t cheat_gain = 0;  ///< Quantized image of F.
  uint64_t frequency = 0;   ///< Quantized image of f.
  uint64_t penalty = 0;     ///< Quantized image of P.
  int n = 0;                ///< Party count (cached answers are n-tagged).

  /// Exact component-wise equality.
  bool operator==(const QueryKey& other) const = default;
};

/// Builds the cache key of `request` under `quantum` (see
/// `CacheConfig::quantum`). -0.0 and +0.0 share a key.
QueryKey MakeQueryKey(const QueryRequest& request, double quantum);

/// The canonical request of a key's equivalence class: the identity
/// for `quantum == 0`, otherwise every parameter rounded to the
/// nearest lattice point (frequency re-clamped to [0, 1] so snapping
/// never produces an unservable request). Cached answers are computed
/// here, so every request in the class serves the same bytes.
QueryRequest SnapRequest(const QueryRequest& request, double quantum);

/// Sharded memoization of `QueryKey -> QueryAnswer`. Thread-safe;
/// every operation locks exactly one shard (Stats locks each in turn).
class AnswerCache {
 public:
  /// Validates `config` (finite quantum >= 0, shards >= 1) and builds
  /// an empty cache.
  static Result<AnswerCache> Create(const CacheConfig& config);

  /// Movable (out-of-line so the Shard type stays private to cache.cc).
  AnswerCache(AnswerCache&&) noexcept;
  /// Move-assignable (out-of-line, same reason).
  AnswerCache& operator=(AnswerCache&&) noexcept;
  /// Out-of-line destructor, same reason.
  ~AnswerCache();

  /// Looks `key` up; on a hit copies the answer into `*answer` and
  /// returns true. Counts one hit or one miss.
  bool Lookup(const QueryKey& key, QueryAnswer* answer);

  /// Inserts (or overwrites) `key`'s answer, evicting the oldest entry
  /// of the shard when it is full (FIFO — deterministic for a given
  /// insertion order).
  void Insert(const QueryKey& key, const QueryAnswer& answer);

  /// Aggregated counters across all shards.
  CacheStats Stats() const;

  /// Drops every entry; counters keep accumulating.
  void Clear();

  /// The quantum the cache was built with.
  double quantum() const { return quantum_; }

 private:
  struct Shard;

  AnswerCache(double quantum, size_t capacity_per_shard,
              std::vector<std::unique_ptr<Shard>> shards);

  /// The owning shard of `key` (stable hash of the key's components).
  Shard& ShardFor(const QueryKey& key);

  double quantum_ = 0;
  size_t capacity_per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hsis::serve

#endif  // HSIS_SERVE_CACHE_H_

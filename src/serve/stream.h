#ifndef HSIS_SERVE_STREAM_H_
#define HSIS_SERVE_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "serve/query.h"

/// \file
/// \brief Synthetic query streams for exercising the serving tier.
///
/// Production mechanism-design query traffic is repetitive: clients ask
/// about the same tariff points and contract templates over and over.
/// `MakeSyntheticStream` models that as a Zipf-skewed draw over a
/// finite catalog of random (but always servable) operating points —
/// the same skew engine (`sim::MakeZipfIndexDraws`) the protocol
/// benches use — giving the CLI demo and the latency bench a shared,
/// seed-reproducible workload whose hit rate is tunable through the
/// catalog size and skew exponent.

namespace hsis::serve {

/// Shape of a synthetic query stream.
struct StreamConfig {
  size_t count = 100000;  ///< Requests to draw (with repeats).
  size_t domain = 1024;   ///< Distinct operating points in the catalog.
  double skew = 1.1;      ///< Zipf exponent (0 = uniform, higher = hotter head).
  uint64_t seed = 42;     ///< RNG seed; same config -> same stream.
  int n = 2;              ///< Party count stamped on every request.
};

/// Draws `config.count` requests from a catalog of `config.domain`
/// random valid operating points (B >= 0, F > B, f in [0, 1), P >= 0),
/// Zipf(config.skew)-skewed so a small hot set dominates. Pure function
/// of the config. Returns InvalidArgument for an empty catalog/stream,
/// non-finite or negative skew, or n < 2.
Result<std::vector<QueryRequest>> MakeSyntheticStream(
    const StreamConfig& config);

}  // namespace hsis::serve

#endif  // HSIS_SERVE_STREAM_H_

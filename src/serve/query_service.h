#ifndef HSIS_SERVE_QUERY_SERVICE_H_
#define HSIS_SERVE_QUERY_SERVICE_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "serve/cache.h"
#include "serve/derivation.h"
#include "serve/query.h"

/// \file
/// \brief The online mechanism-design query service: analytic, batch,
/// and memoized serving paths over one configuration.
///
/// Three layers, one contract — every path serves answers bit-identical
/// to the offline `core::MechanismDesigner`:
///
///  * `Answer` — the single-query analytic path, answering through the
///    designer itself. Pair with `Explain` for the full proof object.
///  * `AnswerBatch` — whole request vectors classified through the
///    allocation-free `game::kernel::EvalDevicePoints` SoA evaluator
///    (zero heap allocations per request inside the loop, `threads`
///    workers, bit-identical for every thread count).
///  * `AnswerBatchCached` / `AnswerCached` — the memoized hot path: a
///    sharded `AnswerCache` keyed on (optionally quantized) parameter
///    points absorbs the repeats that dominate production streams.
///
/// \par Usage
/// \code
///   QueryService service = QueryService::Create({}).value();
///   QueryRequest request{10, 25, 0.3, 40, 2};
///   QueryAnswer answer = service.AnswerCached(request).value();
///   std::string proof = DerivationToText(service.Explain(request).value());
///   CacheStats stats = service.Stats();   // hits/misses/evictions
/// \endcode

namespace hsis::serve {

/// Configuration of a `QueryService`.
struct QueryServiceConfig {
  /// Safety margin added above the exact deterrence thresholds
  /// (`core::MechanismDesigner` default). Must be finite.
  double margin = 1e-6;
  /// Memo-cache tuning; `cache.quantum == 0` (the default) keeps the
  /// cached path lossless.
  CacheConfig cache;
  /// Worker threads for the uncached batch path (common/parallel.h
  /// contract: 1 = serial, 0 = hardware concurrency at call time).
  int threads = 1;
};

/// One service instance: immutable configuration plus the shared
/// memo-cache. Thread-safe — concurrent calls contend only on cache
/// shards.
class QueryService {
 public:
  /// Validates `config` and builds the service (empty cache).
  static Result<QueryService> Create(const QueryServiceConfig& config);

  /// Single-query analytic path (uncached): `AnswerQuery` under the
  /// service margin. The returned frequencies are guaranteed in
  /// [0, 1] (enforced, not assumed).
  Result<QueryAnswer> Answer(const QueryRequest& request) const;

  /// The full proof object for `request` — computed analytically, so
  /// `Explain(r).conclusion` always matches `Answer(r)`'s regime.
  Result<Derivation> Explain(const QueryRequest& request) const;

  /// Uncached batch path: validates and answers `requests[0..count)`
  /// into `out` slot-for-slot through the SoA kernel evaluator with
  /// zero per-request heap allocations inside the loop.
  Status AnswerBatch(const QueryRequest* requests, size_t count,
                     game::kernel::DeviceAnswersSoA& out) const;

  /// Memoized single query: cache hit, or analytic compute at the
  /// (possibly snapped) canonical point + insert.
  Result<QueryAnswer> AnswerCached(const QueryRequest& request);

  /// Memoized batch path: per-request cache lookups, kernel compute
  /// for the misses, answers written slot-for-slot into `out`.
  Status AnswerBatchCached(const QueryRequest* requests, size_t count,
                           game::kernel::DeviceAnswersSoA& out);

  /// Cache counters as of now.
  CacheStats Stats() const { return cache_->Stats(); }

  /// Drops all cached answers (counters keep accumulating).
  void ClearCache() { cache_->Clear(); }

  /// The service margin.
  double margin() const { return margin_; }

 private:
  QueryService(double margin, int threads, AnswerCache cache);

  double margin_;
  int threads_;
  /// unique_ptr so the service stays movable (AnswerCache owns
  /// mutexes).
  std::unique_ptr<AnswerCache> cache_;
};

}  // namespace hsis::serve

#endif  // HSIS_SERVE_QUERY_SERVICE_H_

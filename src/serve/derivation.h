#ifndef HSIS_SERVE_DERIVATION_H_
#define HSIS_SERVE_DERIVATION_H_

#include <string>
#include <vector>

#include "serve/query.h"

/// \file
/// \brief Structured step-by-step proofs for served query answers.
///
/// A `QueryAnswer` tells a client *what* the regime is; the
/// `Derivation` tells them *why*: a premise → inequality → conclusion
/// chain walking the paper's Observations 2 and 3 with the request's
/// own numbers substituted in, ending in a one-line verdict. The shape
/// follows the `proveHonesty`/`minimumStake` proof objects of the
/// honesty-staking exemplars: every step is self-contained, so a
/// client can render the chain verbatim as an audit trail for the
/// recommendation.
///
/// Derivations are deterministic functions of (request, answer): two
/// bit-equal answers always carry byte-identical derivations, which is
/// what lets the cached and batch paths materialize them lazily
/// without affecting the served bytes.

namespace hsis::serve {

/// One inference step of a served proof.
struct DerivationStep {
  /// What the step assumes, in words ("a cheater escapes the audit
  /// with probability 1 - f").
  std::string premise;
  /// The instantiated (in)equality, numbers substituted in
  /// ("(1 - 0.3)·25 - 0.3·40 = 5.5").
  std::string inequality;
  /// What the step concludes from it.
  std::string conclusion;
};

/// A complete served proof: the inference chain plus the final verdict.
struct Derivation {
  std::vector<DerivationStep> steps;  ///< Premise → inequality → conclusion chain.
  /// Final verdict line — a deterministic function of the regime
  /// classification (the cross-validation suite compares it across the
  /// analytic, batch, and cached paths).
  std::string conclusion;
  /// Mirrors `QueryAnswer::honest_is_dominant`.
  bool honest_is_dominant = false;
};

/// Builds the proof chain for `answer` at `request`. The caller is
/// responsible for `answer` actually answering `request` (the service
/// guarantees it); `margin` must be the margin the answer was computed
/// with so the threshold steps restate the served numbers exactly.
Derivation BuildDerivation(const QueryRequest& request,
                           const QueryAnswer& answer, double margin = 1e-6);

/// Renders a derivation as indented plain text (one step per stanza),
/// the CLI/debug format.
std::string DerivationToText(const Derivation& derivation);

}  // namespace hsis::serve

#endif  // HSIS_SERVE_DERIVATION_H_

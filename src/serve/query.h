#ifndef HSIS_SERVE_QUERY_H_
#define HSIS_SERVE_QUERY_H_

#include "common/result.h"
#include "game/kernel.h"
#include "game/thresholds.h"

/// \file
/// \brief Request/answer types of the online mechanism-design query
/// service.
///
/// A `QueryRequest` is one client question: "with honest benefit B,
/// cheating gain F, and an auditing device running at frequency f with
/// penalty P over n parties, is honesty dominant — and if not, what
/// would make it so?" The `QueryAnswer` carries the Section 4 regime
/// classification plus the three actionable thresholds (minimum
/// deterring penalty, minimum deterring frequency, zero-penalty
/// frequency), each bit-identical to the offline
/// `core::MechanismDesigner` analytic layer.
///
/// \par Usage
/// \code
///   QueryRequest request{10, 25, 0.3, 40, 2};
///   QueryAnswer answer = AnswerQuery(request).value();
///   if (answer.honest_is_dominant) { /* device is transformative */ }
/// \endcode

/// \namespace hsis::serve
/// \brief The request-serving tier: online mechanism-design queries
/// over the allocation-free kernels, with batch and memoized front
/// ends.

namespace hsis::serve {

/// One mechanism-design query: the symmetric audited sharing game of
/// the paper at a concrete operating point. `n` records the number of
/// sharing parties; with the paper's constant per-round cheating gain
/// the deterrence thresholds are n-independent (Proposition 1 with a
/// constant gain function collapses to the two-player bounds), so `n`
/// informs the derivation text, not the numerics.
struct QueryRequest {
  double benefit = 0;     ///< Honest-sharing benefit B (>= 0).
  double cheat_gain = 0;  ///< Gross cheating gain F (> B).
  double frequency = 0;   ///< Audit frequency f in [0, 1].
  double penalty = 0;     ///< Penalty P >= 0 charged on detection.
  int n = 2;              ///< Number of sharing parties (>= 2).
};

/// Checks a request is servable: finite parameters, B >= 0, F > B,
/// f in [0, 1], P >= 0, n >= 2. InvalidArgument messages name the
/// offending field.
Status ValidateQueryRequest(const QueryRequest& request);

/// The served answer at one operating point. Every field is
/// bit-identical to the `core::MechanismDesigner` analytic layer
/// (pinned by the cross-validation suite in tests/serve).
struct QueryAnswer {
  /// Section 4 regime of the device at (f, P).
  game::DeviceEffectiveness effectiveness =
      game::DeviceEffectiveness::kIneffective;
  /// Whether honesty is a (weakly) dominant strategy at (f, P) — the
  /// transformative regime.
  bool honest_is_dominant = false;
  /// Minimum deterring frequency at penalty P, clamped to [0, 1].
  double min_frequency = 0;
  /// Minimum deterring penalty at frequency f; +infinity when f == 0
  /// (an unaudited player cannot be deterred by any finite penalty).
  double min_penalty = 0;
  /// Frequency above which no penalty is needed at all.
  double zero_penalty_frequency = 0;
};

/// The single-query analytic path: validates, then answers through the
/// `core::MechanismDesigner` layer itself, so bit-equality with the
/// offline designer holds by construction. `margin` is the safety
/// margin added above the exact thresholds (designer default 1e-6).
Result<QueryAnswer> AnswerQuery(const QueryRequest& request,
                                double margin = 1e-6);

/// Converts one slot of a kernel batch answer into the served form
/// (`honest_is_dominant` derived from the effectiveness).
QueryAnswer AnswerFromKernel(const game::kernel::DeviceAnswerKernel& kernel);

}  // namespace hsis::serve

#endif  // HSIS_SERVE_QUERY_H_

#include "serve/query_service.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/simd_dispatch.h"
#include "game/kernel.h"

namespace hsis::serve {

namespace {

/// The serving tier's output contract: no path may emit a frequency
/// outside [0, 1]. Violations are designer/kernel bugs, not client
/// errors, so they abort instead of returning a status.
void CheckServedFrequencies(const QueryAnswer& answer) {
  HSIS_CHECK(answer.min_frequency >= 0.0 && answer.min_frequency <= 1.0);
  HSIS_CHECK(answer.zero_penalty_frequency >= 0.0 &&
             answer.zero_penalty_frequency <= 1.0);
}

}  // namespace

Result<QueryService> QueryService::Create(const QueryServiceConfig& config) {
  if (!std::isfinite(config.margin)) {
    return Status::InvalidArgument("query service: margin must be finite");
  }
  if (config.threads < 0) {
    return Status::InvalidArgument(
        "query service: threads must be non-negative");
  }
  // Resolve the kernel SIMD lane once at startup so a bad
  // HSIS_SIMD_LANE override fails service creation with the
  // dispatcher's typed error instead of failing the first batch a
  // client submits.
  HSIS_RETURN_IF_ERROR(common::ActiveSimdLane().status());
  HSIS_ASSIGN_OR_RETURN(AnswerCache cache, AnswerCache::Create(config.cache));
  return QueryService(config.margin, config.threads, std::move(cache));
}

QueryService::QueryService(double margin, int threads, AnswerCache cache)
    : margin_(margin),
      threads_(threads),
      cache_(std::make_unique<AnswerCache>(std::move(cache))) {}

Result<QueryAnswer> QueryService::Answer(const QueryRequest& request) const {
  HSIS_ASSIGN_OR_RETURN(QueryAnswer answer, AnswerQuery(request, margin_));
  CheckServedFrequencies(answer);
  return answer;
}

Result<Derivation> QueryService::Explain(const QueryRequest& request) const {
  HSIS_ASSIGN_OR_RETURN(QueryAnswer answer, Answer(request));
  return BuildDerivation(request, answer, margin_);
}

Status QueryService::AnswerBatch(const QueryRequest* requests, size_t count,
                                 game::kernel::DeviceAnswersSoA& out) const {
  if (requests == nullptr && count > 0) {
    return Status::InvalidArgument("query service: null request array");
  }
  game::kernel::DevicePointsSoA points;
  points.Resize(count);
  for (size_t i = 0; i < count; ++i) {
    HSIS_RETURN_IF_ERROR(ValidateQueryRequest(requests[i]));
    points.benefit[i] = requests[i].benefit;
    points.cheat_gain[i] = requests[i].cheat_gain;
    points.frequency[i] = requests[i].frequency;
    points.penalty[i] = requests[i].penalty;
  }
  HSIS_RETURN_IF_ERROR(game::kernel::EvalDevicePoints(
      points, margin_, /*begin=*/0, count, out, threads_));
  for (size_t i = 0; i < count; ++i) {
    HSIS_CHECK(out.min_frequency[i] >= 0.0 && out.min_frequency[i] <= 1.0);
    HSIS_CHECK(out.zero_penalty_frequency[i] >= 0.0 &&
               out.zero_penalty_frequency[i] <= 1.0);
  }
  return Status::OK();
}

Result<QueryAnswer> QueryService::AnswerCached(const QueryRequest& request) {
  HSIS_RETURN_IF_ERROR(ValidateQueryRequest(request));
  const QueryKey key = MakeQueryKey(request, cache_->quantum());
  QueryAnswer answer;
  if (cache_->Lookup(key, &answer)) {
    return answer;
  }
  // Miss: compute at the class's canonical point so every request that
  // maps to this key serves the same bytes, then memoize.
  const QueryRequest canonical = SnapRequest(request, cache_->quantum());
  const game::kernel::DeviceAnswerKernel kernel = game::kernel::DeviceAnswerAt(
      canonical.benefit, canonical.cheat_gain, canonical.frequency,
      canonical.penalty, margin_);
  answer = AnswerFromKernel(kernel);
  CheckServedFrequencies(answer);
  cache_->Insert(key, answer);
  return answer;
}

Status QueryService::AnswerBatchCached(const QueryRequest* requests,
                                       size_t count,
                                       game::kernel::DeviceAnswersSoA& out) {
  if (requests == nullptr && count > 0) {
    return Status::InvalidArgument("query service: null request array");
  }
  out.Resize(count);
  for (size_t i = 0; i < count; ++i) {
    HSIS_ASSIGN_OR_RETURN(QueryAnswer answer, AnswerCached(requests[i]));
    out.effectiveness[i] = answer.effectiveness;
    out.min_frequency[i] = answer.min_frequency;
    out.min_penalty[i] = answer.min_penalty;
    out.zero_penalty_frequency[i] = answer.zero_penalty_frequency;
  }
  return Status::OK();
}

}  // namespace hsis::serve

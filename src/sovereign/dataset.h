#ifndef HSIS_SOVEREIGN_DATASET_H_
#define HSIS_SOVEREIGN_DATASET_H_

#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"

namespace hsis::sovereign {

/// One database tuple. The protocol layer treats tuples as opaque byte
/// strings; the relational-operator layer adds a key/payload convention
/// on top (see relational_ops.h).
struct Tuple {
  Bytes value;

  Tuple() = default;
  explicit Tuple(Bytes v) : value(std::move(v)) {}

  static Tuple FromString(std::string_view s) { return Tuple(ToBytes(s)); }
  std::string ToString() const { return BytesToString(value); }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.value == b.value;
  }
  friend auto operator<=>(const Tuple& a, const Tuple& b) {
    return a.value <=> b.value;
  }
};

/// A multiset of tuples — one party's database D_i.
///
/// Stored in canonical (sorted) order so that equality, hashing and the
/// exact set operations used as protocol ground truth are well defined.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Tuple> tuples);

  static Dataset FromStrings(std::initializer_list<std::string_view> values);
  static Dataset FromStrings(const std::vector<std::string>& values);

  void Add(Tuple tuple);
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Tuples in canonical order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  bool Contains(const Tuple& tuple) const;

  /// Number of occurrences of `tuple`.
  size_t Count(const Tuple& tuple) const;

  /// Exact multiset operations (protocol ground truth).
  Dataset Intersect(const Dataset& other) const;
  Dataset Union(const Dataset& other) const;
  Dataset Difference(const Dataset& other) const;

  /// Removes `n` uniformly-chosen tuples (withholding cheat). Removes
  /// everything if n >= size.
  void RemoveRandom(size_t n, Rng& rng);

  friend bool operator==(const Dataset& a, const Dataset& b) {
    return a.tuples_ == b.tuples_;
  }

 private:
  std::vector<Tuple> tuples_;  // kept sorted
};

/// Read-only chunked cursor over a `Dataset`: the streamed protocol
/// pipeline's input stage. Yields the dataset's canonical tuple order as
/// fixed-size frames of at most `chunk_size` tuples, so tuples are
/// hashed-to-group, encrypted, and shipped frame by frame instead of as
/// whole-set vectors. Indexed access (rather than a single forward
/// iterator) lets parallel stages address chunks independently.
///
/// The cursor borrows the dataset; the dataset must outlive it and stay
/// unmodified while the cursor is in use.
class DatasetSource {
 public:
  /// `chunk_size` must be >= 1 (callers validate via
  /// `ValidateIntersectionOptions`; a zero chunk size is clamped to 1
  /// here so the cursor itself is total).
  DatasetSource(const Dataset& dataset, size_t chunk_size);

  /// Total tuples across all chunks.
  size_t total() const { return dataset_->size(); }

  /// Frame size in tuples (the last chunk may be smaller).
  size_t chunk_size() const { return chunk_size_; }

  /// Number of chunks: ceil(total / chunk_size); 0 for an empty dataset.
  size_t chunk_count() const;

  /// Tuples of chunk `index` (in [0, chunk_count())), canonical order.
  std::span<const Tuple> Chunk(size_t index) const;

 private:
  const Dataset* dataset_;
  size_t chunk_size_;
};

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_DATASET_H_

#ifndef HSIS_SOVEREIGN_DATASET_H_
#define HSIS_SOVEREIGN_DATASET_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"

namespace hsis::sovereign {

/// One database tuple. The protocol layer treats tuples as opaque byte
/// strings; the relational-operator layer adds a key/payload convention
/// on top (see relational_ops.h).
struct Tuple {
  Bytes value;

  Tuple() = default;
  explicit Tuple(Bytes v) : value(std::move(v)) {}

  static Tuple FromString(std::string_view s) { return Tuple(ToBytes(s)); }
  std::string ToString() const { return BytesToString(value); }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.value == b.value;
  }
  friend auto operator<=>(const Tuple& a, const Tuple& b) {
    return a.value <=> b.value;
  }
};

/// A multiset of tuples — one party's database D_i.
///
/// Stored in canonical (sorted) order so that equality, hashing and the
/// exact set operations used as protocol ground truth are well defined.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Tuple> tuples);

  static Dataset FromStrings(std::initializer_list<std::string_view> values);
  static Dataset FromStrings(const std::vector<std::string>& values);

  void Add(Tuple tuple);
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Tuples in canonical order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  bool Contains(const Tuple& tuple) const;

  /// Number of occurrences of `tuple`.
  size_t Count(const Tuple& tuple) const;

  /// Exact multiset operations (protocol ground truth).
  Dataset Intersect(const Dataset& other) const;
  Dataset Union(const Dataset& other) const;
  Dataset Difference(const Dataset& other) const;

  /// Removes `n` uniformly-chosen tuples (withholding cheat). Removes
  /// everything if n >= size.
  void RemoveRandom(size_t n, Rng& rng);

  friend bool operator==(const Dataset& a, const Dataset& b) {
    return a.tuples_ == b.tuples_;
  }

 private:
  std::vector<Tuple> tuples_;  // kept sorted
};

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_DATASET_H_

#ifndef HSIS_SOVEREIGN_PERTURBATION_DEFENSE_H_
#define HSIS_SOVEREIGN_PERTURBATION_DEFENSE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "crypto/group.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::sovereign {

/// Input-perturbation countermeasure in the spirit of Zhang & Zhao
/// (VLDB 2005), the related work the paper contrasts its approach with:
/// instead of enforcing honesty, the *defender* also alters its input —
/// withholding real tuples (to blunt probes) and adding decoys — and
/// pays for the protection with result accuracy.
///
/// The paper's position: "Our approach is entirely different. We are
/// interested in creating mechanisms so that the participants do not
/// cheat." This module exists to make that comparison quantitative
/// (see bench_perturbation_defense).
struct PerturbationPolicy {
  /// Probability of dropping each genuine tuple from the report.
  double withhold_probability = 0.0;
  /// Number of fabricated decoy tuples added to the report.
  size_t decoy_count = 0;
};

/// Applies the policy to `data` (decoys are fresh synthetic values that
/// exist in no one's database).
Dataset PerturbDataset(const Dataset& data, const PerturbationPolicy& policy,
                       Rng& rng);

/// Outcome of one defended exchange against a probing adversary.
struct PerturbationEvaluation {
  /// |reported result ∩ true intersection| / |true intersection| — the
  /// accuracy the defender sacrifices (1.0 = exact).
  double intersection_recall = 1.0;
  /// Fraction of the adversary's targeted probes that still hit.
  double probe_hit_rate = 0.0;
  /// Sizes, for reporting.
  size_t true_intersection_size = 0;
  size_t achieved_intersection_size = 0;
  size_t probes = 0;
  size_t probe_hits = 0;
};

/// Runs the sovereign intersection between a defender applying `policy`
/// and an adversary who reports its true data *plus* `probe_values`
/// (guesses about the defender's private tuples), then scores the
/// trade-off. The defender is party A.
Result<PerturbationEvaluation> EvaluatePerturbationDefense(
    const Dataset& defender_data, const Dataset& adversary_data,
    const std::vector<std::string>& probe_values,
    const PerturbationPolicy& policy, const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng);

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_PERTURBATION_DEFENSE_H_

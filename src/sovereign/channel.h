#ifndef HSIS_SOVEREIGN_CHANNEL_H_
#define HSIS_SOVEREIGN_CHANNEL_H_

#include <deque>
#include <memory>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "crypto/authenticated_cipher.h"

namespace hsis::sovereign {

/// One end of a bidirectional authenticated-encrypted channel.
///
/// This models the paper's communication requirement: every message
/// between parties (and between parties and the auditing device) travels
/// with "both message privacy and message authenticity". Messages are
/// sealed with the channel's AEAD under a per-direction sequence number
/// carried as associated data, so replay, reorder, and tamper are all
/// detected at `Receive`.
///
/// The transport is an in-process queue (the library simulates the
/// network); the byte counters expose the wire cost for benchmarks.
class ChannelEndpoint {
 public:
  /// Encrypts and enqueues `plaintext` for the peer.
  Status Send(const Bytes& plaintext);

  /// Dequeues, verifies, and decrypts the next message. Fails with
  /// `FailedPrecondition` when no message is pending and
  /// `IntegrityViolation` on any tamper or replay.
  Result<Bytes> Receive();

  /// True iff a message is waiting.
  bool HasPending() const;

  /// Total sealed bytes this endpoint has put on the wire.
  size_t bytes_sent() const { return bytes_sent_; }

  /// TEST ONLY: flips one bit of the oldest queued inbound message to
  /// exercise tamper detection end to end.
  void CorruptNextInboundForTest();

 private:
  friend class SecureChannel;

  struct Shared;
  ChannelEndpoint(std::shared_ptr<Shared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  std::shared_ptr<Shared> shared_;
  int side_;  // 0 or 1
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  size_t bytes_sent_ = 0;
};

/// Factory for channel endpoint pairs sharing a session key.
class SecureChannel {
 public:
  /// Creates a connected pair. The 32-byte `master_key` models the
  /// session secret the parties established out of band; `rng` drives
  /// nonce generation.
  static Result<std::pair<ChannelEndpoint, ChannelEndpoint>> CreatePair(
      const Bytes& master_key, Rng& rng);
};

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_CHANNEL_H_

#ifndef HSIS_SOVEREIGN_INTERSECTION_PROTOCOL_H_
#define HSIS_SOVEREIGN_INTERSECTION_PROTOCOL_H_

#include "common/random.h"
#include "common/result.h"
#include "crypto/group.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::sovereign {

/// Protocol-level fault injection for robustness testing: party B is
/// made to deviate from the protocol in controlled ways, and the tests
/// assert that party A detects the deviation (ProtocolViolation) rather
/// than computing a wrong result. All flags default to off.
struct FaultInjection {
  /// B omits one (value, double-encrypted) pair from its phase-3 reply.
  bool omit_one_reply_pair = false;
  /// B swaps the double-encryptions of two reply pairs (a targeted
  /// attempt to misreport which of A's tuples matched).
  bool swap_reply_pairs = false;
  /// B claims a wrong element count in a list header.
  bool corrupt_reply_count = false;
  /// B sends a malformed (wrong-type) message in phase 3.
  bool wrong_message_type = false;
  /// A bit of B's reply is flipped *on the wire* (a tampering network,
  /// not a deviating peer): the channel AEAD must reject the frame with
  /// IntegrityViolation before any payload reaches the parser.
  bool corrupt_reply_frame_bit = false;

  bool AnyActive() const {
    return omit_one_reply_pair || swap_reply_pairs || corrupt_reply_count ||
           wrong_message_type || corrupt_reply_frame_bit;
  }
};

/// Default frame size (tuples per wire chunk) of the streamed path.
inline constexpr size_t kDefaultIntersectionChunkSize = 4096;

/// Options for a sovereign set-intersection run.
struct IntersectionOptions {
  /// When set, run the intersection-*size* variant (the paper's footnote
  /// 3): parties learn |D_A ∩ D_B| but not which tuples are common.
  bool size_only = false;
  /// Streamed-path frame size in tuples (`RunTwoPartyIntersectionStreamed`):
  /// each party hashes, encrypts, shuffles, and ships its set in frames
  /// of at most this many tuples. Must be >= 1 there; the legacy
  /// whole-set `RunTwoPartyIntersection` ignores it.
  size_t chunk_size = kDefaultIntersectionChunkSize;
  /// Worker threads for the streamed path's parallel modexp stages
  /// (crypto/parallel_modexp.h): 0 = hardware concurrency, negative is
  /// InvalidArgument — the `ParseThreadsValue` flag contract. Results
  /// are bit-identical for every thread count. Ignored by the legacy
  /// path.
  int threads = 1;
  /// Streamed-path crypto/wire overlap: number of encrypted frames that
  /// may be in flight between the modexp stage and the AEAD/channel
  /// stage. 1 (the default) is the serial hand-off; depth >= 2 runs the
  /// encryption of chunk k+1 on a producer thread while chunk k is being
  /// sealed and shipped, buffering at most `pipeline_depth` finished
  /// frames. Frames are produced and sent strictly in order, so the wire
  /// transcript and the outcome are byte-identical at every depth. Must
  /// be >= 1 (validated like `chunk_size`); the legacy path ignores it.
  size_t pipeline_depth = 1;
  /// Robustness-testing hooks (see FaultInjection).
  FaultInjection fault_injection;
};

/// Validates the streamed-path knobs: `chunk_size == 0`,
/// `pipeline_depth == 0`, and `threads < 0` are InvalidArgument,
/// mirroring the `ParseThreadsValue` / `ParseShardsValue` flag contract
/// (0 threads = hardware concurrency).
/// `RunTwoPartyIntersectionStreamed` calls this before touching the
/// channel.
Status ValidateIntersectionOptions(const IntersectionOptions& options);

/// What one party walks away with after the protocol.
struct IntersectionOutcome {
  /// The common tuples, expressed as this party's own tuples (empty in
  /// size-only mode).
  Dataset intersection;

  /// |D̂_A ∩ D̂_B| (multiset semantics) — also filled in full mode.
  size_t intersection_size = 0;

  /// Serialized incremental multiset hash of the dataset this party
  /// reported — the commitment H_i(D̂_i) of Section 6 that the auditing
  /// device later checks against its accumulated HV_i.
  Bytes own_commitment;

  /// The peer's commitment H_j(D̂_j), as received over the channel.
  Bytes peer_commitment;

  /// Sealed bytes this party placed on the wire.
  size_t bytes_sent = 0;
};

/// Runs the Agrawal–Evfimievski–Srikant commutative-encryption set
/// intersection between two parties reporting `reported_a` and
/// `reported_b`, entirely over authenticated-encrypted channels:
///
///   1. Both parties exchange multiset-hash commitments of their
///      reported datasets (the Section 6 extension of the protocol).
///   2. Each hashes its tuples into the group and sends the singly
///      encrypted, shuffled set {E_i(h(t))}.
///   3. Each encrypts the peer's set under its own key and returns it —
///      paired with the input values in full mode (so the peer can map
///      matches back to its tuples), shuffled and unpaired in size-only
///      mode.
///   4. Each party intersects {E_j(E_i(h(own)))} with {E_i(E_j(h(peer)))},
///      equal by commutativity exactly on the common tuples.
///
/// Neither party's cleartext tuples ever cross the channel; each learns
/// only the result (plus the upper bound |D̂_j| inherent to the
/// protocol). Returns the outcome for (party A, party B).
Result<std::pair<IntersectionOutcome, IntersectionOutcome>>
RunTwoPartyIntersection(const Dataset& reported_a, const Dataset& reported_b,
                        const crypto::PrimeGroup& group,
                        const crypto::MultisetHashFamily& commitment_family,
                        Rng& rng, const IntersectionOptions& options = {});

/// The streamed/batched pipeline over the same protocol: datasets are
/// iterated in fixed-size frames (`DatasetSource`), each frame is
/// hashed-to-group and encrypted by the parallel modexp stage
/// (crypto/parallel_modexp.h, `options.threads` workers), shuffled
/// frame-locally under a per-chunk `Rng::ForIndex` stream, and shipped
/// as a chunk-framed element stream (sovereign/stream_frame.h) that the
/// receiver reassembles and double-encrypts chunk by chunk. Commitments
/// accumulate incrementally per chunk — bit-identical to the whole-set
/// hash by the multiset hash's incrementality.
///
/// The differential contract against the legacy whole-set path (pinned
/// by tests/sovereign/streamed_protocol_test.cc): for every chunk size
/// and thread count, `intersection`, `intersection_size`,
/// `own_commitment`, and `peer_commitment` are byte-identical to
/// `RunTwoPartyIntersection` on the same inputs, and `bytes_sent` is
/// identical across thread counts. A single-chunk stream (`chunk_size
/// >= |D|` for both parties) is wire-size-identical to the legacy path,
/// so `bytes_sent` matches it exactly; smaller chunks add exactly 10
/// header bytes plus one AEAD seal per continuation frame.
///
/// Privacy note: the whole-set shuffle becomes frame-local, so the
/// hiding set for "which transmitted ciphertext is which tuple" narrows
/// from the dataset to the frame; pick `chunk_size` with that in mind
/// (the default 4096 keeps the hiding set large while bounding frame
/// memory).
Result<std::pair<IntersectionOutcome, IntersectionOutcome>>
RunTwoPartyIntersectionStreamed(
    const Dataset& reported_a, const Dataset& reported_b,
    const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng,
    const IntersectionOptions& options = {});

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_INTERSECTION_PROTOCOL_H_

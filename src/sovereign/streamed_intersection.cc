// The streamed/batched two-party intersection pipeline
// (RunTwoPartyIntersectionStreamed, declared in intersection_protocol.h).
//
// Same protocol, same four phases, but every element list travels as a
// chunk-framed stream (sovereign/stream_frame.h) and every per-tuple
// modexp runs through the parallel batch stages of
// crypto/parallel_modexp.h. Shuffles draw from per-chunk
// `Rng::ForIndex` streams — a pure function of (seed, party, phase,
// chunk index) — so the wire transcript is bit-identical at every
// thread count, and the outcome is bit-identical to the legacy
// whole-set path at every chunk size (the differential contract of
// tests/sovereign/streamed_protocol_test.cc).

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <thread>

#include "common/parallel.h"
#include "crypto/commutative_cipher.h"
#include "crypto/parallel_modexp.h"
#include "sovereign/channel.h"
#include "sovereign/intersection_protocol.h"
#include "sovereign/stream_frame.h"

namespace hsis::sovereign {

namespace {

// Shuffle-stream namespaces: Rng::ForIndex(seed, (purpose << 32) | chunk)
// gives every (party, phase, chunk) triple an independent deterministic
// stream, so frame-local shuffles never depend on thread count or on
// each other.
constexpr uint64_t kShuffleSendA = 0;
constexpr uint64_t kShuffleSendB = 1;
constexpr uint64_t kShuffleReplyA = 2;
constexpr uint64_t kShuffleReplyB = 3;

Rng ChunkRng(uint64_t seed, uint64_t purpose, uint64_t chunk) {
  return Rng::ForIndex(seed, (purpose << 32) | chunk);
}

/// Per-party pipeline state.
struct StreamParticipant {
  StreamParticipant(const Dataset& reported, ChannelEndpoint endpoint,
                    crypto::CommutativeCipher cipher_in, size_t chunk_size)
      : data(&reported),
        source(reported, chunk_size),
        channel(std::move(endpoint)),
        cipher(std::move(cipher_in)) {}

  const Dataset* data;
  DatasetSource source;
  ChannelEndpoint channel;
  crypto::CommutativeCipher cipher;

  // E_self(h(t)), aligned with data->tuples().
  std::vector<U256> self_encrypted;
  // Multiset {E_self(E_peer(h(peer tuple)))}, accumulated frame by frame.
  std::map<U256, size_t> peer_counts;

  Bytes own_commitment;
  Bytes peer_commitment;
};

Status SendCommitmentStreamed(StreamParticipant& p,
                              const crypto::MultisetHashFamily& family) {
  // Incremental accumulation, chunk by chunk: equal to the whole-set
  // hash by the multiset hash's incrementality (pinned by
  // tests/sovereign/commitment_stream_property_test.cc).
  std::unique_ptr<crypto::MultisetHash> hash = family.NewHash();
  for (size_t c = 0; c < p.source.chunk_count(); ++c) {
    for (const Tuple& t : p.source.Chunk(c)) hash->Add(t.value);
  }
  p.own_commitment = hash->Serialize();
  Bytes msg;
  msg.push_back(kMsgCommitment);
  Append(msg, p.own_commitment);
  return p.channel.Send(msg);
}

Status ReceiveCommitmentStreamed(StreamParticipant& p) {
  Result<Bytes> msg = p.channel.Receive();
  HSIS_RETURN_IF_ERROR(msg.status());
  if (msg->empty() || (*msg)[0] != kMsgCommitment) {
    return Status::ProtocolViolation("expected commitment message");
  }
  p.peer_commitment.assign(msg->begin() + 1, msg->end());
  return Status::OK();
}

/// Receives the next frame of an in-flight stream; a drained channel
/// mid-stream is a protocol violation (the peer promised more chunks),
/// and channel-layer errors (tamper -> IntegrityViolation) pass through.
Status ReceiveFrame(ChannelEndpoint& channel, Bytes* frame) {
  if (!channel.HasPending()) {
    return Status::ProtocolViolation("element stream ended early");
  }
  Result<Bytes> msg = channel.Receive();
  HSIS_RETURN_IF_ERROR(msg.status());
  *frame = std::move(*msg);
  return Status::OK();
}

/// The crypto stage for one chunk of phase 2: hash + encrypt through
/// the parallel modexp stage into the participant's aligned
/// `self_encrypted` slots, shuffle a frame-local copy, serialize. Pure
/// function of (chunk index, seed, purpose) given the dataset and
/// cipher, which is why the pipelined and serial schedules below emit
/// identical wire bytes.
Bytes BuildEncryptedFrame(StreamParticipant& p, size_t c, int threads,
                          uint64_t seed, uint64_t purpose) {
  std::span<const Tuple> tuples = p.source.Chunk(c);
  std::span<U256> slots(p.self_encrypted.data() + c * p.source.chunk_size(),
                        tuples.size());
  crypto::HashEncryptBatch(
      p.cipher, tuples.size(),
      [tuples](size_t i) -> const Bytes& { return tuples[i].value; }, slots,
      threads);
  std::vector<U256> frame(slots.begin(), slots.end());
  Rng shuffle_rng = ChunkRng(seed, purpose, c);
  shuffle_rng.Shuffle(frame);
  return c == 0 ? SerializeFirstFrame(kMsgEncryptedSet,
                                      static_cast<uint32_t>(p.source.total()),
                                      frame)
                : SerializeContinuationFrame(kMsgEncryptedSet,
                                             static_cast<uint32_t>(c), frame);
}

/// Phase 2, send side: hash + encrypt each chunk through the parallel
/// modexp stage, shuffle it frame-locally, ship it. The aligned
/// `self_encrypted` copy is kept for phase 4.
///
/// With `depth` >= 2 the crypto stage runs on a producer thread that
/// stays up to `depth` finished frames ahead, so the ParallelFor modexp
/// workers for chunk k+1 overlap the AEAD seal + channel transfer of
/// chunk k on the caller thread. The hand-off is a bounded in-order
/// queue: frames enter in chunk order, the caller seals and sends them
/// in chunk order, so the transcript is byte-identical to the serial
/// schedule (`depth` only bounds how far the producer may run ahead).
Status SendEncryptedSetStreamed(StreamParticipant& p, int threads,
                                uint64_t seed, uint64_t purpose,
                                size_t depth) {
  const size_t n = p.source.total();
  p.self_encrypted.resize(n);
  const size_t chunks = p.source.chunk_count();
  if (chunks == 0) {
    return p.channel.Send(SerializeFirstFrame(
        kMsgEncryptedSet, 0, std::vector<U256>()));
  }
  if (depth <= 1 || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      HSIS_RETURN_IF_ERROR(
          p.channel.Send(BuildEncryptedFrame(p, c, threads, seed, purpose)));
    }
    return Status::OK();
  }

  std::mutex mu;
  std::condition_variable room_freed;   // consumer -> producer
  std::condition_variable frame_ready;  // producer -> consumer
  std::deque<Bytes> ready;              // finished frames, chunk order
  bool abort = false;                   // consumer hit a send error

  std::thread producer([&] {
    for (size_t c = 0; c < chunks; ++c) {
      Bytes frame = BuildEncryptedFrame(p, c, threads, seed, purpose);
      std::unique_lock<std::mutex> lock(mu);
      room_freed.wait(lock, [&] { return ready.size() < depth || abort; });
      if (abort) return;
      ready.push_back(std::move(frame));
      frame_ready.notify_one();
    }
  });

  Status status = Status::OK();
  for (size_t c = 0; c < chunks; ++c) {
    Bytes wire;
    {
      std::unique_lock<std::mutex> lock(mu);
      frame_ready.wait(lock, [&] { return !ready.empty(); });
      wire = std::move(ready.front());
      ready.pop_front();
      room_freed.notify_one();
    }
    status = p.channel.Send(wire);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      abort = true;
      room_freed.notify_one();
      break;
    }
  }
  // The join is also the memory barrier that publishes the producer's
  // `self_encrypted` writes to the caller before phase 4 reads them.
  producer.join();
  return status;
}

/// Phase 3: consumes the peer's singly-encrypted stream frame by frame,
/// double-encrypts each window through the parallel batch stage, records
/// the double-encrypted multiset, and streams the reply back — (v, E(v))
/// pairs in full mode, frame-locally shuffled bare values in size-only
/// mode. `faults` (robustness testing) makes this participant deviate:
/// the faulted reply is buffered flat, mutated with the legacy path's
/// exact semantics, and re-framed.
Status EncryptPeerSetStreamed(StreamParticipant& p, bool size_only,
                              int threads, size_t chunk_size, uint64_t seed,
                              uint64_t reply_purpose,
                              const FaultInjection& faults = {}) {
  ElementStreamReader reader(kMsgEncryptedSet);
  const bool buffer_reply = !size_only && faults.AnyActive();
  std::vector<U256> buffered;
  uint64_t frame_no = 0;
  do {
    Bytes frame;
    HSIS_RETURN_IF_ERROR(ReceiveFrame(p.channel, &frame));
    HSIS_RETURN_IF_ERROR(reader.Consume(frame));
    const size_t begin = reader.last_frame_begin();
    const size_t count = reader.elements().size() - begin;
    std::span<const U256> window(reader.elements().data() + begin, count);
    std::vector<U256> dd(count);
    crypto::EncryptBatch(p.cipher, window, dd, threads);
    for (const U256& v : dd) p.peer_counts[v]++;

    std::vector<U256> reply;
    if (size_only) {
      reply = dd;
      Rng shuffle_rng = ChunkRng(seed, reply_purpose, frame_no);
      shuffle_rng.Shuffle(reply);
    } else {
      reply.reserve(count * 2);
      for (size_t i = 0; i < count; ++i) {
        reply.push_back(window[i]);
        reply.push_back(dd[i]);
      }
    }
    if (buffer_reply) {
      buffered.insert(buffered.end(), reply.begin(), reply.end());
    } else {
      const uint32_t reply_total = static_cast<uint32_t>(
          size_only ? reader.total() : reader.total() * 2);
      Bytes wire =
          frame_no == 0
              ? SerializeFirstFrame(size_only ? kMsgDoubleEncryptedSet
                                              : kMsgDoubleEncryptedPairs,
                                    reply_total, reply)
              : SerializeContinuationFrame(
                    size_only ? kMsgDoubleEncryptedSet
                              : kMsgDoubleEncryptedPairs,
                    static_cast<uint32_t>(frame_no), reply);
      HSIS_RETURN_IF_ERROR(p.channel.Send(wire));
    }
    ++frame_no;
  } while (!reader.complete());

  if (!buffer_reply) return Status::OK();

  // Fault injection, legacy semantics on the flat pair list.
  if (faults.omit_one_reply_pair && buffered.size() >= 2) {
    buffered.pop_back();
    buffered.pop_back();
  }
  if (faults.swap_reply_pairs && buffered.size() >= 4) {
    std::swap(buffered[1], buffered[3]);  // swap the double-encryptions only
  }
  const uint8_t tag = faults.wrong_message_type ? kMsgEncryptedSet
                                                : kMsgDoubleEncryptedPairs;
  const size_t per_frame = chunk_size * 2;  // whole pairs per frame
  uint32_t index = 0;
  size_t sent = 0;
  do {
    const size_t count = std::min(per_frame, buffered.size() - sent);
    std::vector<U256> frame(buffered.begin() + static_cast<ptrdiff_t>(sent),
                            buffered.begin() +
                                static_cast<ptrdiff_t>(sent + count));
    Bytes wire =
        index == 0
            ? SerializeFirstFrame(tag, static_cast<uint32_t>(buffered.size()),
                                  frame)
            : SerializeContinuationFrame(tag, index, frame);
    if (faults.corrupt_reply_count && index == 0 && buffered.size() >= 2) {
      AppendUint32BE(wire, 0);  // garbage length suffix -> malformed frame
    }
    HSIS_RETURN_IF_ERROR(p.channel.Send(wire));
    sent += count;
    ++index;
  } while (sent < buffered.size());
  return Status::OK();
}

/// Phase 4: consumes the peer's reply stream about our own set and
/// resolves the intersection — identical logic and error taxonomy to
/// the legacy resolve, applied incrementally.
Status ResolveIntersectionStreamed(StreamParticipant& p, bool size_only,
                                   IntersectionOutcome& outcome) {
  const size_t n = p.data->size();

  if (size_only) {
    ElementStreamReader reader(kMsgDoubleEncryptedSet);
    std::map<U256, size_t> remaining = std::move(p.peer_counts);
    size_t matches = 0;
    do {
      Bytes frame;
      HSIS_RETURN_IF_ERROR(ReceiveFrame(p.channel, &frame));
      const bool first = !reader.header_seen();
      HSIS_RETURN_IF_ERROR(reader.Consume(frame));
      if (first && reader.total() != n) {
        return Status::ProtocolViolation(
            "double-encrypted set size mismatch");
      }
      for (size_t i = reader.last_frame_begin(); i < reader.elements().size();
           ++i) {
        auto it = remaining.find(reader.elements()[i]);
        if (it != remaining.end() && it->second > 0) {
          --it->second;
          ++matches;
        }
      }
    } while (!reader.complete());
    outcome.intersection_size = matches;
    return Status::OK();
  }

  ElementStreamReader reader(kMsgDoubleEncryptedPairs);
  // Map E_self(h(t)) -> E_peer(E_self(h(t))), extended per frame over
  // the complete pairs received so far. Duplicate tuples share the same
  // singly-encrypted value and the same double-encrypted value, so a
  // plain map is sufficient.
  std::map<U256, U256> mapping;
  size_t paired = 0;
  do {
    Bytes frame;
    HSIS_RETURN_IF_ERROR(ReceiveFrame(p.channel, &frame));
    const bool first = !reader.header_seen();
    HSIS_RETURN_IF_ERROR(reader.Consume(frame));
    if (first && reader.total() != n * 2) {
      return Status::ProtocolViolation(
          "double-encrypted pair count mismatch");
    }
    const std::vector<U256>& flat = reader.elements();
    for (; paired + 2 <= flat.size(); paired += 2) {
      mapping[flat[paired]] = flat[paired + 1];
    }
  } while (!reader.complete());

  std::vector<U256> own_double_encrypted;
  own_double_encrypted.reserve(n);
  for (const U256& v : p.self_encrypted) {
    auto it = mapping.find(v);
    if (it == mapping.end()) {
      return Status::ProtocolViolation(
          "peer reply omits one of our encrypted values");
    }
    own_double_encrypted.push_back(it->second);
  }

  std::map<U256, size_t> remaining = std::move(p.peer_counts);
  const std::vector<Tuple>& tuples = p.data->tuples();
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto it = remaining.find(own_double_encrypted[i]);
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      outcome.intersection.Add(tuples[i]);
    }
  }
  outcome.intersection_size = outcome.intersection.size();
  return Status::OK();
}

}  // namespace

Result<std::pair<IntersectionOutcome, IntersectionOutcome>>
RunTwoPartyIntersectionStreamed(
    const Dataset& reported_a, const Dataset& reported_b,
    const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng,
    const IntersectionOptions& options) {
  HSIS_RETURN_IF_ERROR(ValidateIntersectionOptions(options));
  if (reported_a.size() > UINT32_MAX / 2 ||
      reported_b.size() > UINT32_MAX / 2) {
    return Status::InvalidArgument(
        "dataset exceeds the 32-bit element counts of the wire format");
  }
  const int threads = common::ResolveThreadCount(options.threads);

  // Session setup: the same shared-stream draw order as the legacy path.
  Bytes session_key = rng.RandomBytes(32);
  Result<std::pair<ChannelEndpoint, ChannelEndpoint>> channel =
      SecureChannel::CreatePair(session_key, rng);
  HSIS_RETURN_IF_ERROR(channel.status());
  Result<crypto::CommutativeCipher> cipher_a =
      crypto::CommutativeCipher::Create(group, rng);
  HSIS_RETURN_IF_ERROR(cipher_a.status());
  Result<crypto::CommutativeCipher> cipher_b =
      crypto::CommutativeCipher::Create(group, rng);
  HSIS_RETURN_IF_ERROR(cipher_b.status());
  // One seed spawns every frame-local shuffle stream (see ChunkRng).
  const uint64_t shuffle_seed = rng.NextUint64();

  StreamParticipant a(reported_a, std::move(channel->first),
                      std::move(*cipher_a), options.chunk_size);
  StreamParticipant b(reported_b, std::move(channel->second),
                      std::move(*cipher_b), options.chunk_size);

  // Phase 1: commitments, accumulated incrementally per chunk.
  HSIS_RETURN_IF_ERROR(SendCommitmentStreamed(a, commitment_family));
  HSIS_RETURN_IF_ERROR(SendCommitmentStreamed(b, commitment_family));
  HSIS_RETURN_IF_ERROR(ReceiveCommitmentStreamed(a));
  HSIS_RETURN_IF_ERROR(ReceiveCommitmentStreamed(b));

  // Phase 2: chunk-framed singly-encrypted streams, with the crypto
  // stage optionally pipelined `pipeline_depth` frames ahead of the
  // wire stage.
  HSIS_RETURN_IF_ERROR(SendEncryptedSetStreamed(
      a, threads, shuffle_seed, kShuffleSendA, options.pipeline_depth));
  HSIS_RETURN_IF_ERROR(SendEncryptedSetStreamed(
      b, threads, shuffle_seed, kShuffleSendB, options.pipeline_depth));

  // Phase 3: each double-encrypts the peer's stream chunk by chunk.
  // Fault injection (if any) applies to party B's reply about A's set.
  HSIS_RETURN_IF_ERROR(EncryptPeerSetStreamed(a, options.size_only, threads,
                                              options.chunk_size,
                                              shuffle_seed, kShuffleReplyA));
  HSIS_RETURN_IF_ERROR(EncryptPeerSetStreamed(
      b, options.size_only, threads, options.chunk_size, shuffle_seed,
      kShuffleReplyB, options.fault_injection));
  if (options.fault_injection.corrupt_reply_frame_bit) {
    a.channel.CorruptNextInboundForTest();  // tamper with B's reply in flight
  }

  // Phase 4: resolve incrementally.
  IntersectionOutcome out_a, out_b;
  HSIS_RETURN_IF_ERROR(
      ResolveIntersectionStreamed(a, options.size_only, out_a));
  HSIS_RETURN_IF_ERROR(
      ResolveIntersectionStreamed(b, options.size_only, out_b));

  out_a.own_commitment = a.own_commitment;
  out_a.peer_commitment = a.peer_commitment;
  out_a.bytes_sent = a.channel.bytes_sent();
  out_b.own_commitment = b.own_commitment;
  out_b.peer_commitment = b.peer_commitment;
  out_b.bytes_sent = b.channel.bytes_sent();
  return std::make_pair(std::move(out_a), std::move(out_b));
}

}  // namespace hsis::sovereign

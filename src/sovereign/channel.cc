#include "sovereign/channel.h"

namespace hsis::sovereign {

struct ChannelEndpoint::Shared {
  Shared(crypto::AuthenticatedCipher c, Rng r)
      : cipher(std::move(c)), rng(std::move(r)) {}

  crypto::AuthenticatedCipher cipher;
  Rng rng;
  // queues[d]: messages travelling toward side d.
  std::deque<Bytes> queues[2];
};

Status ChannelEndpoint::Send(const Bytes& plaintext) {
  Bytes nonce = shared_->rng.RandomBytes(crypto::AuthenticatedCipher::kNonceSize);
  // AAD binds direction and sequence number: replayed or reordered
  // ciphertexts fail authentication at the receiver.
  Bytes aad;
  aad.push_back(static_cast<uint8_t>(side_));
  AppendUint64BE(aad, send_seq_);
  Result<Bytes> sealed = shared_->cipher.Seal(nonce, plaintext, aad);
  HSIS_RETURN_IF_ERROR(sealed.status());
  ++send_seq_;
  bytes_sent_ += sealed->size();
  shared_->queues[1 - side_].push_back(std::move(*sealed));
  return Status::OK();
}

Result<Bytes> ChannelEndpoint::Receive() {
  std::deque<Bytes>& inbox = shared_->queues[side_];
  if (inbox.empty()) {
    return Status::FailedPrecondition("no message pending on channel");
  }
  Bytes sealed = std::move(inbox.front());
  inbox.pop_front();
  Bytes aad;
  aad.push_back(static_cast<uint8_t>(1 - side_));
  AppendUint64BE(aad, recv_seq_);
  Result<Bytes> opened = shared_->cipher.Open(sealed, aad);
  HSIS_RETURN_IF_ERROR(opened.status());
  ++recv_seq_;
  return opened;
}

bool ChannelEndpoint::HasPending() const {
  return !shared_->queues[side_].empty();
}

void ChannelEndpoint::CorruptNextInboundForTest() {
  std::deque<Bytes>& inbox = shared_->queues[side_];
  if (!inbox.empty() && !inbox.front().empty()) {
    inbox.front()[inbox.front().size() / 2] ^= 0x40;
  }
}

Result<std::pair<ChannelEndpoint, ChannelEndpoint>> SecureChannel::CreatePair(
    const Bytes& master_key, Rng& rng) {
  Result<crypto::AuthenticatedCipher> cipher =
      crypto::AuthenticatedCipher::Create(master_key);
  HSIS_RETURN_IF_ERROR(cipher.status());
  auto shared = std::make_shared<ChannelEndpoint::Shared>(std::move(*cipher),
                                                          rng.Fork());
  return std::make_pair(ChannelEndpoint(shared, 0), ChannelEndpoint(shared, 1));
}

}  // namespace hsis::sovereign

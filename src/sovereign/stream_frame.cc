#include "sovereign/stream_frame.h"

namespace hsis::sovereign {

namespace {

constexpr size_t kElementBytes = 32;
constexpr size_t kFirstHeaderBytes = 5;          // kind + total
constexpr size_t kContinuationHeaderBytes = 10;  // tag + kind + index + count

void AppendElements(Bytes& out, const std::vector<U256>& elements) {
  for (const U256& e : elements) Append(out, e.ToBytesBE());
}

}  // namespace

Bytes SerializeFirstFrame(uint8_t kind, uint32_t total,
                          const std::vector<U256>& elements) {
  Bytes out;
  out.reserve(kFirstHeaderBytes + elements.size() * kElementBytes);
  out.push_back(kind);
  AppendUint32BE(out, total);
  AppendElements(out, elements);
  return out;
}

Bytes SerializeContinuationFrame(uint8_t kind, uint32_t index,
                                 const std::vector<U256>& elements) {
  Bytes out;
  out.reserve(kContinuationHeaderBytes + elements.size() * kElementBytes);
  out.push_back(kMsgStreamChunk);
  out.push_back(kind);
  AppendUint32BE(out, index);
  AppendUint32BE(out, static_cast<uint32_t>(elements.size()));
  AppendElements(out, elements);
  return out;
}

Status ElementStreamReader::Consume(const Bytes& frame) {
  if (failed_) {
    return Status::ProtocolViolation("element stream already failed");
  }
  auto fail = [this](const char* msg) {
    failed_ = true;
    return Status::ProtocolViolation(msg);
  };

  size_t payload_offset;
  size_t count;
  if (!header_seen_) {
    if (frame.size() < kFirstHeaderBytes || frame[0] != kind_) {
      return fail("unexpected message type");
    }
    total_ = ReadUint32BE(frame, 1);
    payload_offset = kFirstHeaderBytes;
    size_t payload = frame.size() - payload_offset;
    if (payload % kElementBytes != 0) {
      return fail("malformed element list");
    }
    count = payload / kElementBytes;
    if (count > total_) {
      return fail("opening frame exceeds declared element total");
    }
    header_seen_ = true;
    elements_.reserve(total_);
  } else {
    if (complete()) {
      return fail("stream chunk after declared element total was reached");
    }
    if (frame.size() < kContinuationHeaderBytes ||
        frame[0] != kMsgStreamChunk) {
      return fail("expected stream continuation chunk");
    }
    if (frame[1] != kind_) {
      return fail("stream chunk kind mismatch");
    }
    uint32_t index = ReadUint32BE(frame, 2);
    if (index != next_index_) {
      return fail("stream chunk out of order");
    }
    count = ReadUint32BE(frame, 6);
    payload_offset = kContinuationHeaderBytes;
    if (count == 0) {
      return fail("empty stream chunk");
    }
    if (frame.size() != payload_offset + count * kElementBytes) {
      return fail("stream chunk count disagrees with frame length");
    }
    if (elements_.size() + count > total_) {
      return fail("stream chunks exceed declared element total");
    }
    ++next_index_;
  }

  last_frame_begin_ = elements_.size();
  for (size_t i = 0; i < count; ++i) {
    Bytes chunk(frame.begin() + static_cast<ptrdiff_t>(payload_offset +
                                                       i * kElementBytes),
                frame.begin() + static_cast<ptrdiff_t>(payload_offset +
                                                       (i + 1) * kElementBytes));
    elements_.push_back(U256::FromBytesBE(chunk));
  }
  return Status::OK();
}

}  // namespace hsis::sovereign

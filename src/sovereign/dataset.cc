#include "sovereign/dataset.h"

#include <algorithm>

namespace hsis::sovereign {

Dataset::Dataset(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {
  std::sort(tuples_.begin(), tuples_.end());
}

Dataset Dataset::FromStrings(std::initializer_list<std::string_view> values) {
  std::vector<Tuple> tuples;
  tuples.reserve(values.size());
  for (std::string_view v : values) tuples.push_back(Tuple::FromString(v));
  return Dataset(std::move(tuples));
}

Dataset Dataset::FromStrings(const std::vector<std::string>& values) {
  std::vector<Tuple> tuples;
  tuples.reserve(values.size());
  for (const std::string& v : values) tuples.push_back(Tuple::FromString(v));
  return Dataset(std::move(tuples));
}

void Dataset::Add(Tuple tuple) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), tuple);
  tuples_.insert(it, std::move(tuple));
}

bool Dataset::Contains(const Tuple& tuple) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), tuple);
}

size_t Dataset::Count(const Tuple& tuple) const {
  auto range = std::equal_range(tuples_.begin(), tuples_.end(), tuple);
  return static_cast<size_t>(range.second - range.first);
}

Dataset Dataset::Intersect(const Dataset& other) const {
  std::vector<Tuple> out;
  std::set_intersection(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                        other.tuples_.end(), std::back_inserter(out));
  return Dataset(std::move(out));
}

Dataset Dataset::Union(const Dataset& other) const {
  std::vector<Tuple> out;
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(out));
  return Dataset(std::move(out));
}

Dataset Dataset::Difference(const Dataset& other) const {
  std::vector<Tuple> out;
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(out));
  return Dataset(std::move(out));
}

DatasetSource::DatasetSource(const Dataset& dataset, size_t chunk_size)
    : dataset_(&dataset), chunk_size_(std::max<size_t>(chunk_size, 1)) {}

size_t DatasetSource::chunk_count() const {
  return (dataset_->size() + chunk_size_ - 1) / chunk_size_;
}

std::span<const Tuple> DatasetSource::Chunk(size_t index) const {
  size_t begin = index * chunk_size_;
  size_t end = std::min(begin + chunk_size_, dataset_->size());
  return std::span<const Tuple>(dataset_->tuples()).subspan(begin, end - begin);
}

void Dataset::RemoveRandom(size_t n, Rng& rng) {
  n = std::min(n, tuples_.size());
  for (size_t k = 0; k < n; ++k) {
    size_t idx = rng.UniformUint64(tuples_.size());
    tuples_.erase(tuples_.begin() + static_cast<ptrdiff_t>(idx));
  }
}

}  // namespace hsis::sovereign

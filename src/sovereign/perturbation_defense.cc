#include "sovereign/perturbation_defense.h"

#include "sovereign/intersection_protocol.h"

namespace hsis::sovereign {

Dataset PerturbDataset(const Dataset& data, const PerturbationPolicy& policy,
                       Rng& rng) {
  Dataset out;
  for (const Tuple& t : data.tuples()) {
    if (!rng.Bernoulli(policy.withhold_probability)) {
      out.Add(t);
    }
  }
  for (size_t i = 0; i < policy.decoy_count; ++i) {
    out.Add(Tuple::FromString(
        "decoy-" + std::to_string(rng.NextUint64())));
  }
  return out;
}

Result<PerturbationEvaluation> EvaluatePerturbationDefense(
    const Dataset& defender_data, const Dataset& adversary_data,
    const std::vector<std::string>& probe_values,
    const PerturbationPolicy& policy, const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng) {
  if (policy.withhold_probability < 0 || policy.withhold_probability > 1) {
    return Status::InvalidArgument("withhold probability must be in [0, 1]");
  }

  Dataset defender_report = PerturbDataset(defender_data, policy, rng);
  Dataset adversary_report = adversary_data;
  for (const std::string& probe : probe_values) {
    adversary_report.Add(Tuple::FromString(probe));
  }

  HSIS_ASSIGN_OR_RETURN(
      auto outcomes,
      RunTwoPartyIntersection(defender_report, adversary_report, group,
                              commitment_family, rng));

  PerturbationEvaluation eval;
  Dataset truth = defender_data.Intersect(adversary_data);
  eval.true_intersection_size = truth.size();

  // The achieved legitimate result: reported intersection minus probe
  // artifacts.
  Dataset achieved = outcomes.first.intersection;
  for (const std::string& probe : probe_values) {
    achieved = achieved.Difference(Dataset::FromStrings({probe}));
  }
  eval.achieved_intersection_size = achieved.size();
  size_t overlap = achieved.Intersect(truth).size();
  eval.intersection_recall =
      truth.empty() ? 1.0
                    : static_cast<double>(overlap) /
                          static_cast<double>(truth.size());

  eval.probes = probe_values.size();
  for (const std::string& probe : probe_values) {
    if (outcomes.second.intersection.Contains(Tuple::FromString(probe))) {
      ++eval.probe_hits;
    }
  }
  eval.probe_hit_rate =
      eval.probes == 0
          ? 0.0
          : static_cast<double>(eval.probe_hits) /
                static_cast<double>(eval.probes);
  return eval;
}

}  // namespace hsis::sovereign

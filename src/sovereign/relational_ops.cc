#include "sovereign/relational_ops.h"

#include <algorithm>
#include <map>

#include "sovereign/channel.h"
#include "sovereign/intersection_protocol.h"

namespace hsis::sovereign {

namespace {

Result<Dataset> KeyColumn(const Relation& relation) {
  std::vector<Tuple> keys;
  keys.reserve(relation.size());
  for (const Record& r : relation) keys.push_back(Tuple::FromString(r.key));
  std::sort(keys.begin(), keys.end());
  if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
    return Status::InvalidArgument("join input has duplicate keys");
  }
  return Dataset(std::move(keys));
}

Bytes SerializePayloads(const std::vector<Record>& records) {
  Bytes out;
  AppendUint32BE(out, static_cast<uint32_t>(records.size()));
  for (const Record& r : records) {
    AppendLengthPrefixed(out, ToBytes(r.key));
    AppendLengthPrefixed(out, ToBytes(r.payload));
  }
  return out;
}

Result<std::map<std::string, std::string>> ParsePayloads(const Bytes& msg) {
  if (msg.size() < 4) return Status::ProtocolViolation("truncated payloads");
  uint32_t count = ReadUint32BE(msg, 0);
  size_t offset = 4;
  std::map<std::string, std::string> out;
  for (uint32_t i = 0; i < count; ++i) {
    HSIS_ASSIGN_OR_RETURN(Bytes key, ReadLengthPrefixed(msg, &offset));
    HSIS_ASSIGN_OR_RETURN(Bytes payload, ReadLengthPrefixed(msg, &offset));
    out[BytesToString(key)] = BytesToString(payload);
  }
  return out;
}

}  // namespace

Result<std::vector<JoinedRow>> RunSovereignJoin(
    const Relation& relation_a, const Relation& relation_b,
    const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng) {
  HSIS_ASSIGN_OR_RETURN(Dataset keys_a, KeyColumn(relation_a));
  HSIS_ASSIGN_OR_RETURN(Dataset keys_b, KeyColumn(relation_b));

  HSIS_ASSIGN_OR_RETURN(
      auto outcomes,
      RunTwoPartyIntersection(keys_a, keys_b, group, commitment_family, rng));

  // Both parties now know the common keys; exchange the matching
  // payloads over a fresh secure channel.
  Bytes session_key = rng.RandomBytes(32);
  HSIS_ASSIGN_OR_RETURN(auto channel,
                        SecureChannel::CreatePair(session_key, rng));

  auto matching = [](const Relation& relation, const Dataset& common) {
    std::vector<Record> out;
    for (const Record& r : relation) {
      if (common.Contains(Tuple::FromString(r.key))) out.push_back(r);
    }
    return out;
  };
  std::vector<Record> match_a = matching(relation_a, outcomes.first.intersection);
  std::vector<Record> match_b = matching(relation_b, outcomes.second.intersection);

  HSIS_RETURN_IF_ERROR(channel.first.Send(SerializePayloads(match_a)));
  HSIS_RETURN_IF_ERROR(channel.second.Send(SerializePayloads(match_b)));
  HSIS_ASSIGN_OR_RETURN(Bytes from_b, channel.first.Receive());
  HSIS_ASSIGN_OR_RETURN(auto payloads_b, ParsePayloads(from_b));

  std::vector<JoinedRow> rows;
  for (const Record& r : match_a) {
    auto it = payloads_b.find(r.key);
    if (it == payloads_b.end()) {
      return Status::ProtocolViolation("peer omitted payload for common key");
    }
    rows.push_back({r.key, r.payload, it->second});
  }
  std::sort(rows.begin(), rows.end(),
            [](const JoinedRow& x, const JoinedRow& y) { return x.key < y.key; });
  return rows;
}

Result<Dataset> RunSovereignDifference(
    const Dataset& reported_a, const Dataset& reported_b,
    const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng) {
  HSIS_ASSIGN_OR_RETURN(
      auto outcomes,
      RunTwoPartyIntersection(reported_a, reported_b, group,
                              commitment_family, rng));
  return reported_a.Difference(outcomes.first.intersection);
}

}  // namespace hsis::sovereign

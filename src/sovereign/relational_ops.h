#ifndef HSIS_SOVEREIGN_RELATIONAL_OPS_H_
#define HSIS_SOVEREIGN_RELATIONAL_OPS_H_

#include <string>

#include "common/random.h"
#include "common/result.h"
#include "crypto/group.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::sovereign {

/// A keyed record for the relational operators built on top of the
/// intersection protocol: `key` drives matching, `payload` is the data a
/// join transfers for matching keys.
struct Record {
  std::string key;
  std::string payload;

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.payload == b.payload;
  }
  friend auto operator<=>(const Record& a, const Record& b) = default;
};

/// A keyed relation (each key unique — join inputs are key-deduplicated).
using Relation = std::vector<Record>;

/// One joined row.
struct JoinedRow {
  std::string key;
  std::string payload_a;
  std::string payload_b;

  friend bool operator==(const JoinedRow& a, const JoinedRow& b) = default;
};

/// Sovereign equi-join (Section 2.1 notes the techniques extend to join):
/// runs the sovereign intersection over the key columns, then exchanges
/// payloads for matching keys over the secure channel. Each party learns
/// exactly the joined rows — keys it does not share stay private.
/// Returns the joined rows (identical for both parties).
Result<std::vector<JoinedRow>> RunSovereignJoin(
    const Relation& relation_a, const Relation& relation_b,
    const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng);

/// Sovereign set difference D_A \ D_B for party A, derived from the
/// intersection: A learns which of its own tuples the peer also holds
/// and subtracts. (B learns the intersection, per the base protocol.)
Result<Dataset> RunSovereignDifference(
    const Dataset& reported_a, const Dataset& reported_b,
    const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng);

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_RELATIONAL_OPS_H_

#ifndef HSIS_SOVEREIGN_MULTIPARTY_H_
#define HSIS_SOVEREIGN_MULTIPARTY_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "crypto/group.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::sovereign {

/// Result of the n-party sovereign intersection for one party.
struct MultiPartyOutcome {
  /// Tuples present in every party's reported dataset, as this party's
  /// own tuples.
  Dataset intersection;
  /// Commitment H_i(D̂_i) this party published (Section 6).
  Bytes own_commitment;
};

/// N-party sovereign set intersection by commutative ring encryption:
/// each party's hashed set is passed around the ring and encrypted under
/// every party's key; under full encryption equal tuples collide, so each
/// party intersects all n fully-encrypted multisets and maps matches back
/// through its own ring position. No party sees another's cleartext
/// tuples; everyone learns only the global intersection (and the peers'
/// reported sizes).
///
/// Execution and fault-injection knobs for the n-party protocol.
struct MultiPartyOptions {
  /// common/parallel.h knob for the per-party hot paths (ring-pass
  /// encryption, commitments, match map-back): 1 = serial (default),
  /// 0 = hardware concurrency, N = exactly N workers. Key generation
  /// and the global min-multiplicity reduction stay serial, so results
  /// are bit-identical for every thread count.
  int threads = 1;
  struct FaultInjection {
    /// Index of a party that drops out mid-round (its encryption hops
    /// in the ring pass never complete), or -1 for none. The protocol
    /// aborts with kProtocolViolation; the reported error is the one a
    /// serial run would hit first, independent of thread count.
    int party_fails_mid_round = -1;
  } fault_injection;
};

/// `reported` holds each party's (claimed) dataset; parties are indexed
/// by position. Requires n >= 2.
Result<std::vector<MultiPartyOutcome>> RunMultiPartyIntersection(
    const std::vector<Dataset>& reported, const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng,
    const MultiPartyOptions& options = {});

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_MULTIPARTY_H_

#ifndef HSIS_SOVEREIGN_MULTIPARTY_H_
#define HSIS_SOVEREIGN_MULTIPARTY_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "crypto/group.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::sovereign {

/// Result of the n-party sovereign intersection for one party.
struct MultiPartyOutcome {
  /// Tuples present in every party's reported dataset, as this party's
  /// own tuples.
  Dataset intersection;
  /// Commitment H_i(D̂_i) this party published (Section 6).
  Bytes own_commitment;
};

/// N-party sovereign set intersection by commutative ring encryption:
/// each party's hashed set is passed around the ring and encrypted under
/// every party's key; under full encryption equal tuples collide, so each
/// party intersects all n fully-encrypted multisets and maps matches back
/// through its own ring position. No party sees another's cleartext
/// tuples; everyone learns only the global intersection (and the peers'
/// reported sizes).
///
/// `reported` holds each party's (claimed) dataset; parties are indexed
/// by position. Requires n >= 2.
Result<std::vector<MultiPartyOutcome>> RunMultiPartyIntersection(
    const std::vector<Dataset>& reported, const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng);

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_MULTIPARTY_H_

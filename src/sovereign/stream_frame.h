#ifndef HSIS_SOVEREIGN_STREAM_FRAME_H_
#define HSIS_SOVEREIGN_STREAM_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/u256.h"

/// \file
/// \brief Chunk-framed wire codec for streamed element lists.
///
/// The legacy intersection protocol ships each element list — singly
/// encrypted sets, double-encrypted reply pairs — as one message:
///
///     [kind:1][total:u32][total * 32 element bytes]
///
/// The streamed pipeline splits the same logical list into fixed-size
/// frames so neither side ever materializes a million-tuple message.
/// The opening frame keeps the **legacy layout** (its count field is the
/// stream's total, its payload is the first chunk), so a single-chunk
/// stream is byte-for-byte the legacy message; continuation frames are
///
///     [kMsgStreamChunk:1][kind:1][index:u32][count:u32][count * 32 bytes]
///
/// with 1-based strictly sequential indices. `ElementStreamReader`
/// validates every structural property on arrival — tag, kind, index
/// order, per-frame count vs byte length, cumulative count vs the
/// declared total — and fails with a typed `ProtocolViolation` instead
/// of ever yielding a wrong element list. Payload bit flips are below
/// this layer: frames travel over the AEAD channel (sovereign/channel.h),
/// which rejects any tampered frame with `IntegrityViolation` before the
/// reader sees it.

namespace hsis::sovereign {

/// Wire message type tags shared by the legacy and streamed paths.
inline constexpr uint8_t kMsgCommitment = 0x01;
/// Kind tag of a singly-encrypted set stream {E_i(h(t))}.
inline constexpr uint8_t kMsgEncryptedSet = 0x02;
/// Kind tag of a (value, double-encryption) reply-pair stream.
inline constexpr uint8_t kMsgDoubleEncryptedPairs = 0x03;
/// Kind tag of an unpaired double-encrypted set stream (size-only mode).
inline constexpr uint8_t kMsgDoubleEncryptedSet = 0x04;
/// Frame tag of a continuation chunk within a streamed element list.
inline constexpr uint8_t kMsgStreamChunk = 0x05;

/// Serializes the opening frame of a streamed element list of `kind`:
/// legacy message layout, count field = `total` (the whole stream's
/// element count), payload = the first chunk. When `elements.size() ==
/// total` the result is exactly the legacy whole-set message.
Bytes SerializeFirstFrame(uint8_t kind, uint32_t total,
                          const std::vector<U256>& elements);

/// Serializes continuation frame `index` (1-based, strictly sequential
/// on the wire) of a streamed element list of `kind`.
Bytes SerializeContinuationFrame(uint8_t kind, uint32_t index,
                                 const std::vector<U256>& elements);

/// Incremental, validating reassembler for one streamed element list.
///
/// Feed frames in wire order via `Consume`; accumulated elements are
/// available at any point, so a pipeline can process each chunk as it
/// arrives (`elements()` grows, never shrinks or reorders). Every
/// structural deviation — wrong tag or kind, out-of-order or duplicate
/// chunk index, a count field disagreeing with the frame's byte length,
/// an empty continuation frame, or more elements than the declared
/// total — is a typed `ProtocolViolation`.
class ElementStreamReader {
 public:
  /// `kind` is the expected stream kind tag (kMsgEncryptedSet, ...).
  explicit ElementStreamReader(uint8_t kind) : kind_(kind) {}

  /// Consumes the next frame. The first frame must be an opening frame
  /// of the expected kind; later frames must be sequential continuation
  /// frames. After an error the reader is poisoned: further calls fail.
  Status Consume(const Bytes& frame);

  /// True once the opening frame (which declares the total) was read.
  bool header_seen() const { return header_seen_; }

  /// Declared element count of the whole stream (valid once
  /// `header_seen()`).
  uint32_t total() const { return total_; }

  /// True iff every declared element has arrived.
  bool complete() const {
    return header_seen_ && elements_.size() == total_;
  }

  /// Elements received so far, in wire order.
  const std::vector<U256>& elements() const { return elements_; }

  /// Moves the accumulated elements out (the reader is done with them);
  /// callers use this once `complete()`.
  std::vector<U256> TakeElements() { return std::move(elements_); }

  /// Index into `elements()` of the first element delivered by the most
  /// recent successful `Consume` — the window `[last_frame_begin(),
  /// elements().size())` is the newest chunk, ready for pipelining.
  size_t last_frame_begin() const { return last_frame_begin_; }

 private:
  uint8_t kind_;
  bool header_seen_ = false;
  bool failed_ = false;
  uint32_t total_ = 0;
  uint32_t next_index_ = 1;
  size_t last_frame_begin_ = 0;
  std::vector<U256> elements_;
};

}  // namespace hsis::sovereign

#endif  // HSIS_SOVEREIGN_STREAM_FRAME_H_

#include "sovereign/multiparty.h"

#include <map>

#include "common/parallel.h"
#include "crypto/commutative_cipher.h"

namespace hsis::sovereign {

Result<std::vector<MultiPartyOutcome>> RunMultiPartyIntersection(
    const std::vector<Dataset>& reported, const crypto::PrimeGroup& group,
    const crypto::MultisetHashFamily& commitment_family, Rng& rng,
    const MultiPartyOptions& options) {
  const size_t n = reported.size();
  if (n < 2) {
    return Status::InvalidArgument("multi-party intersection needs n >= 2");
  }
  const int fail_party = options.fault_injection.party_fails_mid_round;
  if (fail_party < -1 || fail_party >= static_cast<int>(n)) {
    return Status::InvalidArgument(
        "party_fails_mid_round must be -1 or a valid party index");
  }

  // Each party holds a commutative key. Key generation draws from the
  // caller's shared stream, so it stays serial in party order — the
  // exact draws the pre-parallelism implementation made.
  std::vector<crypto::CommutativeCipher> ciphers;
  ciphers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Result<crypto::CommutativeCipher> c =
        crypto::CommutativeCipher::Create(group, rng);
    HSIS_RETURN_IF_ERROR(c.status());
    ciphers.push_back(std::move(*c));
  }

  // Ring pass: set s, starting at its owner, is encrypted by every party
  // in ring order. We keep per-owner alignment with the owner's tuples so
  // the owner can map matches back; in a deployment each hop would
  // shuffle sets it does not own (the final multiset comparison is
  // order-independent, so alignment is only a local bookkeeping aid).
  // The n owners' passes are independent of one another — each is pure
  // exponentiation under already-fixed keys — so they fan out across
  // `options.threads`; the error of the smallest owner index wins, the
  // same abort a serial ring would report.
  std::vector<std::vector<U256>> fully_encrypted(n);
  HSIS_RETURN_IF_ERROR(common::ParallelForWithStatus(
      options.threads, n, [&](size_t owner) -> Status {
        std::vector<U256> set;
        set.reserve(reported[owner].size());
        for (const Tuple& t : reported[owner].tuples()) {
          set.push_back(group.HashToElement(t.value));
        }
        for (size_t hop = 0; hop < n; ++hop) {
          size_t encryptor = (owner + hop) % n;
          if (static_cast<int>(encryptor) == fail_party) {
            return Status::ProtocolViolation(
                "party dropped out mid-round during the ring pass");
          }
          for (U256& v : set) v = ciphers[encryptor].Encrypt(v);
        }
        fully_encrypted[owner] = std::move(set);
        return Status::OK();
      }));

  // Commitments (Section 6): every party publishes H_i(D̂_i);
  // independent per party, ordered output slots.
  std::vector<MultiPartyOutcome> outcomes(n);
  common::ParallelFor(options.threads, n, [&](size_t i) {
    std::unique_ptr<crypto::MultisetHash> h = commitment_family.NewHash();
    for (const Tuple& t : reported[i].tuples()) h->Add(t.value);
    outcomes[i].own_commitment = h->Serialize();
  });

  // Global intersection under full encryption: a value survives with the
  // minimum multiplicity across all parties.
  std::map<U256, size_t> counts;
  for (const U256& v : fully_encrypted[0]) counts[v]++;
  for (size_t i = 1; i < n; ++i) {
    std::map<U256, size_t> mine;
    for (const U256& v : fully_encrypted[i]) mine[v]++;
    for (auto it = counts.begin(); it != counts.end();) {
      auto found = mine.find(it->first);
      size_t m = (found == mine.end()) ? 0 : found->second;
      it->second = std::min(it->second, m);
      if (it->second == 0) {
        it = counts.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Each party maps surviving encrypted values back to its own tuples —
  // independent per party given the (read-only) global counts, with a
  // party-local working copy of the multiplicities.
  common::ParallelFor(options.threads, n, [&](size_t i) {
    std::map<U256, size_t> remaining = counts;
    const std::vector<Tuple>& tuples = reported[i].tuples();
    for (size_t k = 0; k < tuples.size(); ++k) {
      auto it = remaining.find(fully_encrypted[i][k]);
      if (it != remaining.end() && it->second > 0) {
        --it->second;
        outcomes[i].intersection.Add(tuples[k]);
      }
    }
  });
  return outcomes;
}

}  // namespace hsis::sovereign

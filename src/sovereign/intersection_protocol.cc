#include "sovereign/intersection_protocol.h"

#include <algorithm>
#include <map>

#include "crypto/commutative_cipher.h"
#include "sovereign/channel.h"
#include "sovereign/stream_frame.h"

namespace hsis::sovereign {

namespace {

// The legacy whole-set message is exactly a single-chunk element stream
// (sovereign/stream_frame.h): serialization and parsing delegate to the
// shared codec, so the two paths cannot drift apart on the wire.
Bytes SerializeElements(uint8_t tag, const std::vector<U256>& elements) {
  return SerializeFirstFrame(tag, static_cast<uint32_t>(elements.size()),
                             elements);
}

Result<std::vector<U256>> ParseElements(uint8_t expected_tag,
                                        const Bytes& msg) {
  ElementStreamReader reader(expected_tag);
  HSIS_RETURN_IF_ERROR(reader.Consume(msg));
  if (!reader.complete()) {
    return Status::ProtocolViolation("malformed element list");
  }
  return reader.TakeElements();
}

/// Per-party protocol state.
struct Participant {
  Participant(const Dataset& reported, ChannelEndpoint endpoint,
              crypto::CommutativeCipher cipher)
      : data(&reported),
        channel(std::move(endpoint)),
        cipher(std::move(cipher)) {}

  const Dataset* data;
  ChannelEndpoint channel;
  crypto::CommutativeCipher cipher;

  // h(t) per own tuple, aligned with data->tuples().
  std::vector<U256> hashed;
  // E_self(h(t)), aligned with tuples.
  std::vector<U256> self_encrypted;
  // The peer's set after our encryption: {E_self(E_peer(h(peer tuple)))}.
  std::vector<U256> peer_double_encrypted;
  // Our tuples' values under both keys, aligned with tuples (full mode).
  std::vector<U256> own_double_encrypted;

  Bytes own_commitment;
  Bytes peer_commitment;
};

Status SendCommitment(Participant& p,
                      const crypto::MultisetHashFamily& family) {
  std::unique_ptr<crypto::MultisetHash> hash = family.NewHash();
  for (const Tuple& t : p.data->tuples()) hash->Add(t.value);
  p.own_commitment = hash->Serialize();
  Bytes msg;
  msg.push_back(kMsgCommitment);
  Append(msg, p.own_commitment);
  return p.channel.Send(msg);
}

Status ReceiveCommitment(Participant& p) {
  Result<Bytes> msg = p.channel.Receive();
  HSIS_RETURN_IF_ERROR(msg.status());
  if (msg->empty() || (*msg)[0] != kMsgCommitment) {
    return Status::ProtocolViolation("expected commitment message");
  }
  p.peer_commitment.assign(msg->begin() + 1, msg->end());
  return Status::OK();
}

Status SendEncryptedSet(Participant& p, const crypto::PrimeGroup& group,
                        Rng& rng) {
  p.hashed.reserve(p.data->size());
  p.self_encrypted.reserve(p.data->size());
  for (const Tuple& t : p.data->tuples()) {
    U256 h = group.HashToElement(t.value);
    p.hashed.push_back(h);
    p.self_encrypted.push_back(p.cipher.Encrypt(h));
  }
  // Shuffle the transmitted order; we keep our own aligned copy.
  std::vector<U256> shuffled = p.self_encrypted;
  rng.Shuffle(shuffled);
  return p.channel.Send(SerializeElements(kMsgEncryptedSet, shuffled));
}

/// Receives the peer's singly-encrypted set, double-encrypts it, records
/// the double-encrypted multiset locally, and returns it to the peer —
/// paired (v, E(v)) in full mode, shuffled bare values in size-only mode.
/// `faults` (robustness testing) makes this participant deviate.
Status EncryptPeerSet(Participant& p, bool size_only, Rng& rng,
                      const FaultInjection& faults = {}) {
  Result<Bytes> msg = p.channel.Receive();
  HSIS_RETURN_IF_ERROR(msg.status());
  Result<std::vector<U256>> peer_set = ParseElements(kMsgEncryptedSet, *msg);
  HSIS_RETURN_IF_ERROR(peer_set.status());

  p.peer_double_encrypted.reserve(peer_set->size());
  std::vector<U256> reply;
  reply.reserve(peer_set->size() * (size_only ? 1 : 2));
  for (const U256& v : *peer_set) {
    U256 dd = p.cipher.Encrypt(v);
    p.peer_double_encrypted.push_back(dd);
    if (size_only) {
      reply.push_back(dd);
    } else {
      reply.push_back(v);
      reply.push_back(dd);
    }
  }
  if (size_only) {
    rng.Shuffle(reply);
    return p.channel.Send(SerializeElements(kMsgDoubleEncryptedSet, reply));
  }
  // Fault injection (robustness tests): controlled protocol deviations.
  if (faults.omit_one_reply_pair && reply.size() >= 2) {
    reply.pop_back();
    reply.pop_back();
  }
  if (faults.swap_reply_pairs && reply.size() >= 4) {
    std::swap(reply[1], reply[3]);  // swap the double-encryptions only
  }
  uint8_t tag = faults.wrong_message_type ? kMsgEncryptedSet
                                          : kMsgDoubleEncryptedPairs;
  Bytes wire = SerializeElements(tag, reply);
  if (faults.corrupt_reply_count && reply.size() >= 2) {
    AppendUint32BE(wire, 0);  // garbage length suffix -> malformed frame
  }
  return p.channel.Send(wire);
}

/// Receives the peer's reply about our own set and resolves the
/// intersection.
Status ResolveIntersection(Participant& p, bool size_only,
                           IntersectionOutcome& outcome) {
  Result<Bytes> msg = p.channel.Receive();
  HSIS_RETURN_IF_ERROR(msg.status());

  // Multiset of the peer's tuples under both keys (we computed it).
  std::map<U256, size_t> peer_counts;
  for (const U256& v : p.peer_double_encrypted) peer_counts[v]++;

  if (size_only) {
    Result<std::vector<U256>> own_dd =
        ParseElements(kMsgDoubleEncryptedSet, *msg);
    HSIS_RETURN_IF_ERROR(own_dd.status());
    if (own_dd->size() != p.data->size()) {
      return Status::ProtocolViolation("double-encrypted set size mismatch");
    }
    size_t matches = 0;
    for (const U256& v : *own_dd) {
      auto it = peer_counts.find(v);
      if (it != peer_counts.end() && it->second > 0) {
        --it->second;
        ++matches;
      }
    }
    outcome.intersection_size = matches;
    return Status::OK();
  }

  Result<std::vector<U256>> pairs =
      ParseElements(kMsgDoubleEncryptedPairs, *msg);
  HSIS_RETURN_IF_ERROR(pairs.status());
  if (pairs->size() != p.data->size() * 2) {
    return Status::ProtocolViolation("double-encrypted pair count mismatch");
  }
  // Map E_self(h(t)) -> E_peer(E_self(h(t))). Duplicate tuples share the
  // same singly-encrypted value and the same double-encrypted value, so a
  // plain map is sufficient.
  std::map<U256, U256> mapping;
  for (size_t i = 0; i < pairs->size(); i += 2) {
    mapping[(*pairs)[i]] = (*pairs)[i + 1];
  }
  p.own_double_encrypted.reserve(p.data->size());
  for (const U256& v : p.self_encrypted) {
    auto it = mapping.find(v);
    if (it == mapping.end()) {
      return Status::ProtocolViolation(
          "peer reply omits one of our encrypted values");
    }
    p.own_double_encrypted.push_back(it->second);
  }

  const std::vector<Tuple>& tuples = p.data->tuples();
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto it = peer_counts.find(p.own_double_encrypted[i]);
    if (it != peer_counts.end() && it->second > 0) {
      --it->second;
      outcome.intersection.Add(tuples[i]);
    }
  }
  outcome.intersection_size = outcome.intersection.size();
  return Status::OK();
}

}  // namespace

Status ValidateIntersectionOptions(const IntersectionOptions& options) {
  if (options.chunk_size == 0) {
    return Status::InvalidArgument(
        "IntersectionOptions.chunk_size must be >= 1");
  }
  if (options.pipeline_depth == 0) {
    return Status::InvalidArgument(
        "IntersectionOptions.pipeline_depth must be >= 1 "
        "(1 disables the crypto/wire overlap)");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument(
        "IntersectionOptions.threads must be >= 0 "
        "(0 selects hardware concurrency)");
  }
  return Status::OK();
}

Result<std::pair<IntersectionOutcome, IntersectionOutcome>>
RunTwoPartyIntersection(const Dataset& reported_a, const Dataset& reported_b,
                        const crypto::PrimeGroup& group,
                        const crypto::MultisetHashFamily& commitment_family,
                        Rng& rng, const IntersectionOptions& options) {
  // Session key for the channel (modeled as established out of band).
  Bytes session_key = rng.RandomBytes(32);
  Result<std::pair<ChannelEndpoint, ChannelEndpoint>> channel =
      SecureChannel::CreatePair(session_key, rng);
  HSIS_RETURN_IF_ERROR(channel.status());

  Result<crypto::CommutativeCipher> cipher_a =
      crypto::CommutativeCipher::Create(group, rng);
  HSIS_RETURN_IF_ERROR(cipher_a.status());
  Result<crypto::CommutativeCipher> cipher_b =
      crypto::CommutativeCipher::Create(group, rng);
  HSIS_RETURN_IF_ERROR(cipher_b.status());

  Participant a(reported_a, std::move(channel->first), std::move(*cipher_a));
  Participant b(reported_b, std::move(channel->second), std::move(*cipher_b));

  // Phase 1: commitments (Section 6 — reported alongside the data).
  HSIS_RETURN_IF_ERROR(SendCommitment(a, commitment_family));
  HSIS_RETURN_IF_ERROR(SendCommitment(b, commitment_family));
  HSIS_RETURN_IF_ERROR(ReceiveCommitment(a));
  HSIS_RETURN_IF_ERROR(ReceiveCommitment(b));

  // Phase 2: singly-encrypted sets.
  HSIS_RETURN_IF_ERROR(SendEncryptedSet(a, group, rng));
  HSIS_RETURN_IF_ERROR(SendEncryptedSet(b, group, rng));

  // Phase 3: each double-encrypts the peer's set. Fault injection (if
  // any) applies to party B's reply about A's set.
  HSIS_RETURN_IF_ERROR(EncryptPeerSet(a, options.size_only, rng));
  HSIS_RETURN_IF_ERROR(
      EncryptPeerSet(b, options.size_only, rng, options.fault_injection));
  if (options.fault_injection.corrupt_reply_frame_bit) {
    a.channel.CorruptNextInboundForTest();  // tamper with B's reply in flight
  }

  // Phase 4: resolve.
  IntersectionOutcome out_a, out_b;
  HSIS_RETURN_IF_ERROR(ResolveIntersection(a, options.size_only, out_a));
  HSIS_RETURN_IF_ERROR(ResolveIntersection(b, options.size_only, out_b));

  out_a.own_commitment = a.own_commitment;
  out_a.peer_commitment = a.peer_commitment;
  out_a.bytes_sent = a.channel.bytes_sent();
  out_b.own_commitment = b.own_commitment;
  out_b.peer_commitment = b.peer_commitment;
  out_b.bytes_sent = b.channel.bytes_sent();
  return std::make_pair(std::move(out_a), std::move(out_b));
}

}  // namespace hsis::sovereign

#ifndef HSIS_COMMON_SWEEP_WIRE_H_
#define HSIS_COMMON_SWEEP_WIRE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

/// \file
/// \brief `hsis-sweepd-v1` — the wire codec of the sweep-service
/// daemon (common/sweep_service.h).
///
/// Workers pull time-bounded shard leases from the daemon over TCP.
/// Every message travels as one length-prefixed frame,
///
///     [body_len:u32 BE][body]
///
/// whose body starts with a fixed two-byte header,
///
///     [version:u8 = 0x01][type:u8][payload...]
///
/// followed by the payload fields of that frame type in fixed order.
/// All integers are big-endian (the `common/bytes.h` helpers); strings
/// are `[len:u32 BE][len bytes]` with `len <= kSweepWireMaxString`.
/// The codec is strict in the `sovereign/stream_frame.h` style: a
/// frame either parses into exactly one typed struct or fails with a
/// typed `ProtocolViolation` naming the defect (short body, wrong
/// version, unknown type, truncated field, trailing bytes, oversized
/// string, malformed SHA-256) — the daemon never acts on a frame it
/// only partially understood, and after a parse error the connection
/// is closed. The full normative byte-level specification (enough to
/// implement an independent worker) is docs/SWEEP_SERVICE.md §4.

namespace hsis::common {

/// Protocol version byte every `hsis-sweepd-v1` frame body starts with.
inline constexpr uint8_t kSweepWireVersion = 0x01;

/// Upper bound of a frame body in bytes; the transport refuses to read
/// frames that claim more (a corrupt or hostile length prefix must not
/// trigger a giant allocation).
inline constexpr uint32_t kSweepWireMaxFrame = 1u << 20;

/// Upper bound of a length-prefixed string field in bytes.
inline constexpr uint32_t kSweepWireMaxString = 4096;

/// Frame type tags. Requests (worker -> daemon) use the low range,
/// replies (daemon -> worker) the high range; the type byte alone
/// determines the payload layout.
enum class SweepFrameType : uint8_t {
  kLeaseRequest = 0x01,   ///< worker asks for the next shard lease
  kHeartbeat = 0x02,      ///< worker renews a held lease
  kComplete = 0x03,       ///< worker reports a committed shard
  kFail = 0x04,           ///< worker reports a failed attempt
  kStatusRequest = 0x05,  ///< progress snapshot request
  kShutdown = 0x06,       ///< admin asks the daemon to stop serving
  kLeaseGrant = 0x81,     ///< reply: a lease on one shard
  kNoWork = 0x82,         ///< reply: nothing grantable right now
  kHeartbeatAck = 0x83,   ///< reply: lease renewed, fresh deadline
  kCompleteAck = 0x84,    ///< reply: completion accepted (or duplicate)
  kFailAck = 0x85,        ///< reply: failure recorded
  kStatusReply = 0x86,    ///< reply: progress snapshot
  kErrorReply = 0x87,     ///< reply: typed error, mirrors Status codes
  kShutdownAck = 0x88,    ///< reply: daemon will stop serving
};

/// Worker -> daemon: request the next shard lease. `worker` is a
/// free-form identity string recorded in events and lease state (e.g.
/// "hostname:pid"); it does not authenticate anything.
struct SweepLeaseRequest {
  std::string worker;  ///< Worker identity for events and diagnostics.

  friend bool operator==(const SweepLeaseRequest&,
                         const SweepLeaseRequest&) = default;
};

/// Worker -> daemon: renew the lease before its deadline. The daemon
/// cross-checks `shard` against the lease and rejects a mismatch.
struct SweepHeartbeat {
  uint64_t lease_id = 0;  ///< Lease being renewed.
  uint32_t shard = 0;     ///< Shard the worker believes it holds.

  friend bool operator==(const SweepHeartbeat&,
                         const SweepHeartbeat&) = default;
};

/// Worker -> daemon: the shard's payload and manifest are committed in
/// the shared results directory. `payload_sha256` is the lowercase-hex
/// digest from the manifest the worker wrote; the daemon revalidates
/// the files on disk and cross-checks this digest, so a completion
/// claim is never taken on faith.
struct SweepComplete {
  uint64_t lease_id = 0;       ///< Lease the work ran under.
  uint32_t shard = 0;          ///< Completed shard index.
  std::string payload_sha256;  ///< 64 lowercase hex chars.

  friend bool operator==(const SweepComplete&,
                         const SweepComplete&) = default;
};

/// Worker -> daemon: the attempt failed without committing; the lease
/// is released immediately instead of waiting for expiry.
struct SweepFail {
  uint64_t lease_id = 0;  ///< Lease being released.
  uint32_t shard = 0;     ///< Shard the attempt ran on.
  std::string message;    ///< Worker-side error text for the event log.

  friend bool operator==(const SweepFail&, const SweepFail&) = default;
};

/// Worker -> daemon: progress snapshot request (no payload).
struct SweepStatusRequest {
  friend bool operator==(const SweepStatusRequest&,
                         const SweepStatusRequest&) = default;
};

/// Admin -> daemon: stop serving (no payload). Committed shards stay
/// committed; the daemon acks and shuts its listener down.
struct SweepShutdown {
  friend bool operator==(const SweepShutdown&, const SweepShutdown&) = default;
};

/// Daemon -> worker: a time-bounded lease on one shard, plus the plan
/// identity the worker must cross-check against its `plan.manifest`
/// before computing anything.
struct SweepLeaseGrant {
  uint64_t lease_id = 0;  ///< Unique per grant, never reused.
  uint32_t shard = 0;     ///< Leased shard index.
  uint64_t begin = 0;     ///< First global index of the shard's range.
  uint64_t end = 0;       ///< One past the last global index.
  uint64_t lease_ms = 0;  ///< Lease duration; heartbeat well before this.
  std::string sweep;      ///< Sweep name of the plan being drained.
  uint64_t total = 0;     ///< Global index count of the plan.
  uint32_t shards = 0;    ///< Shard count of the plan.
  uint64_t seed = 0;      ///< Base seed of the plan.

  friend bool operator==(const SweepLeaseGrant&,
                         const SweepLeaseGrant&) = default;
};

/// Daemon -> worker: no lease can be granted right now. `drained`
/// distinguishes "everything is committed — exit" from "every pending
/// shard is leased or backing off — poll again in `retry_ms`".
struct SweepNoWork {
  uint8_t drained = 0;     ///< 1 once every shard is committed.
  uint64_t retry_ms = 0;   ///< Suggested poll delay when not drained.
  uint32_t committed = 0;  ///< Shards committed so far.
  uint32_t shards = 0;     ///< Shard count of the plan.

  friend bool operator==(const SweepNoWork&, const SweepNoWork&) = default;
};

/// Daemon -> worker: heartbeat accepted; the lease deadline is now
/// `lease_ms` from the daemon's clock.
struct SweepHeartbeatAck {
  uint64_t lease_id = 0;  ///< Renewed lease.
  uint64_t lease_ms = 0;  ///< Fresh full lease duration granted.

  friend bool operator==(const SweepHeartbeatAck&,
                         const SweepHeartbeatAck&) = default;
};

/// Daemon -> worker: completion accepted. `duplicate` is 1 when the
/// shard was already committed (a second worker finished the same
/// shard after a lease expiry — byte-identical by construction, so the
/// duplicate is acknowledged, not an error).
struct SweepCompleteAck {
  uint32_t shard = 0;      ///< Completed shard index.
  uint8_t duplicate = 0;   ///< 1 if the shard was already committed.
  uint32_t committed = 0;  ///< Shards committed after this completion.
  uint32_t shards = 0;     ///< Shard count of the plan.

  friend bool operator==(const SweepCompleteAck&,
                         const SweepCompleteAck&) = default;
};

/// Daemon -> worker: failure recorded. `will_retry` is 0 when the
/// shard has exhausted its attempts and the run is now failed.
struct SweepFailAck {
  uint32_t shard = 0;      ///< Shard the failure was recorded against.
  uint8_t will_retry = 0;  ///< 1 if the shard goes back to pending.

  friend bool operator==(const SweepFailAck&, const SweepFailAck&) = default;
};

/// Daemon -> worker: progress snapshot. Counters follow the scheduler
/// summary vocabulary (docs/SHARDING.md §2): `resumed` shards were
/// committed before this daemon started, `retries` counts grants
/// beyond each shard's first, `expired` lease-deadline reclaims,
/// `quarantined` corrupt files moved aside.
struct SweepStatusReply {
  std::string sweep;         ///< Sweep name of the plan.
  uint32_t shards = 0;       ///< Shard count of the plan.
  uint32_t committed = 0;    ///< Shards committed (incl. resumed).
  uint32_t leased = 0;       ///< Shards currently under lease.
  uint32_t pending = 0;      ///< Shards waiting for a worker.
  uint32_t resumed = 0;      ///< Shards committed before startup.
  uint32_t retries = 0;      ///< Grants beyond each shard's first.
  uint32_t expired = 0;      ///< Leases reclaimed at their deadline.
  uint32_t quarantined = 0;  ///< Files moved to quarantine/.
  uint8_t drained = 0;       ///< 1 once every shard is committed.

  friend bool operator==(const SweepStatusReply&,
                         const SweepStatusReply&) = default;
};

/// Daemon -> worker: typed error. `code` is the numeric
/// `hsis::StatusCode` of the daemon-side status, so the client
/// reconstructs the same taxonomy the lease table produced
/// (NotFound = expired lease, IntegrityViolation = corrupt files,
/// InvalidArgument = plan contradiction, Internal = run failed, ...).
struct SweepErrorReply {
  uint8_t code = 0;     ///< Numeric hsis::StatusCode, never kOk.
  std::string message;  ///< Human-readable error text.

  friend bool operator==(const SweepErrorReply&,
                         const SweepErrorReply&) = default;
};

/// Daemon -> admin: shutdown acknowledged; final progress attached.
struct SweepShutdownAck {
  uint32_t committed = 0;  ///< Shards committed at shutdown.
  uint32_t shards = 0;     ///< Shard count of the plan.

  friend bool operator==(const SweepShutdownAck&,
                         const SweepShutdownAck&) = default;
};

/// Any parsed `hsis-sweepd-v1` frame body.
using SweepFrame =
    std::variant<SweepLeaseRequest, SweepHeartbeat, SweepComplete, SweepFail,
                 SweepStatusRequest, SweepShutdown, SweepLeaseGrant,
                 SweepNoWork, SweepHeartbeatAck, SweepCompleteAck, SweepFailAck,
                 SweepStatusReply, SweepErrorReply, SweepShutdownAck>;

/// Serializes `frame` into a frame *body* (version + type + payload,
/// without the transport length prefix). The inverse of
/// `ParseSweepFrame`.
Bytes SerializeSweepFrame(const SweepFrame& frame);

/// Strict inverse of `SerializeSweepFrame`. Every structural defect is
/// a `ProtocolViolation`: empty or short body, a version byte other
/// than `kSweepWireVersion`, an unknown type byte, a truncated or
/// over-long field, trailing bytes after the payload, a string longer
/// than `kSweepWireMaxString`, a `payload_sha256` that is not exactly
/// 64 lowercase hex characters, or an `ErrorReply` whose code byte is
/// not a known non-OK `StatusCode`.
Result<SweepFrame> ParseSweepFrame(const Bytes& body);

/// The frame type tag `frame` serializes under.
SweepFrameType SweepFrameTypeOf(const SweepFrame& frame);

/// Stable lowercase name of `type` (e.g. "lease-request") for event
/// lines and error messages; "unknown" for unassigned tags.
const char* SweepFrameTypeName(SweepFrameType type);

/// Converts a daemon-side status to the `SweepErrorReply` it travels
/// as. Requires `!status.ok()`.
SweepErrorReply ToSweepError(const Status& status);

/// Reconstructs the daemon-side status from an error reply; the
/// inverse of `ToSweepError` (codes round-trip exactly, messages are
/// carried verbatim).
Status FromSweepError(const SweepErrorReply& error);

}  // namespace hsis::common

#endif  // HSIS_COMMON_SWEEP_WIRE_H_

#include "common/scheduler.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "common/file.h"

namespace hsis::common {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Runs each shard attempt as a forked child process executing
/// `binary --shard=<k> --out=<dir> --threads=<t>`. Poll reaps with
/// WNOHANG; Kill delivers SIGKILL (the child is reaped by a later
/// Poll).
class ProcessShardExecutor final : public ShardExecutor {
 public:
  ProcessShardExecutor(std::string binary, std::string dir, int threads)
      : binary_(std::move(binary)), dir_(std::move(dir)), threads_(threads) {}

  ~ProcessShardExecutor() override {
    // Never leak children: kill and reap anything still running.
    for (auto& [job, pid] : pids_) {
      ::kill(pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
    }
  }

  Result<int> Start(int shard) override {
    std::string shard_arg = "--shard=" + std::to_string(shard);
    std::string out_arg = "--out=" + dir_;
    std::string threads_arg = "--threads=" + std::to_string(threads_);
    char* argv[] = {binary_.data(), shard_arg.data(), out_arg.data(),
                    threads_arg.data(), nullptr};
    pid_t pid = ::fork();
    if (pid < 0) {
      return Status::Internal(std::string("fork failed: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      ::execv(binary_.c_str(), argv);
      // Exec failed; exit without running atexit handlers of the
      // half-duplicated parent image.
      std::_Exit(127);
    }
    int job = next_job_++;
    pids_.emplace(job, pid);
    return job;
  }

  bool Poll(int job, Status* status) override {
    auto it = pids_.find(job);
    if (it == pids_.end()) {
      *status = Status::InvalidArgument("unknown job handle " +
                                        std::to_string(job));
      return true;
    }
    int wstatus = 0;
    pid_t reaped = ::waitpid(it->second, &wstatus, WNOHANG);
    if (reaped == 0) return false;
    pids_.erase(it);
    if (reaped < 0) {
      *status = Status::Internal(std::string("waitpid failed: ") +
                                 std::strerror(errno));
    } else if (WIFEXITED(wstatus)) {
      int code = WEXITSTATUS(wstatus);
      *status = code == 0 ? Status::OK()
                          : Status::Internal("worker exited with code " +
                                             std::to_string(code));
    } else if (WIFSIGNALED(wstatus)) {
      *status = Status::Internal("worker killed by signal " +
                                 std::to_string(WTERMSIG(wstatus)));
    } else {
      *status = Status::Internal("worker ended in unknown state");
    }
    return true;
  }

  void Kill(int job) override {
    auto it = pids_.find(job);
    if (it != pids_.end()) ::kill(it->second, SIGKILL);
  }

 private:
  std::string binary_;
  std::string dir_;
  int threads_ = 1;
  int next_job_ = 0;
  std::map<int, pid_t> pids_;
};

/// Runs each shard attempt as `job_` on a dedicated thread. Kill raises
/// the job's cancellation flag and joins — in-process jobs are required
/// to honor cancellation promptly (scheduler.h contract).
class InProcessShardExecutor final : public ShardExecutor {
 public:
  explicit InProcessShardExecutor(InProcessShardJob job)
      : job_(std::move(job)) {}

  ~InProcessShardExecutor() override {
    for (auto& [id, state] : jobs_) {
      state->cancelled.store(true, std::memory_order_relaxed);
      if (state->thread.joinable()) state->thread.join();
    }
  }

  Result<int> Start(int shard) override {
    if (!job_) return Status::InvalidArgument("executor has no job function");
    auto state = std::make_unique<JobState>();
    JobState* raw = state.get();
    raw->thread = std::thread([this, raw, shard] {
      Status result = job_(shard, raw->cancelled);
      raw->status = std::move(result);
      raw->done.store(true, std::memory_order_release);
    });
    int job = next_job_++;
    jobs_.emplace(job, std::move(state));
    return job;
  }

  bool Poll(int job, Status* status) override {
    auto it = jobs_.find(job);
    if (it == jobs_.end()) {
      *status = Status::InvalidArgument("unknown job handle " +
                                        std::to_string(job));
      return true;
    }
    if (!it->second->done.load(std::memory_order_acquire)) return false;
    if (it->second->thread.joinable()) it->second->thread.join();
    *status = it->second->status;
    jobs_.erase(it);
    return true;
  }

  void Kill(int job) override {
    auto it = jobs_.find(job);
    if (it == jobs_.end()) return;
    it->second->cancelled.store(true, std::memory_order_relaxed);
    if (it->second->thread.joinable()) it->second->thread.join();
  }

 private:
  struct JobState {
    std::atomic<bool> done{false};
    std::atomic<bool> cancelled{false};
    Status status;
    std::thread thread;
  };

  InProcessShardJob job_;
  int next_job_ = 0;
  std::map<int, std::unique_ptr<JobState>> jobs_;
};

}  // namespace

std::unique_ptr<ShardExecutor> MakeProcessShardExecutor(std::string binary,
                                                        std::string dir,
                                                        int threads) {
  return std::make_unique<ProcessShardExecutor>(std::move(binary),
                                                std::move(dir), threads);
}

std::unique_ptr<ShardExecutor> MakeInProcessShardExecutor(
    InProcessShardJob job) {
  return std::make_unique<InProcessShardExecutor>(std::move(job));
}

std::unique_ptr<ShardExecutor> MakeRunnerShardExecutor(ShardSweepSpec spec,
                                                       ShardPlan plan,
                                                       std::string dir,
                                                       int threads) {
  ShardRunner runner(std::move(spec), plan);
  return MakeInProcessShardExecutor(
      [runner = std::move(runner), dir = std::move(dir), threads](
          int shard, const std::atomic<bool>&) {
        return runner.Run(shard, dir, threads);
      });
}

ScheduleRecord ToScheduleRecord(const ShardScheduleSummary& summary) {
  ScheduleRecord record;
  record.sweep = summary.sweep;
  record.shards = summary.shards;
  record.resumed = summary.resumed;
  record.retries = summary.retries;
  record.quarantined = summary.quarantined;
  record.timeouts = summary.timeouts;
  for (size_t k = 0; k < summary.attempts.size(); ++k) {
    if (k > 0) record.attempts += ',';
    record.attempts += std::to_string(summary.attempts[k]);
  }
  record.wall_ms = summary.wall_ms;
  return record;
}

std::string ShardQuarantineDir(const std::string& dir) {
  return dir + "/quarantine";
}

int64_t BackoffDelayMs(int64_t initial_ms, int64_t max_ms,
                       int attempts_so_far) {
  if (initial_ms == 0) return 0;
  int64_t ms = initial_ms;
  for (int i = 1; i < attempts_so_far && ms < max_ms; ++i) {
    // Saturate before doubling: past max_ms / 2 the next doubling would
    // exceed the cap anyway, and near INT64_MAX it would overflow (UB)
    // into a negative delay.
    if (ms > max_ms / 2) {
      ms = max_ms;
    } else {
      ms *= 2;
    }
  }
  return ms < max_ms ? ms : max_ms;
}

ShardScheduler::ShardScheduler(ShardPlanInfo info, std::string dir,
                               std::unique_ptr<ShardExecutor> executor,
                               ShardScheduleOptions options)
    : info_(std::move(info)),
      dir_(std::move(dir)),
      executor_(std::move(executor)),
      options_(options) {}

Result<ShardScheduleSummary> ShardScheduler::Run() {
  if (executor_ == nullptr) {
    return Status::InvalidArgument("scheduler has no executor");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1, got " +
                                   std::to_string(options_.workers));
  }
  if (options_.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1, got " +
                                   std::to_string(options_.max_attempts));
  }
  if (options_.shard_timeout_ms < 0 || options_.backoff_initial_ms < 0 ||
      options_.backoff_max_ms < 0 || options_.poll_interval_ms < 0) {
    return Status::InvalidArgument(
        "timeouts, backoff, and poll interval must be non-negative");
  }
  HSIS_ASSIGN_OR_RETURN(ShardPlan plan,
                        ShardPlan::Create(info_.total, info_.shards));
  const int shard_count = plan.shards();
  const Clock::time_point run_start = Clock::now();

  enum class State { kPending, kRunning, kKilling, kDone };
  struct Shard {
    State state = State::kPending;
    int attempts = 0;
    int job = -1;
    Clock::time_point attempt_start;
    Clock::time_point ready_at;  // backoff gate for the next attempt
  };
  std::vector<Shard> shards(static_cast<size_t>(shard_count));

  ShardScheduleSummary summary;
  summary.sweep = info_.sweep;
  summary.shards = shard_count;
  summary.attempts.assign(static_cast<size_t>(shard_count), 0);

  /// Moves a shard's (possibly partial) files into the quarantine
  /// directory, tagged with a monotonically increasing sequence number
  /// so repeated quarantines of the same shard never collide.
  int quarantine_seq = 0;
  auto quarantine = [&](int k) -> Status {
    HSIS_RETURN_IF_ERROR(CreateDirectories(ShardQuarantineDir(dir_)));
    const std::string tag = ShardQuarantineDir(dir_) + "/shard-" +
                            std::to_string(k) + ".q" +
                            std::to_string(quarantine_seq++);
    for (const auto& [from, suffix] :
         {std::pair<std::string, const char*>{ShardPayloadPath(dir_, k),
                                              ".bin"},
          std::pair<std::string, const char*>{ShardManifestPath(dir_, k),
                                              ".manifest"}}) {
      if (!FileExists(from)) continue;
      HSIS_RETURN_IF_ERROR(RenameFile(from, tag + suffix));
      ++summary.quarantined;
    }
    return Status::OK();
  };

  auto kill_running = [&] {
    Status ignored;
    for (Shard& shard : shards) {
      if (shard.state != State::kRunning && shard.state != State::kKilling) {
        continue;
      }
      executor_->Kill(shard.job);
      // Bounded reap: SIGKILL'd processes and cancelled threads finish
      // promptly; give up after ~2s rather than hang the error path.
      for (int i = 0; i < 2000 && !executor_->Poll(shard.job, &ignored); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };

  // Startup scan: committed shards are done (resume), corrupt shards
  // are quarantined, plan contradictions fail fast.
  int done = 0;
  for (int k = 0; k < shard_count; ++k) {
    Status v = ValidateShard(info_, dir_, k);
    if (v.ok()) {
      shards[static_cast<size_t>(k)].state = State::kDone;
      ++summary.resumed;
      ++done;
    } else if (v.code() == StatusCode::kInvalidArgument) {
      return Status::InvalidArgument(
          "results directory contradicts the plan — refusing to schedule "
          "(fix or clear " +
          dir_ + "): " + v.message());
    } else if (v.code() == StatusCode::kIntegrityViolation) {
      HSIS_RETURN_IF_ERROR(quarantine(k));
    }  // NotFound: simply pending.
  }

  auto backoff_ms = [&](int attempts_so_far) -> int64_t {
    return BackoffDelayMs(options_.backoff_initial_ms,
                          options_.backoff_max_ms, attempts_so_far);
  };

  int running = 0;
  while (done < shard_count) {
    bool progressed = false;

    // Dispatch: fill free worker slots with ready pending shards, in
    // shard order.
    for (int k = 0; k < shard_count && running < options_.workers; ++k) {
      Shard& shard = shards[static_cast<size_t>(k)];
      if (shard.state != State::kPending || Clock::now() < shard.ready_at) {
        continue;
      }
      ++shard.attempts;
      ++summary.attempts[static_cast<size_t>(k)];
      if (shard.attempts > 1) ++summary.retries;
      Result<int> job = executor_->Start(k);
      if (!job.ok()) {
        // Could not even launch; treat as a failed attempt.
        if (shard.attempts >= options_.max_attempts) {
          kill_running();
          return Status::Internal(
              "shard " + std::to_string(k) + " failed after " +
              std::to_string(shard.attempts) +
              " attempts; last error: " + job.status().ToString());
        }
        shard.ready_at = Clock::now() + std::chrono::milliseconds(
                                            backoff_ms(shard.attempts));
        continue;
      }
      shard.job = *job;
      shard.attempt_start = Clock::now();
      shard.state = State::kRunning;
      ++running;
      progressed = true;
    }

    // Supervise: reap finished jobs, enforce timeouts, classify.
    for (int k = 0; k < shard_count; ++k) {
      Shard& shard = shards[static_cast<size_t>(k)];
      if (shard.state != State::kRunning && shard.state != State::kKilling) {
        continue;
      }
      Status job_status;
      bool finished = executor_->Poll(shard.job, &job_status);
      if (!finished) {
        if (shard.state == State::kRunning && options_.shard_timeout_ms > 0 &&
            ElapsedMs(shard.attempt_start) > options_.shard_timeout_ms) {
          executor_->Kill(shard.job);
          shard.state = State::kKilling;
          ++summary.timeouts;
        }
        continue;
      }
      --running;
      progressed = true;
      const bool timed_out = shard.state == State::kKilling;

      // The committed files are the truth: a crashed worker that
      // committed counts as done; a clean exit without a commit does
      // not.
      Status v = ValidateShard(info_, dir_, k);
      if (v.ok()) {
        shard.state = State::kDone;
        ++done;
        continue;
      }
      if (v.code() == StatusCode::kInvalidArgument) {
        kill_running();
        return Status::InvalidArgument(
            "shard " + std::to_string(k) +
            " wrote files that contradict the plan — operator error, not "
            "retrying: " +
            v.message());
      }
      if (v.code() == StatusCode::kIntegrityViolation) {
        if (Status q = quarantine(k); !q.ok()) {
          kill_running();
          return q;
        }
      }
      Status last_error =
          timed_out ? Status::Internal(
                          "attempt exceeded --shard-timeout-ms=" +
                          std::to_string(options_.shard_timeout_ms) +
                          " and was killed")
          : !job_status.ok() ? job_status
                             : v;
      if (shard.attempts >= options_.max_attempts) {
        kill_running();
        return Status::Internal(
            "shard " + std::to_string(k) + " failed after " +
            std::to_string(shard.attempts) +
            " attempts; last error: " + last_error.ToString());
      }
      shard.state = State::kPending;
      shard.ready_at =
          Clock::now() + std::chrono::milliseconds(backoff_ms(shard.attempts));
    }

    if (!progressed && done < shard_count) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
    }
  }

  summary.wall_ms = static_cast<double>(ElapsedMs(run_start));
  return summary;
}

}  // namespace hsis::common

#ifndef HSIS_COMMON_PARALLEL_H_
#define HSIS_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file
/// \brief Deterministic data-parallel engine for the sweep / simulation
/// hot paths.
///
/// The contract every user relies on:
///
///  1. **Ordered slots** — `ParallelFor(threads, n, body)` runs
///     `body(i)` exactly once for each index in `[0, n)`; callers write
///     result `i` into a pre-sized output slot `i`, so the assembled
///     output is in input order no matter how indices were scheduled.
///  2. **Static chunking** — indices are split into `size()` contiguous
///     chunks up front (no work stealing), so a run never depends on
///     scheduling races.
///  3. **Per-index randomness** — stochastic bodies must draw from
///     `Rng::ForIndex(base_seed, i)` (see common/random.h) instead of a
///     shared generator, which makes every index's stream a pure
///     function of `(base_seed, i)`.
///
/// Together these make results bit-identical across thread counts:
/// `threads = 1`, `threads = 2`, and hardware concurrency all produce
/// the same bytes.
///
/// \par Usage
/// \code
///   std::vector<double> out(n);
///   common::ParallelFor(threads, n, [&](size_t i) {
///     Rng rng = Rng::ForIndex(base_seed, i);   // per-index stream
///     out[i] = Simulate(rng);                  // ordered slot i
///   });
///   // `out` is bit-identical for every `threads` value.
/// \endcode

/// \namespace hsis
/// \brief Reproduction of "On Honesty in Sovereign Information Sharing"
/// (Agrawal & Terzi, EDBT 2006): crypto substrate, game-theoretic core,
/// simulation and audit layers.

/// \namespace hsis::common
/// \brief Infrastructure shared by every layer: status/result error
/// model, deterministic parallelism, sharding, scheduling, file and
/// record utilities.

namespace hsis::common {

/// Number of hardware threads, never less than 1.
int HardwareConcurrency();

/// Resolves a user-facing `threads` knob: 0 selects hardware
/// concurrency, negative values are clamped to 1.
int ResolveThreadCount(int threads);

/// Resolves the value of a user-facing `--threads=` flag: "0" selects
/// hardware concurrency, positive values pass through, and anything
/// else (negative, empty, non-numeric, trailing junk) is
/// InvalidArgument. All bench and example CLIs share this parser — and
/// `ParseShardsValue` (common/shard.h), its `--shards=` twin — so flag
/// handling is uniform across binaries.
Result<int> ParseThreadsValue(std::string_view value);

/// A fixed-size pool of worker threads executing index-range jobs. The
/// calling thread participates as worker 0, so `ThreadPool(1)` spawns
/// no threads at all and degenerates to a plain loop.
class ThreadPool {
 public:
  /// `threads` is resolved via `ResolveThreadCount` (0 = hardware).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `body(i)` for every `i` in `[0, n)` and returns once all
  /// calls completed. Chunk `w` of `size()` static contiguous chunks is
  /// executed by worker `w`; the calling thread runs chunk 0. `body`
  /// must be safe to invoke concurrently for distinct indices. Not
  /// reentrant: do not call `Run` from inside `body`.
  void Run(size_t n, const std::function<void(size_t)>& body);

  /// Static chunk `w` of `[0, n)` split into `k` contiguous chunks:
  /// `[n*w/k, n*(w+1)/k)`. Exposed for callers that need to reason
  /// about the partition (e.g. per-chunk scratch buffers).
  static std::pair<size_t, size_t> ChunkBounds(size_t n, int k, int w);

 private:
  void WorkerLoop(int worker_id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // bumped per job; workers watch it
  size_t job_n_ = 0;
  const std::function<void(size_t)>* job_body_ = nullptr;
  int pending_workers_ = 0;
  bool shutdown_ = false;
};

/// One-shot facade: runs `body(i)` for `i` in `[0, n)` on a transient
/// pool of `ResolveThreadCount(threads)` workers. `threads == 1` (the
/// serial-compatible default everywhere) executes inline with zero
/// threading overhead, and a range smaller than the resolved thread
/// count falls back to the same inline loop instead of spawning
/// workers that would receive empty or single-index chunks.
void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t)>& body);

/// Batched variant for fine grids: `[0, n)` is split into
/// `ceil(n / batch_size)` contiguous batches and whole batches become
/// the scheduling unit. `body(i)` still runs exactly once per index in
/// ascending order within each batch, so results are bit-identical to
/// the unbatched call for every `batch_size`; only the per-index
/// `std::function` dispatch overhead shrinks to one call per batch.
/// `batch_size <= 1` degenerates to the unbatched `ParallelFor`.
void ParallelFor(int threads, size_t n, size_t batch_size,
                 const std::function<void(size_t)>& body);

/// Tile-granular variant: `[0, n)` is split into the same
/// `ceil(n / tile_size)` contiguous tiles as the batched `ParallelFor`
/// and `body(lo, hi)` receives each whole half-open tile exactly once,
/// with the identical static schedule. This is the entry point for
/// callers that process a tile internally (e.g. the SIMD kernel lanes
/// of game/kernel_lanes.h, which run width-strided loops plus a scalar
/// remainder inside each tile): the tile boundaries — and therefore
/// every vector-vs-remainder split — are the same for every thread
/// count, preserving the bit-identical-results contract.
/// `tile_size == 0` is treated as 1.
void ParallelForTiles(int threads, size_t n, size_t tile_size,
                      const std::function<void(size_t, size_t)>& body);

/// Like `ParallelFor` for fallible bodies: every index still runs, and
/// the returned status is OK iff all bodies succeeded, otherwise the
/// error with the **smallest index** — the same error a serial
/// first-failure loop would report, independent of thread count.
Status ParallelForWithStatus(int threads, size_t n,
                             const std::function<Status(size_t)>& body);

/// Batched `ParallelForWithStatus`: batching semantics of the batched
/// `ParallelFor`, error semantics (smallest failing index wins) of
/// `ParallelForWithStatus`.
Status ParallelForWithStatus(int threads, size_t n, size_t batch_size,
                             const std::function<Status(size_t)>& body);

/// Maps `i -> fn(i)` over `[0, n)` into an order-preserving vector
/// (slot `i` holds `fn(i)`). The element type must be default
/// constructible.
template <typename Fn>
auto ParallelMap(int threads, size_t n, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(n);
  ParallelFor(threads, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace hsis::common

#endif  // HSIS_COMMON_PARALLEL_H_

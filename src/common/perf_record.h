#ifndef HSIS_COMMON_PERF_RECORD_H_
#define HSIS_COMMON_PERF_RECORD_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace hsis::common {

/// Schema tag stamped into every serialized record; bump when fields
/// change so downstream tooling can reject records it does not
/// understand.
inline constexpr const char* kPerfRecordSchema = "hsis-bench-v1";

/// A machine-readable benchmark measurement: one throughput sample of
/// one bench at one thread count, with enough provenance (git describe)
/// to compare runs across commits. Serialized as a single flat JSON
/// object so shell tooling and CI checkers can parse it without a JSON
/// library.
struct PerfRecord {
  std::string bench;        // bench identifier, e.g. "figure1_frequency_sweep"
  int threads = 1;          // worker threads used for the measurement
  double cells_per_sec = 0; // sweep cells evaluated per second
  double wall_ms = 0;       // wall-clock time of the measured run
  std::string git_describe; // `git describe --always --dirty` at build time

  /// Checks the record is complete and physically sensible: non-empty
  /// bench and git_describe, threads >= 1, cells_per_sec > 0 and
  /// wall_ms >= 0 (both finite).
  Status Validate() const;
};

/// Serializes to one line of JSON (trailing newline included):
///   {"schema":"hsis-bench-v1","bench":...,"threads":...,
///    "cells_per_sec":...,"wall_ms":...,"git_describe":...}
/// Numbers use %.17g so a parse round-trips bit-exactly.
std::string PerfRecordToJson(const PerfRecord& record);

/// Strict inverse of `PerfRecordToJson`: accepts exactly one flat JSON
/// object with the five fields in any order (whitespace tolerated),
/// requires `"schema": "hsis-bench-v1"`, and rejects duplicate,
/// missing, or unknown keys. The returned record additionally passes
/// `Validate()`.
Result<PerfRecord> ParsePerfRecord(std::string_view json);

}  // namespace hsis::common

#endif  // HSIS_COMMON_PERF_RECORD_H_

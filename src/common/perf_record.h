#ifndef HSIS_COMMON_PERF_RECORD_H_
#define HSIS_COMMON_PERF_RECORD_H_

#include <string>
#include <string_view>

#include "common/result.h"

/// \file
/// \brief Machine-readable run records: bench throughput samples and
/// shard-schedule summaries.
///
/// Both record types serialize as a single flat JSON object per line so
/// shell tooling and CI checkers can parse them without a JSON library,
/// and both parse strictly (exact schema tag, no duplicate, missing, or
/// unknown keys) so a serialization regression fails loudly instead of
/// producing silently-wrong dashboards.
///
/// \par Usage
/// \code
///   PerfRecord record;
///   record.bench = "figure1_frequency_sweep";
///   record.threads = 8;
///   record.cells_per_sec = 4.2e7;
///   record.wall_ms = 0.48;
///   record.git_describe = "abc1234";
///   std::string line = PerfRecordToJson(record);     // one JSON line
///   PerfRecord back = ParsePerfRecord(line).value();  // strict inverse
/// \endcode

namespace hsis::common {

/// Schema tag stamped into every serialized bench record; bump when
/// fields change so downstream tooling can reject records it does not
/// understand.
inline constexpr const char* kPerfRecordSchema = "hsis-bench-v1";

/// A machine-readable benchmark measurement: one throughput sample of
/// one bench at one thread count, with enough provenance (git describe)
/// to compare runs across commits.
struct PerfRecord {
  std::string bench;        ///< Bench identifier, e.g. "figure1_frequency_sweep".
  int threads = 1;          ///< Worker threads used for the measurement.
  /// SIMD lane of the measured code path (common/simd_dispatch.h lane
  /// name: "scalar", "sse2", "avx2"). Defaults to "scalar" — the only
  /// lane that existed before records carried the field — so archived
  /// pre-lane artifacts parse unchanged.
  std::string lane = "scalar";
  /// Algorithm variant of the measured code path, e.g. "naive" vs
  /// "window4" for the modexp ladder comparison. Empty (the default)
  /// means the bench has a single algorithm and is omitted from the
  /// serialized record, so pre-PR-9 artifacts parse unchanged and
  /// round-trip byte-identically.
  std::string algo;
  double cells_per_sec = 0; ///< Sweep cells evaluated per second.
  double wall_ms = 0;       ///< Wall-clock time of the measured run.
  std::string git_describe; ///< `git describe --always --dirty` at build time.

  /// Checks the record is complete and physically sensible: non-empty
  /// bench, lane and git_describe, threads >= 1, cells_per_sec > 0 and
  /// wall_ms >= 0 (both finite).
  Status Validate() const;
};

/// Serializes to one line of JSON (trailing newline included):
///   {"schema":"hsis-bench-v1","bench":...,"threads":...,"lane":...,
///    "cells_per_sec":...,"wall_ms":...,"git_describe":...}
/// Numbers use %.17g so a parse round-trips bit-exactly.
std::string PerfRecordToJson(const PerfRecord& record);

/// Strict inverse of `PerfRecordToJson`: accepts exactly one flat JSON
/// object with the fields in any order (whitespace tolerated),
/// requires `"schema": "hsis-bench-v1"`, and rejects duplicate,
/// missing, or unknown keys. `lane` (absent in records written before
/// the SIMD lanes existed; defaults to "scalar") and `algo` (absent for
/// single-algorithm benches; defaults to empty) are the two optional
/// keys. The returned record additionally passes `Validate()`.
Result<PerfRecord> ParsePerfRecord(std::string_view json);

/// Schema tag of serialized shard-schedule summaries.
inline constexpr const char* kScheduleRecordSchema = "hsis-schedule-v1";

/// A machine-readable summary of one scheduled sharded run
/// (common/scheduler.h): how many shards resumed, how many attempts
/// each shard took, and what the fault handling did — the artifact CI
/// asserts on after a fault-injection run.
struct ScheduleRecord {
  std::string sweep;    ///< Sweep name from the plan manifest.
  int shards = 0;       ///< Shard count of the plan.
  int resumed = 0;      ///< Shards already committed at startup.
  int retries = 0;      ///< Attempts beyond each shard's first.
  int quarantined = 0;  ///< Corrupt files moved to quarantine.
  int timeouts = 0;     ///< Attempts killed for exceeding the timeout.
  /// Comma-joined attempts per shard in shard order, e.g. "1,2,0,1"
  /// (resumed shards report 0).
  std::string attempts;
  double wall_ms = 0;   ///< Wall-clock time of the scheduled run.

  /// Checks the record is complete and internally consistent: non-empty
  /// sweep, shards >= 1, all counters >= 0, finite wall_ms >= 0, and
  /// `attempts` holding exactly `shards` comma-separated non-negative
  /// integers whose beyond-first total equals `retries`.
  Status Validate() const;
};

/// Serializes to one line of flat JSON, `PerfRecordToJson` conventions
/// (schema tag first, trailing newline, %.17g numbers).
std::string ScheduleRecordToJson(const ScheduleRecord& record);

/// Strict inverse of `ScheduleRecordToJson`, same strictness contract
/// as `ParsePerfRecord`; the returned record additionally passes
/// `Validate()`.
Result<ScheduleRecord> ParseScheduleRecord(std::string_view json);

}  // namespace hsis::common

#endif  // HSIS_COMMON_PERF_RECORD_H_

#ifndef HSIS_COMMON_BYTES_H_
#define HSIS_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hsis {

/// Raw byte buffer used throughout the crypto and protocol layers.
using Bytes = std::vector<uint8_t>;

/// Converts a string's characters to bytes (no encoding applied).
Bytes ToBytes(std::string_view s);

/// Converts raw bytes to a std::string (byte-for-byte).
std::string BytesToString(const Bytes& b);

/// Hex-encodes `b` using lowercase digits.
std::string HexEncode(const Bytes& b);

/// Decodes a hex string (case-insensitive). Fails on odd length or
/// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);

/// Appends a 4-byte big-endian encoding of `v`.
void AppendUint32BE(Bytes& dst, uint32_t v);

/// Appends an 8-byte big-endian encoding of `v`.
void AppendUint64BE(Bytes& dst, uint64_t v);

/// Reads a 4-byte big-endian integer at `offset`; caller guarantees bounds.
uint32_t ReadUint32BE(const Bytes& src, size_t offset);

/// Reads an 8-byte big-endian integer at `offset`; caller guarantees bounds.
uint64_t ReadUint64BE(const Bytes& src, size_t offset);

/// Appends a length-prefixed (uint32 BE) byte string; the standard framing
/// used by the message layer.
void AppendLengthPrefixed(Bytes& dst, const Bytes& payload);

/// Reads a length-prefixed byte string at `*offset`, advancing it.
/// Fails if the buffer is truncated.
Result<Bytes> ReadLengthPrefixed(const Bytes& src, size_t* offset);

/// Constant-time equality (length leaks, contents do not). Use for
/// comparing MACs and hash commitments.
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

}  // namespace hsis

#endif  // HSIS_COMMON_BYTES_H_

#include "common/shard.h"

#include <charconv>
#include <cstring>
#include <map>

#include "common/file.h"
#include "common/parallel.h"
#include "crypto/sha256.h"

namespace hsis::common {

namespace {

constexpr char kPlanMagic[] = "hsis-shard-plan v1";
constexpr char kShardMagic[] = "hsis-shard v1";
constexpr uint8_t kPayloadMagic[8] = {'H', 'S', 'I', 'S',
                                      'S', 'H', 'R', 'D'};
constexpr uint32_t kPayloadVersion = 1;

std::string Sha256Hex(const Bytes& data) {
  return HexEncode(crypto::Sha256::Hash(data));
}

/// Strict unsigned parse of a whole string (no sign, no junk).
template <typename T>
bool ParseExact(std::string_view s, T* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Splits strict `key=value` manifest text (after the magic line) into
/// a map; every key may appear at most once.
Result<std::map<std::string, std::string>> ParseFields(
    std::string_view text, const char* magic, const char* what) {
  auto corrupt = [&](const std::string& why) {
    return Status::IntegrityViolation(std::string("corrupt ") + what + ": " +
                                      why);
  };
  size_t pos = 0;
  auto next_line = [&]() -> std::string_view {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol < text.size() ? eol + 1 : text.size();
    return line;
  };
  if (pos >= text.size() || next_line() != magic) {
    return corrupt("bad or missing version line");
  }
  std::map<std::string, std::string> fields;
  while (pos < text.size()) {
    std::string_view line = next_line();
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return corrupt("line without '=': " + std::string(line));
    }
    std::string key(line.substr(0, eq));
    if (!fields.emplace(key, std::string(line.substr(eq + 1))).second) {
      return corrupt("duplicate field: " + key);
    }
  }
  return fields;
}

/// Pulls one field out of `fields`, erasing it so the caller can detect
/// unknown leftovers.
Result<std::string> TakeField(std::map<std::string, std::string>& fields,
                              const char* key, const char* what) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return Status::IntegrityViolation(std::string("corrupt ") + what +
                                      ": missing field: " + key);
  }
  std::string value = std::move(it->second);
  fields.erase(it);
  return value;
}

template <typename T>
Status TakeNumber(std::map<std::string, std::string>& fields, const char* key,
                  const char* what, T* out) {
  HSIS_ASSIGN_OR_RETURN(std::string value, TakeField(fields, key, what));
  if (!ParseExact(value, out)) {
    return Status::IntegrityViolation(std::string("corrupt ") + what +
                                      ": bad number for " + key + ": " + value);
  }
  return Status::OK();
}

Status CheckNoLeftovers(const std::map<std::string, std::string>& fields,
                        const char* what) {
  if (fields.empty()) return Status::OK();
  return Status::IntegrityViolation(std::string("corrupt ") + what +
                                    ": unknown field: " +
                                    fields.begin()->first);
}

}  // namespace

Result<ShardPlan> ShardPlan::Create(size_t total, int shards) {
  if (shards < 1) {
    return Status::InvalidArgument("shard count must be >= 1, got " +
                                   std::to_string(shards));
  }
  return ShardPlan(total, shards);
}

ShardRange ShardPlan::Range(int shard) const {
  // 128-bit intermediates: total * shards can exceed 64 bits for huge
  // ranges, and the partition must stay exact.
  using U128 = unsigned __int128;
  U128 n = total_;
  U128 k = static_cast<U128>(shards_);
  U128 w = static_cast<U128>(shard);
  return ShardRange{static_cast<size_t>(n * w / k),
                    static_cast<size_t>(n * (w + 1) / k)};
}

Result<int> ParseShardsValue(std::string_view value) {
  int shards = 0;
  if (!ParseExact(value, &shards) || shards < 0) {
    return Status::InvalidArgument("--shards expects a non-negative integer, "
                                   "got '" +
                                   std::string(value) + "'");
  }
  return shards == 0 ? 1 : shards;
}

std::string ShardPlanPath(const std::string& dir) {
  return dir + "/plan.manifest";
}

std::string ShardManifestPath(const std::string& dir, int shard) {
  return dir + "/shard-" + std::to_string(shard) + ".manifest";
}

std::string ShardPayloadPath(const std::string& dir, int shard) {
  return dir + "/shard-" + std::to_string(shard) + ".bin";
}

std::string SerializeShardPlanInfo(const ShardPlanInfo& info) {
  std::string out(kPlanMagic);
  out += '\n';
  out += "sweep=" + info.sweep + '\n';
  out += "total=" + std::to_string(info.total) + '\n';
  out += "shards=" + std::to_string(info.shards) + '\n';
  out += "seed=" + std::to_string(info.seed) + '\n';
  return out;
}

Result<ShardPlanInfo> ParseShardPlanInfo(std::string_view text) {
  const char* what = "shard plan";
  HSIS_ASSIGN_OR_RETURN(auto fields, ParseFields(text, kPlanMagic, what));
  ShardPlanInfo info;
  HSIS_ASSIGN_OR_RETURN(info.sweep, TakeField(fields, "sweep", what));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "total", what, &info.total));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "shards", what, &info.shards));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "seed", what, &info.seed));
  HSIS_RETURN_IF_ERROR(CheckNoLeftovers(fields, what));
  if (info.shards < 1) {
    return Status::IntegrityViolation("corrupt shard plan: shards must be "
                                      ">= 1");
  }
  return info;
}

std::string SerializeShardManifest(const ShardManifest& manifest) {
  std::string out(kShardMagic);
  out += '\n';
  out += "sweep=" + manifest.sweep + '\n';
  out += "shard=" + std::to_string(manifest.shard) + '\n';
  out += "shards=" + std::to_string(manifest.shards) + '\n';
  out += "total=" + std::to_string(manifest.total) + '\n';
  out += "begin=" + std::to_string(manifest.begin) + '\n';
  out += "end=" + std::to_string(manifest.end) + '\n';
  out += "seed=" + std::to_string(manifest.seed) + '\n';
  out += "records=" + std::to_string(manifest.records) + '\n';
  out += "payload_sha256=" + manifest.payload_sha256 + '\n';
  return out;
}

Result<ShardManifest> ParseShardManifest(std::string_view text) {
  const char* what = "shard manifest";
  HSIS_ASSIGN_OR_RETURN(auto fields, ParseFields(text, kShardMagic, what));
  ShardManifest m;
  HSIS_ASSIGN_OR_RETURN(m.sweep, TakeField(fields, "sweep", what));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "shard", what, &m.shard));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "shards", what, &m.shards));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "total", what, &m.total));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "begin", what, &m.begin));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "end", what, &m.end));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "seed", what, &m.seed));
  HSIS_RETURN_IF_ERROR(TakeNumber(fields, "records", what, &m.records));
  HSIS_ASSIGN_OR_RETURN(m.payload_sha256,
                        TakeField(fields, "payload_sha256", what));
  HSIS_RETURN_IF_ERROR(CheckNoLeftovers(fields, what));
  if (m.begin > m.end || m.end > m.total || m.records != m.end - m.begin ||
      m.shard < 0 || m.shards < 1 || m.shard >= m.shards ||
      m.payload_sha256.size() != 2 * crypto::Sha256::kDigestSize) {
    return Status::IntegrityViolation(
        "corrupt shard manifest: internally inconsistent fields");
  }
  return m;
}

Bytes SerializeShardPayload(const std::vector<Bytes>& records) {
  Bytes out(kPayloadMagic, kPayloadMagic + sizeof(kPayloadMagic));
  AppendUint32BE(out, kPayloadVersion);
  AppendUint64BE(out, static_cast<uint64_t>(records.size()));
  for (const Bytes& record : records) AppendLengthPrefixed(out, record);
  return out;
}

Result<std::vector<Bytes>> ParseShardPayload(const Bytes& payload) {
  auto corrupt = [](const char* why) {
    return Status::IntegrityViolation(std::string("corrupt shard payload: ") +
                                      why);
  };
  constexpr size_t kHeader = sizeof(kPayloadMagic) + 4 + 8;
  if (payload.size() < kHeader) return corrupt("truncated header");
  if (std::memcmp(payload.data(), kPayloadMagic, sizeof(kPayloadMagic)) != 0) {
    return corrupt("bad magic");
  }
  if (ReadUint32BE(payload, sizeof(kPayloadMagic)) != kPayloadVersion) {
    return corrupt("unsupported version");
  }
  uint64_t count = ReadUint64BE(payload, sizeof(kPayloadMagic) + 4);
  // Each record costs at least its 4-byte length prefix; anything
  // larger than that bound is a forged count, not a real payload.
  if (count > (payload.size() - kHeader) / 4) {
    return corrupt("record count exceeds payload size");
  }
  std::vector<Bytes> records;
  records.reserve(static_cast<size_t>(count));
  size_t offset = kHeader;
  for (uint64_t i = 0; i < count; ++i) {
    auto record = ReadLengthPrefixed(payload, &offset);
    if (!record.ok()) return corrupt("truncated record");
    records.push_back(std::move(record).value());
  }
  if (offset != payload.size()) return corrupt("trailing bytes");
  return records;
}

Status WriteShardPlan(const ShardSweepSpec& spec, const ShardPlan& plan,
                      const std::string& dir) {
  if (spec.total != plan.total()) {
    return Status::InvalidArgument(
        "sweep has " + std::to_string(spec.total) + " indices but the plan "
        "partitions " + std::to_string(plan.total()));
  }
  ShardPlanInfo info;
  info.sweep = spec.name;
  info.total = spec.total;
  info.shards = plan.shards();
  info.seed = spec.seed;
  return WriteFile(ShardPlanPath(dir), SerializeShardPlanInfo(info));
}

Result<ShardPlanInfo> ReadShardPlan(const std::string& dir) {
  auto text = ReadFile(ShardPlanPath(dir));
  if (!text.ok()) {
    return Status::NotFound("no shard plan in " + dir +
                            " (expected plan.manifest)");
  }
  return ParseShardPlanInfo(*text);
}

ShardRunner::ShardRunner(ShardSweepSpec spec, ShardPlan plan)
    : spec_(std::move(spec)), plan_(plan) {}

Status ShardRunner::Run(int shard, const std::string& dir, int threads) const {
  if (!spec_.record) {
    return Status::InvalidArgument("sweep spec has no record function");
  }
  if (spec_.total != plan_.total()) {
    return Status::InvalidArgument("sweep/plan index-range mismatch");
  }
  if (shard < 0 || shard >= plan_.shards()) {
    return Status::InvalidArgument(
        "shard " + std::to_string(shard) + " out of range for a " +
        std::to_string(plan_.shards()) + "-shard plan");
  }
  ShardRange range = plan_.Range(shard);
  std::vector<Bytes> records(range.size());
  HSIS_RETURN_IF_ERROR(ParallelForWithStatus(
      threads, range.size(), [&](size_t i) -> Status {
        HSIS_ASSIGN_OR_RETURN(records[i], spec_.record(range.begin + i));
        return Status::OK();
      }));

  Bytes payload = SerializeShardPayload(records);
  ShardManifest manifest;
  manifest.sweep = spec_.name;
  manifest.shard = shard;
  manifest.shards = plan_.shards();
  manifest.total = plan_.total();
  manifest.begin = range.begin;
  manifest.end = range.end;
  manifest.seed = spec_.seed;
  manifest.records = range.size();
  manifest.payload_sha256 = Sha256Hex(payload);

  // Payload first, manifest second: the manifest is the commit marker,
  // so a crash mid-write never leaves a shard that passes validation.
  HSIS_RETURN_IF_ERROR(
      WriteFile(ShardPayloadPath(dir, shard),
                std::string_view(reinterpret_cast<const char*>(payload.data()),
                                 payload.size())));
  return WriteFile(ShardManifestPath(dir, shard),
                   SerializeShardManifest(manifest));
}

Result<std::vector<Bytes>> ReadShardRecords(const ShardPlanInfo& info,
                                            const std::string& dir,
                                            int shard) {
  HSIS_ASSIGN_OR_RETURN(ShardPlan plan,
                        ShardPlan::Create(info.total, info.shards));
  if (shard < 0 || shard >= plan.shards()) {
    return Status::InvalidArgument(
        "shard " + std::to_string(shard) + " out of range for a " +
        std::to_string(plan.shards()) + "-shard plan");
  }
  const std::string tag = "shard " + std::to_string(shard);
  auto manifest_text = ReadFile(ShardManifestPath(dir, shard));
  if (!manifest_text.ok()) {
    return Status::NotFound(tag + " has no manifest — run (or re-run) " + tag +
                            " and merge again");
  }
  HSIS_ASSIGN_OR_RETURN(ShardManifest m, ParseShardManifest(*manifest_text));
  if (m.sweep != info.sweep || m.shards != info.shards ||
      m.total != info.total || m.seed != info.seed) {
    return Status::InvalidArgument(tag + " manifest belongs to a different "
                                   "plan (sweep/shards/total/seed mismatch)");
  }
  if (m.shard != shard) {
    return Status::InvalidArgument(
        tag + " manifest claims to be shard " + std::to_string(m.shard) +
        " — duplicated or misplaced shard files");
  }
  ShardRange expected = plan.Range(shard);
  if (m.begin != expected.begin || m.end != expected.end) {
    const char* how = m.begin < expected.begin ? "overlaps the previous shard"
                                               : "leaves a gap in the range";
    return Status::InvalidArgument(
        tag + " covers [" + std::to_string(m.begin) + ", " +
        std::to_string(m.end) + ") but the plan assigns [" +
        std::to_string(expected.begin) + ", " + std::to_string(expected.end) +
        ") — " + how);
  }

  auto payload_text = ReadFile(ShardPayloadPath(dir, shard));
  if (!payload_text.ok()) {
    return Status::NotFound(tag + " has no payload file — re-run " + tag +
                            " and merge again");
  }
  Bytes payload = ToBytes(*payload_text);
  if (Sha256Hex(payload) != m.payload_sha256) {
    return Status::IntegrityViolation(tag + " payload does not match its "
                                      "manifest SHA-256 — re-run " + tag);
  }
  HSIS_ASSIGN_OR_RETURN(std::vector<Bytes> records, ParseShardPayload(payload));
  if (records.size() != m.records) {
    return Status::IntegrityViolation(
        tag + " holds " + std::to_string(records.size()) +
        " records, manifest promises " + std::to_string(m.records));
  }
  return records;
}

Status ValidateShard(const ShardPlanInfo& info, const std::string& dir,
                     int shard) {
  return ReadShardRecords(info, dir, shard).status();
}

Result<Bytes> MergeShards(const std::string& dir,
                          const std::string& expected_sweep) {
  HSIS_ASSIGN_OR_RETURN(ShardPlanInfo info, ReadShardPlan(dir));
  if (!expected_sweep.empty() && info.sweep != expected_sweep) {
    return Status::InvalidArgument("results directory holds sweep '" +
                                   info.sweep + "', expected '" +
                                   expected_sweep + "'");
  }
  HSIS_ASSIGN_OR_RETURN(ShardPlan plan,
                        ShardPlan::Create(info.total, info.shards));

  Bytes merged;
  for (int k = 0; k < plan.shards(); ++k) {
    HSIS_ASSIGN_OR_RETURN(std::vector<Bytes> records,
                          ReadShardRecords(info, dir, k));
    for (const Bytes& record : records) Append(merged, record);
  }
  return merged;
}

}  // namespace hsis::common

#ifndef HSIS_COMMON_SCHEDULER_H_
#define HSIS_COMMON_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/perf_record.h"
#include "common/result.h"
#include "common/shard.h"

/// \file
/// \brief Fault-tolerant supervision for sharded sweeps: dispatch,
/// detect, retry, resume.
///
/// `common/shard.h` gives a sharded run crash-safe commit semantics
/// (payload first, manifest last) and a merge that names exactly which
/// shard to re-run — but acting on that signal was manual. The
/// `ShardScheduler` closes the loop: it owns a results directory,
/// dispatches shard jobs to a bounded pool of workers through a
/// pluggable `ShardExecutor` (separate `shard_worker` processes, or
/// in-process threads for tests and single-binary drivers), classifies
/// every failure with the `ValidateShard` taxonomy, and retries with
/// capped exponential backoff, per-shard attempt limits, and per-attempt
/// wall-clock timeouts. Completed shards are **never recomputed**: a
/// startup scan treats every manifest-committed shard as done, so a
/// killed run resumes where it left off, and the final `MergeShards`
/// output stays byte-identical to the serial run.
///
/// Failure policy, by `ValidateShard` status after an attempt (the
/// job's own exit status is advisory — the committed files are the
/// truth):
///
///  * OK                  — shard complete, even if the job crashed
///                          after committing;
///  * NotFound            — the attempt never committed: re-run;
///  * IntegrityViolation  — corrupt payload or manifest: quarantine the
///                          files under `quarantine/`, then re-run;
///  * InvalidArgument     — the directory contradicts the plan: an
///                          operator error no retry can fix — fail
///                          fast.
///
/// \par Usage
/// \code
///   ShardPlanInfo info = ReadShardPlan(dir).value();
///   ShardScheduleOptions options;
///   options.workers = 4;
///   options.max_attempts = 3;
///   options.shard_timeout_ms = 60000;
///   ShardScheduler scheduler(
///       info, dir, MakeProcessShardExecutor(worker_binary, dir), options);
///   ShardScheduleSummary summary = scheduler.Run().value();
///   Bytes merged = MergeShards(dir, info.sweep).value();  // == serial
/// \endcode

namespace hsis::common {

/// Launches and observes shard jobs on behalf of the scheduler. One
/// executor instance serves one results directory; jobs are identified
/// by the handle `Start` returns. Implementations decide what a "job"
/// is — a forked `shard_worker` process, an in-process thread — but
/// must keep `Poll` non-blocking.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;

  /// Starts one attempt of shard `shard`; returns an opaque job handle.
  /// Failure to even launch (e.g. fork failure) is an error here; the
  /// scheduler counts it as a failed attempt.
  virtual Result<int> Start(int shard) = 0;

  /// Non-blocking completion check for `job`. Returns false while the
  /// job is still running; once it has finished, returns true and
  /// writes the job's own exit status (OK for a clean exit) to
  /// `status`. A finished handle must not be polled again.
  virtual bool Poll(int job, Status* status) = 0;

  /// Requests termination of a running `job` (timeout enforcement).
  /// `Poll` still reports the job's eventual completion. Process
  /// executors SIGKILL; in-process executors raise the job's
  /// cancellation flag and wait for it to be honored.
  virtual void Kill(int job) = 0;
};

/// Creates an executor that runs each shard attempt as a separate
/// process: `binary --shard=<k> --out=<dir> --threads=<threads>` (the
/// `shard_worker` CLI contract). `Kill` delivers SIGKILL, so hung or
/// runaway workers are reclaimed; the interrupted attempt can never
/// look complete because the manifest is written last.
std::unique_ptr<ShardExecutor> MakeProcessShardExecutor(std::string binary,
                                                        std::string dir,
                                                        int threads = 1);

/// An in-process shard job: computes shard `shard` and returns its
/// status. Must poll `cancelled` at reasonable intervals and return
/// promptly once it is set — that is the in-process analogue of
/// SIGKILL, used for timeout enforcement.
using InProcessShardJob =
    std::function<Status(int shard, const std::atomic<bool>& cancelled)>;

/// Creates an executor that runs each shard attempt as `job` on a
/// dedicated in-process thread. The fault-injection seam for tests, and
/// the executor of choice for single-binary drivers.
std::unique_ptr<ShardExecutor> MakeInProcessShardExecutor(
    InProcessShardJob job);

/// Creates an in-process executor whose jobs run `ShardRunner(spec,
/// plan).Run(shard, dir, threads)` — the single-binary scheduling path
/// used by `export_landscapes --shards=K --schedule`. The jobs ignore
/// cancellation (shard records are finite computations); timeouts are
/// only advisory with this executor.
std::unique_ptr<ShardExecutor> MakeRunnerShardExecutor(ShardSweepSpec spec,
                                                       ShardPlan plan,
                                                       std::string dir,
                                                       int threads = 1);

/// Tuning knobs of a scheduled run. The defaults suit in-process use;
/// multi-process drivers usually raise `workers` and set a timeout.
struct ShardScheduleOptions {
  /// Maximum number of concurrently running shard jobs (>= 1).
  int workers = 1;
  /// Per-shard attempt cap (first attempt + retries, >= 1).
  int max_attempts = 3;
  /// Wall-clock limit per attempt in milliseconds; a job running longer
  /// is killed and the attempt counts as failed. 0 = no limit.
  int64_t shard_timeout_ms = 0;
  /// Backoff before retry attempt `a` is `backoff_initial_ms *
  /// 2^(a-2)`, capped at `backoff_max_ms` (so the first retry waits
  /// `backoff_initial_ms`). 0 disables backoff.
  int64_t backoff_initial_ms = 100;
  /// Upper bound of the exponential backoff in milliseconds.
  int64_t backoff_max_ms = 5000;
  /// Sleep between supervision passes in milliseconds.
  int64_t poll_interval_ms = 2;
};

/// What a scheduled run did, shard by shard — the machine-readable
/// counterpart is `ToScheduleRecord` + `ScheduleRecordToJson`
/// (common/perf_record.h), which CI asserts on.
struct ShardScheduleSummary {
  std::string sweep;          ///< Sweep name from the plan manifest.
  int shards = 0;             ///< Shard count of the plan.
  int resumed = 0;            ///< Shards already committed at startup.
  int retries = 0;            ///< Attempts beyond each shard's first.
  int quarantined = 0;        ///< Corrupt files moved to `quarantine/`.
  int timeouts = 0;           ///< Attempts killed for exceeding the timeout.
  std::vector<int> attempts;  ///< Attempts per shard this run (resumed = 0).
  double wall_ms = 0;         ///< Wall-clock time of the scheduled run.
};

/// Converts a run summary to its serializable `hsis-schedule-v1` form.
ScheduleRecord ToScheduleRecord(const ShardScheduleSummary& summary);

/// Backoff delay before the next attempt after `attempts_so_far`
/// attempts: `initial_ms * 2^(attempts_so_far - 1)` saturated at
/// `max_ms`. Doubling is overflow-safe — once the value passes
/// `max_ms / 2` (or the int64 range would overflow), it saturates to
/// `max_ms` instead of wrapping, so `max_ms` near INT64_MAX is safe.
/// `initial_ms == 0` disables backoff (returns 0).
int64_t BackoffDelayMs(int64_t initial_ms, int64_t max_ms,
                       int attempts_so_far);

/// Path of the quarantine subdirectory inside results directory `dir`;
/// corrupt shard files are moved there as
/// `shard-<k>.q<N>.{bin,manifest}` instead of being deleted, so
/// post-mortems keep their evidence.
std::string ShardQuarantineDir(const std::string& dir);

/// Supervises one sharded run to completion. Single-threaded control
/// loop; all parallelism lives in the executor's jobs. Use once and
/// discard.
class ShardScheduler {
 public:
  /// Binds the scheduler to the run described by `info` (normally the
  /// parsed `plan.manifest`) over results directory `dir`, dispatching
  /// through `executor` under `options`.
  ShardScheduler(ShardPlanInfo info, std::string dir,
                 std::unique_ptr<ShardExecutor> executor,
                 ShardScheduleOptions options);

  /// Drives every shard of the plan to the committed state and returns
  /// the run summary. Resumable and idempotent: committed shards are
  /// detected in a startup scan and skipped; corrupt shards are
  /// quarantined and re-run; a clean directory runs everything. Errors:
  ///
  ///  * InvalidArgument — bad options, a plan/`info` contradiction, or
  ///    a shard whose committed files contradict the plan (fail fast —
  ///    no retry can fix an operator error);
  ///  * Internal — some shard exhausted `max_attempts`; the message
  ///    names the shard and the last failure, so the operator can fix
  ///    the cause and re-run the same command to resume.
  ///
  /// On error, running jobs are killed (and reaped) before returning.
  Result<ShardScheduleSummary> Run();

 private:
  ShardPlanInfo info_;
  std::string dir_;
  std::unique_ptr<ShardExecutor> executor_;
  ShardScheduleOptions options_;
};

}  // namespace hsis::common

#endif  // HSIS_COMMON_SCHEDULER_H_

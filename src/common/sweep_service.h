#ifndef HSIS_COMMON_SWEEP_SERVICE_H_
#define HSIS_COMMON_SWEEP_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/shard.h"
#include "common/sweep_wire.h"

/// \file
/// \brief The sweep-service daemon: lease-based fan-out of one
/// `ShardPlan` to pull-based workers over TCP.
///
/// The shard scheduler (common/scheduler.h) supervises one run by
/// *pushing* attempts into processes it forked itself — it cannot use
/// workers it did not start. The sweep service inverts control for the
/// multi-machine case: a long-running daemon owns the queue of pending
/// shards, and any number of worker processes — on any host that
/// shares the results directory — *pull* time-bounded shard leases
/// over the `hsis-sweepd-v1` protocol (common/sweep_wire.h), compute
/// the shard with the ordinary `ShardRunner`, and report completion.
/// Workers are disposable: a lease that is neither completed nor
/// heartbeat-renewed by its deadline is reclaimed and the shard
/// re-granted, so a SIGKILLed worker delays the sweep by at most one
/// lease period and never corrupts it.
///
/// The layering keeps every fault decision testable without sockets:
///
///  * `ShardLeaseTable` — the pure lease state machine. No I/O beyond
///    the results directory, no clock of its own (every call takes
///    `now_ms`), no threads. All fault classification delegates to the
///    `ValidateShard` taxonomy of common/shard.h, mapped exactly as the
///    scheduler maps it (see `docs/SWEEP_SERVICE.md` §3):
///    OK = committed, NotFound = re-grant, IntegrityViolation =
///    quarantine then re-grant, InvalidArgument = fail the run fast.
///  * `SweepService` — the TCP daemon: accept loop, per-connection
///    handler threads, a periodic expiry sweep, and the frame
///    dispatch, all serialized onto one `ShardLeaseTable` by a mutex.
///  * `SweepServiceClient` — a thread-safe blocking RPC client used by
///    the worker CLI (examples/sweep_client.cpp), the tests, and the
///    bench harness.
///
/// The merge stays byte-identical to a serial run for the same reason
/// sharded runs are (common/shard.h): records are pure functions of
/// the global index, commits are payload-first / manifest-last, and
/// duplicate executions of one shard write identical bytes, so even a
/// zombie worker racing its replacement is harmless. The daemon merges
/// with the ordinary `MergeShards` once every shard is committed.
///
/// \par Usage
/// \code
///   ShardPlanInfo info = ReadShardPlan(dir).value();
///   SweepServiceOptions options;
///   options.lease.lease_ms = 30000;
///   auto service = SweepService::Start(info, dir, options).value();
///   std::printf("listening on port %d\n", service->port());
///   Status done = service->WaitUntilDone();   // drained, failed, or shutdown
///   service->Stop();
///   if (done.ok()) {
///     Bytes merged = MergeShards(dir, info.sweep).value();  // == serial
///   }
/// \endcode

namespace hsis::common {

/// Lease-policy knobs shared by the table and the daemon.
struct SweepLeaseOptions {
  /// Lease duration in milliseconds: a worker must complete or
  /// heartbeat within this budget or the shard is reclaimed. Size it
  /// to a small multiple of one shard's compute time (>= 1).
  int64_t lease_ms = 30000;
  /// Grant cap per shard (first grant + re-grants, >= 1); a shard
  /// whose attempts are exhausted fails the whole run, mirroring the
  /// scheduler's `max_attempts`.
  int max_attempts = 3;
  /// Poll delay suggested to workers when every pending shard is
  /// leased or backing off (>= 1).
  int64_t retry_ms = 200;
  /// Backoff before re-granting a shard whose attempt failed:
  /// `BackoffDelayMs(backoff_initial_ms, backoff_max_ms, attempts)`,
  /// the scheduler's curve. 0 disables backoff.
  int64_t backoff_initial_ms = 100;
  /// Upper bound of the re-grant backoff in milliseconds.
  int64_t backoff_max_ms = 5000;
};

/// A granted lease, as the table reports it (the daemon adds the plan
/// identity fields when it serializes the `lease-grant` frame).
struct SweepGrant {
  uint64_t lease_id = 0;  ///< Unique per grant, never reused.
  int shard = 0;          ///< Leased shard index.
  ShardRange range;       ///< Global index range of the shard.
  int attempt = 1;        ///< 1-based grant count for this shard.
};

/// Why no lease was granted: the sweep is drained (exit) or every
/// pending shard is currently leased or backing off (poll again).
struct SweepNoGrant {
  bool drained = false;   ///< True once every shard is committed.
  int64_t retry_ms = 0;   ///< Suggested poll delay when not drained.
};

/// Outcome of a completion report.
struct SweepCompleteOutcome {
  bool duplicate = false;  ///< True when the shard was already committed.
  int committed = 0;       ///< Committed shards after this report.
};

/// Progress counters of a lease table / running daemon; the wire-level
/// snapshot (`SweepStatusReply`) is derived from this.
struct SweepServiceStats {
  int shards = 0;       ///< Shard count of the plan.
  int committed = 0;    ///< Shards committed (including resumed).
  int leased = 0;       ///< Shards currently under lease.
  int pending = 0;      ///< Shards waiting (or backing off) for a grant.
  int resumed = 0;      ///< Shards already committed at startup.
  int retries = 0;      ///< Grants beyond each shard's first.
  int expired = 0;      ///< Leases reclaimed at their deadline.
  int quarantined = 0;  ///< Corrupt files moved to quarantine/.
  int failed_reports = 0;  ///< `fail` frames workers sent.
};

/// The pure lease state machine over one results directory. Not
/// thread-safe — the daemon serializes access with a mutex; tests
/// drive it directly with a fake clock. Every public call takes the
/// caller's clock reading `now_ms` (any monotonic millisecond scale)
/// and internally reclaims expired leases first, so no call ever
/// observes a stale lease.
class ShardLeaseTable {
 public:
  /// Binds a table to the run described by `info` (the parsed
  /// `plan.manifest`) over results directory `dir` and scans the
  /// directory exactly like the scheduler's startup scan: committed
  /// shards resume as done, corrupt shards are quarantined, a shard
  /// contradicting the plan refuses service with InvalidArgument.
  /// `on_event` (optional) receives one human-readable line per state
  /// transition — grants, renewals, completions, expiries,
  /// quarantines — for the daemon's event log.
  static Result<ShardLeaseTable> Create(
      ShardPlanInfo info, std::string dir, SweepLeaseOptions options,
      std::function<void(const std::string&)> on_event = nullptr);

  /// Grants the lowest-numbered ready pending shard to `worker`, or
  /// explains why nothing is grantable (`SweepNoGrant`). Errors: the
  /// terminal run status once the run has failed (attempt exhaustion
  /// or a plan contradiction) — pollers learn the run is dead instead
  /// of spinning forever.
  Result<std::variant<SweepGrant, SweepNoGrant>> Acquire(
      const std::string& worker, int64_t now_ms);

  /// Renews lease `lease_id` on `shard`, moving its deadline to
  /// `now_ms + lease_ms`; returns the granted duration. Errors:
  /// NotFound when the lease is unknown or already reclaimed (the
  /// worker must abandon the shard — its next Complete may still be
  /// accepted idempotently), InvalidArgument when `shard` does not
  /// match the lease (a confused worker).
  Result<int64_t> Renew(uint64_t lease_id, int shard, int64_t now_ms);

  /// Accepts a completion report for `shard`: revalidates the
  /// committed files on disk (`ValidateShard`) and cross-checks the
  /// worker-reported manifest digest `payload_sha256`. Idempotent:
  /// completing an already-committed shard with a matching digest is
  /// acknowledged as a duplicate (the expected outcome when a lease
  /// expired but the original worker finished anyway — pure sweeps
  /// write identical bytes). `lease_id` may be stale; the committed
  /// files are the truth. Errors map the `ValidateShard` taxonomy:
  ///
  ///  * NotFound           — nothing committed on disk: the claim is
  ///                         rejected, the lease (if held) released,
  ///                         and the shard re-granted — usually a
  ///                         worker writing to the wrong `--out`;
  ///  * IntegrityViolation — corrupt files or a digest mismatch:
  ///                         quarantined and re-granted;
  ///  * InvalidArgument    — files contradict the plan: the run fails
  ///                         fast;
  ///  * Internal           — the run already failed.
  Result<SweepCompleteOutcome> Complete(uint64_t lease_id, int shard,
                                        const std::string& payload_sha256,
                                        int64_t now_ms);

  /// Records a worker-reported failure, releases the lease, and
  /// re-queues the shard (with backoff) or fails the run when its
  /// attempts are exhausted. Returns whether the shard will be
  /// retried. NotFound when the lease is unknown or already reclaimed
  /// (the expiry sweep got there first — nothing further to do).
  Result<bool> ReportFailure(uint64_t lease_id, int shard,
                             const std::string& message, int64_t now_ms);

  /// Reclaims every lease whose deadline has passed and returns how
  /// many were reclaimed. Each reclaimed shard is classified by
  /// `ValidateShard`: a worker that died *after* committing counts as
  /// completed; otherwise the shard is re-queued (quarantining corrupt
  /// files) or, out of attempts, fails the run. Called internally by
  /// every other mutator, and periodically by the daemon so reclaim
  /// latency is bounded by the expiry poll, not by worker traffic.
  int ExpireLeases(int64_t now_ms);

  /// True once every shard is committed.
  bool drained() const;

  /// OK while the run is healthy; the terminal InvalidArgument /
  /// Internal status once it has failed. A failed run stops granting
  /// but keeps every committed shard on disk for a later resume.
  const Status& run_status() const { return run_status_; }

  /// Progress counters snapshot (`committed`/`leased`/`pending` are
  /// derived from the current shard states; the rest are monotonic).
  SweepServiceStats stats() const;

  /// The plan this table serves.
  const ShardPlanInfo& info() const { return info_; }

  /// Per-shard grant counts (resumed shards report 0), scheduler
  /// `attempts` vocabulary.
  const std::vector<int>& attempts() const { return attempts_; }

 private:
  enum class ShardState { kPending, kLeased, kCommitted, kFailed };

  struct Lease {
    int shard = 0;
    std::string worker;
    int64_t deadline_ms = 0;
  };

  ShardLeaseTable(ShardPlanInfo info, std::string dir,
                  SweepLeaseOptions options,
                  std::function<void(const std::string&)> on_event);

  void Emit(const std::string& line);
  Status Quarantine(int shard);
  /// Marks `shard` committed, caching its manifest digest.
  Status MarkCommitted(int shard, const char* how);
  /// One attempt of `shard` ended without a commit: re-queue with
  /// backoff, or fail the run when attempts are exhausted.
  void AttemptFailed(int shard, const Status& why, int64_t now_ms);
  /// Classifies `shard` after a reclaim or failure with ValidateShard
  /// and applies the taxonomy transition.
  void ReclaimShard(int shard, const char* why, int64_t now_ms);

  ShardPlanInfo info_;
  std::string dir_;
  SweepLeaseOptions options_;
  std::function<void(const std::string&)> on_event_;
  ShardPlan plan_;

  std::vector<ShardState> states_;
  std::vector<int> attempts_;
  std::vector<int64_t> ready_at_ms_;       // backoff gate per shard
  std::vector<std::string> manifest_sha_;  // cached digest once committed
  std::map<uint64_t, Lease> leases_;       // active leases by id
  uint64_t next_lease_id_ = 1;
  int quarantine_seq_ = 0;
  Status run_status_;
  SweepServiceStats stats_;
};

/// Daemon configuration.
struct SweepServiceOptions {
  /// Interface to bind; loopback by default — bind a routable address
  /// explicitly when workers live on other hosts.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back
  /// via `SweepService::port`).
  int port = 0;
  /// Lease policy forwarded to the `ShardLeaseTable`.
  SweepLeaseOptions lease;
  /// Cadence of the daemon's own expiry sweep in milliseconds, the
  /// upper bound on lease-reclaim latency when no requests arrive.
  int64_t expiry_poll_ms = 50;
  /// Clock override for tests (monotonic milliseconds); defaults to
  /// `std::chrono::steady_clock`.
  std::function<int64_t()> now_ms;
  /// Optional sink for one-line state-transition events.
  std::function<void(const std::string&)> on_event;
};

/// The TCP daemon. `Start` binds, listens, and spawns the accept loop;
/// the owner then blocks on `WaitUntilDone` and finally calls `Stop`
/// (also run by the destructor). All public methods are thread-safe.
class SweepService {
 public:
  /// Binds `options.host:options.port`, scans `dir` for resumable
  /// shards (the `ShardLeaseTable::Create` contract), and starts
  /// serving. Errors: InvalidArgument for bad options or a directory
  /// contradicting the plan, Internal for socket failures.
  static Result<std::unique_ptr<SweepService>> Start(
      ShardPlanInfo info, std::string dir, SweepServiceOptions options);

  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// The bound TCP port (resolves ephemeral port 0 requests).
  int port() const { return port_; }

  /// True once every shard is committed.
  bool drained() const;

  /// The lease table's run status: OK while healthy, the terminal
  /// error once the run has failed.
  Status run_status() const;

  /// Wire-shaped progress snapshot (same struct the `status` frame
  /// returns).
  SweepStatusReply Snapshot() const;

  /// Per-shard grant counts, for the drain summary.
  std::vector<int> Attempts() const;

  /// Blocks until the sweep drains (returns OK), the run fails
  /// (returns the terminal status), a client requests shutdown
  /// (returns FailedPrecondition naming the remaining shards), or
  /// `Stop` is called from another thread (returns the state at that
  /// moment). The listener keeps serving after this returns — late
  /// pollers still receive the drained notice — until `Stop`.
  Status WaitUntilDone();

  /// Shuts the listener down, unblocks every connection, and joins
  /// all service threads. Idempotent.
  void Stop();

 private:
  SweepService() = default;

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Dispatches one parsed request frame under the table mutex and
  /// returns the reply frame.
  SweepFrame Dispatch(const SweepFrame& request);
  int64_t NowMs() const;

  struct Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

/// Blocking RPC client for the daemon. One instance holds one TCP
/// connection; calls are serialized by an internal mutex so a
/// heartbeat thread can share the instance with the worker loop.
/// Every RPC returns the daemon's typed error (`error` frame mapped
/// back through `FromSweepError`) or a transport-level Internal
/// status; a `ProtocolViolation` from either side poisons the
/// connection.
class SweepServiceClient {
 public:
  /// Connects to `host:port` with `timeout_ms` applied to every
  /// subsequent send and receive.
  static Result<std::unique_ptr<SweepServiceClient>> Connect(
      const std::string& host, int port, int64_t timeout_ms = 10000);

  ~SweepServiceClient();

  SweepServiceClient(const SweepServiceClient&) = delete;
  SweepServiceClient& operator=(const SweepServiceClient&) = delete;

  /// Requests the next lease for `worker`; either a grant or the
  /// daemon's no-work notice.
  Result<std::variant<SweepLeaseGrant, SweepNoWork>> RequestLease(
      const std::string& worker);

  /// Renews a held lease; the ack carries the fresh duration.
  Result<SweepHeartbeatAck> Heartbeat(uint64_t lease_id, int shard);

  /// Reports a committed shard with its manifest digest.
  Result<SweepCompleteAck> Complete(uint64_t lease_id, int shard,
                                    const std::string& payload_sha256);

  /// Reports a failed attempt, releasing the lease early.
  Result<SweepFailAck> ReportFailure(uint64_t lease_id, int shard,
                                     const std::string& message);

  /// Fetches the daemon's progress snapshot.
  Result<SweepStatusReply> QueryStatus();

  /// Asks the daemon to stop serving.
  Result<SweepShutdownAck> RequestShutdown();

 private:
  SweepServiceClient() = default;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Reads exactly one length-prefixed `hsis-sweepd-v1` frame body from
/// connected socket `fd` (both daemon and client use this). Errors:
/// NotFound on clean EOF before the first byte, ProtocolViolation on a
/// zero or oversized length prefix or mid-frame EOF, Internal on
/// transport failures (including a receive timeout).
Result<Bytes> ReadSweepFrame(int fd);

/// Writes `body` as one length-prefixed frame to connected socket
/// `fd`. Internal on transport failures.
Status WriteSweepFrame(int fd, const Bytes& body);

}  // namespace hsis::common

#endif  // HSIS_COMMON_SWEEP_SERVICE_H_

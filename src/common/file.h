#ifndef HSIS_COMMON_FILE_H_
#define HSIS_COMMON_FILE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace hsis {

/// Writes `content` to `path`, creating or truncating the file.
Status WriteFile(const std::string& path, std::string_view content);

/// Reads the whole file at `path`.
Result<std::string> ReadFile(const std::string& path);

/// Creates `path` and any missing parents (no-op when it already
/// exists), like `mkdir -p`.
Status CreateDirectories(const std::string& path);

/// Deletes the file at `path` if it exists; missing files are OK.
Status RemoveFileIfExists(const std::string& path);

/// True iff a file (or directory) exists at `path`.
bool FileExists(const std::string& path);

/// Moves the file at `from` to `to` (same filesystem), overwriting any
/// existing file at `to`. NotFound when `from` does not exist.
Status RenameFile(const std::string& from, const std::string& to);

}  // namespace hsis

#endif  // HSIS_COMMON_FILE_H_

#include "common/parallel.h"

#include <algorithm>
#include <charconv>

#include "common/logging.h"

namespace hsis::common {

int HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int threads) {
  if (threads == 0) return HardwareConcurrency();
  return std::max(1, threads);
}

Result<int> ParseThreadsValue(std::string_view value) {
  int threads = 0;
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(),
                                   threads);
  if (value.empty() || ec != std::errc() ||
      ptr != value.data() + value.size() || threads < 0) {
    return Status::InvalidArgument("--threads expects a non-negative integer, "
                                   "got '" +
                                   std::string(value) + "'");
  }
  return threads == 0 ? HardwareConcurrency() : threads;
}

std::pair<size_t, size_t> ThreadPool::ChunkBounds(size_t n, int k, int w) {
  HSIS_CHECK(k >= 1 && w >= 0 && w < k);
  size_t ku = static_cast<size_t>(k);
  size_t wu = static_cast<size_t>(w);
  return {n * wu / ku, n * (wu + 1) / ku};
}

ThreadPool::ThreadPool(int threads) {
  int k = ResolveThreadCount(threads);
  workers_.reserve(static_cast<size_t>(k - 1));
  for (int w = 1; w < k; ++w) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, w);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& body) {
  const int k = size();
  if (k == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    HSIS_CHECK(job_body_ == nullptr) << "ThreadPool::Run is not reentrant";
    job_n_ = n;
    job_body_ = &body;
    pending_workers_ = k - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  auto [lo, hi] = ChunkBounds(n, k, 0);
  for (size_t i = lo; i < hi; ++i) body(i);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  job_body_ = nullptr;
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* body;
    size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = job_body_;
      n = job_n_;
    }
    auto [lo, hi] = ChunkBounds(n, size(), worker_id);
    for (size_t i = lo; i < hi; ++i) (*body)(i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t)>& body) {
  int k = ResolveThreadCount(threads);
  // Serial fallback when the range cannot occupy every worker: a chunk
  // per index is all the parallelism there is, and spawning threads
  // that would receive empty chunks is pure overhead.
  if (k == 1 || n < static_cast<size_t>(k) || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(k);
  pool.Run(n, body);
}

void ParallelFor(int threads, size_t n, size_t batch_size,
                 const std::function<void(size_t)>& body) {
  if (batch_size <= 1) {
    ParallelFor(threads, n, body);
    return;
  }
  const size_t batches = (n + batch_size - 1) / batch_size;
  ParallelFor(threads, batches, [&](size_t b) {
    const size_t lo = b * batch_size;
    const size_t hi = std::min(n, lo + batch_size);
    for (size_t i = lo; i < hi; ++i) body(i);
  });
}

void ParallelForTiles(int threads, size_t n, size_t tile_size,
                      const std::function<void(size_t, size_t)>& body) {
  const size_t tile = tile_size == 0 ? 1 : tile_size;
  const size_t tiles = (n + tile - 1) / tile;
  ParallelFor(threads, tiles, [&](size_t t) {
    const size_t lo = t * tile;
    body(lo, std::min(n, lo + tile));
  });
}

Status ParallelForWithStatus(int threads, size_t n,
                             const std::function<Status(size_t)>& body) {
  return ParallelForWithStatus(threads, n, /*batch_size=*/1, body);
}

Status ParallelForWithStatus(int threads, size_t n, size_t batch_size,
                             const std::function<Status(size_t)>& body) {
  std::mutex err_mu;
  size_t first_error_index = n;
  Status first_error = Status::OK();
  ParallelFor(threads, n, batch_size, [&](size_t i) {
    Status s = body(i);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (i < first_error_index) {
        first_error_index = i;
        first_error = std::move(s);
      }
    }
  });
  return first_error;
}

}  // namespace hsis::common

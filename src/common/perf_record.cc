#include "common/perf_record.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hsis::common {

namespace {

void AppendJsonString(std::string& out, std::string_view value) {
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        // JSON forbids raw control characters inside strings; anything
        // below 0x20 without a short escape goes out as \u00XX so a
        // hostile bench/sweep label can never emit an invalid record.
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonNumber(std::string& out, double value) {
  char buf[40];
  int len = std::snprintf(buf, sizeof(buf), "%.17g", value);
  out.append(buf, static_cast<size_t>(len));
}

/// Minimal strict scanner over the flat record object. Tracks a cursor
/// into the input; every helper fails with InvalidArgument on the first
/// byte that does not fit the expected token.
class Scanner {
 public:
  explicit Scanner(std::string_view input) : input_(input) {}

  void SkipSpace() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == input_.size();
  }

  Result<std::string> String() {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != '"') {
      return Status::InvalidArgument("perf record: expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < input_.size() && input_[pos_] != '"') {
      char c = input_[pos_++];
      if (c == '\\') {
        if (pos_ >= input_.size()) break;
        char esc = input_[pos_++];
        if (esc == 'n') {
          out += '\n';
        } else if (esc == 't') {
          out += '\t';
        } else if (esc == 'r') {
          out += '\r';
        } else if (esc == '"' || esc == '\\') {
          out += esc;
        } else if (esc == 'u') {
          // \uXXXX — the serializer only emits code points below 0x20,
          // but accept anything in the single-byte range; multi-byte
          // code points are rejected (labels are byte strings here).
          if (pos_ + 4 > input_.size()) {
            return Status::InvalidArgument(
                "perf record: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = input_[pos_++];
            unsigned digit;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument(
                  "perf record: malformed \\u escape");
            }
            code = code * 16 + digit;
          }
          if (code > 0xFF) {
            return Status::InvalidArgument(
                "perf record: \\u escape beyond single-byte range");
          }
          out += static_cast<char>(code);
        } else {
          return Status::InvalidArgument(
              "perf record: unsupported escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        // Raw control characters are invalid JSON — exactly the bytes
        // the serializer escapes; a record containing one was produced
        // by a broken writer.
        return Status::InvalidArgument(
            "perf record: raw control character in string");
      } else {
        out += c;
      }
    }
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument("perf record: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<double> Number() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '-' || input_[pos_] == '+' ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("perf record: expected number");
    }
    std::string token(input_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument("perf record: malformed number");
    }
    return value;
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

/// Parses `text` as comma-joined non-negative integers ("1,2,0"); used
/// by `ScheduleRecord::Validate` to check the attempts field.
Result<std::vector<int>> ParseAttemptsList(const std::string& text) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    if (token.empty() || token.find_first_not_of("0123456789") !=
                             std::string::npos) {
      return Status::InvalidArgument(
          "schedule record: attempts must be comma-joined non-negative "
          "integers, got '" +
          text + "'");
    }
    out.push_back(std::atoi(token.c_str()));
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  return out;
}

}  // namespace

Status PerfRecord::Validate() const {
  if (bench.empty()) {
    return Status::InvalidArgument("perf record: bench name is empty");
  }
  if (git_describe.empty()) {
    return Status::InvalidArgument("perf record: git_describe is empty");
  }
  if (threads < 1) {
    return Status::InvalidArgument("perf record: threads must be >= 1");
  }
  if (lane.empty()) {
    return Status::InvalidArgument("perf record: lane is empty");
  }
  if (!std::isfinite(cells_per_sec) || cells_per_sec <= 0) {
    return Status::InvalidArgument(
        "perf record: cells_per_sec must be finite and > 0");
  }
  if (!std::isfinite(wall_ms) || wall_ms < 0) {
    return Status::InvalidArgument(
        "perf record: wall_ms must be finite and >= 0");
  }
  return Status::OK();
}

std::string PerfRecordToJson(const PerfRecord& record) {
  std::string out = "{\"schema\":";
  AppendJsonString(out, kPerfRecordSchema);
  out += ",\"bench\":";
  AppendJsonString(out, record.bench);
  out += ",\"threads\":";
  out += std::to_string(record.threads);
  out += ",\"lane\":";
  AppendJsonString(out, record.lane);
  if (!record.algo.empty()) {
    out += ",\"algo\":";
    AppendJsonString(out, record.algo);
  }
  out += ",\"cells_per_sec\":";
  AppendJsonNumber(out, record.cells_per_sec);
  out += ",\"wall_ms\":";
  AppendJsonNumber(out, record.wall_ms);
  out += ",\"git_describe\":";
  AppendJsonString(out, record.git_describe);
  out += "}\n";
  return out;
}

Result<PerfRecord> ParsePerfRecord(std::string_view json) {
  Scanner scanner(json);
  if (!scanner.Consume('{')) {
    return Status::InvalidArgument("perf record: expected '{'");
  }
  PerfRecord record;
  bool seen_schema = false, seen_bench = false, seen_threads = false,
       seen_lane = false, seen_algo = false, seen_cells = false,
       seen_wall = false, seen_git = false;
  bool first = true;
  while (!scanner.Consume('}')) {
    if (!first && !scanner.Consume(',')) {
      return Status::InvalidArgument("perf record: expected ',' or '}'");
    }
    first = false;
    HSIS_ASSIGN_OR_RETURN(std::string key, scanner.String());
    if (!scanner.Consume(':')) {
      return Status::InvalidArgument("perf record: expected ':' after key");
    }
    if (key == "schema") {
      if (seen_schema) {
        return Status::InvalidArgument("perf record: duplicate key 'schema'");
      }
      seen_schema = true;
      HSIS_ASSIGN_OR_RETURN(std::string schema, scanner.String());
      if (schema != kPerfRecordSchema) {
        return Status::InvalidArgument("perf record: unknown schema '" +
                                       schema + "'");
      }
    } else if (key == "bench") {
      if (seen_bench) {
        return Status::InvalidArgument("perf record: duplicate key 'bench'");
      }
      seen_bench = true;
      HSIS_ASSIGN_OR_RETURN(record.bench, scanner.String());
    } else if (key == "threads") {
      if (seen_threads) {
        return Status::InvalidArgument("perf record: duplicate key 'threads'");
      }
      seen_threads = true;
      HSIS_ASSIGN_OR_RETURN(double threads, scanner.Number());
      if (threads != static_cast<int>(threads)) {
        return Status::InvalidArgument(
            "perf record: threads must be an integer");
      }
      record.threads = static_cast<int>(threads);
    } else if (key == "lane") {
      // Optional: absent in pre-lane artifacts, which stay parseable
      // with the "scalar" default the struct carries.
      if (seen_lane) {
        return Status::InvalidArgument("perf record: duplicate key 'lane'");
      }
      seen_lane = true;
      HSIS_ASSIGN_OR_RETURN(record.lane, scanner.String());
    } else if (key == "algo") {
      // Optional: single-algorithm benches never write it, and the
      // serializer skips it when empty, so absent == empty.
      if (seen_algo) {
        return Status::InvalidArgument("perf record: duplicate key 'algo'");
      }
      seen_algo = true;
      HSIS_ASSIGN_OR_RETURN(record.algo, scanner.String());
    } else if (key == "cells_per_sec") {
      if (seen_cells) {
        return Status::InvalidArgument(
            "perf record: duplicate key 'cells_per_sec'");
      }
      seen_cells = true;
      HSIS_ASSIGN_OR_RETURN(record.cells_per_sec, scanner.Number());
    } else if (key == "wall_ms") {
      if (seen_wall) {
        return Status::InvalidArgument("perf record: duplicate key 'wall_ms'");
      }
      seen_wall = true;
      HSIS_ASSIGN_OR_RETURN(record.wall_ms, scanner.Number());
    } else if (key == "git_describe") {
      if (seen_git) {
        return Status::InvalidArgument(
            "perf record: duplicate key 'git_describe'");
      }
      seen_git = true;
      HSIS_ASSIGN_OR_RETURN(record.git_describe, scanner.String());
    } else {
      return Status::InvalidArgument("perf record: unknown key '" + key + "'");
    }
  }
  if (!scanner.AtEnd()) {
    return Status::InvalidArgument(
        "perf record: trailing bytes after record object");
  }
  if (!seen_schema || !seen_bench || !seen_threads || !seen_cells ||
      !seen_wall || !seen_git) {
    return Status::InvalidArgument("perf record: missing required key");
  }
  HSIS_RETURN_IF_ERROR(record.Validate());
  return record;
}

Status ScheduleRecord::Validate() const {
  if (sweep.empty()) {
    return Status::InvalidArgument("schedule record: sweep name is empty");
  }
  if (shards < 1) {
    return Status::InvalidArgument("schedule record: shards must be >= 1");
  }
  if (resumed < 0 || retries < 0 || quarantined < 0 || timeouts < 0) {
    return Status::InvalidArgument(
        "schedule record: counters must be non-negative");
  }
  if (!std::isfinite(wall_ms) || wall_ms < 0) {
    return Status::InvalidArgument(
        "schedule record: wall_ms must be finite and >= 0");
  }
  HSIS_ASSIGN_OR_RETURN(std::vector<int> per_shard,
                        ParseAttemptsList(attempts));
  if (per_shard.size() != static_cast<size_t>(shards)) {
    return Status::InvalidArgument(
        "schedule record: attempts lists " +
        std::to_string(per_shard.size()) + " shards, record claims " +
        std::to_string(shards));
  }
  int beyond_first = 0;
  for (int a : per_shard) beyond_first += a > 1 ? a - 1 : 0;
  if (beyond_first != retries) {
    return Status::InvalidArgument(
        "schedule record: attempts imply " + std::to_string(beyond_first) +
        " retries, record claims " + std::to_string(retries));
  }
  return Status::OK();
}

std::string ScheduleRecordToJson(const ScheduleRecord& record) {
  std::string out = "{\"schema\":";
  AppendJsonString(out, kScheduleRecordSchema);
  out += ",\"sweep\":";
  AppendJsonString(out, record.sweep);
  out += ",\"shards\":";
  out += std::to_string(record.shards);
  out += ",\"resumed\":";
  out += std::to_string(record.resumed);
  out += ",\"retries\":";
  out += std::to_string(record.retries);
  out += ",\"quarantined\":";
  out += std::to_string(record.quarantined);
  out += ",\"timeouts\":";
  out += std::to_string(record.timeouts);
  out += ",\"attempts\":";
  AppendJsonString(out, record.attempts);
  out += ",\"wall_ms\":";
  AppendJsonNumber(out, record.wall_ms);
  out += "}\n";
  return out;
}

Result<ScheduleRecord> ParseScheduleRecord(std::string_view json) {
  Scanner scanner(json);
  if (!scanner.Consume('{')) {
    return Status::InvalidArgument("schedule record: expected '{'");
  }
  ScheduleRecord record;
  bool seen_schema = false, seen_sweep = false, seen_shards = false,
       seen_resumed = false, seen_retries = false, seen_quarantined = false,
       seen_timeouts = false, seen_attempts = false, seen_wall = false;
  auto take_int = [&](bool* seen, const std::string& key,
                      int* out) -> Status {
    if (*seen) {
      return Status::InvalidArgument("schedule record: duplicate key '" +
                                     key + "'");
    }
    *seen = true;
    HSIS_ASSIGN_OR_RETURN(double value, scanner.Number());
    if (value != static_cast<int>(value)) {
      return Status::InvalidArgument("schedule record: '" + key +
                                     "' must be an integer");
    }
    *out = static_cast<int>(value);
    return Status::OK();
  };
  bool first = true;
  while (!scanner.Consume('}')) {
    if (!first && !scanner.Consume(',')) {
      return Status::InvalidArgument("schedule record: expected ',' or '}'");
    }
    first = false;
    HSIS_ASSIGN_OR_RETURN(std::string key, scanner.String());
    if (!scanner.Consume(':')) {
      return Status::InvalidArgument(
          "schedule record: expected ':' after key");
    }
    if (key == "schema") {
      if (seen_schema) {
        return Status::InvalidArgument(
            "schedule record: duplicate key 'schema'");
      }
      seen_schema = true;
      HSIS_ASSIGN_OR_RETURN(std::string schema, scanner.String());
      if (schema != kScheduleRecordSchema) {
        return Status::InvalidArgument("schedule record: unknown schema '" +
                                       schema + "'");
      }
    } else if (key == "sweep") {
      if (seen_sweep) {
        return Status::InvalidArgument(
            "schedule record: duplicate key 'sweep'");
      }
      seen_sweep = true;
      HSIS_ASSIGN_OR_RETURN(record.sweep, scanner.String());
    } else if (key == "shards") {
      HSIS_RETURN_IF_ERROR(take_int(&seen_shards, key, &record.shards));
    } else if (key == "resumed") {
      HSIS_RETURN_IF_ERROR(take_int(&seen_resumed, key, &record.resumed));
    } else if (key == "retries") {
      HSIS_RETURN_IF_ERROR(take_int(&seen_retries, key, &record.retries));
    } else if (key == "quarantined") {
      HSIS_RETURN_IF_ERROR(
          take_int(&seen_quarantined, key, &record.quarantined));
    } else if (key == "timeouts") {
      HSIS_RETURN_IF_ERROR(take_int(&seen_timeouts, key, &record.timeouts));
    } else if (key == "attempts") {
      if (seen_attempts) {
        return Status::InvalidArgument(
            "schedule record: duplicate key 'attempts'");
      }
      seen_attempts = true;
      HSIS_ASSIGN_OR_RETURN(record.attempts, scanner.String());
    } else if (key == "wall_ms") {
      if (seen_wall) {
        return Status::InvalidArgument(
            "schedule record: duplicate key 'wall_ms'");
      }
      seen_wall = true;
      HSIS_ASSIGN_OR_RETURN(record.wall_ms, scanner.Number());
    } else {
      return Status::InvalidArgument("schedule record: unknown key '" + key +
                                     "'");
    }
  }
  if (!scanner.AtEnd()) {
    return Status::InvalidArgument(
        "schedule record: trailing bytes after record object");
  }
  if (!seen_schema || !seen_sweep || !seen_shards || !seen_resumed ||
      !seen_retries || !seen_quarantined || !seen_timeouts || !seen_attempts ||
      !seen_wall) {
    return Status::InvalidArgument("schedule record: missing required key");
  }
  HSIS_RETURN_IF_ERROR(record.Validate());
  return record;
}

}  // namespace hsis::common

#ifndef HSIS_COMMON_LOGGING_H_
#define HSIS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hsis {

/// Severity levels for the library logger, lowest to highest.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum severity; messages below it are dropped.
/// Defaults to kWarning so library internals stay quiet in tests/benches.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log-message collector; emits on destruction.
/// Fatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose level is disabled, keeping the
/// streamed expressions unevaluated cheap to skip at the call site.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace hsis

#define HSIS_LOG(level)                                                   \
  (static_cast<int>(::hsis::LogLevel::k##level) <                         \
   static_cast<int>(::hsis::GetLogLevel()))                               \
      ? void(0)                                                           \
      : void(::hsis::internal::LogMessage(::hsis::LogLevel::k##level,     \
                                          __FILE__, __LINE__)             \
             << "")

#define HSIS_LOG_DEBUG \
  ::hsis::internal::LogMessage(::hsis::LogLevel::kDebug, __FILE__, __LINE__)
#define HSIS_LOG_INFO \
  ::hsis::internal::LogMessage(::hsis::LogLevel::kInfo, __FILE__, __LINE__)
#define HSIS_LOG_WARNING \
  ::hsis::internal::LogMessage(::hsis::LogLevel::kWarning, __FILE__, __LINE__)
#define HSIS_LOG_ERROR \
  ::hsis::internal::LogMessage(::hsis::LogLevel::kError, __FILE__, __LINE__)
#define HSIS_LOG_FATAL \
  ::hsis::internal::LogMessage(::hsis::LogLevel::kFatal, __FILE__, __LINE__)

/// Invariant check: aborts (with location) when `cond` is false.
/// Active in all build types — these guard programmer errors, not input.
#define HSIS_CHECK(cond)                                          \
  while (!(cond))                                                 \
  ::hsis::internal::LogMessage(::hsis::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define HSIS_DCHECK(cond) HSIS_CHECK(cond)

#endif  // HSIS_COMMON_LOGGING_H_

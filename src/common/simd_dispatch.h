#ifndef HSIS_COMMON_SIMD_DISPATCH_H_
#define HSIS_COMMON_SIMD_DISPATCH_H_

#include <string_view>
#include <vector>

#include "common/result.h"

/// \file
/// \brief Runtime SIMD lane selection for the batch row evaluators.
///
/// The kernel layer (game/kernel.h) ships the same row arithmetic in
/// several **lanes**: a portable scalar lane plus SSE2 / AVX2 vector
/// lanes built only on x86-64 (`HSIS_HAVE_SSE2_LANE` /
/// `HSIS_HAVE_AVX2_LANE`, see src/common/CMakeLists.txt and the
/// `HSIS_DISABLE_AVX2` build option). Every lane is required to produce
/// **bit-identical** IEEE-754 results — same operations in the same
/// order, no FMA contraction — so lane choice is purely a throughput
/// decision and the frozen CSV goldens pin all of them at once
/// (tests/game/kernel_simd_differential_test.cc).
///
/// Selection order:
///  1. the `HSIS_SIMD_LANE` environment variable, when set, names the
///     lane explicitly ("scalar", "sse2", "avx2"); an unknown name or a
///     lane this build/CPU cannot run is a typed InvalidArgument, so a
///     misspelled override fails loudly instead of silently falling
///     back;
///  2. otherwise `ProbeBestSimdLane()` picks the widest lane the CPU
///     reports support for (CPUID feature probe, best first).
///
/// The selected lane's name travels into `hsis-bench-v1` perf records
/// (common/perf_record.h, `lane` field) so throughput artifacts say
/// which code path produced them.
///
/// \par Usage
/// \code
///   HSIS_ASSIGN_OR_RETURN(SimdLane lane, ActiveSimdLane());
///   // dispatch on `lane`, stamp SimdLaneName(lane) into perf records
/// \endcode

namespace hsis::common {

/// The compiled-in evaluator lanes, ordered narrowest to widest.
enum class SimdLane {
  kScalar = 0,  ///< Portable one-row-at-a-time lane; the golden path.
  kSse2 = 1,    ///< 2-wide double lanes (x86-64 baseline).
  kAvx2 = 2,    ///< 4-wide double lanes (requires AVX2, no FMA used).
};

/// Number of lanes in the `SimdLane` enum.
inline constexpr int kSimdLaneCount = 3;

/// Environment variable naming an explicit lane override.
inline constexpr const char* kSimdLaneEnvVar = "HSIS_SIMD_LANE";

/// Stable lower-case lane name ("scalar", "sse2", "avx2") — the value
/// `HSIS_SIMD_LANE` accepts and perf records carry.
const char* SimdLaneName(SimdLane lane);

/// Inverse of `SimdLaneName`; InvalidArgument for any other string
/// (including case variants — names are exact).
Result<SimdLane> ParseSimdLaneName(std::string_view name);

/// True iff `lane` was compiled into this binary (scalar always;
/// vector lanes only on x86-64, AVX2 additionally gated by the
/// `HSIS_DISABLE_AVX2` build option).
bool SimdLaneCompiled(SimdLane lane);

/// True iff `lane` is compiled in **and** the running CPU supports it
/// (CPUID probe; scalar and SSE2 are unconditional on x86-64).
bool SimdLaneSupported(SimdLane lane);

/// All compiled lanes, ascending (always starts with kScalar).
std::vector<SimdLane> CompiledSimdLanes();

/// All lanes this process can actually execute, ascending — the
/// differential test matrix iterates exactly this set.
std::vector<SimdLane> SupportedSimdLanes();

/// The widest supported lane — what dispatch uses when no override is
/// set.
SimdLane ProbeBestSimdLane();

/// The lane batch evaluators must use for this call: the
/// `HSIS_SIMD_LANE` override when set (unknown name or unsupported
/// lane → InvalidArgument), else `ProbeBestSimdLane()`. Reads the
/// environment on every call so tests can re-point the override
/// between evaluations; callers dispatch once per batch, not per row.
Result<SimdLane> ActiveSimdLane();

}  // namespace hsis::common

#endif  // HSIS_COMMON_SIMD_DISPATCH_H_

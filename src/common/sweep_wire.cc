#include "common/sweep_wire.h"

#include <utility>

namespace hsis::common {

namespace {

/// Appends a length-prefixed string field.
void AppendString(Bytes& dst, const std::string& s) {
  AppendUint32BE(dst, static_cast<uint32_t>(s.size()));
  dst.insert(dst.end(), s.begin(), s.end());
}

Bytes Body(SweepFrameType type) {
  Bytes body;
  body.push_back(kSweepWireVersion);
  body.push_back(static_cast<uint8_t>(type));
  return body;
}

/// Sequential strict reader over a frame body. Every accessor fails
/// with ProtocolViolation on truncation; `Finish` rejects trailing
/// bytes. `where` names the frame type in every message.
class FrameReader {
 public:
  FrameReader(const Bytes& body, const char* where)
      : body_(body), where_(where), offset_(2) {}

  Status U8(uint8_t* out) {
    if (offset_ + 1 > body_.size()) return Truncated("u8 field");
    *out = body_[offset_++];
    return Status::OK();
  }

  Status U32(uint32_t* out) {
    if (offset_ + 4 > body_.size()) return Truncated("u32 field");
    *out = ReadUint32BE(body_, offset_);
    offset_ += 4;
    return Status::OK();
  }

  Status U64(uint64_t* out) {
    if (offset_ + 8 > body_.size()) return Truncated("u64 field");
    *out = ReadUint64BE(body_, offset_);
    offset_ += 8;
    return Status::OK();
  }

  Status String(std::string* out) {
    uint32_t len = 0;
    HSIS_RETURN_IF_ERROR(U32(&len));
    if (len > kSweepWireMaxString) {
      return Status::ProtocolViolation(
          std::string("sweepd ") + where_ + " frame: string field of " +
          std::to_string(len) + " bytes exceeds the " +
          std::to_string(kSweepWireMaxString) + "-byte limit");
    }
    if (offset_ + len > body_.size()) return Truncated("string field");
    out->assign(reinterpret_cast<const char*>(body_.data()) + offset_, len);
    offset_ += len;
    return Status::OK();
  }

  Status Finish() const {
    if (offset_ != body_.size()) {
      return Status::ProtocolViolation(
          std::string("sweepd ") + where_ + " frame: " +
          std::to_string(body_.size() - offset_) +
          " trailing byte(s) after the payload");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::ProtocolViolation(std::string("sweepd ") + where_ +
                                     " frame truncated in " + what);
  }

  const Bytes& body_;
  const char* where_;
  size_t offset_;
};

Status CheckSha256Hex(const std::string& sha, const char* where) {
  if (sha.size() != 64) {
    return Status::ProtocolViolation(
        std::string("sweepd ") + where + " frame: payload_sha256 must be 64 "
        "lowercase hex characters, got " + std::to_string(sha.size()));
  }
  for (char c : sha) {
    if ((c < '0' || c > '9') && (c < 'a' || c > 'f')) {
      return Status::ProtocolViolation(
          std::string("sweepd ") + where +
          " frame: payload_sha256 contains a non-lowercase-hex character");
    }
  }
  return Status::OK();
}

Status CheckErrorCode(uint8_t code) {
  if (code == static_cast<uint8_t>(StatusCode::kOk) ||
      code > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
    return Status::ProtocolViolation(
        "sweepd error frame: code byte " + std::to_string(code) +
        " is not a known non-OK status code");
  }
  return Status::OK();
}

}  // namespace

Bytes SerializeSweepFrame(const SweepFrame& frame) {
  Bytes body = Body(SweepFrameTypeOf(frame));
  std::visit(
      [&body](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, SweepLeaseRequest>) {
          AppendString(body, f.worker);
        } else if constexpr (std::is_same_v<T, SweepHeartbeat>) {
          AppendUint64BE(body, f.lease_id);
          AppendUint32BE(body, f.shard);
        } else if constexpr (std::is_same_v<T, SweepComplete>) {
          AppendUint64BE(body, f.lease_id);
          AppendUint32BE(body, f.shard);
          AppendString(body, f.payload_sha256);
        } else if constexpr (std::is_same_v<T, SweepFail>) {
          AppendUint64BE(body, f.lease_id);
          AppendUint32BE(body, f.shard);
          AppendString(body, f.message);
        } else if constexpr (std::is_same_v<T, SweepStatusRequest> ||
                             std::is_same_v<T, SweepShutdown>) {
          // No payload.
        } else if constexpr (std::is_same_v<T, SweepLeaseGrant>) {
          AppendUint64BE(body, f.lease_id);
          AppendUint32BE(body, f.shard);
          AppendUint64BE(body, f.begin);
          AppendUint64BE(body, f.end);
          AppendUint64BE(body, f.lease_ms);
          AppendString(body, f.sweep);
          AppendUint64BE(body, f.total);
          AppendUint32BE(body, f.shards);
          AppendUint64BE(body, f.seed);
        } else if constexpr (std::is_same_v<T, SweepNoWork>) {
          body.push_back(f.drained);
          AppendUint64BE(body, f.retry_ms);
          AppendUint32BE(body, f.committed);
          AppendUint32BE(body, f.shards);
        } else if constexpr (std::is_same_v<T, SweepHeartbeatAck>) {
          AppendUint64BE(body, f.lease_id);
          AppendUint64BE(body, f.lease_ms);
        } else if constexpr (std::is_same_v<T, SweepCompleteAck>) {
          AppendUint32BE(body, f.shard);
          body.push_back(f.duplicate);
          AppendUint32BE(body, f.committed);
          AppendUint32BE(body, f.shards);
        } else if constexpr (std::is_same_v<T, SweepFailAck>) {
          AppendUint32BE(body, f.shard);
          body.push_back(f.will_retry);
        } else if constexpr (std::is_same_v<T, SweepStatusReply>) {
          AppendString(body, f.sweep);
          AppendUint32BE(body, f.shards);
          AppendUint32BE(body, f.committed);
          AppendUint32BE(body, f.leased);
          AppendUint32BE(body, f.pending);
          AppendUint32BE(body, f.resumed);
          AppendUint32BE(body, f.retries);
          AppendUint32BE(body, f.expired);
          AppendUint32BE(body, f.quarantined);
          body.push_back(f.drained);
        } else if constexpr (std::is_same_v<T, SweepErrorReply>) {
          body.push_back(f.code);
          AppendString(body, f.message);
        } else if constexpr (std::is_same_v<T, SweepShutdownAck>) {
          AppendUint32BE(body, f.committed);
          AppendUint32BE(body, f.shards);
        }
      },
      frame);
  return body;
}

Result<SweepFrame> ParseSweepFrame(const Bytes& body) {
  if (body.size() < 2) {
    return Status::ProtocolViolation(
        "sweepd frame body too short: need at least the version and type "
        "bytes, got " + std::to_string(body.size()));
  }
  if (body[0] != kSweepWireVersion) {
    return Status::ProtocolViolation(
        "unsupported sweepd protocol version " + std::to_string(body[0]) +
        " (this build speaks hsis-sweepd-v1)");
  }
  const auto type = static_cast<SweepFrameType>(body[1]);
  FrameReader r(body, SweepFrameTypeName(type));
  switch (type) {
    case SweepFrameType::kLeaseRequest: {
      SweepLeaseRequest f;
      HSIS_RETURN_IF_ERROR(r.String(&f.worker));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(std::move(f));
    }
    case SweepFrameType::kHeartbeat: {
      SweepHeartbeat f;
      HSIS_RETURN_IF_ERROR(r.U64(&f.lease_id));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shard));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(f);
    }
    case SweepFrameType::kComplete: {
      SweepComplete f;
      HSIS_RETURN_IF_ERROR(r.U64(&f.lease_id));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shard));
      HSIS_RETURN_IF_ERROR(r.String(&f.payload_sha256));
      HSIS_RETURN_IF_ERROR(r.Finish());
      HSIS_RETURN_IF_ERROR(CheckSha256Hex(f.payload_sha256, "complete"));
      return SweepFrame(std::move(f));
    }
    case SweepFrameType::kFail: {
      SweepFail f;
      HSIS_RETURN_IF_ERROR(r.U64(&f.lease_id));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shard));
      HSIS_RETURN_IF_ERROR(r.String(&f.message));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(std::move(f));
    }
    case SweepFrameType::kStatusRequest: {
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(SweepStatusRequest{});
    }
    case SweepFrameType::kShutdown: {
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(SweepShutdown{});
    }
    case SweepFrameType::kLeaseGrant: {
      SweepLeaseGrant f;
      HSIS_RETURN_IF_ERROR(r.U64(&f.lease_id));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shard));
      HSIS_RETURN_IF_ERROR(r.U64(&f.begin));
      HSIS_RETURN_IF_ERROR(r.U64(&f.end));
      HSIS_RETURN_IF_ERROR(r.U64(&f.lease_ms));
      HSIS_RETURN_IF_ERROR(r.String(&f.sweep));
      HSIS_RETURN_IF_ERROR(r.U64(&f.total));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shards));
      HSIS_RETURN_IF_ERROR(r.U64(&f.seed));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(std::move(f));
    }
    case SweepFrameType::kNoWork: {
      SweepNoWork f;
      HSIS_RETURN_IF_ERROR(r.U8(&f.drained));
      HSIS_RETURN_IF_ERROR(r.U64(&f.retry_ms));
      HSIS_RETURN_IF_ERROR(r.U32(&f.committed));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shards));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(f);
    }
    case SweepFrameType::kHeartbeatAck: {
      SweepHeartbeatAck f;
      HSIS_RETURN_IF_ERROR(r.U64(&f.lease_id));
      HSIS_RETURN_IF_ERROR(r.U64(&f.lease_ms));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(f);
    }
    case SweepFrameType::kCompleteAck: {
      SweepCompleteAck f;
      HSIS_RETURN_IF_ERROR(r.U32(&f.shard));
      HSIS_RETURN_IF_ERROR(r.U8(&f.duplicate));
      HSIS_RETURN_IF_ERROR(r.U32(&f.committed));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shards));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(f);
    }
    case SweepFrameType::kFailAck: {
      SweepFailAck f;
      HSIS_RETURN_IF_ERROR(r.U32(&f.shard));
      HSIS_RETURN_IF_ERROR(r.U8(&f.will_retry));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(f);
    }
    case SweepFrameType::kStatusReply: {
      SweepStatusReply f;
      HSIS_RETURN_IF_ERROR(r.String(&f.sweep));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shards));
      HSIS_RETURN_IF_ERROR(r.U32(&f.committed));
      HSIS_RETURN_IF_ERROR(r.U32(&f.leased));
      HSIS_RETURN_IF_ERROR(r.U32(&f.pending));
      HSIS_RETURN_IF_ERROR(r.U32(&f.resumed));
      HSIS_RETURN_IF_ERROR(r.U32(&f.retries));
      HSIS_RETURN_IF_ERROR(r.U32(&f.expired));
      HSIS_RETURN_IF_ERROR(r.U32(&f.quarantined));
      HSIS_RETURN_IF_ERROR(r.U8(&f.drained));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(std::move(f));
    }
    case SweepFrameType::kErrorReply: {
      SweepErrorReply f;
      HSIS_RETURN_IF_ERROR(r.U8(&f.code));
      HSIS_RETURN_IF_ERROR(r.String(&f.message));
      HSIS_RETURN_IF_ERROR(r.Finish());
      HSIS_RETURN_IF_ERROR(CheckErrorCode(f.code));
      return SweepFrame(std::move(f));
    }
    case SweepFrameType::kShutdownAck: {
      SweepShutdownAck f;
      HSIS_RETURN_IF_ERROR(r.U32(&f.committed));
      HSIS_RETURN_IF_ERROR(r.U32(&f.shards));
      HSIS_RETURN_IF_ERROR(r.Finish());
      return SweepFrame(f);
    }
  }
  return Status::ProtocolViolation("unknown sweepd frame type 0x" + [&] {
    static const char* hex = "0123456789abcdef";
    std::string s;
    s += hex[(body[1] >> 4) & 0xf];
    s += hex[body[1] & 0xf];
    return s;
  }());
}

SweepFrameType SweepFrameTypeOf(const SweepFrame& frame) {
  return std::visit(
      [](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, SweepLeaseRequest>) {
          return SweepFrameType::kLeaseRequest;
        } else if constexpr (std::is_same_v<T, SweepHeartbeat>) {
          return SweepFrameType::kHeartbeat;
        } else if constexpr (std::is_same_v<T, SweepComplete>) {
          return SweepFrameType::kComplete;
        } else if constexpr (std::is_same_v<T, SweepFail>) {
          return SweepFrameType::kFail;
        } else if constexpr (std::is_same_v<T, SweepStatusRequest>) {
          return SweepFrameType::kStatusRequest;
        } else if constexpr (std::is_same_v<T, SweepShutdown>) {
          return SweepFrameType::kShutdown;
        } else if constexpr (std::is_same_v<T, SweepLeaseGrant>) {
          return SweepFrameType::kLeaseGrant;
        } else if constexpr (std::is_same_v<T, SweepNoWork>) {
          return SweepFrameType::kNoWork;
        } else if constexpr (std::is_same_v<T, SweepHeartbeatAck>) {
          return SweepFrameType::kHeartbeatAck;
        } else if constexpr (std::is_same_v<T, SweepCompleteAck>) {
          return SweepFrameType::kCompleteAck;
        } else if constexpr (std::is_same_v<T, SweepFailAck>) {
          return SweepFrameType::kFailAck;
        } else if constexpr (std::is_same_v<T, SweepStatusReply>) {
          return SweepFrameType::kStatusReply;
        } else if constexpr (std::is_same_v<T, SweepErrorReply>) {
          return SweepFrameType::kErrorReply;
        } else {
          static_assert(std::is_same_v<T, SweepShutdownAck>);
          return SweepFrameType::kShutdownAck;
        }
      },
      frame);
}

const char* SweepFrameTypeName(SweepFrameType type) {
  switch (type) {
    case SweepFrameType::kLeaseRequest: return "lease-request";
    case SweepFrameType::kHeartbeat: return "heartbeat";
    case SweepFrameType::kComplete: return "complete";
    case SweepFrameType::kFail: return "fail";
    case SweepFrameType::kStatusRequest: return "status-request";
    case SweepFrameType::kShutdown: return "shutdown";
    case SweepFrameType::kLeaseGrant: return "lease-grant";
    case SweepFrameType::kNoWork: return "no-work";
    case SweepFrameType::kHeartbeatAck: return "heartbeat-ack";
    case SweepFrameType::kCompleteAck: return "complete-ack";
    case SweepFrameType::kFailAck: return "fail-ack";
    case SweepFrameType::kStatusReply: return "status-reply";
    case SweepFrameType::kErrorReply: return "error";
    case SweepFrameType::kShutdownAck: return "shutdown-ack";
  }
  return "unknown";
}

SweepErrorReply ToSweepError(const Status& status) {
  SweepErrorReply error;
  error.code = static_cast<uint8_t>(status.code());
  error.message = status.message();
  if (error.message.size() > kSweepWireMaxString) {
    error.message.resize(kSweepWireMaxString);
  }
  return error;
}

Status FromSweepError(const SweepErrorReply& error) {
  return Status(static_cast<StatusCode>(error.code), error.message);
}

}  // namespace hsis::common

#include "common/u256.h"

#include <algorithm>

#include "common/logging.h"

namespace hsis {

using uint128 = unsigned __int128;

// ---------------------------------------------------------------------------
// U256
// ---------------------------------------------------------------------------

Result<U256> U256::FromHex(std::string_view hex) {
  if (hex.empty()) return Status::InvalidArgument("empty hex string");
  if (hex.size() > 64) return Status::InvalidArgument("hex string exceeds 256 bits");
  U256 out;
  size_t bit = 0;
  for (size_t i = hex.size(); i-- > 0;) {
    char c = hex[i];
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("non-hex character");
    }
    out.limb[bit / 64] |= static_cast<uint64_t>(v) << (bit % 64);
    bit += 4;
  }
  return out;
}

Result<U256> U256::FromDecimal(std::string_view dec) {
  if (dec.empty()) return Status::InvalidArgument("empty decimal string");
  U256 out;
  const U256 ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') return Status::InvalidArgument("non-decimal character");
    U512 wide = U256::MulFull(out, ten);
    if (!wide.High().IsZero()) return Status::OutOfRange("decimal exceeds 256 bits");
    uint64_t carry = 0;
    out = U256::AddWithCarry(wide.Low(), U256(static_cast<uint64_t>(c - '0')), &carry);
    if (carry) return Status::OutOfRange("decimal exceeds 256 bits");
  }
  return out;
}

U256 U256::FromBytesBE(const Bytes& bytes) {
  HSIS_CHECK(bytes.size() <= 32);
  U256 out;
  size_t bit = 0;
  for (size_t i = bytes.size(); i-- > 0;) {
    out.limb[bit / 64] |= static_cast<uint64_t>(bytes[i]) << (bit % 64);
    bit += 8;
  }
  return out;
}

Bytes U256::ToBytesBE() const {
  Bytes out(32);
  for (size_t i = 0; i < 32; ++i) {
    out[31 - i] = static_cast<uint8_t>(limb[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

std::string U256::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (size_t nibble = 64; nibble-- > 0;) {
    int v = static_cast<int>((limb[nibble / 16] >> ((nibble % 16) * 4)) & 0xf);
    if (v != 0) started = true;
    if (started) out.push_back(kDigits[v]);
  }
  if (out.empty()) out.push_back('0');
  return out;
}

std::string U256::ToDecimal() const {
  if (IsZero()) return "0";
  U256 v = *this;
  const U256 ten(10);
  std::string out;
  while (!v.IsZero()) {
    U256DivMod qr = DivMod(v, ten);
    out.push_back(static_cast<char>('0' + qr.remainder.limb[0]));
    v = qr.quotient;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

size_t U256::BitLength() const {
  for (size_t i = 4; i-- > 0;) {
    if (limb[i] != 0) {
      return i * 64 + (64 - static_cast<size_t>(__builtin_clzll(limb[i])));
    }
  }
  return 0;
}

std::strong_ordering operator<=>(const U256& a, const U256& b) {
  for (size_t i = 4; i-- > 0;) {
    if (a.limb[i] != b.limb[i]) {
      return a.limb[i] < b.limb[i] ? std::strong_ordering::less
                                   : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

U256 U256::AddWithCarry(const U256& a, const U256& b, uint64_t* carry_out) {
  U256 out;
  uint64_t carry = 0;
  for (size_t i = 0; i < 4; ++i) {
    uint128 sum = static_cast<uint128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry_out != nullptr) *carry_out = carry;
  return out;
}

U256 U256::SubWithBorrow(const U256& a, const U256& b, uint64_t* borrow_out) {
  U256 out;
  uint64_t borrow = 0;
  for (size_t i = 0; i < 4; ++i) {
    uint128 diff = static_cast<uint128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
  if (borrow_out != nullptr) *borrow_out = borrow;
  return out;
}

U256 operator+(const U256& a, const U256& b) {
  return U256::AddWithCarry(a, b, nullptr);
}

U256 operator-(const U256& a, const U256& b) {
  return U256::SubWithBorrow(a, b, nullptr);
}

U512 U256::MulFull(const U256& a, const U256& b) {
  U512 out;
  for (size_t i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < 4; ++j) {
      uint128 cur = static_cast<uint128>(a.limb[i]) * b.limb[j] +
                    out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

U256 operator*(const U256& a, const U256& b) {
  return U256::MulFull(a, b).Low();
}

U256 operator<<(const U256& a, size_t n) {
  if (n >= 256) return U256();
  U256 out;
  size_t limb_shift = n / 64;
  size_t bit_shift = n % 64;
  for (size_t i = 4; i-- > limb_shift;) {
    uint64_t v = a.limb[i - limb_shift] << bit_shift;
    if (bit_shift != 0 && i > limb_shift) {
      v |= a.limb[i - limb_shift - 1] >> (64 - bit_shift);
    }
    out.limb[i] = v;
  }
  return out;
}

U256 operator>>(const U256& a, size_t n) {
  if (n >= 256) return U256();
  U256 out;
  size_t limb_shift = n / 64;
  size_t bit_shift = n % 64;
  for (size_t i = 0; i + limb_shift < 4; ++i) {
    uint64_t v = a.limb[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < 4) {
      v |= a.limb[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limb[i] = v;
  }
  return out;
}

U256 operator&(const U256& a, const U256& b) {
  U256 out;
  for (size_t i = 0; i < 4; ++i) out.limb[i] = a.limb[i] & b.limb[i];
  return out;
}

U256 operator|(const U256& a, const U256& b) {
  U256 out;
  for (size_t i = 0; i < 4; ++i) out.limb[i] = a.limb[i] | b.limb[i];
  return out;
}

U256 operator^(const U256& a, const U256& b) {
  U256 out;
  for (size_t i = 0; i < 4; ++i) out.limb[i] = a.limb[i] ^ b.limb[i];
  return out;
}

U256DivMod DivMod(const U256& dividend, const U256& divisor) {
  HSIS_CHECK(!divisor.IsZero()) << "division by zero";
  U512DivMod wide = DivMod(U512::FromU256(dividend), divisor);
  return {wide.quotient.Low(), wide.remainder};
}

// ---------------------------------------------------------------------------
// U512
// ---------------------------------------------------------------------------

U512 U512::FromU256(const U256& v) {
  U512 out;
  for (size_t i = 0; i < 4; ++i) out.limb[i] = v.limb[i];
  return out;
}

bool U512::IsZero() const {
  uint64_t acc = 0;
  for (uint64_t l : limb) acc |= l;
  return acc == 0;
}

size_t U512::BitLength() const {
  for (size_t i = 8; i-- > 0;) {
    if (limb[i] != 0) {
      return i * 64 + (64 - static_cast<size_t>(__builtin_clzll(limb[i])));
    }
  }
  return 0;
}

std::strong_ordering operator<=>(const U512& a, const U512& b) {
  for (size_t i = 8; i-- > 0;) {
    if (a.limb[i] != b.limb[i]) {
      return a.limb[i] < b.limb[i] ? std::strong_ordering::less
                                   : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

U512 operator+(const U512& a, const U512& b) {
  U512 out;
  uint64_t carry = 0;
  for (size_t i = 0; i < 8; ++i) {
    uint128 sum = static_cast<uint128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  return out;
}

U512 operator-(const U512& a, const U512& b) {
  U512 out;
  uint64_t borrow = 0;
  for (size_t i = 0; i < 8; ++i) {
    uint128 diff = static_cast<uint128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
  return out;
}

U512 operator<<(const U512& a, size_t n) {
  if (n >= 512) return U512();
  U512 out;
  size_t limb_shift = n / 64;
  size_t bit_shift = n % 64;
  for (size_t i = 8; i-- > limb_shift;) {
    uint64_t v = a.limb[i - limb_shift] << bit_shift;
    if (bit_shift != 0 && i > limb_shift) {
      v |= a.limb[i - limb_shift - 1] >> (64 - bit_shift);
    }
    out.limb[i] = v;
  }
  return out;
}

U512 operator>>(const U512& a, size_t n) {
  if (n >= 512) return U512();
  U512 out;
  size_t limb_shift = n / 64;
  size_t bit_shift = n % 64;
  for (size_t i = 0; i + limb_shift < 8; ++i) {
    uint64_t v = a.limb[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < 8) {
      v |= a.limb[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limb[i] = v;
  }
  return out;
}

U256 U512::Mod(const U256& divisor) const {
  return DivMod(*this, divisor).remainder;
}

U512DivMod DivMod(const U512& dividend, const U256& divisor) {
  HSIS_CHECK(!divisor.IsZero()) << "division by zero";

  // Fast path: divisor fits in one limb — schoolbook short division.
  if (divisor.BitLength() <= 64) {
    uint64_t d = divisor.limb[0];
    U512 quotient;
    uint64_t rem = 0;
    for (size_t i = 8; i-- > 0;) {
      uint128 cur = (static_cast<uint128>(rem) << 64) | dividend.limb[i];
      quotient.limb[i] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    return {quotient, U256(rem)};
  }

  // General case: bitwise long division (shift-subtract). The divisor has
  // > 64 bits, so the loop runs at most 512 iterations of 4-limb compares;
  // the hot modular paths use Montgomery arithmetic instead (see crypto/).
  U512 quotient;
  U512 rem;
  U512 wide_divisor = U512::FromU256(divisor);
  size_t n = dividend.BitLength();
  for (size_t i = n; i-- > 0;) {
    rem = rem << 1;
    if (dividend.Bit(i)) rem.limb[0] |= 1;
    if (rem >= wide_divisor) {
      rem = rem - wide_divisor;
      quotient.limb[i / 64] |= (1ULL << (i % 64));
    }
  }
  return {quotient, rem.Low()};
}

}  // namespace hsis

#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace hsis {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  HSIS_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HSIS_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high bits → uniform in [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Bytes Rng::RandomBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t r = NextUint64();
    for (int k = 0; k < 8; ++k) out[i++] = static_cast<uint8_t>(r >> (8 * k));
  }
  if (i < n) {
    uint64_t r = NextUint64();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(r);
      r >>= 8;
    }
  }
  return out;
}

size_t Rng::Zipf(size_t n, double s) {
  HSIS_CHECK(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return UniformUint64(n);
  // Inverse CDF by linear scan over normalized weights 1/(k+1)^s.
  double norm = 0.0;
  for (size_t k = 0; k < n; ++k) norm += std::pow(static_cast<double>(k + 1), -s);
  double u = UniformDouble() * norm;
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -s);
    if (u < acc) return k;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::ForIndex(uint64_t base_seed, uint64_t index) {
  // Two SplitMix64 rounds over (base_seed, index) decorrelate adjacent
  // indices; Rng's constructor then expands the digest into full state.
  uint64_t x = base_seed;
  uint64_t digest = SplitMix64(x);
  x = digest ^ (index + 0x9e3779b97f4a7c15ULL);
  digest = SplitMix64(x);
  return Rng(digest);
}

}  // namespace hsis

#ifndef HSIS_COMMON_RANDOM_H_
#define HSIS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace hsis {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Everything stochastic in the library draws from an `Rng`
/// instance passed in by the caller, so simulations and protocols are
/// reproducible under seed control. Not cryptographically secure on its
/// own; key material additionally passes through the crypto layer.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) using rejection sampling (unbiased).
  /// `bound` must be positive.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly random bytes of the given length.
  Bytes RandomBytes(size_t n);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s >= 0; s == 0 is
  /// uniform). Uses inverse-CDF over precomputable weights per call —
  /// intended for modest n in workload generation.
  size_t Zipf(size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformUint64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Splits off an independently-seeded child generator; used to give
  /// each simulated party its own stream.
  Rng Fork();

  /// A generator for element `index` of a batch seeded with `base_seed`:
  /// the stream is a pure function of `(base_seed, index)`, so parallel
  /// loops that give each index its own `ForIndex` generator produce
  /// results independent of thread count and execution order (the
  /// determinism contract of common/parallel.h).
  static Rng ForIndex(uint64_t base_seed, uint64_t index);

 private:
  uint64_t state_[4];
};

}  // namespace hsis

#endif  // HSIS_COMMON_RANDOM_H_

#include "common/sweep_service.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/file.h"
#include "common/scheduler.h"

namespace hsis::common {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

Result<Bytes> ReadSweepFrame(int fd) {
  // Reads exactly n bytes; clean EOF is only legal at the very first
  // byte of the length prefix (between frames).
  auto recv_full = [fd](uint8_t* data, size_t n,
                        bool eof_ok) -> Result<size_t> {
    size_t off = 0;
    while (off < n) {
      ssize_t r = ::recv(fd, data + off, n - off, 0);
      if (r == 0) {
        if (off == 0 && eof_ok) return static_cast<size_t>(0);
        return Status::ProtocolViolation(
            "sweepd connection closed mid-frame");
      }
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::Internal("sweepd receive timed out");
        }
        return Status::Internal(Errno("sweepd recv failed"));
      }
      off += static_cast<size_t>(r);
    }
    return off;
  };

  uint8_t prefix[4];
  HSIS_ASSIGN_OR_RETURN(size_t got, recv_full(prefix, 4, /*eof_ok=*/true));
  if (got == 0) return Status::NotFound("sweepd connection closed");
  Bytes head(prefix, prefix + 4);
  uint32_t len = ReadUint32BE(head, 0);
  if (len == 0) {
    return Status::ProtocolViolation("sweepd frame with zero-length body");
  }
  if (len > kSweepWireMaxFrame) {
    return Status::ProtocolViolation(
        "sweepd frame of " + std::to_string(len) + " bytes exceeds the " +
        std::to_string(kSweepWireMaxFrame) + "-byte cap");
  }
  Bytes body(len);
  HSIS_ASSIGN_OR_RETURN(got, recv_full(body.data(), len, /*eof_ok=*/false));
  return body;
}

Status WriteSweepFrame(int fd, const Bytes& body) {
  if (body.empty() || body.size() > kSweepWireMaxFrame) {
    return Status::Internal("sweepd frame body of " +
                            std::to_string(body.size()) +
                            " bytes cannot be framed");
  }
  Bytes wire;
  wire.reserve(4 + body.size());
  AppendUint32BE(wire, static_cast<uint32_t>(body.size()));
  Append(wire, body);
  size_t off = 0;
  while (off < wire.size()) {
    ssize_t w = ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Internal("sweepd send timed out");
      }
      return Status::Internal(Errno("sweepd send failed"));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShardLeaseTable
// ---------------------------------------------------------------------------

ShardLeaseTable::ShardLeaseTable(
    ShardPlanInfo info, std::string dir, SweepLeaseOptions options,
    std::function<void(const std::string&)> on_event)
    : info_(std::move(info)),
      dir_(std::move(dir)),
      options_(options),
      on_event_(std::move(on_event)),
      plan_(ShardPlan::Create(info_.total, info_.shards).value()),
      states_(static_cast<size_t>(info_.shards), ShardState::kPending),
      attempts_(static_cast<size_t>(info_.shards), 0),
      ready_at_ms_(static_cast<size_t>(info_.shards), 0),
      manifest_sha_(static_cast<size_t>(info_.shards)) {}

Result<ShardLeaseTable> ShardLeaseTable::Create(
    ShardPlanInfo info, std::string dir, SweepLeaseOptions options,
    std::function<void(const std::string&)> on_event) {
  if (options.lease_ms < 1) {
    return Status::InvalidArgument("lease_ms must be >= 1");
  }
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (options.retry_ms < 1) {
    return Status::InvalidArgument("retry_ms must be >= 1");
  }
  if (options.backoff_initial_ms < 0 || options.backoff_max_ms < 0) {
    return Status::InvalidArgument("backoff delays must be >= 0");
  }
  auto plan = ShardPlan::Create(info.total, info.shards);
  if (!plan.ok()) return plan.status();

  ShardLeaseTable table(std::move(info), std::move(dir), options,
                        std::move(on_event));

  // Startup scan, exactly the scheduler's: committed shards resume as
  // done, corrupt shards are quarantined, contradictions refuse
  // service.
  for (int k = 0; k < table.info_.shards; ++k) {
    Status v = ValidateShard(table.info_, table.dir_, k);
    if (v.ok()) {
      HSIS_RETURN_IF_ERROR(table.MarkCommitted(k, "resume"));
      ++table.stats_.resumed;
      continue;
    }
    switch (v.code()) {
      case StatusCode::kNotFound:
        break;  // never ran: pending
      case StatusCode::kIntegrityViolation:
        HSIS_RETURN_IF_ERROR(table.Quarantine(k));
        break;
      default:
        return Status::InvalidArgument(
            "shard " + std::to_string(k) +
            " contradicts the plan; refusing to serve: " + v.message());
    }
  }
  table.Emit("serving sweep=" + table.info_.sweep + " shards=" +
             std::to_string(table.info_.shards) + " resumed=" +
             std::to_string(table.stats_.resumed));
  return table;
}

void ShardLeaseTable::Emit(const std::string& line) {
  if (on_event_) on_event_(line);
}

Status ShardLeaseTable::Quarantine(int shard) {
  const std::string qdir = ShardQuarantineDir(dir_);
  HSIS_RETURN_IF_ERROR(CreateDirectories(qdir));
  std::string tag;
  do {
    tag = qdir + "/shard-" + std::to_string(shard) + ".q" +
          std::to_string(quarantine_seq_++);
  } while (FileExists(tag + ".bin") || FileExists(tag + ".manifest"));
  const std::string payload = ShardPayloadPath(dir_, shard);
  const std::string manifest = ShardManifestPath(dir_, shard);
  if (FileExists(payload)) {
    HSIS_RETURN_IF_ERROR(RenameFile(payload, tag + ".bin"));
  }
  if (FileExists(manifest)) {
    HSIS_RETURN_IF_ERROR(RenameFile(manifest, tag + ".manifest"));
  }
  ++stats_.quarantined;
  Emit("quarantine shard=" + std::to_string(shard) + " -> " + tag + ".*");
  return Status::OK();
}

Status ShardLeaseTable::MarkCommitted(int shard, const char* how) {
  auto text = ReadFile(ShardManifestPath(dir_, shard));
  if (!text.ok()) return text.status();
  auto manifest = ParseShardManifest(*text);
  if (!manifest.ok()) return manifest.status();
  manifest_sha_[static_cast<size_t>(shard)] = manifest->payload_sha256;
  states_[static_cast<size_t>(shard)] = ShardState::kCommitted;
  SweepServiceStats s = stats();
  Emit(std::string(how) + " shard=" + std::to_string(shard) + " (" +
       std::to_string(s.committed) + "/" + std::to_string(s.shards) +
       " committed)");
  if (drained()) Emit("drained " + std::to_string(s.shards) + " shards");
  return Status::OK();
}

void ShardLeaseTable::AttemptFailed(int shard, const Status& why,
                                    int64_t now_ms) {
  const size_t k = static_cast<size_t>(shard);
  if (attempts_[k] >= options_.max_attempts) {
    states_[k] = ShardState::kFailed;
    run_status_ = Status::Internal(
        "shard " + std::to_string(shard) + " exhausted " +
        std::to_string(options_.max_attempts) +
        " attempts; last failure: " + why.ToString());
    Emit("fail-run shard=" + std::to_string(shard) + ": " + why.ToString());
    return;
  }
  states_[k] = ShardState::kPending;
  int64_t backoff = BackoffDelayMs(options_.backoff_initial_ms,
                                   options_.backoff_max_ms, attempts_[k]);
  ready_at_ms_[k] = now_ms + backoff;
  Emit("requeue shard=" + std::to_string(shard) + " attempts=" +
       std::to_string(attempts_[k]) + " backoff_ms=" +
       std::to_string(backoff) + ": " + why.ToString());
}

void ShardLeaseTable::ReclaimShard(int shard, const char* why,
                                   int64_t now_ms) {
  Status v = ValidateShard(info_, dir_, shard);
  if (v.ok()) {
    // The worker died (or reported failure) *after* committing; the
    // committed files are the truth.
    Status c = MarkCommitted(shard, "reclaim-commit");
    if (c.ok()) return;
    v = c;
  }
  switch (v.code()) {
    case StatusCode::kNotFound:
      AttemptFailed(shard,
                    Status::Internal(std::string(why) + "; nothing committed"),
                    now_ms);
      return;
    case StatusCode::kInvalidArgument: {
      states_[static_cast<size_t>(shard)] = ShardState::kFailed;
      run_status_ = Status::InvalidArgument(
          "shard " + std::to_string(shard) +
          " contradicts the plan: " + v.message());
      Emit("fail-run shard=" + std::to_string(shard) + ": " + v.message());
      return;
    }
    default: {  // IntegrityViolation (and read failures)
      Status q = Quarantine(shard);
      if (!q.ok()) {
        Emit("quarantine-error shard=" + std::to_string(shard) + ": " +
             q.ToString());
      }
      AttemptFailed(shard, v, now_ms);
      return;
    }
  }
}

int ShardLeaseTable::ExpireLeases(int64_t now_ms) {
  int reclaimed = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline_ms > now_ms) {
      ++it;
      continue;
    }
    const int shard = it->second.shard;
    Emit("expire lease=" + std::to_string(it->first) + " shard=" +
         std::to_string(shard) + " worker=" + it->second.worker);
    it = leases_.erase(it);
    ++stats_.expired;
    ReclaimShard(shard, "lease expired", now_ms);
    ++reclaimed;
  }
  return reclaimed;
}

Result<std::variant<SweepGrant, SweepNoGrant>> ShardLeaseTable::Acquire(
    const std::string& worker, int64_t now_ms) {
  ExpireLeases(now_ms);
  if (!run_status_.ok()) return run_status_;
  if (drained()) return std::variant<SweepGrant, SweepNoGrant>(
      SweepNoGrant{/*drained=*/true, /*retry_ms=*/0});

  int64_t min_wait = -1;
  for (int k = 0; k < info_.shards; ++k) {
    if (states_[static_cast<size_t>(k)] != ShardState::kPending) continue;
    const int64_t wait = ready_at_ms_[static_cast<size_t>(k)] - now_ms;
    if (wait > 0) {
      if (min_wait < 0 || wait < min_wait) min_wait = wait;
      continue;
    }
    const size_t sk = static_cast<size_t>(k);
    ++attempts_[sk];
    if (attempts_[sk] > 1) ++stats_.retries;
    const uint64_t lease_id = next_lease_id_++;
    leases_[lease_id] = Lease{k, worker, now_ms + options_.lease_ms};
    states_[sk] = ShardState::kLeased;
    Emit("grant shard=" + std::to_string(k) + " lease=" +
         std::to_string(lease_id) + " worker=" + worker + " attempt=" +
         std::to_string(attempts_[sk]));
    return std::variant<SweepGrant, SweepNoGrant>(
        SweepGrant{lease_id, k, plan_.Range(k), attempts_[sk]});
  }

  int64_t retry = options_.retry_ms;
  if (min_wait > 0 && min_wait < retry) retry = min_wait;
  return std::variant<SweepGrant, SweepNoGrant>(
      SweepNoGrant{/*drained=*/false, retry});
}

Result<int64_t> ShardLeaseTable::Renew(uint64_t lease_id, int shard,
                                       int64_t now_ms) {
  ExpireLeases(now_ms);
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    return Status::NotFound("lease " + std::to_string(lease_id) +
                            " is unknown or expired; abandon shard " +
                            std::to_string(shard));
  }
  if (it->second.shard != shard) {
    return Status::InvalidArgument(
        "lease " + std::to_string(lease_id) + " covers shard " +
        std::to_string(it->second.shard) + ", not shard " +
        std::to_string(shard));
  }
  it->second.deadline_ms = now_ms + options_.lease_ms;
  Emit("renew lease=" + std::to_string(lease_id) + " shard=" +
       std::to_string(shard) + " worker=" + it->second.worker);
  return options_.lease_ms;
}

Result<SweepCompleteOutcome> ShardLeaseTable::Complete(
    uint64_t lease_id, int shard, const std::string& payload_sha256,
    int64_t now_ms) {
  ExpireLeases(now_ms);
  if (shard < 0 || shard >= info_.shards) {
    return Status::InvalidArgument("completion for shard " +
                                   std::to_string(shard) +
                                   " outside the plan's " +
                                   std::to_string(info_.shards) + " shards");
  }
  if (!run_status_.ok()) return run_status_;
  const size_t sk = static_cast<size_t>(shard);

  // At most one lease is active per shard; find it, and whether the
  // claimant is that holder (a stale lease_id means a zombie worker
  // racing its replacement — its claim must not disturb the holder).
  auto holder = leases_.end();
  for (auto it = leases_.begin(); it != leases_.end(); ++it) {
    if (it->second.shard == shard) {
      holder = it;
      break;
    }
  }
  const bool claimant_holds =
      holder != leases_.end() && holder->first == lease_id;

  if (states_[sk] == ShardState::kCommitted) {
    if (claimant_holds) leases_.erase(holder);
    if (payload_sha256 != manifest_sha_[sk]) {
      return Status::IntegrityViolation(
          "shard " + std::to_string(shard) +
          " is already committed but the reported payload digest "
          "disagrees with its manifest");
    }
    Emit("duplicate-complete shard=" + std::to_string(shard) + " lease=" +
         std::to_string(lease_id));
    return SweepCompleteOutcome{/*duplicate=*/true, stats().committed};
  }

  Status v = ValidateShard(info_, dir_, shard);
  if (v.ok()) {
    // Committed files are the truth, whoever wrote them; any active
    // lease on the shard is now meaningless.
    if (holder != leases_.end()) leases_.erase(holder);
    Status c = MarkCommitted(shard, "commit");
    if (!c.ok()) v = c;  // fall through to the failure taxonomy below
  }
  if (v.ok()) {
    if (payload_sha256 != manifest_sha_[sk]) {
      // The files on disk validate, so the shard *is* committed; only
      // the worker's report is wrong. Keep the commit, tell the worker.
      return Status::IntegrityViolation(
          "shard " + std::to_string(shard) +
          " committed, but the reported payload digest disagrees with "
          "the manifest on disk — the worker is confused");
    }
    return SweepCompleteOutcome{/*duplicate=*/false, stats().committed};
  }

  switch (v.code()) {
    case StatusCode::kNotFound: {
      if (claimant_holds) {
        leases_.erase(holder);
        AttemptFailed(shard, v, now_ms);
      }
      return Status::NotFound(
          "completion claim for shard " + std::to_string(shard) +
          " rejected: nothing committed on disk (" + v.message() +
          "); is the worker writing to the daemon's results directory?");
    }
    case StatusCode::kInvalidArgument: {
      states_[sk] = ShardState::kFailed;
      if (holder != leases_.end()) leases_.erase(holder);
      run_status_ = Status::InvalidArgument(
          "shard " + std::to_string(shard) +
          " contradicts the plan: " + v.message());
      Emit("fail-run shard=" + std::to_string(shard) + ": " + v.message());
      return run_status_;
    }
    default: {  // IntegrityViolation (and manifest read failures)
      if (holder != leases_.end() && !claimant_holds) {
        // A stale claim while another worker holds the lease: its
        // in-flight files are not ours to quarantine — reject only.
        return Status::IntegrityViolation(
            "stale completion claim for shard " + std::to_string(shard) +
            " rejected: " + v.message());
      }
      Status q = Quarantine(shard);
      if (!q.ok()) {
        Emit("quarantine-error shard=" + std::to_string(shard) + ": " +
             q.ToString());
      }
      if (claimant_holds) {
        leases_.erase(holder);
        AttemptFailed(shard, v, now_ms);
      }
      return Status::IntegrityViolation(
          "completion claim for shard " + std::to_string(shard) +
          " rejected and quarantined: " + v.message());
    }
  }
}

Result<bool> ShardLeaseTable::ReportFailure(uint64_t lease_id, int shard,
                                            const std::string& message,
                                            int64_t now_ms) {
  ExpireLeases(now_ms);
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    return Status::NotFound("lease " + std::to_string(lease_id) +
                            " is unknown or already reclaimed");
  }
  if (it->second.shard != shard) {
    return Status::InvalidArgument(
        "lease " + std::to_string(lease_id) + " covers shard " +
        std::to_string(it->second.shard) + ", not shard " +
        std::to_string(shard));
  }
  Emit("worker-fail shard=" + std::to_string(shard) + " lease=" +
       std::to_string(lease_id) + ": " + message);
  leases_.erase(it);
  ++stats_.failed_reports;
  // Validate anyway — a worker that committed and then reported failure
  // is still a committed shard (the files are the truth).
  ReclaimShard(shard, "worker reported failure", now_ms);
  return states_[static_cast<size_t>(shard)] == ShardState::kPending;
}

bool ShardLeaseTable::drained() const {
  for (ShardState s : states_) {
    if (s != ShardState::kCommitted) return false;
  }
  return true;
}

SweepServiceStats ShardLeaseTable::stats() const {
  SweepServiceStats s = stats_;
  s.shards = info_.shards;
  s.committed = 0;
  s.pending = 0;
  for (ShardState st : states_) {
    if (st == ShardState::kCommitted) ++s.committed;
    if (st == ShardState::kPending) ++s.pending;
  }
  s.leased = static_cast<int>(leases_.size());
  return s;
}

// ---------------------------------------------------------------------------
// SweepService
// ---------------------------------------------------------------------------

struct SweepService::Impl {
  std::string dir;
  SweepServiceOptions options;
  int listen_fd = -1;

  std::mutex mu;  // guards everything below (and the lease table)
  std::condition_variable cv;
  std::optional<ShardLeaseTable> table;
  bool stopping = false;
  bool stopped = false;
  bool shutdown_requested = false;
  std::vector<int> open_fds;
  std::vector<std::thread> handlers;

  std::thread accept_thread;
};

int64_t SweepService::NowMs() const {
  if (impl_->options.now_ms) return impl_->options.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<std::unique_ptr<SweepService>> SweepService::Start(
    ShardPlanInfo info, std::string dir, SweepServiceOptions options) {
  if (options.expiry_poll_ms < 1) {
    return Status::InvalidArgument("expiry_poll_ms must be >= 1");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }

  auto service = std::unique_ptr<SweepService>(new SweepService());
  service->impl_ = std::make_unique<Impl>();
  Impl* impl = service->impl_.get();
  impl->dir = dir;
  impl->options = options;

  HSIS_ASSIGN_OR_RETURN(
      ShardLeaseTable table,
      ShardLeaseTable::Create(std::move(info), std::move(dir), options.lease,
                              options.on_event));
  impl->table.emplace(std::move(table));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("sweepd socket failed"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("sweepd cannot parse bind address '" +
                                   options.host + "' (use dotted IPv4)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::Internal(Errno("sweepd bind failed"));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    Status s = Status::Internal(Errno("sweepd listen failed"));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    Status s = Status::Internal(Errno("sweepd getsockname failed"));
    ::close(fd);
    return s;
  }
  impl->listen_fd = fd;
  service->port_ = ntohs(bound.sin_port);

  impl->accept_thread = std::thread(&SweepService::AcceptLoop, service.get());
  return service;
}

SweepService::~SweepService() {
  if (impl_) Stop();
}

void SweepService::AcceptLoop() {
  Impl* impl = impl_.get();
  for (;;) {
    pollfd pfd{impl->listen_fd, POLLIN, 0};
    ::poll(&pfd, 1, static_cast<int>(impl->options.expiry_poll_ms));
    {
      std::lock_guard<std::mutex> lock(impl->mu);
      if (impl->stopping) return;
      impl->table->ExpireLeases(NowMs());
      if (impl->table->drained() || !impl->table->run_status().ok()) {
        impl->cv.notify_all();
      }
    }
    if ((pfd.revents & POLLIN) == 0) continue;
    int cfd = ::accept(impl->listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;  // EAGAIN, aborted handshake, or shutdown
    std::lock_guard<std::mutex> lock(impl->mu);
    if (impl->stopping) {
      ::close(cfd);
      return;
    }
    impl->open_fds.push_back(cfd);
    impl->handlers.emplace_back(&SweepService::ServeConnection, this, cfd);
  }
}

void SweepService::ServeConnection(int fd) {
  Impl* impl = impl_.get();
  for (;;) {
    auto body = ReadSweepFrame(fd);
    if (!body.ok()) {
      if (body.status().code() == StatusCode::kProtocolViolation) {
        // Best effort: name the defect before poisoning the connection.
        WriteSweepFrame(
            fd, SerializeSweepFrame(SweepFrame(ToSweepError(body.status()))));
      }
      break;
    }
    auto frame = ParseSweepFrame(*body);
    SweepFrame reply = frame.ok()
                           ? Dispatch(*frame)
                           : SweepFrame(ToSweepError(frame.status()));
    bool poison = false;
    if (const auto* err = std::get_if<SweepErrorReply>(&reply)) {
      poison = err->code ==
               static_cast<uint8_t>(StatusCode::kProtocolViolation);
    }
    if (!WriteSweepFrame(fd, SerializeSweepFrame(reply)).ok()) break;
    if (poison) break;
  }
  std::lock_guard<std::mutex> lock(impl->mu);
  for (auto it = impl->open_fds.begin(); it != impl->open_fds.end(); ++it) {
    if (*it == fd) {
      impl->open_fds.erase(it);
      break;
    }
  }
  ::close(fd);
}

SweepFrame SweepService::Dispatch(const SweepFrame& request) {
  Impl* impl = impl_.get();
  std::lock_guard<std::mutex> lock(impl->mu);
  ShardLeaseTable& table = *impl->table;
  const int64_t now = NowMs();
  const ShardPlanInfo& info = table.info();

  auto error = [](const Status& s) { return SweepFrame(ToSweepError(s)); };
  auto notify_if_done = [&]() {
    if (table.drained() || !table.run_status().ok()) impl->cv.notify_all();
  };

  if (const auto* req = std::get_if<SweepLeaseRequest>(&request)) {
    auto acquired = table.Acquire(req->worker, now);
    notify_if_done();
    if (!acquired.ok()) return error(acquired.status());
    if (const auto* grant = std::get_if<SweepGrant>(&*acquired)) {
      SweepLeaseGrant g;
      g.lease_id = grant->lease_id;
      g.shard = static_cast<uint32_t>(grant->shard);
      g.begin = grant->range.begin;
      g.end = grant->range.end;
      g.lease_ms = static_cast<uint64_t>(impl->options.lease.lease_ms);
      g.sweep = info.sweep;
      g.total = info.total;
      g.shards = static_cast<uint32_t>(info.shards);
      g.seed = info.seed;
      return SweepFrame(g);
    }
    const auto& none = std::get<SweepNoGrant>(*acquired);
    SweepServiceStats s = table.stats();
    SweepNoWork reply;
    reply.drained = none.drained ? 1 : 0;
    reply.retry_ms = static_cast<uint64_t>(none.retry_ms);
    reply.committed = static_cast<uint32_t>(s.committed);
    reply.shards = static_cast<uint32_t>(s.shards);
    return SweepFrame(reply);
  }
  if (const auto* req = std::get_if<SweepHeartbeat>(&request)) {
    auto renewed =
        table.Renew(req->lease_id, static_cast<int>(req->shard), now);
    if (!renewed.ok()) return error(renewed.status());
    return SweepFrame(SweepHeartbeatAck{
        req->lease_id, static_cast<uint64_t>(*renewed)});
  }
  if (const auto* req = std::get_if<SweepComplete>(&request)) {
    auto outcome = table.Complete(req->lease_id, static_cast<int>(req->shard),
                                  req->payload_sha256, now);
    notify_if_done();
    if (!outcome.ok()) return error(outcome.status());
    SweepCompleteAck ack;
    ack.shard = req->shard;
    ack.duplicate = outcome->duplicate ? 1 : 0;
    ack.committed = static_cast<uint32_t>(outcome->committed);
    ack.shards = static_cast<uint32_t>(info.shards);
    return SweepFrame(ack);
  }
  if (const auto* req = std::get_if<SweepFail>(&request)) {
    auto will_retry = table.ReportFailure(
        req->lease_id, static_cast<int>(req->shard), req->message, now);
    notify_if_done();
    if (!will_retry.ok()) return error(will_retry.status());
    return SweepFrame(
        SweepFailAck{req->shard, static_cast<uint8_t>(*will_retry ? 1 : 0)});
  }
  if (std::holds_alternative<SweepStatusRequest>(request)) {
    SweepServiceStats s = table.stats();
    SweepStatusReply reply;
    reply.sweep = info.sweep;
    reply.shards = static_cast<uint32_t>(s.shards);
    reply.committed = static_cast<uint32_t>(s.committed);
    reply.leased = static_cast<uint32_t>(s.leased);
    reply.pending = static_cast<uint32_t>(s.pending);
    reply.resumed = static_cast<uint32_t>(s.resumed);
    reply.retries = static_cast<uint32_t>(s.retries);
    reply.expired = static_cast<uint32_t>(s.expired);
    reply.quarantined = static_cast<uint32_t>(s.quarantined);
    reply.drained = table.drained() ? 1 : 0;
    return SweepFrame(reply);
  }
  if (std::holds_alternative<SweepShutdown>(request)) {
    impl->shutdown_requested = true;
    impl->cv.notify_all();
    SweepServiceStats s = table.stats();
    return SweepFrame(SweepShutdownAck{static_cast<uint32_t>(s.committed),
                                       static_cast<uint32_t>(s.shards)});
  }
  return error(Status::ProtocolViolation(
      std::string("unexpected reply-type frame ") +
      SweepFrameTypeName(SweepFrameTypeOf(request)) + " from a client"));
}

bool SweepService::drained() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->table->drained();
}

Status SweepService::run_status() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->table->run_status();
}

SweepStatusReply SweepService::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const ShardLeaseTable& table = *impl_->table;
  SweepServiceStats s = table.stats();
  SweepStatusReply reply;
  reply.sweep = table.info().sweep;
  reply.shards = static_cast<uint32_t>(s.shards);
  reply.committed = static_cast<uint32_t>(s.committed);
  reply.leased = static_cast<uint32_t>(s.leased);
  reply.pending = static_cast<uint32_t>(s.pending);
  reply.resumed = static_cast<uint32_t>(s.resumed);
  reply.retries = static_cast<uint32_t>(s.retries);
  reply.expired = static_cast<uint32_t>(s.expired);
  reply.quarantined = static_cast<uint32_t>(s.quarantined);
  reply.drained = table.drained() ? 1 : 0;
  return reply;
}

std::vector<int> SweepService::Attempts() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->table->attempts();
}

Status SweepService::WaitUntilDone() {
  Impl* impl = impl_.get();
  std::unique_lock<std::mutex> lock(impl->mu);
  impl->cv.wait(lock, [&] {
    return impl->stopping || impl->shutdown_requested ||
           impl->table->drained() || !impl->table->run_status().ok();
  });
  if (!impl->table->run_status().ok()) return impl->table->run_status();
  if (impl->table->drained()) return Status::OK();
  SweepServiceStats s = impl->table->stats();
  return Status::FailedPrecondition(
      std::string(impl->shutdown_requested ? "shutdown requested"
                                           : "service stopped") +
      " with " + std::to_string(s.committed) + " of " +
      std::to_string(s.shards) + " shards committed");
}

void SweepService::Stop() {
  Impl* impl = impl_.get();
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    if (impl->stopped) return;
    impl->stopping = true;
    impl->cv.notify_all();
  }
  if (impl->accept_thread.joinable()) impl->accept_thread.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    for (int fd : impl->open_fds) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(impl->handlers);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (impl->listen_fd >= 0) {
    ::close(impl->listen_fd);
    impl->listen_fd = -1;
  }
  std::lock_guard<std::mutex> lock(impl->mu);
  impl->stopped = true;
}

// ---------------------------------------------------------------------------
// SweepServiceClient
// ---------------------------------------------------------------------------

struct SweepServiceClient::Impl {
  int fd = -1;
  std::mutex mu;  // serializes RPCs on the shared connection
};

Result<std::unique_ptr<SweepServiceClient>> SweepServiceClient::Connect(
    const std::string& host, int port, int64_t timeout_ms) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [1, 65535]");
  }
  if (timeout_ms < 1) {
    return Status::InvalidArgument("timeout_ms must be >= 1");
  }

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &found);
  if (rc != 0 || found == nullptr) {
    return Status::Internal("sweepd cannot resolve '" + host +
                            "': " + ::gai_strerror(rc));
  }

  int fd = -1;
  Status last = Status::Internal("sweepd connect failed: no addresses");
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(Errno("sweepd socket failed"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Internal("sweepd connect to " + host + ":" +
                            std::to_string(port) +
                            " failed: " + std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) return last;

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client = std::unique_ptr<SweepServiceClient>(new SweepServiceClient());
  client->impl_ = std::make_unique<Impl>();
  client->impl_->fd = fd;
  return client;
}

SweepServiceClient::~SweepServiceClient() {
  if (impl_ && impl_->fd >= 0) ::close(impl_->fd);
}

namespace {

// One blocking RPC: send the request frame, read exactly one reply
// frame, map `error` replies back to their daemon-side Status.
Result<SweepFrame> RoundTrip(int fd, std::mutex& mu, const SweepFrame& req) {
  std::lock_guard<std::mutex> lock(mu);
  HSIS_RETURN_IF_ERROR(WriteSweepFrame(fd, SerializeSweepFrame(req)));
  auto body = ReadSweepFrame(fd);
  if (!body.ok()) {
    if (body.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("sweepd closed the connection mid-RPC");
    }
    return body.status();
  }
  HSIS_ASSIGN_OR_RETURN(SweepFrame reply, ParseSweepFrame(*body));
  if (const auto* err = std::get_if<SweepErrorReply>(&reply)) {
    return FromSweepError(*err);
  }
  return reply;
}

template <typename T>
Result<T> Expect(Result<SweepFrame> reply, const char* rpc) {
  if (!reply.ok()) return reply.status();
  if (auto* typed = std::get_if<T>(&*reply)) return std::move(*typed);
  return Status::ProtocolViolation(
      std::string("unexpected ") +
      SweepFrameTypeName(SweepFrameTypeOf(*reply)) + " reply to " + rpc);
}

}  // namespace

Result<std::variant<SweepLeaseGrant, SweepNoWork>>
SweepServiceClient::RequestLease(const std::string& worker) {
  auto reply = RoundTrip(impl_->fd, impl_->mu,
                         SweepFrame(SweepLeaseRequest{worker}));
  if (!reply.ok()) return reply.status();
  if (auto* grant = std::get_if<SweepLeaseGrant>(&*reply)) {
    return std::variant<SweepLeaseGrant, SweepNoWork>(std::move(*grant));
  }
  if (auto* none = std::get_if<SweepNoWork>(&*reply)) {
    return std::variant<SweepLeaseGrant, SweepNoWork>(*none);
  }
  return Status::ProtocolViolation(
      std::string("unexpected ") +
      SweepFrameTypeName(SweepFrameTypeOf(*reply)) +
      " reply to lease-request");
}

Result<SweepHeartbeatAck> SweepServiceClient::Heartbeat(uint64_t lease_id,
                                                        int shard) {
  return Expect<SweepHeartbeatAck>(
      RoundTrip(impl_->fd, impl_->mu,
                SweepFrame(SweepHeartbeat{lease_id,
                                          static_cast<uint32_t>(shard)})),
      "heartbeat");
}

Result<SweepCompleteAck> SweepServiceClient::Complete(
    uint64_t lease_id, int shard, const std::string& payload_sha256) {
  SweepComplete req;
  req.lease_id = lease_id;
  req.shard = static_cast<uint32_t>(shard);
  req.payload_sha256 = payload_sha256;
  return Expect<SweepCompleteAck>(
      RoundTrip(impl_->fd, impl_->mu, SweepFrame(req)), "complete");
}

Result<SweepFailAck> SweepServiceClient::ReportFailure(
    uint64_t lease_id, int shard, const std::string& message) {
  SweepFail req;
  req.lease_id = lease_id;
  req.shard = static_cast<uint32_t>(shard);
  req.message = message;
  return Expect<SweepFailAck>(
      RoundTrip(impl_->fd, impl_->mu, SweepFrame(req)), "fail");
}

Result<SweepStatusReply> SweepServiceClient::QueryStatus() {
  return Expect<SweepStatusReply>(
      RoundTrip(impl_->fd, impl_->mu, SweepFrame(SweepStatusRequest{})),
      "status-request");
}

Result<SweepShutdownAck> SweepServiceClient::RequestShutdown() {
  return Expect<SweepShutdownAck>(
      RoundTrip(impl_->fd, impl_->mu, SweepFrame(SweepShutdown{})),
      "shutdown");
}

}  // namespace hsis::common

#ifndef HSIS_COMMON_U256_H_
#define HSIS_COMMON_U256_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace hsis {

struct U512;

/// Fixed-width 256-bit unsigned integer, little-endian 64-bit limbs.
///
/// All arithmetic is wrapping mod 2^256 unless stated otherwise. This is
/// the scalar type for the crypto substrate (prime groups, commutative
/// encryption, MSet-Mu-Hash); it deliberately supports only the
/// operations those layers need, with full-width multiply returning U512.
struct U256 {
  std::array<uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(uint64_t l0, uint64_t l1, uint64_t l2, uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  /// Parses a hex string (no 0x prefix, up to 64 digits).
  static Result<U256> FromHex(std::string_view hex);

  /// Parses a decimal string.
  static Result<U256> FromDecimal(std::string_view dec);

  /// Interprets up to 32 bytes as a big-endian integer.
  static U256 FromBytesBE(const Bytes& bytes);

  /// Big-endian 32-byte encoding.
  Bytes ToBytesBE() const;

  /// Lowercase hex with leading zeros trimmed (at least one digit).
  std::string ToHex() const;

  /// Decimal representation.
  std::string ToDecimal() const;

  bool IsZero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool IsOdd() const { return (limb[0] & 1) != 0; }

  /// Value of bit `i` (0 = least significant); i < 256.
  bool Bit(size_t i) const {
    return (limb[i / 64] >> (i % 64)) & 1;
  }

  /// Index of the highest set bit plus one (0 for zero).
  size_t BitLength() const;

  friend bool operator==(const U256& a, const U256& b) { return a.limb == b.limb; }
  friend std::strong_ordering operator<=>(const U256& a, const U256& b);

  /// Wrapping addition/subtraction.
  friend U256 operator+(const U256& a, const U256& b);
  friend U256 operator-(const U256& a, const U256& b);

  /// Addition reporting carry-out; used by wider arithmetic.
  static U256 AddWithCarry(const U256& a, const U256& b, uint64_t* carry_out);

  /// Subtraction reporting borrow-out (1 when a < b).
  static U256 SubWithBorrow(const U256& a, const U256& b, uint64_t* borrow_out);

  /// Full 512-bit product.
  static U512 MulFull(const U256& a, const U256& b);

  /// Wrapping (low 256 bits) product.
  friend U256 operator*(const U256& a, const U256& b);

  /// Logical shifts; shift counts >= 256 yield zero.
  friend U256 operator<<(const U256& a, size_t n);
  friend U256 operator>>(const U256& a, size_t n);

  friend U256 operator&(const U256& a, const U256& b);
  friend U256 operator|(const U256& a, const U256& b);
  friend U256 operator^(const U256& a, const U256& b);

};

/// Quotient/remainder pair for 256-bit division.
struct U256DivMod {
  U256 quotient;
  U256 remainder;
};

/// Computes quotient and remainder; `divisor` must be nonzero.
U256DivMod DivMod(const U256& dividend, const U256& divisor);

/// 512-bit companion type for products and wide reductions.
struct U512 {
  std::array<uint64_t, 8> limb{0, 0, 0, 0, 0, 0, 0, 0};

  constexpr U512() = default;
  constexpr explicit U512(uint64_t v) : limb{v, 0, 0, 0, 0, 0, 0, 0} {}

  /// Widens a U256 (zero-extends).
  static U512 FromU256(const U256& v);

  /// Low 256 bits.
  U256 Low() const { return U256(limb[0], limb[1], limb[2], limb[3]); }
  /// High 256 bits.
  U256 High() const { return U256(limb[4], limb[5], limb[6], limb[7]); }

  bool IsZero() const;
  size_t BitLength() const;
  bool Bit(size_t i) const { return (limb[i / 64] >> (i % 64)) & 1; }

  friend bool operator==(const U512& a, const U512& b) { return a.limb == b.limb; }
  friend std::strong_ordering operator<=>(const U512& a, const U512& b);

  friend U512 operator+(const U512& a, const U512& b);
  friend U512 operator-(const U512& a, const U512& b);
  friend U512 operator<<(const U512& a, size_t n);
  friend U512 operator>>(const U512& a, size_t n);

  /// Remainder of this value modulo a nonzero 256-bit divisor.
  U256 Mod(const U256& divisor) const;
};

/// Quotient/remainder pair for 512-by-256-bit division (the quotient may
/// need all 512 bits when the divisor is small).
struct U512DivMod {
  U512 quotient;
  U256 remainder;
};

/// Computes quotient and remainder; `divisor` must be nonzero.
U512DivMod DivMod(const U512& dividend, const U256& divisor);

}  // namespace hsis

#endif  // HSIS_COMMON_U256_H_

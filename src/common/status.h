#ifndef HSIS_COMMON_STATUS_H_
#define HSIS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace hsis {

/// Machine-readable category of a `Status`.
///
/// Mirrors the usual database-engine status taxonomy (Arrow / RocksDB
/// style). The library does not use C++ exceptions; every fallible
/// operation returns a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kUnauthenticated = 6,
  kIntegrityViolation = 7,
  kProtocolViolation = 8,
  kInternal = 9,
  kUnimplemented = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying either success or an error code + message.
///
/// The success value is represented without allocation. `Status` is
/// copyable and movable; moved-from statuses compare OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A `kOk` code
  /// with a non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code),
        message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status Unauthenticated(std::string msg);
  static Status IntegrityViolation(std::string msg);
  static Status ProtocolViolation(std::string msg);
  static Status Internal(std::string msg);
  static Status Unimplemented(std::string msg);

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace hsis

/// Propagates a non-OK `Status` from the enclosing function.
#define HSIS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::hsis::Status _hsis_status = (expr);         \
    if (!_hsis_status.ok()) return _hsis_status;  \
  } while (false)

#endif  // HSIS_COMMON_STATUS_H_

#ifndef HSIS_COMMON_SHARD_H_
#define HSIS_COMMON_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace hsis::common {

/// Multi-process sharding for `ParallelFor`-shaped sweeps. A sweep is a
/// pure function from a global index `i` in `[0, total)` to a record of
/// bytes; a `ShardPlan` partitions the range into K contiguous shards,
/// a `ShardRunner` executes one shard (in any process, on any machine)
/// and serializes its records plus a manifest into a results directory,
/// and `MergeShards` validates the manifests and reassembles the
/// concatenated records **bit-identical** to a single-process serial
/// run. Failed shards are recovered by re-running only that shard; the
/// merge detects missing, overlapping, duplicated, and corrupt shard
/// files with typed `Status` errors (see each function's contract).

/// Contiguous half-open slice of a global index range.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }

  friend bool operator==(const ShardRange& a, const ShardRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Partition of `[0, total)` into `shards` contiguous slices that are
/// pairwise disjoint and cover the range exactly (the `ChunkBounds`
/// formula of common/parallel.h). When `shards <= total` every slice is
/// non-empty; surplus shards beyond `total` are empty.
class ShardPlan {
 public:
  /// `shards` must be >= 1 (map a user-facing `--shards=0` to 1 via
  /// `ParseShardsValue` first); anything else is InvalidArgument.
  static Result<ShardPlan> Create(size_t total, int shards);

  size_t total() const { return total_; }
  int shards() const { return shards_; }

  /// Slice of shard `shard` (0-based): `[total*k/K, total*(k+1)/K)`.
  /// Requires `0 <= shard < shards()`.
  ShardRange Range(int shard) const;

 private:
  ShardPlan(size_t total, int shards) : total_(total), shards_(shards) {}

  size_t total_ = 0;
  int shards_ = 1;
};

/// Resolves the value of a user-facing `--shards=` flag: "0" selects a
/// single shard, positive values pass through, and anything else
/// (negative, empty, non-numeric, trailing junk) is InvalidArgument.
/// The uniform CLI contract shared with `ParseThreadsValue`
/// (common/parallel.h).
Result<int> ParseShardsValue(std::string_view value);

/// A sweep in sharded form: `record(i)` serializes the result of global
/// index `i` and must be a pure function of `i` (stochastic sweeps
/// derive their stream from `Rng::ForIndex(seed, i)`), so any partition
/// of the range reassembles to the same bytes.
struct ShardSweepSpec {
  /// Identifies the sweep; recorded in every manifest and validated at
  /// merge time so shards of different sweeps can never be mixed.
  std::string name;
  /// Global index count.
  size_t total = 0;
  /// Base seed recorded in the manifest (0 for deterministic sweeps).
  uint64_t seed = 0;
  /// Serialized record for global index `i`.
  std::function<Result<Bytes>(size_t)> record;
};

/// The plan manifest (`plan.manifest`) written once per results
/// directory before any shard runs; workers and the merge read it as
/// the authoritative description of the sharded sweep.
struct ShardPlanInfo {
  std::string sweep;
  size_t total = 0;
  int shards = 1;
  uint64_t seed = 0;

  friend bool operator==(const ShardPlanInfo& a, const ShardPlanInfo& b) {
    return a.sweep == b.sweep && a.total == b.total && a.shards == b.shards &&
           a.seed == b.seed;
  }
};

/// Per-shard manifest (`shard-<k>.manifest`) committed after the
/// payload file: a shard without a valid manifest is treated as never
/// having run.
struct ShardManifest {
  std::string sweep;
  int shard = 0;
  int shards = 1;
  size_t total = 0;
  size_t begin = 0;
  size_t end = 0;
  uint64_t seed = 0;
  size_t records = 0;
  /// Lowercase hex SHA-256 of the payload file bytes.
  std::string payload_sha256;

  friend bool operator==(const ShardManifest& a, const ShardManifest& b) {
    return a.sweep == b.sweep && a.shard == b.shard && a.shards == b.shards &&
           a.total == b.total && a.begin == b.begin && a.end == b.end &&
           a.seed == b.seed && a.records == b.records &&
           a.payload_sha256 == b.payload_sha256;
  }
};

/// Canonical file locations inside a results directory.
std::string ShardPlanPath(const std::string& dir);
std::string ShardManifestPath(const std::string& dir, int shard);
std::string ShardPayloadPath(const std::string& dir, int shard);

/// Text round-trip for the plan manifest. Parsing is strict: the
/// version line must match, every field must appear exactly once, and
/// numbers must parse exactly; violations are IntegrityViolation.
std::string SerializeShardPlanInfo(const ShardPlanInfo& info);
Result<ShardPlanInfo> ParseShardPlanInfo(std::string_view text);

/// Text round-trip for a shard manifest, same strictness contract.
std::string SerializeShardManifest(const ShardManifest& manifest);
Result<ShardManifest> ParseShardManifest(std::string_view text);

/// Binary round-trip for a shard payload: magic + version + record
/// count + length-prefixed records. Parsing fails with
/// IntegrityViolation on a bad magic, truncation, or trailing bytes.
Bytes SerializeShardPayload(const std::vector<Bytes>& records);
Result<std::vector<Bytes>> ParseShardPayload(const Bytes& payload);

/// Writes `plan.manifest` for `spec` partitioned by `plan` into `dir`
/// (which must exist). Fails with InvalidArgument if `spec.total !=
/// plan.total()`.
Status WriteShardPlan(const ShardSweepSpec& spec, const ShardPlan& plan,
                      const std::string& dir);

/// Reads and parses `dir`'s plan manifest: NotFound when absent,
/// IntegrityViolation when corrupt.
Result<ShardPlanInfo> ReadShardPlan(const std::string& dir);

/// Executes single shards of a sweep. Stateless between calls: one
/// process can run one shard and exit, or loop over several.
class ShardRunner {
 public:
  ShardRunner(ShardSweepSpec spec, ShardPlan plan);

  /// Computes every record in shard `shard`'s range with `threads`
  /// workers (common/parallel.h knob: 1 = serial, 0 = hardware) and
  /// writes `shard-<k>.bin` then `shard-<k>.manifest` into `dir`. The
  /// manifest is written last so an interrupted run never leaves a
  /// shard that looks complete. Record computation is deterministic per
  /// index, so every thread count yields the same bytes.
  Status Run(int shard, const std::string& dir, int threads = 1) const;

 private:
  ShardSweepSpec spec_;
  ShardPlan plan_;
};

/// Validates the plan and every shard in `dir` and returns the record
/// payloads concatenated in global index order — byte-identical to a
/// serial single-process run emitting the same records. Typed errors:
///
///  * NotFound            — plan, manifest, or payload file missing
///                          (the message names the shard to re-run);
///  * IntegrityViolation  — corrupt manifest text, payload SHA-256
///                          mismatch (truncation / bit flips), bad
///                          payload framing, or record-count mismatch;
///  * InvalidArgument     — a manifest that parses but contradicts the
///                          plan: wrong sweep name, shard count, total,
///                          seed, a duplicated shard file standing in
///                          for another shard, or a range that overlaps
///                          or leaves a gap.
///
/// `expected_sweep`, when non-empty, must match the plan's sweep name
/// (InvalidArgument otherwise) — callers use it to refuse merging a
/// directory that holds some other sweep's shards.
Result<Bytes> MergeShards(const std::string& dir,
                          const std::string& expected_sweep = "");

}  // namespace hsis::common

#endif  // HSIS_COMMON_SHARD_H_

#ifndef HSIS_COMMON_SHARD_H_
#define HSIS_COMMON_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

/// \file
/// \brief Multi-process sharding for `ParallelFor`-shaped sweeps.
///
/// A sweep is a pure function from a global index `i` in `[0, total)`
/// to a record of bytes; a `ShardPlan` partitions the range into K
/// contiguous shards, a `ShardRunner` executes one shard (in any
/// process, on any machine) and serializes its records plus a manifest
/// into a results directory, and `MergeShards` validates the manifests
/// and reassembles the concatenated records **bit-identical** to a
/// single-process serial run. Failed shards are recovered by re-running
/// only that shard; the merge detects missing, overlapping, duplicated,
/// and corrupt shard files with typed `Status` errors (see each
/// function's contract). `common/scheduler.h` automates the
/// detect-and-re-run loop.
///
/// \par Usage
/// \code
///   ShardSweepSpec spec;
///   spec.name = "squares";
///   spec.total = 1000;
///   spec.record = [](size_t i) -> Result<Bytes> {
///     return ToBytes(std::to_string(i * i) + "\n");
///   };
///   ShardPlan plan = ShardPlan::Create(spec.total, /*shards=*/4).value();
///   HSIS_RETURN_IF_ERROR(WriteShardPlan(spec, plan, dir));
///   ShardRunner runner(spec, plan);
///   for (int k = 0; k < plan.shards(); ++k) {     // any process, any order
///     HSIS_RETURN_IF_ERROR(runner.Run(k, dir));
///   }
///   Bytes merged = MergeShards(dir, spec.name).value();  // == serial bytes
/// \endcode

namespace hsis::common {

/// Contiguous half-open slice `[begin, end)` of a global index range.
struct ShardRange {
  size_t begin = 0;  ///< First index of the slice.
  size_t end = 0;    ///< One past the last index of the slice.

  /// Number of indices in the slice.
  size_t size() const { return end - begin; }

  /// Field-wise equality.
  friend bool operator==(const ShardRange& a, const ShardRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Partition of `[0, total)` into `shards` contiguous slices that are
/// pairwise disjoint and cover the range exactly (the `ChunkBounds`
/// formula of common/parallel.h). When `shards <= total` every slice is
/// non-empty; surplus shards beyond `total` are empty.
class ShardPlan {
 public:
  /// `shards` must be >= 1 (map a user-facing `--shards=0` to 1 via
  /// `ParseShardsValue` first); anything else is InvalidArgument.
  static Result<ShardPlan> Create(size_t total, int shards);

  /// Global index count partitioned by the plan.
  size_t total() const { return total_; }
  /// Number of shards in the partition.
  int shards() const { return shards_; }

  /// Slice of shard `shard` (0-based): `[total*k/K, total*(k+1)/K)`.
  /// Requires `0 <= shard < shards()`.
  ShardRange Range(int shard) const;

 private:
  ShardPlan(size_t total, int shards) : total_(total), shards_(shards) {}

  size_t total_ = 0;
  int shards_ = 1;
};

/// Resolves the value of a user-facing `--shards=` flag: "0" selects a
/// single shard, positive values pass through, and anything else
/// (negative, empty, non-numeric, trailing junk) is InvalidArgument.
/// The uniform CLI contract shared with `ParseThreadsValue`
/// (common/parallel.h).
Result<int> ParseShardsValue(std::string_view value);

/// A sweep in sharded form: `record(i)` serializes the result of global
/// index `i` and must be a pure function of `i` (stochastic sweeps
/// derive their stream from `Rng::ForIndex(seed, i)`), so any partition
/// of the range reassembles to the same bytes.
struct ShardSweepSpec {
  /// Identifies the sweep; recorded in every manifest and validated at
  /// merge time so shards of different sweeps can never be mixed.
  std::string name;
  /// Global index count.
  size_t total = 0;
  /// Base seed recorded in the manifest (0 for deterministic sweeps).
  uint64_t seed = 0;
  /// Serialized record for global index `i`.
  std::function<Result<Bytes>(size_t)> record;
};

/// The plan manifest (`plan.manifest`) written once per results
/// directory before any shard runs; workers and the merge read it as
/// the authoritative description of the sharded sweep.
struct ShardPlanInfo {
  std::string sweep;  ///< Sweep name the directory belongs to.
  size_t total = 0;   ///< Global index count of the sweep.
  int shards = 1;     ///< Number of shards the range is split into.
  uint64_t seed = 0;  ///< Base seed (0 for deterministic sweeps).

  /// Field-wise equality.
  friend bool operator==(const ShardPlanInfo& a, const ShardPlanInfo& b) {
    return a.sweep == b.sweep && a.total == b.total && a.shards == b.shards &&
           a.seed == b.seed;
  }
};

/// Per-shard manifest (`shard-<k>.manifest`) committed after the
/// payload file: a shard without a valid manifest is treated as never
/// having run.
struct ShardManifest {
  std::string sweep;  ///< Sweep name, must match the plan's.
  int shard = 0;      ///< 0-based shard index this manifest commits.
  int shards = 1;     ///< Shard count of the plan the shard belongs to.
  size_t total = 0;   ///< Global index count of the plan.
  size_t begin = 0;   ///< First global index of the shard's range.
  size_t end = 0;     ///< One past the last global index of the range.
  uint64_t seed = 0;  ///< Base seed, must match the plan's.
  size_t records = 0; ///< Record count, must equal `end - begin`.
  /// Lowercase hex SHA-256 of the payload file bytes.
  std::string payload_sha256;

  /// Field-wise equality.
  friend bool operator==(const ShardManifest& a, const ShardManifest& b) {
    return a.sweep == b.sweep && a.shard == b.shard && a.shards == b.shards &&
           a.total == b.total && a.begin == b.begin && a.end == b.end &&
           a.seed == b.seed && a.records == b.records &&
           a.payload_sha256 == b.payload_sha256;
  }
};

/// Canonical location of the plan manifest inside results directory
/// `dir` (`dir/plan.manifest`).
std::string ShardPlanPath(const std::string& dir);

/// Canonical location of shard `shard`'s manifest inside `dir`
/// (`dir/shard-<k>.manifest`).
std::string ShardManifestPath(const std::string& dir, int shard);

/// Canonical location of shard `shard`'s payload inside `dir`
/// (`dir/shard-<k>.bin`).
std::string ShardPayloadPath(const std::string& dir, int shard);

/// Serializes the plan manifest as strict `key=value` text.
std::string SerializeShardPlanInfo(const ShardPlanInfo& info);

/// Strict inverse of `SerializeShardPlanInfo`: the version line must
/// match, every field must appear exactly once, and numbers must parse
/// exactly; violations are IntegrityViolation.
Result<ShardPlanInfo> ParseShardPlanInfo(std::string_view text);

/// Serializes a shard manifest as strict `key=value` text.
std::string SerializeShardManifest(const ShardManifest& manifest);

/// Strict inverse of `SerializeShardManifest`, same strictness contract
/// as `ParseShardPlanInfo`.
Result<ShardManifest> ParseShardManifest(std::string_view text);

/// Serializes a shard payload: magic + version + record count +
/// length-prefixed records.
Bytes SerializeShardPayload(const std::vector<Bytes>& records);

/// Strict inverse of `SerializeShardPayload`; fails with
/// IntegrityViolation on a bad magic, truncation, or trailing bytes.
Result<std::vector<Bytes>> ParseShardPayload(const Bytes& payload);

/// Writes `plan.manifest` for `spec` partitioned by `plan` into `dir`
/// (which must exist). Fails with InvalidArgument if `spec.total !=
/// plan.total()`.
Status WriteShardPlan(const ShardSweepSpec& spec, const ShardPlan& plan,
                      const std::string& dir);

/// Reads and parses `dir`'s plan manifest: NotFound when absent,
/// IntegrityViolation when corrupt.
Result<ShardPlanInfo> ReadShardPlan(const std::string& dir);

/// Executes single shards of a sweep. Stateless between calls: one
/// process can run one shard and exit, or loop over several.
class ShardRunner {
 public:
  /// Binds the runner to `spec` partitioned by `plan`; `spec.total`
  /// must equal `plan.total()` (checked at `Run` time).
  ShardRunner(ShardSweepSpec spec, ShardPlan plan);

  /// Computes every record in shard `shard`'s range with `threads`
  /// workers (common/parallel.h knob: 1 = serial, 0 = hardware) and
  /// writes `shard-<k>.bin` then `shard-<k>.manifest` into `dir`. The
  /// manifest is written last so an interrupted run never leaves a
  /// shard that looks complete. Record computation is deterministic per
  /// index, so every thread count yields the same bytes.
  Status Run(int shard, const std::string& dir, int threads = 1) const;

 private:
  ShardSweepSpec spec_;
  ShardPlan plan_;
};

/// Reads and fully validates shard `shard` of the plan described by
/// `info` inside `dir`, returning its records in index order. This is
/// the per-shard half of `MergeShards`, exposed so supervisors
/// (`common/scheduler.h`) can classify a shard's state without merging
/// the whole directory. Typed errors:
///
///  * NotFound            — manifest or payload file missing: the shard
///                          never ran (or never committed) — re-run it;
///  * IntegrityViolation  — corrupt manifest text, payload SHA-256
///                          mismatch (truncation / bit flips), bad
///                          payload framing, or record-count mismatch:
///                          quarantine the files and re-run;
///  * InvalidArgument     — a manifest that parses but contradicts the
///                          plan: wrong sweep name, shard count, total,
///                          seed, a duplicated shard file standing in
///                          for another shard, or a range that overlaps
///                          or leaves a gap — an operator error, not a
///                          transient fault; re-running cannot fix it.
Result<std::vector<Bytes>> ReadShardRecords(const ShardPlanInfo& info,
                                            const std::string& dir, int shard);

/// Validation-only form of `ReadShardRecords`: OK iff shard `shard` is
/// committed in `dir` and consistent with `info`, otherwise the same
/// typed error taxonomy. A shard that passes here contributes exactly
/// its committed bytes to the merge and never needs re-running.
Status ValidateShard(const ShardPlanInfo& info, const std::string& dir,
                     int shard);

/// Validates the plan and every shard in `dir` and returns the record
/// payloads concatenated in global index order — byte-identical to a
/// serial single-process run emitting the same records. Per-shard
/// failures carry the `ReadShardRecords` taxonomy (NotFound /
/// IntegrityViolation / InvalidArgument), each message naming the shard
/// to re-run; a missing or corrupt plan manifest is NotFound /
/// IntegrityViolation respectively.
///
/// `expected_sweep`, when non-empty, must match the plan's sweep name
/// (InvalidArgument otherwise) — callers use it to refuse merging a
/// directory that holds some other sweep's shards.
Result<Bytes> MergeShards(const std::string& dir,
                          const std::string& expected_sweep = "");

}  // namespace hsis::common

#endif  // HSIS_COMMON_SHARD_H_

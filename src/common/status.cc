#include "common/status.h"

namespace hsis {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnauthenticated:
      return "Unauthenticated";
    case StatusCode::kIntegrityViolation:
      return "IntegrityViolation";
    case StatusCode::kProtocolViolation:
      return "ProtocolViolation";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::Unauthenticated(std::string msg) {
  return Status(StatusCode::kUnauthenticated, std::move(msg));
}
Status Status::IntegrityViolation(std::string msg) {
  return Status(StatusCode::kIntegrityViolation, std::move(msg));
}
Status Status::ProtocolViolation(std::string msg) {
  return Status(StatusCode::kProtocolViolation, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace hsis

#include "common/file.h"

#include <fstream>
#include <sstream>

namespace hsis {

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read failed: " + path);
  }
  return buffer.str();
}

}  // namespace hsis

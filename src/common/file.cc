#include "common/file.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace hsis {

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read failed: " + path);
  }
  return buffer.str();
}

Status CreateDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + path + ": " +
                            ec.message());
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::Internal("cannot remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (!FileExists(from)) {
    return Status::NotFound("cannot rename, no such file: " + from);
  }
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    return Status::Internal("cannot rename " + from + " -> " + to + ": " +
                            ec.message());
  }
  return Status::OK();
}

}  // namespace hsis

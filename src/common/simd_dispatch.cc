#include "common/simd_dispatch.h"

#include <cstdlib>
#include <string>

namespace hsis::common {

namespace {

/// CPUID support probe for the vector lanes. The compile-time gates
/// (HSIS_HAVE_*_LANE) say what this binary ships; this says what the
/// running CPU can execute. On x86-64 SSE2 is architecturally
/// guaranteed, so only AVX2 needs a real runtime probe.
bool CpuSupports(SimdLane lane) {
  switch (lane) {
    case SimdLane::kScalar:
      return true;
    case SimdLane::kSse2:
      return true;  // x86-64 baseline; the lane is only compiled there.
    case SimdLane::kAvx2:
#if defined(HSIS_HAVE_AVX2_LANE) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

const char* SimdLaneName(SimdLane lane) {
  switch (lane) {
    case SimdLane::kScalar:
      return "scalar";
    case SimdLane::kSse2:
      return "sse2";
    case SimdLane::kAvx2:
      return "avx2";
  }
  return "?";
}

Result<SimdLane> ParseSimdLaneName(std::string_view name) {
  if (name == "scalar") return SimdLane::kScalar;
  if (name == "sse2") return SimdLane::kSse2;
  if (name == "avx2") return SimdLane::kAvx2;
  return Status::InvalidArgument(
      "unknown SIMD lane '" + std::string(name) +
      "' (expected one of: scalar, sse2, avx2)");
}

bool SimdLaneCompiled(SimdLane lane) {
  switch (lane) {
    case SimdLane::kScalar:
      return true;
    case SimdLane::kSse2:
#ifdef HSIS_HAVE_SSE2_LANE
      return true;
#else
      return false;
#endif
    case SimdLane::kAvx2:
#ifdef HSIS_HAVE_AVX2_LANE
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool SimdLaneSupported(SimdLane lane) {
  return SimdLaneCompiled(lane) && CpuSupports(lane);
}

std::vector<SimdLane> CompiledSimdLanes() {
  std::vector<SimdLane> lanes;
  for (int i = 0; i < kSimdLaneCount; ++i) {
    if (SimdLaneCompiled(static_cast<SimdLane>(i))) {
      lanes.push_back(static_cast<SimdLane>(i));
    }
  }
  return lanes;
}

std::vector<SimdLane> SupportedSimdLanes() {
  std::vector<SimdLane> lanes;
  for (int i = 0; i < kSimdLaneCount; ++i) {
    if (SimdLaneSupported(static_cast<SimdLane>(i))) {
      lanes.push_back(static_cast<SimdLane>(i));
    }
  }
  return lanes;
}

SimdLane ProbeBestSimdLane() {
  SimdLane best = SimdLane::kScalar;
  for (int i = 0; i < kSimdLaneCount; ++i) {
    SimdLane lane = static_cast<SimdLane>(i);
    if (SimdLaneSupported(lane)) best = lane;
  }
  return best;
}

Result<SimdLane> ActiveSimdLane() {
  const char* override_value = std::getenv(kSimdLaneEnvVar);
  if (override_value == nullptr) return ProbeBestSimdLane();
  HSIS_ASSIGN_OR_RETURN(SimdLane lane, ParseSimdLaneName(override_value));
  if (!SimdLaneSupported(lane)) {
    return Status::InvalidArgument(
        std::string(kSimdLaneEnvVar) + "=" + SimdLaneName(lane) +
        ": lane is not available in this build/CPU (" +
        (SimdLaneCompiled(lane) ? "CPU lacks the instruction set"
                                : "lane not compiled in") +
        ")");
  }
  return lane;
}

}  // namespace hsis::common

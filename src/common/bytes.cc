#include "common/bytes.h"

namespace hsis {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string BytesToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void AppendUint32BE(Bytes& dst, uint32_t v) {
  dst.push_back(static_cast<uint8_t>(v >> 24));
  dst.push_back(static_cast<uint8_t>(v >> 16));
  dst.push_back(static_cast<uint8_t>(v >> 8));
  dst.push_back(static_cast<uint8_t>(v));
}

void AppendUint64BE(Bytes& dst, uint64_t v) {
  AppendUint32BE(dst, static_cast<uint32_t>(v >> 32));
  AppendUint32BE(dst, static_cast<uint32_t>(v));
}

uint32_t ReadUint32BE(const Bytes& src, size_t offset) {
  return (static_cast<uint32_t>(src[offset]) << 24) |
         (static_cast<uint32_t>(src[offset + 1]) << 16) |
         (static_cast<uint32_t>(src[offset + 2]) << 8) |
         static_cast<uint32_t>(src[offset + 3]);
}

uint64_t ReadUint64BE(const Bytes& src, size_t offset) {
  return (static_cast<uint64_t>(ReadUint32BE(src, offset)) << 32) |
         ReadUint32BE(src, offset + 4);
}

void AppendLengthPrefixed(Bytes& dst, const Bytes& payload) {
  AppendUint32BE(dst, static_cast<uint32_t>(payload.size()));
  Append(dst, payload);
}

Result<Bytes> ReadLengthPrefixed(const Bytes& src, size_t* offset) {
  if (*offset + 4 > src.size()) {
    return Status::OutOfRange("truncated length prefix");
  }
  uint32_t len = ReadUint32BE(src, *offset);
  *offset += 4;
  if (*offset + len > src.size()) {
    return Status::OutOfRange("truncated payload");
  }
  Bytes out(src.begin() + static_cast<ptrdiff_t>(*offset),
            src.begin() + static_cast<ptrdiff_t>(*offset + len));
  *offset += len;
  return out;
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace hsis
